// chaos_fuzz — randomized fault-schedule fuzzer with invariant auditing.
//
// Generates seeded random schedules composing crash x gray-degradation x
// partition x goal-churn events, runs each against the full system with the
// invariant auditor attached, and fails on any audit violation. A failing
// schedule is delta-shrunk (ddmin) to a minimal event list that still
// reproduces the violation's check, written as a text repro file that
// replays bit-exactly (the simulation is deterministic in the seed).
//
//   chaos_fuzz --seeds=50                     # fuzz; expect every seed clean
//   chaos_fuzz --seeds=8 --inject-bug=skip-heal-reconcile
//              --expect-violation --repro-out=/tmp/repro.txt
//   chaos_fuzz --replay=/tmp/repro.txt --inject-bug=skip-heal-reconcile
//              --expect-violation                # deterministic re-run
//
// Flags (all optional):
//   --seeds (50)            number of generated schedules to run
//   --seed-base (1)         first seed; schedule i uses seed-base + i
//   --nodes (4)             cluster size for generated schedules
//   --horizon-ms (150000)   schedule horizon
//   --max-episodes (4)      per-kind episode cap of the generator
//   --goal-ms (5.0)         class-1 response-time goal (churn scales it)
//   --corrupt (0)           compose corruption episodes into generated
//                           schedules and run the background scrubber (pass
//                           it to replay runs of corrupt repros too)
//   --inject-bug (none)     none | skip-heal-reconcile | no-epoch-fence |
//                           leak-directory-entry | skip-verify |
//                           serve-quarantined | lost-page-leak
//   --expect-violation      invert the exit code: pass iff a violation fires
//   --repro-out (path)      write the shrunk repro of the first violation
//   --replay (path)         replay a repro file instead of generating
//
// Exit status: 0 when the outcome matches the expectation, 1 otherwise
// (or on usage/parse errors).

#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "common/config.h"
#include "core/system.h"
#include "sim/chaos_schedule.h"
#include "sim/invariant_auditor.h"
#include "workload/spec.h"

namespace {

using memgoal::core::ClusterSystem;
using memgoal::core::InjectedBug;
using memgoal::core::SystemConfig;
using memgoal::sim::InvariantAuditor;
namespace chaos = memgoal::sim::chaos;

struct RunResult {
  bool violated = false;
  std::string check;
  double at_ms = 0.0;
  std::string detail;
};

bool ParseBug(const std::string& name, InjectedBug* out) {
  if (name == "none") {
    *out = InjectedBug::kNone;
  } else if (name == "skip-heal-reconcile") {
    *out = InjectedBug::kSkipHealReconcile;
  } else if (name == "no-epoch-fence") {
    *out = InjectedBug::kNoEpochFence;
  } else if (name == "leak-directory-entry") {
    *out = InjectedBug::kLeakDirectoryEntry;
  } else if (name == "skip-verify") {
    *out = InjectedBug::kSkipVerify;
  } else if (name == "serve-quarantined") {
    *out = InjectedBug::kServeQuarantined;
  } else if (name == "lost-page-leak") {
    *out = InjectedBug::kLostPageLeak;
  } else {
    return false;
  }
  return true;
}

// Runs one schedule end to end under the auditor; deterministic in the
// schedule (all randomness derives from schedule.seed).
RunResult RunSchedule(const chaos::Schedule& schedule, InjectedBug bug,
                      double goal_ms, bool corrupt) {
  SystemConfig config;
  config.num_nodes = schedule.num_nodes;
  config.seed = schedule.seed == 0 ? 1 : schedule.seed;
  config.injected_bug = bug;
  config.faults.min_live_nodes = 1;
  if (corrupt) {
    // Corruption runs scrub so disk strikes are found (and the repair
    // ladder exercised) even on pages the workload never touches.
    config.scrub_interval_ms = 400.0;
  }
  chaos::ApplyToFaultParams(schedule, &config.faults);

  ClusterSystem system(config);
  const memgoal::PageId half = config.db_pages / 2;
  memgoal::workload::ClassSpec goal_class;
  goal_class.id = 1;
  goal_class.goal_rt_ms = goal_ms;
  goal_class.pages = {0, half};
  goal_class.mean_interarrival_ms = 60.0;
  goal_class.accesses_per_op = 4;
  system.AddClass(goal_class);
  memgoal::workload::ClassSpec nogoal_class;
  nogoal_class.id = memgoal::kNoGoalClass;
  nogoal_class.pages = {half, config.db_pages};
  nogoal_class.mean_interarrival_ms = 40.0;
  nogoal_class.accesses_per_op = 4;
  system.AddClass(nogoal_class);

  InvariantAuditor auditor;
  system.EnableAuditor(&auditor);

  for (const chaos::Event& event : chaos::GoalChanges(schedule)) {
    system.simulator().At(event.at_ms, [&system, event, goal_ms] {
      system.SetGoal(event.klass, goal_ms * event.factor);
    });
  }

  system.Start();
  // Two settle intervals past the horizon so post-heal invariants (hint
  // reconciliation, lease reacquisition) are audited after the last event.
  const int intervals =
      static_cast<int>(
          std::ceil(schedule.horizon_ms / config.observation_interval_ms)) +
      2;
  system.RunIntervals(intervals);

  RunResult result;
  if (!auditor.ok()) {
    const InvariantAuditor::Violation& first = auditor.violations().front();
    result.violated = true;
    result.check = first.check;
    result.at_ms = first.at_ms;
    result.detail = first.detail;
  }
  return result;
}

bool ReadFileText(const std::string& path, std::string* out) {
  std::ifstream file(path);
  if (!file) return false;
  std::ostringstream buffer;
  buffer << file.rdbuf();
  *out = buffer.str();
  return true;
}

int Run(memgoal::common::Config& config) {
  const int seeds = static_cast<int>(config.GetInt("seeds", 50));
  const uint64_t seed_base =
      static_cast<uint64_t>(config.GetInt("seed_base", 1));
  chaos::GenerateLimits limits;
  limits.num_nodes = static_cast<uint32_t>(config.GetInt("nodes", 4));
  limits.horizon_ms = config.GetDouble("horizon_ms", 150000.0);
  limits.max_episodes = static_cast<int>(config.GetInt("max_episodes", 4));
  limits.goal_classes = {1};
  const bool corrupt = config.GetBool("corrupt", false);
  if (corrupt) limits.max_corrupt_episodes = limits.max_episodes;
  const double goal_ms = config.GetDouble("goal_ms", 5.0);
  const std::string bug_name = config.GetString("inject_bug", "none");
  const bool expect_violation = config.GetBool("expect_violation", false);
  const std::string repro_out = config.GetString("repro_out", "");
  const std::string replay_path = config.GetString("replay", "");
  if (!config.RejectUnknownFlags()) {
    std::fprintf(stderr, "error: %s\n", config.error().c_str());
    return 1;
  }
  InjectedBug bug;
  if (!ParseBug(bug_name, &bug)) {
    std::fprintf(stderr, "error: unknown inject_bug '%s'\n",
                 bug_name.c_str());
    return 1;
  }

  RunResult violation;
  chaos::Schedule failing;

  if (!replay_path.empty()) {
    // Replay mode: one deterministic re-run of a recorded repro.
    std::string text;
    if (!ReadFileText(replay_path, &text)) {
      std::fprintf(stderr, "error: cannot read %s\n", replay_path.c_str());
      return 1;
    }
    chaos::Schedule schedule;
    if (!chaos::FromText(text, &schedule)) {
      std::fprintf(stderr, "error: malformed repro %s\n",
                   replay_path.c_str());
      return 1;
    }
    violation = RunSchedule(schedule, bug, goal_ms, corrupt);
    failing = schedule;
    if (violation.violated) {
      std::fprintf(stderr,
                   "replay seed=%llu: VIOLATION %s at %.0f ms: %s\n",
                   static_cast<unsigned long long>(schedule.seed),
                   violation.check.c_str(), violation.at_ms,
                   violation.detail.c_str());
    } else {
      std::fprintf(stderr, "replay seed=%llu: clean (%zu events)\n",
                   static_cast<unsigned long long>(schedule.seed),
                   schedule.events.size());
    }
  } else {
    for (int i = 0; i < seeds; ++i) {
      const uint64_t seed = seed_base + static_cast<uint64_t>(i);
      const chaos::Schedule schedule = chaos::Generate(seed, limits);
      const RunResult result = RunSchedule(schedule, bug, goal_ms, corrupt);
      if (result.violated) {
        std::fprintf(stderr,
                     "seed %llu: VIOLATION %s at %.0f ms: %s "
                     "(%zu events)\n",
                     static_cast<unsigned long long>(seed),
                     result.check.c_str(), result.at_ms,
                     result.detail.c_str(), schedule.events.size());
        violation = result;
        failing = schedule;
        break;  // first failure wins; it gets shrunk below
      }
      std::fprintf(stderr, "seed %llu: clean (%zu events)\n",
                   static_cast<unsigned long long>(seed),
                   schedule.events.size());
    }
  }

  if (violation.violated && !repro_out.empty()) {
    // Shrink to a minimal event list that still trips the same check, then
    // prove the written repro replays to the identical violation.
    const std::string check = violation.check;
    const chaos::Schedule shrunk =
        chaos::Shrink(failing, [&](const chaos::Schedule& candidate) {
          const RunResult r = RunSchedule(candidate, bug, goal_ms, corrupt);
          return r.violated && r.check == check;
        });
    std::FILE* file = std::fopen(repro_out.c_str(), "w");
    if (file == nullptr) {
      std::fprintf(stderr, "error: cannot write %s\n", repro_out.c_str());
      return 1;
    }
    const std::string text = chaos::ToText(shrunk);
    std::fwrite(text.data(), 1, text.size(), file);
    std::fclose(file);

    const RunResult direct = RunSchedule(shrunk, bug, goal_ms, corrupt);
    chaos::Schedule reread;
    std::string reread_text;
    const bool replayable =
        ReadFileText(repro_out, &reread_text) &&
        chaos::FromText(reread_text, &reread) &&
        [&] {
          const RunResult r = RunSchedule(reread, bug, goal_ms, corrupt);
          return r.violated && r.check == direct.check &&
                 r.at_ms == direct.at_ms;
        }();
    std::fprintf(stderr,
                 "shrunk %zu -> %zu events, repro %s (%s) -> %s\n",
                 failing.events.size(), shrunk.events.size(),
                 repro_out.c_str(),
                 replayable ? "replays bit-exactly" : "REPLAY MISMATCH",
                 direct.check.c_str());
    if (!replayable) return 1;
  }

  if (expect_violation != violation.violated) {
    std::fprintf(stderr, "FAIL: expected %s, got %s\n",
                 expect_violation ? "a violation" : "a clean run",
                 violation.violated ? "a violation" : "clean runs");
    return 1;
  }
  std::fprintf(stderr, "OK\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  memgoal::common::Config config;
  if (!config.ParseArgs(argc, argv)) {
    std::fprintf(stderr, "error: %s\n", config.error().c_str());
    return 1;
  }
  return Run(config);
}
