// memgoal_sim — scenario-file driven simulation runner.
//
// Reads a scenario description (key=value lines, '#' comments) from a file
// given as the first argument (or from stdin with "-"), runs it, prints the
// per-interval metrics as CSV to stdout and a summary to stderr. Any
// further command-line key=value arguments override the file.
//
//   memgoal_sim scenario.conf intervals=120 seed=9
//
// Scenario keys (defaults in parentheses):
//   nodes (3), cache_bytes (2097152), page_bytes (4096), db_pages (2000),
//   interval_ms (5000), seed (1), intervals (40),
//   policy (cost-based | lru | lru-k | fifo),
//   objective (nogoal | variance),
//   disk_seek_ms (8.0), disk_rotation_ms (8.33), disk_transfer (10.0),
//   net_mbit (100.0), net_latency_ms (0.05), net_loss (0.0),
//   net_loss_model (iid | burst), net_burst_g2b (0.0), net_burst_b2g (0.5),
//   net_burst_loss_good (0.0), net_burst_loss_bad (1.0),
//   crash_node (-1), crash_at_ms (0), recover_at_ms (0)
//                                    — scripted crash/recovery of one node
//   fault_mttf_ms (0), fault_mttr_ms (10000), fault_seed (1024369),
//   fault_min_live (1)               — stochastic per-node fault process
//   degrade_node (-1), degrade_at_ms (0), degrade_factor (10),
//   restore_at_ms (0)                — scripted gray degradation of one node
//   fault_mttd_ms (0), fault_degrade_repair_ms (10000),
//   fault_degrade_factor (10)        — stochastic gray-failure process
//   partition_nodes (""), partition_at_ms (0), heal_at_ms (0)
//                                    — scripted group partition: the listed
//                                      nodes (comma-separated) are cut off
//                                      from the rest between the two times
//   fault_mttp_ms (0), fault_partition_heal_ms (10000)
//                                    — stochastic whole-cluster partitions
//   chaos_seed (0)                   — nonzero: overlay a generated chaos
//                                      schedule (crash x gray x partition)
//                                      on top of the scripted faults
//   audit (0)                        — run the invariant auditor every
//                                      interval; violations fail the run
//   crash_detect_timeout_ms (2.0),
//   classes (2)                      — total class count including class 0
//
// Observability outputs (also accepted as --trace-out=..., --decision-log=...
// style flags; a path of "" disables; unknown --flags are rejected with a
// near-miss suggestion):
//   trace_out                        — Chrome trace-event JSON of request
//                                      spans (open in Perfetto / about:tracing)
//   decision_log                     — JSONL, one controller decision record
//                                      per coordinator check
//   obs_csv, obs_jsonl               — metrics-registry snapshot history
//   profile_out                      — hot-path wall-clock profile as JSON
//   profile_folded                   — same profile as folded stacks
//                                      (flamegraph.pl / speedscope input)
//   class<i>_goal_ms                 — omit (or 0) for the no-goal class
//   class<i>_pages                   — "begin:end" page range
//   class<i>_interarrival_ms (100), class<i>_accesses (4),
//   class<i>_skew (0), class<i>_share_prob (0),
//   class<i>_shared_pages            — "begin:end" of the shared range
//
// Example scenario file: see tools/scenarios/base.conf.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "common/config.h"
#include "common/logging.h"
#include "core/goal_controller.h"
#include "core/system.h"
#include "net/network.h"
#include "obs/decision_log.h"
#include "obs/profiler.h"
#include "obs/registry.h"
#include "obs/trace.h"
#include "sim/chaos_schedule.h"
#include "sim/invariant_auditor.h"

namespace {

// Writes `writer(file)` to `path`; returns false (with a message) on I/O
// failure so a bad path fails the run visibly instead of silently.
template <typename Writer>
bool WriteFileOrComplain(const std::string& path, const char* what,
                         Writer&& writer) {
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) {
    std::fprintf(stderr, "error: cannot write %s to %s\n", what, path.c_str());
    return false;
  }
  writer(file);
  std::fclose(file);
  return true;
}

using memgoal::ClassId;
using memgoal::PageId;

bool ParseRange(const std::string& text, memgoal::workload::PageRange* out) {
  const size_t colon = text.find(':');
  if (colon == std::string::npos || colon == 0) return false;
  out->begin = static_cast<PageId>(std::stoul(text.substr(0, colon)));
  out->end = static_cast<PageId>(std::stoul(text.substr(colon + 1)));
  return out->begin < out->end;
}

memgoal::cache::PolicyKind ParsePolicy(const std::string& name) {
  if (name == "lru") return memgoal::cache::PolicyKind::kLru;
  if (name == "lru-k") return memgoal::cache::PolicyKind::kLruK;
  if (name == "fifo") return memgoal::cache::PolicyKind::kFifo;
  return memgoal::cache::PolicyKind::kCostBased;
}

int Run(memgoal::common::Config& config) {
  memgoal::core::SystemConfig system_config;
  system_config.num_nodes =
      static_cast<uint32_t>(config.GetInt("nodes", 3));
  system_config.cache_bytes_per_node =
      static_cast<uint64_t>(config.GetInt("cache_bytes", 2 << 20));
  system_config.page_bytes =
      static_cast<uint32_t>(config.GetInt("page_bytes", 4096));
  system_config.db_pages =
      static_cast<uint32_t>(config.GetInt("db_pages", 2000));
  system_config.observation_interval_ms =
      config.GetDouble("interval_ms", 5000.0);
  system_config.seed = static_cast<uint64_t>(config.GetInt("seed", 1));
  system_config.policy = ParsePolicy(config.GetString("policy", "cost-based"));
  system_config.objective =
      config.GetString("objective", "nogoal") == "variance"
          ? memgoal::core::PartitioningObjective::kMinimizeNodeVariance
          : memgoal::core::PartitioningObjective::kMinimizeNoGoalRt;
  system_config.disk.avg_seek_ms = config.GetDouble("disk_seek_ms", 8.0);
  system_config.disk.rotation_ms = config.GetDouble("disk_rotation_ms", 8.33);
  system_config.disk.transfer_mb_per_s = config.GetDouble("disk_transfer", 10.0);
  system_config.network.bandwidth_mbit_per_s =
      config.GetDouble("net_mbit", 100.0);
  system_config.network.latency_ms = config.GetDouble("net_latency_ms", 0.05);
  system_config.network.loss_probability = config.GetDouble("net_loss", 0.0);
  // Conditional keys are still read unconditionally so RejectUnknownFlags
  // below never mistakes a dormant knob for a typo.
  const double burst_g2b = config.GetDouble("net_burst_g2b", 0.0);
  const double burst_b2g = config.GetDouble("net_burst_b2g", 0.5);
  const double burst_loss_good = config.GetDouble("net_burst_loss_good", 0.0);
  const double burst_loss_bad = config.GetDouble("net_burst_loss_bad", 1.0);
  if (config.GetString("net_loss_model", "iid") == "burst") {
    system_config.network.loss_model = memgoal::net::LossModel::kBurst;
    system_config.network.burst_good_to_bad = burst_g2b;
    system_config.network.burst_bad_to_good = burst_b2g;
    system_config.network.burst_loss_good = burst_loss_good;
    system_config.network.burst_loss_bad = burst_loss_bad;
  }

  const int crash_node = static_cast<int>(config.GetInt("crash_node", -1));
  const double crash_at = config.GetDouble("crash_at_ms", 0.0);
  const double recover_at = config.GetDouble("recover_at_ms", 0.0);
  if (crash_node >= 0) {
    system_config.faults.script.push_back(
        {crash_at, static_cast<uint32_t>(crash_node), /*crash=*/true});
    if (recover_at > crash_at) {
      system_config.faults.script.push_back(
          {recover_at, static_cast<uint32_t>(crash_node), /*crash=*/false});
    }
  }
  system_config.faults.mttf_ms = config.GetDouble("fault_mttf_ms", 0.0);
  system_config.faults.mttr_ms = config.GetDouble("fault_mttr_ms", 10000.0);
  system_config.faults.seed = static_cast<uint64_t>(
      config.GetInt("fault_seed", 0xFA171));
  system_config.faults.min_live_nodes =
      static_cast<uint32_t>(config.GetInt("fault_min_live", 1));
  const int degrade_node =
      static_cast<int>(config.GetInt("degrade_node", -1));
  const double degrade_at = config.GetDouble("degrade_at_ms", 0.0);
  const double restore_at = config.GetDouble("restore_at_ms", 0.0);
  const double degrade_factor = config.GetDouble("degrade_factor", 10.0);
  if (degrade_node >= 0) {
    system_config.faults.degradation_script.push_back(
        {degrade_at, static_cast<uint32_t>(degrade_node), /*begin=*/true,
         degrade_factor});
    if (restore_at > degrade_at) {
      system_config.faults.degradation_script.push_back(
          {restore_at, static_cast<uint32_t>(degrade_node),
           /*begin=*/false});
    }
  }
  system_config.faults.mttd_ms = config.GetDouble("fault_mttd_ms", 0.0);
  system_config.faults.degradation_repair_ms =
      config.GetDouble("fault_degrade_repair_ms", 10000.0);
  system_config.faults.degradation_factor =
      config.GetDouble("fault_degrade_factor", 10.0);

  const std::string partition_nodes = config.GetString("partition_nodes", "");
  const double partition_at = config.GetDouble("partition_at_ms", 0.0);
  const double heal_at = config.GetDouble("heal_at_ms", 0.0);
  if (!partition_nodes.empty()) {
    std::vector<uint32_t> groups(system_config.num_nodes, 0);
    std::stringstream nodes(partition_nodes);
    std::string item;
    while (std::getline(nodes, item, ',')) {
      const unsigned long node = std::stoul(item);
      if (node >= system_config.num_nodes) {
        std::fprintf(stderr, "error: partition_nodes entry %lu out of range\n",
                     node);
        return 1;
      }
      groups[node] = 1;
    }
    system_config.faults.partition_script.push_back({partition_at, groups});
    if (heal_at > partition_at) {
      system_config.faults.partition_script.push_back({heal_at, {}});
    }
  }
  system_config.faults.mttp_ms = config.GetDouble("fault_mttp_ms", 0.0);
  system_config.faults.partition_heal_ms =
      config.GetDouble("fault_partition_heal_ms", 10000.0);
  system_config.crash_detect_timeout_ms =
      config.GetDouble("crash_detect_timeout_ms", 2.0);

  const int intervals = static_cast<int>(config.GetInt("intervals", 40));
  const uint64_t chaos_seed =
      static_cast<uint64_t>(config.GetInt("chaos_seed", 0));
  if (chaos_seed != 0) {
    // Overlay a generated chaos schedule on the scripted faults. The
    // schedule's own goal-churn events are disabled — scenario files define
    // the classes, so there is no fixed class list to churn.
    if (system_config.num_nodes < 3 || system_config.num_nodes > 32) {
      std::fprintf(stderr, "error: chaos_seed needs 3..32 nodes\n");
      return 1;
    }
    memgoal::sim::chaos::GenerateLimits limits;
    limits.num_nodes = system_config.num_nodes;
    limits.horizon_ms = intervals * system_config.observation_interval_ms;
    const memgoal::sim::chaos::Schedule schedule =
        memgoal::sim::chaos::Generate(chaos_seed, limits);
    memgoal::sim::chaos::ApplyToFaultParams(schedule, &system_config.faults);
    std::fprintf(stderr, "# chaos schedule: seed=%llu events=%zu\n",
                 static_cast<unsigned long long>(chaos_seed),
                 schedule.events.size());
  }

  memgoal::core::ClusterSystem system(system_config);

  const int num_classes = static_cast<int>(config.GetInt("classes", 2));
  for (int c = 0; c < num_classes; ++c) {
    const std::string prefix = "class" + std::to_string(c) + "_";
    memgoal::workload::ClassSpec spec;
    spec.id = static_cast<ClassId>(c);
    const double goal = config.GetDouble(prefix + "goal_ms", 0.0);
    if (c != 0 && goal > 0.0) spec.goal_rt_ms = goal;
    if (c != 0 && goal <= 0.0) {
      std::fprintf(stderr, "error: %sgoal_ms required for goal class %d\n",
                   prefix.c_str(), c);
      return 1;
    }
    const PageId slice = system_config.db_pages /
                         static_cast<PageId>(num_classes);
    const std::string default_range =
        std::to_string(c * slice) + ":" + std::to_string((c + 1) * slice);
    memgoal::workload::PageRange range;
    if (!ParseRange(config.GetString(prefix + "pages", default_range),
                    &range)) {
      std::fprintf(stderr, "error: bad %spages\n", prefix.c_str());
      return 1;
    }
    spec.pages = range;
    spec.mean_interarrival_ms =
        config.GetDouble(prefix + "interarrival_ms", 100.0);
    spec.accesses_per_op =
        static_cast<int>(config.GetInt(prefix + "accesses", 4));
    spec.zipf_skew = config.GetDouble(prefix + "skew", 0.0);
    spec.share_prob = config.GetDouble(prefix + "share_prob", 0.0);
    const std::string shared_text =
        config.GetString(prefix + "shared_pages", "");
    const double shared_skew =
        config.GetDouble(prefix + "shared_skew", spec.zipf_skew);
    if (spec.share_prob > 0.0) {
      memgoal::workload::PageRange shared;
      if (!ParseRange(shared_text, &shared)) {
        std::fprintf(stderr, "error: %sshared_pages required\n",
                     prefix.c_str());
        return 1;
      }
      spec.shared_pages = shared;
      spec.shared_skew = shared_skew;
    }
    system.AddClass(spec);
  }

  const std::string trace_path = config.GetString("trace_out", "");
  const std::string decision_path = config.GetString("decision_log", "");
  const std::string obs_csv_path = config.GetString("obs_csv", "");
  const std::string obs_jsonl_path = config.GetString("obs_jsonl", "");
  const std::string profile_path = config.GetString("profile_out", "");
  const std::string profile_folded_path =
      config.GetString("profile_folded", "");
  memgoal::obs::Tracer tracer;
  memgoal::obs::DecisionLog decision_log;
  memgoal::obs::Profiler profiler;
  std::optional<memgoal::obs::Profiler::ScopedInstall> profile_install;
  if (!trace_path.empty()) {
    tracer.Enable(true);
    system.SetTracer(&tracer);
  }
  if (!decision_path.empty()) system.SetDecisionLog(&decision_log);
  if (!profile_path.empty() || !profile_folded_path.empty()) {
    profiler.Enable(true);
    profile_install.emplace(&profiler);
  }
  memgoal::sim::InvariantAuditor auditor;
  const bool audit = config.GetBool("audit", false);
  if (audit) system.EnableAuditor(&auditor);

  // All keys have been queried by now; a --flag nothing consumed is a typo.
  if (!config.RejectUnknownFlags()) {
    std::fprintf(stderr, "error: %s\n", config.error().c_str());
    return 1;
  }
  const auto wall_start = std::chrono::steady_clock::now();
  system.Start();
  system.RunIntervals(intervals);
  const double wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start)
          .count();
  profile_install.reset();
  system.metrics().WriteCsv(stdout);

  bool obs_ok = true;
  if (!trace_path.empty()) {
    obs_ok &= WriteFileOrComplain(trace_path, "trace", [&](std::FILE* f) {
      tracer.WriteJson(f);
    });
    std::fprintf(stderr, "# trace: %zu events -> %s\n", tracer.size(),
                 trace_path.c_str());
  }
  if (!decision_path.empty()) {
    obs_ok &=
        WriteFileOrComplain(decision_path, "decision log", [&](std::FILE* f) {
          decision_log.WriteJsonl(f);
        });
    std::fprintf(stderr, "# decision log: %zu records -> %s\n",
                 decision_log.size(), decision_path.c_str());
  }
  if (!obs_csv_path.empty()) {
    obs_ok &=
        WriteFileOrComplain(obs_csv_path, "metrics CSV", [&](std::FILE* f) {
          system.registry().WriteCsv(f);
        });
  }
  if (!obs_jsonl_path.empty()) {
    obs_ok &=
        WriteFileOrComplain(obs_jsonl_path, "metrics JSONL", [&](std::FILE* f) {
          system.registry().WriteJsonl(f);
        });
  }
  if (!profile_path.empty()) {
    obs_ok &= WriteFileOrComplain(profile_path, "profile", [&](std::FILE* f) {
      std::string json;
      profiler.AppendJson(&json);
      std::fputs(json.c_str(), f);
      std::fputc('\n', f);
    });
    std::fprintf(stderr, "# profile: %llu samples -> %s\n",
                 static_cast<unsigned long long>(profiler.total_count()),
                 profile_path.c_str());
  }
  if (!profile_folded_path.empty()) {
    obs_ok &= WriteFileOrComplain(profile_folded_path, "folded profile",
                                  [&](std::FILE* f) {
                                    profiler.WriteFolded(f);
                                  });
  }
  if (!obs_ok) return 1;

  // Summary to stderr so the CSV stays clean.
  const uint64_t events = system.simulator().events_processed();
  const double sim_ms = system.simulator().Now();
  const double safe_wall = std::max(wall_seconds, 1e-9);
  std::fprintf(stderr,
               "# wall=%.3f s events=%llu events/s=%.3g sim/wall=%.3g\n",
               wall_seconds, static_cast<unsigned long long>(events),
               static_cast<double>(events) / safe_wall,
               sim_ms / (safe_wall * 1e3));
  std::fprintf(stderr, "# %d intervals, %u nodes, policy=%s\n", intervals,
               system_config.num_nodes,
               memgoal::cache::PolicyKindName(system_config.policy));
  for (const auto& spec : system.classes()) {
    const auto& counters = system.counters(spec.id);
    std::fprintf(stderr,
                 "# class %u: accesses=%llu local=%.3f remote=%.3f "
                 "disk=%.3f dedicated=%llu KB\n",
                 spec.id,
                 static_cast<unsigned long long>(counters.total()),
                 counters.HitFraction(memgoal::StorageLevel::kLocalBuffer),
                 counters.HitFraction(memgoal::StorageLevel::kRemoteBuffer),
                 counters.HitFraction(memgoal::StorageLevel::kLocalDisk) +
                     counters.HitFraction(memgoal::StorageLevel::kRemoteDisk),
                 static_cast<unsigned long long>(
                     system.TotalDedicatedBytes(spec.id) / 1024));
  }
  const auto& fault_stats = system.fault_injector().stats();
  if (fault_stats.crashes > 0 || fault_stats.suppressed > 0) {
    std::fprintf(stderr,
                 "# faults: crashes=%llu recoveries=%llu suppressed=%llu "
                 "nodes_up=%u/%u\n",
                 static_cast<unsigned long long>(fault_stats.crashes),
                 static_cast<unsigned long long>(fault_stats.recoveries),
                 static_cast<unsigned long long>(fault_stats.suppressed),
                 system.fault_injector().nodes_up(), system.num_nodes());
  }
  if (fault_stats.degradations > 0) {
    std::fprintf(
        stderr, "# gray faults: episodes=%llu lifted=%llu\n",
        static_cast<unsigned long long>(fault_stats.degradations),
        static_cast<unsigned long long>(fault_stats.degradation_recoveries));
  }
  if (fault_stats.partitions > 0 || fault_stats.link_cuts > 0) {
    std::fprintf(
        stderr,
        "# partitions: episodes=%llu heals=%llu link_cuts=%llu "
        "msgs_dropped=%llu reconciled_hints=%llu stale_grants_rejected=%llu\n",
        static_cast<unsigned long long>(fault_stats.partitions),
        static_cast<unsigned long long>(fault_stats.partition_heals),
        static_cast<unsigned long long>(fault_stats.link_cuts),
        static_cast<unsigned long long>(
            system.network().total_messages_partition_dropped()),
        static_cast<unsigned long long>(system.reconcile_hints_sent()),
        static_cast<unsigned long long>(
            system.grants_rejected_stale_epoch()));
  }
  if (audit) {
    auditor.WriteReport(stderr);
    if (!auditor.ok()) return 1;
  }
  const auto& network = system.network();
  std::fprintf(stderr, "# network: %.1f MB total, protocol share %.5f%%\n",
               static_cast<double>(network.total_bytes_sent()) / 1e6,
               100.0 *
                   static_cast<double>(network.bytes_sent(
                       memgoal::net::TrafficClass::kPartitionProtocol)) /
                   static_cast<double>(network.total_bytes_sent()));

  for (const std::string& key : config.UnusedKeys()) {
    std::fprintf(stderr, "# warning: unused key %s\n", key.c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: %s <scenario.conf|-> [key=value ...]\n", argv[0]);
    return 1;
  }

  memgoal::common::Config config;
  std::string text;
  if (std::string(argv[1]) == "-") {
    std::ostringstream buffer;
    buffer << std::cin.rdbuf();
    text = buffer.str();
  } else {
    std::ifstream file(argv[1]);
    if (!file) {
      std::fprintf(stderr, "error: cannot open %s\n", argv[1]);
      return 1;
    }
    std::ostringstream buffer;
    buffer << file.rdbuf();
    text = buffer.str();
  }
  if (!config.ParseText(text)) {
    std::fprintf(stderr, "error: %s\n", config.error().c_str());
    return 1;
  }
  if (!config.ParseArgs(argc - 1, argv + 1)) {
    std::fprintf(stderr, "error: %s\n", config.error().c_str());
    return 1;
  }
  return Run(config);
}
