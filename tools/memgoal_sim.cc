// memgoal_sim — scenario-file driven simulation runner.
//
// Reads a scenario description (key=value lines, '#' comments) from a file
// given as the first argument (or from stdin with "-"), runs it, prints the
// per-interval metrics as CSV to stdout and a summary to stderr. Any
// further command-line key=value arguments override the file.
//
//   memgoal_sim scenario.conf intervals=120 seed=9
//
// Scenario keys (defaults in parentheses):
//   nodes (3), cache_bytes (2097152), page_bytes (4096), db_pages (2000),
//   interval_ms (5000), seed (1), intervals (40),
//   policy (cost-based | lru | lru-k | fifo),
//   objective (nogoal | variance),
//   disk_seek_ms (8.0), disk_rotation_ms (8.33), disk_transfer (10.0),
//   net_mbit (100.0), net_latency_ms (0.05), net_loss (0.0),
//   net_loss_model (iid | burst), net_burst_g2b (0.0), net_burst_b2g (0.5),
//   net_burst_loss_good (0.0), net_burst_loss_bad (1.0),
//   crash_node (-1), crash_at_ms (0), recover_at_ms (0)
//                                    — scripted crash/recovery of one node
//   fault_mttf_ms (0), fault_mttr_ms (10000), fault_seed (1024369),
//   fault_min_live (1)               — stochastic per-node fault process
//   degrade_node (-1), degrade_at_ms (0), degrade_factor (10),
//   restore_at_ms (0)                — scripted gray degradation of one node
//   fault_mttd_ms (0), fault_degrade_repair_ms (10000),
//   fault_degrade_factor (10)        — stochastic gray-failure process
//   partition_nodes (""), partition_at_ms (0), heal_at_ms (0)
//                                    — scripted group partition: the listed
//                                      nodes (comma-separated) are cut off
//                                      from the rest between the two times
//   fault_mttp_ms (0), fault_partition_heal_ms (10000)
//                                    — stochastic whole-cluster partitions
//   corrupt (all | off | disk | frames)
//                                    — corruption surface / kill switch
//   fault_mttc_ms (0)                — stochastic per-node bit rot
//   corrupt_node (-1), corrupt_at_ms (0), corrupt_count (1),
//   corrupt_salt (1)                 — scripted corruption episode
//   corrupt_latent (0)               — fraction of strikes the checksum
//                                      misses (served unknowingly)
//   scrub (off | idle), scrub_interval_ms (1000)
//                                    — idle-disk background scrubber
//   chaos_seed (0)                   — nonzero: overlay a generated chaos
//                                      schedule (crash x gray x partition)
//                                      on top of the scripted faults
//   audit (0)                        — run the invariant auditor every
//                                      interval; violations fail the run
//   crash_detect_timeout_ms (2.0),
//   queue (calendar | heap)          — event-queue backend (heap is the
//                                      reference bit-identical legacy core)
//   classes (2)                      — total class count including class 0
//
// Observability outputs (also accepted as --trace-out=..., --decision-log=...
// style flags; a path of "" disables; unknown --flags are rejected with a
// near-miss suggestion):
//   trace_out                        — Chrome trace-event JSON of request
//                                      spans (open in Perfetto / about:tracing)
//   decision_log                     — JSONL, one controller decision record
//                                      per coordinator check
//   obs_csv, obs_jsonl               — metrics-registry snapshot history
//   attainment_out                   — per-(class, node, interval) response
//                                      time budget rows + goal-miss root
//                                      cause cards; ".csv" suffix selects
//                                      CSV (budget rows only), anything
//                                      else JSONL
//   profile_out                      — hot-path wall-clock profile as JSON
//   profile_folded                   — same profile as folded stacks
//                                      (flamegraph.pl / speedscope input)
//
// All observability sinks are also flushed from a signal handler on
// abnormal exit (MEMGOAL_CHECK abort, SIGINT, SIGTERM), so a truncated run
// still yields parseable files of complete records.
//   class<i>_goal_ms                 — omit (or 0) for the no-goal class
//   class<i>_pages                   — "begin:end" page range
//   class<i>_interarrival_ms (100), class<i>_accesses (4),
//   class<i>_skew (0), class<i>_share_prob (0),
//   class<i>_shared_pages            — "begin:end" of the shared range
//
// Example scenario file: see tools/scenarios/base.conf.

#include <algorithm>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "common/config.h"
#include "common/logging.h"
#include "core/goal_controller.h"
#include "core/scenario.h"
#include "core/system.h"
#include "net/network.h"
#include "obs/attainment.h"
#include "obs/decision_log.h"
#include "obs/profiler.h"
#include "obs/registry.h"
#include "obs/trace.h"
#include "sim/invariant_auditor.h"

namespace {

bool EndsWithCsv(const std::string& path) {
  return path.size() >= 4 &&
         path.compare(path.size() - 4, 4, ".csv") == 0;
}

/// Emergency flush state: every configured observability sink, flushable
/// exactly once. Armed while the simulation runs; a MEMGOAL_CHECK abort (or
/// SIGINT/SIGTERM) lands in FlushSinksOnSignal, which writes whatever the
/// run produced so far — each Write* emits only complete records, so a
/// truncated run still yields parseable files. The simulator is
/// single-threaded and the crash is synchronous, which is what makes the
/// stdio calls here safe in practice despite signal-safety rules.
struct EmergencySinks {
  std::string trace_path;
  std::string decision_path;
  std::string obs_csv_path;
  std::string obs_jsonl_path;
  std::string attainment_path;
  memgoal::obs::Tracer* tracer = nullptr;
  memgoal::obs::DecisionLog* decision_log = nullptr;
  memgoal::obs::Registry* registry = nullptr;
  memgoal::obs::AttainmentTracker* attainment = nullptr;
  bool armed = false;
  bool flushed = false;

  void Flush() {
    if (!armed || flushed) return;
    flushed = true;
    const auto write = [](const std::string& path, auto&& writer) {
      if (path.empty()) return;
      std::FILE* file = std::fopen(path.c_str(), "w");
      if (file == nullptr) return;
      writer(file);
      std::fclose(file);
    };
    write(trace_path, [&](std::FILE* f) { tracer->WriteJson(f); });
    write(decision_path, [&](std::FILE* f) { decision_log->WriteJsonl(f); });
    write(obs_csv_path, [&](std::FILE* f) { registry->WriteCsv(f); });
    write(obs_jsonl_path, [&](std::FILE* f) { registry->WriteJsonl(f); });
    write(attainment_path, [&](std::FILE* f) {
      if (EndsWithCsv(attainment_path)) {
        attainment->WriteCsv(f);
      } else {
        attainment->WriteJsonl(f);
      }
    });
  }
};

EmergencySinks g_emergency_sinks;

extern "C" void FlushSinksOnSignal(int sig) {
  g_emergency_sinks.Flush();
  std::signal(sig, SIG_DFL);
  std::raise(sig);
}

// Writes `writer(file)` to `path`; returns false (with a message) on I/O
// failure so a bad path fails the run visibly instead of silently.
template <typename Writer>
bool WriteFileOrComplain(const std::string& path, const char* what,
                         Writer&& writer) {
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) {
    std::fprintf(stderr, "error: cannot write %s to %s\n", what, path.c_str());
    return false;
  }
  writer(file);
  std::fclose(file);
  return true;
}

int Run(memgoal::common::Config& config) {
  // Scenario construction (system config, fault scripts, chaos overlay,
  // class specs) lives in core/scenario.{h,cc} so the differential test
  // harness can replay the same .conf files; this tool keeps only the
  // CLI concerns: file I/O, observability wiring and the summary report.
  std::string scenario_error;
  std::optional<memgoal::core::Scenario> scenario =
      memgoal::core::LoadScenario(config, &scenario_error);
  if (!scenario.has_value()) {
    std::fprintf(stderr, "error: %s\n", scenario_error.c_str());
    return 1;
  }
  if (scenario->chaos_seed != 0) {
    std::fprintf(stderr, "# chaos schedule: seed=%llu events=%zu\n",
                 static_cast<unsigned long long>(scenario->chaos_seed),
                 scenario->chaos_events);
  }
  const memgoal::core::SystemConfig& system_config = scenario->system;
  const int intervals = scenario->intervals;

  memgoal::core::ClusterSystem system(system_config);
  for (const memgoal::workload::ClassSpec& spec : scenario->classes) {
    system.AddClass(spec);
  }

  const std::string trace_path = config.GetString("trace_out", "");
  const std::string decision_path = config.GetString("decision_log", "");
  const std::string obs_csv_path = config.GetString("obs_csv", "");
  const std::string obs_jsonl_path = config.GetString("obs_jsonl", "");
  const std::string attainment_path = config.GetString("attainment_out", "");
  const std::string profile_path = config.GetString("profile_out", "");
  const std::string profile_folded_path =
      config.GetString("profile_folded", "");
  memgoal::obs::Tracer tracer;
  memgoal::obs::DecisionLog decision_log;
  memgoal::obs::AttainmentTracker attainment;
  memgoal::obs::Profiler profiler;
  std::optional<memgoal::obs::Profiler::ScopedInstall> profile_install;
  if (!trace_path.empty()) {
    tracer.Enable(true);
    system.SetTracer(&tracer);
  }
  if (!decision_path.empty()) system.SetDecisionLog(&decision_log);
  if (!attainment_path.empty()) {
    attainment.Enable(true);
    system.SetAttainment(&attainment);
  }
  if (!profile_path.empty() || !profile_folded_path.empty()) {
    profiler.Enable(true);
    profile_install.emplace(&profiler);
  }
  memgoal::sim::InvariantAuditor auditor;
  const bool audit = scenario->audit;
  if (audit) system.EnableAuditor(&auditor);

  // All keys have been queried by now; a --flag nothing consumed is a typo.
  if (!config.RejectUnknownFlags()) {
    std::fprintf(stderr, "error: %s\n", config.error().c_str());
    return 1;
  }

  // Arm the abnormal-exit sink flush for the duration of this call (the
  // sinks are Run()-locals, so the guard disarms before they go away).
  g_emergency_sinks.trace_path = trace_path;
  g_emergency_sinks.decision_path = decision_path;
  g_emergency_sinks.obs_csv_path = obs_csv_path;
  g_emergency_sinks.obs_jsonl_path = obs_jsonl_path;
  g_emergency_sinks.attainment_path = attainment_path;
  g_emergency_sinks.tracer = &tracer;
  g_emergency_sinks.decision_log = &decision_log;
  g_emergency_sinks.registry = &system.registry();
  g_emergency_sinks.attainment = &attainment;
  g_emergency_sinks.armed = true;
  g_emergency_sinks.flushed = false;
  struct EmergencyDisarm {
    ~EmergencyDisarm() { g_emergency_sinks = EmergencySinks{}; }
  } emergency_disarm;
  std::signal(SIGABRT, FlushSinksOnSignal);
  std::signal(SIGINT, FlushSinksOnSignal);
  std::signal(SIGTERM, FlushSinksOnSignal);

  const auto wall_start = std::chrono::steady_clock::now();
  system.Start();
  system.RunIntervals(intervals);
  const double wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start)
          .count();
  profile_install.reset();
  system.metrics().WriteCsv(stdout);

  bool obs_ok = true;
  if (!trace_path.empty()) {
    obs_ok &= WriteFileOrComplain(trace_path, "trace", [&](std::FILE* f) {
      tracer.WriteJson(f);
    });
    std::fprintf(stderr, "# trace: %zu events -> %s\n", tracer.size(),
                 trace_path.c_str());
  }
  if (!decision_path.empty()) {
    obs_ok &=
        WriteFileOrComplain(decision_path, "decision log", [&](std::FILE* f) {
          decision_log.WriteJsonl(f);
        });
    std::fprintf(stderr, "# decision log: %zu records -> %s\n",
                 decision_log.size(), decision_path.c_str());
  }
  if (!obs_csv_path.empty()) {
    obs_ok &=
        WriteFileOrComplain(obs_csv_path, "metrics CSV", [&](std::FILE* f) {
          system.registry().WriteCsv(f);
        });
  }
  if (!obs_jsonl_path.empty()) {
    obs_ok &=
        WriteFileOrComplain(obs_jsonl_path, "metrics JSONL", [&](std::FILE* f) {
          system.registry().WriteJsonl(f);
        });
  }
  if (!attainment_path.empty()) {
    obs_ok &= WriteFileOrComplain(
        attainment_path, "attainment report", [&](std::FILE* f) {
          if (EndsWithCsv(attainment_path)) {
            attainment.WriteCsv(f);
          } else {
            attainment.WriteJsonl(f);
          }
        });
    std::fprintf(stderr,
                 "# attainment: %zu budget rows, %zu miss cards -> %s\n",
                 attainment.rows().size(), attainment.cards().size(),
                 attainment_path.c_str());
  }
  // The normal-path writes above supersede the emergency flush.
  g_emergency_sinks.flushed = true;
  if (!profile_path.empty()) {
    obs_ok &= WriteFileOrComplain(profile_path, "profile", [&](std::FILE* f) {
      std::string json;
      profiler.AppendJson(&json);
      std::fputs(json.c_str(), f);
      std::fputc('\n', f);
    });
    std::fprintf(stderr, "# profile: %llu samples -> %s\n",
                 static_cast<unsigned long long>(profiler.total_count()),
                 profile_path.c_str());
  }
  if (!profile_folded_path.empty()) {
    obs_ok &= WriteFileOrComplain(profile_folded_path, "folded profile",
                                  [&](std::FILE* f) {
                                    profiler.WriteFolded(f);
                                  });
  }
  if (!obs_ok) return 1;

  // Summary to stderr so the CSV stays clean.
  const uint64_t events = system.simulator().events_processed();
  const double sim_ms = system.simulator().Now();
  const double safe_wall = std::max(wall_seconds, 1e-9);
  std::fprintf(stderr,
               "# wall=%.3f s events=%llu events/s=%.3g sim/wall=%.3g\n",
               wall_seconds, static_cast<unsigned long long>(events),
               static_cast<double>(events) / safe_wall,
               sim_ms / (safe_wall * 1e3));
  std::fprintf(stderr, "# %d intervals, %u nodes, policy=%s\n", intervals,
               system_config.num_nodes,
               memgoal::cache::PolicyKindName(system_config.policy));
  for (const auto& spec : system.classes()) {
    const auto& counters = system.counters(spec.id);
    std::fprintf(stderr,
                 "# class %u: accesses=%llu local=%.3f remote=%.3f "
                 "disk=%.3f dedicated=%llu KB\n",
                 spec.id,
                 static_cast<unsigned long long>(counters.total()),
                 counters.HitFraction(memgoal::StorageLevel::kLocalBuffer),
                 counters.HitFraction(memgoal::StorageLevel::kRemoteBuffer),
                 counters.HitFraction(memgoal::StorageLevel::kLocalDisk) +
                     counters.HitFraction(memgoal::StorageLevel::kRemoteDisk),
                 static_cast<unsigned long long>(
                     system.TotalDedicatedBytes(spec.id) / 1024));
  }
  if (!attainment_path.empty()) attainment.WriteSummary(stderr);
  const auto& fault_stats = system.fault_injector().stats();
  if (fault_stats.crashes > 0 || fault_stats.suppressed > 0) {
    std::fprintf(stderr,
                 "# faults: crashes=%llu recoveries=%llu suppressed=%llu "
                 "nodes_up=%u/%u\n",
                 static_cast<unsigned long long>(fault_stats.crashes),
                 static_cast<unsigned long long>(fault_stats.recoveries),
                 static_cast<unsigned long long>(fault_stats.suppressed),
                 system.fault_injector().nodes_up(), system.num_nodes());
  }
  if (fault_stats.degradations > 0) {
    std::fprintf(
        stderr, "# gray faults: episodes=%llu lifted=%llu\n",
        static_cast<unsigned long long>(fault_stats.degradations),
        static_cast<unsigned long long>(fault_stats.degradation_recoveries));
  }
  if (fault_stats.partitions > 0 || fault_stats.link_cuts > 0) {
    std::fprintf(
        stderr,
        "# partitions: episodes=%llu heals=%llu link_cuts=%llu "
        "msgs_dropped=%llu reconciled_hints=%llu stale_grants_rejected=%llu\n",
        static_cast<unsigned long long>(fault_stats.partitions),
        static_cast<unsigned long long>(fault_stats.partition_heals),
        static_cast<unsigned long long>(fault_stats.link_cuts),
        static_cast<unsigned long long>(
            system.network().total_messages_partition_dropped()),
        static_cast<unsigned long long>(system.reconcile_hints_sent()),
        static_cast<unsigned long long>(
            system.grants_rejected_stale_epoch()));
  }
  if (fault_stats.corruptions > 0 || system.pages_scrubbed() > 0) {
    std::fprintf(
        stderr,
        "# corruption: injected=%llu detected=%llu served=%llu "
        "latent_served=%llu quarantined=%llu repaired=%llu lost=%llu "
        "scrubbed=%llu\n",
        static_cast<unsigned long long>(fault_stats.corruptions),
        static_cast<unsigned long long>(system.corrupt_detected()),
        static_cast<unsigned long long>(system.corrupt_served()),
        static_cast<unsigned long long>(system.latent_served()),
        static_cast<unsigned long long>(system.quarantine_decisions()),
        static_cast<unsigned long long>(system.repairs_replica()),
        static_cast<unsigned long long>(system.pages_lost()),
        static_cast<unsigned long long>(system.pages_scrubbed()));
  }
  if (audit) {
    auditor.WriteReport(stderr);
    if (!auditor.ok()) return 1;
  }
  const auto& network = system.network();
  std::fprintf(stderr, "# network: %.1f MB total, protocol share %.5f%%\n",
               static_cast<double>(network.total_bytes_sent()) / 1e6,
               100.0 *
                   static_cast<double>(network.bytes_sent(
                       memgoal::net::TrafficClass::kPartitionProtocol)) /
                   static_cast<double>(network.total_bytes_sent()));

  for (const std::string& key : config.UnusedKeys()) {
    std::fprintf(stderr, "# warning: unused key %s\n", key.c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: %s <scenario.conf|-> [key=value ...]\n", argv[0]);
    return 1;
  }

  memgoal::common::Config config;
  std::string text;
  if (std::string(argv[1]) == "-") {
    std::ostringstream buffer;
    buffer << std::cin.rdbuf();
    text = buffer.str();
  } else {
    std::ifstream file(argv[1]);
    if (!file) {
      std::fprintf(stderr, "error: cannot open %s\n", argv[1]);
      return 1;
    }
    std::ostringstream buffer;
    buffer << file.rdbuf();
    text = buffer.str();
  }
  if (!config.ParseText(text)) {
    std::fprintf(stderr, "error: %s\n", config.error().c_str());
    return 1;
  }
  if (!config.ParseArgs(argc - 1, argv + 1)) {
    std::fprintf(stderr, "error: %s\n", config.error().c_str());
    return 1;
  }
  return Run(config);
}
