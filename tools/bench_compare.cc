// bench_compare — regression gate over BENCH_*.json telemetry.
//
// Usage:
//   bench_compare <baseline-dir> <candidate-dir> [flags...]
//   bench_compare <baseline-dir-or-file...> --candidate=<dir-or-file>
//       [--wall-threshold=0.15] [--abs-slack-ms=50] [--output=<markdown>]
//
// Each positional argument (and the --candidate value) may be a directory —
// scanned for BENCH_*.json — or a single .json file. Prints the markdown
// delta table to stdout (and to --output when given).
//
// Exit codes: 0 no regression, 1 regression or missing bench, 2 usage or
// load error.

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "bench/compare.h"
#include "common/config.h"

namespace memgoal::bench {
namespace {

namespace fs = std::filesystem;

// Expands a directory into its BENCH_*.json files (sorted, so runs are
// deterministic); passes regular files through unchanged.
bool CollectReportPaths(const std::string& root,
                        std::vector<std::string>* paths) {
  std::error_code ec;
  if (fs::is_directory(root, ec)) {
    std::vector<std::string> found;
    for (const fs::directory_entry& entry : fs::directory_iterator(root, ec)) {
      const std::string name = entry.path().filename().string();
      if (name.rfind("BENCH_", 0) == 0 && name.size() > 5 &&
          name.compare(name.size() - 5, 5, ".json") == 0) {
        found.push_back(entry.path().string());
      }
    }
    if (ec) {
      std::fprintf(stderr, "bench_compare: cannot read %s: %s\n",
                   root.c_str(), ec.message().c_str());
      return false;
    }
    std::sort(found.begin(), found.end());
    if (found.empty()) {
      std::fprintf(stderr, "bench_compare: no BENCH_*.json under %s\n",
                   root.c_str());
      return false;
    }
    paths->insert(paths->end(), found.begin(), found.end());
    return true;
  }
  if (fs::is_regular_file(root, ec)) {
    paths->push_back(root);
    return true;
  }
  std::fprintf(stderr, "bench_compare: no such file or directory: %s\n",
               root.c_str());
  return false;
}

bool LoadReports(const std::vector<std::string>& roots,
                 std::vector<BenchReport>* reports) {
  std::vector<std::string> paths;
  for (const std::string& root : roots) {
    if (!CollectReportPaths(root, &paths)) return false;
  }
  for (const std::string& path : paths) {
    BenchReport report;
    std::string error;
    if (!LoadBenchReport(path, &report, &error)) {
      std::fprintf(stderr, "bench_compare: %s\n", error.c_str());
      return false;
    }
    reports->push_back(std::move(report));
  }
  return true;
}

int Main(int argc, char** argv) {
  // Split positionals (baseline, then candidate) from --flags so the Config
  // parser — which expects key=value — only sees the flags.
  std::vector<std::string> positionals;
  std::vector<char*> flag_args;
  flag_args.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--", 2) == 0) {
      flag_args.push_back(argv[i]);
    } else {
      positionals.emplace_back(argv[i]);
    }
  }
  common::Config args;
  if (!args.ParseArgs(static_cast<int>(flag_args.size()), flag_args.data())) {
    std::fprintf(stderr, "bench_compare: %s\n", args.error().c_str());
    return 2;
  }

  CompareOptions options;
  options.wall_threshold = args.GetDouble("wall_threshold", 0.15);
  options.wall_abs_slack_seconds = args.GetDouble("abs_slack_ms", 50.0) / 1e3;
  const std::string candidate_arg = args.GetString("candidate", "");
  const std::string output_path = args.GetString("output", "");
  if (!args.RejectUnknownFlags()) {
    std::fprintf(stderr, "bench_compare: %s\n", args.error().c_str());
    return 2;
  }

  std::vector<std::string> baseline_roots = positionals;
  std::vector<std::string> candidate_roots;
  if (!candidate_arg.empty()) {
    candidate_roots.push_back(candidate_arg);
  } else if (baseline_roots.size() >= 2) {
    candidate_roots.push_back(baseline_roots.back());
    baseline_roots.pop_back();
  }
  if (baseline_roots.empty() || candidate_roots.empty()) {
    std::fprintf(stderr,
                 "usage: bench_compare <baseline-dir> <candidate-dir> "
                 "[--wall-threshold=0.15] [--abs-slack-ms=50] "
                 "[--output=FILE]\n");
    return 2;
  }

  std::vector<BenchReport> baseline;
  std::vector<BenchReport> candidate;
  if (!LoadReports(baseline_roots, &baseline)) return 2;
  if (!LoadReports(candidate_roots, &candidate)) return 2;

  const CompareResult result = CompareReports(baseline, candidate, options);
  std::fputs(result.markdown.c_str(), stdout);
  std::printf("\n%d regression(s), %d informational change(s) across %zu "
              "baseline bench(es)\n",
              result.regressions, result.changes, baseline.size());
  if (!output_path.empty()) {
    std::FILE* out = std::fopen(output_path.c_str(), "w");
    if (out == nullptr) {
      std::fprintf(stderr, "bench_compare: cannot write %s\n",
                   output_path.c_str());
      return 2;
    }
    std::fputs(result.markdown.c_str(), out);
    std::fclose(out);
  }
  return result.regressions > 0 ? 1 : 0;
}

}  // namespace
}  // namespace memgoal::bench

int main(int argc, char** argv) { return memgoal::bench::Main(argc, argv); }
