// attainment_report — renders a memgoal_sim --attainment-out JSONL file as
// a per-class markdown summary (CI uploads the result as a workflow
// artifact next to the raw JSONL).
//
//   attainment_report attainment.jsonl > attainment.md
//
// Input: one JSON object per line; "type":"budget" rows carry the
// per-(class, node, interval) response-time budget decomposition,
// "type":"miss_card" rows the goal-miss root-cause cards. The parser here
// is deliberately minimal — it only consumes what AttainmentTracker emits.

#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "obs/latency_budget.h"

namespace {

using memgoal::obs::BudgetPhase;
using memgoal::obs::BudgetPhaseName;
using memgoal::obs::kNumBudgetPhases;

// Finds `"key":` in `line` and parses the value as a double. Returns false
// when the key is absent. Sufficient for AttainmentTracker's flat output
// (no nested objects, keys never appear inside string values except
// dominant_phase/lp_mode, which we parse as strings).
bool FindNumber(const std::string& line, const char* key, double* out) {
  std::string needle = "\"";
  needle += key;
  needle += "\":";
  const size_t pos = line.find(needle);
  if (pos == std::string::npos) return false;
  *out = std::strtod(line.c_str() + pos + needle.size(), nullptr);
  return true;
}

bool FindString(const std::string& line, const char* key, std::string* out) {
  std::string needle = "\"";
  needle += key;
  needle += "\":\"";
  const size_t pos = line.find(needle);
  if (pos == std::string::npos) return false;
  const size_t begin = pos + needle.size();
  const size_t end = line.find('"', begin);
  if (end == std::string::npos) return false;
  out->assign(line, begin, end - begin);
  return true;
}

struct ClassTotals {
  uint64_t requests = 0;
  double rt_sum_ms = 0.0;
  double phase_ms[kNumBudgetPhases] = {};
  uint64_t miss_cards = 0;
  std::map<std::string, uint64_t> miss_dominants;
};

}  // namespace

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: %s <attainment.jsonl>\n", argv[0]);
    return 1;
  }
  std::ifstream in(argv[1]);
  if (!in) {
    std::fprintf(stderr, "error: cannot open %s\n", argv[1]);
    return 1;
  }

  std::map<uint32_t, ClassTotals> classes;
  int intervals = 0;
  std::string line;
  while (std::getline(in, line)) {
    double klass_d = 0.0;
    if (!FindNumber(line, "class", &klass_d)) continue;
    ClassTotals& totals = classes[static_cast<uint32_t>(klass_d)];
    if (line.find("\"type\":\"budget\"") != std::string::npos) {
      double value = 0.0;
      if (FindNumber(line, "interval", &value) &&
          static_cast<int>(value) + 1 > intervals) {
        intervals = static_cast<int>(value) + 1;
      }
      if (FindNumber(line, "requests", &value)) {
        totals.requests += static_cast<uint64_t>(value);
      }
      if (FindNumber(line, "rt_sum_ms", &value)) totals.rt_sum_ms += value;
      for (int i = 0; i < kNumBudgetPhases; ++i) {
        char key[48];
        std::snprintf(key, sizeof(key), "%s_ms",
                      BudgetPhaseName(static_cast<BudgetPhase>(i)));
        if (FindNumber(line, key, &value)) totals.phase_ms[i] += value;
      }
    } else if (line.find("\"type\":\"miss_card\"") != std::string::npos) {
      ++totals.miss_cards;
      std::string dominant;
      if (FindString(line, "dominant_phase", &dominant)) {
        ++totals.miss_dominants[dominant];
      }
    }
  }

  std::printf("# Goal-attainment report\n\n");
  std::printf("%d observation intervals, %zu classes with budget data.\n\n",
              intervals, classes.size());
  std::printf("| class | requests | mean rt (ms) |");
  for (int i = 0; i < kNumBudgetPhases; ++i) {
    std::printf(" %s %% |", BudgetPhaseName(static_cast<BudgetPhase>(i)));
  }
  std::printf(" miss cards |\n");
  std::printf("|---|---|---|");
  for (int i = 0; i < kNumBudgetPhases; ++i) std::printf("---|");
  std::printf("---|\n");
  for (const auto& [klass, totals] : classes) {
    const double mean_rt =
        totals.requests > 0
            ? totals.rt_sum_ms / static_cast<double>(totals.requests)
            : 0.0;
    std::printf("| %u | %" PRIu64 " | %.3f |", klass, totals.requests,
                mean_rt);
    for (int i = 0; i < kNumBudgetPhases; ++i) {
      const double share = totals.rt_sum_ms > 0.0
                               ? 100.0 * totals.phase_ms[i] / totals.rt_sum_ms
                               : 0.0;
      std::printf(" %.1f |", share);
    }
    std::printf(" %" PRIu64 " |\n", totals.miss_cards);
  }
  bool any_misses = false;
  for (const auto& [klass, totals] : classes) {
    if (totals.miss_cards == 0) continue;
    if (!any_misses) {
      std::printf("\n## Goal misses by dominant phase\n\n");
      any_misses = true;
    }
    std::printf("- class %u:", klass);
    for (const auto& [phase, count] : totals.miss_dominants) {
      std::printf(" %s=%" PRIu64, phase.c_str(), count);
    }
    std::printf("\n");
  }
  return 0;
}
