// Failure injection and operational-change tests for the goal-oriented
// controller: coordinator migration (§5) and best-effort message loss.

#include <gtest/gtest.h>

#include "core/goal_controller.h"
#include "core/system.h"
#include "net/network.h"
#include "workload/spec.h"

namespace memgoal::core {
namespace {

SystemConfig TestConfig(uint64_t seed = 1) {
  SystemConfig config;
  config.num_nodes = 3;
  config.cache_bytes_per_node = 64 * 4096;
  config.db_pages = 200;
  config.observation_interval_ms = 5000.0;
  config.seed = seed;
  return config;
}

workload::ClassSpec GoalClass(double goal_ms) {
  workload::ClassSpec spec;
  spec.id = 1;
  spec.goal_rt_ms = goal_ms;
  spec.accesses_per_op = 4;
  spec.mean_interarrival_ms = 50.0;
  spec.pages = {0, 100};
  return spec;
}

workload::ClassSpec NoGoalClass() {
  workload::ClassSpec spec;
  spec.id = kNoGoalClass;
  spec.accesses_per_op = 4;
  spec.mean_interarrival_ms = 50.0;
  spec.pages = {100, 200};
  return spec;
}

int SatisfiedInTail(const ClusterSystem& system, int tail) {
  const auto& records = system.metrics().records();
  int satisfied = 0;
  for (size_t i = records.size() - static_cast<size_t>(tail);
       i < records.size(); ++i) {
    satisfied += records[i].ForClass(1).satisfied ? 1 : 0;
  }
  return satisfied;
}

TEST(RobustnessTest, CoordinatorMigrationKeepsControlling) {
  ClusterSystem system(TestConfig(31));
  system.AddClass(GoalClass(3.5));
  system.AddClass(NoGoalClass());
  system.Start();
  system.RunIntervals(10);
  auto& controller =
      dynamic_cast<GoalOrientedController&>(system.controller());
  ASSERT_EQ(controller.coordinator_node(1), 0u);

  const uint64_t protocol_before =
      system.network().messages_sent(net::TrafficClass::kPartitionProtocol);
  controller.MigrateCoordinator(1, 2);
  EXPECT_EQ(controller.coordinator_node(1), 2u);
  system.RunIntervals(15);

  // Migration sent notification traffic...
  EXPECT_GT(
      system.network().messages_sent(net::TrafficClass::kPartitionProtocol),
      protocol_before + 3);
  // ...and the loop keeps functioning from the new home: measure points
  // keep flowing and the goal is still worked towards.
  EXPECT_TRUE(controller.measure_store(1).ready());
  EXPECT_GE(SatisfiedInTail(system, 10), 3);
}

TEST(RobustnessTest, MigrationToSameNodeIsNoOp) {
  ClusterSystem system(TestConfig(32));
  system.AddClass(GoalClass(3.5));
  system.AddClass(NoGoalClass());
  system.Start();
  system.RunIntervals(1);
  auto& controller =
      dynamic_cast<GoalOrientedController&>(system.controller());
  const uint64_t before =
      system.network().messages_sent(net::TrafficClass::kPartitionProtocol);
  controller.MigrateCoordinator(1, controller.coordinator_node(1));
  EXPECT_EQ(
      system.network().messages_sent(net::TrafficClass::kPartitionProtocol),
      before);
}

TEST(RobustnessTest, FeedbackSurvivesProtocolMessageLoss) {
  // 20% of reports/commands/acks/hints vanish; the feedback design must
  // still converge to the goal (stale views are repaired by later rounds).
  SystemConfig config = TestConfig(33);
  config.network.loss_probability = 0.2;
  ClusterSystem system(config);
  system.AddClass(GoalClass(3.5));
  system.AddClass(NoGoalClass());
  system.Start();
  system.RunIntervals(30);

  EXPECT_GT(system.network().messages_dropped(
                net::TrafficClass::kPartitionProtocol) +
                system.network().messages_dropped(
                    net::TrafficClass::kHeatHint),
            0u);
  EXPECT_GE(SatisfiedInTail(system, 10), 4);
}

TEST(RobustnessTest, ReliableCategoriesNeverDrop) {
  SystemConfig config = TestConfig(34);
  config.network.loss_probability = 0.5;
  ClusterSystem system(config);
  system.AddClass(GoalClass(1000.0));
  system.AddClass(NoGoalClass());
  system.Start();
  system.RunIntervals(3);
  EXPECT_EQ(system.network().messages_dropped(net::TrafficClass::kControl),
            0u);
  EXPECT_EQ(system.network().messages_dropped(net::TrafficClass::kPage), 0u);
  EXPECT_GT(system.network().messages_sent(net::TrafficClass::kPage), 0u);
}

TEST(RobustnessTest, LossFractionMatchesConfiguredProbability) {
  SystemConfig config = TestConfig(35);
  config.network.loss_probability = 0.3;
  ClusterSystem system(config);
  system.AddClass(GoalClass(2.0));  // active goal: plenty of protocol traffic
  system.AddClass(NoGoalClass());
  system.Start();
  system.RunIntervals(30);
  const auto& network = system.network();
  const uint64_t sent =
      network.messages_sent(net::TrafficClass::kHeatHint) +
      network.messages_sent(net::TrafficClass::kPartitionProtocol);
  const uint64_t dropped =
      network.messages_dropped(net::TrafficClass::kHeatHint) +
      network.messages_dropped(net::TrafficClass::kPartitionProtocol);
  ASSERT_GT(sent, 500u);
  const double fraction =
      static_cast<double>(dropped) / static_cast<double>(sent);
  EXPECT_NEAR(fraction, 0.3, 0.05);
}

}  // namespace
}  // namespace memgoal::core
