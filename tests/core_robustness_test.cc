// Failure injection and operational-change tests for the goal-oriented
// controller: coordinator migration (§5) and best-effort message loss.

#include <gtest/gtest.h>

#include <vector>

#include "core/goal_controller.h"
#include "core/system.h"
#include "net/network.h"
#include "workload/spec.h"

namespace memgoal::core {
namespace {

SystemConfig TestConfig(uint64_t seed = 1) {
  SystemConfig config;
  config.num_nodes = 3;
  config.cache_bytes_per_node = 64 * 4096;
  config.db_pages = 200;
  config.observation_interval_ms = 5000.0;
  config.seed = seed;
  return config;
}

workload::ClassSpec GoalClass(double goal_ms) {
  workload::ClassSpec spec;
  spec.id = 1;
  spec.goal_rt_ms = goal_ms;
  spec.accesses_per_op = 4;
  spec.mean_interarrival_ms = 50.0;
  spec.pages = {0, 100};
  return spec;
}

workload::ClassSpec NoGoalClass() {
  workload::ClassSpec spec;
  spec.id = kNoGoalClass;
  spec.accesses_per_op = 4;
  spec.mean_interarrival_ms = 50.0;
  spec.pages = {100, 200};
  return spec;
}

int SatisfiedInTail(const ClusterSystem& system, int tail) {
  const auto& records = system.metrics().records();
  int satisfied = 0;
  for (size_t i = records.size() - static_cast<size_t>(tail);
       i < records.size(); ++i) {
    satisfied += records[i].ForClass(1).satisfied ? 1 : 0;
  }
  return satisfied;
}

TEST(RobustnessTest, CoordinatorMigrationKeepsControlling) {
  ClusterSystem system(TestConfig(31));
  system.AddClass(GoalClass(3.5));
  system.AddClass(NoGoalClass());
  system.Start();
  system.RunIntervals(10);
  auto& controller =
      dynamic_cast<GoalOrientedController&>(system.controller());
  ASSERT_EQ(controller.coordinator_node(1), 0u);

  const uint64_t protocol_before =
      system.network().messages_sent(net::TrafficClass::kPartitionProtocol);
  controller.MigrateCoordinator(1, 2);
  EXPECT_EQ(controller.coordinator_node(1), 2u);
  system.RunIntervals(15);

  // Migration sent notification traffic...
  EXPECT_GT(
      system.network().messages_sent(net::TrafficClass::kPartitionProtocol),
      protocol_before + 3);
  // ...and the loop keeps functioning from the new home: measure points
  // keep flowing and the goal is still worked towards.
  EXPECT_TRUE(controller.measure_store(1).ready());
  EXPECT_GE(SatisfiedInTail(system, 10), 3);
}

TEST(RobustnessTest, MigrationToSameNodeIsNoOp) {
  ClusterSystem system(TestConfig(32));
  system.AddClass(GoalClass(3.5));
  system.AddClass(NoGoalClass());
  system.Start();
  system.RunIntervals(1);
  auto& controller =
      dynamic_cast<GoalOrientedController&>(system.controller());
  const uint64_t before =
      system.network().messages_sent(net::TrafficClass::kPartitionProtocol);
  controller.MigrateCoordinator(1, controller.coordinator_node(1));
  EXPECT_EQ(
      system.network().messages_sent(net::TrafficClass::kPartitionProtocol),
      before);
}

TEST(RobustnessTest, FeedbackSurvivesProtocolMessageLoss) {
  // 20% of reports/commands/acks/hints vanish; the feedback design must
  // still converge to the goal (stale views are repaired by later rounds).
  SystemConfig config = TestConfig(33);
  config.network.loss_probability = 0.2;
  ClusterSystem system(config);
  system.AddClass(GoalClass(3.5));
  system.AddClass(NoGoalClass());
  system.Start();
  system.RunIntervals(30);

  EXPECT_GT(system.network().messages_dropped(
                net::TrafficClass::kPartitionProtocol) +
                system.network().messages_dropped(
                    net::TrafficClass::kHeatHint),
            0u);
  EXPECT_GE(SatisfiedInTail(system, 10), 4);
}

TEST(RobustnessTest, ReliableCategoriesNeverDrop) {
  SystemConfig config = TestConfig(34);
  config.network.loss_probability = 0.5;
  ClusterSystem system(config);
  system.AddClass(GoalClass(1000.0));
  system.AddClass(NoGoalClass());
  system.Start();
  system.RunIntervals(3);
  EXPECT_EQ(system.network().messages_dropped(net::TrafficClass::kControl),
            0u);
  EXPECT_EQ(system.network().messages_dropped(net::TrafficClass::kPage), 0u);
  EXPECT_GT(system.network().messages_sent(net::TrafficClass::kPage), 0u);
}

TEST(RobustnessTest, LossFractionMatchesConfiguredProbability) {
  SystemConfig config = TestConfig(35);
  config.network.loss_probability = 0.3;
  ClusterSystem system(config);
  system.AddClass(GoalClass(2.0));  // active goal: plenty of protocol traffic
  system.AddClass(NoGoalClass());
  system.Start();
  system.RunIntervals(30);
  const auto& network = system.network();
  const uint64_t sent =
      network.messages_sent(net::TrafficClass::kHeatHint) +
      network.messages_sent(net::TrafficClass::kPartitionProtocol);
  const uint64_t dropped =
      network.messages_dropped(net::TrafficClass::kHeatHint) +
      network.messages_dropped(net::TrafficClass::kPartitionProtocol);
  ASSERT_GT(sent, 500u);
  const double fraction =
      static_cast<double>(dropped) / static_cast<double>(sent);
  EXPECT_NEAR(fraction, 0.3, 0.05);
}

TEST(FaultToleranceTest, CrashDuringWarmupStillConverges) {
  // Node 2 dies at 7.5 s — while the coordinator is still collecting its
  // first measure points — and returns at 40 s. Both transitions reset the
  // store; the controller must re-warm-up and still reach the goal.
  SystemConfig config = TestConfig(41);
  config.faults.script = {{7500.0, 2, /*crash=*/true},
                          {40000.0, 2, /*crash=*/false}};
  ClusterSystem system(config);
  system.AddClass(GoalClass(3.5));
  system.AddClass(NoGoalClass());
  system.Start();
  system.RunIntervals(30);

  const auto& controller =
      dynamic_cast<GoalOrientedController&>(system.controller());
  EXPECT_EQ(controller.stats().crashes_observed, 1u);
  EXPECT_EQ(controller.stats().recoveries_observed, 1u);
  // Crash and recovery each force a measurement restart.
  EXPECT_GE(controller.stats().store_resets, 2u);
  EXPECT_EQ(system.fault_injector().stats().crashes, 1u);
  EXPECT_GE(SatisfiedInTail(system, 10), 4);
}

TEST(FaultToleranceTest, CoordinatorCrashFailsOverToLowestLiveNode) {
  ClusterSystem system(TestConfig(42));
  system.AddClass(GoalClass(3.5));
  system.AddClass(NoGoalClass());
  system.Start();
  system.RunIntervals(12);
  auto& controller =
      dynamic_cast<GoalOrientedController&>(system.controller());
  ASSERT_EQ(controller.coordinator_node(1), 0u);

  // The coordinator's own node dies: its views and measure points lived in
  // that memory, so the class re-homes on the lowest live node with a fresh
  // store.
  ASSERT_TRUE(system.fault_injector().Crash(0));
  EXPECT_EQ(controller.coordinator_node(1), 1u);
  EXPECT_EQ(controller.stats().coordinator_failovers, 1u);
  EXPECT_FALSE(controller.measure_store(1).ready());

  // Control keeps running from the new home during the outage: operations
  // on the surviving nodes complete in every interval.
  system.RunIntervals(8);
  const auto& records = system.metrics().records();
  for (size_t i = 12; i < records.size(); ++i) {
    EXPECT_EQ(records[i].nodes_up, 2u);
    EXPECT_GT(records[i].ForClass(1).ops_completed, 0u);
    EXPECT_GT(records[i].ForClass(kNoGoalClass).ops_completed, 0u);
  }

  ASSERT_TRUE(system.fault_injector().Recover(0));
  system.RunIntervals(20);
  // The coordinator stays at its failover home, and the loop re-converges
  // over the full node set.
  EXPECT_EQ(controller.coordinator_node(1), 1u);
  EXPECT_EQ(system.metrics().back().nodes_up, 3u);
  EXPECT_GE(SatisfiedInTail(system, 10), 4);
}

TEST(FaultToleranceTest, RecoveryShrinksThenRestoresActiveNodeSet) {
  ClusterSystem system(TestConfig(43));
  system.AddClass(GoalClass(3.5));
  system.AddClass(NoGoalClass());
  system.Start();
  system.RunIntervals(10);
  auto& controller =
      dynamic_cast<GoalOrientedController&>(system.controller());

  ASSERT_TRUE(system.fault_injector().Crash(2));
  // The fit shrinks to the live subspace {0, 1}...
  EXPECT_EQ(controller.measure_store(1).active_nodes(),
            (std::vector<size_t>{0, 1}));
  const uint64_t resets_after_crash = controller.stats().store_resets;
  EXPECT_GE(resets_after_crash, 1u);

  // ...and with 2 live nodes it needs only 3 points to become ready again.
  system.RunIntervals(10);
  const uint64_t warmups_during_outage = controller.stats().warmup_steps;

  ASSERT_TRUE(system.fault_injector().Recover(2));
  // Full dimensionality restored, store reset once more, warm-up re-entered.
  EXPECT_EQ(controller.measure_store(1).active_nodes(),
            (std::vector<size_t>{0, 1, 2}));
  EXPECT_GT(controller.stats().store_resets, resets_after_crash);
  EXPECT_FALSE(controller.measure_store(1).ready());
  system.RunIntervals(15);
  EXPECT_GT(controller.stats().warmup_steps, warmups_during_outage);
  EXPECT_GE(SatisfiedInTail(system, 8), 3);
}

TEST(FaultToleranceTest, EndToEndCrashRecoveryWithBurstLoss) {
  // The acceptance scenario: 3 nodes, node 2 crashes at 57 s and recovers
  // at 112 s, with bursty best-effort message loss on top. During the
  // outage both classes keep being served; after recovery the goal class
  // re-converges within a bounded number of intervals.
  SystemConfig config = TestConfig(44);
  config.faults.script = {{57000.0, 2, /*crash=*/true},
                          {112000.0, 2, /*crash=*/false}};
  config.network.loss_model = net::LossModel::kBurst;
  config.network.burst_good_to_bad = 0.05;
  config.network.burst_bad_to_good = 0.5;
  config.network.burst_loss_good = 0.0;
  config.network.burst_loss_bad = 0.8;
  ClusterSystem system(config);
  system.AddClass(GoalClass(3.5));
  system.AddClass(NoGoalClass());
  system.Start();
  system.RunIntervals(45);

  // Availability column: the outage exactly covers the interval boundaries
  // at 60..110 s (records 11..21).
  const auto& records = system.metrics().records();
  ASSERT_EQ(records.size(), 45u);
  EXPECT_EQ(records[10].nodes_up, 3u);
  for (size_t i = 11; i <= 21; ++i) {
    EXPECT_EQ(records[i].nodes_up, 2u) << "record " << i;
    // Degraded, not dead: both classes complete operations throughout.
    EXPECT_GT(records[i].ForClass(1).ops_completed, 0u) << "record " << i;
    EXPECT_GT(records[i].ForClass(kNoGoalClass).ops_completed, 0u)
        << "record " << i;
  }
  EXPECT_EQ(records[22].nodes_up, 3u);

  // Remote fetches that targeted the dead node fell back to its disk.
  EXPECT_GT(system.counters(1).fetch_fallbacks +
                system.counters(kNoGoalClass).fetch_fallbacks,
            0u);

  const auto& controller =
      dynamic_cast<GoalOrientedController&>(system.controller());
  EXPECT_EQ(system.fault_injector().stats().crashes, 1u);
  EXPECT_EQ(system.fault_injector().stats().recoveries, 1u);
  EXPECT_EQ(controller.stats().crashes_observed, 1u);
  EXPECT_EQ(controller.stats().recoveries_observed, 1u);
  EXPECT_GT(system.network().messages_dropped(
                net::TrafficClass::kPartitionProtocol) +
                system.network().messages_dropped(net::TrafficClass::kHeatHint),
            0u);

  // Re-convergence after recovery: the goal class is satisfied through most
  // of the tail (recovery at record 22, tail starts at record 35).
  EXPECT_GE(SatisfiedInTail(system, 10), 4);
}

TEST(GrayFailureTest, DegradationWiringAppliesAndRestoresSlowdowns) {
  ClusterSystem system(TestConfig(52));
  system.AddClass(GoalClass(3.5));
  system.AddClass(NoGoalClass());
  system.Start();
  system.RunIntervals(2);

  ASSERT_TRUE(system.fault_injector().Degrade(2, 25.0));
  // The degradation callback pushes the factor into every service center of
  // the node and its network endpoint.
  EXPECT_DOUBLE_EQ(system.node(2).disk().slowdown(), 25.0);
  EXPECT_DOUBLE_EQ(system.node(2).cpu().slowdown(), 25.0);
  EXPECT_DOUBLE_EQ(system.network().NodeSlowdown(2), 25.0);
  EXPECT_DOUBLE_EQ(system.node(0).disk().slowdown(), 1.0);

  ASSERT_TRUE(system.fault_injector().Restore(2));
  EXPECT_DOUBLE_EQ(system.node(2).disk().slowdown(), 1.0);
  EXPECT_DOUBLE_EQ(system.node(2).cpu().slowdown(), 1.0);
  EXPECT_DOUBLE_EQ(system.network().NodeSlowdown(2), 1.0);
}

TEST(GrayFailureTest, HealthScoreTracksTimeoutsAndDecays) {
  ClusterSystem system(TestConfig(53));
  system.AddClass(GoalClass(3.5));
  system.AddClass(NoGoalClass());
  const double baseline = system.HealthScore(2);
  ASSERT_GT(baseline, 0.0);
  EXPECT_DOUBLE_EQ(system.directory().NodeCost(2), baseline);

  // A hedged fetch that hit its deadline feeds a censored sample: the
  // score escalates past the deadline it waited (the true latency is only
  // known to exceed it) and the directory cost tracks it.
  system.RecordFetchTimeout(2, 2.0);
  const double after_timeout = system.HealthScore(2);
  EXPECT_GT(after_timeout, baseline);
  EXPECT_DOUBLE_EQ(system.directory().NodeCost(2), after_timeout);
  system.RecordFetchTimeout(2, 2.0);
  EXPECT_GT(system.HealthScore(2), after_timeout);

  // Recovery decays the score toward the healthy baseline so a repaired
  // node is probed again instead of being shunned forever.
  double previous = system.HealthScore(2);
  for (int i = 0; i < 40; ++i) {
    system.DecayHealth(2);
    EXPECT_LE(system.HealthScore(2), previous);
    previous = system.HealthScore(2);
  }
  EXPECT_NEAR(system.HealthScore(2), baseline, 0.05 * baseline);
}

TEST(GrayFailureTest, DegradedNodeConvergesBackIntoTolerance) {
  // The acceptance scenario: node 2 serves everything 50x slower between
  // 60 s and 110 s — alive the whole time, so no crash handling fires.
  // Hedged reads route around it while it is slow, and the robust
  // measurement filter keeps the episode from poisoning the fit; after the
  // episode lifts the goal class must converge back inside its tolerance.
  SystemConfig config = TestConfig(51);
  config.faults.degradation_script = {{60000.0, 2, /*begin=*/true, 50.0},
                                      {110000.0, 2, /*begin=*/false}};
  ClusterSystem system(config);
  system.AddClass(GoalClass(3.5));
  system.AddClass(NoGoalClass());
  system.Start();

  system.RunIntervals(20);  // 100 s: mid-episode
  EXPECT_TRUE(system.fault_injector().IsDegraded(2));
  EXPECT_DOUBLE_EQ(system.node(2).disk().slowdown(), 50.0);
  // The health EWMA has learned that node 2 is slow: replica ranking now
  // prefers the healthy nodes.
  EXPECT_GT(system.HealthScore(2), system.HealthScore(0));
  EXPECT_GT(system.HealthScore(2), system.HealthScore(1));

  system.RunIntervals(25);  // through recovery at 110 s, out to 225 s
  EXPECT_FALSE(system.fault_injector().IsDegraded(2));
  EXPECT_DOUBLE_EQ(system.node(2).disk().slowdown(), 1.0);
  EXPECT_EQ(system.fault_injector().stats().degradations, 1u);
  EXPECT_EQ(system.fault_injector().stats().degradation_recoveries, 1u);
  EXPECT_EQ(system.fault_injector().stats().crashes, 0u);

  // Gray, not fail-stop: every node stays up and both classes complete
  // operations in every interval.
  const auto& records = system.metrics().records();
  ASSERT_EQ(records.size(), 45u);
  for (const IntervalRecord& record : records) {
    EXPECT_EQ(record.nodes_up, 3u);
    EXPECT_GT(record.ForClass(1).ops_completed, 0u);
    EXPECT_GT(record.ForClass(kNoGoalClass).ops_completed, 0u);
  }

  // Fetches that waited out their hedge deadlines fell back to disk.
  EXPECT_GT(system.counters(1).fetch_fallbacks +
                system.counters(kNoGoalClass).fetch_fallbacks,
            0u);

  // The control loop kept optimizing throughout, and the interval CSV
  // carries the simplex outcome counters.
  const auto& controller =
      dynamic_cast<const GoalOrientedController&>(system.controller());
  EXPECT_GT(controller.stats().lp_status_optimal, 0u);
  EXPECT_GT(system.metrics().back().lp.optimal, 0u);

  // Re-convergence: the goal class sits inside its tolerance band through
  // most of the post-recovery tail.
  EXPECT_GE(SatisfiedInTail(system, 10), 4);
}

}  // namespace
}  // namespace memgoal::core
