#include <gtest/gtest.h>

#include "cache/cost_based.h"
#include "cache/cost_model.h"
#include "cache/heat.h"
#include "cache/lru_k.h"
#include "cache/replacement.h"
#include "sim/simulator.h"

namespace memgoal::cache {
namespace {

TEST(FifoPolicyTest, EvictsInInsertionOrderIgnoringAccess) {
  auto policy = MakeFifoPolicy();
  policy->OnInsert(1);
  policy->OnInsert(2);
  policy->OnInsert(3);
  policy->OnAccess(1);  // must not rescue page 1
  EXPECT_EQ(policy->ChooseVictim(), std::optional<PageId>(1));
  policy->OnErase(1);
  EXPECT_EQ(policy->ChooseVictim(), std::optional<PageId>(2));
}

TEST(LruPolicyTest, AccessRescuesPage) {
  auto policy = MakeLruPolicy();
  policy->OnInsert(1);
  policy->OnInsert(2);
  policy->OnInsert(3);
  policy->OnAccess(1);
  EXPECT_EQ(policy->ChooseVictim(), std::optional<PageId>(2));
  policy->OnErase(2);
  policy->OnAccess(3);
  EXPECT_EQ(policy->ChooseVictim(), std::optional<PageId>(1));
}

TEST(LruPolicyTest, EmptyHasNoVictim) {
  auto policy = MakeLruPolicy();
  EXPECT_FALSE(policy->ChooseVictim().has_value());
  policy->OnInsert(1);
  policy->OnErase(1);
  EXPECT_FALSE(policy->ChooseVictim().has_value());
}

class LruKPolicyTest : public ::testing::Test {
 protected:
  LruKPolicyTest() : tracker_(2), policy_(&tracker_, &simulator_) {}

  void Access(PageId page, double time) {
    tracker_.RecordAccess(page, time);
    if (resident_.count(page)) {
      policy_.OnAccess(page);
    } else {
      policy_.OnInsert(page);
      resident_.insert(page);
    }
  }

  sim::Simulator simulator_;
  HeatTracker tracker_;
  LruKPolicy policy_;
  std::set<PageId> resident_;
};

TEST_F(LruKPolicyTest, PagesWithoutFullHistoryEvictFirst) {
  // Page 1: two accesses (full K history); page 2: one access, more recent.
  Access(1, 10.0);
  Access(1, 20.0);
  Access(2, 30.0);
  // Page 2 has infinite backward-K distance -> victim despite recency.
  EXPECT_EQ(policy_.ChooseVictim(), std::optional<PageId>(2));
}

TEST_F(LruKPolicyTest, FullHistoryOrderedByBackwardKTime) {
  Access(1, 10.0);
  Access(1, 100.0);  // t_K(1) = 10
  Access(2, 50.0);
  Access(2, 60.0);  // t_K(2) = 50
  EXPECT_EQ(policy_.ChooseVictim(), std::optional<PageId>(1));
  Access(1, 110.0);  // now t_K(1) = 100
  EXPECT_EQ(policy_.ChooseVictim(), std::optional<PageId>(2));
}

TEST_F(LruKPolicyTest, AmongPartialHistoryLeastRecentFirst) {
  Access(1, 10.0);
  Access(2, 20.0);
  EXPECT_EQ(policy_.ChooseVictim(), std::optional<PageId>(1));
}

TEST(KeepBenefitTest, LastCopyWorthMoreThanReplicated) {
  CostModel costs;
  const double replicated =
      KeepBenefit(costs, 1.0, 0.0, /*other_copy=*/true, /*home_local=*/true);
  const double last_copy =
      KeepBenefit(costs, 1.0, 0.0, /*other_copy=*/false, /*home_local=*/true);
  EXPECT_GT(last_copy, replicated);
}

TEST(KeepBenefitTest, RemoteHomeLastCopyWorthMost) {
  CostModel costs;
  const double local_home =
      KeepBenefit(costs, 1.0, 0.0, false, /*home_local=*/true);
  const double remote_home =
      KeepBenefit(costs, 1.0, 0.0, false, /*home_local=*/false);
  EXPECT_GT(remote_home, local_home);
}

TEST(KeepBenefitTest, ForeignHeatAddsAltruisticValue) {
  CostModel costs;
  const double selfish = KeepBenefit(costs, 1.0, 0.0, false, true);
  const double altruistic = KeepBenefit(costs, 1.0, 2.0, false, true);
  EXPECT_GT(altruistic, selfish);
  // Foreign heat is irrelevant while another copy exists.
  EXPECT_DOUBLE_EQ(KeepBenefit(costs, 1.0, 2.0, true, true),
                   KeepBenefit(costs, 1.0, 0.0, true, true));
}

TEST(KeepBenefitTest, ScalesWithHeat) {
  CostModel costs;
  EXPECT_DOUBLE_EQ(KeepBenefit(costs, 2.0, 0.0, true, true),
                   2.0 * KeepBenefit(costs, 1.0, 0.0, true, true));
}

TEST(CostBasedPolicyTest, EvictsLowestBenefit) {
  std::map<PageId, double> benefit = {{1, 5.0}, {2, 1.0}, {3, 3.0}};
  CostBasedPolicy policy([&](PageId p) { return benefit.at(p); });
  policy.OnInsert(1);
  policy.OnInsert(2);
  policy.OnInsert(3);
  EXPECT_EQ(policy.ChooseVictim(), std::optional<PageId>(2));
}

TEST(CostBasedPolicyTest, LazyRevalidationSeesFreshBenefits) {
  std::map<PageId, double> benefit = {{1, 5.0}, {2, 1.0}, {3, 3.0}};
  CostBasedPolicy policy([&](PageId p) { return benefit.at(p); });
  policy.OnInsert(1);
  policy.OnInsert(2);
  policy.OnInsert(3);
  // Page 2's benefit rises externally (e.g. became last copy) without any
  // touch; victim selection must re-evaluate and pick page 3 instead.
  benefit[2] = 100.0;
  EXPECT_EQ(policy.ChooseVictim(), std::optional<PageId>(3));
}

TEST(CostBasedPolicyTest, RefreshUpdatesKey) {
  std::map<PageId, double> benefit = {{1, 5.0}, {2, 6.0}};
  CostBasedPolicy policy([&](PageId p) { return benefit.at(p); });
  policy.OnInsert(1);
  policy.OnInsert(2);
  benefit[1] = 10.0;
  benefit[2] = 0.5;
  policy.Refresh(1);
  policy.Refresh(2);
  EXPECT_EQ(policy.ChooseVictim(), std::optional<PageId>(2));
  // Refresh of a non-resident page is a no-op.
  policy.Refresh(99);
}

}  // namespace
}  // namespace memgoal::cache
