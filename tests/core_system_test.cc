#include "core/system.h"

#include <memory>

#include <gtest/gtest.h>

#include "baseline/static_controllers.h"
#include "core/goal_controller.h"
#include "net/network.h"
#include "workload/spec.h"

namespace memgoal::core {
namespace {

SystemConfig SmallConfig(uint64_t seed = 1) {
  SystemConfig config;
  config.num_nodes = 3;
  config.cache_bytes_per_node = 64 * 4096;  // 64 frames per node
  config.db_pages = 600;
  config.observation_interval_ms = 1000.0;
  config.seed = seed;
  return config;
}

workload::ClassSpec GoalClass(ClassId id, double goal_ms) {
  workload::ClassSpec spec;
  spec.id = id;
  spec.goal_rt_ms = goal_ms;
  spec.accesses_per_op = 4;
  spec.mean_interarrival_ms = 25.0;
  spec.pages = {0, 300};
  spec.zipf_skew = 0.0;
  return spec;
}

workload::ClassSpec NoGoalClass() {
  workload::ClassSpec spec;
  spec.id = kNoGoalClass;
  spec.accesses_per_op = 4;
  spec.mean_interarrival_ms = 25.0;
  spec.pages = {300, 600};
  spec.zipf_skew = 0.0;
  return spec;
}

TEST(ClusterSystemTest, SmokeRunProducesMetrics) {
  ClusterSystem system(SmallConfig());
  system.AddClass(GoalClass(1, 5.0));
  system.AddClass(NoGoalClass());
  system.Start();
  system.RunIntervals(5);

  EXPECT_EQ(system.metrics().records().size(), 5u);
  EXPECT_EQ(system.intervals_completed(), 5);
  const IntervalRecord& last = system.metrics().back();
  EXPECT_EQ(last.classes.size(), 2u);
  const ClassIntervalMetrics& goal_row = last.ForClass(1);
  EXPECT_GT(goal_row.ops_completed, 0u);
  EXPECT_GT(goal_row.observed_rt_ms, 0.0);
  EXPECT_DOUBLE_EQ(goal_row.goal_rt_ms, 5.0);

  // Access counters: every page access landed in exactly one level.
  const AccessCounters& counters = system.counters(1);
  EXPECT_GT(counters.total(), 0u);
}

TEST(ClusterSystemTest, DeterministicAcrossRuns) {
  std::vector<double> rts_a, rts_b;
  std::vector<uint64_t> bytes_a, bytes_b;
  for (int run = 0; run < 2; ++run) {
    ClusterSystem system(SmallConfig(/*seed=*/7));
    system.AddClass(GoalClass(1, 2.0));
    system.AddClass(NoGoalClass());
    system.Start();
    system.RunIntervals(8);
    for (const IntervalRecord& record : system.metrics().records()) {
      const auto& m = record.ForClass(1);
      (run == 0 ? rts_a : rts_b).push_back(m.observed_rt_ms);
      (run == 0 ? bytes_a : bytes_b).push_back(m.dedicated_bytes);
    }
  }
  EXPECT_EQ(rts_a, rts_b);
  EXPECT_EQ(bytes_a, bytes_b);
}

TEST(ClusterSystemTest, SeedChangesTrajectory) {
  std::vector<double> rts_a, rts_b;
  for (int run = 0; run < 2; ++run) {
    ClusterSystem system(SmallConfig(/*seed=*/run + 1));
    system.AddClass(GoalClass(1, 2.0));
    system.AddClass(NoGoalClass());
    system.Start();
    system.RunIntervals(4);
    for (const IntervalRecord& record : system.metrics().records()) {
      (run == 0 ? rts_a : rts_b).push_back(record.ForClass(1).observed_rt_ms);
    }
  }
  EXPECT_NE(rts_a, rts_b);
}

TEST(ClusterSystemTest, CountersCoverAllLevels) {
  ClusterSystem system(SmallConfig());
  system.AddClass(GoalClass(1, 5.0));
  system.AddClass(NoGoalClass());
  system.Start();
  system.RunIntervals(10);
  uint64_t total = 0;
  for (ClassId k : {ClassId{1}, kNoGoalClass}) {
    const AccessCounters& c = system.counters(k);
    total += c.total();
    // With 600 pages vs 192 cache frames there must be hits AND misses.
    EXPECT_GT(c.by_level[static_cast<int>(StorageLevel::kLocalBuffer)], 0u);
    EXPECT_GT(c.total() -
                  c.by_level[static_cast<int>(StorageLevel::kLocalBuffer)],
              0u);
  }
  EXPECT_GT(total, 1000u);
}

TEST(ClusterSystemTest, StaticControllerAppliesFixedPartitioning) {
  ClusterSystem system(SmallConfig());
  system.AddClass(GoalClass(1, 5.0));
  system.AddClass(NoGoalClass());
  system.SetController(
      std::make_unique<baseline::StaticPartitioningController>(
          std::map<ClassId, double>{{1, 0.5}}));
  system.Start();
  system.RunIntervals(2);
  const uint64_t per_node = SmallConfig().cache_bytes_per_node / 2;
  for (NodeId i = 0; i < 3; ++i) {
    EXPECT_EQ(system.DedicatedBytes(1, i), per_node);
  }
  // Static never changes.
  system.RunIntervals(2);
  EXPECT_EQ(system.DedicatedBytes(1, 0), per_node);
}

TEST(ClusterSystemTest, NoPartitioningKeepsSharedPool) {
  ClusterSystem system(SmallConfig());
  system.AddClass(GoalClass(1, 0.5));  // tight goal, but controller ignores
  system.AddClass(NoGoalClass());
  system.SetController(std::make_unique<baseline::NoPartitioningController>());
  system.Start();
  system.RunIntervals(4);
  EXPECT_EQ(system.TotalDedicatedBytes(1), 0u);
}

TEST(ClusterSystemTest, DedicatedBufferImprovesGoalClassRt) {
  // Same workload, (a) no partitioning vs (b) static 75% dedicated to the
  // goal class: the dedicated run must serve the goal class faster.
  auto run = [](std::unique_ptr<Controller> controller) {
    ClusterSystem system(SmallConfig(3));
    workload::ClassSpec goal_spec = GoalClass(1, 5.0);
    goal_spec.zipf_skew = 0.5;
    system.AddClass(goal_spec);
    system.AddClass(NoGoalClass());
    system.SetController(std::move(controller));
    system.Start();
    system.RunIntervals(12);
    // Mean observed RT over the last 6 intervals (warmed up).
    double sum = 0;
    int count = 0;
    const auto& records = system.metrics().records();
    for (size_t i = records.size() - 6; i < records.size(); ++i) {
      sum += records[i].ForClass(1).observed_rt_ms;
      ++count;
    }
    return sum / count;
  };
  const double rt_none = run(std::make_unique<baseline::NoPartitioningController>());
  const double rt_dedicated =
      run(std::make_unique<baseline::StaticPartitioningController>(
          std::map<ClassId, double>{{1, 0.75}}));
  EXPECT_LT(rt_dedicated, rt_none);
}

TEST(ClusterSystemTest, ApplyAllocationClampsBetweenClasses) {
  ClusterSystem system(SmallConfig());
  system.AddClass(GoalClass(1, 5.0));
  system.AddClass(GoalClass(2, 5.0));
  system.AddClass(NoGoalClass());
  system.SetController(std::make_unique<baseline::NoPartitioningController>());
  system.Start();
  const uint64_t total = SmallConfig().cache_bytes_per_node;
  EXPECT_EQ(system.ApplyAllocation(1, 0, total), total);
  // Class 2 can only get what class 1 left (§5e).
  EXPECT_EQ(system.ApplyAllocation(2, 0, total), 0u);
  EXPECT_EQ(system.AvailableFor(2, 0), 0u);
  // Class 1 shrinks; class 2 can now grow.
  EXPECT_EQ(system.ApplyAllocation(1, 0, total / 2), total / 2);
  EXPECT_EQ(system.ApplyAllocation(2, 0, total), total - total / 2);
}

TEST(ClusterSystemTest, ProtocolTrafficAccounted) {
  ClusterSystem system(SmallConfig());
  system.AddClass(GoalClass(1, 0.2));  // tight goal forces optimization
  system.AddClass(NoGoalClass());
  system.Start();
  system.RunIntervals(10);
  const net::Network& network = system.network();
  EXPECT_GT(network.bytes_sent(net::TrafficClass::kPartitionProtocol), 0u);
  EXPECT_GT(network.bytes_sent(net::TrafficClass::kPage), 0u);
  // The §7.5 claim at miniature scale: protocol traffic is a tiny share.
  const double share =
      static_cast<double>(
          network.bytes_sent(net::TrafficClass::kPartitionProtocol)) /
      static_cast<double>(network.total_bytes_sent());
  EXPECT_LT(share, 0.05);
}

TEST(ClusterSystemTest, BaselineControllersSurviveCrashRecovery) {
  // Baselines don't react to faults (base-class no-op hooks), but a crash
  // mid-run must not abort them: volatile state is wiped, operations keep
  // completing on the survivors, and the node rejoins on recovery.
  SystemConfig config = SmallConfig(9);
  config.faults.script = {{2500.0, 1, /*crash=*/true},
                          {6500.0, 1, /*crash=*/false}};
  ClusterSystem system(config);
  system.AddClass(GoalClass(1, 5.0));
  system.AddClass(NoGoalClass());
  system.SetController(std::make_unique<baseline::StaticPartitioningController>(
      std::map<ClassId, double>{{1, 0.5}}));
  system.Start();
  system.RunIntervals(10);

  const auto& records = system.metrics().records();
  ASSERT_EQ(records.size(), 10u);
  for (const auto& record : records) {
    EXPECT_GT(record.ForClass(1).ops_completed, 0u);
    EXPECT_GT(record.ForClass(kNoGoalClass).ops_completed, 0u);
  }
  // Outage covers the boundaries at 3..6 s (records 2..5).
  EXPECT_EQ(records[1].nodes_up, 3u);
  EXPECT_EQ(records[3].nodes_up, 2u);
  EXPECT_EQ(records[9].nodes_up, 3u);
  EXPECT_EQ(system.fault_injector().stats().crashes, 1u);
  EXPECT_EQ(system.fault_injector().stats().recoveries, 1u);
}

TEST(ClusterSystemTest, HeatHistoryStaysBoundedUnderScan) {
  // A uniform workload over a database ~9x the aggregate cache touches far
  // more pages than fit resident. Without the horizon sweep every touched
  // page keeps an LRU-K record forever; with it the per-node history stays
  // near the resident set plus one horizon of recency.
  auto run = [](double horizon_intervals) {
    SystemConfig config = SmallConfig(41);
    config.db_pages = 1800;
    config.heat_horizon_intervals = horizon_intervals;
    auto system = std::make_unique<ClusterSystem>(config);
    workload::ClassSpec goal = GoalClass(1, 5000.0);  // loose: no resizing
    goal.pages = {0, 900};
    workload::ClassSpec nogoal = NoGoalClass();
    nogoal.pages = {900, 1800};
    system->AddClass(goal);
    system->AddClass(nogoal);
    system->Start();
    system->RunIntervals(30);
    size_t tracked = 0;
    for (NodeId i = 0; i < 3; ++i) tracked += system->node(i).HeatHistorySize();
    return tracked;
  };
  const size_t unbounded = run(0.0);     // sweep disabled
  const size_t bounded = run(2.0);       // horizon = 2 intervals
  // Disabled: the map approaches every page touched (several thousand
  // records across accumulated + per-class trackers).
  EXPECT_GT(unbounded, 2 * bounded);
  // Enabled: bounded by residency + recency, far below the touched set.
  EXPECT_LT(bounded, unbounded);
  EXPECT_GT(bounded, 0u);
}

TEST(ClusterSystemTest, WeightedRtMatchesObservations) {
  ClusterSystem system(SmallConfig());
  system.AddClass(GoalClass(1, 5.0));
  system.AddClass(NoGoalClass());
  system.Start();
  system.RunIntervals(3);
  double weights = 0.0, weighted = 0.0;
  for (NodeId i = 0; i < 3; ++i) {
    const auto& obs = system.observation(1, i);
    if (!obs.has_rt) continue;
    weighted += obs.arrival_rate_per_ms * obs.mean_rt_ms;
    weights += obs.arrival_rate_per_ms;
  }
  ASSERT_GT(weights, 0.0);
  auto rt = system.WeightedRt(1);
  ASSERT_TRUE(rt.has_value());
  EXPECT_NEAR(*rt, weighted / weights, 1e-12);
}

}  // namespace
}  // namespace memgoal::core
