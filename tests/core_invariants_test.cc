// System-wide invariant checks: after arbitrary feedback-loop activity the
// directory, the per-node caches, the pool budgets and the access counters
// must all agree. Parameterized over replacement policies and seeds so the
// sweep covers every bookkeeping path (promotions, admission bounces,
// resize evictions, invalidation drops).

#include <gtest/gtest.h>

#include "cache/replacement.h"
#include "core/goal_controller.h"
#include "core/system.h"
#include "txn/transaction.h"
#include "txn/update_source.h"
#include "workload/spec.h"

namespace memgoal::core {
namespace {

struct Param {
  cache::PolicyKind policy;
  uint64_t seed;
  bool with_updates;
  PartitioningObjective objective;
};

class InvariantsTest : public ::testing::TestWithParam<Param> {};

SystemConfig MakeConfig(const Param& param) {
  SystemConfig config;
  config.num_nodes = 3;
  config.cache_bytes_per_node = 64 * 4096;
  config.db_pages = 200;
  config.observation_interval_ms = 2000.0;
  config.policy = param.policy;
  config.objective = param.objective;
  config.seed = param.seed;
  return config;
}

void CheckInvariants(ClusterSystem& system) {
  const SystemConfig& config = system.config();

  for (NodeId i = 0; i < config.num_nodes; ++i) {
    const cache::NodeCache& node_cache = system.node(i).node_cache();

    // Budget invariants: dedicated pools never exceed the node total, and
    // the equation-6 bound is consistent.
    EXPECT_LE(node_cache.total_dedicated_bytes(), node_cache.total_bytes());
    EXPECT_EQ(node_cache.nogoal_bytes() + node_cache.total_dedicated_bytes(),
              node_cache.total_bytes());
    for (ClassId klass : system.goal_class_ids()) {
      EXPECT_LE(node_cache.dedicated_bytes(klass),
                node_cache.AvailableForClass(klass));
    }

    // Residency never exceeds the frame budget.
    EXPECT_LE(node_cache.resident_pages(),
              config.cache_bytes_per_node / config.page_bytes);

    // Directory <-> cache agreement, page by page.
    uint64_t resident = 0;
    for (PageId page = 0; page < config.db_pages; ++page) {
      const bool in_cache = node_cache.IsCached(page);
      const bool in_directory = system.directory().IsCachedAt(i, page);
      ASSERT_EQ(in_cache, in_directory)
          << "node " << i << " page " << page;
      resident += in_cache ? 1 : 0;
    }
    EXPECT_EQ(resident, node_cache.resident_pages());
  }

  // Copy counts equal the sum of per-node flags.
  for (PageId page = 0; page < config.db_pages; ++page) {
    int copies = 0;
    for (NodeId i = 0; i < config.num_nodes; ++i) {
      copies += system.directory().IsCachedAt(i, page) ? 1 : 0;
    }
    ASSERT_EQ(copies, system.directory().CopyCount(page)) << "page " << page;
  }

  // Access counters: every access has exactly one storage level, and the
  // per-interval roll-ups sum to the same operation totals.
  for (const workload::ClassSpec& spec : system.classes()) {
    const AccessCounters& counters = system.counters(spec.id);
    uint64_t level_sum = 0;
    for (uint64_t c : counters.by_level) level_sum += c;
    EXPECT_EQ(level_sum, counters.total());
  }
}

TEST_P(InvariantsTest, HoldAfterFeedbackActivity) {
  const Param param = GetParam();
  ClusterSystem system(MakeConfig(param));

  workload::ClassSpec goal_class;
  goal_class.id = 1;
  goal_class.goal_rt_ms = 3.0;  // binding: plenty of repartitioning
  goal_class.accesses_per_op = 4;
  goal_class.mean_interarrival_ms = 50.0;
  goal_class.pages = {0, 100};
  system.AddClass(goal_class);

  workload::ClassSpec nogoal;
  nogoal.id = kNoGoalClass;
  nogoal.accesses_per_op = 4;
  nogoal.mean_interarrival_ms = 50.0;
  nogoal.pages = {100, 200};
  system.AddClass(nogoal);

  std::unique_ptr<txn::TransactionManager> manager;
  std::unique_ptr<txn::UpdateSource> updates;
  if (param.with_updates) {
    manager = std::make_unique<txn::TransactionManager>(&system);
    txn::UpdateSource::Params update_params;
    update_params.klass = 1;
    update_params.mean_interarrival_ms = 120.0;
    updates = std::make_unique<txn::UpdateSource>(&system, manager.get(),
                                                  update_params);
  }

  system.Start();
  if (updates) updates->Start();

  for (int round = 0; round < 4; ++round) {
    system.RunIntervals(3);
    CheckInvariants(system);
    // Shake the partitioning: alternate tight and loose goals.
    system.SetGoal(1, round % 2 == 0 ? 50.0 : 2.0);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, InvariantsTest,
    ::testing::Values(
        Param{cache::PolicyKind::kCostBased, 1, false,
              PartitioningObjective::kMinimizeNoGoalRt},
        Param{cache::PolicyKind::kCostBased, 2, true,
              PartitioningObjective::kMinimizeNoGoalRt},
        Param{cache::PolicyKind::kCostBased, 3, false,
              PartitioningObjective::kMinimizeNodeVariance},
        Param{cache::PolicyKind::kLru, 4, false,
              PartitioningObjective::kMinimizeNoGoalRt},
        Param{cache::PolicyKind::kLru, 5, true,
              PartitioningObjective::kMinimizeNoGoalRt},
        Param{cache::PolicyKind::kLruK, 6, false,
              PartitioningObjective::kMinimizeNoGoalRt},
        Param{cache::PolicyKind::kFifo, 7, false,
              PartitioningObjective::kMinimizeNoGoalRt},
        Param{cache::PolicyKind::kLruK, 8, true,
              PartitioningObjective::kMinimizeNodeVariance}));

}  // namespace
}  // namespace memgoal::core
