#include "core/goal_controller.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "baseline/static_controllers.h"
#include "core/optimizer.h"
#include "core/system.h"
#include "obs/decision_log.h"
#include "obs/registry.h"
#include "workload/spec.h"

namespace memgoal::core {
namespace {

// A stable miniature of the paper's environment: the aggregate cache (192
// frames) covers 96% of the 200-page database, and arrival rates keep the
// disks well below saturation, so response times react to buffer allocation
// rather than to queueing collapse. Over the paper's goal band (between the
// response times at 2/3 and 1/3 of the cache dedicated) the goal class's
// response time is monotone in its dedicated buffer.
SystemConfig TestConfig(uint64_t seed = 1) {
  SystemConfig config;
  config.num_nodes = 3;
  config.cache_bytes_per_node = 64 * 4096;
  config.db_pages = 200;
  config.observation_interval_ms = 5000.0;
  config.seed = seed;
  return config;
}

workload::ClassSpec GoalClass(ClassId id, double goal_ms,
                              double skew = 0.0) {
  workload::ClassSpec spec;
  spec.id = id;
  spec.goal_rt_ms = goal_ms;
  spec.accesses_per_op = 4;
  spec.mean_interarrival_ms = 50.0;
  spec.pages = {0, 100};
  spec.zipf_skew = skew;
  return spec;
}

workload::ClassSpec NoGoalClass() {
  workload::ClassSpec spec;
  spec.id = kNoGoalClass;
  spec.accesses_per_op = 4;
  spec.mean_interarrival_ms = 50.0;
  spec.pages = {100, 200};
  return spec;
}

// Measures the steady-state goal-class RT under a static share of the cache
// (calibration helper, mirroring the goal-selection protocol of §7.1). Uses
// the do-nothing controller so the applied allocation stays frozen.
double CalibrateRt(double dedicated_fraction, uint64_t seed) {
  ClusterSystem system(TestConfig(seed));
  system.AddClass(GoalClass(1, 1000.0));  // goal irrelevant: inert controller
  system.AddClass(NoGoalClass());
  system.SetController(std::make_unique<baseline::NoPartitioningController>());
  system.Start();
  const auto bytes = static_cast<uint64_t>(
      dedicated_fraction * static_cast<double>(TestConfig().cache_bytes_per_node));
  for (NodeId i = 0; i < 3; ++i) system.ApplyAllocation(1, i, bytes);
  system.RunIntervals(12);
  double sum = 0;
  int count = 0;
  const auto& records = system.metrics().records();
  for (size_t i = records.size() - 6; i < records.size(); ++i) {
    sum += records[i].ForClass(1).observed_rt_ms;
    ++count;
  }
  return sum / count;
}

TEST(GoalControllerTest, ConvergesToAchievableGoal) {
  // Pick a goal between the RT at 2/3 dedicated and at 1/2 dedicated: a
  // band where the response time is monotone in the dedicated buffer and —
  // unlike the paper's idealized setting — guaranteed *binding* (the goal
  // cannot be met with zero dedication; see EXPERIMENTS.md on the
  // small-allocation non-monotonicity of the §6 pool confinement).
  const double rt_hi_buffer = CalibrateRt(2.0 / 3.0, 21);
  const double rt_lo_buffer = CalibrateRt(1.0 / 2.0, 22);
  ASSERT_LT(rt_hi_buffer, rt_lo_buffer);
  const double goal = 0.5 * (rt_hi_buffer + rt_lo_buffer);

  ClusterSystem system(TestConfig(5));
  system.AddClass(GoalClass(1, goal));
  system.AddClass(NoGoalClass());
  system.Start();
  system.RunIntervals(25);

  // The paper's convergence criterion (§7.1): the system reaches a state
  // satisfying the goal within a short number of intervals, and holds it
  // for several consecutive intervals. Feedback systems keep breathing
  // around the goal, so we do not require the tail to be satisfied forever.
  const auto& records = system.metrics().records();
  int longest_streak = 0, streak = 0;
  uint64_t max_dedicated = 0;
  int satisfied_total = 0;
  for (const IntervalRecord& record : records) {
    const auto& m = record.ForClass(1);
    streak = m.satisfied ? streak + 1 : 0;
    longest_streak = std::max(longest_streak, streak);
    satisfied_total += m.satisfied ? 1 : 0;
    max_dedicated = std::max(max_dedicated, m.dedicated_bytes);
  }
  EXPECT_GE(longest_streak, 3) << "goal=" << goal;
  EXPECT_GE(satisfied_total, 8) << "goal=" << goal;
  // The goal sits below the zero-dedication response time, so meeting it
  // required building a dedicated buffer.
  EXPECT_GT(max_dedicated, 0u);
}

TEST(GoalControllerTest, WarmupProducesIndependentPoints) {
  ClusterSystem system(TestConfig(9));
  system.AddClass(GoalClass(1, 0.2));  // unreachably tight: always violated
  system.AddClass(NoGoalClass());
  system.Start();
  system.RunIntervals(10);
  const auto& controller =
      dynamic_cast<GoalOrientedController&>(system.controller());
  // After enough violated intervals the store must hold N+1 = 4 points.
  EXPECT_TRUE(controller.measure_store(1).ready());
  EXPECT_GT(controller.stats().warmup_steps, 0u);
  EXPECT_GT(controller.stats().lp_optimizations, 0u);
}

TEST(GoalControllerTest, UnreachableGoalSaturatesBuffer) {
  ClusterSystem system(TestConfig(11));
  system.AddClass(GoalClass(1, 0.2));
  system.AddClass(NoGoalClass());
  uint64_t max_dedicated = 0;
  system.SetIntervalCallback([&](const IntervalRecord& record) {
    max_dedicated =
        std::max(max_dedicated, record.ForClass(1).dedicated_bytes);
  });
  system.Start();
  system.RunIntervals(20);
  // An unreachable goal keeps the loop violated forever; best effort must
  // at some point have pushed the dedicated buffer to most of the cache
  // (the loop keeps probing afterwards, so the final state may differ).
  const uint64_t total_cache = 3ull * TestConfig().cache_bytes_per_node;
  EXPECT_GT(max_dedicated, total_cache / 2);
}

TEST(GoalControllerTest, LooseGoalNeverAllocates) {
  // 5000 ms stays satisfied even through the cold-cache transient of the
  // first interval.
  ClusterSystem system(TestConfig(13));
  system.AddClass(GoalClass(1, 5000.0));
  system.AddClass(NoGoalClass());
  system.Start();
  system.RunIntervals(8);
  EXPECT_EQ(system.TotalDedicatedBytes(1), 0u);
  const auto& controller =
      dynamic_cast<GoalOrientedController&>(system.controller());
  EXPECT_EQ(controller.stats().violations, 0u);
  EXPECT_GT(controller.stats().checks, 0u);
}

TEST(GoalControllerTest, GoalRelaxationShrinksDedicatedBuffer) {
  ClusterSystem system(TestConfig(17));
  system.AddClass(GoalClass(1, 0.8, /*skew=*/0.5));
  system.AddClass(NoGoalClass());
  system.Start();
  system.RunIntervals(15);
  const uint64_t dedicated_tight = system.TotalDedicatedBytes(1);
  EXPECT_GT(dedicated_tight, 0u);
  // Relax the goal massively: the coordinator should release memory for
  // the no-goal class (RT then far below goal -> violation of |rt-goal| >
  // delta from below).
  system.SetGoal(1, 500.0);
  system.RunIntervals(10);
  EXPECT_LT(system.TotalDedicatedBytes(1), dedicated_tight);
}

TEST(GoalControllerTest, ReportFilterLimitsTraffic) {
  // The significant-change filter (§5a) must suppress reports: a run with a
  // wide threshold sends strictly fewer reports than the same run with the
  // filter effectively disabled.
  auto count_reports = [](double threshold) {
    SystemConfig config = TestConfig(19);
    config.report_change_threshold = threshold;
    ClusterSystem system(config);
    system.AddClass(GoalClass(1, 5000.0));  // stable: goal never violated
    system.AddClass(NoGoalClass());
    system.Start();
    system.RunIntervals(20);
    const auto& controller =
        dynamic_cast<GoalOrientedController&>(system.controller());
    return controller.stats().reports_sent;
  };
  const uint64_t with_filter = count_reports(2.0);
  const uint64_t without_filter = count_reports(0.0);
  EXPECT_GT(with_filter, 0u);
  EXPECT_LT(with_filter, without_filter / 2);
  // Filter off: every interval reports from every node for both classes
  // (goal reports to 1 coordinator, no-goal reports to 1 coordinator).
  EXPECT_EQ(without_filter, 20u * 3u * 2u);
}

TEST(GoalControllerTest, DecisionLogTracesEveryCheckAndReplaysTheLp) {
  ClusterSystem system(TestConfig(29));
  system.AddClass(GoalClass(1, 0.2));  // always violated: warm-up then LP
  system.AddClass(NoGoalClass());
  obs::DecisionLog log;
  system.SetDecisionLog(&log);
  system.Start();
  system.RunIntervals(20);

  const auto& controller =
      dynamic_cast<GoalOrientedController&>(system.controller());
  // One record per coordinator check that observed data.
  ASSERT_FALSE(log.records().empty());
  EXPECT_LE(log.size(), controller.stats().checks);

  int last_interval = -1;
  bool replayed = false;
  for (const obs::DecisionRecord& record : log.records()) {
    EXPECT_GT(record.interval, last_interval);  // strictly ordered
    last_interval = record.interval;
    EXPECT_EQ(record.klass, 1);
    EXPECT_FALSE(record.measure_outcome.empty());
    if (!record.lp_run) continue;
    ASSERT_TRUE(record.has_planes);
    ASSERT_FALSE(record.lp_mode.empty());

    // The acceptance gate: a record round-tripped through its JSON form
    // must reproduce the logged LP decision bit-for-bit.
    obs::DecisionRecord parsed;
    ASSERT_TRUE(obs::DecisionRecord::FromJson(record.ToJson(), &parsed));
    OptimizerInput input;
    input.planes.grad_k = parsed.grad_k;
    input.planes.intercept_k = parsed.intercept_k;
    input.planes.grad_0 = parsed.grad_0;
    input.planes.intercept_0 = parsed.intercept_0;
    input.goal_rt = parsed.goal_rt;
    input.upper_bounds = parsed.upper_bounds;
    const OptimizerOutput output = SolvePartitioning(input);
    ASSERT_EQ(output.allocation.size(), parsed.lp_allocation.size());
    for (size_t i = 0; i < output.allocation.size(); ++i) {
      EXPECT_EQ(output.allocation[i], parsed.lp_allocation[i]);
    }
    EXPECT_EQ(OptimizerModeName(output.mode), parsed.lp_mode);
    EXPECT_EQ(output.relaxed_rung, parsed.relaxed_rung);
    // Actuation is recorded whenever the check shipped an allocation.
    EXPECT_EQ(parsed.shipped_allocation.size(), 3u);
    EXPECT_EQ(parsed.granted_allocation.size(), 3u);
    replayed = true;
  }
  EXPECT_TRUE(replayed);
}

TEST(GoalControllerTest, PublishMetricsMirrorsProtocolStatsIntoRegistry) {
  ClusterSystem system(TestConfig(31));
  system.AddClass(GoalClass(1, 0.2));
  system.AddClass(NoGoalClass());
  system.Start();
  system.RunIntervals(10);

  const auto& controller =
      dynamic_cast<GoalOrientedController&>(system.controller());
  const auto& history = system.registry().history();
  ASSERT_EQ(history.size(), 10u);
  // Snapshots are taken right after each controller interval hook, before
  // the (1 ms delayed) coordinator check coroutine runs, so the last
  // snapshot reflects the counters as of the previous check.
  auto find = [&](const std::string& name) -> const obs::Registry::SnapshotEntry* {
    for (const auto& entry : history.back().entries) {
      if (entry.name == name) return &entry;
    }
    return nullptr;
  };
  const auto* checks = find("ctrl.checks");
  ASSERT_NE(checks, nullptr);
  EXPECT_GT(checks->value, 0.0);
  EXPECT_LE(checks->value,
            static_cast<double>(controller.stats().checks));
  ASSERT_NE(find("ctrl.lp_optimizations"), nullptr);
  ASSERT_NE(find("class1.store.rejected_points"), nullptr);
  const auto* store_size = find("class1.store.size");
  ASSERT_NE(store_size, nullptr);
  EXPECT_EQ(store_size->kind, obs::Registry::Kind::kGauge);
  // System-side instruments share the same namespace and snapshot.
  ASSERT_NE(find("class1.access.local-buffer"), nullptr);
  ASSERT_NE(find("cluster.nodes_up"), nullptr);
  ASSERT_NE(find("net.bytes.partition-protocol"), nullptr);
  ASSERT_NE(find("node0.cpu.wait_ms.p99"), nullptr);
}

TEST(GoalControllerTest, CoordinatorPlacementSpreadsClasses) {
  ClusterSystem system(TestConfig(23));
  system.AddClass(GoalClass(1, 5.0));
  workload::ClassSpec k2 = GoalClass(2, 5.0);
  k2.pages = {100, 160};
  system.AddClass(k2);
  workload::ClassSpec ng = NoGoalClass();
  ng.pages = {160, 200};
  system.AddClass(ng);
  system.Start();
  const auto& controller =
      dynamic_cast<GoalOrientedController&>(system.controller());
  EXPECT_EQ(controller.coordinator_node(1), 0u);
  EXPECT_EQ(controller.coordinator_node(2), 1u);
}

}  // namespace
}  // namespace memgoal::core
