// Chaos schedule tests: deterministic generation, fault-params expansion,
// lossless text round-trips (what makes repro files replayable), and the
// ddmin shrink used to minimize failing schedules.

#include "sim/chaos_schedule.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "sim/fault_injector.h"

namespace memgoal::sim::chaos {
namespace {

bool SameEvent(const Event& a, const Event& b) {
  return a.at_ms == b.at_ms && a.kind == b.kind && a.node == b.node &&
         a.factor == b.factor && a.minority_mask == b.minority_mask &&
         a.klass == b.klass && a.count == b.count && a.salt == b.salt;
}

bool SameSchedule(const Schedule& a, const Schedule& b) {
  if (a.seed != b.seed || a.num_nodes != b.num_nodes ||
      a.horizon_ms != b.horizon_ms || a.events.size() != b.events.size()) {
    return false;
  }
  for (size_t i = 0; i < a.events.size(); ++i) {
    if (!SameEvent(a.events[i], b.events[i])) return false;
  }
  return true;
}

GenerateLimits TestLimits() {
  GenerateLimits limits;
  limits.num_nodes = 4;
  limits.horizon_ms = 100000.0;
  limits.max_episodes = 4;
  limits.goal_classes = {1};
  return limits;
}

TEST(ChaosScheduleTest, GenerationIsDeterministicInSeed) {
  const Schedule a = Generate(7, TestLimits());
  const Schedule b = Generate(7, TestLimits());
  const Schedule c = Generate(8, TestLimits());
  EXPECT_FALSE(a.events.empty());
  EXPECT_TRUE(SameSchedule(a, b));
  EXPECT_FALSE(SameSchedule(a, c));
}

TEST(ChaosScheduleTest, EventsAreTimeOrderedWithinHorizon) {
  for (uint64_t seed = 1; seed <= 20; ++seed) {
    const Schedule schedule = Generate(seed, TestLimits());
    EXPECT_EQ(schedule.num_nodes, 4u);
    for (size_t i = 0; i < schedule.events.size(); ++i) {
      EXPECT_GE(schedule.events[i].at_ms, 0.0);
      EXPECT_LE(schedule.events[i].at_ms, schedule.horizon_ms);
      if (i > 0) {
        EXPECT_GE(schedule.events[i].at_ms, schedule.events[i - 1].at_ms)
            << "seed " << seed << " event " << i;
      }
    }
  }
}

TEST(ChaosScheduleTest, AlwaysContainsAnEarlyHealedPartition) {
  // The generator guarantees at least one partition whose heal lands before
  // 70% of the horizon, so heal-path bugs are exercised on every seed.
  for (uint64_t seed = 1; seed <= 20; ++seed) {
    const Schedule schedule = Generate(seed, TestLimits());
    bool found = false;
    for (size_t i = 0; i < schedule.events.size() && !found; ++i) {
      if (schedule.events[i].kind != EventKind::kPartition) continue;
      for (size_t j = i + 1; j < schedule.events.size(); ++j) {
        if (schedule.events[j].kind == EventKind::kHeal &&
            schedule.events[j].at_ms <= 0.7 * schedule.horizon_ms) {
          found = true;
          break;
        }
      }
    }
    EXPECT_TRUE(found) << "seed " << seed;
  }
}

TEST(ChaosScheduleTest, ApplyToFaultParamsRoutesEventsByKind) {
  Schedule schedule;
  schedule.seed = 3;
  schedule.num_nodes = 4;
  schedule.horizon_ms = 50000.0;
  schedule.events = {
      {1000.0, EventKind::kCrash, 2, 0.0, 0, 0},
      {2000.0, EventKind::kPartition, 0, 0.0, /*minority_mask=*/0x1, 0},
      {3000.0, EventKind::kDegrade, 1, 20.0, 0, 0},
      {4000.0, EventKind::kHeal, 0, 0.0, 0, 0},
      {5000.0, EventKind::kRecover, 2, 0.0, 0, 0},
      {6000.0, EventKind::kRestore, 1, 0.0, 0, 0},
      {7000.0, EventKind::kGoalChange, 0, 1.5, 0, 1},
  };

  FaultInjector::Params params;
  ApplyToFaultParams(schedule, &params);
  ASSERT_EQ(params.script.size(), 2u);
  EXPECT_TRUE(params.script[0].crash);
  EXPECT_EQ(params.script[0].node, 2u);
  EXPECT_FALSE(params.script[1].crash);
  ASSERT_EQ(params.degradation_script.size(), 2u);
  EXPECT_TRUE(params.degradation_script[0].begin);
  EXPECT_DOUBLE_EQ(params.degradation_script[0].factor, 20.0);
  ASSERT_EQ(params.partition_script.size(), 2u);
  // Mask 0x1 cuts node 0 off from {1, 2, 3}.
  EXPECT_EQ(params.partition_script[0].groups.size(), 4u);
  EXPECT_NE(params.partition_script[0].groups[0],
            params.partition_script[0].groups[1]);
  EXPECT_EQ(params.partition_script[0].groups[1],
            params.partition_script[0].groups[3]);
  // The heal entry is an all-whole topology.
  const auto& heal_groups = params.partition_script[1].groups;
  EXPECT_TRUE(heal_groups.empty() ||
              std::count(heal_groups.begin(), heal_groups.end(),
                         heal_groups[0]) ==
                  static_cast<long>(heal_groups.size()));

  const std::vector<Event> goals = GoalChanges(schedule);
  ASSERT_EQ(goals.size(), 1u);
  EXPECT_EQ(goals[0].klass, 1u);
  EXPECT_DOUBLE_EQ(goals[0].factor, 1.5);
}

TEST(ChaosScheduleTest, CorruptEventsRouteToCorruptionScript) {
  Schedule schedule;
  schedule.seed = 3;
  schedule.num_nodes = 4;
  schedule.horizon_ms = 50000.0;
  schedule.events = {
      {1000.0, EventKind::kCrash, 2, 0.0, 0, 0},
      {2000.0, EventKind::kCorrupt, 1, 0.0, 0, 0, /*count=*/3,
       /*salt=*/0xabcdefull},
  };

  FaultInjector::Params params;
  ApplyToFaultParams(schedule, &params);
  EXPECT_EQ(params.script.size(), 1u);
  ASSERT_EQ(params.corruption_script.size(), 1u);
  EXPECT_DOUBLE_EQ(params.corruption_script[0].at_ms, 2000.0);
  EXPECT_EQ(params.corruption_script[0].node, 1u);
  EXPECT_EQ(params.corruption_script[0].count, 3u);
  EXPECT_EQ(params.corruption_script[0].salt, 0xabcdefull);
}

TEST(ChaosScheduleTest, CorruptGenerationIsOptInAndLeavesOldSeedsAlone) {
  // max_corrupt_episodes = 0 must consume no RNG: every schedule generated
  // before corruption existed stays bit-identical. Turning it on appends
  // corrupt events without perturbing the rest of the schedule.
  GenerateLimits with_corrupt = TestLimits();
  with_corrupt.max_corrupt_episodes = 3;
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    const Schedule off = Generate(seed, TestLimits());
    const Schedule on = Generate(seed, with_corrupt);
    for (const Event& event : off.events) {
      EXPECT_NE(event.kind, EventKind::kCorrupt);
    }
    std::vector<Event> on_without_corrupt;
    size_t corrupt_count = 0;
    for (const Event& event : on.events) {
      if (event.kind == EventKind::kCorrupt) {
        ++corrupt_count;
        EXPECT_GE(event.at_ms, 0.0);
        EXPECT_LE(event.at_ms, on.horizon_ms);
        EXPECT_LT(event.node, on.num_nodes);
        EXPECT_GE(event.count, 1u);
      } else {
        on_without_corrupt.push_back(event);
      }
    }
    EXPECT_GE(corrupt_count, 1u) << "seed " << seed;
    ASSERT_EQ(on_without_corrupt.size(), off.events.size()) << "seed " << seed;
    for (size_t i = 0; i < off.events.size(); ++i) {
      EXPECT_TRUE(SameEvent(off.events[i], on_without_corrupt[i]))
          << "seed " << seed << " event " << i;
    }
  }
}

TEST(ChaosScheduleTest, TextRoundTripIsLossless) {
  GenerateLimits limits = TestLimits();
  limits.max_corrupt_episodes = 2;
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    const Schedule original = Generate(seed, limits);
    Schedule parsed;
    ASSERT_TRUE(FromText(ToText(original), &parsed)) << "seed " << seed;
    EXPECT_TRUE(SameSchedule(original, parsed)) << "seed " << seed;
  }
}

TEST(ChaosScheduleTest, FromTextRejectsGarbage) {
  Schedule schedule;
  EXPECT_FALSE(FromText("", &schedule));
  EXPECT_FALSE(FromText("not a schedule\n", &schedule));
  EXPECT_FALSE(FromText("# chaos schedule v1\nseed banana\n", &schedule));
}

TEST(ChaosScheduleTest, ShrinkFindsMinimalFailingSubset) {
  // Synthetic failure: the run "fails" iff the schedule still contains both
  // the crash of node 3 and the heal. ddmin must strip the other 8 events.
  Schedule schedule;
  schedule.seed = 11;
  schedule.num_nodes = 4;
  schedule.horizon_ms = 50000.0;
  for (int i = 0; i < 8; ++i) {
    schedule.events.push_back(
        {1000.0 * (i + 1), EventKind::kDegrade, 1, 5.0, 0, 0});
  }
  schedule.events.push_back({9000.0, EventKind::kCrash, 3, 0.0, 0, 0});
  schedule.events.push_back({9500.0, EventKind::kHeal, 0, 0.0, 0, 0});

  int calls = 0;
  const auto fails = [&calls](const Schedule& candidate) {
    ++calls;
    bool has_crash = false, has_heal = false;
    for (const Event& event : candidate.events) {
      has_crash |= event.kind == EventKind::kCrash && event.node == 3;
      has_heal |= event.kind == EventKind::kHeal;
    }
    return has_crash && has_heal;
  };

  const Schedule shrunk = Shrink(schedule, fails);
  ASSERT_EQ(shrunk.events.size(), 2u);
  EXPECT_EQ(shrunk.events[0].kind, EventKind::kCrash);
  EXPECT_EQ(shrunk.events[1].kind, EventKind::kHeal);
  // Header fields survive the shrink (the repro must build the same system).
  EXPECT_EQ(shrunk.seed, 11u);
  EXPECT_EQ(shrunk.num_nodes, 4u);
  EXPECT_GT(calls, 0);
}

TEST(ChaosScheduleTest, ShrinkKeepsOrderAndIsIdempotentOnMinimal) {
  Schedule minimal;
  minimal.seed = 5;
  minimal.num_nodes = 3;
  minimal.horizon_ms = 10000.0;
  minimal.events = {{1000.0, EventKind::kPartition, 0, 0.0, 0x1, 0},
                    {2000.0, EventKind::kHeal, 0, 0.0, 0, 0}};
  const auto fails = [](const Schedule& candidate) {
    return candidate.events.size() == 2;
  };
  const Schedule shrunk = Shrink(minimal, fails);
  EXPECT_TRUE(SameSchedule(shrunk, minimal));
}

}  // namespace
}  // namespace memgoal::sim::chaos
