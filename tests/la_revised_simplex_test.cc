// Cross-checks of the revised simplex backend against the dense tableau
// oracle and a brute-force vertex enumerator, plus the warm-start contract
// (a re-solve seeded with the previous basis must reproduce the cold
// solution). The corpus leans on small integer coefficients on purpose:
// they manufacture primal and dual degeneracy (ties in the ratio test,
// zero reduced costs at the optimum), which is exactly where a simplex
// implementation breaks.

#include "la/revised_simplex.h"

#include <cmath>
#include <limits>
#include <optional>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "la/gauss.h"
#include "la/simplex.h"

namespace memgoal::la {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

enum class Rel { kLe, kGe, kEq };

/// One LP in the solver's native form: min/max c.x, rows, bounds [0, ub].
struct Lp {
  const char* name;
  bool minimize = true;
  Vector c;
  std::vector<Vector> rows;
  std::vector<Rel> rels;
  Vector rhs;
  Vector ub;  // kInf entries mean unbounded above
};

SimplexResult SolveWith(const Lp& lp, LpBackend backend,
                        const SimplexBasis* warm = nullptr) {
  SimplexSolver solver(lp.c.size(), backend);
  solver.SetObjective(lp.c, lp.minimize);
  for (size_t i = 0; i < lp.rows.size(); ++i) {
    switch (lp.rels[i]) {
      case Rel::kLe:
        solver.AddLe(lp.rows[i], lp.rhs[i]);
        break;
      case Rel::kGe:
        solver.AddGe(lp.rows[i], lp.rhs[i]);
        break;
      case Rel::kEq:
        solver.AddEq(lp.rows[i], lp.rhs[i]);
        break;
    }
  }
  for (size_t j = 0; j < lp.ub.size(); ++j) {
    if (lp.ub[j] < kInf) solver.SetUpperBound(j, lp.ub[j]);
  }
  return solver.Solve(warm);
}

bool Feasible(const Lp& lp, const Vector& x, double tol) {
  for (size_t j = 0; j < x.size(); ++j) {
    if (x[j] < -tol || x[j] > lp.ub[j] + tol) return false;
  }
  for (size_t i = 0; i < lp.rows.size(); ++i) {
    const double lhs = Dot(lp.rows[i], x);
    switch (lp.rels[i]) {
      case Rel::kLe:
        if (lhs > lp.rhs[i] + tol) return false;
        break;
      case Rel::kGe:
        if (lhs < lp.rhs[i] - tol) return false;
        break;
      case Rel::kEq:
        if (std::fabs(lhs - lp.rhs[i]) > tol) return false;
        break;
    }
  }
  return true;
}

/// Brute-force oracle for fully box-bounded instances (compact feasible
/// region, so the LP is feasible iff a feasible vertex exists, and the
/// optimum is attained at one). Enumerates every choice of n active
/// constraints from {rows-as-equalities, x_j = 0, x_j = ub_j}, solves the
/// n x n system, and keeps the best feasible solution. Exponential — only
/// for n <= 4.
std::optional<double> BestVertexObjective(const Lp& lp) {
  const size_t n = lp.c.size();
  const size_t m = lp.rows.size();
  const size_t total = m + 2 * n;
  std::optional<double> best;
  std::vector<size_t> pick(n, 0);
  // Odometer over all C(total, n) subsets.
  for (size_t i = 0; i < n; ++i) pick[i] = i;
  while (true) {
    Matrix a(n, n);
    Vector b(n, 0.0);
    for (size_t k = 0; k < n; ++k) {
      const size_t idx = pick[k];
      Vector row(n, 0.0);
      double rhs = 0.0;
      if (idx < m) {
        row = lp.rows[idx];
        rhs = lp.rhs[idx];
      } else if (idx < m + n) {
        row[idx - m] = 1.0;  // x_j = 0
      } else {
        row[idx - m - n] = 1.0;
        rhs = lp.ub[idx - m - n];  // x_j = ub_j
      }
      a.SetRow(k, row);
      b[k] = rhs;
    }
    std::optional<Vector> x = SolveLinearSystem(a, b);
    if (x.has_value() && Feasible(lp, *x, 1e-7)) {
      const double z = Dot(lp.c, *x);
      if (!best.has_value() ||
          (lp.minimize ? z < *best : z > *best)) {
        best = z;
      }
    }
    // Advance the subset odometer.
    size_t k = n;
    while (k-- > 0) {
      if (pick[k] + (n - k) < total) {
        ++pick[k];
        for (size_t t = k + 1; t < n; ++t) pick[t] = pick[t - 1] + 1;
        break;
      }
      if (k == 0) return best;
    }
  }
}

void ExpectBackendsAgree(const Lp& lp) {
  const SimplexResult dense = SolveWith(lp, LpBackend::kDense);
  const SimplexResult revised = SolveWith(lp, LpBackend::kRevised);
  ASSERT_EQ(dense.status, revised.status) << lp.name;
  if (dense.status != SimplexStatus::kOptimal) return;
  const double scale = 1.0 + std::fabs(dense.objective);
  EXPECT_NEAR(dense.objective, revised.objective, 1e-9 * scale) << lp.name;
  // Both points must be feasible; they need not coincide (alternate optima
  // under dual degeneracy are legal).
  EXPECT_TRUE(Feasible(lp, dense.x, 1e-7)) << lp.name;
  EXPECT_TRUE(Feasible(lp, revised.x, 1e-7)) << lp.name;
}

TEST(RevisedSimplexCorpus, DegenerateAndPathologicalInstancesAgree) {
  const std::vector<Lp> corpus = {
      // Primal degeneracy: three constraints meet at the optimum vertex.
      {"degenerate-vertex", true, {-1.0, -1.0},
       {{1.0, 0.0}, {0.0, 1.0}, {1.0, 1.0}},
       {Rel::kLe, Rel::kLe, Rel::kLe}, {1.0, 1.0, 2.0}, {kInf, kInf}},
      // Dual degeneracy: objective parallel to a binding row, a whole edge
      // of alternate optima.
      {"dual-degenerate", true, {1.0, 1.0},
       {{1.0, 1.0}}, {Rel::kGe}, {4.0}, {kInf, kInf}},
      // Beale-style cycling-prone instance (classic anti-cycling stressor).
      {"beale", true, {-0.75, 150.0, -0.02, 6.0},
       {{0.25, -60.0, -1.0 / 25.0, 9.0},
        {0.5, -90.0, -1.0 / 50.0, 3.0},
        {0.0, 0.0, 1.0, 0.0}},
       {Rel::kLe, Rel::kLe, Rel::kLe}, {0.0, 0.0, 1.0},
       {kInf, kInf, kInf, kInf}},
      // Infeasible by contradictory rows.
      {"infeasible-rows", true, {1.0},
       {{1.0}, {1.0}}, {Rel::kLe, Rel::kGe}, {1.0, 2.0}, {kInf}},
      // Infeasible by bound: the equality needs x0 = 7 but ub is 5.
      {"infeasible-bound", true, {1.0},
       {{1.0}}, {Rel::kEq}, {7.0}, {5.0}},
      // Unbounded ray along x1.
      {"unbounded", false, {0.0, 1.0},
       {{1.0, 0.0}}, {Rel::kLe}, {3.0}, {kInf, kInf}},
      // Redundant equality pair keeps an artificial basic at zero.
      {"redundant-eq", true, {1.0, 1.0},
       {{1.0, 1.0}, {2.0, 2.0}}, {Rel::kEq, Rel::kEq}, {5.0, 10.0},
       {kInf, kInf}},
      // Fixed variable (ub == 0) plus a goal row.
      {"fixed-var", true, {1.0, 2.0},
       {{1.0, 1.0}}, {Rel::kGe}, {3.0}, {0.0, kInf}},
      // Equality whose slack bounds force phase 1, negative rhs.
      {"negative-rhs-eq", true, {0.5, 1.0, 0.8},
       {{-2.0, -1.0, -3.0}}, {Rel::kEq}, {-12.0}, {4.0, 4.0, 4.0}},
      // Zero rows the degraded controller emits for dead nodes.
      {"zero-row-feasible", true, {1.0, 1.0},
       {{0.0, 0.0}}, {Rel::kLe}, {5.0}, {kInf, kInf}},
      {"zero-row-infeasible", true, {1.0, 1.0},
       {{0.0, 0.0}}, {Rel::kGe}, {2.0}, {kInf, kInf}},
  };
  for (const Lp& lp : corpus) ExpectBackendsAgree(lp);
}

TEST(RevisedSimplexOracle, RandomSmallInstancesMatchVertexEnumeration) {
  // Small integer coefficients with full box bounds: compact region, heavy
  // primal/dual degeneracy, frequent infeasibility. Both solvers must agree
  // with exhaustive vertex enumeration on status and optimal value.
  common::Rng rng(20260809);
  int optimal_seen = 0, infeasible_seen = 0;
  for (int trial = 0; trial < 400; ++trial) {
    Lp lp;
    lp.name = "random";
    const size_t n = static_cast<size_t>(rng.UniformInt(2, 4));
    const size_t m = static_cast<size_t>(rng.UniformInt(1, 4));
    lp.minimize = rng.UniformInt(0, 1) == 0;
    lp.c.resize(n);
    for (double& v : lp.c) v = static_cast<double>(rng.UniformInt(-3, 3));
    for (size_t i = 0; i < m; ++i) {
      Vector row(n);
      for (double& v : row) v = static_cast<double>(rng.UniformInt(-2, 2));
      lp.rows.push_back(row);
      lp.rels.push_back(static_cast<Rel>(rng.UniformInt(0, 2)));
      lp.rhs.push_back(static_cast<double>(rng.UniformInt(-4, 8)));
    }
    lp.ub.resize(n);
    for (double& v : lp.ub) v = static_cast<double>(rng.UniformInt(1, 5));

    const std::optional<double> oracle = BestVertexObjective(lp);
    const SimplexResult dense = SolveWith(lp, LpBackend::kDense);
    const SimplexResult revised = SolveWith(lp, LpBackend::kRevised);
    ASSERT_EQ(dense.status, revised.status) << "trial " << trial;
    if (oracle.has_value()) {
      ++optimal_seen;
      ASSERT_EQ(revised.status, SimplexStatus::kOptimal) << "trial " << trial;
      const double tol = 1e-7 * (1.0 + std::fabs(*oracle));
      EXPECT_NEAR(revised.objective, *oracle, tol) << "trial " << trial;
      EXPECT_NEAR(dense.objective, *oracle, tol) << "trial " << trial;
      EXPECT_TRUE(Feasible(lp, revised.x, 1e-7)) << "trial " << trial;
    } else {
      ++infeasible_seen;
      EXPECT_EQ(revised.status, SimplexStatus::kInfeasible)
          << "trial " << trial;
    }
  }
  // The generator must actually exercise both sides.
  EXPECT_GT(optimal_seen, 50);
  EXPECT_GT(infeasible_seen, 50);
}

/// Random partitioning-shaped LP: one goal coupling row over n bounded
/// variables — the exact block structure the optimizer poses every control
/// interval.
Lp RandomPartitioningLp(common::Rng& rng, size_t n, bool equality) {
  Lp lp;
  lp.name = "partitioning";
  lp.c.resize(n);
  Vector grad(n);
  for (size_t j = 0; j < n; ++j) {
    lp.c[j] = rng.Uniform(1e-8, 1e-6);     // no-goal gradient (cost)
    grad[j] = -rng.Uniform(1e-7, 5e-6);    // goal gradient (negative slope)
  }
  lp.rows.push_back(grad);
  lp.rels.push_back(equality ? Rel::kEq : Rel::kLe);
  lp.rhs.push_back(rng.Uniform(-20.0, 5.0));
  lp.ub.assign(n, 2.0 * 1024 * 1024);
  return lp;
}

TEST(RevisedSimplexWarmStart, WarmEqualsColdOnIdenticalProgram) {
  common::Rng rng(77);
  for (int trial = 0; trial < 100; ++trial) {
    const size_t n = static_cast<size_t>(rng.UniformInt(2, 16));
    const Lp lp = RandomPartitioningLp(rng, n, trial % 2 == 0);
    const SimplexResult cold = SolveWith(lp, LpBackend::kRevised);
    if (cold.status != SimplexStatus::kOptimal) continue;
    ASSERT_FALSE(cold.basis.empty()) << "trial " << trial;
    const SimplexResult warm =
        SolveWith(lp, LpBackend::kRevised, &cold.basis);
    ASSERT_EQ(warm.status, SimplexStatus::kOptimal) << "trial " << trial;
    // Same basis in, same program: the canonical cleanup makes the point a
    // pure function of the final basis, so the warm re-solve is exact.
    EXPECT_EQ(warm.objective, cold.objective) << "trial " << trial;
    ASSERT_EQ(warm.x.size(), cold.x.size());
    for (size_t j = 0; j < n; ++j) {
      EXPECT_EQ(warm.x[j], cold.x[j]) << "trial " << trial << " var " << j;
    }
    // A warm start prices from the old optimum: re-solving must not need
    // more iterations than the cold solve.
    EXPECT_LE(warm.iterations, cold.iterations) << "trial " << trial;
  }
}

TEST(RevisedSimplexWarmStart, WarmEqualsColdAfterRhsPerturbation) {
  // The steady-state controller pattern: the goal moves a little between
  // intervals, the basis is re-offered. Warm and cold must land on the
  // same optimum (objective within 1e-9 relative).
  common::Rng rng(78);
  for (int trial = 0; trial < 100; ++trial) {
    const size_t n = static_cast<size_t>(rng.UniformInt(2, 16));
    Lp lp = RandomPartitioningLp(rng, n, trial % 2 == 0);
    const SimplexResult prev = SolveWith(lp, LpBackend::kRevised);
    if (prev.status != SimplexStatus::kOptimal) continue;
    lp.rhs[0] *= rng.Uniform(0.95, 1.05);
    const SimplexResult cold = SolveWith(lp, LpBackend::kRevised);
    const SimplexResult warm =
        SolveWith(lp, LpBackend::kRevised, &prev.basis);
    ASSERT_EQ(warm.status, cold.status) << "trial " << trial;
    if (cold.status != SimplexStatus::kOptimal) continue;
    const double tol = 1e-9 * (1.0 + std::fabs(cold.objective));
    EXPECT_NEAR(warm.objective, cold.objective, tol) << "trial " << trial;
    EXPECT_TRUE(Feasible(lp, warm.x, 1e-7)) << "trial " << trial;
  }
}

TEST(RevisedSimplexWarmStart, MismatchedBasisFallsBackToColdStart) {
  common::Rng rng(79);
  const Lp lp = RandomPartitioningLp(rng, 6, /*equality=*/true);
  const SimplexResult cold = SolveWith(lp, LpBackend::kRevised);
  ASSERT_EQ(cold.status, SimplexStatus::kOptimal);
  // Wrong dimension: silently ignored.
  SimplexBasis wrong;
  wrong.status.assign(3, SimplexBasis::VarStatus::kAtLower);
  const SimplexResult r1 = SolveWith(lp, LpBackend::kRevised, &wrong);
  EXPECT_EQ(r1.status, SimplexStatus::kOptimal);
  EXPECT_EQ(r1.objective, cold.objective);
  // Structurally absurd basis (everything basic): rejected, cold result.
  SimplexBasis absurd;
  absurd.status.assign(cold.basis.status.size(),
                       SimplexBasis::VarStatus::kBasic);
  const SimplexResult r2 = SolveWith(lp, LpBackend::kRevised, &absurd);
  EXPECT_EQ(r2.status, SimplexStatus::kOptimal);
  EXPECT_EQ(r2.objective, cold.objective);
}

TEST(RevisedSimplexWarmStart, DenseBackendIgnoresWarmBasis) {
  common::Rng rng(80);
  const Lp lp = RandomPartitioningLp(rng, 5, /*equality=*/true);
  const SimplexResult cold = SolveWith(lp, LpBackend::kDense);
  SimplexBasis junk;
  junk.status.assign(7, SimplexBasis::VarStatus::kAtUpper);
  const SimplexResult warm = SolveWith(lp, LpBackend::kDense, &junk);
  EXPECT_EQ(warm.status, cold.status);
  EXPECT_EQ(warm.objective, cold.objective);
  EXPECT_TRUE(warm.basis.empty());  // dense never exports a basis
}

TEST(RevisedSimplexIterationLimit, CapSurfacesAsDistinctStatus) {
  // A direct SolveRevised call with a tiny budget: the solve cannot finish,
  // and the outcome must be kIterationLimit — not infeasible, not
  // unbounded, and certainly not a crash.
  RevisedLp lp;
  lp.num_vars = 3;
  lp.objective = {0.5, 1.0, 0.8};
  lp.rows = {{-2.0, -1.0, -3.0}};
  lp.relations = {RevisedLp::Relation::kEq};
  lp.rhs = {-12.0};
  lp.upper = {4.0, 4.0, 4.0};
  const SimplexResult limited = SolveRevised(lp, nullptr, /*max_iterations=*/1);
  EXPECT_EQ(limited.status, SimplexStatus::kIterationLimit);
  const SimplexResult full = SolveRevised(lp, nullptr, 1000);
  EXPECT_EQ(full.status, SimplexStatus::kOptimal);
}

TEST(SimplexBasisText, RoundTripsAndRejectsGarbage) {
  SimplexBasis basis;
  basis.status = {SimplexBasis::VarStatus::kAtLower,
                  SimplexBasis::VarStatus::kBasic,
                  SimplexBasis::VarStatus::kAtUpper,
                  SimplexBasis::VarStatus::kAtLower};
  EXPECT_EQ(basis.ToText(), "LBUL");
  SimplexBasis parsed;
  ASSERT_TRUE(SimplexBasis::FromText("LBUL", &parsed));
  EXPECT_EQ(parsed.status, basis.status);
  EXPECT_TRUE(SimplexBasis::FromText("", &parsed));
  EXPECT_TRUE(parsed.empty());
  EXPECT_FALSE(SimplexBasis::FromText("LBX", &parsed));
}

}  // namespace
}  // namespace memgoal::la
