#include "core/variance_optimizer.h"

#include <gtest/gtest.h>

#include "core/measure.h"

namespace memgoal::core {
namespace {

// Two nodes; each node's response time depends only on its own allocation:
// RT_i = 10 - 0.002 * x_i. The mean plane is the average.
VarianceOptimizerInput SymmetricInput() {
  VarianceOptimizerInput input;
  input.node_planes.resize(2);
  input.node_planes[0].grad = {-0.002, 0.0};
  input.node_planes[0].intercept = 10.0;
  input.node_planes[1].grad = {0.0, -0.002};
  input.node_planes[1].intercept = 10.0;
  input.mean_grad = {-0.001, -0.001};
  input.mean_intercept = 10.0;
  input.goal_rt = 6.0;
  input.upper_bounds = {4000.0, 4000.0};
  return input;
}

TEST(VarianceOptimizerTest, SymmetricProblemEqualizesNodes) {
  const VarianceOptimizerOutput output =
      SolveVariancePartitioning(SymmetricInput());
  EXPECT_EQ(output.mode, OptimizerMode::kGoalEquality);
  // Mean must hit the goal: 10 - 0.001(x0+x1) = 6 -> x0+x1 = 4000. The
  // dispersion-minimizing split is the symmetric one.
  EXPECT_NEAR(output.allocation[0] + output.allocation[1], 4000.0, 1e-6);
  EXPECT_NEAR(output.allocation[0], 2000.0, 1e-6);
  EXPECT_NEAR(output.allocation[1], 2000.0, 1e-6);
  EXPECT_NEAR(output.predicted_mean_rt, 6.0, 1e-9);
  EXPECT_NEAR(output.predicted_mad_rt, 0.0, 1e-9);
}

TEST(VarianceOptimizerTest, AsymmetricInterceptsCompensated) {
  VarianceOptimizerInput input = SymmetricInput();
  // Node 1 is intrinsically slower (intercept 14 vs 10): equalizing the
  // response times requires giving node 1 more buffer.
  input.node_planes[1].intercept = 14.0;
  input.mean_intercept = 12.0;
  input.goal_rt = 8.0;
  const VarianceOptimizerOutput output = SolveVariancePartitioning(input);
  EXPECT_EQ(output.mode, OptimizerMode::kGoalEquality);
  // Mean: 12 - 0.001(x0+x1) = 8 -> x0+x1 = 4000.
  // Equal RTs: 10 - 0.002 x0 = 14 - 0.002 x1 and x0 + x1 = 4000
  //   -> x1 - x0 = 2000 -> x0 = 1000, x1 = 3000.
  EXPECT_NEAR(output.allocation[0], 1000.0, 1e-6);
  EXPECT_NEAR(output.allocation[1], 3000.0, 1e-6);
  EXPECT_NEAR(output.predicted_mad_rt, 0.0, 1e-9);
}

TEST(VarianceOptimizerTest, BoundsCanForceResidualDispersion) {
  VarianceOptimizerInput input = SymmetricInput();
  input.node_planes[1].intercept = 14.0;
  input.mean_intercept = 12.0;
  input.goal_rt = 8.0;
  input.upper_bounds = {4000.0, 2500.0};  // node 1 cannot reach 3000
  const VarianceOptimizerOutput output = SolveVariancePartitioning(input);
  EXPECT_EQ(output.mode, OptimizerMode::kGoalEquality);
  EXPECT_NEAR(output.allocation[1], 2500.0, 1e-6);
  EXPECT_NEAR(output.allocation[0], 1500.0, 1e-6);  // mean constraint
  EXPECT_GT(output.predicted_mad_rt, 0.0);
  // Residual spread: RT0 = 7, RT1 = 9 -> MAD = 1.
  EXPECT_NEAR(output.predicted_mad_rt, 1.0, 1e-6);
}

TEST(VarianceOptimizerTest, UnreachableGoalSaturates) {
  VarianceOptimizerInput input = SymmetricInput();
  input.goal_rt = 0.5;  // max reduction 0.001*8000 = 8 -> min mean rt = 2
  const VarianceOptimizerOutput output = SolveVariancePartitioning(input);
  EXPECT_EQ(output.mode, OptimizerMode::kBestEffort);
  EXPECT_NEAR(output.allocation[0], 4000.0, 1e-9);
  EXPECT_NEAR(output.allocation[1], 4000.0, 1e-9);
}

TEST(VarianceOptimizerTest, LooseGoalUsesInequality) {
  VarianceOptimizerInput input = SymmetricInput();
  input.goal_rt = 15.0;  // above the zero-allocation mean of 10
  const VarianceOptimizerOutput output = SolveVariancePartitioning(input);
  EXPECT_EQ(output.mode, OptimizerMode::kGoalInequality);
  // Zero allocation is optimal: RTs equal at 10, dispersion 0, goal held.
  EXPECT_NEAR(output.allocation[0], 0.0, 1e-9);
  EXPECT_NEAR(output.allocation[1], 0.0, 1e-9);
  EXPECT_NEAR(output.predicted_mad_rt, 0.0, 1e-9);
}

TEST(VarianceOptimizerTest, CrossGradientsHandled) {
  // Allocations on one node influence the other's response time (remote
  // cache coupling, equation 3's remote term).
  VarianceOptimizerInput input;
  input.node_planes.resize(2);
  input.node_planes[0].grad = {-0.002, -0.0005};
  input.node_planes[0].intercept = 10.0;
  input.node_planes[1].grad = {-0.0005, -0.002};
  input.node_planes[1].intercept = 12.0;
  input.mean_grad = {-0.00125, -0.00125};
  input.mean_intercept = 11.0;
  input.goal_rt = 7.0;
  input.upper_bounds = {4000.0, 4000.0};
  const VarianceOptimizerOutput output = SolveVariancePartitioning(input);
  ASSERT_EQ(output.mode, OptimizerMode::kGoalEquality);
  // The mean constraint pins x0 + x1 = 3200.
  EXPECT_NEAR(output.allocation[0] + output.allocation[1], 3200.0, 1e-6);
  // Dispersion should be eliminated: solve RT0 == RT1 with the sum fixed:
  // 10 - 0.002 x0 - 0.0005 x1 = 12 - 0.0005 x0 - 0.002 x1
  //   -> 0.0015 (x1 - x0) = 2 -> x1 - x0 = 4000/3.
  EXPECT_NEAR(output.allocation[1] - output.allocation[0], 4000.0 / 3.0,
              1e-5);
  EXPECT_NEAR(output.predicted_mad_rt, 0.0, 1e-9);
}

TEST(VarianceOptimizerTest, PredictionsConsistentWithPlanes) {
  VarianceOptimizerInput input = SymmetricInput();
  const VarianceOptimizerOutput output = SolveVariancePartitioning(input);
  for (size_t i = 0; i < 2; ++i) {
    const double rt = la::Dot(input.node_planes[i].grad, output.allocation) +
                      input.node_planes[i].intercept;
    EXPECT_NEAR(output.predicted_rt_per_node[i], rt, 1e-9);
  }
}

}  // namespace
}  // namespace memgoal::core
