#include "core/scenario.h"

#include <gtest/gtest.h>

#include <optional>
#include <string>

#include "common/config.h"

namespace memgoal::core {
namespace {

std::optional<Scenario> Load(const std::string& text, std::string* error) {
  common::Config config;
  EXPECT_TRUE(config.ParseText(text));
  return LoadScenario(config, error);
}

TEST(ScenarioTest, QueueNearMissGetsSuggestion) {
  std::string error;
  EXPECT_FALSE(Load("queue=calender\n", &error).has_value());
  EXPECT_NE(error.find("queue must be calendar or heap"), std::string::npos)
      << error;
  EXPECT_NE(error.find("did you mean calendar?"), std::string::npos) << error;
}

TEST(ScenarioTest, LpKeySelectsBackend) {
  std::string error;
  std::optional<Scenario> scenario = Load("lp=dense\nclass1_goal_ms=50\n", &error);
  ASSERT_TRUE(scenario.has_value()) << error;
  EXPECT_EQ(scenario->system.lp_backend, la::LpBackend::kDense);
  scenario = Load("lp=revised\nclass1_goal_ms=50\n", &error);
  ASSERT_TRUE(scenario.has_value()) << error;
  EXPECT_EQ(scenario->system.lp_backend, la::LpBackend::kRevised);
  // Default is the revised solver.
  scenario = Load("nodes=3\nclass1_goal_ms=50\n", &error);
  ASSERT_TRUE(scenario.has_value()) << error;
  EXPECT_EQ(scenario->system.lp_backend, la::LpBackend::kRevised);
}

TEST(ScenarioTest, LpNearMissGetsSuggestion) {
  std::string error;
  EXPECT_FALSE(Load("lp=revized\n", &error).has_value());
  EXPECT_NE(error.find("lp must be revised or dense"), std::string::npos)
      << error;
  EXPECT_NE(error.find("did you mean revised?"), std::string::npos) << error;
}

TEST(ScenarioTest, HintBudgetKeyPopulatesConfig) {
  std::string error;
  const std::optional<Scenario> scenario = Load("hint_budget=12\nclass1_goal_ms=50\n", &error);
  ASSERT_TRUE(scenario.has_value()) << error;
  EXPECT_EQ(scenario->system.hint_fanout_budget, 12u);
  // Default: unlimited fan-out.
  const std::optional<Scenario> fallback = Load("nodes=3\nclass1_goal_ms=50\n", &error);
  ASSERT_TRUE(fallback.has_value()) << error;
  EXPECT_EQ(fallback->system.hint_fanout_budget, 0u);
}

TEST(ScenarioTest, CorruptNearMissGetsSuggestion) {
  std::string error;
  EXPECT_FALSE(Load("corrupt=frmaes\n", &error).has_value());
  EXPECT_NE(error.find("corrupt must be off, disk, frames or all"),
            std::string::npos)
      << error;
  EXPECT_NE(error.find("did you mean frames?"), std::string::npos) << error;
}

TEST(ScenarioTest, ScrubNearMissGetsSuggestion) {
  std::string error;
  EXPECT_FALSE(Load("scrub=idel\n", &error).has_value());
  EXPECT_NE(error.find("scrub must be off or idle"), std::string::npos)
      << error;
  EXPECT_NE(error.find("did you mean idle?"), std::string::npos) << error;
}

TEST(ScenarioTest, FarFetchedEnumValueGetsNoSuggestion) {
  std::string error;
  EXPECT_FALSE(Load("queue=fibonacci\n", &error).has_value());
  EXPECT_EQ(error.find("did you mean"), std::string::npos) << error;
}

TEST(ScenarioTest, CorruptionKeysPopulateConfig) {
  std::string error;
  const std::optional<Scenario> scenario = Load(
      "class1_goal_ms=5\n"
      "corrupt=disk\n"
      "fault_mttc_ms=40000\n"
      "corrupt_latent=0.25\n"
      "corrupt_node=2\n"
      "corrupt_at_ms=1500\n"
      "corrupt_count=3\n"
      "corrupt_salt=77\n"
      "scrub=idle\n"
      "scrub_interval_ms=800\n",
      &error);
  ASSERT_TRUE(scenario.has_value()) << error;
  const SystemConfig& system = scenario->system;
  EXPECT_EQ(system.corrupt_surface, CorruptionSurface::kDisk);
  EXPECT_DOUBLE_EQ(system.faults.mttc_ms, 40000.0);
  EXPECT_DOUBLE_EQ(system.corrupt_latent_fraction, 0.25);
  EXPECT_DOUBLE_EQ(system.scrub_interval_ms, 800.0);
  ASSERT_EQ(system.faults.corruption_script.size(), 1u);
  EXPECT_DOUBLE_EQ(system.faults.corruption_script[0].at_ms, 1500.0);
  EXPECT_EQ(system.faults.corruption_script[0].node, 2u);
  EXPECT_EQ(system.faults.corruption_script[0].count, 3u);
  EXPECT_EQ(system.faults.corruption_script[0].salt, 77u);
}

TEST(ScenarioTest, CorruptOffIsAKillSwitch) {
  std::string error;
  const std::optional<Scenario> scenario = Load(
      "class1_goal_ms=5\n"
      "corrupt=off\n"
      "fault_mttc_ms=40000\n"
      "corrupt_node=2\n",
      &error);
  ASSERT_TRUE(scenario.has_value()) << error;
  EXPECT_DOUBLE_EQ(scenario->system.faults.mttc_ms, 0.0);
  EXPECT_TRUE(scenario->system.faults.corruption_script.empty());
}

TEST(ScenarioTest, ScrubDefaultsOff) {
  std::string error;
  const std::optional<Scenario> scenario = Load("nodes=3\nclass1_goal_ms=5\n", &error);
  ASSERT_TRUE(scenario.has_value()) << error;
  EXPECT_DOUBLE_EQ(scenario->system.scrub_interval_ms, 0.0);
  EXPECT_DOUBLE_EQ(scenario->system.faults.mttc_ms, 0.0);
}

}  // namespace
}  // namespace memgoal::core
