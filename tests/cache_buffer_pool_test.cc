#include "cache/buffer_pool.h"

#include <map>

#include <gtest/gtest.h>

#include "cache/cost_based.h"
#include "cache/replacement.h"

namespace memgoal::cache {
namespace {

constexpr uint32_t kPage = 4096;

BufferPool MakeLruPool(uint64_t capacity_bytes) {
  return BufferPool("test", kPage, capacity_bytes, MakeLruPolicy());
}

TEST(BufferPoolTest, CapacityInFrames) {
  BufferPool pool = MakeLruPool(3 * kPage + 100);
  EXPECT_EQ(pool.capacity_frames(), 3u);
  BufferPool tiny = MakeLruPool(kPage - 1);
  EXPECT_EQ(tiny.capacity_frames(), 0u);
}

TEST(BufferPoolTest, InsertUntilFullThenEvict) {
  BufferPool pool = MakeLruPool(2 * kPage);
  auto r1 = pool.Insert(1);
  EXPECT_TRUE(r1.inserted);
  EXPECT_TRUE(r1.evicted.empty());
  auto r2 = pool.Insert(2);
  EXPECT_TRUE(r2.inserted);
  EXPECT_TRUE(r2.evicted.empty());
  auto r3 = pool.Insert(3);
  EXPECT_TRUE(r3.inserted);
  ASSERT_EQ(r3.evicted.size(), 1u);
  EXPECT_EQ(r3.evicted[0], 1u);  // LRU
  EXPECT_FALSE(pool.Contains(1));
  EXPECT_TRUE(pool.Contains(2));
  EXPECT_TRUE(pool.Contains(3));
}

TEST(BufferPoolTest, TouchChangesEvictionOrder) {
  BufferPool pool = MakeLruPool(2 * kPage);
  pool.Insert(1);
  pool.Insert(2);
  pool.Touch(1);
  auto r = pool.Insert(3);
  ASSERT_EQ(r.evicted.size(), 1u);
  EXPECT_EQ(r.evicted[0], 2u);
}

TEST(BufferPoolTest, ZeroFramesRejectsInsert) {
  BufferPool pool = MakeLruPool(0);
  auto r = pool.Insert(1);
  EXPECT_FALSE(r.inserted);
  EXPECT_TRUE(r.evicted.empty());
  EXPECT_EQ(pool.resident_pages(), 0u);
}

TEST(BufferPoolTest, ShrinkEvicts) {
  BufferPool pool = MakeLruPool(4 * kPage);
  for (PageId p = 1; p <= 4; ++p) pool.Insert(p);
  auto evicted = pool.Resize(2 * kPage);
  ASSERT_EQ(evicted.size(), 2u);
  EXPECT_EQ(evicted[0], 1u);
  EXPECT_EQ(evicted[1], 2u);
  EXPECT_EQ(pool.resident_pages(), 2u);
  EXPECT_EQ(pool.capacity_bytes(), 2u * kPage);
}

TEST(BufferPoolTest, GrowAllowsMoreResidents) {
  BufferPool pool = MakeLruPool(kPage);
  pool.Insert(1);
  EXPECT_TRUE(pool.Resize(2 * kPage).empty());
  auto r = pool.Insert(2);
  EXPECT_TRUE(r.inserted);
  EXPECT_TRUE(r.evicted.empty());
}

TEST(BufferPoolTest, ShrinkToZeroDropsEverything) {
  BufferPool pool = MakeLruPool(3 * kPage);
  for (PageId p = 1; p <= 3; ++p) pool.Insert(p);
  auto evicted = pool.Resize(0);
  EXPECT_EQ(evicted.size(), 3u);
  EXPECT_EQ(pool.resident_pages(), 0u);
}

TEST(BufferPoolTest, CostBasedAdmissionBouncesWeakPage) {
  std::map<PageId, double> benefit = {{1, 10.0}, {2, 20.0}, {3, 0.5}};
  BufferPool pool("cb", kPage, 2 * kPage,
                  MakeCostBasedPolicy([&](PageId p) { return benefit.at(p); }));
  EXPECT_TRUE(pool.Insert(1).inserted);
  EXPECT_TRUE(pool.Insert(2).inserted);
  // Page 3 is weaker than both residents: it must bounce, leaving the pool
  // untouched and reporting no eviction.
  auto r = pool.Insert(3);
  EXPECT_FALSE(r.inserted);
  EXPECT_TRUE(r.evicted.empty());
  EXPECT_TRUE(pool.Contains(1));
  EXPECT_TRUE(pool.Contains(2));
  EXPECT_FALSE(pool.Contains(3));
  // A strong page still displaces the weakest resident.
  benefit[4] = 15.0;
  auto r4 = pool.Insert(4);
  EXPECT_TRUE(r4.inserted);
  ASSERT_EQ(r4.evicted.size(), 1u);
  EXPECT_EQ(r4.evicted[0], 1u);
}

TEST(BufferPoolTest, EraseRemovesWithoutEviction) {
  BufferPool pool = MakeLruPool(2 * kPage);
  pool.Insert(1);
  pool.Insert(2);
  pool.Erase(1);
  EXPECT_FALSE(pool.Contains(1));
  auto r = pool.Insert(3);
  EXPECT_TRUE(r.inserted);
  EXPECT_TRUE(r.evicted.empty());
}

}  // namespace
}  // namespace memgoal::cache
