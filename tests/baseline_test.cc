#include <algorithm>

#include <gtest/gtest.h>

#include "baseline/fencing.h"
#include "baseline/static_controllers.h"
#include "core/system.h"
#include "workload/spec.h"

namespace memgoal::baseline {
namespace {

core::SystemConfig TestConfig(uint64_t seed = 1) {
  core::SystemConfig config;
  config.num_nodes = 3;
  config.cache_bytes_per_node = 64 * 4096;
  config.db_pages = 200;
  config.observation_interval_ms = 5000.0;
  config.seed = seed;
  return config;
}

workload::ClassSpec GoalClass(double goal_ms) {
  workload::ClassSpec spec;
  spec.id = 1;
  spec.goal_rt_ms = goal_ms;
  spec.accesses_per_op = 4;
  spec.mean_interarrival_ms = 50.0;
  spec.pages = {0, 100};
  return spec;
}

workload::ClassSpec NoGoalClass() {
  workload::ClassSpec spec;
  spec.id = kNoGoalClass;
  spec.accesses_per_op = 4;
  spec.mean_interarrival_ms = 50.0;
  spec.pages = {100, 200};
  return spec;
}

TEST(StaticControllerTest, RejectsOverCommittedFractions) {
  EXPECT_DEATH(StaticPartitioningController(
                   std::map<ClassId, double>{{1, 0.7}, {2, 0.5}}),
               "CHECK");
}

TEST(StaticControllerTest, RejectsNoGoalClassFraction) {
  EXPECT_DEATH(
      StaticPartitioningController(std::map<ClassId, double>{{0, 0.5}}),
      "CHECK");
}

TEST(FragmentFencingTest, GrowsBufferWhenViolated) {
  core::ClusterSystem system(TestConfig(41));
  system.AddClass(GoalClass(1.0));  // tight: violated from the start
  system.AddClass(NoGoalClass());
  auto controller = std::make_unique<FragmentFencingController>();
  FragmentFencingController* raw = controller.get();
  system.SetController(std::move(controller));
  system.Start();
  system.RunIntervals(10);
  EXPECT_GT(raw->adjustments(), 0u);
  EXPECT_GT(system.TotalDedicatedBytes(1), 0u);
}

TEST(FragmentFencingTest, IdleWhenGoalLoose) {
  core::ClusterSystem system(TestConfig(42));
  system.AddClass(GoalClass(5000.0));
  system.AddClass(NoGoalClass());
  auto controller = std::make_unique<FragmentFencingController>();
  FragmentFencingController* raw = controller.get();
  system.SetController(std::move(controller));
  system.Start();
  system.RunIntervals(8);
  // Never violated from above; with zero dedicated buffer there is nothing
  // to release either.
  EXPECT_EQ(system.TotalDedicatedBytes(1), 0u);
  EXPECT_EQ(raw->adjustments(), 0u);
}

TEST(ClassFencingTest, AdjustsTowardsAchievableGoal) {
  core::ClusterSystem system(TestConfig(43));
  system.AddClass(GoalClass(2.5));
  system.AddClass(NoGoalClass());
  auto controller = std::make_unique<ClassFencingController>();
  ClassFencingController* raw = controller.get();
  system.SetController(std::move(controller));
  system.Start();
  system.RunIntervals(25);
  EXPECT_GT(raw->adjustments(), 0u);
  // Must have built a dedicated buffer at some point and ended with a
  // non-absurd allocation (clamped to capacity).
  EXPECT_LE(system.TotalDedicatedBytes(1),
            3ull * TestConfig().cache_bytes_per_node);
}

TEST(FencingTest, DistributionFollowsArrivalRates) {
  // With equal arrival rates everywhere, the aggregate splits evenly.
  core::ClusterSystem system(TestConfig(44));
  system.AddClass(GoalClass(1.0));
  system.AddClass(NoGoalClass());
  system.SetController(std::make_unique<FragmentFencingController>());
  system.Start();
  system.RunIntervals(6);
  const uint64_t d0 = system.DedicatedBytes(1, 0);
  const uint64_t d1 = system.DedicatedBytes(1, 1);
  const uint64_t d2 = system.DedicatedBytes(1, 2);
  ASSERT_GT(d0 + d1 + d2, 0u);
  // Roughly even split; Poisson arrival-rate noise allows some skew.
  const auto max_d = std::max({d0, d1, d2});
  const auto min_d = std::min({d0, d1, d2});
  EXPECT_LE(static_cast<double>(max_d), 1.6 * static_cast<double>(min_d));
}

TEST(FencingTest, ToleranceResetsOnGoalChange) {
  core::ClusterSystem system(TestConfig(45));
  system.AddClass(GoalClass(5.0));
  system.AddClass(NoGoalClass());
  system.SetController(std::make_unique<ClassFencingController>());
  system.Start();
  system.RunIntervals(6);
  const double before = system.controller().ToleranceFor(1);
  EXPECT_GT(before, 0.0);
  system.SetGoal(1, 50.0);
  // Fresh goal: only the relative floor applies.
  EXPECT_DOUBLE_EQ(system.controller().ToleranceFor(1), 0.05 * 50.0);
}

}  // namespace
}  // namespace memgoal::baseline
