#include "core/metrics.h"

#include <cstdio>
#include <string>

#include <gtest/gtest.h>

namespace memgoal::core {
namespace {

IntervalRecord MakeRecord(int index) {
  IntervalRecord record;
  record.index = index;
  record.end_time_ms = 5000.0 * (index + 1);
  ClassIntervalMetrics goal_row;
  goal_row.klass = 1;
  goal_row.observed_rt_ms = 3.25;
  goal_row.goal_rt_ms = 3.0;
  goal_row.tolerance_ms = 0.3;
  goal_row.satisfied = true;
  goal_row.dedicated_bytes = 1 << 20;
  goal_row.ops_completed = 100;
  goal_row.ops_arrived = 101;
  record.classes.push_back(goal_row);
  ClassIntervalMetrics nogoal_row;
  nogoal_row.klass = kNoGoalClass;
  nogoal_row.observed_rt_ms = 7.5;
  record.classes.push_back(nogoal_row);
  return record;
}

TEST(MetricsTest, ForClassFindsRow) {
  const IntervalRecord record = MakeRecord(0);
  EXPECT_DOUBLE_EQ(record.ForClass(1).observed_rt_ms, 3.25);
  EXPECT_DOUBLE_EQ(record.ForClass(kNoGoalClass).observed_rt_ms, 7.5);
}

TEST(MetricsTest, ForClassAbortsOnMissing) {
  const IntervalRecord record = MakeRecord(0);
  EXPECT_DEATH(record.ForClass(99), "CHECK");
}

TEST(MetricsTest, AccessCountersFractions) {
  AccessCounters counters;
  counters.by_level = {60, 30, 6, 4};
  EXPECT_EQ(counters.total(), 100u);
  EXPECT_DOUBLE_EQ(counters.HitFraction(StorageLevel::kLocalBuffer), 0.60);
  EXPECT_DOUBLE_EQ(counters.HitFraction(StorageLevel::kRemoteBuffer), 0.30);
  EXPECT_DOUBLE_EQ(counters.HitFraction(StorageLevel::kLocalDisk), 0.06);
  EXPECT_DOUBLE_EQ(counters.HitFraction(StorageLevel::kRemoteDisk), 0.04);
  AccessCounters empty;
  EXPECT_DOUBLE_EQ(empty.HitFraction(StorageLevel::kLocalBuffer), 0.0);
}

TEST(MetricsTest, WriteCsvRoundTrips) {
  MetricsLog log;
  log.Append(MakeRecord(0));
  log.Append(MakeRecord(1));

  char buffer[4096] = {};
  std::FILE* stream = fmemopen(buffer, sizeof(buffer), "w");
  ASSERT_NE(stream, nullptr);
  log.WriteCsv(stream);
  std::fclose(stream);

  const std::string csv(buffer);
  // Header plus 2 intervals x 2 classes = 5 lines.
  EXPECT_EQ(static_cast<int>(std::count(csv.begin(), csv.end(), '\n')), 5);
  EXPECT_NE(csv.find("interval,end_time_ms,class"), std::string::npos);
  EXPECT_NE(csv.find("0,5000.000,1,3.250000,3.000000,0.300000,1,1048576,"
                     "100,101"),
            std::string::npos);
  EXPECT_NE(csv.find("1,10000.000,0,"), std::string::npos);
}

}  // namespace
}  // namespace memgoal::core
