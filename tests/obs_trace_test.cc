#include "obs/trace.h"

#include <algorithm>
#include <array>
#include <cstdlib>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "core/system.h"
#include "workload/spec.h"

namespace memgoal::obs {
namespace {

std::vector<std::string> EventLines(const Tracer& tracer) {
  std::string json;
  tracer.AppendJson(&json);
  std::vector<std::string> lines;
  std::istringstream in(json);
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  EXPECT_GE(lines.size(), 2u);
  EXPECT_EQ(lines.front(), "{\"traceEvents\":[");
  EXPECT_EQ(lines.back(), "]}");
  return std::vector<std::string>(lines.begin() + 1, lines.end() - 1);
}

std::string StripTrailingComma(std::string line) {
  if (!line.empty() && line.back() == ',') line.pop_back();
  return line;
}

TEST(TracerTest, DisabledTracerRecordsNothing) {
  Tracer tracer;
  tracer.Complete("x", "access", 0, 1, 0.0, 1.0);
  tracer.Instant("y", "access", 0, 1, 0.5);
  tracer.SetProcessName(0, "node0");
  EXPECT_EQ(tracer.size(), 0u);
}

TEST(TracerTest, EmitsChromeTraceEventFields) {
  Tracer tracer;
  tracer.Enable(true);
  tracer.SetProcessName(0, "node0");
  const uint64_t track = tracer.NextTrack();
  tracer.Complete("fetch", "access", 0, track, 1.5, 3.5,
                  "{\"target\":2}");
  tracer.Instant("timeout", "access", 0, track, 2.0);

  const std::vector<std::string> events = EventLines(tracer);
  ASSERT_EQ(events.size(), 3u);
  // Complete event: sim-ms exported as trace microseconds, with duration.
  EXPECT_NE(events[1].find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(events[1].find("\"ts\":1500.000"), std::string::npos);
  EXPECT_NE(events[1].find("\"dur\":2000.000"), std::string::npos);
  EXPECT_NE(events[1].find("\"args\":{\"target\":2}"), std::string::npos);
  // Instant events need the scope field or the viewers drop them.
  EXPECT_NE(events[2].find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(events[2].find("\"s\":\"t\""), std::string::npos);
}

// The ISSUE's schema gate: every event of a real traced simulation must
// carry ph/ts/pid/tid/name, and every line must be valid on its own (the
// line-per-event layout is the contract the CI artifact check scans).
TEST(TracerTest, SimulationTraceSatisfiesEventSchema) {
  core::SystemConfig config;
  config.num_nodes = 2;
  config.cache_bytes_per_node = 1u << 20;
  config.db_pages = 500;
  config.observation_interval_ms = 1000.0;
  config.seed = 3;
  core::ClusterSystem system(config);
  workload::ClassSpec goal;
  goal.id = 1;
  goal.goal_rt_ms = 8.0;
  goal.pages = {0, 250};
  goal.mean_interarrival_ms = 30.0;
  workload::ClassSpec nogoal;
  nogoal.id = 0;
  nogoal.pages = {250, 500};
  nogoal.mean_interarrival_ms = 30.0;
  system.AddClass(goal);
  system.AddClass(nogoal);

  Tracer tracer;
  tracer.Enable(true);
  system.SetTracer(&tracer);
  system.Start();
  system.RunIntervals(3);
  ASSERT_GT(tracer.size(), 100u);  // access + net spans from a real run

  bool saw_access = false;
  bool saw_net = false;
  for (const std::string& raw : EventLines(tracer)) {
    const std::string line = StripTrailingComma(raw);
    ASSERT_FALSE(line.empty());
    // Each line is one complete JSON object.
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
    for (const char* key : {"\"ph\":", "\"ts\":", "\"pid\":", "\"tid\":",
                            "\"name\":"}) {
      EXPECT_NE(line.find(key), std::string::npos) << line;
    }
    if (line.find("\"cat\":\"access\"") != std::string::npos) {
      saw_access = true;
    }
    if (line.find("\"cat\":\"net\"") != std::string::npos) saw_net = true;
  }
  EXPECT_TRUE(saw_access);
  EXPECT_TRUE(saw_net);
}

// Extracts the numeric value following `"key":` on a trace-event line;
// returns false when the key is absent.
bool EventNumber(const std::string& line, const char* key, double* out) {
  std::string needle = "\"";
  needle += key;
  needle += "\":";
  const size_t pos = line.find(needle);
  if (pos == std::string::npos) return false;
  *out = std::strtod(line.c_str() + pos + needle.size(), nullptr);
  return true;
}

// Composed faults: a gray episode that forces hedged remote reads, plus a
// partition cut landing mid-request. The span contract under that overlap:
// every complete span is balanced (non-negative duration) and spans sharing
// a track are properly nested — a request whose fetch was cut off mid-
// flight must still close its access/fetch_wait/backoff/disk_read spans in
// LIFO order, never leaving a dangling or interleaved span.
TEST(TracerTest, ComposedFaultSpansStayBalancedAndNested) {
  core::SystemConfig config;
  config.num_nodes = 3;
  config.cache_bytes_per_node = 1u << 20;
  config.db_pages = 600;
  config.observation_interval_ms = 1000.0;
  config.seed = 11;
  // Node 1 serves everything 30x slower for 2s..6s: remote fetches homed
  // there blow their deadline and hedge to the next replica.
  config.faults.degradation_script = {{2000.0, 1, /*begin=*/true, 30.0},
                                      {6000.0, 1, /*begin=*/false}};
  // Node 2 is cut off 4s..5s, inside the gray episode, so in-flight
  // requests lose their fetch partner mid-request.
  config.faults.partition_script = {{4000.0, {0, 0, 1}}, {5000.0, {}}};
  core::ClusterSystem system(config);
  workload::ClassSpec goal;
  goal.id = 1;
  goal.goal_rt_ms = 8.0;
  goal.pages = {0, 300};
  goal.mean_interarrival_ms = 30.0;
  workload::ClassSpec nogoal;
  nogoal.id = 0;
  nogoal.pages = {300, 600};
  nogoal.mean_interarrival_ms = 30.0;
  system.AddClass(goal);
  system.AddClass(nogoal);

  Tracer tracer;
  tracer.Enable(true);
  system.SetTracer(&tracer);
  system.Start();
  system.RunIntervals(8);
  ASSERT_GT(tracer.size(), 100u);

  struct Span {
    double begin = 0.0;
    double end = 0.0;
  };
  std::map<std::pair<uint64_t, uint64_t>, std::vector<Span>> tracks;
  bool hedged_in_episode = false;
  bool straddled_cut = false;
  constexpr double kCutUs = 4000.0 * 1000.0;  // cut instant in trace μs
  for (const std::string& raw : EventLines(tracer)) {
    const std::string line = StripTrailingComma(raw);
    double ts = 0.0;
    if (!EventNumber(line, "ts", &ts)) continue;  // metadata events
    if (line.find("\"name\":\"hedge\"") != std::string::npos &&
        ts >= 2000.0 * 1000.0 && ts <= 6000.0 * 1000.0) {
      hedged_in_episode = true;
    }
    double dur = 0.0;
    if (!EventNumber(line, "dur", &dur)) continue;  // instants have none
    // Balanced: a complete span never closes before it opened.
    EXPECT_GE(dur, 0.0) << line;
    double pid = 0.0, tid = 0.0;
    ASSERT_TRUE(EventNumber(line, "pid", &pid)) << line;
    ASSERT_TRUE(EventNumber(line, "tid", &tid)) << line;
    if (line.find("\"name\":\"access\"") != std::string::npos &&
        ts < kCutUs && ts + dur > kCutUs) {
      straddled_cut = true;  // a request in flight when the cut landed
    }
    tracks[{static_cast<uint64_t>(pid), static_cast<uint64_t>(tid)}]
        .push_back({ts, ts + dur});
  }
  EXPECT_TRUE(hedged_in_episode);
  EXPECT_TRUE(straddled_cut);

  // Nesting: spans sharing a track are pairwise disjoint or contained.
  // The ts/dur fields print at fixed precision, so allow their rounding.
  constexpr double kEps = 2e-3;
  for (auto& [key, spans] : tracks) {
    std::sort(spans.begin(), spans.end(), [](const Span& a, const Span& b) {
      return a.begin != b.begin ? a.begin < b.begin : a.end > b.end;
    });
    for (size_t i = 1; i < spans.size(); ++i) {
      const Span& prev = spans[i - 1];
      const Span& cur = spans[i];
      const bool disjoint = cur.begin >= prev.end - kEps;
      const bool nested = cur.end <= prev.end + kEps;
      EXPECT_TRUE(disjoint || nested)
          << "partially overlapping spans on track (" << key.first << ","
          << key.second << "): [" << prev.begin << "," << prev.end
          << ") vs [" << cur.begin << "," << cur.end << ")";
    }
  }
}

TEST(TracerTest, DisabledTracerOnSystemLeavesRunUntouched) {
  // Two identical runs, one with a disabled tracer attached: the access
  // counters must match exactly (the branch-on-bool path is a pure no-op).
  auto run = [](bool attach) {
    core::SystemConfig config;
    config.num_nodes = 2;
    config.cache_bytes_per_node = 1u << 20;
    config.db_pages = 500;
    config.observation_interval_ms = 1000.0;
    config.seed = 5;
    auto system = std::make_unique<core::ClusterSystem>(config);
    workload::ClassSpec goal;
    goal.id = 1;
    goal.goal_rt_ms = 8.0;
    goal.pages = {0, 250};
    goal.mean_interarrival_ms = 30.0;
    workload::ClassSpec nogoal;
    nogoal.id = 0;
    nogoal.pages = {250, 500};
    nogoal.mean_interarrival_ms = 30.0;
    system->AddClass(goal);
    system->AddClass(nogoal);
    Tracer tracer;
    if (attach) system->SetTracer(&tracer);
    system->Start();
    system->RunIntervals(2);
    std::array<uint64_t, 4> levels = system->counters(1).by_level;
    EXPECT_EQ(tracer.size(), 0u);
    return levels;
  };
  EXPECT_EQ(run(false), run(true));
}

}  // namespace
}  // namespace memgoal::obs
