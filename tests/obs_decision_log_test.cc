#include "obs/decision_log.h"

#include <cmath>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/optimizer.h"

namespace memgoal::obs {
namespace {

DecisionRecord FullRecord() {
  DecisionRecord record;
  record.interval = 12;
  record.sim_time_ms = 60001.0;
  record.klass = 1;
  record.home = 2;
  record.observed_rt_k = 17.25;
  record.has_observed_rt_0 = true;
  record.observed_rt_0 = 3.0 / 7.0;  // not exactly representable in decimal
  record.goal_rt = 10.0;
  record.tolerance_delta = 0.31;
  record.measure_outcome = "accepted";
  record.measured_allocation = {1048576.0, 0.0, 524288.0};
  record.condition_estimate = 8.25e9;
  record.store_ready = true;
  record.store_size = 4;
  record.has_planes = true;
  record.grad_k = {-1.5e-6, -2.0e-6, -0.1e-6};
  record.intercept_k = 21.0;
  record.grad_0 = {4.0e-7, 1.0e-7, 2.0e-7};
  record.intercept_0 = 2.5;
  record.upper_bounds = {2097152.0, 2097152.0, 2097152.0};
  record.lp_run = true;
  record.lp_mode = "goal_relaxed";
  record.relaxed_rung = 1;
  record.relaxed_goal_rt = 12.5;
  record.lp_optimal = 2;
  record.lp_infeasible = 2;
  record.lp_unbounded = 0;
  record.lp_relaxed_retries = 2;
  record.lp_allocation = {2097152.0, 1234944.0, 0.0};
  record.shipped_allocation = {2097152.0, 1232896.0, 0.0};
  record.granted_allocation = {2097152.0, 1232896.0, 0.0};
  return record;
}

TEST(DecisionRecordTest, JsonRoundTripIsExact) {
  const DecisionRecord record = FullRecord();
  DecisionRecord parsed;
  ASSERT_TRUE(DecisionRecord::FromJson(record.ToJson(), &parsed));

  EXPECT_EQ(parsed.interval, record.interval);
  EXPECT_EQ(parsed.sim_time_ms, record.sim_time_ms);
  EXPECT_EQ(parsed.klass, record.klass);
  EXPECT_EQ(parsed.home, record.home);
  // %.17g round-trips doubles bit-for-bit, so exact equality is the point.
  EXPECT_EQ(parsed.observed_rt_0, record.observed_rt_0);
  EXPECT_EQ(parsed.measure_outcome, record.measure_outcome);
  EXPECT_EQ(parsed.measured_allocation, record.measured_allocation);
  EXPECT_EQ(parsed.condition_estimate, record.condition_estimate);
  EXPECT_EQ(parsed.store_ready, record.store_ready);
  EXPECT_EQ(parsed.store_size, record.store_size);
  EXPECT_EQ(parsed.has_planes, record.has_planes);
  EXPECT_EQ(parsed.grad_k, record.grad_k);
  EXPECT_EQ(parsed.intercept_k, record.intercept_k);
  EXPECT_EQ(parsed.grad_0, record.grad_0);
  EXPECT_EQ(parsed.upper_bounds, record.upper_bounds);
  EXPECT_EQ(parsed.lp_run, record.lp_run);
  EXPECT_EQ(parsed.lp_mode, record.lp_mode);
  EXPECT_EQ(parsed.relaxed_rung, record.relaxed_rung);
  EXPECT_EQ(parsed.relaxed_goal_rt, record.relaxed_goal_rt);
  EXPECT_EQ(parsed.lp_optimal, record.lp_optimal);
  EXPECT_EQ(parsed.lp_relaxed_retries, record.lp_relaxed_retries);
  EXPECT_EQ(parsed.lp_allocation, record.lp_allocation);
  EXPECT_EQ(parsed.shipped_allocation, record.shipped_allocation);
  EXPECT_EQ(parsed.granted_allocation, record.granted_allocation);
}

TEST(DecisionRecordTest, FromJsonRejectsTruncatedInput) {
  const std::string json = FullRecord().ToJson();
  DecisionRecord out;
  EXPECT_FALSE(DecisionRecord::FromJson(json.substr(0, json.size() / 2), &out));
  EXPECT_FALSE(DecisionRecord::FromJson("", &out));
  EXPECT_FALSE(DecisionRecord::FromJson("{}", &out));
}

// The acceptance-criteria replay: serialize the LP inputs the controller
// logged, parse them back, re-run SolvePartitioning, and require the
// *identical* allocation. Any lossy serialization (e.g. %g instead of
// %.17g) breaks this for irrational-looking gradients.
TEST(DecisionRecordTest, ReplayReproducesLpAllocationBitForBit) {
  common::Rng rng(991);
  for (int trial = 0; trial < 50; ++trial) {
    const size_t n = 3 + static_cast<size_t>(trial % 4);
    core::OptimizerInput input;
    input.planes.grad_k.resize(n);
    input.planes.grad_0.resize(n);
    input.upper_bounds.assign(n, 2.0 * 1024 * 1024);
    for (size_t i = 0; i < n; ++i) {
      input.planes.grad_k[i] = -rng.Uniform(1e-7, 5e-6);
      input.planes.grad_0[i] = rng.Uniform(1e-8, 1e-6);
    }
    input.planes.intercept_k = rng.Uniform(5.0, 30.0);
    input.planes.intercept_0 = rng.Uniform(1.0, 5.0);
    // Spread across the mode ladder: some goals reachable, some not.
    input.goal_rt = rng.Uniform(0.5, 25.0);
    const core::OptimizerOutput output = SolvePartitioning(input);

    DecisionRecord record;
    record.grad_k = input.planes.grad_k;
    record.intercept_k = input.planes.intercept_k;
    record.grad_0 = input.planes.grad_0;
    record.intercept_0 = input.planes.intercept_0;
    record.goal_rt = input.goal_rt;
    record.upper_bounds = input.upper_bounds;
    record.has_planes = true;
    record.lp_run = true;
    record.lp_mode = core::OptimizerModeName(output.mode);
    record.relaxed_rung = output.relaxed_rung;
    record.lp_allocation = output.allocation;

    DecisionRecord parsed;
    ASSERT_TRUE(DecisionRecord::FromJson(record.ToJson(), &parsed));

    core::OptimizerInput replay_input;
    replay_input.planes.grad_k = parsed.grad_k;
    replay_input.planes.intercept_k = parsed.intercept_k;
    replay_input.planes.grad_0 = parsed.grad_0;
    replay_input.planes.intercept_0 = parsed.intercept_0;
    replay_input.goal_rt = parsed.goal_rt;
    replay_input.upper_bounds = parsed.upper_bounds;
    const core::OptimizerOutput replayed = SolvePartitioning(replay_input);

    ASSERT_EQ(replayed.allocation.size(), parsed.lp_allocation.size());
    for (size_t i = 0; i < replayed.allocation.size(); ++i) {
      // Bit-for-bit: the replayed solve saw bit-identical inputs.
      EXPECT_EQ(replayed.allocation[i], parsed.lp_allocation[i])
          << "trial " << trial << " node " << i;
    }
    EXPECT_EQ(core::OptimizerModeName(replayed.mode), parsed.lp_mode)
        << "trial " << trial;
    EXPECT_EQ(replayed.relaxed_rung, parsed.relaxed_rung) << "trial " << trial;
  }
}

TEST(DecisionLogTest, WriteJsonlEmitsOneParseableLinePerRecord) {
  DecisionLog log;
  log.Append(FullRecord());
  DecisionRecord second = FullRecord();
  second.interval = 13;
  log.Append(std::move(second));
  ASSERT_EQ(log.size(), 2u);

  std::FILE* file = std::tmpfile();
  ASSERT_NE(file, nullptr);
  log.WriteJsonl(file);
  std::fseek(file, 0, SEEK_SET);
  char line[8192];
  int lines = 0;
  while (std::fgets(line, sizeof(line), file) != nullptr) {
    std::string text(line);
    while (!text.empty() && (text.back() == '\n' || text.back() == '\r')) {
      text.pop_back();
    }
    DecisionRecord parsed;
    EXPECT_TRUE(DecisionRecord::FromJson(text, &parsed)) << text;
    EXPECT_EQ(parsed.interval, 12 + lines);
    ++lines;
  }
  EXPECT_EQ(lines, 2);
  std::fclose(file);
}

}  // namespace
}  // namespace memgoal::obs
