// Pins the profiler contracts stated in src/obs/profiler.h: an uninstalled
// or disabled profiler records nothing, scope accounting is inclusive for
// the flat view and exclusive for folded paths, Merge is deterministic in
// trial-index order (so TrialRunner profiles are thread-count independent),
// and an enabled profiler never changes simulation output.

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>

#include <gtest/gtest.h>

#include "bench/experiment.h"
#include "bench/trial_runner.h"
#include "common/rng.h"
#include "core/metrics.h"
#include "core/system.h"
#include "obs/profiler.h"

namespace memgoal::obs {
namespace {

std::string FoldedOf(const Profiler& profiler) {
  char* buf = nullptr;
  size_t size = 0;
  std::FILE* stream = open_memstream(&buf, &size);
  profiler.WriteFolded(stream);
  std::fclose(stream);
  std::string folded(buf, size);
  std::free(buf);
  return folded;
}

std::string JsonOf(const Profiler& profiler) {
  std::string json;
  profiler.AppendJson(&json);
  return json;
}

TEST(ProfilerTest, NoInstalledProfilerIsANoOp) {
  ASSERT_EQ(Profiler::Current(), nullptr);
  { ProfileScope scope(Phase::kSimStep); }  // must not crash
}

TEST(ProfilerTest, DisabledProfilerRecordsNothing) {
  Profiler profiler;  // default: disabled
  Profiler::ScopedInstall install(&profiler);
  {
    ProfileScope outer(Phase::kSimStep);
    ProfileScope inner(Phase::kSimplexSolve);
  }
  EXPECT_EQ(profiler.total_count(), 0u);
  EXPECT_EQ(profiler.profiled_ns(), 0u);
}

TEST(ProfilerTest, ScopedInstallRestoresPreviousProfiler) {
  Profiler first;
  first.Enable(true);
  {
    Profiler::ScopedInstall outer(&first);
    EXPECT_EQ(Profiler::Current(), &first);
    Profiler second;
    {
      Profiler::ScopedInstall inner(&second);
      EXPECT_EQ(Profiler::Current(), &second);
      // A null install shadows any ambient profiler.
      Profiler::ScopedInstall shadow(nullptr);
      EXPECT_EQ(Profiler::Current(), nullptr);
    }
    EXPECT_EQ(Profiler::Current(), &first);
  }
  EXPECT_EQ(Profiler::Current(), nullptr);
}

TEST(ProfilerTest, NestedScopesAccountInclusiveFlatAndExclusivePaths) {
  Profiler profiler;
  profiler.Enable(true);
  {
    Profiler::ScopedInstall install(&profiler);
    ProfileScope outer(Phase::kSimStep);
    { ProfileScope inner(Phase::kSimplexSolve); }
    { ProfileScope inner(Phase::kSimplexSolve); }
  }
  EXPECT_EQ(profiler.stats(Phase::kSimStep).count, 1u);
  EXPECT_EQ(profiler.stats(Phase::kSimplexSolve).count, 2u);
  // Flat totals are inclusive of children, so the parent's total bounds the
  // children's.
  EXPECT_GE(profiler.stats(Phase::kSimStep).total_ns,
            profiler.stats(Phase::kSimplexSolve).total_ns);
  EXPECT_GE(profiler.stats(Phase::kSimplexSolve).max_ns, 1u);
  // The folded view knows the nesting.
  const std::string folded = FoldedOf(profiler);
  EXPECT_NE(folded.find("memgoal;sim.step "), std::string::npos);
  EXPECT_NE(folded.find("memgoal;sim.step;la.simplex_solve "),
            std::string::npos);
  // Self time across all paths equals the root's inclusive time.
  EXPECT_EQ(profiler.profiled_ns(), profiler.stats(Phase::kSimStep).total_ns);
}

TEST(ProfilerTest, AddSampleIsExact) {
  Profiler profiler;
  profiler.Enable(true);
  profiler.AddSample(Phase::kNetSend, 100);
  profiler.AddSample(Phase::kNetSend, 250);
  EXPECT_EQ(profiler.stats(Phase::kNetSend).count, 2u);
  EXPECT_EQ(profiler.stats(Phase::kNetSend).total_ns, 350u);
  EXPECT_EQ(profiler.stats(Phase::kNetSend).max_ns, 250u);
  EXPECT_EQ(profiler.profiled_ns(), 350u);
}

TEST(ProfilerTest, MergeSumsAllAccumulators) {
  Profiler a;
  a.Enable(true);
  a.AddSample(Phase::kHeatUpdate, 10);
  Profiler b;
  b.Enable(true);
  b.AddSample(Phase::kHeatUpdate, 32);
  b.AddSample(Phase::kVictimSelect, 5);
  a.Merge(b);
  EXPECT_EQ(a.stats(Phase::kHeatUpdate).count, 2u);
  EXPECT_EQ(a.stats(Phase::kHeatUpdate).total_ns, 42u);
  EXPECT_EQ(a.stats(Phase::kHeatUpdate).max_ns, 32u);
  EXPECT_EQ(a.stats(Phase::kVictimSelect).count, 1u);
  EXPECT_EQ(a.total_count(), 3u);
}

// Integer samples make the merged profile a pure function of the trial set,
// so the runner's thread count must not leak into any exported byte.
std::string MergedProfileJson(int threads, int trials) {
  Profiler target;
  target.Enable(true);
  bench::TrialRunner runner(threads);
  runner.SetProfiler(&target);
  runner.Run(trials, [](int trial) {
    Profiler* profiler = Profiler::Current();
    // The runner installs a per-trial profiler on the worker thread.
    EXPECT_NE(profiler, nullptr);
    const auto phase = static_cast<Phase>(trial % kNumPhases);
    profiler->AddSample(phase, static_cast<uint64_t>(trial + 1) * 1000u);
    return trial;
  });
  return JsonOf(target) + FoldedOf(target);
}

TEST(ProfilerTest, TrialRunnerMergeIsThreadCountIndependent) {
  const std::string serial = MergedProfileJson(/*threads=*/1, /*trials=*/25);
  const std::string pooled = MergedProfileJson(/*threads=*/4, /*trials=*/25);
  EXPECT_EQ(serial, pooled);
  EXPECT_NE(serial.find("cache.heat_update"), std::string::npos);
}

// Renders a small cluster run's full interval log; comparing the serialized
// bytes catches any perturbation in any field of any record.
std::string RunSmallClusterCsv(bool with_profiler) {
  bench::Setup setup;
  setup.seed = 7;
  setup.pages_per_class = 100;
  setup.cache_bytes_per_node = 64 * 4096;
  setup.interarrival_ms = 50.0;
  setup.observation_interval_ms = 2000.0;
  Profiler profiler;
  profiler.Enable(with_profiler);
  Profiler::ScopedInstall install(with_profiler ? &profiler : nullptr);
  std::unique_ptr<core::ClusterSystem> system = bench::BuildSystem(setup);
  system->SetGoal(1, 30.0);
  system->Start();
  system->RunIntervals(8);
  char* buf = nullptr;
  size_t size = 0;
  std::FILE* stream = open_memstream(&buf, &size);
  system->metrics().WriteCsv(stream);
  std::fclose(stream);
  std::string csv(buf, size);
  std::free(buf);
  if (with_profiler) {
    // The run must actually have exercised the instrumented hot paths.
    EXPECT_GT(profiler.stats(Phase::kSimStep).count, 0u);
    EXPECT_GT(profiler.stats(Phase::kControllerCheck).count, 0u);
  }
  return csv;
}

TEST(ProfilerTest, EnabledProfilerDoesNotChangeSimulationOutput) {
  const std::string bare = RunSmallClusterCsv(/*with_profiler=*/false);
  const std::string profiled = RunSmallClusterCsv(/*with_profiler=*/true);
  EXPECT_EQ(bare, profiled);
  EXPECT_FALSE(bare.empty());
}

}  // namespace
}  // namespace memgoal::obs
