#include "sim/sync.h"

#include <vector>

#include <gtest/gtest.h>

#include "sim/simulator.h"
#include "sim/task.h"

namespace memgoal::sim {
namespace {

Task<void> WaitForEvent(Simulator* simulator, Event* event,
                        std::vector<double>* wake_times) {
  co_await event->Wait();
  wake_times->push_back(simulator->Now());
}

Task<void> SetAfter(Simulator* simulator, Event* event, SimTime delay) {
  co_await simulator->Delay(delay);
  event->Set();
}

TEST(EventTest, BroadcastWakesAllWaiters) {
  Simulator simulator;
  Event event(&simulator);
  std::vector<double> wake_times;
  for (int i = 0; i < 3; ++i) {
    simulator.Spawn(WaitForEvent(&simulator, &event, &wake_times));
  }
  EXPECT_EQ(event.waiter_count(), 3u);
  simulator.Spawn(SetAfter(&simulator, &event, 25.0));
  simulator.Run();
  ASSERT_EQ(wake_times.size(), 3u);
  for (double t : wake_times) EXPECT_DOUBLE_EQ(t, 25.0);
}

TEST(EventTest, WaitOnSetEventIsImmediate) {
  Simulator simulator;
  Event event(&simulator);
  event.Set();
  std::vector<double> wake_times;
  simulator.Spawn(WaitForEvent(&simulator, &event, &wake_times));
  // Completed synchronously during Spawn.
  ASSERT_EQ(wake_times.size(), 1u);
  EXPECT_DOUBLE_EQ(wake_times[0], 0.0);
}

TEST(EventTest, SetIsIdempotent) {
  Simulator simulator;
  Event event(&simulator);
  std::vector<double> wake_times;
  simulator.Spawn(WaitForEvent(&simulator, &event, &wake_times));
  event.Set();
  event.Set();
  simulator.Run();
  EXPECT_EQ(wake_times.size(), 1u);
  EXPECT_TRUE(event.is_set());
}

Task<void> Worker(Simulator* simulator, WaitGroup* group, SimTime work_ms) {
  co_await simulator->Delay(work_ms);
  group->Done();
}

Task<void> Join(Simulator* simulator, WaitGroup* group, double* joined_at) {
  co_await group->Wait();
  *joined_at = simulator->Now();
}

TEST(WaitGroupTest, JoinWaitsForSlowestWorker) {
  Simulator simulator;
  WaitGroup group(&simulator);
  group.Add(3);
  simulator.Spawn(Worker(&simulator, &group, 10.0));
  simulator.Spawn(Worker(&simulator, &group, 30.0));
  simulator.Spawn(Worker(&simulator, &group, 20.0));
  double joined_at = -1.0;
  simulator.Spawn(Join(&simulator, &group, &joined_at));
  simulator.Run();
  EXPECT_DOUBLE_EQ(joined_at, 30.0);
  EXPECT_EQ(group.count(), 0);
}

TEST(WaitGroupTest, WaitOnZeroIsImmediate) {
  Simulator simulator;
  WaitGroup group(&simulator);
  double joined_at = -1.0;
  simulator.Spawn(Join(&simulator, &group, &joined_at));
  EXPECT_DOUBLE_EQ(joined_at, 0.0);
}

TEST(WaitGroupTest, ReusableAcrossRounds) {
  Simulator simulator;
  WaitGroup group(&simulator);
  group.Add(1);
  simulator.Spawn(Worker(&simulator, &group, 5.0));
  double first = -1.0;
  simulator.Spawn(Join(&simulator, &group, &first));
  simulator.Run();
  EXPECT_DOUBLE_EQ(first, 5.0);

  group.Add(2);
  simulator.Spawn(Worker(&simulator, &group, 7.0));
  simulator.Spawn(Worker(&simulator, &group, 3.0));
  double second = -1.0;
  simulator.Spawn(Join(&simulator, &group, &second));
  simulator.Run();
  EXPECT_DOUBLE_EQ(second, 12.0);  // 5 + 7
}

}  // namespace
}  // namespace memgoal::sim
