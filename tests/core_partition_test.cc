// Partition tolerance tests: epoch-fenced allocation grants, quorum-lease
// behavior of the goal controller across group cuts, heal-time directory
// hint reconciliation, and end-to-end re-convergence after the cluster is
// whole again.

#include <gtest/gtest.h>

#include <vector>

#include "core/goal_controller.h"
#include "core/system.h"
#include "net/network.h"
#include "sim/invariant_auditor.h"
#include "workload/spec.h"

namespace memgoal::core {
namespace {

SystemConfig TestConfig(uint64_t seed = 1, uint32_t nodes = 3) {
  SystemConfig config;
  config.num_nodes = nodes;
  config.cache_bytes_per_node = 64 * 4096;
  config.db_pages = 200;
  config.observation_interval_ms = 5000.0;
  config.seed = seed;
  return config;
}

workload::ClassSpec GoalClass(double goal_ms) {
  workload::ClassSpec spec;
  spec.id = 1;
  spec.goal_rt_ms = goal_ms;
  spec.accesses_per_op = 4;
  spec.mean_interarrival_ms = 50.0;
  spec.pages = {0, 100};
  return spec;
}

workload::ClassSpec NoGoalClass() {
  workload::ClassSpec spec;
  spec.id = kNoGoalClass;
  spec.accesses_per_op = 4;
  spec.mean_interarrival_ms = 50.0;
  spec.pages = {100, 200};
  return spec;
}

int SatisfiedInTail(const ClusterSystem& system, int tail) {
  const auto& records = system.metrics().records();
  int satisfied = 0;
  for (size_t i = records.size() - static_cast<size_t>(tail);
       i < records.size(); ++i) {
    satisfied += records[i].ForClass(1).satisfied ? 1 : 0;
  }
  return satisfied;
}

const GoalOrientedController& ControllerOf(ClusterSystem& system) {
  return dynamic_cast<const GoalOrientedController&>(system.controller());
}

TEST(EpochFenceTest, StaleEpochGrantsAreRejected) {
  ClusterSystem system(TestConfig(61));
  system.AddClass(GoalClass(3.5));
  system.AddClass(NoGoalClass());
  system.Start();
  system.RunIntervals(1);

  // A grant at the fence's floor applies and raises the fence.
  const auto first = system.ApplyAllocationFenced(1, 2, 8 * 4096, 1);
  EXPECT_FALSE(first.rejected_stale_epoch);
  EXPECT_EQ(system.DedicatedBytes(1, 2), first.granted);

  // A new lease holder announces epoch 5; a deposed coordinator's in-flight
  // epoch-3 grant must bounce without touching the allocation.
  system.AnnounceEpoch(1, 2, 5);
  const uint64_t before = system.DedicatedBytes(1, 2);
  const auto stale = system.ApplyAllocationFenced(1, 2, 32 * 4096, 3);
  EXPECT_TRUE(stale.rejected_stale_epoch);
  EXPECT_EQ(stale.granted, before);
  EXPECT_EQ(system.DedicatedBytes(1, 2), before);
  EXPECT_EQ(system.grants_rejected_stale_epoch(), 1u);
  EXPECT_EQ(system.stale_grants_applied(), 0u);

  // Grants at or above the announced epoch apply; applying raises the
  // fence, so the epoch the fence knew before is now stale.
  const auto current = system.ApplyAllocationFenced(1, 2, 16 * 4096, 5);
  EXPECT_FALSE(current.rejected_stale_epoch);
  const auto newer = system.ApplyAllocationFenced(1, 2, 16 * 4096, 7);
  EXPECT_FALSE(newer.rejected_stale_epoch);
  EXPECT_TRUE(system.ApplyAllocationFenced(1, 2, 8 * 4096, 6)
                  .rejected_stale_epoch);
  EXPECT_EQ(system.grants_rejected_stale_epoch(), 2u);
}

TEST(EpochFenceTest, AnnounceEpochNeverLowersTheFence) {
  ClusterSystem system(TestConfig(62));
  system.AddClass(GoalClass(3.5));
  system.AddClass(NoGoalClass());
  system.Start();
  system.RunIntervals(1);

  system.AnnounceEpoch(1, 1, 9);
  system.AnnounceEpoch(1, 1, 4);  // late duplicate of an older announcement
  EXPECT_TRUE(
      system.ApplyAllocationFenced(1, 1, 8 * 4096, 8).rejected_stale_epoch);
  EXPECT_FALSE(
      system.ApplyAllocationFenced(1, 1, 8 * 4096, 9).rejected_stale_epoch);
}

TEST(EpochFenceTest, NoEpochFenceBugAppliesStaleGrantsAndIsCounted) {
  // The deliberately planted kNoEpochFence bug disables the rejection: the
  // stale grant lands (and is counted), which is what the auditor's
  // epoch_fence check exists to catch.
  SystemConfig config = TestConfig(63);
  config.injected_bug = InjectedBug::kNoEpochFence;
  ClusterSystem system(config);
  system.AddClass(GoalClass(3.5));
  system.AddClass(NoGoalClass());
  system.Start();
  system.RunIntervals(1);

  system.AnnounceEpoch(1, 2, 5);
  const auto stale = system.ApplyAllocationFenced(1, 2, 32 * 4096, 3);
  EXPECT_FALSE(stale.rejected_stale_epoch);
  EXPECT_EQ(system.stale_grants_applied(), 1u);
  EXPECT_EQ(system.grants_rejected_stale_epoch(), 0u);

  // The system-wide audits flag it.
  sim::InvariantAuditor auditor;
  system.EnableAuditor(&auditor);
  system.RunIntervals(1);
  EXPECT_FALSE(auditor.ok());
  ASSERT_FALSE(auditor.violations().empty());
  EXPECT_EQ(auditor.violations().front().check, "epoch_fence");
}

TEST(PartitionTest, MajoritySideKeepsLeaseAndMinorityIsCutOff) {
  // Node 2 is isolated between 30 s and 60 s; the coordinator home (node 0)
  // stays on the majority side, so the lease never moves.
  SystemConfig config = TestConfig(71);
  config.faults.partition_script = {{30000.0, {0, 0, 1}}, {60000.0, {}}};
  ClusterSystem system(config);
  system.AddClass(GoalClass(3.5));
  system.AddClass(NoGoalClass());
  system.Start();

  system.RunIntervals(9);  // 45 s: mid-partition
  EXPECT_TRUE(system.Partitioned());
  EXPECT_FALSE(system.Reachable(0, 2));
  EXPECT_FALSE(system.Reachable(2, 0));
  EXPECT_TRUE(system.Reachable(0, 1));
  EXPECT_EQ(system.partition_begins(), 1u);
  EXPECT_EQ(system.partition_heals(), 0u);
  // Cross-cut traffic is being dropped at the boundary.
  EXPECT_GT(system.network().total_messages_partition_dropped(), 0u);

  const auto& controller = ControllerOf(system);
  EXPECT_GE(controller.stats().partition_changes_observed, 1u);
  EXPECT_EQ(controller.stats().leases_lost, 0u);
  EXPECT_EQ(controller.stats().coordinator_failovers, 0u);
  EXPECT_EQ(controller.coordinator_node(1), 0u);

  system.RunIntervals(27);  // through the heal at 60 s, out to 180 s
  EXPECT_FALSE(system.Partitioned());
  EXPECT_EQ(system.partition_heals(), 1u);
  EXPECT_EQ(system.fault_injector().stats().partitions, 1u);
  EXPECT_EQ(system.fault_injector().stats().partition_heals, 1u);

  // Heal-time reconciliation re-sent the hints the cut swallowed, so no
  // node still owes the directory anything.
  EXPECT_GT(system.reconcile_hints_sent(), 0u);
  for (NodeId i = 0; i < 3; ++i) {
    EXPECT_EQ(system.node(i).unsynced_hint_count(), 0u) << "node " << i;
  }

  // Both classes kept completing operations on every interval (the
  // minority node served from its own cache and disk).
  for (const IntervalRecord& record : system.metrics().records()) {
    EXPECT_EQ(record.nodes_up, 3u);
    EXPECT_GT(record.ForClass(1).ops_completed, 0u);
    EXPECT_GT(record.ForClass(kNoGoalClass).ops_completed, 0u);
  }

  // Settled tail: back inside the goal band.
  EXPECT_GE(SatisfiedInTail(system, 10), 4);
}

TEST(PartitionTest, HomeOnMinoritySideFailsOverUnderNewEpoch) {
  // The coordinator's home (node 0) is cut off from {1, 2}: it loses the
  // quorum lease and the class re-homes on the majority side under a fresh
  // epoch, exactly like a crash failover but with node 0 still serving its
  // local workload.
  SystemConfig config = TestConfig(72);
  config.faults.partition_script = {{30000.0, {0, 1, 1}}, {60000.0, {}}};
  ClusterSystem system(config);
  system.AddClass(GoalClass(3.5));
  system.AddClass(NoGoalClass());
  system.Start();
  system.RunIntervals(5);  // 25 s: still whole
  ASSERT_EQ(ControllerOf(system).coordinator_node(1), 0u);

  system.RunIntervals(4);  // 45 s: mid-partition
  const auto& controller = ControllerOf(system);
  EXPECT_GE(controller.stats().leases_lost, 1u);
  EXPECT_EQ(controller.stats().coordinator_failovers, 1u);
  EXPECT_GE(controller.stats().lease_acquisitions, 1u);
  EXPECT_EQ(controller.coordinator_node(1), 1u);

  system.RunIntervals(27);  // heal and settle
  EXPECT_FALSE(system.Partitioned());
  // As after a crash failover, the coordinator stays at its new home.
  EXPECT_EQ(controller.coordinator_node(1), 1u);
  // Node 0 never crashed: the whole run is a 3-up cluster.
  for (const IntervalRecord& record : system.metrics().records()) {
    EXPECT_EQ(record.nodes_up, 3u);
  }
  EXPECT_GE(SatisfiedInTail(system, 10), 4);
}

TEST(PartitionTest, EvenSplitFreezesGrantsUntilHeal) {
  // A 2-2 split has no strict majority: both sides go leaseless and the
  // controller degrades to the static fallback — checks are skipped and no
  // allocation commands ship until the heal lets a lease be reacquired.
  SystemConfig config = TestConfig(73, /*nodes=*/4);
  config.faults.partition_script = {{30000.0, {0, 0, 1, 1}}, {60000.0, {}}};
  ClusterSystem system(config);
  system.AddClass(GoalClass(3.5));
  system.AddClass(NoGoalClass());
  system.Start();

  system.RunIntervals(6);
  const auto& controller = ControllerOf(system);
  const uint64_t commands_before_cut = controller.stats().allocation_commands;

  system.RunIntervals(5);  // 55 s: deep inside the split
  EXPECT_GE(controller.stats().leases_lost, 1u);
  EXPECT_GT(controller.stats().checks_skipped_no_lease, 0u);
  // Frozen: the leaseless coordinator shipped nothing during the split.
  EXPECT_EQ(controller.stats().allocation_commands, commands_before_cut);

  system.RunIntervals(25);  // heal and settle
  EXPECT_GE(controller.stats().lease_acquisitions, 1u);
  EXPECT_GT(controller.stats().allocation_commands, commands_before_cut);
  EXPECT_GE(SatisfiedInTail(system, 10), 4);
}

TEST(PartitionTest, AuditorStaysCleanAcrossPartitionAndHeal) {
  SystemConfig config = TestConfig(74);
  config.faults.partition_script = {{20000.0, {0, 0, 1}}, {45000.0, {}}};
  ClusterSystem system(config);
  system.AddClass(GoalClass(3.5));
  system.AddClass(NoGoalClass());
  sim::InvariantAuditor auditor;
  system.EnableAuditor(&auditor);
  system.Start();
  system.RunIntervals(20);

  EXPECT_GT(auditor.checks_run(), 0u);
  EXPECT_TRUE(auditor.ok()) << auditor.violations().front().check << ": "
                            << auditor.violations().front().detail;
}

TEST(PartitionTest, SkipHealReconcileBugLeavesStaleHints) {
  // With the planted kSkipHealReconcile bug, hints swallowed by the cut are
  // never re-sent: nodes still owe the directory after the heal, which the
  // stale_hints_after_heal audit flags.
  SystemConfig config = TestConfig(75);
  config.injected_bug = InjectedBug::kSkipHealReconcile;
  config.faults.partition_script = {{20000.0, {0, 0, 1}}, {45000.0, {}}};
  ClusterSystem system(config);
  system.AddClass(GoalClass(3.5));
  system.AddClass(NoGoalClass());
  sim::InvariantAuditor auditor;
  system.EnableAuditor(&auditor);
  system.Start();
  system.RunIntervals(12);

  EXPECT_EQ(system.reconcile_hints_sent(), 0u);
  EXPECT_FALSE(auditor.ok());
  ASSERT_FALSE(auditor.violations().empty());
  EXPECT_EQ(auditor.violations().front().check, "stale_hints_after_heal");
}

TEST(PartitionTest, PartitionComposesWithCrash) {
  // A node on the majority side crashes mid-partition. Quorum is evaluated
  // over *live* nodes: with node 1 down the live set is {0, 2} and home 0
  // reaches only itself — 1 of 2 is not a strict majority, so the lease
  // drops until node 1 returns. Both faults lift and the cluster converges.
  SystemConfig config = TestConfig(76);
  config.faults.partition_script = {{25000.0, {0, 0, 1}}, {70000.0, {}}};
  config.faults.script = {{40000.0, 1, /*crash=*/true},
                          {55000.0, 1, /*crash=*/false}};
  ClusterSystem system(config);
  system.AddClass(GoalClass(3.5));
  system.AddClass(NoGoalClass());
  sim::InvariantAuditor auditor;
  system.EnableAuditor(&auditor);
  system.Start();
  system.RunIntervals(30);

  const auto& controller = ControllerOf(system);
  EXPECT_EQ(controller.stats().crashes_observed, 1u);
  EXPECT_EQ(controller.stats().recoveries_observed, 1u);
  EXPECT_GE(controller.stats().partition_changes_observed, 2u);
  EXPECT_TRUE(auditor.ok()) << auditor.violations().front().check << ": "
                            << auditor.violations().front().detail;
  EXPECT_GE(SatisfiedInTail(system, 10), 4);
}

}  // namespace
}  // namespace memgoal::core
