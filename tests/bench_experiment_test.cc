// Tests for the experiment-protocol support library used by the benchmark
// harness (goal-band calibration and the §7.1 goal-change driver).

#include "bench/experiment.h"

#include <cmath>
#include <memory>

#include <gtest/gtest.h>

namespace memgoal::bench {
namespace {

// gtest's Test::Setup() member shadows the bench::Setup type inside TEST
// bodies; the alias keeps name lookup unambiguous.
using ExperimentSetup = ::memgoal::bench::Setup;

// Small, fast setup for protocol tests.
ExperimentSetup SmallSetup(uint64_t seed) {
  ExperimentSetup setup;
  setup.seed = seed;
  setup.pages_per_class = 100;
  setup.cache_bytes_per_node = 64 * 4096;
  setup.interarrival_ms = 50.0;
  setup.observation_interval_ms = 2000.0;
  return setup;
}

TEST(ExperimentTest, BuildSystemLaysOutDisjointRanges) {
  ExperimentSetup setup = SmallSetup(1);
  setup.goal_classes = 2;
  std::unique_ptr<core::ClusterSystem> system = BuildSystem(setup);
  EXPECT_EQ(system->database().num_pages(), 300u);
  EXPECT_EQ(system->spec(1).pages.begin, 0u);
  EXPECT_EQ(system->spec(1).pages.end, 100u);
  EXPECT_EQ(system->spec(2).pages.begin, 100u);
  EXPECT_EQ(system->spec(kNoGoalClass).pages.begin, 200u);
  EXPECT_EQ(system->spec(kNoGoalClass).pages.end, 300u);
}

TEST(ExperimentTest, SharingConfiguredOnClassTwo) {
  ExperimentSetup setup = SmallSetup(1);
  setup.goal_classes = 2;
  setup.share_prob = 0.5;
  std::unique_ptr<core::ClusterSystem> system = BuildSystem(setup);
  const workload::ClassSpec& k2 = system->spec(2);
  ASSERT_TRUE(k2.shared_pages.has_value());
  EXPECT_EQ(k2.shared_pages->begin, 0u);
  EXPECT_EQ(k2.shared_pages->end, 100u);
  EXPECT_DOUBLE_EQ(k2.share_prob, 0.5);
  EXPECT_FALSE(system->spec(1).shared_pages.has_value());
}

TEST(ExperimentTest, CalibrationMonotoneOverOperatingBand) {
  // More dedicated buffer means faster goal class in the operating band.
  const ExperimentSetup setup = SmallSetup(7);
  const double rt_half = CalibrateRt(setup, 1, 0.5, /*intervals=*/12);
  const double rt_two_thirds =
      CalibrateRt(setup, 1, 2.0 / 3.0, /*intervals=*/12);
  EXPECT_LT(rt_two_thirds, rt_half);
}

TEST(ExperimentTest, GoalBandIsBindingAndOrdered) {
  const GoalBand band = CalibrateGoalBand(SmallSetup(9));
  EXPECT_LT(band.lo, band.hi);
  EXPECT_LE(band.hi, 0.75 * band.rt_zero + 1e-9);
  EXPECT_GT(band.rt_zero, 0.0);
}

TEST(GoalChangeDriverTest, CountsIterationsAndChangesGoals) {
  ExperimentSetup setup = SmallSetup(11);
  std::unique_ptr<core::ClusterSystem> system = BuildSystem(setup);
  const GoalBand band = CalibrateGoalBand(SmallSetup(12));
  GoalChangeDriver driver(system.get(), 1, band.lo, band.hi, 99);
  const double first_goal = system->spec(1).goal_rt_ms.value();
  EXPECT_GE(first_goal, band.lo);
  EXPECT_LE(first_goal, band.hi);

  system->SetIntervalCallback([&](const core::IntervalRecord& record) {
    driver.OnInterval(record);
  });
  system->Start();
  system->RunIntervals(60);

  // Multiple goals must have been completed; the first (cold) one is not a
  // sample.
  EXPECT_GT(driver.goals_completed(), 1);
  EXPECT_EQ(driver.iterations().count(), driver.goals_completed() - 1);
  EXPECT_GE(driver.iterations().min(), 1.0);
}

// Synthetic interval in which class 1 met its goal; enough for
// GoalChangeDriver::OnInterval, which reads only its class's row.
core::IntervalRecord SatisfiedRecord(int index) {
  core::IntervalRecord record;
  record.index = index;
  core::ClassIntervalMetrics m;
  m.klass = 1;
  m.satisfied = true;
  record.classes.push_back(m);
  return record;
}

TEST(GoalChangeDriverTest, DegenerateBandTerminates) {
  // A band one ulp wide: every uniform draw rounds onto an endpoint, so the
  // "differs by a quarter band" re-draw condition can be unsatisfiable.
  // Before the kMaxGoalRedraws bound this spun forever inside PickNewGoal;
  // now it must fall back to the far endpoint and keep cycling goals.
  ExperimentSetup setup = SmallSetup(15);
  std::unique_ptr<core::ClusterSystem> system = BuildSystem(setup);
  const double lo = 1.0;
  const double hi = std::nextafter(1.0, 2.0);
  GoalChangeDriver driver(system.get(), 1, lo, hi, 3);

  // One satisfied interval completes the first (cold) goal; each further
  // streak of four triggers PickNewGoal. 32 intervals exercise the re-draw
  // path repeatedly.
  for (int i = 0; i < 32; ++i) driver.OnInterval(SatisfiedRecord(i));

  const double goal = system->spec(1).goal_rt_ms.value();
  EXPECT_GE(goal, lo);
  EXPECT_LE(goal, hi);
  EXPECT_GT(driver.goals_completed(), 1);
}

TEST(GoalChangeDriverTest, NewGoalDiffersSignificantly) {
  // Drive the protocol for a while and check every goal change moved by at
  // least a quarter of the band.
  ExperimentSetup setup = SmallSetup(13);
  std::unique_ptr<core::ClusterSystem> system = BuildSystem(setup);
  const GoalBand band = CalibrateGoalBand(SmallSetup(12));
  GoalChangeDriver driver(system.get(), 1, band.lo, band.hi, 5);
  double last_goal = system->spec(1).goal_rt_ms.value();
  bool all_significant = true;
  int changes = 0;
  system->SetIntervalCallback([&](const core::IntervalRecord& record) {
    driver.OnInterval(record);
    const double goal = system->spec(1).goal_rt_ms.value();
    if (goal != last_goal) {
      ++changes;
      if (std::fabs(goal - last_goal) < 0.25 * (band.hi - band.lo)) {
        all_significant = false;
      }
      last_goal = goal;
    }
  });
  system->Start();
  system->RunIntervals(60);
  EXPECT_GT(changes, 0);
  EXPECT_TRUE(all_significant);
}

}  // namespace
}  // namespace memgoal::bench
