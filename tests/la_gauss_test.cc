#include "la/gauss.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "la/matrix.h"

namespace memgoal::la {
namespace {

Matrix RandomMatrix(common::Rng* rng, size_t n) {
  Matrix m(n, n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n; ++j) m(i, j) = rng->Uniform(-10.0, 10.0);
  }
  return m;
}

TEST(GaussTest, SolvesKnownSystem) {
  Matrix a(2, 2);
  a.SetRow(0, Vector{2.0, 1.0});
  a.SetRow(1, Vector{1.0, 3.0});
  auto x = SolveLinearSystem(a, Vector{5.0, 10.0});
  ASSERT_TRUE(x.has_value());
  EXPECT_NEAR((*x)[0], 1.0, 1e-12);
  EXPECT_NEAR((*x)[1], 3.0, 1e-12);
}

TEST(GaussTest, SingularReturnsNullopt) {
  Matrix a(2, 2);
  a.SetRow(0, Vector{1.0, 2.0});
  a.SetRow(1, Vector{2.0, 4.0});
  EXPECT_FALSE(SolveLinearSystem(a, Vector{1.0, 2.0}).has_value());
  EXPECT_FALSE(Invert(a).has_value());
}

TEST(GaussTest, PivotingHandlesZeroDiagonal) {
  Matrix a(2, 2);
  a.SetRow(0, Vector{0.0, 1.0});
  a.SetRow(1, Vector{1.0, 0.0});
  auto x = SolveLinearSystem(a, Vector{3.0, 4.0});
  ASSERT_TRUE(x.has_value());
  EXPECT_NEAR((*x)[0], 4.0, 1e-12);
  EXPECT_NEAR((*x)[1], 3.0, 1e-12);
}

TEST(GaussTest, InvertTimesOriginalIsIdentity) {
  common::Rng rng(3);
  const Matrix a = RandomMatrix(&rng, 5);
  auto inv = Invert(a);
  ASSERT_TRUE(inv.has_value());
  const Matrix prod = a.Multiply(*inv);
  for (size_t i = 0; i < 5; ++i) {
    for (size_t j = 0; j < 5; ++j) {
      EXPECT_NEAR(prod(i, j), i == j ? 1.0 : 0.0, 1e-9);
    }
  }
}

TEST(GaussTest, RankFullAndDeficient) {
  common::Rng rng(4);
  const Matrix a = RandomMatrix(&rng, 4);
  EXPECT_EQ(Rank(a), 4u);

  // Make row 3 a linear combination of rows 0 and 1.
  Matrix b = a;
  for (size_t j = 0; j < 4; ++j) b(3, j) = 2.0 * b(0, j) - b(1, j);
  EXPECT_EQ(Rank(b), 3u);
}

TEST(GaussTest, RankOfRectangular) {
  Matrix m(2, 4);
  m.SetRow(0, Vector{1.0, 0.0, 2.0, 0.0});
  m.SetRow(1, Vector{0.0, 1.0, 0.0, 2.0});
  EXPECT_EQ(Rank(m), 2u);
  Matrix z(3, 3, 0.0);
  EXPECT_EQ(Rank(z), 0u);
}

// Property sweep: solving a random nonsingular system reproduces the RHS.
class GaussPropertyTest : public ::testing::TestWithParam<size_t> {};

TEST_P(GaussPropertyTest, SolveThenMultiplyRoundTrips) {
  const size_t n = GetParam();
  common::Rng rng(100 + n);
  for (int trial = 0; trial < 20; ++trial) {
    const Matrix a = RandomMatrix(&rng, n);
    Vector b(n);
    for (size_t i = 0; i < n; ++i) b[i] = rng.Uniform(-100.0, 100.0);
    auto x = SolveLinearSystem(a, b);
    if (!x.has_value()) continue;  // exceedingly unlikely
    const Vector back = a.Multiply(*x);
    for (size_t i = 0; i < n; ++i) EXPECT_NEAR(back[i], b[i], 1e-6);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, GaussPropertyTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 51));

}  // namespace
}  // namespace memgoal::la
