#include "la/row_replace_inverse.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "la/gauss.h"
#include "la/matrix.h"

namespace memgoal::la {
namespace {

Matrix RandomMatrix(common::Rng* rng, size_t n) {
  Matrix m(n, n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n; ++j) m(i, j) = rng->Uniform(-5.0, 5.0);
  }
  return m;
}

Vector RandomVector(common::Rng* rng, size_t n) {
  Vector v(n);
  for (size_t i = 0; i < n; ++i) v[i] = rng->Uniform(-5.0, 5.0);
  return v;
}

void ExpectIsInverse(const Matrix& a, const Matrix& inv, double tol) {
  const Matrix prod = a.Multiply(inv);
  for (size_t i = 0; i < a.rows(); ++i) {
    for (size_t j = 0; j < a.cols(); ++j) {
      EXPECT_NEAR(prod(i, j), i == j ? 1.0 : 0.0, tol);
    }
  }
}

TEST(RowReplaceInverseTest, ResetRejectsSingular) {
  Matrix a(2, 2);
  a.SetRow(0, Vector{1.0, 2.0});
  a.SetRow(1, Vector{2.0, 4.0});
  RowReplaceInverse rri;
  EXPECT_FALSE(rri.Reset(a));
  EXPECT_FALSE(rri.initialized());
}

TEST(RowReplaceInverseTest, SingleRowUpdateMatchesFullInverse) {
  common::Rng rng(17);
  const Matrix a = RandomMatrix(&rng, 4);
  RowReplaceInverse rri;
  ASSERT_TRUE(rri.Reset(a));

  const Vector new_row = RandomVector(&rng, 4);
  ASSERT_TRUE(rri.ReplaceRow(2, new_row));
  Matrix expected = a;
  expected.SetRow(2, new_row);
  ExpectIsInverse(expected, rri.inverse(), 1e-8);
}

TEST(RowReplaceInverseTest, RejectsSingularReplacement) {
  Matrix a = Matrix::Identity(3);
  RowReplaceInverse rri;
  ASSERT_TRUE(rri.Reset(a));
  // Replacing row 2 with a copy of row 0 makes the matrix singular.
  EXPECT_FALSE(rri.WouldRemainNonsingular(2, Vector{1.0, 0.0, 0.0}));
  EXPECT_FALSE(rri.ReplaceRow(2, Vector{1.0, 0.0, 0.0}));
  // State unchanged: the original inverse still valid.
  ExpectIsInverse(a, rri.inverse(), 1e-12);
  // A harmless replacement still works afterwards.
  EXPECT_TRUE(rri.ReplaceRow(2, Vector{0.0, 1.0, 1.0}));
}

TEST(RowReplaceInverseTest, WouldRemainNonsingularAgreesWithCommit) {
  common::Rng rng(23);
  RowReplaceInverse rri;
  ASSERT_TRUE(rri.Reset(RandomMatrix(&rng, 5)));
  for (int trial = 0; trial < 50; ++trial) {
    const size_t row = static_cast<size_t>(rng.UniformInt(0, 4));
    const Vector v = RandomVector(&rng, 5);
    const bool predicted = rri.WouldRemainNonsingular(row, v);
    RowReplaceInverse copy = rri;
    EXPECT_EQ(copy.ReplaceRow(row, v), predicted);
  }
}

TEST(RowReplaceInverseTest, SolveMatchesGauss) {
  common::Rng rng(29);
  const Matrix a = RandomMatrix(&rng, 6);
  RowReplaceInverse rri;
  ASSERT_TRUE(rri.Reset(a));
  const Vector b = RandomVector(&rng, 6);
  const Vector x = rri.Solve(b);
  auto expected = SolveLinearSystem(a, b);
  ASSERT_TRUE(expected.has_value());
  for (size_t i = 0; i < 6; ++i) EXPECT_NEAR(x[i], (*expected)[i], 1e-8);
}

TEST(RowReplaceInverseTest, DenominatorToleranceBoundary) {
  // Replacing row 1 of the identity with {1, eps} gives determinant eps, so
  // the Sherman–Morrison denominator is exactly eps: the replacement must be
  // rejected just inside the tolerance and accepted just outside it.
  constexpr double kTol = RowReplaceInverse::kDenominatorTolerance;
  {
    RowReplaceInverse rri;
    ASSERT_TRUE(rri.Reset(Matrix::Identity(2)));
    EXPECT_FALSE(rri.WouldRemainNonsingular(1, Vector{1.0, kTol * 0.5}));
    EXPECT_FALSE(rri.ReplaceRow(1, Vector{1.0, kTol * 0.5}));
    // Rejection left the inverse untouched.
    ExpectIsInverse(Matrix::Identity(2), rri.inverse(), 1e-12);
  }
  {
    RowReplaceInverse rri;
    ASSERT_TRUE(rri.Reset(Matrix::Identity(2)));
    const Vector row{1.0, kTol * 4.0};
    EXPECT_TRUE(rri.WouldRemainNonsingular(1, row));
    ASSERT_TRUE(rri.ReplaceRow(1, row));
    Matrix expected = Matrix::Identity(2);
    expected.SetRow(1, row);
    ExpectIsInverse(expected, rri.inverse(), 1e-6);
  }
}

TEST(RowReplaceInverseTest, ConditionEstimateTracksIllConditioning) {
  RowReplaceInverse rri;
  ASSERT_TRUE(rri.Reset(Matrix::Identity(3)));
  EXPECT_DOUBLE_EQ(rri.ConditionEstimate(), 1.0);

  // diag(1, 1, 1e-6): ||A||_inf = 1, ||A^-1||_inf = 1e6.
  ASSERT_TRUE(rri.ReplaceRow(2, Vector{0.0, 0.0, 1e-6}));
  EXPECT_NEAR(rri.ConditionEstimate(), 1e6, 1.0);

  // Restoring the row brings the estimate back down.
  ASSERT_TRUE(rri.ReplaceRow(2, Vector{0.0, 0.0, 1.0}));
  EXPECT_NEAR(rri.ConditionEstimate(), 1.0, 1e-6);
}

TEST(RowReplaceInverseTest, RefreshOnMarginalMatrixDefersInsteadOfFailing) {
  // The periodic refresh re-inverts from scratch, but Gauss pivoting gives
  // up around condition 1/kSingularTolerance — long before the rank-one
  // update loses meaning. When the refresh lands on such a marginal matrix
  // the update must go through incrementally (and stay initialized), with
  // the exact refresh retried on the next commit.
  Matrix a(2, 2);
  a.SetRow(0, Vector{0.0, 1.0});
  a.SetRow(1, Vector{100.0, 1.0});
  RowReplaceInverse rri;
  ASSERT_TRUE(rri.Reset(a));

  // Benign updates up to one shy of the refresh boundary...
  for (int i = 1; i <= RowReplaceInverse::kRefreshInterval - 2; ++i) {
    ASSERT_TRUE(rri.ReplaceRow(0, Vector{i % 2 == 0 ? 0.0 : 50.0, 1.0}));
  }
  ASSERT_TRUE(rri.ReplaceRow(0, Vector{99.9, 1.0}));

  // ...then the boundary update creates a matrix whose determinant (-1e-7)
  // passes the O(n) denominator probe (ratio 1e-6) but fails the exact
  // inversion's pivot threshold (1e-9 against 1e-8).
  const Vector marginal{100.0 - 1e-7, 1.0};
  EXPECT_TRUE(rri.ReplaceRow(0, marginal));
  EXPECT_TRUE(rri.initialized());
  EXPECT_DOUBLE_EQ(rri.matrix()(0, 0), 100.0 - 1e-7);
  EXPECT_GT(rri.ConditionEstimate(), 1e8);

  // Backing off to a well-conditioned matrix triggers the deferred refresh,
  // which now succeeds and restores an exact inverse.
  ASSERT_TRUE(rri.ReplaceRow(0, Vector{0.0, 1.0}));
  Matrix recovered(2, 2);
  recovered.SetRow(0, Vector{0.0, 1.0});
  recovered.SetRow(1, Vector{100.0, 1.0});
  ExpectIsInverse(recovered, rri.inverse(), 1e-9);
}

// Property sweep: long sequences of row replacements stay consistent with
// the exact inverse (exercises the periodic refresh path too).
class RowReplacePropertyTest : public ::testing::TestWithParam<size_t> {};

TEST_P(RowReplacePropertyTest, ManySequentialUpdatesStayAccurate) {
  const size_t n = GetParam();
  common::Rng rng(1000 + n);
  Matrix a = RandomMatrix(&rng, n);
  RowReplaceInverse rri;
  ASSERT_TRUE(rri.Reset(a));

  const int updates = 150;  // > kRefreshInterval, forcing a refresh
  for (int u = 0; u < updates; ++u) {
    const size_t row = static_cast<size_t>(
        rng.UniformInt(0, static_cast<int64_t>(n) - 1));
    const Vector v = RandomVector(&rng, n);
    if (rri.ReplaceRow(row, v)) a.SetRow(row, v);
  }
  ExpectIsInverse(a, rri.inverse(), 1e-6);

  // Solve still agrees with a fresh factorization.
  const Vector b = RandomVector(&rng, n);
  const Vector x = rri.Solve(b);
  auto expected = SolveLinearSystem(a, b);
  ASSERT_TRUE(expected.has_value());
  for (size_t i = 0; i < n; ++i) EXPECT_NEAR(x[i], (*expected)[i], 1e-5);
}

INSTANTIATE_TEST_SUITE_P(Sizes, RowReplacePropertyTest,
                         ::testing::Values(2, 3, 4, 6, 11, 21, 31, 51));

}  // namespace
}  // namespace memgoal::la
