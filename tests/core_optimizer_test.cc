#include "core/optimizer.h"

#include <gtest/gtest.h>

namespace memgoal::core {
namespace {

OptimizerInput MakeInput() {
  OptimizerInput input;
  input.planes.grad_k = {-0.002, -0.001};  // more buffer -> faster
  input.planes.intercept_k = 10.0;
  input.planes.grad_0 = {0.001, 0.003};  // dedicating hurts no-goal
  input.planes.intercept_0 = 2.0;
  input.goal_rt = 6.0;
  input.upper_bounds = {4000.0, 4000.0};
  return input;
}

TEST(OptimizerTest, MeetsGoalWithEquality) {
  OptimizerInput input = MakeInput();
  const OptimizerOutput output = SolvePartitioning(input);
  EXPECT_EQ(output.mode, OptimizerMode::kGoalEquality);
  EXPECT_NEAR(output.predicted_rt_k, 6.0, 1e-6);
  // Node 0 reduces RT at 0.002/byte and costs the no-goal class only
  // 0.001/byte: strictly better, so the LP should load node 0 first.
  // Needed: 0.002*x0 + 0.001*x1 = 4  ->  x0 = 2000 suffices.
  EXPECT_NEAR(output.allocation[0], 2000.0, 1e-6);
  EXPECT_NEAR(output.allocation[1], 0.0, 1e-6);
}

TEST(OptimizerTest, PrefersCheaperNoGoalImpact) {
  OptimizerInput input = MakeInput();
  // Make node 0 expensive for the no-goal class: optimizer should shift to
  // node 1 (impact per RT-unit: node0 = 0.004/0.002=2, node1 = 0.0005/0.001
  // = 0.5).
  input.planes.grad_0 = {0.004, 0.0005};
  const OptimizerOutput output = SolvePartitioning(input);
  EXPECT_EQ(output.mode, OptimizerMode::kGoalEquality);
  EXPECT_NEAR(output.predicted_rt_k, 6.0, 1e-6);
  EXPECT_NEAR(output.allocation[1], 4000.0, 1e-6);  // saturate node 1
  EXPECT_NEAR(output.allocation[0], 0.0, 1e-9);
  // Remaining 4 - 0.001*4000 = 0 exactly: node 0 unused.
}

TEST(OptimizerTest, RespectsUpperBounds) {
  OptimizerInput input = MakeInput();
  input.goal_rt = 2.0;  // needs 0.002 x0 + 0.001 x1 = 8
  input.upper_bounds = {3000.0, 3000.0};
  const OptimizerOutput output = SolvePartitioning(input);
  // Max achievable reduction = 0.002*3000 + 0.001*3000 = 9 >= 8: feasible.
  EXPECT_EQ(output.mode, OptimizerMode::kGoalEquality);
  for (size_t i = 0; i < 2; ++i) {
    EXPECT_LE(output.allocation[i], 3000.0 + 1e-9);
    EXPECT_GE(output.allocation[i], -1e-9);
  }
  EXPECT_NEAR(output.predicted_rt_k, 2.0, 1e-6);
}

TEST(OptimizerTest, BestEffortWhenGoalUnreachable) {
  OptimizerInput input = MakeInput();
  input.goal_rt = 1.0;  // would need reduction 9 > max 0.002*4000+0.001*4000=12
  input.upper_bounds = {2000.0, 2000.0};  // now max reduction = 6 < 9
  const OptimizerOutput output = SolvePartitioning(input);
  EXPECT_EQ(output.mode, OptimizerMode::kBestEffort);
  // Best effort allocates everything available (monotonicity assumption).
  EXPECT_NEAR(output.allocation[0], 2000.0, 1e-9);
  EXPECT_NEAR(output.allocation[1], 2000.0, 1e-9);
  EXPECT_NEAR(output.predicted_rt_k, 10.0 - 6.0, 1e-9);
}

TEST(OptimizerTest, GoalAboveInterceptReleasesBuffer) {
  OptimizerInput input = MakeInput();
  // Goal slower than the zero-allocation response time: equality is
  // infeasible (gradients negative, so RT <= intercept always), but the
  // inequality RT <= goal holds at zero allocation — minimal no-goal
  // impact.
  input.goal_rt = 12.0;
  const OptimizerOutput output = SolvePartitioning(input);
  EXPECT_EQ(output.mode, OptimizerMode::kGoalInequality);
  EXPECT_NEAR(output.allocation[0], 0.0, 1e-9);
  EXPECT_NEAR(output.allocation[1], 0.0, 1e-9);
}

TEST(OptimizerTest, BestEffortIgnoresNoisyGradientSigns) {
  // A (noisy) fit can claim more buffer hurts; best effort falls back on
  // the paper's monotonicity assumption and still allocates the maximum.
  OptimizerInput input = MakeInput();
  input.planes.grad_k = {0.002, -0.0001};
  input.goal_rt = 0.5;
  input.upper_bounds = {1000.0, 1000.0};
  const OptimizerOutput output = SolvePartitioning(input);
  EXPECT_EQ(output.mode, OptimizerMode::kBestEffort);
  EXPECT_NEAR(output.allocation[0], 1000.0, 1e-9);
  EXPECT_NEAR(output.allocation[1], 1000.0, 1e-9);
}

TEST(OptimizerTest, RelaxedRetryWhenInequalityInfeasible) {
  OptimizerInput input = MakeInput();
  // Max reduction = 0.002*2000 + 0.001*2000 = 6, so RT bottoms out at 4.
  // Goal 3.8 is infeasible, but 3.8 * 1.10 = 4.18 is reachable: the first
  // rung of the relaxation ladder must succeed.
  input.goal_rt = 3.8;
  input.upper_bounds = {2000.0, 2000.0};
  const OptimizerOutput output = SolvePartitioning(input);
  EXPECT_EQ(output.mode, OptimizerMode::kGoalRelaxed);
  EXPECT_NEAR(output.relaxed_goal_rt, 3.8 * 1.10, 1e-12);
  EXPECT_LE(output.predicted_rt_k, output.relaxed_goal_rt + 1e-9);
  // Solve trail: equality infeasible, inequality infeasible, one relaxed
  // retry that ran to optimality.
  EXPECT_EQ(output.lp_stats.infeasible, 2u);
  EXPECT_EQ(output.lp_stats.relaxed_retries, 1u);
  EXPECT_EQ(output.lp_stats.optimal, 1u);
  EXPECT_EQ(output.lp_stats.unbounded, 0u);
}

TEST(OptimizerTest, BestEffortAfterRelaxationLadderExhausted) {
  OptimizerInput input = MakeInput();
  // Even the loosest rung (1.0 * 1.50 = 1.5) is below the reachable
  // minimum RT of 4: every retry fails and best effort saturates.
  input.goal_rt = 1.0;
  input.upper_bounds = {2000.0, 2000.0};
  const OptimizerOutput output = SolvePartitioning(input);
  EXPECT_EQ(output.mode, OptimizerMode::kBestEffort);
  EXPECT_NEAR(output.allocation[0], 2000.0, 1e-9);
  EXPECT_NEAR(output.allocation[1], 2000.0, 1e-9);
  EXPECT_EQ(output.lp_stats.relaxed_retries, 3u);
  EXPECT_EQ(output.lp_stats.infeasible, 5u);  // equality + inequality + 3
  EXPECT_EQ(output.lp_stats.optimal, 0u);
}

TEST(OptimizerTest, LpStatsCountSuccessfulSolves) {
  OptimizerInput input = MakeInput();
  const OptimizerOutput output = SolvePartitioning(input);
  ASSERT_EQ(output.mode, OptimizerMode::kGoalEquality);
  EXPECT_EQ(output.lp_stats.optimal, 1u);
  EXPECT_EQ(output.lp_stats.infeasible, 0u);
  EXPECT_EQ(output.lp_stats.relaxed_retries, 0u);

  LpOutcomeStats total;
  total += output.lp_stats;
  total += output.lp_stats;
  EXPECT_EQ(total.optimal, 2u);
}

TEST(OptimizerTest, PredictionsEvaluateBothPlanes) {
  OptimizerInput input = MakeInput();
  const OptimizerOutput output = SolvePartitioning(input);
  const double rt0 = la::Dot(input.planes.grad_0, output.allocation) +
                     input.planes.intercept_0;
  EXPECT_NEAR(output.predicted_rt_0, rt0, 1e-9);
}

}  // namespace
}  // namespace memgoal::core
