// Pins the regression-gate semantics of bench/compare.h: a +20% wall
// regression fails, within-noise drift passes, the calibration spin cancels
// machine speed out of the wall comparison, deterministic metric changes
// are informational unless explicitly gated, and a bench disappearing from
// the candidate set is itself a regression.

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "bench/compare.h"

namespace memgoal::bench {
namespace {

BenchReport MakeReport(const std::string& name, double wall_seconds,
                       double calib_seconds = 1.0) {
  BenchReport report;
  report.schema_version = 1;
  report.bench = name;
  report.wall_seconds = wall_seconds;
  report.calib_wall_seconds = calib_seconds;
  report.events_processed = 1000;
  report.events_per_second = 1000.0 / wall_seconds;
  report.metrics["goal_rt_ms"] = 5.0;
  return report;
}

int RegressionRows(const CompareResult& result) {
  int n = 0;
  for (const CompareRow& row : result.rows) {
    if (row.status == CompareRow::Status::kRegression ||
        row.status == CompareRow::Status::kMissing) {
      ++n;
    }
  }
  return n;
}

TEST(CompareTest, IdenticalReportsPass) {
  const std::vector<BenchReport> base = {MakeReport("fig2", 10.0)};
  const std::vector<BenchReport> cand = {MakeReport("fig2", 10.0)};
  const CompareResult result = CompareReports(base, cand, CompareOptions());
  EXPECT_EQ(result.regressions, 0);
  EXPECT_EQ(result.changes, 0);
  EXPECT_EQ(RegressionRows(result), 0);
}

TEST(CompareTest, WithinNoiseWallDriftPasses) {
  const std::vector<BenchReport> base = {MakeReport("fig2", 10.0)};
  const std::vector<BenchReport> cand = {MakeReport("fig2", 10.5)};  // +5%
  const CompareResult result = CompareReports(base, cand, CompareOptions());
  EXPECT_EQ(result.regressions, 0);
}

TEST(CompareTest, TwentyPercentWallRegressionFails) {
  const std::vector<BenchReport> base = {MakeReport("fig2", 10.0)};
  const std::vector<BenchReport> cand = {MakeReport("fig2", 12.0)};  // +20%
  const CompareResult result = CompareReports(base, cand, CompareOptions());
  EXPECT_GE(result.regressions, 1);
  bool found = false;
  for (const CompareRow& row : result.rows) {
    if (row.metric == "wall_seconds" &&
        row.status == CompareRow::Status::kRegression) {
      found = true;
    }
  }
  EXPECT_TRUE(found);
  EXPECT_NE(result.markdown.find("REGRESSION"), std::string::npos);
}

TEST(CompareTest, CalibrationSpinCancelsMachineSpeed) {
  // The candidate ran on a machine 1.3x slower: both its wall clock and its
  // calibration spin scale up together, so no regression.
  const std::vector<BenchReport> base = {MakeReport("fig2", 10.0, 1.0)};
  const std::vector<BenchReport> cand = {MakeReport("fig2", 13.0, 1.3)};
  const CompareResult result = CompareReports(base, cand, CompareOptions());
  EXPECT_EQ(result.regressions, 0);
  // A genuine +20% on top of the slower machine still fails.
  const std::vector<BenchReport> slow = {MakeReport("fig2", 15.6, 1.3)};
  EXPECT_GE(CompareReports(base, slow, CompareOptions()).regressions, 1);
}

TEST(CompareTest, AbsoluteSlackAbsorbsFastBenchNoise) {
  // +400% relative, but the absolute gap (40 ms) is under the 50 ms slack:
  // sub-second quick benches are noise-dominated.
  const std::vector<BenchReport> base = {MakeReport("tiny", 0.010)};
  const std::vector<BenchReport> cand = {MakeReport("tiny", 0.050)};
  const CompareResult result = CompareReports(base, cand, CompareOptions());
  EXPECT_EQ(result.regressions, 0);
}

TEST(CompareTest, MissingBenchIsARegression) {
  const std::vector<BenchReport> base = {MakeReport("fig2", 10.0),
                                         MakeReport("scaling", 5.0)};
  const std::vector<BenchReport> cand = {MakeReport("fig2", 10.0)};
  const CompareResult result = CompareReports(base, cand, CompareOptions());
  EXPECT_GE(result.regressions, 1);
  EXPECT_NE(result.markdown.find("MISSING"), std::string::npos);
}

TEST(CompareTest, NewBenchIsInformational) {
  const std::vector<BenchReport> base = {MakeReport("fig2", 10.0)};
  const std::vector<BenchReport> cand = {MakeReport("fig2", 10.0),
                                         MakeReport("extra", 1.0)};
  const CompareResult result = CompareReports(base, cand, CompareOptions());
  EXPECT_EQ(result.regressions, 0);
  EXPECT_GE(result.changes, 1);
}

TEST(CompareTest, DeterministicMetricChangeIsInformational) {
  const std::vector<BenchReport> base = {MakeReport("fig2", 10.0)};
  std::vector<BenchReport> cand = {MakeReport("fig2", 10.0)};
  cand[0].metrics["goal_rt_ms"] = 6.0;
  const CompareResult result = CompareReports(base, cand, CompareOptions());
  EXPECT_EQ(result.regressions, 0);
  EXPECT_GE(result.changes, 1);
}

TEST(CompareTest, PerMetricThresholdGatesWhenConfigured) {
  const std::vector<BenchReport> base = {MakeReport("fig2", 10.0)};
  std::vector<BenchReport> cand = {MakeReport("fig2", 10.0)};
  cand[0].metrics["goal_rt_ms"] = 6.0;  // +20%
  CompareOptions options;
  options.metric_thresholds["goal_rt_ms"] = 0.10;
  EXPECT_GE(CompareReports(base, cand, options).regressions, 1);
  options.metric_thresholds["goal_rt_ms"] = 0.30;
  EXPECT_EQ(CompareReports(base, cand, options).regressions, 0);
}

constexpr char kSampleJson[] = R"({
  "schema_version": 1,
  "bench": "fig2_base",
  "git_describe": "abc123-dirty",
  "threads": 4,
  "quick": true,
  "setup": {"seed": 1, "mode": "base\n"},
  "metrics": {"goal_lo_ms": 2.5, "goals_completed": 2},
  "wall_seconds": 0.85,
  "calib_wall_seconds": 0.027,
  "events_processed": 614830,
  "events_per_second": 717537.8,
  "sim_ms_per_wall_ms": 140.0,
  "profile": null
})";

TEST(CompareTest, ParsesBenchReportJson) {
  BenchReport report;
  std::string error;
  ASSERT_TRUE(ParseBenchReport(kSampleJson, &report, &error)) << error;
  EXPECT_EQ(report.bench, "fig2_base");
  EXPECT_EQ(report.git_describe, "abc123-dirty");
  EXPECT_EQ(report.threads, 4);
  EXPECT_TRUE(report.quick);
  EXPECT_DOUBLE_EQ(report.wall_seconds, 0.85);
  EXPECT_DOUBLE_EQ(report.calib_wall_seconds, 0.027);
  EXPECT_EQ(report.events_processed, 614830u);
  ASSERT_EQ(report.metrics.count("goal_lo_ms"), 1u);
  EXPECT_DOUBLE_EQ(report.metrics.at("goal_lo_ms"), 2.5);
  ASSERT_EQ(report.setup.count("mode"), 1u);
  EXPECT_EQ(report.setup.at("mode"), "base\n");  // escape round-trip
}

TEST(CompareTest, RejectsMalformedReports) {
  BenchReport report;
  std::string error;
  EXPECT_FALSE(ParseBenchReport("{", &report, &error));
  EXPECT_FALSE(ParseBenchReport("[]", &report, &error));
  EXPECT_FALSE(ParseBenchReport(R"({"schema_version": 99, "bench": "x",)"
                                R"( "wall_seconds": 1})",
                                &report, &error));
  EXPECT_NE(error.find("schema_version"), std::string::npos);
  EXPECT_FALSE(ParseBenchReport(R"({"schema_version": 1,)"
                                R"( "wall_seconds": 1})",
                                &report, &error));
  EXPECT_NE(error.find("bench"), std::string::npos);
  EXPECT_FALSE(ParseBenchReport(R"({"schema_version": 1, "bench": "x"})",
                                &report, &error));
  EXPECT_NE(error.find("wall_seconds"), std::string::npos);
  EXPECT_FALSE(ParseBenchReport("{} trailing", &report, &error));
}

TEST(CompareTest, JsonParserHandlesNestingAndEscapes) {
  JsonValue root;
  std::string error;
  ASSERT_TRUE(ParseJson(R"({"a": [1, -2.5e3, "x\ty"], "b": {"c": true}})",
                        &root, &error))
      << error;
  const JsonValue* a = root.Find("a");
  ASSERT_NE(a, nullptr);
  ASSERT_EQ(a->array.size(), 3u);
  EXPECT_DOUBLE_EQ(a->array[1].number, -2500.0);
  EXPECT_EQ(a->array[2].str, "x\ty");
  const JsonValue* b = root.Find("b");
  ASSERT_NE(b, nullptr);
  const JsonValue* c = b->Find("c");
  ASSERT_NE(c, nullptr);
  EXPECT_TRUE(c->boolean);
  EXPECT_EQ(root.Find("zzz"), nullptr);
}

}  // namespace
}  // namespace memgoal::bench
