// Reproducibility harness for the parallel trial runner: the same `Setup`
// must yield bit-identical interval records no matter when it runs, and a
// pooled experiment must yield bit-identical statistics no matter how many
// runner threads execute its trials. These tests pin the contract stated in
// bench/trial_runner.h; a failure here means some shared mutable state or
// order-dependent seeding crept back into the trial path.
//
// The QueueBackendDifferential suite extends the same idea across event-core
// implementations: every scenario file under tools/scenarios/ and a set of
// chaos-fuzz schedules replayed through the calendar queue and the legacy
// binary heap must produce byte-identical metrics CSV and controller
// decision logs. The two backends share nothing but the (time, seq)
// ordering contract, so agreement here pins the whole simulation — clock
// advancement, RNG draw order, controller decisions — to that contract.

#include <bit>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <optional>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "bench/experiment.h"
#include "bench/trial_runner.h"
#include "common/config.h"
#include "common/rng.h"
#include "core/metrics.h"
#include "core/scenario.h"
#include "core/system.h"
#include "obs/attainment.h"
#include "obs/decision_log.h"
#include "sim/chaos_schedule.h"
#include "sim/invariant_auditor.h"

namespace memgoal::bench {
namespace {

using ExperimentSetup = ::memgoal::bench::Setup;

ExperimentSetup SmallSetup(uint64_t seed) {
  ExperimentSetup setup;
  setup.seed = seed;
  setup.pages_per_class = 100;
  setup.cache_bytes_per_node = 64 * 4096;
  setup.interarrival_ms = 50.0;
  setup.observation_interval_ms = 2000.0;
  return setup;
}

// Renders a run's full interval log as CSV, the same bytes
// `tools/memgoal_sim` would emit. Comparing the serialized form catches any
// divergence in any field of any record.
std::string CsvOf(const core::MetricsLog& log) {
  char* buf = nullptr;
  size_t size = 0;
  std::FILE* stream = open_memstream(&buf, &size);
  log.WriteCsv(stream);
  std::fclose(stream);
  std::string csv(buf, size);
  std::free(buf);
  return csv;
}

// One complete simulation trial -> its interval CSV.
std::string RunTrialCsv(uint64_t master_seed, int trial, int intervals) {
  ExperimentSetup setup =
      SmallSetup(common::DeriveStreamSeed(master_seed, static_cast<uint64_t>(trial)));
  std::unique_ptr<core::ClusterSystem> system = BuildSystem(setup);
  system->SetGoal(1, 30.0);
  system->Start();
  system->RunIntervals(intervals);
  return CsvOf(system->metrics());
}

uint64_t Bits(double x) { return std::bit_cast<uint64_t>(x); }

TEST(TrialRunnerTest, ResultsLandInTrialOrder) {
  TrialRunner runner(4);
  const std::vector<int> results =
      runner.Run(16, [](int trial) { return trial * trial; });
  ASSERT_EQ(results.size(), 16u);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(results[static_cast<size_t>(i)], i * i);
}

TEST(TrialRunnerTest, HandlesZeroTrialsAndMoreThreadsThanTrials) {
  TrialRunner runner(8);
  EXPECT_TRUE(runner.Run(0, [](int trial) { return trial; }).empty());
  const std::vector<int> two = runner.Run(2, [](int trial) { return trial + 1; });
  ASSERT_EQ(two.size(), 2u);
  EXPECT_EQ(two[0], 1);
  EXPECT_EQ(two[1], 2);
}

TEST(TrialRunnerTest, PropagatesTrialExceptions) {
  TrialRunner runner(4);
  EXPECT_THROW(runner.Run(8,
                          [](int trial) {
                            if (trial == 5) throw std::runtime_error("trial 5");
                            return trial;
                          }),
               std::runtime_error);
}

TEST(DeterminismTest, SameSetupTwiceGivesIdenticalIntervalCsv) {
  // Two cold runs of the same Setup in the same process: every interval
  // record must serialize to the same bytes. Guards against static caches
  // or other cross-run state in the simulator.
  const std::string first = RunTrialCsv(17, 0, 10);
  const std::string second = RunTrialCsv(17, 0, 10);
  EXPECT_FALSE(first.empty());
  EXPECT_EQ(first, second);
}

TEST(DeterminismTest, TrialCsvsIdenticalAcrossThreadCounts) {
  // Four independent trials run serially and on a 4-thread pool must
  // produce identical per-trial CSVs: trial randomness derives from
  // (master_seed, trial_index) only, never from scheduling order.
  constexpr int kTrials = 4;
  const auto run_all = [](int threads) {
    TrialRunner runner(threads);
    return runner.Run(kTrials, [](int trial) {
      return RunTrialCsv(23, trial, 8);
    });
  };
  const std::vector<std::string> serial = run_all(1);
  const std::vector<std::string> parallel = run_all(4);
  ASSERT_EQ(serial.size(), parallel.size());
  for (int i = 0; i < kTrials; ++i) {
    EXPECT_EQ(serial[static_cast<size_t>(i)], parallel[static_cast<size_t>(i)])
        << "trial " << i << " diverged between 1 and 4 threads";
  }
  // And the trials are genuinely distinct experiments, not copies.
  EXPECT_NE(serial[0], serial[1]);
}

TEST(DeterminismTest, PooledConvergenceStatsBitIdenticalAcrossThreadCounts) {
  // The full Table-2 protocol: calibration + pooled convergence runs. Every
  // field of the pooled result — including the accumulated doubles — must
  // be bit-for-bit identical between a serial and a 4-thread execution.
  const ExperimentSetup base = SmallSetup(31);
  ConvergencePlan plan;
  plan.max_runs = 3;
  plan.intervals_per_run = 20;
  plan.calibration_intervals = 8;

  TrialRunner serial_runner(1);
  TrialRunner parallel_runner(4);
  const ConvergenceResult serial = MeasureConvergence(base, plan, &serial_runner);
  const ConvergenceResult parallel =
      MeasureConvergence(base, plan, &parallel_runner);

  EXPECT_EQ(serial.goals_completed, parallel.goals_completed);
  EXPECT_EQ(serial.censored, parallel.censored);
  EXPECT_EQ(serial.runs_used, parallel.runs_used);
  EXPECT_EQ(Bits(serial.goal_lo), Bits(parallel.goal_lo));
  EXPECT_EQ(Bits(serial.goal_hi), Bits(parallel.goal_hi));
  EXPECT_EQ(serial.iterations.count(), parallel.iterations.count());
  EXPECT_EQ(Bits(serial.iterations.mean()), Bits(parallel.iterations.mean()));
  EXPECT_EQ(Bits(serial.iterations.variance()),
            Bits(parallel.iterations.variance()));
  EXPECT_EQ(Bits(serial.iterations.min()), Bits(parallel.iterations.min()));
  EXPECT_EQ(Bits(serial.iterations.max()), Bits(parallel.iterations.max()));

  // The protocol actually produced samples (the assertions above are not
  // vacuously comparing empty accumulators).
  EXPECT_GT(serial.iterations.count(), 0);
  EXPECT_GT(serial.goals_completed, 0);
}

TEST(DeterminismTest, MeasureConvergenceDefaultsToInlineRunner) {
  // Without a runner the protocol runs inline and must match a 1-thread
  // runner exactly.
  const ExperimentSetup base = SmallSetup(37);
  ConvergencePlan plan;
  plan.max_runs = 2;
  plan.intervals_per_run = 15;
  plan.calibration_intervals = 6;
  TrialRunner one(1);
  const ConvergenceResult inline_result = MeasureConvergence(base, plan);
  const ConvergenceResult runner_result = MeasureConvergence(base, plan, &one);
  EXPECT_EQ(inline_result.iterations.count(), runner_result.iterations.count());
  EXPECT_EQ(Bits(inline_result.iterations.mean()),
            Bits(runner_result.iterations.mean()));
  EXPECT_EQ(inline_result.runs_used, runner_result.runs_used);
  EXPECT_EQ(Bits(inline_result.goal_lo), Bits(runner_result.goal_lo));
  EXPECT_EQ(Bits(inline_result.goal_hi), Bits(runner_result.goal_hi));
}

// ---------------------------------------------------------------------------
// Calendar-queue vs legacy-heap differential replay.

// One full scenario run on the given backend, reduced to its observable
// outputs: the interval metrics CSV and the controller decision log (every
// coordinator check, serialized). `text` is scenario key=value text; later
// lines override earlier ones, so callers append test-sized overrides.
struct BackendRun {
  std::string metrics_csv;
  std::string decision_jsonl;
  uint64_t events = 0;
};

std::optional<BackendRun> RunScenarioText(
    const std::string& text, sim::QueueBackend backend,
    obs::AttainmentTracker* attainment = nullptr) {
  common::Config config;
  if (!config.ParseText(text)) {
    ADD_FAILURE() << "bad scenario text: " << config.error();
    return std::nullopt;
  }
  std::string error;
  std::optional<core::Scenario> scenario = core::LoadScenario(config, &error);
  if (!scenario.has_value()) {
    ADD_FAILURE() << "LoadScenario: " << error;
    return std::nullopt;
  }
  scenario->system.queue_backend = backend;
  core::ClusterSystem system(scenario->system);
  for (const workload::ClassSpec& spec : scenario->classes) {
    system.AddClass(spec);
  }
  obs::DecisionLog decision_log;
  system.SetDecisionLog(&decision_log);
  if (attainment != nullptr) system.SetAttainment(attainment);
  sim::InvariantAuditor auditor;
  if (scenario->audit) system.EnableAuditor(&auditor);
  system.Start();
  system.RunIntervals(scenario->intervals);
  EXPECT_TRUE(!scenario->audit || auditor.ok());

  BackendRun run;
  run.metrics_csv = CsvOf(system.metrics());
  char* buf = nullptr;
  size_t size = 0;
  std::FILE* stream = open_memstream(&buf, &size);
  decision_log.WriteJsonl(stream);
  std::fclose(stream);
  run.decision_jsonl.assign(buf, size);
  std::free(buf);
  run.events = system.simulator().events_processed();
  return run;
}

// Runs `text` on both backends and asserts byte-identical outputs.
void ExpectBackendsAgree(const std::string& text, const std::string& what) {
  const std::optional<BackendRun> calendar =
      RunScenarioText(text, sim::QueueBackend::kCalendar);
  const std::optional<BackendRun> heap =
      RunScenarioText(text, sim::QueueBackend::kLegacyHeap);
  ASSERT_TRUE(calendar.has_value() && heap.has_value()) << what;
  EXPECT_GT(calendar->events, 0u) << what;
  EXPECT_EQ(calendar->events, heap->events) << what;
  EXPECT_EQ(calendar->metrics_csv, heap->metrics_csv) << what;
  EXPECT_FALSE(calendar->decision_jsonl.empty()) << what;
  EXPECT_EQ(calendar->decision_jsonl, heap->decision_jsonl) << what;
}

TEST(QueueBackendDifferential, ScenarioFilesReplayIdentically) {
  // Every checked-in scenario file, cut down to a test-sized horizon. The
  // files cover the interesting configuration space: multiclass goals,
  // stochastic crash faults, gray degradation, burst loss, partitions.
  const std::vector<std::string> scenarios = {
      "base.conf", "corrupt.conf", "faults.conf", "gray.conf",
      "oltp_dss.conf", "partition.conf"};
  for (const std::string& name : scenarios) {
    const std::string path = std::string(MEMGOAL_SCENARIO_DIR "/") + name;
    std::ifstream file(path);
    ASSERT_TRUE(file.is_open()) << path;
    std::ostringstream buffer;
    buffer << file.rdbuf();
    ExpectBackendsAgree(buffer.str() + "\nintervals=6\n", name);
  }
}

TEST(QueueBackendDifferential, ChaosSchedulesReplayIdentically) {
  // Chaos-fuzz repro configuration: a generated fault schedule (crashes x
  // gray episodes x partitions) overlaid on a small multiclass cluster,
  // exactly what tools/chaos_fuzz replays from a repro file's seed. Three
  // seeds; each must agree across backends through every fault event.
  for (const uint64_t chaos_seed : {11ull, 4242ull, 987654321ull}) {
    std::ostringstream text;
    text << "nodes=4\ndb_pages=800\ncache_bytes=262144\n"
            "interval_ms=2000\nintervals=8\nseed=5\n"
            "classes=2\nclass1_goal_ms=60\n"
            "class0_interarrival_ms=40\nclass1_interarrival_ms=40\n"
            "chaos_seed=" << chaos_seed << "\n";
    ExpectBackendsAgree(text.str(),
                        "chaos_seed=" + std::to_string(chaos_seed));
  }
}

TEST(QueueBackendDifferential, ReproFileRoundTripReplaysIdentically) {
  // The chaos_fuzz repro-file path, end to end: a generated schedule is
  // serialized with ToText (the repro file format), parsed back with
  // FromText, applied to the fault params, and the resulting run must
  // agree across backends. Distinct from ChaosSchedulesReplayIdentically
  // in that the schedule passes through its on-disk representation.
  sim::chaos::GenerateLimits limits;
  limits.num_nodes = 4;
  limits.horizon_ms = 8 * 2000.0;
  const sim::chaos::Schedule generated = sim::chaos::Generate(777u, limits);
  sim::chaos::Schedule replayed;
  ASSERT_TRUE(sim::chaos::FromText(sim::chaos::ToText(generated), &replayed));

  auto run = [&](sim::QueueBackend backend) {
    common::Config config;
    EXPECT_TRUE(config.ParseText(
        "nodes=4\ndb_pages=800\ncache_bytes=262144\n"
        "interval_ms=2000\nintervals=8\nseed=5\n"
        "classes=2\nclass1_goal_ms=60\n"));
    std::string error;
    std::optional<core::Scenario> scenario =
        core::LoadScenario(config, &error);
    EXPECT_TRUE(scenario.has_value()) << error;
    sim::chaos::ApplyToFaultParams(replayed, &scenario->system.faults);
    scenario->system.queue_backend = backend;
    core::ClusterSystem system(scenario->system);
    for (const workload::ClassSpec& spec : scenario->classes) {
      system.AddClass(spec);
    }
    system.Start();
    system.RunIntervals(scenario->intervals);
    return CsvOf(system.metrics());
  };
  const std::string calendar = run(sim::QueueBackend::kCalendar);
  EXPECT_FALSE(calendar.empty());
  EXPECT_EQ(calendar, run(sim::QueueBackend::kLegacyHeap));
}

TEST(QueueBackendDifferential, LossyNetworkAndAuditReplayIdentically) {
  // Burst-loss retransmission timers produce the densest same-timestamp
  // event collisions (timeout + arrival races); the invariant auditor adds
  // interval-boundary sweeps. Both must not disturb cross-backend
  // agreement.
  ExpectBackendsAgree(
      "nodes=3\ndb_pages=600\ncache_bytes=262144\n"
      "interval_ms=2000\nintervals=6\nseed=3\n"
      "net_loss_model=burst\nnet_burst_g2b=0.01\nnet_burst_b2g=0.3\n"
      "net_loss=0.02\naudit=1\n"
      "classes=2\nclass1_goal_ms=80\n",
      "burst-loss+audit");
}

TEST(QueueBackendDifferential, ZeroRateCorruptionMachineryIsBitExact) {
  // The integrity machinery at rate zero must be invisible: enabling the
  // corruption keys without any corruption source (no MTTC process, no
  // scripted strike, scrub off) makes no RNG draw and schedules no event,
  // so the metrics CSV and decision log are byte-identical to a run that
  // never heard of corruption — on both queue backends.
  const std::string base =
      "nodes=4\ndb_pages=800\ncache_bytes=262144\n"
      "interval_ms=2000\nintervals=8\nseed=5\n"
      "classes=2\nclass1_goal_ms=60\n"
      "class0_interarrival_ms=40\nclass1_interarrival_ms=40\n"
      "fault_mttf_ms=30000\nfault_mttr_ms=5000\n";
  const std::string with_keys = base + "corrupt=all\ncorrupt_latent=0.25\n";
  for (const sim::QueueBackend backend :
       {sim::QueueBackend::kCalendar, sim::QueueBackend::kLegacyHeap}) {
    const std::optional<BackendRun> off = RunScenarioText(base, backend);
    const std::optional<BackendRun> on = RunScenarioText(with_keys, backend);
    ASSERT_TRUE(off.has_value() && on.has_value());
    EXPECT_GT(off->events, 0u);
    EXPECT_EQ(off->events, on->events);
    EXPECT_EQ(off->metrics_csv, on->metrics_csv);
    EXPECT_EQ(off->decision_jsonl, on->decision_jsonl);
  }
}

TEST(QueueBackendDifferential, EnabledAttainmentTrackingIsBitExact) {
  // The attainment tracker is a pure observer: with tracking ENABLED the
  // simulation itself (event count, metrics CSV) must be byte-identical to
  // a bare run, and the tracker's own outputs — budget rows, miss cards,
  // and the decision log they annotate — must be byte-identical across the
  // two queue backends. (Bare vs tracked decision logs are not compared:
  // the tracked run legitimately adds miss-card fields to its records.)
  const std::string text =
      "nodes=4\ndb_pages=800\ncache_bytes=262144\n"
      "interval_ms=2000\nintervals=8\nseed=5\n"
      "classes=2\nclass1_goal_ms=60\n"
      "class0_interarrival_ms=40\nclass1_interarrival_ms=40\n"
      "fault_mttf_ms=30000\nfault_mttr_ms=5000\n";
  std::vector<std::string> attainment_jsonl;
  std::vector<std::string> decision_jsonl;
  for (const sim::QueueBackend backend :
       {sim::QueueBackend::kCalendar, sim::QueueBackend::kLegacyHeap}) {
    const std::optional<BackendRun> bare = RunScenarioText(text, backend);
    obs::AttainmentTracker tracker;
    tracker.Enable(true);
    const std::optional<BackendRun> tracked =
        RunScenarioText(text, backend, &tracker);
    ASSERT_TRUE(bare.has_value() && tracked.has_value());
    EXPECT_GT(bare->events, 0u);
    EXPECT_EQ(bare->events, tracked->events);
    EXPECT_EQ(bare->metrics_csv, tracked->metrics_csv);
    EXPECT_GT(tracker.requests_recorded(), 0u);
    EXPECT_LE(tracker.max_sum_error(), 1e-9);

    char* buf = nullptr;
    size_t size = 0;
    std::FILE* stream = open_memstream(&buf, &size);
    tracker.WriteJsonl(stream);
    std::fclose(stream);
    attainment_jsonl.emplace_back(buf, size);
    std::free(buf);
    decision_jsonl.push_back(tracked->decision_jsonl);
  }
  EXPECT_FALSE(attainment_jsonl[0].empty());
  EXPECT_EQ(attainment_jsonl[0], attainment_jsonl[1]);
  EXPECT_EQ(decision_jsonl[0], decision_jsonl[1]);
}

TEST(QueueBackendDifferential, CorruptionAndScrubReplayIdentically) {
  // Active corruption: a scripted multi-strike episode plus the stochastic
  // MTTC process, with the idle-bandwidth scrubber running. Detection,
  // quarantine, replica repair and scrub ticks must all replay
  // byte-identically across backends.
  ExpectBackendsAgree(
      "nodes=4\ndb_pages=800\ncache_bytes=262144\n"
      "interval_ms=2000\nintervals=8\nseed=5\n"
      "classes=2\nclass1_goal_ms=60\n"
      "class0_interarrival_ms=40\nclass1_interarrival_ms=40\n"
      "corrupt=all\ncorrupt_latent=0.25\nfault_mttc_ms=4000\n"
      "corrupt_node=1\ncorrupt_at_ms=1500\ncorrupt_count=3\ncorrupt_salt=9\n"
      "scrub=idle\nscrub_interval_ms=500\naudit=1\n",
      "corruption+scrub");
}

}  // namespace
}  // namespace memgoal::bench
