// Reproducibility harness for the parallel trial runner: the same `Setup`
// must yield bit-identical interval records no matter when it runs, and a
// pooled experiment must yield bit-identical statistics no matter how many
// runner threads execute its trials. These tests pin the contract stated in
// bench/trial_runner.h; a failure here means some shared mutable state or
// order-dependent seeding crept back into the trial path.

#include <bit>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "bench/experiment.h"
#include "bench/trial_runner.h"
#include "common/rng.h"
#include "core/metrics.h"
#include "core/system.h"

namespace memgoal::bench {
namespace {

using ExperimentSetup = ::memgoal::bench::Setup;

ExperimentSetup SmallSetup(uint64_t seed) {
  ExperimentSetup setup;
  setup.seed = seed;
  setup.pages_per_class = 100;
  setup.cache_bytes_per_node = 64 * 4096;
  setup.interarrival_ms = 50.0;
  setup.observation_interval_ms = 2000.0;
  return setup;
}

// Renders a run's full interval log as CSV, the same bytes
// `tools/memgoal_sim` would emit. Comparing the serialized form catches any
// divergence in any field of any record.
std::string CsvOf(const core::MetricsLog& log) {
  char* buf = nullptr;
  size_t size = 0;
  std::FILE* stream = open_memstream(&buf, &size);
  log.WriteCsv(stream);
  std::fclose(stream);
  std::string csv(buf, size);
  std::free(buf);
  return csv;
}

// One complete simulation trial -> its interval CSV.
std::string RunTrialCsv(uint64_t master_seed, int trial, int intervals) {
  ExperimentSetup setup =
      SmallSetup(common::DeriveStreamSeed(master_seed, static_cast<uint64_t>(trial)));
  std::unique_ptr<core::ClusterSystem> system = BuildSystem(setup);
  system->SetGoal(1, 30.0);
  system->Start();
  system->RunIntervals(intervals);
  return CsvOf(system->metrics());
}

uint64_t Bits(double x) { return std::bit_cast<uint64_t>(x); }

TEST(TrialRunnerTest, ResultsLandInTrialOrder) {
  TrialRunner runner(4);
  const std::vector<int> results =
      runner.Run(16, [](int trial) { return trial * trial; });
  ASSERT_EQ(results.size(), 16u);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(results[static_cast<size_t>(i)], i * i);
}

TEST(TrialRunnerTest, HandlesZeroTrialsAndMoreThreadsThanTrials) {
  TrialRunner runner(8);
  EXPECT_TRUE(runner.Run(0, [](int trial) { return trial; }).empty());
  const std::vector<int> two = runner.Run(2, [](int trial) { return trial + 1; });
  ASSERT_EQ(two.size(), 2u);
  EXPECT_EQ(two[0], 1);
  EXPECT_EQ(two[1], 2);
}

TEST(TrialRunnerTest, PropagatesTrialExceptions) {
  TrialRunner runner(4);
  EXPECT_THROW(runner.Run(8,
                          [](int trial) {
                            if (trial == 5) throw std::runtime_error("trial 5");
                            return trial;
                          }),
               std::runtime_error);
}

TEST(DeterminismTest, SameSetupTwiceGivesIdenticalIntervalCsv) {
  // Two cold runs of the same Setup in the same process: every interval
  // record must serialize to the same bytes. Guards against static caches
  // or other cross-run state in the simulator.
  const std::string first = RunTrialCsv(17, 0, 10);
  const std::string second = RunTrialCsv(17, 0, 10);
  EXPECT_FALSE(first.empty());
  EXPECT_EQ(first, second);
}

TEST(DeterminismTest, TrialCsvsIdenticalAcrossThreadCounts) {
  // Four independent trials run serially and on a 4-thread pool must
  // produce identical per-trial CSVs: trial randomness derives from
  // (master_seed, trial_index) only, never from scheduling order.
  constexpr int kTrials = 4;
  const auto run_all = [](int threads) {
    TrialRunner runner(threads);
    return runner.Run(kTrials, [](int trial) {
      return RunTrialCsv(23, trial, 8);
    });
  };
  const std::vector<std::string> serial = run_all(1);
  const std::vector<std::string> parallel = run_all(4);
  ASSERT_EQ(serial.size(), parallel.size());
  for (int i = 0; i < kTrials; ++i) {
    EXPECT_EQ(serial[static_cast<size_t>(i)], parallel[static_cast<size_t>(i)])
        << "trial " << i << " diverged between 1 and 4 threads";
  }
  // And the trials are genuinely distinct experiments, not copies.
  EXPECT_NE(serial[0], serial[1]);
}

TEST(DeterminismTest, PooledConvergenceStatsBitIdenticalAcrossThreadCounts) {
  // The full Table-2 protocol: calibration + pooled convergence runs. Every
  // field of the pooled result — including the accumulated doubles — must
  // be bit-for-bit identical between a serial and a 4-thread execution.
  const ExperimentSetup base = SmallSetup(31);
  ConvergencePlan plan;
  plan.max_runs = 3;
  plan.intervals_per_run = 20;
  plan.calibration_intervals = 8;

  TrialRunner serial_runner(1);
  TrialRunner parallel_runner(4);
  const ConvergenceResult serial = MeasureConvergence(base, plan, &serial_runner);
  const ConvergenceResult parallel =
      MeasureConvergence(base, plan, &parallel_runner);

  EXPECT_EQ(serial.goals_completed, parallel.goals_completed);
  EXPECT_EQ(serial.censored, parallel.censored);
  EXPECT_EQ(serial.runs_used, parallel.runs_used);
  EXPECT_EQ(Bits(serial.goal_lo), Bits(parallel.goal_lo));
  EXPECT_EQ(Bits(serial.goal_hi), Bits(parallel.goal_hi));
  EXPECT_EQ(serial.iterations.count(), parallel.iterations.count());
  EXPECT_EQ(Bits(serial.iterations.mean()), Bits(parallel.iterations.mean()));
  EXPECT_EQ(Bits(serial.iterations.variance()),
            Bits(parallel.iterations.variance()));
  EXPECT_EQ(Bits(serial.iterations.min()), Bits(parallel.iterations.min()));
  EXPECT_EQ(Bits(serial.iterations.max()), Bits(parallel.iterations.max()));

  // The protocol actually produced samples (the assertions above are not
  // vacuously comparing empty accumulators).
  EXPECT_GT(serial.iterations.count(), 0);
  EXPECT_GT(serial.goals_completed, 0);
}

TEST(DeterminismTest, MeasureConvergenceDefaultsToInlineRunner) {
  // Without a runner the protocol runs inline and must match a 1-thread
  // runner exactly.
  const ExperimentSetup base = SmallSetup(37);
  ConvergencePlan plan;
  plan.max_runs = 2;
  plan.intervals_per_run = 15;
  plan.calibration_intervals = 6;
  TrialRunner one(1);
  const ConvergenceResult inline_result = MeasureConvergence(base, plan);
  const ConvergenceResult runner_result = MeasureConvergence(base, plan, &one);
  EXPECT_EQ(inline_result.iterations.count(), runner_result.iterations.count());
  EXPECT_EQ(Bits(inline_result.iterations.mean()),
            Bits(runner_result.iterations.mean()));
  EXPECT_EQ(inline_result.runs_used, runner_result.runs_used);
  EXPECT_EQ(Bits(inline_result.goal_lo), Bits(runner_result.goal_lo));
  EXPECT_EQ(Bits(inline_result.goal_hi), Bits(runner_result.goal_hi));
}

}  // namespace
}  // namespace memgoal::bench
