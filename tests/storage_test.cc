#include <gtest/gtest.h>

#include "sim/simulator.h"
#include "storage/database.h"
#include "storage/disk.h"
#include "storage/types.h"

namespace memgoal::storage {
namespace {

TEST(DatabaseTest, RoundRobinHomes) {
  Database db(10, 4096, 3);
  EXPECT_EQ(db.HomeOf(0), 0u);
  EXPECT_EQ(db.HomeOf(1), 1u);
  EXPECT_EQ(db.HomeOf(2), 2u);
  EXPECT_EQ(db.HomeOf(3), 0u);
  EXPECT_EQ(db.HomeOf(9), 0u);
}

TEST(DatabaseTest, PagesHomedAtPartitionsEvenly) {
  Database db(10, 4096, 3);
  // 10 pages over 3 nodes: 4, 3, 3.
  EXPECT_EQ(db.PagesHomedAt(0), 4u);
  EXPECT_EQ(db.PagesHomedAt(1), 3u);
  EXPECT_EQ(db.PagesHomedAt(2), 3u);
  uint32_t total = 0;
  for (NodeId i = 0; i < 3; ++i) total += db.PagesHomedAt(i);
  EXPECT_EQ(total, db.num_pages());
}

TEST(DatabaseTest, TotalBytes) {
  Database db(2000, 4096, 3);
  EXPECT_EQ(db.total_bytes(), 2000ull * 4096);
}

TEST(DiskTest, ServiceTimeFromParameters) {
  sim::Simulator simulator;
  Disk::Params params;
  params.avg_seek_ms = 8.0;
  params.rotation_ms = 8.0;
  params.transfer_mb_per_s = 4.096;  // 4 KB in exactly 1 ms
  Disk disk(&simulator, params, 4096, "d");
  EXPECT_NEAR(disk.PageServiceTime(), 8.0 + 4.0 + 1.0, 1e-9);
}

TEST(DiskTest, ReadsAreFcfsSerialized) {
  sim::Simulator simulator;
  Disk disk(&simulator, Disk::Params{}, 4096, "d");
  const double service = disk.PageServiceTime();
  for (int i = 0; i < 3; ++i) simulator.Spawn(disk.ReadPage());
  simulator.Run();
  EXPECT_NEAR(simulator.Now(), 3.0 * service, 1e-9);
  EXPECT_EQ(disk.reads_completed(), 3u);
}

TEST(StorageLevelTest, Names) {
  EXPECT_STREQ(StorageLevelName(StorageLevel::kLocalBuffer), "local-buffer");
  EXPECT_STREQ(StorageLevelName(StorageLevel::kRemoteDisk), "remote-disk");
}

}  // namespace
}  // namespace memgoal::storage
