#include <gtest/gtest.h>

#include "sim/simulator.h"
#include "storage/database.h"
#include "storage/disk.h"
#include "storage/integrity.h"
#include "storage/types.h"

namespace memgoal::storage {
namespace {

TEST(DatabaseTest, RoundRobinHomes) {
  Database db(10, 4096, 3);
  EXPECT_EQ(db.HomeOf(0), 0u);
  EXPECT_EQ(db.HomeOf(1), 1u);
  EXPECT_EQ(db.HomeOf(2), 2u);
  EXPECT_EQ(db.HomeOf(3), 0u);
  EXPECT_EQ(db.HomeOf(9), 0u);
}

TEST(DatabaseTest, PagesHomedAtPartitionsEvenly) {
  Database db(10, 4096, 3);
  // 10 pages over 3 nodes: 4, 3, 3.
  EXPECT_EQ(db.PagesHomedAt(0), 4u);
  EXPECT_EQ(db.PagesHomedAt(1), 3u);
  EXPECT_EQ(db.PagesHomedAt(2), 3u);
  uint32_t total = 0;
  for (NodeId i = 0; i < 3; ++i) total += db.PagesHomedAt(i);
  EXPECT_EQ(total, db.num_pages());
}

TEST(DatabaseTest, TotalBytes) {
  Database db(2000, 4096, 3);
  EXPECT_EQ(db.total_bytes(), 2000ull * 4096);
}

TEST(DiskTest, ServiceTimeFromParameters) {
  sim::Simulator simulator;
  Disk::Params params;
  params.avg_seek_ms = 8.0;
  params.rotation_ms = 8.0;
  params.transfer_mb_per_s = 4.096;  // 4 KB in exactly 1 ms
  Disk disk(&simulator, params, 4096, "d");
  EXPECT_NEAR(disk.PageServiceTime(), 8.0 + 4.0 + 1.0, 1e-9);
}

TEST(DiskTest, ReadsAreFcfsSerialized) {
  sim::Simulator simulator;
  Disk disk(&simulator, Disk::Params{}, 4096, "d");
  const double service = disk.PageServiceTime();
  for (int i = 0; i < 3; ++i) simulator.Spawn(disk.ReadPage());
  simulator.Run();
  EXPECT_NEAR(simulator.Now(), 3.0 * service, 1e-9);
  EXPECT_EQ(disk.reads_completed(), 3u);
}

TEST(IntegrityMapTest, StartsCleanAndTracksMarks) {
  IntegrityMap map(10, 3);
  EXPECT_FALSE(map.any_marked());
  EXPECT_EQ(map.DiskFlaw(4), Flaw::kNone);
  EXPECT_EQ(map.FrameFlaw(2, 4), Flaw::kNone);

  EXPECT_TRUE(map.MarkDisk(4, Flaw::kDetectable));
  EXPECT_TRUE(map.MarkFrame(2, 4, Flaw::kLatent));
  EXPECT_TRUE(map.any_marked());
  EXPECT_EQ(map.marked(), 2u);
  EXPECT_EQ(map.DiskFlaw(4), Flaw::kDetectable);
  EXPECT_EQ(map.FrameFlaw(2, 4), Flaw::kLatent);
  // Disk and frame copies are distinct: the other copies stay clean.
  EXPECT_EQ(map.FrameFlaw(0, 4), Flaw::kNone);
  EXPECT_EQ(map.DiskFlaw(5), Flaw::kNone);
}

TEST(IntegrityMapTest, DoubleMarkKeepsFirstFlaw) {
  IntegrityMap map(4, 2);
  EXPECT_TRUE(map.MarkDisk(1, Flaw::kLatent));
  // A second strike on an already-bad copy changes nothing: the pattern is
  // already bad, and the ledger must not double-count.
  EXPECT_FALSE(map.MarkDisk(1, Flaw::kDetectable));
  EXPECT_EQ(map.DiskFlaw(1), Flaw::kLatent);
  EXPECT_EQ(map.marked(), 1u);
}

TEST(IntegrityMapTest, ClearRemovesExactlyTheMark) {
  IntegrityMap map(4, 2);
  EXPECT_FALSE(map.ClearDisk(0));  // nothing marked
  EXPECT_TRUE(map.MarkDisk(0, Flaw::kDetectable));
  EXPECT_TRUE(map.MarkFrame(1, 0, Flaw::kDetectable));
  EXPECT_TRUE(map.ClearDisk(0));
  EXPECT_FALSE(map.ClearDisk(0));
  // The frame mark survives a disk-copy rewrite.
  EXPECT_EQ(map.FrameFlaw(1, 0), Flaw::kDetectable);
  EXPECT_TRUE(map.ClearFrame(1, 0));
  EXPECT_FALSE(map.any_marked());
}

TEST(IntegrityMapTest, ClearNodeFramesWipesOneNodeOnly) {
  IntegrityMap map(6, 3);
  EXPECT_TRUE(map.MarkFrame(1, 0, Flaw::kDetectable));
  EXPECT_TRUE(map.MarkFrame(1, 3, Flaw::kLatent));
  EXPECT_TRUE(map.MarkFrame(2, 3, Flaw::kDetectable));
  EXPECT_TRUE(map.MarkDisk(3, Flaw::kDetectable));

  EXPECT_EQ(map.ClearNodeFrames(1), 2u);
  EXPECT_EQ(map.ClearNodeFrames(1), 0u);
  EXPECT_EQ(map.FrameFlaw(2, 3), Flaw::kDetectable);
  EXPECT_EQ(map.DiskFlaw(3), Flaw::kDetectable);
  EXPECT_EQ(map.marked(), 2u);
}

TEST(IntegrityMapTest, FlawNames) {
  EXPECT_STREQ(FlawName(Flaw::kNone), "none");
  EXPECT_STREQ(FlawName(Flaw::kDetectable), "detectable");
  EXPECT_STREQ(FlawName(Flaw::kLatent), "latent");
}

TEST(StorageLevelTest, Names) {
  EXPECT_STREQ(StorageLevelName(StorageLevel::kLocalBuffer), "local-buffer");
  EXPECT_STREQ(StorageLevelName(StorageLevel::kRemoteDisk), "remote-disk");
}

}  // namespace
}  // namespace memgoal::storage
