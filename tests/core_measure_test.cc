#include "core/measure.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace memgoal::core {
namespace {

// Fills a 3-node store with 4 affinely independent points on a known plane.
void FillWithPlane(MeasureStore* store, const la::Vector& grad_k,
                   double intercept_k, const la::Vector& grad_0,
                   double intercept_0) {
  const std::vector<la::Vector> allocations = {
      {0.0, 0.0, 0.0}, {100.0, 0.0, 0.0}, {0.0, 100.0, 0.0},
      {0.0, 0.0, 100.0}};
  for (const la::Vector& a : allocations) {
    store->Observe(a, la::Dot(grad_k, a) + intercept_k,
                   la::Dot(grad_0, a) + intercept_0);
  }
}

TEST(MeasureStoreTest, NotReadyUntilNPlusOnePoints) {
  MeasureStore store(3);
  EXPECT_FALSE(store.ready());
  EXPECT_FALSE(store.FitPlanes().has_value());
  store.Observe({0, 0, 0}, 5.0, 1.0);
  store.Observe({1, 0, 0}, 4.0, 1.1);
  store.Observe({0, 1, 0}, 4.5, 1.2);
  EXPECT_FALSE(store.ready());
  store.Observe({0, 0, 1}, 4.2, 1.3);
  EXPECT_TRUE(store.ready());
}

TEST(MeasureStoreTest, ExactPlaneRecovery) {
  MeasureStore store(3);
  const la::Vector grad_k = {-0.01, -0.02, -0.005};
  const la::Vector grad_0 = {0.004, 0.008, 0.002};
  FillWithPlane(&store, grad_k, 5.0, grad_0, 1.0);
  ASSERT_TRUE(store.ready());
  auto planes = store.FitPlanes();
  ASSERT_TRUE(planes.has_value());
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_NEAR(planes->grad_k[i], grad_k[i], 1e-9);
    EXPECT_NEAR(planes->grad_0[i], grad_0[i], 1e-9);
  }
  EXPECT_NEAR(planes->intercept_k, 5.0, 1e-7);
  EXPECT_NEAR(planes->intercept_0, 1.0, 1e-7);
}

TEST(MeasureStoreTest, SameAllocationRefreshesPoint) {
  MeasureStore store(2);
  store.Observe({0, 0}, 5.0, 1.0);
  store.Observe({10, 0}, 4.0, 1.0);
  store.Observe({0, 10}, 3.0, 1.0);
  ASSERT_TRUE(store.ready());
  EXPECT_EQ(store.size(), 3u);
  // Re-observing an existing allocation must not add a point.
  store.Observe({10, 0}, 4.5, 1.2);
  EXPECT_EQ(store.size(), 3u);
  auto planes = store.FitPlanes();
  ASSERT_TRUE(planes.has_value());
  // The refreshed value participates in the fit: rt at (10,0) is now 4.5.
  EXPECT_NEAR(la::Dot(planes->grad_k, {10, 0}) + planes->intercept_k, 4.5,
              1e-9);
}

TEST(MeasureStoreTest, ReplacementKeepsIndependence) {
  MeasureStore store(2);
  store.Observe({0, 0}, 5.0, 1.0);
  store.Observe({10, 0}, 4.0, 1.0);
  store.Observe({0, 10}, 3.0, 1.0);
  ASSERT_TRUE(store.ready());
  // New independent point replaces the oldest.
  store.Observe({10, 10}, 2.0, 1.0);
  EXPECT_TRUE(store.ready());
  EXPECT_EQ(store.size(), 3u);
  auto planes = store.FitPlanes();
  ASSERT_TRUE(planes.has_value());
  // Plane through (10,0):4, (0,10):3, (10,10):2 -> grad=(-0.1,-0.2), c=5.
  EXPECT_NEAR(planes->grad_k[0], -0.1, 1e-9);
  EXPECT_NEAR(planes->grad_k[1], -0.2, 1e-9);
  EXPECT_NEAR(planes->intercept_k, 5.0, 1e-7);
}

TEST(MeasureStoreTest, DependentCandidateSkipsBadSlot) {
  MeasureStore store(2);
  store.Observe({0, 0}, 5.0, 1.0);
  store.Observe({10, 0}, 4.0, 1.0);
  store.Observe({0, 10}, 3.0, 1.0);
  ASSERT_TRUE(store.ready());
  // (5, 0) is affinely dependent on {(0,0), (10,0)}: replacing the oldest
  // point (0,0) keeps independence, which the store should find.
  store.Observe({5, 0}, 4.5, 1.0);
  EXPECT_TRUE(store.ready());
  EXPECT_EQ(store.rejected_points(), 0u);
}

TEST(MeasureStoreTest, FullyDependentCandidateRejected) {
  MeasureStore store(1);
  store.Observe({0}, 5.0, 1.0);
  store.Observe({10}, 4.0, 1.0);
  ASSERT_TRUE(store.ready());
  // With n=1 any new scalar point is independent of one retained point,
  // so rejection requires a same-point... use the same allocation as both:
  // not constructible here; instead verify replacement works repeatedly.
  for (int i = 2; i < 10; ++i) {
    store.Observe({10.0 * i}, 4.0 - i * 0.1, 1.0);
    EXPECT_TRUE(store.ready());
  }
}

TEST(MeasureStoreTest, ManyNodesRandomizedRoundTrip) {
  const size_t n = 8;
  common::Rng rng(99);
  MeasureStore store(n);
  la::Vector grad_k(n), grad_0(n);
  for (size_t i = 0; i < n; ++i) {
    grad_k[i] = -rng.Uniform(0.001, 0.01);
    grad_0[i] = rng.Uniform(0.001, 0.01);
  }
  // Feed 40 random points on the plane; store keeps n+1 of them.
  for (int t = 0; t < 40; ++t) {
    la::Vector a(n);
    for (double& v : a) v = rng.Uniform(0.0, 1000.0);
    store.Observe(a, la::Dot(grad_k, a) + 7.0, la::Dot(grad_0, a) + 2.0);
  }
  ASSERT_TRUE(store.ready());
  auto planes = store.FitPlanes();
  ASSERT_TRUE(planes.has_value());
  for (size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(planes->grad_k[i], grad_k[i], 1e-6);
    EXPECT_NEAR(planes->grad_0[i], grad_0[i], 1e-6);
  }
  EXPECT_NEAR(planes->intercept_k, 7.0, 1e-4);
}

TEST(MeasureStoreTest, FitNodePlanesRecoversPerNodePlanes) {
  const size_t n = 3;
  MeasureStore store(n);
  // Per-node planes: RT_i = c_i + g_i . LM (with cross terms).
  const std::vector<la::Vector> grads = {
      {-0.01, -0.001, -0.001}, {-0.002, -0.02, -0.003}, {0.0, -0.004, -0.03}};
  const la::Vector intercepts = {5.0, 7.0, 9.0};
  const std::vector<la::Vector> allocations = {
      {0, 0, 0}, {100, 0, 0}, {0, 100, 0}, {0, 0, 100}};
  for (const la::Vector& a : allocations) {
    la::Vector per_node(n);
    double mean = 0.0;
    for (size_t i = 0; i < n; ++i) {
      per_node[i] = la::Dot(grads[i], a) + intercepts[i];
      mean += per_node[i] / 3.0;
    }
    store.ObserveDetailed(a, mean, 1.0, per_node);
  }
  ASSERT_TRUE(store.ready());
  auto planes = store.FitNodePlanes();
  ASSERT_TRUE(planes.has_value());
  ASSERT_EQ(planes->size(), n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n; ++j) {
      EXPECT_NEAR((*planes)[i].grad[j], grads[i][j], 1e-9);
    }
    EXPECT_NEAR((*planes)[i].intercept, intercepts[i], 1e-7);
  }
}

TEST(MeasureStoreTest, FitNodePlanesRequiresPerNodeData) {
  MeasureStore store(2);
  store.Observe({0, 0}, 5.0, 1.0);
  store.Observe({10, 0}, 4.0, 1.0);
  store.Observe({0, 10}, 3.0, 1.0);
  ASSERT_TRUE(store.ready());
  EXPECT_TRUE(store.FitPlanes().has_value());
  // Points recorded without per-node vectors: no per-node fit.
  EXPECT_FALSE(store.FitNodePlanes().has_value());
}

TEST(MeasureStoreTest, NoisyMeasurementsStillFitApproximately) {
  const size_t n = 3;
  common::Rng rng(5);
  MeasureStore store(n);
  const la::Vector grad = {-0.002, -0.003, -0.001};
  for (int t = 0; t < 20; ++t) {
    la::Vector a(n);
    for (double& v : a) v = rng.Uniform(0.0, 2000.0);
    const double noise = rng.Uniform(-0.01, 0.01);
    store.Observe(a, la::Dot(grad, a) + 6.0 + noise, 1.0);
  }
  ASSERT_TRUE(store.ready());
  auto planes = store.FitPlanes();
  ASSERT_TRUE(planes.has_value());
  for (size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(planes->grad_k[i], grad[i], 5e-4);
  }
}

// Seeds the outlier windows with kOutlierMinSamples in-regime measurements
// (slightly varied so the MAD is nonzero) at distinct allocations.
void WarmOutlierWindow(MeasureStore* store) {
  for (int i = 0; i < static_cast<int>(MeasureStore::kOutlierMinSamples);
       ++i) {
    // Alternate the axes so the points stay affinely independent.
    const la::Vector allocation = (i % 2 == 0)
                                      ? la::Vector{100.0 * (i + 1), 0.0}
                                      : la::Vector{0.0, 100.0 * (i + 1)};
    store->Observe(allocation, 5.0 + 0.05 * (i % 4), 1.0 + 0.02 * (i % 3));
  }
}

TEST(MeasureStoreTest, OutlierMeasurementRejected) {
  MeasureStore store(2);
  WarmOutlierWindow(&store);
  ASSERT_TRUE(store.ready());
  EXPECT_EQ(store.outlier_rejections(), 0u);

  // A gray-failure excursion: rt far outside the recent regime. The
  // measurement must not reach the point set.
  const uint64_t rejected_before = store.rejected_points();
  store.Observe({5000.0, 5000.0}, 250.0, 1.0);
  EXPECT_EQ(store.outlier_rejections(), 1u);
  EXPECT_EQ(store.rejected_points(), rejected_before);
  // The no-goal response time alone can also trip the filter.
  store.Observe({6000.0, 6000.0}, 5.0, 80.0);
  EXPECT_EQ(store.outlier_rejections(), 2u);

  // In-regime measurements keep flowing.
  store.Observe({7000.0, 7000.0}, 5.1, 1.01);
  EXPECT_EQ(store.outlier_rejections(), 2u);
}

TEST(MeasureStoreTest, NoRejectionBeforeMinSamples) {
  MeasureStore store(2);
  store.Observe({0.0, 0.0}, 5.0, 1.0);
  // Early windows are too noisy to judge against: even a wild value passes.
  store.Observe({100.0, 0.0}, 500.0, 1.0);
  EXPECT_EQ(store.outlier_rejections(), 0u);
  EXPECT_EQ(store.size(), 2u);
}

TEST(MeasureStoreTest, SustainedLevelShiftReCentersWindow) {
  MeasureStore store(2);
  WarmOutlierWindow(&store);

  // The workload genuinely moved to a 10x slower regime. The first samples
  // are rejected, but rejected samples still enter the window, so the
  // median re-centers and later samples must be accepted.
  uint64_t last_rejections = store.outlier_rejections();
  bool accepted_again = false;
  for (int i = 0; i < static_cast<int>(MeasureStore::kOutlierWindow); ++i) {
    store.Observe({1000.0 + 10.0 * i, 0.0}, 50.0 + 0.1 * (i % 4), 1.0);
    if (store.outlier_rejections() == last_rejections) {
      accepted_again = true;
      break;
    }
    last_rejections = store.outlier_rejections();
  }
  EXPECT_TRUE(accepted_again);
  EXPECT_GT(store.outlier_rejections(), 0u);
}

TEST(MeasureStoreTest, IllConditionedReplacementRollsBackAndTriesNextSlot) {
  MeasureStore store(2);
  store.Observe({0.0, 0.0}, 5.0, 1.0);
  store.Observe({1e8, 0.0}, 4.0, 1.0);
  store.Observe({0.0, 1e8}, 3.0, 1.0);
  ASSERT_TRUE(store.ready());
  EXPECT_EQ(store.condition_resets(), 0u);

  // Replacing the oldest point (0,0) with (1e8, 10) passes the denominator
  // probe (|det ratio| = 1e-7) but leaves two rows differing by ~1e-7
  // relative — condition far past the limit. The pre-commit guard rolls
  // that replacement back and tries the next-oldest slot, (1e8, 0), whose
  // replacement is well-conditioned and commits. No reset, nothing lost.
  EXPECT_EQ(store.Observe({1e8, 10.0}, 4.5, 1.0),
            MeasureStore::ObserveOutcome::kAccepted);
  EXPECT_EQ(store.condition_resets(), 0u);
  EXPECT_EQ(store.rejected_points(), 0u);
  EXPECT_TRUE(store.ready());
  EXPECT_EQ(store.size(), 3u);
  auto planes = store.FitPlanes();
  ASSERT_TRUE(planes.has_value());
  // The surviving set {(0,0), (1e8,10), (0,1e8)} interpolates exactly.
  EXPECT_NEAR(la::Dot(planes->grad_k, {1e8, 10.0}) + planes->intercept_k,
              4.5, 1e-6);
  EXPECT_NEAR(planes->intercept_k, 5.0, 1e-6);
}

TEST(MeasureStoreTest, MarginalCandidateRejectedWithStoreIntact) {
  // kD is sized so a unit-ish gap between two scalar measure points sits
  // just inside the condition limit: cond({D+1.1, D}) ~ 5.8e11 < 1e12 but
  // cond of any 0.55 gap ~ 1.16e12 > 1e12.
  constexpr double kD = 565685.0;
  MeasureStore store(1);
  store.Observe({kD + 100.0}, 10.0, 1.0);
  store.Observe({kD}, 10.2, 1.0);
  ASSERT_TRUE(store.ready());
  // Tighten the basis to {D+1.1, D}, still within the limit.
  EXPECT_EQ(store.Observe({kD + 1.1}, 10.1, 1.0),
            MeasureStore::ObserveOutcome::kAccepted);
  ASSERT_EQ(store.rejected_points(), 0u);
  ASSERT_EQ(store.condition_resets(), 0u);

  // kD + 0.55 sits 0.55 from both retained points — outside the 0.5
  // same-allocation tolerance, so it is a genuinely new point — yet
  // replacing either one narrows the gap to 0.55 and pushes the condition
  // past the limit. Every slot is rolled back; the candidate is counted as
  // rejected and the previous basis survives untouched.
  EXPECT_EQ(store.Observe({kD + 0.55}, 10.15, 1.0),
            MeasureStore::ObserveOutcome::kRejectedDependent);
  EXPECT_EQ(store.rejected_points(), 1u);
  EXPECT_EQ(store.condition_resets(), 0u);
  EXPECT_TRUE(store.ready());
  EXPECT_EQ(store.size(), 2u);
  auto planes = store.FitPlanes();
  ASSERT_TRUE(planes.has_value());
  EXPECT_NEAR(la::Dot(planes->grad_k, {kD}) + planes->intercept_k, 10.2,
              1e-6);
}

TEST(MeasureStoreTest, ActiveSetShrinkThenRegrowRestoresPerNodeFits) {
  const size_t n = 3;
  MeasureStore store(n);
  const auto observe_on_plane = [&store, n](const la::Vector& a) {
    la::Vector per_node(n);
    double mean = 0.0;
    for (size_t i = 0; i < n; ++i) {
      per_node[i] = 4.0 + static_cast<double>(i) - 0.001 * a[i];
      mean += per_node[i] / static_cast<double>(n);
    }
    return store.ObserveDetailed(a, mean, 1.0, per_node);
  };
  observe_on_plane({0, 0, 0});
  observe_on_plane({100, 0, 0});
  observe_on_plane({0, 100, 0});
  observe_on_plane({0, 0, 100});
  ASSERT_TRUE(store.ready());
  ASSERT_TRUE(store.FitNodePlanes().has_value());

  // Node 1 dies: the active set shrinks and every retained point (which
  // described a 3-node cluster) is invalidated.
  store.SetActiveNodes({0, 2});
  EXPECT_FALSE(store.ready());
  EXPECT_EQ(store.size(), 0u);

  // Over the reduced set the basis is 3-dimensional: ready after 3 points.
  observe_on_plane({0, 0, 0});
  observe_on_plane({100, 0, 0});
  observe_on_plane({0, 0, 100});
  ASSERT_TRUE(store.ready());
  auto reduced = store.FitPlanes();
  ASSERT_TRUE(reduced.has_value());
  // The dead node's gradient is pinned to zero: no allocation there can
  // move the response time.
  EXPECT_EQ(reduced->grad_k[1], 0.0);
  EXPECT_NEAR(reduced->grad_k[0], -0.001 / 3.0, 1e-9);
  // Per-node fits stay off during the outage even though per-node data is
  // present (the §8 objective needs every node alive).
  EXPECT_FALSE(store.FitNodePlanes().has_value());

  // Node 1 recovers: regrow, re-accumulate, and the per-node fit returns.
  store.SetActiveNodes({0, 1, 2});
  EXPECT_FALSE(store.ready());
  observe_on_plane({0, 0, 0});
  observe_on_plane({200, 0, 0});
  observe_on_plane({0, 200, 0});
  observe_on_plane({0, 0, 200});
  ASSERT_TRUE(store.ready());
  auto per_node_planes = store.FitNodePlanes();
  ASSERT_TRUE(per_node_planes.has_value());
  ASSERT_EQ(per_node_planes->size(), n);
  for (size_t i = 0; i < n; ++i) {
    EXPECT_NEAR((*per_node_planes)[i].intercept, 4.0 + static_cast<double>(i),
                1e-7);
    EXPECT_NEAR((*per_node_planes)[i].grad[i], -0.001, 1e-9);
  }
}

TEST(MeasureStoreTest, ResetClearsOutlierWindows) {
  MeasureStore store(2);
  WarmOutlierWindow(&store);
  store.Reset();
  // Post-reset regimes are judged fresh: a value that would have been an
  // outlier against the stale window is accepted.
  store.Observe({0.0, 0.0}, 500.0, 1.0);
  EXPECT_EQ(store.outlier_rejections(), 0u);
  EXPECT_EQ(store.size(), 1u);
}

}  // namespace
}  // namespace memgoal::core
