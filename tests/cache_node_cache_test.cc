#include "cache/node_cache.h"

#include <gtest/gtest.h>

#include "cache/replacement.h"

namespace memgoal::cache {
namespace {

constexpr uint32_t kPage = 4096;
constexpr uint64_t kTotal = 8 * kPage;

NodeCache MakeCache() {
  return NodeCache(/*node=*/0, kTotal, kPage,
                   [](ClassId) { return MakeLruPolicy(); });
}

TEST(NodeCacheTest, NoGoalPoolStartsWithFullBudget) {
  NodeCache cache = MakeCache();
  EXPECT_EQ(cache.nogoal_bytes(), kTotal);
  EXPECT_EQ(cache.total_dedicated_bytes(), 0u);
}

TEST(NodeCacheTest, MissThenFetchIntoNoGoalPool) {
  NodeCache cache = MakeCache();
  auto access = cache.OnAccess(kNoGoalClass, 1);
  EXPECT_FALSE(access.hit);
  auto insert = cache.InsertFetched(kNoGoalClass, 1);
  EXPECT_TRUE(insert.inserted);
  EXPECT_TRUE(cache.IsCached(1));
  EXPECT_EQ(cache.LocationOf(1), kNoGoalClass);
  EXPECT_TRUE(cache.OnAccess(kNoGoalClass, 1).hit);
}

TEST(NodeCacheTest, GoalClassWithoutPoolBytesFallsBackToNoGoal) {
  NodeCache cache = MakeCache();
  cache.EnsureDedicatedPool(1);  // 0 bytes
  auto insert = cache.InsertFetched(1, 5);
  EXPECT_TRUE(insert.inserted);
  EXPECT_EQ(cache.LocationOf(5), kNoGoalClass);
}

TEST(NodeCacheTest, DedicatedInsertAfterAllocation) {
  NodeCache cache = MakeCache();
  std::vector<PageId> dropped;
  const uint64_t granted = cache.SetDedicatedBytes(1, 2 * kPage, &dropped);
  EXPECT_EQ(granted, 2u * kPage);
  EXPECT_EQ(cache.nogoal_bytes(), kTotal - 2 * kPage);
  auto insert = cache.InsertFetched(1, 5);
  EXPECT_TRUE(insert.inserted);
  EXPECT_EQ(cache.LocationOf(5), 1u);
}

TEST(NodeCacheTest, PromotionFromNoGoalPool) {
  NodeCache cache = MakeCache();
  cache.InsertFetched(kNoGoalClass, 7);
  std::vector<PageId> dropped;
  cache.SetDedicatedBytes(1, 2 * kPage, &dropped);
  // Class-1 access promotes the page out of the no-goal pool (§6).
  auto access = cache.OnAccess(1, 7);
  EXPECT_TRUE(access.hit);
  EXPECT_EQ(cache.LocationOf(7), 1u);
}

TEST(NodeCacheTest, NoPromotionBetweenDedicatedPools) {
  NodeCache cache = MakeCache();
  std::vector<PageId> dropped;
  cache.SetDedicatedBytes(1, 2 * kPage, &dropped);
  cache.SetDedicatedBytes(2, 2 * kPage, &dropped);
  cache.InsertFetched(1, 9);
  ASSERT_EQ(cache.LocationOf(9), 1u);
  // Class 2 hits the page where it is; no movement (§6).
  auto access = cache.OnAccess(2, 9);
  EXPECT_TRUE(access.hit);
  EXPECT_EQ(cache.LocationOf(9), 1u);
}

TEST(NodeCacheTest, NoGoalAccessHitsDedicatedPage) {
  NodeCache cache = MakeCache();
  std::vector<PageId> dropped;
  cache.SetDedicatedBytes(1, 2 * kPage, &dropped);
  cache.InsertFetched(1, 9);
  auto access = cache.OnAccess(kNoGoalClass, 9);
  EXPECT_TRUE(access.hit);
  EXPECT_EQ(cache.LocationOf(9), 1u);
}

TEST(NodeCacheTest, DedicatedEvictionDropsCompletely) {
  NodeCache cache = MakeCache();
  std::vector<PageId> dropped;
  cache.SetDedicatedBytes(1, kPage, &dropped);  // one frame
  cache.InsertFetched(1, 1);
  auto insert = cache.InsertFetched(1, 2);
  EXPECT_TRUE(insert.inserted);
  ASSERT_EQ(insert.dropped.size(), 1u);
  EXPECT_EQ(insert.dropped[0], 1u);
  // Dropped, not demoted: page 1 gone from the node entirely.
  EXPECT_FALSE(cache.IsCached(1));
}

TEST(NodeCacheTest, GrowingDedicatedSqueezesNoGoal) {
  NodeCache cache = MakeCache();
  // Fill the no-goal pool.
  for (PageId p = 0; p < 8; ++p) cache.InsertFetched(kNoGoalClass, p);
  EXPECT_EQ(cache.resident_pages(), 8u);
  std::vector<PageId> dropped;
  cache.SetDedicatedBytes(1, 3 * kPage, &dropped);
  EXPECT_EQ(dropped.size(), 3u);
  EXPECT_EQ(cache.resident_pages(), 5u);
}

TEST(NodeCacheTest, ShrinkingDedicatedReturnsBytesToNoGoal) {
  NodeCache cache = MakeCache();
  std::vector<PageId> dropped;
  cache.SetDedicatedBytes(1, 4 * kPage, &dropped);
  cache.InsertFetched(1, 1);
  cache.InsertFetched(1, 2);
  dropped.clear();
  cache.SetDedicatedBytes(1, kPage, &dropped);
  EXPECT_EQ(dropped.size(), 1u);
  EXPECT_EQ(cache.nogoal_bytes(), kTotal - kPage);
}

TEST(NodeCacheTest, AllocationClampedToAvailable) {
  NodeCache cache = MakeCache();
  std::vector<PageId> dropped;
  cache.SetDedicatedBytes(1, 6 * kPage, &dropped);
  // Class 2 asks for more than remains: clamped (§5e).
  const uint64_t granted = cache.SetDedicatedBytes(2, 4 * kPage, &dropped);
  EXPECT_EQ(granted, 2u * kPage);
  EXPECT_EQ(cache.AvailableForClass(2), 2u * kPage);
  // Class 1 could still grow into its own current allocation.
  EXPECT_EQ(cache.AvailableForClass(1), 6u * kPage);
  EXPECT_EQ(cache.nogoal_bytes(), 0u);
}

TEST(NodeCacheTest, PageResidesInExactlyOnePool) {
  NodeCache cache = MakeCache();
  std::vector<PageId> dropped;
  cache.SetDedicatedBytes(1, 2 * kPage, &dropped);
  cache.InsertFetched(kNoGoalClass, 3);
  cache.OnAccess(1, 3);  // promote
  EXPECT_EQ(cache.LocationOf(3), 1u);
  EXPECT_EQ(cache.resident_pages(), 1u);
  // A second class-1 access is a plain dedicated-pool hit.
  EXPECT_TRUE(cache.OnAccess(1, 3).hit);
  EXPECT_EQ(cache.resident_pages(), 1u);
}

TEST(NodeCacheTest, ZeroFramePromotionLeavesPageInNoGoal) {
  NodeCache cache = MakeCache();
  cache.EnsureDedicatedPool(1);  // zero bytes
  cache.InsertFetched(kNoGoalClass, 4);
  auto access = cache.OnAccess(1, 4);
  EXPECT_TRUE(access.hit);
  EXPECT_EQ(cache.LocationOf(4), kNoGoalClass);
}

}  // namespace
}  // namespace memgoal::cache
