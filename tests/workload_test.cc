#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/stats.h"
#include "workload/page_selector.h"
#include "workload/spec.h"
#include "workload/zipf.h"

namespace memgoal::workload {
namespace {

TEST(ZipfTest, ZeroSkewIsUniform) {
  ZipfianGenerator zipf(100, 0.0);
  for (uint32_t r = 0; r < 100; ++r) {
    EXPECT_NEAR(zipf.ProbabilityOfRank(r), 0.01, 1e-12);
  }
}

TEST(ZipfTest, ProbabilitiesSumToOne) {
  for (double theta : {0.0, 0.25, 0.5, 0.75, 1.0}) {
    ZipfianGenerator zipf(500, theta);
    double sum = 0.0;
    for (uint32_t r = 0; r < 500; ++r) sum += zipf.ProbabilityOfRank(r);
    EXPECT_NEAR(sum, 1.0, 1e-9) << "theta=" << theta;
  }
}

TEST(ZipfTest, SkewMakesLowRanksHotter) {
  ZipfianGenerator zipf(100, 1.0);
  EXPECT_GT(zipf.ProbabilityOfRank(0), zipf.ProbabilityOfRank(1));
  EXPECT_GT(zipf.ProbabilityOfRank(1), zipf.ProbabilityOfRank(50));
  // Rank-0:rank-9 frequency ratio is 10 for theta=1.
  EXPECT_NEAR(zipf.ProbabilityOfRank(0) / zipf.ProbabilityOfRank(9), 10.0,
              1e-9);
}

TEST(ZipfTest, SampleMatchesTheory) {
  common::Rng rng(42);
  ZipfianGenerator zipf(50, 0.8);
  std::vector<int> counts(50, 0);
  const int n = 200000;
  for (int i = 0; i < n; ++i) ++counts[zipf.Sample(&rng)];
  for (uint32_t r : {0u, 1u, 10u, 49u}) {
    const double expected = zipf.ProbabilityOfRank(r);
    const double observed = static_cast<double>(counts[r]) / n;
    EXPECT_NEAR(observed, expected, 5e-3) << "rank " << r;
  }
}

TEST(ZipfTest, SingleItem) {
  common::Rng rng(1);
  ZipfianGenerator zipf(1, 1.0);
  EXPECT_EQ(zipf.Sample(&rng), 0u);
  EXPECT_DOUBLE_EQ(zipf.ProbabilityOfRank(0), 1.0);
}

TEST(PageSelectorTest, StaysInRange) {
  ClassSpec spec;
  spec.pages = {100, 200};
  spec.zipf_skew = 0.5;
  PageSelector selector(spec);
  common::Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const PageId page = selector.Sample(&rng);
    EXPECT_GE(page, 100u);
    EXPECT_LT(page, 200u);
  }
}

TEST(PageSelectorTest, HotPageIsRangeStart) {
  ClassSpec spec;
  spec.pages = {100, 200};
  spec.zipf_skew = 1.0;
  PageSelector selector(spec);
  EXPECT_GT(selector.ProbabilityOf(100), selector.ProbabilityOf(101));
  EXPECT_DOUBLE_EQ(selector.ProbabilityOf(99), 0.0);
  EXPECT_DOUBLE_EQ(selector.ProbabilityOf(200), 0.0);
}

TEST(PageSelectorTest, SharingMixture) {
  ClassSpec spec;
  spec.pages = {0, 100};
  spec.zipf_skew = 0.0;
  spec.shared_pages = PageRange{100, 200};
  spec.share_prob = 0.3;
  spec.shared_skew = 0.0;
  PageSelector selector(spec);

  common::Rng rng(11);
  int shared_draws = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    if (selector.Sample(&rng) >= 100) ++shared_draws;
  }
  EXPECT_NEAR(static_cast<double>(shared_draws) / n, 0.3, 0.01);
  // Probability mass: own range carries 0.7, shared 0.3.
  EXPECT_NEAR(selector.ProbabilityOf(0), 0.7 / 100, 1e-12);
  EXPECT_NEAR(selector.ProbabilityOf(150), 0.3 / 100, 1e-12);
}

TEST(PageSelectorTest, OverlappingSharedRangeAddsMass) {
  // Shared range overlapping the own range: probabilities add.
  ClassSpec spec;
  spec.pages = {0, 100};
  spec.zipf_skew = 0.0;
  spec.shared_pages = PageRange{50, 150};
  spec.share_prob = 0.5;
  spec.shared_skew = 0.0;
  PageSelector selector(spec);
  EXPECT_NEAR(selector.ProbabilityOf(75), 0.5 / 100 + 0.5 / 100, 1e-12);
  EXPECT_NEAR(selector.ProbabilityOf(25), 0.5 / 100, 1e-12);
  EXPECT_NEAR(selector.ProbabilityOf(125), 0.5 / 100, 1e-12);
}

TEST(PageSelectorTest, FullSharingMirrorsOtherClass) {
  ClassSpec spec;
  spec.pages = {0, 100};
  spec.shared_pages = PageRange{200, 300};
  spec.share_prob = 1.0;
  spec.shared_skew = 1.0;
  PageSelector selector(spec);
  common::Rng rng(3);
  for (int i = 0; i < 200; ++i) {
    EXPECT_GE(selector.Sample(&rng), 200u);
  }
}

}  // namespace
}  // namespace memgoal::workload
