#include "core/tolerance.h"

#include <gtest/gtest.h>

namespace memgoal::core {
namespace {

TEST(ToleranceTest, FloorAppliesWithoutHistory) {
  ToleranceEstimator estimator(0.05, 2.576);
  EXPECT_DOUBLE_EQ(estimator.Tolerance(10.0), 0.5);
  estimator.Observe(9.0);
  EXPECT_DOUBLE_EQ(estimator.Tolerance(10.0), 0.5);  // one point: floor
}

TEST(ToleranceTest, VarianceWidensBand) {
  ToleranceEstimator estimator(0.01, 2.576);
  // Noisy observations: stderr-based band exceeds the 1% floor.
  for (double rt : {5.0, 9.0, 4.0, 10.0, 6.0}) estimator.Observe(rt);
  EXPECT_GT(estimator.Tolerance(10.0), 0.1);
}

TEST(ToleranceTest, SteadyObservationsShrinkTowardsFloor) {
  ToleranceEstimator estimator(0.05, 2.576);
  for (int i = 0; i < 100; ++i) estimator.Observe(8.0 + (i % 2) * 1e-6);
  EXPECT_DOUBLE_EQ(estimator.Tolerance(10.0), 0.5);  // floor dominates
}

TEST(ToleranceTest, GoalChangeResetsHistory) {
  ToleranceEstimator estimator(0.01, 2.576);
  for (double rt : {5.0, 9.0, 4.0, 10.0}) estimator.Observe(rt);
  const double wide = estimator.Tolerance(10.0);
  EXPECT_GT(wide, 0.1);
  estimator.OnGoalChanged();
  EXPECT_EQ(estimator.observations(), 0);
  EXPECT_DOUBLE_EQ(estimator.Tolerance(10.0), 0.1);  // back to floor
}

TEST(ToleranceTest, BandIsCappedRelativeToGoal) {
  ToleranceEstimator estimator(0.01, 2.576);
  for (double rt : {1.0, 500.0, 3.0, 800.0}) estimator.Observe(rt);
  EXPECT_LE(estimator.Tolerance(10.0),
            ToleranceEstimator::kRelCap * 10.0 + 1e-12);
}

TEST(ToleranceTest, ColdStartOutlierAgesOutOfWindow) {
  ToleranceEstimator estimator(0.01, 2.576);
  estimator.Observe(500.0);  // cold-cache transient
  for (int i = 0; i < 3; ++i) estimator.Observe(8.0);
  const double early = estimator.Tolerance(10.0);
  // Push the outlier out of the kWindow most recent observations.
  for (size_t i = 0; i < ToleranceEstimator::kWindow; ++i) {
    estimator.Observe(8.0);
  }
  const double late = estimator.Tolerance(10.0);
  EXPECT_LT(late, early);
  EXPECT_DOUBLE_EQ(late, 0.1);  // back to the floor
}

TEST(ToleranceTest, ScalesWithGoal) {
  ToleranceEstimator estimator(0.05, 2.576);
  EXPECT_DOUBLE_EQ(estimator.Tolerance(2.0), 0.1);
  EXPECT_DOUBLE_EQ(estimator.Tolerance(20.0), 1.0);
}

}  // namespace
}  // namespace memgoal::core
