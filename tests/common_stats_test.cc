#include "common/stats.h"

#include <cmath>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace memgoal::common {
namespace {

TEST(RunningStatsTest, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.std_error(), 0.0);
}

TEST(RunningStatsTest, SingleValue) {
  RunningStats s;
  s.Add(42.0);
  EXPECT_EQ(s.count(), 1);
  EXPECT_DOUBLE_EQ(s.mean(), 42.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 42.0);
  EXPECT_DOUBLE_EQ(s.max(), 42.0);
}

TEST(RunningStatsTest, KnownMeanAndVariance) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.Add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sample variance with n-1: sum of squared deviations = 32, n-1 = 7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStatsTest, MergeMatchesSequential) {
  Rng rng(7);
  RunningStats all, a, b;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.Uniform(-5.0, 5.0);
    all.Add(x);
    (i % 3 == 0 ? a : b).Add(x);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-10);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-8);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStatsTest, MergeWithEmpty) {
  RunningStats a, b;
  a.Add(1.0);
  a.Add(3.0);
  a.Merge(b);
  EXPECT_EQ(a.count(), 2);
  b.Merge(a);
  EXPECT_EQ(b.count(), 2);
  EXPECT_DOUBLE_EQ(b.mean(), 2.0);
}

TEST(ConfidenceTest, FewSamplesIsInfinite) {
  RunningStats s;
  EXPECT_TRUE(std::isinf(ConfidenceHalfWidth(s, 0.99)));
  s.Add(1.0);
  EXPECT_TRUE(std::isinf(ConfidenceHalfWidth(s, 0.99)));
}

TEST(ConfidenceTest, MatchesTTableSmallSample) {
  RunningStats s;
  for (double x : {1.0, 2.0, 3.0}) s.Add(x);
  // n=3, df=2: t_{0.99,2} = 9.925; stderr = 1/sqrt(3).
  EXPECT_NEAR(ConfidenceHalfWidth(s, 0.99), 9.925 / std::sqrt(3.0), 1e-9);
}

TEST(ConfidenceTest, ShrinksWithSampleSize) {
  Rng rng(13);
  RunningStats small, large;
  for (int i = 0; i < 10; ++i) small.Add(rng.Uniform(0.0, 1.0));
  for (int i = 0; i < 1000; ++i) large.Add(rng.Uniform(0.0, 1.0));
  EXPECT_LT(ConfidenceHalfWidth(large, 0.99),
            ConfidenceHalfWidth(small, 0.99));
  EXPECT_LT(ConfidenceHalfWidth(large, 0.90),
            ConfidenceHalfWidth(large, 0.99));
}

TEST(TimeWeightedMeanTest, ConstantSignal) {
  TimeWeightedMean twm;
  twm.Start(0.0, 5.0);
  EXPECT_DOUBLE_EQ(twm.MeanAt(10.0), 5.0);
}

TEST(TimeWeightedMeanTest, StepSignal) {
  TimeWeightedMean twm;
  twm.Start(0.0, 0.0);
  twm.Update(5.0, 10.0);
  // [0,5): 0, [5,10): 10 -> mean 5 over [0,10].
  EXPECT_DOUBLE_EQ(twm.MeanAt(10.0), 5.0);
  EXPECT_DOUBLE_EQ(twm.current_value(), 10.0);
}

TEST(TimeWeightedMeanTest, MultipleUpdates) {
  TimeWeightedMean twm;
  twm.Start(100.0, 2.0);
  twm.Update(110.0, 4.0);
  twm.Update(130.0, 1.0);
  // 2*10 + 4*20 + 1*10 = 110 over 40 time units.
  EXPECT_DOUBLE_EQ(twm.MeanAt(140.0), 110.0 / 40.0);
}

TEST(HistogramTest, QuantilesOfUniformData) {
  Histogram h(0.0, 100.0, 100);
  for (int i = 0; i < 100; ++i) h.Add(i + 0.5);
  EXPECT_EQ(h.count(), 100);
  EXPECT_NEAR(h.Quantile(0.5), 50.0, 1.0);
  EXPECT_NEAR(h.Quantile(0.9), 90.0, 1.0);
}

TEST(HistogramTest, OverflowAndUnderflow) {
  Histogram h(0.0, 10.0, 10);
  h.Add(-1.0);
  h.Add(100.0);
  h.Add(5.0);
  EXPECT_EQ(h.underflow(), 1);
  EXPECT_EQ(h.overflow(), 1);
  EXPECT_EQ(h.count(), 3);
  EXPECT_DOUBLE_EQ(h.Quantile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(h.Quantile(1.0), 10.0);
}

TEST(HistogramTest, QuantileSurfacesSaturation) {
  Histogram h(0.0, 10.0, 10);
  for (int i = 0; i < 9; ++i) h.Add(5.0);
  h.Add(100.0);  // one sample past hi: the top decile is clipped

  // Quantiles inside the bucket range interpolate and are not saturated.
  const Histogram::QuantileValue mid = h.QuantileWithSaturation(0.5);
  EXPECT_FALSE(mid.saturated);
  EXPECT_NEAR(mid.value, 5.5, 0.6);
  // The tail quantile falls in the overflow mass: the returned hi bound is
  // only a *lower* bound on the true value, and the flag must say so.
  const Histogram::QuantileValue tail = h.QuantileWithSaturation(1.0);
  EXPECT_TRUE(tail.saturated);
  EXPECT_DOUBLE_EQ(tail.value, 10.0);

  // Underflow mass saturates symmetrically at lo.
  Histogram low(0.0, 10.0, 10);
  low.Add(-5.0);
  low.Add(5.0);
  const Histogram::QuantileValue head = low.QuantileWithSaturation(0.25);
  EXPECT_TRUE(head.saturated);
  EXPECT_DOUBLE_EQ(head.value, 0.0);
  // An empty histogram reports zero without a saturation claim.
  Histogram empty(0.0, 10.0, 10);
  EXPECT_FALSE(empty.QuantileWithSaturation(0.5).saturated);
}

TEST(ConfidenceTest, AcceptsInexactConfidenceLevels) {
  RunningStats s;
  for (int i = 0; i < 4; ++i) s.Add(static_cast<double>(i));
  // Levels arriving via parsing/arithmetic are not exactly representable:
  // 0.9 accumulated in thirds is 0.899999... and must still match the 0.90
  // row instead of tripping the unsupported-level check.
  const double drifted = 0.3 + 0.3 + 0.3;
  ASSERT_NE(drifted, 0.9);
  EXPECT_DOUBLE_EQ(ConfidenceHalfWidth(s, drifted),
                   ConfidenceHalfWidth(s, 0.90));
  EXPECT_DOUBLE_EQ(ConfidenceHalfWidth(s, 0.95 + 1e-9),
                   ConfidenceHalfWidth(s, 0.95));
  EXPECT_DOUBLE_EQ(ConfidenceHalfWidth(s, 0.99 - 1e-9),
                   ConfidenceHalfWidth(s, 0.99));
}

TEST(RngTest, Deterministic) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.NextDouble(), b.NextDouble());
  }
}

TEST(RngTest, ForkIndependence) {
  Rng parent(99);
  Rng child1 = parent.Fork();
  Rng child2 = parent.Fork();
  // Children differ from each other.
  bool any_diff = false;
  for (int i = 0; i < 10; ++i) {
    if (child1.NextUint64() != child2.NextUint64()) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(RngTest, ExponentialMean) {
  Rng rng(5);
  RunningStats s;
  for (int i = 0; i < 100000; ++i) s.Add(rng.Exponential(25.0));
  EXPECT_NEAR(s.mean(), 25.0, 0.5);
}

TEST(RngTest, UniformIntBounds) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    const int64_t v = rng.UniformInt(3, 7);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 7);
  }
}

}  // namespace
}  // namespace memgoal::common
