#include "sim/resource.h"

#include <vector>

#include <gtest/gtest.h>

#include "sim/simulator.h"
#include "sim/task.h"

namespace memgoal::sim {
namespace {

Task<void> UseOnce(Simulator* simulator, Resource* resource, SimTime service,
                   int id, std::vector<std::pair<int, double>>* done) {
  co_await resource->Acquire();
  co_await simulator->Delay(service);
  resource->Release();
  done->push_back({id, simulator->Now()});
}

TEST(ResourceTest, SerializesUnitCapacity) {
  Simulator simulator;
  Resource disk(&simulator, 1, "disk");
  std::vector<std::pair<int, double>> done;
  for (int i = 0; i < 3; ++i) {
    simulator.Spawn(UseOnce(&simulator, &disk, 10.0, i, &done));
  }
  simulator.Run();
  ASSERT_EQ(done.size(), 3u);
  // FCFS: completion order equals arrival order, spaced by service time.
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(done[i].first, i);
    EXPECT_DOUBLE_EQ(done[i].second, 10.0 * (i + 1));
  }
}

TEST(ResourceTest, ParallelismUpToCapacity) {
  Simulator simulator;
  Resource cpu(&simulator, 2, "cpu");
  std::vector<std::pair<int, double>> done;
  for (int i = 0; i < 4; ++i) {
    simulator.Spawn(UseOnce(&simulator, &cpu, 10.0, i, &done));
  }
  simulator.Run();
  ASSERT_EQ(done.size(), 4u);
  // Two at a time: finish at 10, 10, 20, 20.
  EXPECT_DOUBLE_EQ(done[0].second, 10.0);
  EXPECT_DOUBLE_EQ(done[1].second, 10.0);
  EXPECT_DOUBLE_EQ(done[2].second, 20.0);
  EXPECT_DOUBLE_EQ(done[3].second, 20.0);
}

Task<void> StaggeredUse(Simulator* simulator, Resource* resource,
                        SimTime start, SimTime service,
                        std::vector<double>* completions) {
  co_await simulator->Delay(start);
  co_await resource->Acquire();
  co_await simulator->Delay(service);
  resource->Release();
  completions->push_back(simulator->Now());
}

TEST(ResourceTest, WaitStatisticsRecorded) {
  Simulator simulator;
  Resource disk(&simulator, 1, "disk");
  std::vector<double> completions;
  // First arrives at 0 (no wait), second at 1 (waits 9).
  simulator.Spawn(StaggeredUse(&simulator, &disk, 0.0, 10.0, &completions));
  simulator.Spawn(StaggeredUse(&simulator, &disk, 1.0, 10.0, &completions));
  simulator.Run();
  EXPECT_EQ(disk.total_acquisitions(), 2u);
  EXPECT_DOUBLE_EQ(disk.wait_stats().min(), 0.0);
  EXPECT_DOUBLE_EQ(disk.wait_stats().max(), 9.0);
}

TEST(ResourceTest, UtilizationIntegratesBusyTime) {
  Simulator simulator;
  Resource disk(&simulator, 1, "disk");
  std::vector<double> completions;
  simulator.Spawn(StaggeredUse(&simulator, &disk, 0.0, 25.0, &completions));
  simulator.Run();
  simulator.RunUntil(100.0);
  // Busy 25 ms of 100 ms.
  EXPECT_NEAR(disk.UtilizationAt(simulator.Now()), 0.25, 1e-12);
}

TEST(ResourceTest, UseHelperEquivalent) {
  Simulator simulator;
  Resource disk(&simulator, 1, "disk");
  simulator.Spawn(disk.Use(5.0));
  simulator.Spawn(disk.Use(5.0));
  simulator.Run();
  EXPECT_DOUBLE_EQ(simulator.Now(), 10.0);
  EXPECT_EQ(disk.total_acquisitions(), 2u);
  EXPECT_EQ(disk.in_use(), 0);
}

Task<void> HoldAndCount(Simulator* simulator, Resource* resource,
                        int* active, int* max_active) {
  co_await resource->Acquire();
  ++*active;
  *max_active = std::max(*max_active, *active);
  co_await simulator->Delay(1.0);
  --*active;
  resource->Release();
}

TEST(ResourceTest, SlowdownStretchesUse) {
  Simulator simulator;
  Resource disk(&simulator, 1, "disk");
  disk.SetSlowdown(4.0);
  simulator.Spawn(disk.Use(5.0));
  simulator.Run();
  EXPECT_DOUBLE_EQ(simulator.Now(), 20.0);
  // Lifting the episode restores nominal service times.
  disk.SetSlowdown(1.0);
  simulator.Spawn(disk.Use(5.0));
  simulator.Run();
  EXPECT_DOUBLE_EQ(simulator.Now(), 25.0);
}

TEST(ResourceTest, WaitAndBusyQuantiles) {
  Simulator simulator;
  Resource disk(&simulator, 1, "disk");
  // Five simultaneous arrivals at a unit-capacity server: waits are
  // 0, 10, 20, 30, 40 ms and every busy hold is 10 ms.
  for (int i = 0; i < 5; ++i) simulator.Spawn(disk.Use(10.0));
  simulator.Run();
  const double bucket = Resource::kHistogramMaxMs / Resource::kHistogramBuckets;
  EXPECT_NEAR(disk.WaitQuantile(0.99), 40.0, bucket + 1e-9);
  EXPECT_NEAR(disk.WaitQuantile(0.5), 20.0, bucket + 1e-9);
  EXPECT_NEAR(disk.BusyQuantile(0.5), 10.0, bucket + 1e-9);
  EXPECT_NEAR(disk.BusyQuantile(0.99), 10.0, bucket + 1e-9);
}

TEST(ResourceTest, QuantilesSeeSlowdownInflatedTail) {
  Simulator simulator;
  Resource disk(&simulator, 1, "disk");
  for (int i = 0; i < 9; ++i) simulator.Spawn(disk.Use(2.0));
  simulator.Run();
  // One gray episode stretches the tenth hold 50x: the p99 busy hold jumps
  // to the degraded service time while the median stays nominal.
  disk.SetSlowdown(50.0);
  simulator.Spawn(disk.Use(2.0));
  simulator.Run();
  const double bucket = Resource::kHistogramMaxMs / Resource::kHistogramBuckets;
  EXPECT_NEAR(disk.BusyQuantile(0.5), 2.0, bucket + 1e-9);
  EXPECT_NEAR(disk.BusyQuantile(0.99), 100.0, bucket + 1e-9);
}

TEST(ResourceTest, NeverExceedsCapacity) {
  Simulator simulator;
  Resource resource(&simulator, 3, "r");
  int active = 0, max_active = 0;
  for (int i = 0; i < 20; ++i) {
    simulator.Spawn(HoldAndCount(&simulator, &resource, &active, &max_active));
  }
  simulator.Run();
  EXPECT_EQ(max_active, 3);
  EXPECT_EQ(active, 0);
  EXPECT_EQ(resource.queue_length(), 0u);
}

}  // namespace
}  // namespace memgoal::sim
