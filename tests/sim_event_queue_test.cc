// Locks in the calendar-queue event core from sim/event_queue.h.
//
// Three layers of defense:
//  1. Queue-level conformance: CalendarQueue and LegacyHeapQueue are driven
//     through identical randomized insert/pop schedules and must pop the
//     same nodes in the same order as a sorted reference model — including
//     duplicate timestamps, zero delays and far-future times that overflow
//     the day ordinal.
//  2. Simulator-level properties on BOTH backends: FIFO at equal
//     timestamps, monotone Now(), Run/RunUntil/Step interleaving, and a
//     golden fingerprint of a synthetic schedule's execution order (any
//     reordering regression changes the fingerprint).
//  3. Arena lifetime: destroying a Simulator mid-run with suspended
//     coroutines and pending events must destroy every callable and frame
//     exactly once (ASan/UBSan validate this in the sanitizer preset), and
//     steady-state churn must recycle slab nodes instead of growing.

#include "sim/event_queue.h"

// Mirrors the detection in sim/frame_pool.cc: under ASan the pool
// deliberately never recycles, so the recycling assertion is skipped.
#if defined(__SANITIZE_ADDRESS__)
#define MEMGOAL_TEST_ASAN 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define MEMGOAL_TEST_ASAN 1
#endif
#endif

#include <algorithm>
#include <bit>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "sim/frame_pool.h"
#include "sim/simulator.h"
#include "sim/task.h"

namespace memgoal::sim {
namespace {

// ---------------------------------------------------------------------------
// Layer 1: queue conformance against a reference model.

// Reference model: the queue contract in its most obvious form — a vector
// kept sorted by (time, seq). Deliberately naive; any disagreement is a
// backend bug.
class ReferenceModel {
 public:
  void Insert(EventNode* node) {
    auto it = std::lower_bound(nodes_.begin(), nodes_.end(), node,
                               EventNode::Earlier);
    nodes_.insert(it, node);
  }
  EventNode* PeekMin() const { return nodes_.empty() ? nullptr : nodes_[0]; }
  EventNode* PopMin() {
    if (nodes_.empty()) return nullptr;
    EventNode* node = nodes_.front();
    nodes_.erase(nodes_.begin());
    return node;
  }
  size_t size() const { return nodes_.size(); }

 private:
  std::vector<EventNode*> nodes_;
};

// Drives the backend under test and the reference model through one
// schedule of operations, asserting identical pop order throughout.
//
// Nodes never carry callables here — the queue layer only orders headers;
// callable lifetime is the simulator's business (tested below).
class QueueConformance : public ::testing::TestWithParam<QueueBackend> {
 protected:
  QueueConformance() : queue_(MakeEventQueue(GetParam())) {}

  EventNode* MakeNode(SimTime time) {
    auto node = std::make_unique<EventNode>();
    node->time = time;
    node->seq = next_seq_++;
    nodes_.push_back(std::move(node));
    return nodes_.back().get();
  }

  void InsertBoth(SimTime time) {
    EventNode* node = MakeNode(time);
    queue_->Insert(node);
    model_.Insert(node);
  }

  // Pops from both and asserts they agree; returns false when both empty.
  bool PopBothAndCompare() {
    EventNode* expected = model_.PopMin();
    EventNode* actual = queue_->PopMin();
    EXPECT_EQ(expected, actual)
        << "backend " << static_cast<int>(GetParam()) << " diverged: model "
        << (expected ? expected->time : -1.0) << "/"
        << (expected ? expected->seq : 0) << " vs queue "
        << (actual ? actual->time : -1.0) << "/" << (actual ? actual->seq : 0);
    return actual != nullptr;
  }

  std::vector<std::unique_ptr<EventNode>> nodes_;
  std::unique_ptr<EventQueue> queue_;
  ReferenceModel model_;
  uint64_t next_seq_ = 0;
};

TEST_P(QueueConformance, EmptyQueueReturnsNull) {
  EXPECT_EQ(queue_->PeekMin(), nullptr);
  EXPECT_EQ(queue_->PopMin(), nullptr);
  EXPECT_EQ(queue_->size(), 0u);
}

TEST_P(QueueConformance, DuplicateTimestampsPopInSeqOrder) {
  for (int i = 0; i < 100; ++i) InsertBoth(5.0);
  for (int i = 0; i < 50; ++i) InsertBoth(1.0);
  uint64_t last_seq = 0;
  SimTime last_time = -1.0;
  while (queue_->size() > 0) {
    EventNode* node = queue_->PeekMin();
    ASSERT_TRUE(PopBothAndCompare());
    if (node->time == last_time) {
      EXPECT_GT(node->seq, last_seq);
    }
    EXPECT_GE(node->time, last_time);
    last_time = node->time;
    last_seq = node->seq;
  }
}

TEST_P(QueueConformance, FarFutureTimesStayOrdered) {
  // Times whose day ordinal saturates kMaxDay must still order among
  // themselves and after every near-term event.
  InsertBoth(1e305);
  InsertBoth(0.0);
  InsertBoth(1e12);
  InsertBoth(3.5);
  InsertBoth(1e12);   // duplicate far-future timestamp: seq breaks the tie
  InsertBoth(1e300);
  while (PopBothAndCompare()) {
  }
  EXPECT_EQ(queue_->size(), 0u);
}

TEST_P(QueueConformance, PeekMatchesPop) {
  for (int i = 0; i < 64; ++i) InsertBoth(static_cast<SimTime>(i % 7));
  while (queue_->size() > 0) {
    EventNode* peeked = queue_->PeekMin();
    EXPECT_EQ(peeked, model_.PeekMin());
    EventNode* popped = queue_->PopMin();
    EXPECT_EQ(peeked, popped);
    model_.PopMin();
  }
}

TEST_P(QueueConformance, RandomizedInterleaveMatchesModel) {
  // Chaos-style fuzz: random mixture of inserts (clustered, uniform, zero,
  // and occasionally far-future times) and pops, with the time base
  // advancing like a simulation clock so the calendar's cursor must both
  // advance and rewind.
  common::Rng rng(0xEC5u);
  SimTime now = 0.0;
  for (int round = 0; round < 4000; ++round) {
    const double action = rng.NextDouble();
    if (action < 0.55 || queue_->size() == 0) {
      const double shape = rng.NextDouble();
      SimTime when;
      if (shape < 0.3) {
        when = now;  // zero delay
      } else if (shape < 0.8) {
        when = now + rng.NextDouble() * 10.0;
      } else if (shape < 0.95) {
        when = now + rng.NextDouble() * 5000.0;
      } else {
        when = now + 1e12 + rng.NextDouble() * 1e15;  // day overflow
      }
      InsertBoth(when);
    } else {
      EventNode* expected_peek = model_.PeekMin();
      ASSERT_EQ(queue_->PeekMin(), expected_peek);
      ASSERT_TRUE(PopBothAndCompare());
      now = std::max(now, expected_peek->time);
    }
    ASSERT_EQ(queue_->size(), model_.size());
  }
  while (PopBothAndCompare()) {
  }
}

TEST_P(QueueConformance, ReinsertionAfterPopRefiles) {
  // A popped node reinserted at a later time (the simulator never does
  // this, but the queue contract allows it) must be refiled correctly:
  // day/next are recomputed on every Insert.
  common::Rng rng(77u);
  for (int i = 0; i < 200; ++i) {
    InsertBoth(rng.NextDouble() * 100.0);
  }
  for (int i = 0; i < 500; ++i) {
    EventNode* node = model_.PopMin();
    ASSERT_EQ(queue_->PopMin(), node);
    node->time += rng.NextDouble() * 50.0;
    node->seq = next_seq_++;
    queue_->Insert(node);
    model_.Insert(node);
  }
  while (PopBothAndCompare()) {
  }
}

INSTANTIATE_TEST_SUITE_P(AllBackends, QueueConformance,
                         ::testing::Values(QueueBackend::kCalendar,
                                           QueueBackend::kLegacyHeap),
                         [](const auto& info) {
                           return info.param == QueueBackend::kCalendar
                                      ? "Calendar"
                                      : "LegacyHeap";
                         });

// ---------------------------------------------------------------------------
// Layer 2: simulator-level properties on both backends.

class SimulatorBackend : public ::testing::TestWithParam<QueueBackend> {};

TEST_P(SimulatorBackend, ZeroDelayYieldsToAlreadyScheduledEvents) {
  Simulator simulator(GetParam());
  std::vector<int> order;
  simulator.Schedule(0.0, [&] {
    order.push_back(1);
    // Scheduled mid-dispatch at the same timestamp: must run after every
    // event already queued for t=0, not immediately.
    simulator.Schedule(0.0, [&] { order.push_back(3); });
  });
  simulator.Schedule(0.0, [&] { order.push_back(2); });
  simulator.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(simulator.Now(), 0.0);
}

TEST_P(SimulatorBackend, FifoAtSameTimestampAcrossMixedSources) {
  // Callback events and coroutine resumes scheduled for one timestamp fire
  // in scheduling order regardless of how they were scheduled.
  Simulator simulator(GetParam());
  std::vector<int> order;
  auto process = [](Simulator* sim, std::vector<int>* out,
                    int tag) -> Task<void> {
    co_await sim->Delay(10.0);
    out->push_back(tag);
  };
  simulator.Spawn(process(&simulator, &order, 0));
  simulator.At(10.0, [&] { order.push_back(1); });
  simulator.Spawn(process(&simulator, &order, 2));
  simulator.At(10.0, [&] { order.push_back(3); });
  simulator.Run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
}

TEST_P(SimulatorBackend, NowIsMonotoneThroughRandomizedSchedule) {
  Simulator simulator(GetParam());
  common::Rng rng(0xBADCAFEu);
  SimTime last_seen = 0.0;
  uint64_t fired = 0;
  // Self-rescheduling events with random delays: each firing checks the
  // clock never moved backwards.
  auto tick = [&](auto&& self, int depth) -> void {
    EXPECT_GE(simulator.Now(), last_seen);
    last_seen = simulator.Now();
    ++fired;
    if (depth > 0) {
      const double delay =
          rng.NextDouble() < 0.25 ? 0.0 : rng.NextDouble() * 20.0;
      // Copy `self` into the event: the recursion parameter dies with this
      // call, but the copied closure only holds references to long-lived
      // test locals.
      simulator.Schedule(delay, [self, depth] { self(self, depth - 1); });
    }
  };
  for (int i = 0; i < 32; ++i) {
    simulator.Schedule(rng.NextDouble() * 5.0,
                       [&tick] { tick(tick, 40); });
  }
  simulator.Run();
  EXPECT_EQ(fired, 32u * 41u);
  EXPECT_EQ(simulator.pending_events(), 0u);
}

TEST_P(SimulatorBackend, StepRunUntilRunInterleaveAgrees) {
  // The same schedule executed three ways — pure Run(), RunUntil slices,
  // and Step-by-Step — must fire events in the same order at the same
  // times.
  auto record = [&](QueueBackend backend, int mode) {
    Simulator simulator(backend);
    std::vector<std::pair<double, int>> log;
    common::Rng rng(99u);
    for (int i = 0; i < 200; ++i) {
      const double when = rng.NextDouble() * 100.0;
      simulator.At(when, [&log, &simulator, i] {
        log.emplace_back(simulator.Now(), i);
      });
    }
    if (mode == 0) {
      simulator.Run();
    } else if (mode == 1) {
      for (double t = 10.0; t <= 100.0; t += 10.0) simulator.RunUntil(t);
      simulator.Run();
    } else {
      int guard = 0;
      while (simulator.Step() && ++guard < 1000) {
      }
      EXPECT_LT(guard, 1000);
    }
    EXPECT_EQ(simulator.pending_events(), 0u);
    return log;
  };
  const auto pure = record(GetParam(), 0);
  EXPECT_EQ(record(GetParam(), 1), pure);
  EXPECT_EQ(record(GetParam(), 2), pure);
  ASSERT_EQ(pure.size(), 200u);
}

// FNV-1a over each fired event's (time bits, tag): a compact fingerprint of
// execution order AND timing.
uint64_t Fnv1a(uint64_t hash, uint64_t value) {
  for (int byte = 0; byte < 8; ++byte) {
    hash ^= (value >> (8 * byte)) & 0xFF;
    hash *= 0x100000001B3ull;
  }
  return hash;
}

uint64_t SyntheticScheduleFingerprint(QueueBackend backend) {
  Simulator simulator(backend);
  common::Rng rng(0x600DF00Du);
  uint64_t fingerprint = 0xCBF29CE484222325ull;
  auto note = [&](int tag) {
    fingerprint = Fnv1a(fingerprint, std::bit_cast<uint64_t>(simulator.Now()));
    fingerprint = Fnv1a(fingerprint, static_cast<uint64_t>(tag));
  };
  // A deliberately nasty mix: duplicate timestamps, zero delays, far-future
  // outliers, coroutine delays, and chained rescheduling.
  auto process = [](Simulator* sim, common::Rng* prng, auto* notefn,
                    int tag) -> Task<void> {
    for (int hop = 0; hop < 4; ++hop) {
      co_await sim->Delay(prng->NextDouble() < 0.3 ? 0.0
                                                   : prng->NextDouble() * 8.0);
      (*notefn)(tag * 10 + hop);
    }
  };
  for (int i = 0; i < 25; ++i) {
    const double shape = rng.NextDouble();
    if (shape < 0.2) {
      simulator.Spawn(process(&simulator, &rng, &note, 1000 + i));
    } else if (shape < 0.4) {
      simulator.At(5.0, [&note, i] { note(i); });  // duplicate timestamp
    } else if (shape < 0.5) {
      simulator.At(1e12 + i, [&note, i] { note(i); });  // far future
    } else {
      const double when = rng.NextDouble() * 40.0;
      simulator.At(when, [&simulator, &note, i] {
        note(i);
        simulator.Schedule(0.0, [&note, i] { note(100 + i); });
      });
    }
  }
  simulator.Run();
  return fingerprint;
}

TEST(EventOrderGolden, SyntheticScheduleFingerprintIsPinned) {
  // Golden fingerprint of the synthetic schedule above. Both backends must
  // produce it. If an intentional ordering change lands (there is exactly
  // one correct order under the (time, seq) contract, so think twice),
  // re-pin with the value printed on failure.
  constexpr uint64_t kGolden = 0x021AB8773EB1AAA7ull;
  const uint64_t calendar =
      SyntheticScheduleFingerprint(QueueBackend::kCalendar);
  const uint64_t heap = SyntheticScheduleFingerprint(QueueBackend::kLegacyHeap);
  EXPECT_EQ(calendar, heap);
  EXPECT_EQ(calendar, kGolden)
      << "event order changed; new fingerprint 0x" << std::hex << calendar;
}

INSTANTIATE_TEST_SUITE_P(AllBackends, SimulatorBackend,
                         ::testing::Values(QueueBackend::kCalendar,
                                           QueueBackend::kLegacyHeap),
                         [](const auto& info) {
                           return info.param == QueueBackend::kCalendar
                                      ? "Calendar"
                                      : "LegacyHeap";
                         });

// ---------------------------------------------------------------------------
// Layer 3: arena and frame lifetime. Run these under the asan-ubsan preset:
// the assertions below catch accounting bugs, the sanitizer catches
// double-destroy / leak / use-after-free in the same scenarios.

TEST(EventArenaTest, RecyclesNodesWithinOneSlab) {
  EventArena arena;
  // Churn far more nodes than a slab holds; with free-list recycling the
  // arena must never grow past one slab.
  for (int round = 0; round < 10000; ++round) {
    EventNode* node = arena.Allocate();
    EXPECT_EQ(arena.in_use(), 1u);
    arena.Free(node);
  }
  EXPECT_EQ(arena.slabs(), 1u);
  EXPECT_EQ(arena.in_use(), 0u);
  EXPECT_EQ(arena.high_water(), 1u);
}

TEST(EventArenaTest, FreeListIsLifo) {
  EventArena arena;
  EventNode* a = arena.Allocate();
  EventNode* b = arena.Allocate();
  arena.Free(a);
  arena.Free(b);
  // Hot reuse: the most recently freed node comes back first.
  EXPECT_EQ(arena.Allocate(), b);
  EXPECT_EQ(arena.Allocate(), a);
  arena.Free(a);
  arena.Free(b);
}

TEST(ArenaLifetimeTest, SteadyStateSimulationStaysInOneSlab) {
  Simulator simulator;
  uint64_t fired = 0;
  // A self-rescheduling ladder keeps ~8 events pending forever; the arena
  // must recycle instead of growing.
  for (int i = 0; i < 8; ++i) {
    auto tick = [&simulator, &fired](auto&& self) -> void {
      if (++fired < 50000) simulator.Schedule(1.0, [self] { self(self); });
    };
    simulator.Schedule(1.0, [tick] { tick(tick); });
  }
  simulator.Run();
  EXPECT_EQ(simulator.arena().slabs(), 1u);
  EXPECT_EQ(simulator.arena().in_use(), 0u);
  EXPECT_LE(simulator.arena().high_water(), 16u);
}

TEST(ArenaLifetimeTest, DestroyMidRunWithPendingEventsAndSuspendedFrames) {
  // The hard teardown path: RunUntil leaves coroutines suspended in
  // Delay(), callback events still queued (with non-trivially-destructible
  // captures), and chained awaits in flight. ~Simulator must destroy every
  // pending callable without running it and free every suspended frame.
  // ASan verifies no leak and no double-free; the shared_ptr use counts
  // verify each capture was destroyed exactly once.
  auto payload = std::make_shared<int>(7);
  {
    Simulator simulator;
    auto inner = [](Simulator* sim) -> Task<void> {
      co_await sim->Delay(1000.0);
    };
    auto outer = [](Simulator* sim, auto inner_fn,
                    std::shared_ptr<int> keep) -> Task<void> {
      co_await sim->Delay(1.0);
      // Suspended awaiting a child task at teardown: both frames must go.
      co_await inner_fn(sim);
      *keep = 0;  // never reached
    };
    for (int i = 0; i < 40; ++i) {
      simulator.Spawn(outer(&simulator, inner, payload));
      simulator.At(500.0, [keep = payload] { *keep = 1; });
    }
    simulator.RunUntil(10.0);  // outer processes now suspended inside inner
    EXPECT_GT(simulator.pending_events(), 0u);
    EXPECT_EQ(simulator.arena().in_use(), simulator.pending_events());
  }
  // Every queued callback held one reference; all released, none ran.
  EXPECT_EQ(payload.use_count(), 1);
  EXPECT_EQ(*payload, 7);
}

TEST(ArenaLifetimeTest, DestroyWithNeverResumedSpawn) {
  // A process that suspends on its very first co_await and is never
  // resumed: teardown frees the frame without resuming it.
  for (int round = 0; round < 3; ++round) {
    Simulator simulator;
    auto process = [](Simulator* sim) -> Task<void> {
      co_await sim->Delay(1e9);
    };
    simulator.Spawn(process(&simulator));
    // No Run at all in round 0; partial runs otherwise.
    if (round > 0) simulator.RunUntil(static_cast<double>(round));
  }
}

TEST(ArenaLifetimeTest, SpawnImmediateCompletionRecyclesFrames) {
  // A spawn that completes without suspending frees its frame on the spot;
  // the FramePool must serve subsequent spawns from its free list instead
  // of new allocations. (Under the ASan preset the pool deliberately never
  // recycles, so only the delta check below would be vacuous — reused
  // stays 0 there and fresh keeps counting, which is also correct.)
  auto immediate = [](int* count) -> Task<void> {
    ++*count;
    co_return;
  };
  Simulator simulator;
  int completions = 0;
  simulator.Spawn(immediate(&completions));  // warm the pool's bucket
  const FramePool::Stats before = FramePool::stats();
  for (int i = 0; i < 1000; ++i) simulator.Spawn(immediate(&completions));
  const FramePool::Stats after = FramePool::stats();
  EXPECT_EQ(completions, 1001);
  const uint64_t served = (after.reused - before.reused) +
                          (after.fresh - before.fresh) +
                          (after.oversized - before.oversized);
  EXPECT_GE(served, 1000u);
#ifndef MEMGOAL_TEST_ASAN
  // Recycling path: at most a handful of fresh blocks (allocate_shared
  // tails etc.); the bulk must come from the free list.
  EXPECT_GE(after.reused - before.reused, 990u);
#endif
}

}  // namespace
}  // namespace memgoal::sim
