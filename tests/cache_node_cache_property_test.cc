// Property sweep: random §6 operation sequences against the NodeCache keep
// its internal bookkeeping consistent — residency, budgets, and drop
// reporting — under every replacement policy.

#include <set>

#include <gtest/gtest.h>

#include "cache/cost_based.h"
#include "cache/node_cache.h"
#include "cache/replacement.h"
#include "common/rng.h"

namespace memgoal::cache {
namespace {

constexpr uint32_t kPage = 4096;
constexpr uint64_t kTotal = 16 * kPage;
constexpr PageId kPages = 64;

struct Param {
  PolicyKind policy;
  uint64_t seed;
};

class NodeCachePropertyTest : public ::testing::TestWithParam<Param> {};

NodeCache::PolicyFactory MakeFactory(PolicyKind kind, common::Rng* rng) {
  return [kind, rng](ClassId) -> std::unique_ptr<ReplacementPolicy> {
    switch (kind) {
      case PolicyKind::kFifo:
        return MakeFifoPolicy();
      case PolicyKind::kLru:
        return MakeLruPolicy();
      case PolicyKind::kCostBased:
        // Pseudo-random but deterministic benefits: stresses the heap paths
        // including admission bounces.
        return MakeCostBasedPolicy([rng](PageId page) {
          return static_cast<double>((page * 2654435761u) % 1000) +
                 rng->NextDouble() * 0.0;  // keyed per page, stable
        });
      case PolicyKind::kLruK:
        // LRU-K needs an owner-managed heat tracker; exercised via the
        // system-level invariant test instead.
        return MakeLruPolicy();
    }
    return MakeLruPolicy();
  };
}

TEST_P(NodeCachePropertyTest, RandomOperationsKeepBookkeepingConsistent) {
  const Param param = GetParam();
  common::Rng rng(param.seed);
  NodeCache cache(0, kTotal, kPage, MakeFactory(param.policy, &rng));
  cache.EnsureDedicatedPool(1);
  cache.EnsureDedicatedPool(2);

  // Reference: the set of pages the cache claims are resident.
  std::set<PageId> resident;

  auto apply_result = [&](PageId page,
                          const NodeCache::AccessResult& result) {
    for (PageId dropped : result.dropped) {
      ASSERT_EQ(resident.erase(dropped), 1u) << "phantom drop " << dropped;
      ASSERT_FALSE(cache.IsCached(dropped));
    }
    if (result.inserted) {
      ASSERT_TRUE(cache.IsCached(page));
      resident.insert(page);
    }
  };

  for (int step = 0; step < 5000; ++step) {
    const int op = static_cast<int>(rng.UniformInt(0, 9));
    const PageId page = static_cast<PageId>(rng.UniformInt(0, kPages - 1));
    const ClassId klass = static_cast<ClassId>(rng.UniformInt(0, 2));

    if (op < 6) {
      // Access; fetch-and-insert on miss (the Node's access protocol).
      NodeCache::AccessResult access = cache.OnAccess(klass, page);
      apply_result(page, access);
      ASSERT_EQ(access.hit, resident.count(page) > 0 || access.hit);
      if (!access.hit) {
        ASSERT_EQ(resident.count(page), 0u);
        NodeCache::AccessResult insert = cache.InsertFetched(klass, page);
        apply_result(page, insert);
      }
    } else if (op < 8) {
      // Repartition: random dedicated budgets for a random goal class.
      const ClassId goal = static_cast<ClassId>(rng.UniformInt(1, 2));
      const auto bytes = static_cast<uint64_t>(
          rng.UniformInt(0, static_cast<int64_t>(kTotal)));
      std::vector<PageId> dropped;
      const uint64_t granted = cache.SetDedicatedBytes(goal, bytes, &dropped);
      EXPECT_LE(granted, cache.AvailableForClass(goal));
      for (PageId victim : dropped) {
        ASSERT_EQ(resident.erase(victim), 1u);
      }
    } else if (op == 8) {
      // Invalidation drop.
      const bool was_resident = resident.count(page) > 0;
      EXPECT_EQ(cache.Drop(page), was_resident);
      resident.erase(page);
    } else {
      // Pure consistency probe.
      for (PageId p = 0; p < kPages; ++p) {
        ASSERT_EQ(cache.IsCached(p), resident.count(p) > 0) << "page " << p;
      }
    }

    // Standing invariants.
    ASSERT_EQ(cache.resident_pages(), resident.size());
    ASSERT_LE(cache.resident_pages(), kTotal / kPage);
    ASSERT_EQ(cache.total_dedicated_bytes() + cache.nogoal_bytes(), kTotal);
    for (PageId p : resident) {
      const ClassId location = cache.LocationOf(p);
      ASSERT_TRUE(location == kNoGoalClass || location == 1 || location == 2);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, NodeCachePropertyTest,
    ::testing::Values(Param{PolicyKind::kLru, 1}, Param{PolicyKind::kLru, 2},
                      Param{PolicyKind::kFifo, 3},
                      Param{PolicyKind::kFifo, 4},
                      Param{PolicyKind::kCostBased, 5},
                      Param{PolicyKind::kCostBased, 6},
                      Param{PolicyKind::kCostBased, 7}));

}  // namespace
}  // namespace memgoal::cache
