#include "txn/transaction.h"

#include <gtest/gtest.h>

#include "baseline/static_controllers.h"
#include "core/system.h"
#include "net/network.h"
#include "txn/update_source.h"
#include "workload/spec.h"

namespace memgoal::txn {
namespace {

core::SystemConfig TestConfig(uint64_t seed = 1) {
  core::SystemConfig config;
  config.num_nodes = 3;
  config.cache_bytes_per_node = 64 * 4096;
  config.db_pages = 200;
  config.observation_interval_ms = 5000.0;
  config.seed = seed;
  return config;
}

std::unique_ptr<core::ClusterSystem> MakeSystem(uint64_t seed = 1,
                                                bool quiet = false) {
  auto system = std::make_unique<core::ClusterSystem>(TestConfig(seed));
  // `quiet` slows the background read workload to a trickle so cached pages
  // are not churned out from under the test's assertions.
  const double interarrival = quiet ? 50000.0 : 50.0;
  workload::ClassSpec goal_class;
  goal_class.id = 1;
  goal_class.goal_rt_ms = 1000.0;
  goal_class.accesses_per_op = 4;
  goal_class.mean_interarrival_ms = interarrival;
  goal_class.pages = {0, 100};
  system->AddClass(goal_class);
  workload::ClassSpec nogoal;
  nogoal.id = kNoGoalClass;
  nogoal.accesses_per_op = 4;
  nogoal.mean_interarrival_ms = interarrival;
  nogoal.pages = {100, 200};
  system->AddClass(nogoal);
  system->SetController(
      std::make_unique<baseline::NoPartitioningController>());
  system->Start();
  return system;
}

sim::Task<void> RunTxn(TransactionManager* manager, NodeId node,
                       std::vector<PageId> reads, std::vector<PageId> writes,
                       TxnResult* out) {
  *out = co_await manager->Run(node, 1, std::move(reads), std::move(writes));
}

// The system's workload sources are infinite processes, so the simulator
// never drains; advance a bounded horizon instead.
void RunFor(core::ClusterSystem* system, double ms) {
  system->simulator().RunUntil(system->simulator().Now() + ms);
}

TEST(TransactionTest, ReadOnlyCommitsWithoutLogging) {
  auto system = MakeSystem();
  TransactionManager manager(system.get());
  TxnResult result;
  system->simulator().Spawn(RunTxn(&manager, 0, {1, 2, 3}, {}, &result));
  RunFor(system.get(), 2000.0);
  EXPECT_TRUE(result.committed);
  EXPECT_EQ(result.pages_read, 3);
  EXPECT_FALSE(result.used_two_phase_commit);
  EXPECT_EQ(manager.wal(0).forces(), 0u);
  EXPECT_EQ(manager.lock_manager().locked_pages(), 0u);
}

TEST(TransactionTest, LocalWriteForcesWalAndHomeDisk) {
  auto system = MakeSystem();
  TransactionManager manager(system.get());
  // Page 0's home is node 0: a node-0 transaction commits without 2PC.
  TxnResult result;
  system->simulator().Spawn(RunTxn(&manager, 0, {}, {0}, &result));
  RunFor(system.get(), 2000.0);
  EXPECT_TRUE(result.committed);
  EXPECT_FALSE(result.used_two_phase_commit);
  EXPECT_GE(manager.wal(0).forces(), 1u);
  EXPECT_GE(system->node(0).disk().writes_completed(), 2u);  // log + page
}

TEST(TransactionTest, RemoteWriteRunsTwoPhaseCommit) {
  auto system = MakeSystem();
  TransactionManager manager(system.get());
  // Page 1's home is node 1; the transaction runs at node 0.
  TxnResult result;
  system->simulator().Spawn(RunTxn(&manager, 0, {}, {1}, &result));
  RunFor(system.get(), 2000.0);
  EXPECT_TRUE(result.committed);
  EXPECT_TRUE(result.used_two_phase_commit);
  EXPECT_EQ(manager.stats().two_phase_commits, 1u);
  // Participant forced prepare + commit records.
  EXPECT_GE(manager.wal(1).forces(), 2u);
  // Page installed at its home disk.
  EXPECT_GE(system->node(1).disk().writes_completed(), 3u);
}

TEST(TransactionTest, CommitInvalidatesRemoteCopies) {
  auto system = MakeSystem(1, /*quiet=*/true);
  TransactionManager manager(system.get());
  // Cache page 0 at nodes 1 and 2 via read transactions there.
  TxnResult warm1, warm2;
  system->simulator().Spawn(RunTxn(&manager, 1, {0}, {}, &warm1));
  system->simulator().Spawn(RunTxn(&manager, 2, {0}, {}, &warm2));
  RunFor(system.get(), 2000.0);
  ASSERT_TRUE(system->directory().IsCachedAt(1, 0));
  ASSERT_TRUE(system->directory().IsCachedAt(2, 0));

  TxnResult write_result;
  system->simulator().Spawn(RunTxn(&manager, 0, {}, {0}, &write_result));
  RunFor(system.get(), 2000.0);
  EXPECT_TRUE(write_result.committed);
  EXPECT_FALSE(system->directory().IsCachedAt(1, 0));
  EXPECT_FALSE(system->directory().IsCachedAt(2, 0));
  // The writer's own copy survives (it is current).
  EXPECT_TRUE(system->directory().IsCachedAt(0, 0));
  EXPECT_GE(manager.stats().pages_invalidated, 2u);
}

TEST(TransactionTest, ConflictingWritersSerialize) {
  auto system = MakeSystem();
  TransactionManager manager(system.get());
  TxnResult a, b;
  system->simulator().Spawn(RunTxn(&manager, 0, {}, {0}, &a));
  system->simulator().Spawn(RunTxn(&manager, 1, {}, {0}, &b));
  RunFor(system.get(), 2000.0);
  // The older transaction commits; the younger either committed after
  // waiting (if it was older by arrival) or died. With ids handed out in
  // spawn order, txn a is older: it must commit; b may die (wait-die).
  EXPECT_TRUE(a.committed);
  EXPECT_TRUE(b.committed || b.died);
  EXPECT_EQ(manager.lock_manager().locked_pages(), 0u);
}

sim::Task<void> HoldPageExclusive(core::ClusterSystem* system,
                                  TransactionManager* manager, TxnId txn,
                                  PageId page, double hold_ms) {
  const bool ok = co_await manager->lock_manager().Acquire(
      txn, page, LockMode::kExclusive);
  MEMGOAL_CHECK(ok);
  co_await system->simulator().Delay(hold_ms);
  manager->lock_manager().ReleaseAll(txn);
}

sim::Task<void> RunRetryTxn(TransactionManager* manager, NodeId node,
                            std::vector<PageId> writes, TxnResult* out) {
  *out = co_await manager->RunWithRetry(node, 1, {}, std::move(writes),
                                        /*max_attempts=*/10,
                                        /*backoff_ms=*/5.0);
}

TEST(TransactionTest, RetrySucceedsAfterDeath) {
  auto system = MakeSystem();
  TransactionManager manager(system.get());
  // An old lock holder (TxnId 0, older than every transaction the manager
  // will hand out) pins page 5 for 50 ms; the retrying transaction dies a
  // few times, backs off, and eventually commits.
  system->simulator().Spawn(
      HoldPageExclusive(system.get(), &manager, 0, 5, 50.0));
  TxnResult retry_result;
  system->simulator().Spawn(RunRetryTxn(&manager, 1, {5}, &retry_result));
  RunFor(system.get(), 2000.0);
  EXPECT_TRUE(retry_result.committed);
  EXPECT_GT(manager.stats().deaths, 0u);
}

TEST(TransactionTest, UpdateSourceCommitsUnderLoad) {
  auto system = MakeSystem(7);
  TransactionManager manager(system.get());
  UpdateSource::Params params;
  params.klass = 1;
  params.mean_interarrival_ms = 100.0;
  params.reads_per_txn = 2;
  params.writes_per_txn = 1;
  UpdateSource source(system.get(), &manager, params);
  source.Start();
  system->RunIntervals(6);
  EXPECT_GT(source.committed(), 100u);
  EXPECT_GT(source.commit_latency_ms().mean(), 0.0);
  // With the wait-die timestamp kept across retries, transactions cannot
  // starve; a bounded retry budget under FORCE-commit lock hold times still
  // loses a small percentage.
  EXPECT_LT(source.failed(), source.committed() / 10 + 1);
  // In-flight transactions at the horizon may still hold a few locks.
  EXPECT_LT(manager.lock_manager().locked_pages(), 20u);
}

}  // namespace
}  // namespace memgoal::txn
