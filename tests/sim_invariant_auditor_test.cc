// Invariant auditor tests: the check-running machinery itself, plus the
// system-wide audit pack registered by core/system_audits — including the
// deliberately broken accounting path (kLeakDirectoryEntry) that proves
// the detector actually fires.

#include "sim/invariant_auditor.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <optional>
#include <string>

#include "core/system.h"
#include "workload/spec.h"

namespace memgoal::sim {
namespace {

TEST(InvariantAuditorTest, CleanChecksAccumulateCounts) {
  InvariantAuditor auditor;
  auditor.AddCheck("a", [] { return std::nullopt; });
  auditor.AddCheck("b", [] { return std::nullopt; });
  EXPECT_EQ(auditor.num_checks(), 2u);
  EXPECT_EQ(auditor.RunChecks(10.0), 0);
  EXPECT_EQ(auditor.RunChecks(20.0), 0);
  EXPECT_TRUE(auditor.ok());
  EXPECT_EQ(auditor.checks_run(), 4u);
  EXPECT_EQ(auditor.violations_found(), 0u);
}

TEST(InvariantAuditorTest, ViolationRecordsTimeNameAndDetail) {
  InvariantAuditor auditor;
  auditor.AddCheck("conservation", [] { return std::nullopt; });
  bool broken = false;
  auditor.AddCheck("accounting", [&]() -> std::optional<std::string> {
    if (broken) return "ledger off by 3";
    return std::nullopt;
  });

  EXPECT_EQ(auditor.RunChecks(5.0), 0);
  broken = true;
  EXPECT_EQ(auditor.RunChecks(15.0), 1);
  EXPECT_FALSE(auditor.ok());
  ASSERT_EQ(auditor.violations().size(), 1u);
  const InvariantAuditor::Violation& violation = auditor.violations().front();
  EXPECT_DOUBLE_EQ(violation.at_ms, 15.0);
  EXPECT_EQ(violation.check, "accounting");
  EXPECT_EQ(violation.detail, "ledger off by 3");
}

TEST(InvariantAuditorTest, RetentionCapCountsButDoesNotGrow) {
  InvariantAuditor auditor;
  auditor.AddCheck("always_bad", [] { return std::string("bad"); });
  const int rounds = static_cast<int>(InvariantAuditor::kMaxViolations) + 10;
  for (int i = 0; i < rounds; ++i) {
    EXPECT_EQ(auditor.RunChecks(static_cast<double>(i)), 1);
  }
  EXPECT_EQ(auditor.violations().size(), InvariantAuditor::kMaxViolations);
  EXPECT_EQ(auditor.violations_found(), static_cast<uint64_t>(rounds));
  // Oldest retained first.
  EXPECT_DOUBLE_EQ(auditor.violations().front().at_ms, 0.0);
}

TEST(InvariantAuditorTest, WriteReportMentionsEveryRetainedViolation) {
  InvariantAuditor auditor;
  auditor.AddCheck("heat_sum", [] { return std::string("sum drifted"); });
  auditor.RunChecks(42.0);

  char buffer[4096] = {};
  std::FILE* stream = fmemopen(buffer, sizeof(buffer) - 1, "w");
  ASSERT_NE(stream, nullptr);
  auditor.WriteReport(stream);
  std::fclose(stream);
  const std::string report(buffer);
  EXPECT_NE(report.find("heat_sum"), std::string::npos);
  EXPECT_NE(report.find("sum drifted"), std::string::npos);
}

// -- System-wide audit pack (core/system_audits) ---------------------------

core::SystemConfig AuditedConfig(uint64_t seed) {
  core::SystemConfig config;
  config.num_nodes = 3;
  config.cache_bytes_per_node = 64 * 4096;
  config.db_pages = 200;
  config.observation_interval_ms = 5000.0;
  config.seed = seed;
  return config;
}

void AddWorkload(core::ClusterSystem* system) {
  workload::ClassSpec goal;
  goal.id = 1;
  goal.goal_rt_ms = 3.5;
  goal.accesses_per_op = 4;
  goal.mean_interarrival_ms = 50.0;
  goal.pages = {0, 100};
  system->AddClass(goal);
  workload::ClassSpec nogoal;
  nogoal.id = kNoGoalClass;
  nogoal.accesses_per_op = 4;
  nogoal.mean_interarrival_ms = 50.0;
  nogoal.pages = {100, 200};
  system->AddClass(nogoal);
}

TEST(SystemAuditsTest, HealthyRunPassesEveryCheck) {
  core::ClusterSystem system(AuditedConfig(81));
  AddWorkload(&system);
  InvariantAuditor auditor;
  system.EnableAuditor(&auditor);
  system.Start();
  system.RunIntervals(12);

  EXPECT_GT(auditor.num_checks(), 0u);
  EXPECT_GT(auditor.checks_run(), auditor.num_checks());
  EXPECT_TRUE(auditor.ok()) << auditor.violations().front().check << ": "
                            << auditor.violations().front().detail;
}

TEST(SystemAuditsTest, LeakedDirectoryEntriesAreCaught) {
  // kLeakDirectoryEntry keeps dropped pages registered as cached copies:
  // the directory-vs-cache copy accounting audit must flag the divergence
  // as soon as allocation churn shrinks a pool.
  core::SystemConfig config = AuditedConfig(82);
  config.injected_bug = core::InjectedBug::kLeakDirectoryEntry;
  core::ClusterSystem system(config);
  AddWorkload(&system);
  InvariantAuditor auditor;
  system.EnableAuditor(&auditor);
  system.Start();
  system.RunIntervals(12);

  EXPECT_FALSE(auditor.ok());
  ASSERT_FALSE(auditor.violations().empty());
  EXPECT_EQ(auditor.violations().front().check, "directory_copy_accounting");
}

}  // namespace
}  // namespace memgoal::sim
