#include "common/config.h"

#include <gtest/gtest.h>

namespace memgoal::common {
namespace {

TEST(ConfigTest, ParseArgs) {
  const char* argv[] = {"prog", "nodes=5", "skew=0.75", "name=base"};
  Config config;
  ASSERT_TRUE(config.ParseArgs(4, argv));
  EXPECT_EQ(config.GetInt("nodes", 0), 5);
  EXPECT_DOUBLE_EQ(config.GetDouble("skew", 0.0), 0.75);
  EXPECT_EQ(config.GetString("name", ""), "base");
}

TEST(ConfigTest, MalformedArgRejected) {
  const char* argv[] = {"prog", "no_equals_sign"};
  Config config;
  EXPECT_FALSE(config.ParseArgs(2, argv));
  EXPECT_FALSE(config.error().empty());
}

TEST(ConfigTest, GnuStyleFlagsAccepted) {
  // Bench binaries take GNU-style switches: --key=value is stripped of its
  // dashes, and a bare --flag stores "1" so GetBool sees it as set.
  const char* argv[] = {"prog", "--threads=4", "--quick", "intervals=9"};
  Config config;
  ASSERT_TRUE(config.ParseArgs(4, argv));
  EXPECT_EQ(config.GetInt("threads", 0), 4);
  EXPECT_TRUE(config.GetBool("quick", false));
  EXPECT_EQ(config.GetInt("intervals", 0), 9);
}

TEST(ConfigTest, BareDashesRejected) {
  const char* argv[] = {"prog", "--"};
  Config config;
  EXPECT_FALSE(config.ParseArgs(2, argv));
  EXPECT_FALSE(config.error().empty());
}

TEST(ConfigTest, FallbacksUsedWhenAbsent) {
  Config config;
  EXPECT_EQ(config.GetInt("missing", 42), 42);
  EXPECT_DOUBLE_EQ(config.GetDouble("missing", 1.5), 1.5);
  EXPECT_EQ(config.GetString("missing", "x"), "x");
  EXPECT_TRUE(config.GetBool("missing", true));
}

TEST(ConfigTest, ParseTextWithCommentsAndBlanks) {
  Config config;
  ASSERT_TRUE(config.ParseText(
      "# a comment\n"
      "nodes = 3\n"
      "\n"
      "cache_bytes=2097152   # trailing comment\n"));
  EXPECT_EQ(config.GetInt("nodes", 0), 3);
  EXPECT_EQ(config.GetInt("cache_bytes", 0), 2097152);
}

TEST(ConfigTest, BoolSpellings) {
  Config config;
  config.Set("a", "true");
  config.Set("b", "0");
  config.Set("c", "yes");
  config.Set("d", "off");
  EXPECT_TRUE(config.GetBool("a", false));
  EXPECT_FALSE(config.GetBool("b", true));
  EXPECT_TRUE(config.GetBool("c", false));
  EXPECT_FALSE(config.GetBool("d", true));
}

TEST(ConfigTest, UnusedKeysReported) {
  Config config;
  config.Set("used", "1");
  config.Set("unused", "2");
  config.GetInt("used", 0);
  const auto unused = config.UnusedKeys();
  ASSERT_EQ(unused.size(), 1u);
  EXPECT_EQ(unused[0], "unused");
}

TEST(ConfigTest, LastSetWins) {
  Config config;
  config.Set("k", "1");
  config.Set("k", "2");
  EXPECT_EQ(config.GetInt("k", 0), 2);
}

TEST(ConfigTest, RejectUnknownFlagsPassesWhenAllFlagsConsumed) {
  const char* argv[] = {"prog", "--threads=4", "--quick", "intervals=9"};
  Config config;
  ASSERT_TRUE(config.ParseArgs(4, argv));
  config.GetInt("threads", 0);
  config.GetBool("quick", false);
  // `intervals` was plain key=value, not a --flag, so it is exempt even
  // though nothing read it: scenario files legitimately carry extra keys.
  EXPECT_TRUE(config.RejectUnknownFlags());
}

TEST(ConfigTest, RejectUnknownFlagsFailsOnUnconsumedFlag) {
  const char* argv[] = {"prog", "--bogus=1"};
  Config config;
  ASSERT_TRUE(config.ParseArgs(2, argv));
  config.GetInt("threads", 0);
  EXPECT_FALSE(config.RejectUnknownFlags());
  EXPECT_NE(config.error().find("--bogus"), std::string::npos);
}

TEST(ConfigTest, RejectUnknownFlagsSuggestsNearMiss) {
  // "--thread" is one edit from the queried "threads" key; the error must
  // offer it back in GNU spelling (underscores rendered as dashes).
  const char* argv[] = {"prog", "--thread=4"};
  Config config;
  ASSERT_TRUE(config.ParseArgs(2, argv));
  config.GetInt("threads", 0);
  config.GetString("bench_json", "");
  EXPECT_FALSE(config.RejectUnknownFlags());
  EXPECT_NE(config.error().find("did you mean --threads?"),
            std::string::npos);

  const char* argv2[] = {"prog", "--bench-jsn=out"};
  Config config2;
  ASSERT_TRUE(config2.ParseArgs(2, argv2));
  config2.GetString("bench_json", "");
  EXPECT_FALSE(config2.RejectUnknownFlags());
  EXPECT_NE(config2.error().find("did you mean --bench-json?"),
            std::string::npos);
}

TEST(ConfigTest, NearestSuggestionSharedHelper) {
  // The helper behind the flag suggestions is reusable for enum-valued
  // scenario keys (queue=, corrupt=, scrub=): within edit distance 2 it
  // offers the nearest accepted value, beyond that nothing.
  const std::vector<std::string> accepted = {"calendar", "heap"};
  EXPECT_EQ(NearestSuggestion("calender", accepted), "calendar");
  EXPECT_EQ(NearestSuggestion("heep", accepted), "heap");
  EXPECT_EQ(NearestSuggestion("fibonacci", accepted), "");
  EXPECT_EQ(NearestSuggestion("frmaes", {"off", "disk", "frames", "all"}),
            "frames");
}

TEST(ConfigTest, RejectUnknownFlagsOmitsFarFetchedSuggestions) {
  const char* argv[] = {"prog", "--zzzzzz=1"};
  Config config;
  ASSERT_TRUE(config.ParseArgs(2, argv));
  config.GetInt("threads", 0);
  EXPECT_FALSE(config.RejectUnknownFlags());
  EXPECT_EQ(config.error().find("did you mean"), std::string::npos);
}

}  // namespace
}  // namespace memgoal::common
