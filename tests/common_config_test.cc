#include "common/config.h"

#include <gtest/gtest.h>

namespace memgoal::common {
namespace {

TEST(ConfigTest, ParseArgs) {
  const char* argv[] = {"prog", "nodes=5", "skew=0.75", "name=base"};
  Config config;
  ASSERT_TRUE(config.ParseArgs(4, argv));
  EXPECT_EQ(config.GetInt("nodes", 0), 5);
  EXPECT_DOUBLE_EQ(config.GetDouble("skew", 0.0), 0.75);
  EXPECT_EQ(config.GetString("name", ""), "base");
}

TEST(ConfigTest, MalformedArgRejected) {
  const char* argv[] = {"prog", "no_equals_sign"};
  Config config;
  EXPECT_FALSE(config.ParseArgs(2, argv));
  EXPECT_FALSE(config.error().empty());
}

TEST(ConfigTest, GnuStyleFlagsAccepted) {
  // Bench binaries take GNU-style switches: --key=value is stripped of its
  // dashes, and a bare --flag stores "1" so GetBool sees it as set.
  const char* argv[] = {"prog", "--threads=4", "--quick", "intervals=9"};
  Config config;
  ASSERT_TRUE(config.ParseArgs(4, argv));
  EXPECT_EQ(config.GetInt("threads", 0), 4);
  EXPECT_TRUE(config.GetBool("quick", false));
  EXPECT_EQ(config.GetInt("intervals", 0), 9);
}

TEST(ConfigTest, BareDashesRejected) {
  const char* argv[] = {"prog", "--"};
  Config config;
  EXPECT_FALSE(config.ParseArgs(2, argv));
  EXPECT_FALSE(config.error().empty());
}

TEST(ConfigTest, FallbacksUsedWhenAbsent) {
  Config config;
  EXPECT_EQ(config.GetInt("missing", 42), 42);
  EXPECT_DOUBLE_EQ(config.GetDouble("missing", 1.5), 1.5);
  EXPECT_EQ(config.GetString("missing", "x"), "x");
  EXPECT_TRUE(config.GetBool("missing", true));
}

TEST(ConfigTest, ParseTextWithCommentsAndBlanks) {
  Config config;
  ASSERT_TRUE(config.ParseText(
      "# a comment\n"
      "nodes = 3\n"
      "\n"
      "cache_bytes=2097152   # trailing comment\n"));
  EXPECT_EQ(config.GetInt("nodes", 0), 3);
  EXPECT_EQ(config.GetInt("cache_bytes", 0), 2097152);
}

TEST(ConfigTest, BoolSpellings) {
  Config config;
  config.Set("a", "true");
  config.Set("b", "0");
  config.Set("c", "yes");
  config.Set("d", "off");
  EXPECT_TRUE(config.GetBool("a", false));
  EXPECT_FALSE(config.GetBool("b", true));
  EXPECT_TRUE(config.GetBool("c", false));
  EXPECT_FALSE(config.GetBool("d", true));
}

TEST(ConfigTest, UnusedKeysReported) {
  Config config;
  config.Set("used", "1");
  config.Set("unused", "2");
  config.GetInt("used", 0);
  const auto unused = config.UnusedKeys();
  ASSERT_EQ(unused.size(), 1u);
  EXPECT_EQ(unused[0], "unused");
}

TEST(ConfigTest, LastSetWins) {
  Config config;
  config.Set("k", "1");
  config.Set("k", "2");
  EXPECT_EQ(config.GetInt("k", 0), 2);
}

}  // namespace
}  // namespace memgoal::common
