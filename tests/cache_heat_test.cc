#include "cache/heat.h"

#include <algorithm>

#include <gtest/gtest.h>

namespace memgoal::cache {
namespace {

TEST(HeatTrackerTest, NeverAccessedIsZero) {
  HeatTracker tracker(2);
  EXPECT_DOUBLE_EQ(tracker.HeatOf(1, 100.0), 0.0);
  EXPECT_EQ(tracker.AccessCount(1), 0);
}

TEST(HeatTrackerTest, SingleAccessHeat) {
  HeatTracker tracker(2, /*epsilon_ms=*/1.0);
  tracker.RecordAccess(1, 100.0);
  // heat = 1 / (now - t1 + eps).
  EXPECT_DOUBLE_EQ(tracker.HeatOf(1, 150.0), 1.0 / 51.0);
  EXPECT_EQ(tracker.AccessCount(1), 1);
}

TEST(HeatTrackerTest, LruKUsesKthMostRecent) {
  HeatTracker tracker(2, 1.0);
  tracker.RecordAccess(1, 100.0);
  tracker.RecordAccess(1, 200.0);
  tracker.RecordAccess(1, 300.0);
  // K=2: second most recent access is at t=200.
  EXPECT_DOUBLE_EQ(tracker.BackwardKTime(1), 200.0);
  EXPECT_DOUBLE_EQ(tracker.HeatOf(1, 400.0), 2.0 / 201.0);
}

TEST(HeatTrackerTest, HeatDecaysOverTime) {
  HeatTracker tracker(2, 1.0);
  tracker.RecordAccess(1, 0.0);
  tracker.RecordAccess(1, 10.0);
  const double early = tracker.HeatOf(1, 20.0);
  const double late = tracker.HeatOf(1, 2000.0);
  EXPECT_GT(early, late);
}

TEST(HeatTrackerTest, FrequentAccessesAreHotter) {
  HeatTracker tracker(2, 1.0);
  tracker.RecordAccess(1, 90.0);
  tracker.RecordAccess(1, 100.0);
  tracker.RecordAccess(2, 10.0);
  tracker.RecordAccess(2, 100.0);
  EXPECT_GT(tracker.HeatOf(1, 101.0), tracker.HeatOf(2, 101.0));
}

TEST(HeatTrackerTest, HistorySurvivesForget) {
  HeatTracker tracker(2);
  tracker.RecordAccess(1, 10.0);
  EXPECT_EQ(tracker.tracked_pages(), 1u);
  tracker.Forget(1);
  EXPECT_EQ(tracker.tracked_pages(), 0u);
  EXPECT_DOUBLE_EQ(tracker.HeatOf(1, 20.0), 0.0);
}

TEST(HeatTrackerTest, BackwardKTimeBeforeKAccesses) {
  HeatTracker tracker(3);
  tracker.RecordAccess(1, 50.0);
  tracker.RecordAccess(1, 60.0);
  // Only 2 of 3 accesses: oldest retained is t=50.
  EXPECT_DOUBLE_EQ(tracker.BackwardKTime(1), 50.0);
}

class HeatKSweepTest : public ::testing::TestWithParam<int> {};

TEST_P(HeatKSweepTest, CircularBufferWrapsCorrectly) {
  const int k = GetParam();
  HeatTracker tracker(k, 1.0);
  // 3k accesses at times 1, 2, ..., 3k.
  for (int t = 1; t <= 3 * k; ++t) {
    tracker.RecordAccess(7, static_cast<double>(t));
  }
  // The K-th most recent is at time 3k - (k - 1) = 2k + 1.
  EXPECT_DOUBLE_EQ(tracker.BackwardKTime(7), static_cast<double>(2 * k + 1));
  const double now = static_cast<double>(3 * k + 10);
  EXPECT_DOUBLE_EQ(tracker.HeatOf(7, now),
                   static_cast<double>(k) / (now - (2 * k + 1) + 1.0));
}

INSTANTIATE_TEST_SUITE_P(Ks, HeatKSweepTest, ::testing::Values(1, 2, 3, 5, 8));

TEST(HeatTrackerTest, EvictColderThanDropsStaleHistory) {
  HeatTracker tracker(2);
  tracker.RecordAccess(1, 10.0);
  tracker.RecordAccess(1, 20.0);   // backward-2 time 10
  tracker.RecordAccess(2, 90.0);   // backward time 90
  tracker.RecordAccess(3, 40.0);
  tracker.RecordAccess(3, 95.0);   // backward-2 time 40
  ASSERT_EQ(tracker.tracked_pages(), 3u);

  EXPECT_EQ(tracker.EvictColderThan(50.0), 2u);  // pages 1 and 3
  EXPECT_EQ(tracker.tracked_pages(), 1u);
  EXPECT_EQ(tracker.AccessCount(1), 0);
  EXPECT_EQ(tracker.AccessCount(3), 0);
  // Page 2 survives with its history intact.
  EXPECT_DOUBLE_EQ(tracker.BackwardKTime(2), 90.0);
  // An evicted page restarts cold, exactly like one never seen.
  EXPECT_DOUBLE_EQ(tracker.HeatOf(1, 100.0), 0.0);
  tracker.RecordAccess(1, 100.0);
  EXPECT_EQ(tracker.AccessCount(1), 1);
}

TEST(HeatTrackerTest, EvictColderThanHonorsRetainPredicate) {
  HeatTracker tracker(2);
  tracker.RecordAccess(1, 10.0);
  tracker.RecordAccess(2, 10.0);
  // Both are stale, but page 1 is "resident" and must be kept.
  const size_t evicted = tracker.EvictColderThan(
      50.0, [](PageId page) { return page == 1; });
  EXPECT_EQ(evicted, 1u);
  EXPECT_EQ(tracker.tracked_pages(), 1u);
  EXPECT_EQ(tracker.AccessCount(1), 1);
  EXPECT_EQ(tracker.AccessCount(2), 0);
}

TEST(HeatTrackerTest, LongScanStaysBoundedUnderPeriodicEviction) {
  // A pure sequential scan touches each page once. Without pruning the map
  // grows by one record per page forever; with a periodic horizon sweep the
  // footprint is bounded by the pages touched within one horizon.
  HeatTracker tracker(2);
  constexpr double kHorizonMs = 1000.0;
  constexpr double kStepMs = 1.0;
  size_t max_tracked = 0;
  for (int page = 0; page < 20000; ++page) {
    const double now = page * kStepMs;
    tracker.RecordAccess(static_cast<PageId>(page), now);
    if (page % 500 == 0 && now > kHorizonMs) {
      tracker.EvictColderThan(now - kHorizonMs);
    }
    max_tracked = std::max(max_tracked, tracker.tracked_pages());
  }
  // Bound: one horizon's worth of scan pages plus one sweep period of slack
  // — far below the 20000 pages touched.
  EXPECT_LE(max_tracked,
            static_cast<size_t>(kHorizonMs / kStepMs) + 500 + 1);
  EXPECT_GE(max_tracked, static_cast<size_t>(kHorizonMs / kStepMs) / 2);
}

}  // namespace
}  // namespace memgoal::cache
