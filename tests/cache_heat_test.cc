#include "cache/heat.h"

#include <gtest/gtest.h>

namespace memgoal::cache {
namespace {

TEST(HeatTrackerTest, NeverAccessedIsZero) {
  HeatTracker tracker(2);
  EXPECT_DOUBLE_EQ(tracker.HeatOf(1, 100.0), 0.0);
  EXPECT_EQ(tracker.AccessCount(1), 0);
}

TEST(HeatTrackerTest, SingleAccessHeat) {
  HeatTracker tracker(2, /*epsilon_ms=*/1.0);
  tracker.RecordAccess(1, 100.0);
  // heat = 1 / (now - t1 + eps).
  EXPECT_DOUBLE_EQ(tracker.HeatOf(1, 150.0), 1.0 / 51.0);
  EXPECT_EQ(tracker.AccessCount(1), 1);
}

TEST(HeatTrackerTest, LruKUsesKthMostRecent) {
  HeatTracker tracker(2, 1.0);
  tracker.RecordAccess(1, 100.0);
  tracker.RecordAccess(1, 200.0);
  tracker.RecordAccess(1, 300.0);
  // K=2: second most recent access is at t=200.
  EXPECT_DOUBLE_EQ(tracker.BackwardKTime(1), 200.0);
  EXPECT_DOUBLE_EQ(tracker.HeatOf(1, 400.0), 2.0 / 201.0);
}

TEST(HeatTrackerTest, HeatDecaysOverTime) {
  HeatTracker tracker(2, 1.0);
  tracker.RecordAccess(1, 0.0);
  tracker.RecordAccess(1, 10.0);
  const double early = tracker.HeatOf(1, 20.0);
  const double late = tracker.HeatOf(1, 2000.0);
  EXPECT_GT(early, late);
}

TEST(HeatTrackerTest, FrequentAccessesAreHotter) {
  HeatTracker tracker(2, 1.0);
  tracker.RecordAccess(1, 90.0);
  tracker.RecordAccess(1, 100.0);
  tracker.RecordAccess(2, 10.0);
  tracker.RecordAccess(2, 100.0);
  EXPECT_GT(tracker.HeatOf(1, 101.0), tracker.HeatOf(2, 101.0));
}

TEST(HeatTrackerTest, HistorySurvivesForget) {
  HeatTracker tracker(2);
  tracker.RecordAccess(1, 10.0);
  EXPECT_EQ(tracker.tracked_pages(), 1u);
  tracker.Forget(1);
  EXPECT_EQ(tracker.tracked_pages(), 0u);
  EXPECT_DOUBLE_EQ(tracker.HeatOf(1, 20.0), 0.0);
}

TEST(HeatTrackerTest, BackwardKTimeBeforeKAccesses) {
  HeatTracker tracker(3);
  tracker.RecordAccess(1, 50.0);
  tracker.RecordAccess(1, 60.0);
  // Only 2 of 3 accesses: oldest retained is t=50.
  EXPECT_DOUBLE_EQ(tracker.BackwardKTime(1), 50.0);
}

class HeatKSweepTest : public ::testing::TestWithParam<int> {};

TEST_P(HeatKSweepTest, CircularBufferWrapsCorrectly) {
  const int k = GetParam();
  HeatTracker tracker(k, 1.0);
  // 3k accesses at times 1, 2, ..., 3k.
  for (int t = 1; t <= 3 * k; ++t) {
    tracker.RecordAccess(7, static_cast<double>(t));
  }
  // The K-th most recent is at time 3k - (k - 1) = 2k + 1.
  EXPECT_DOUBLE_EQ(tracker.BackwardKTime(7), static_cast<double>(2 * k + 1));
  const double now = static_cast<double>(3 * k + 10);
  EXPECT_DOUBLE_EQ(tracker.HeatOf(7, now),
                   static_cast<double>(k) / (now - (2 * k + 1) + 1.0));
}

INSTANTIATE_TEST_SUITE_P(Ks, HeatKSweepTest, ::testing::Values(1, 2, 3, 5, 8));

}  // namespace
}  // namespace memgoal::cache
