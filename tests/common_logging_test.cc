#include "common/logging.h"

#include <gtest/gtest.h>

namespace memgoal::common {
namespace {

class LoggingTest : public ::testing::Test {
 protected:
  void TearDown() override { Logger::SetLevel(LogLevel::kWarn); }
};

TEST_F(LoggingTest, LevelFiltering) {
  Logger::SetLevel(LogLevel::kWarn);
  EXPECT_FALSE(Logger::Enabled(LogLevel::kTrace));
  EXPECT_FALSE(Logger::Enabled(LogLevel::kDebug));
  EXPECT_FALSE(Logger::Enabled(LogLevel::kInfo));
  EXPECT_TRUE(Logger::Enabled(LogLevel::kWarn));
  EXPECT_TRUE(Logger::Enabled(LogLevel::kError));

  Logger::SetLevel(LogLevel::kTrace);
  EXPECT_TRUE(Logger::Enabled(LogLevel::kTrace));

  Logger::SetLevel(LogLevel::kOff);
  EXPECT_FALSE(Logger::Enabled(LogLevel::kError));
}

TEST_F(LoggingTest, ParseLevelNames) {
  EXPECT_EQ(Logger::ParseLevel("trace"), LogLevel::kTrace);
  EXPECT_EQ(Logger::ParseLevel("debug"), LogLevel::kDebug);
  EXPECT_EQ(Logger::ParseLevel("info"), LogLevel::kInfo);
  EXPECT_EQ(Logger::ParseLevel("warn"), LogLevel::kWarn);
  EXPECT_EQ(Logger::ParseLevel("error"), LogLevel::kError);
  EXPECT_EQ(Logger::ParseLevel("off"), LogLevel::kOff);
  // Unknown names default to info.
  EXPECT_EQ(Logger::ParseLevel("bogus"), LogLevel::kInfo);
}

TEST_F(LoggingTest, LogfDoesNotCrashWhenDisabled) {
  Logger::SetLevel(LogLevel::kOff);
  MEMGOAL_LOG_ERROR("never printed %d", 42);
  Logger::SetLevel(LogLevel::kError);
  MEMGOAL_LOG_ERROR("printed to stderr %s", "ok");
}

}  // namespace
}  // namespace memgoal::common
