#include "la/matrix.h"

#include <gtest/gtest.h>

namespace memgoal::la {
namespace {

TEST(VectorOpsTest, DotAndNorms) {
  Vector a{1.0, 2.0, 3.0};
  Vector b{4.0, -5.0, 6.0};
  EXPECT_DOUBLE_EQ(Dot(a, b), 4.0 - 10.0 + 18.0);
  EXPECT_DOUBLE_EQ(Norm2(Vector{3.0, 4.0}), 5.0);
  EXPECT_DOUBLE_EQ(NormInf(b), 6.0);
  EXPECT_DOUBLE_EQ(NormInf(Vector{}), 0.0);
}

TEST(VectorOpsTest, Axpy) {
  Vector x{1.0, 2.0};
  Vector y{10.0, 20.0};
  Axpy(2.0, x, &y);
  EXPECT_DOUBLE_EQ(y[0], 12.0);
  EXPECT_DOUBLE_EQ(y[1], 24.0);
}

TEST(MatrixTest, IdentityAndAccess) {
  Matrix id = Matrix::Identity(3);
  for (size_t i = 0; i < 3; ++i) {
    for (size_t j = 0; j < 3; ++j) {
      EXPECT_DOUBLE_EQ(id(i, j), i == j ? 1.0 : 0.0);
    }
  }
}

TEST(MatrixTest, RowColSetRow) {
  Matrix m(2, 3);
  m.SetRow(0, Vector{1.0, 2.0, 3.0});
  m.SetRow(1, Vector{4.0, 5.0, 6.0});
  EXPECT_EQ(m.Row(1), (Vector{4.0, 5.0, 6.0}));
  EXPECT_EQ(m.Col(2), (Vector{3.0, 6.0}));
}

TEST(MatrixTest, MatrixVectorProduct) {
  Matrix m(2, 3);
  m.SetRow(0, Vector{1.0, 0.0, 2.0});
  m.SetRow(1, Vector{0.0, 3.0, 0.0});
  Vector y = m.Multiply(Vector{1.0, 2.0, 3.0});
  EXPECT_EQ(y, (Vector{7.0, 6.0}));
}

TEST(MatrixTest, MatrixMatrixProduct) {
  Matrix a(2, 2);
  a.SetRow(0, Vector{1.0, 2.0});
  a.SetRow(1, Vector{3.0, 4.0});
  Matrix b(2, 2);
  b.SetRow(0, Vector{0.0, 1.0});
  b.SetRow(1, Vector{1.0, 0.0});
  Matrix c = a.Multiply(b);
  EXPECT_DOUBLE_EQ(c(0, 0), 2.0);
  EXPECT_DOUBLE_EQ(c(0, 1), 1.0);
  EXPECT_DOUBLE_EQ(c(1, 0), 4.0);
  EXPECT_DOUBLE_EQ(c(1, 1), 3.0);
}

TEST(MatrixTest, IdentityIsMultiplicativeNeutral) {
  Matrix a(3, 3);
  a.SetRow(0, Vector{1.0, 2.0, 3.0});
  a.SetRow(1, Vector{4.0, 5.0, 6.0});
  a.SetRow(2, Vector{7.0, 8.0, 10.0});
  Matrix prod = a.Multiply(Matrix::Identity(3));
  for (size_t i = 0; i < 3; ++i) {
    for (size_t j = 0; j < 3; ++j) {
      EXPECT_DOUBLE_EQ(prod(i, j), a(i, j));
    }
  }
}

TEST(MatrixTest, MaxAbs) {
  Matrix m(2, 2);
  m.SetRow(0, Vector{1.0, -9.0});
  m.SetRow(1, Vector{3.0, 2.0});
  EXPECT_DOUBLE_EQ(m.MaxAbs(), 9.0);
  EXPECT_DOUBLE_EQ(Matrix().MaxAbs(), 0.0);
}

}  // namespace
}  // namespace memgoal::la
