// Dense-vs-revised LP backend differential: every checked-in scenario file
// replayed end to end through both simplex backends must make the same
// control decisions. The two backends share nothing past the SimplexSolver
// interface — full tableau vs LU-factorized revised method — so agreement
// here pins the controller's observable behavior (page-rounded allocations,
// interval metrics, LP mode ladder) to the LP itself rather than to one
// implementation's floating-point quirks.
//
// The raw LP solution is *not* required to be bit-identical: alternate
// optima and last-ulp differences in interior coordinates are legal. What
// must agree exactly is everything the cluster acts on — the shipped and
// granted allocations after damping and frame rounding, and the metrics
// CSV the whole downstream simulation derives from. The raw solutions must
// still agree to 1e-9 relative, per the scaling issue's acceptance bar.

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/config.h"
#include "core/metrics.h"
#include "core/optimizer.h"
#include "core/scenario.h"
#include "core/system.h"
#include "core/variance_optimizer.h"
#include "la/simplex.h"
#include "obs/decision_log.h"

namespace memgoal::core {
namespace {

std::string CsvOf(const MetricsLog& log) {
  char* buf = nullptr;
  size_t size = 0;
  std::FILE* stream = open_memstream(&buf, &size);
  log.WriteCsv(stream);
  std::fclose(stream);
  std::string csv(buf, size);
  std::free(buf);
  return csv;
}

struct LpRun {
  std::string metrics_csv;
  std::vector<obs::DecisionRecord> records;
  uint64_t events = 0;
};

// One full scenario run with the given lp= backend appended (later scenario
// lines override earlier ones).
std::optional<LpRun> RunScenarioLp(const std::string& text,
                                   const std::string& backend) {
  common::Config config;
  if (!config.ParseText(text + "\nlp=" + backend + "\n")) {
    ADD_FAILURE() << "bad scenario text: " << config.error();
    return std::nullopt;
  }
  std::string error;
  std::optional<Scenario> scenario = LoadScenario(config, &error);
  if (!scenario.has_value()) {
    ADD_FAILURE() << "LoadScenario: " << error;
    return std::nullopt;
  }
  ClusterSystem system(scenario->system);
  for (const workload::ClassSpec& spec : scenario->classes) {
    system.AddClass(spec);
  }
  obs::DecisionLog decision_log;
  system.SetDecisionLog(&decision_log);
  system.Start();
  system.RunIntervals(scenario->intervals);

  LpRun run;
  run.metrics_csv = CsvOf(system.metrics());
  run.records = decision_log.records();
  run.events = system.simulator().events_processed();
  return run;
}

// Strips the fields that legitimately differ between backends: the warm
// start bookkeeping (dense never exports a basis, so it never warms) and
// the raw pre-rounding LP solution (compared separately, to tolerance).
obs::DecisionRecord Normalized(obs::DecisionRecord record) {
  record.lp_warm = false;
  record.lp_warm_basis.clear();
  record.lp_allocation.clear();
  return record;
}

void ExpectLpBackendsAgree(const std::string& text, const std::string& what) {
  const std::optional<LpRun> dense = RunScenarioLp(text, "dense");
  const std::optional<LpRun> revised = RunScenarioLp(text, "revised");
  ASSERT_TRUE(dense.has_value() && revised.has_value()) << what;
  EXPECT_GT(dense->events, 0u) << what;
  EXPECT_EQ(dense->events, revised->events) << what;
  EXPECT_EQ(dense->metrics_csv, revised->metrics_csv) << what;

  ASSERT_EQ(dense->records.size(), revised->records.size()) << what;
  EXPECT_FALSE(dense->records.empty()) << what;
  size_t lp_records = 0;
  for (size_t i = 0; i < dense->records.size(); ++i) {
    const obs::DecisionRecord& d = dense->records[i];
    const obs::DecisionRecord& r = revised->records[i];
    // Everything but the warm bookkeeping and raw LP point — including the
    // mode ladder, relaxation rungs, status counts, and the shipped and
    // granted byte vectors — must serialize identically.
    ASSERT_EQ(Normalized(d).ToJson(), Normalized(r).ToJson())
        << what << " record " << i;
    ASSERT_EQ(d.lp_allocation.size(), r.lp_allocation.size())
        << what << " record " << i;
    for (size_t j = 0; j < d.lp_allocation.size(); ++j) {
      const double tol = 1e-9 * std::max(1.0, std::fabs(d.lp_allocation[j]));
      EXPECT_NEAR(d.lp_allocation[j], r.lp_allocation[j], tol)
          << what << " record " << i << " node " << j;
    }
    if (d.lp_run) ++lp_records;
  }
  // The scenario actually exercised the optimizer.
  EXPECT_GT(lp_records, 0u) << what;
}

TEST(LpBackendDifferential, ScenarioFilesReplayIdentically) {
  const std::vector<std::string> scenarios = {
      "base.conf", "corrupt.conf", "faults.conf", "gray.conf",
      "oltp_dss.conf", "partition.conf"};
  for (const std::string& name : scenarios) {
    const std::string path = std::string(MEMGOAL_SCENARIO_DIR "/") + name;
    std::ifstream file(path);
    ASSERT_TRUE(file.is_open()) << path;
    std::ostringstream buffer;
    buffer << file.rdbuf();
    ExpectLpBackendsAgree(buffer.str() + "\nintervals=6\n", name);
  }
}

TEST(LpBackendDifferential, LoggedDecisionsResolveIdenticallyOffline) {
  // Second layer of the differential: take every LP the revised-backend run
  // actually posed (planes, goal, bounds straight from the decision log),
  // re-solve it offline through BOTH backends, and require the same mode,
  // the same relaxation rung, objective agreement to 1e-9, and identical
  // allocations after the controller's page rounding. This checks the
  // solvers on the genuine production instances, decoupled from the
  // feedback loop (a near-miss at record 3 cannot hide behind identical
  // downstream behavior).
  constexpr double kPage = 4096.0;
  const std::vector<std::string> scenarios = {
      "base.conf", "gray.conf", "oltp_dss.conf"};
  size_t replayed = 0;
  for (const std::string& name : scenarios) {
    const std::string path = std::string(MEMGOAL_SCENARIO_DIR "/") + name;
    std::ifstream file(path);
    ASSERT_TRUE(file.is_open()) << path;
    std::ostringstream buffer;
    buffer << file.rdbuf();
    // Longer horizon than the full-run differential: the measure store
    // needs N+1 warm-up points before any check reaches the LP.
    const std::optional<LpRun> run =
        RunScenarioLp(buffer.str() + "\nintervals=16\n", "revised");
    ASSERT_TRUE(run.has_value()) << name;
    for (const obs::DecisionRecord& record : run->records) {
      if (!record.lp_run || !record.has_planes) continue;
      OptimizerInput input;
      input.planes.grad_k = record.grad_k;
      input.planes.intercept_k = record.intercept_k;
      input.planes.grad_0 = record.grad_0;
      input.planes.intercept_0 = record.intercept_0;
      input.goal_rt = record.goal_rt;
      input.upper_bounds = record.upper_bounds;

      input.lp_backend = la::LpBackend::kDense;
      const OptimizerOutput dense = SolvePartitioning(input);
      input.lp_backend = la::LpBackend::kRevised;
      const OptimizerOutput revised = SolvePartitioning(input);

      EXPECT_EQ(dense.mode, revised.mode) << name;
      EXPECT_EQ(dense.relaxed_rung, revised.relaxed_rung) << name;
      const double tol =
          1e-9 * std::max(1.0, std::fabs(dense.predicted_rt_0));
      EXPECT_NEAR(dense.predicted_rt_0, revised.predicted_rt_0, tol) << name;
      ASSERT_EQ(dense.allocation.size(), revised.allocation.size());
      for (size_t i = 0; i < dense.allocation.size(); ++i) {
        EXPECT_EQ(std::floor(dense.allocation[i] / kPage),
                  std::floor(revised.allocation[i] / kPage))
            << name << " node " << i;
      }
      ++replayed;
    }
  }
  EXPECT_GT(replayed, 10u);
}

TEST(LpBackendDifferential, WarmStartedSolvesReplayBitForBit) {
  // The lp_warm_basis field's contract: a warm-started production solve is
  // reproducible offline by re-offering the logged basis. Replay every
  // warm record of a revised-backend run and require the bit-identical
  // allocation the controller logged.
  const std::string path = std::string(MEMGOAL_SCENARIO_DIR "/") + "base.conf";
  std::ifstream file(path);
  ASSERT_TRUE(file.is_open()) << path;
  std::ostringstream buffer;
  buffer << file.rdbuf();
  const std::optional<LpRun> run =
      RunScenarioLp(buffer.str() + "\nintervals=8\n", "revised");
  ASSERT_TRUE(run.has_value());
  size_t warm_replayed = 0;
  for (const obs::DecisionRecord& record : run->records) {
    if (!record.lp_run || !record.has_planes || !record.lp_warm) continue;
    la::SimplexBasis basis;
    ASSERT_TRUE(la::SimplexBasis::FromText(record.lp_warm_basis, &basis));
    ASSERT_FALSE(basis.empty());
    OptimizerInput input;
    input.planes.grad_k = record.grad_k;
    input.planes.intercept_k = record.intercept_k;
    input.planes.grad_0 = record.grad_0;
    input.planes.intercept_0 = record.intercept_0;
    input.goal_rt = record.goal_rt;
    input.upper_bounds = record.upper_bounds;
    input.warm = &basis;
    const OptimizerOutput replayed = SolvePartitioning(input);
    EXPECT_EQ(OptimizerModeName(replayed.mode), record.lp_mode);
    ASSERT_EQ(replayed.allocation.size(), record.lp_allocation.size());
    for (size_t i = 0; i < replayed.allocation.size(); ++i) {
      EXPECT_EQ(replayed.allocation[i], record.lp_allocation[i])
          << "node " << i;
    }
    ++warm_replayed;
  }
  // Steady state warms: most checks past warm-up must have offered a basis.
  EXPECT_GT(warm_replayed, 0u);
}

TEST(LpBackendDifferential, VarianceObjectiveAgreesAcrossBackends) {
  // No committed scenario runs the §8 variance objective, so cover its
  // 2n-variable LP shape directly. The minimum-MAD face of this LP is
  // typically not a single vertex (sliding allocation between nodes whose
  // dispersion terms are interior moves along an optimal edge), so the two
  // backends may legally return different points; what must agree is the
  // mode ladder and the objective — predicted mean and dispersion — plus
  // feasibility of both points.
  for (const size_t n : {3u, 6u, 12u}) {
    VarianceOptimizerInput input;
    input.node_planes.resize(n);
    input.mean_grad.assign(n, 0.0);
    input.upper_bounds.assign(n, 2.0 * 1024 * 1024);
    for (size_t i = 0; i < n; ++i) {
      const double slope = -1e-6 * (1.0 + 0.37 * static_cast<double>(i));
      input.node_planes[i].grad.assign(n, 0.0);
      input.node_planes[i].grad[i] = slope;
      // Strictly distinct intercepts: symmetric ties would admit alternate
      // optima, where the backends may legally pick different vertices.
      input.node_planes[i].intercept = 20.0 + 1.7 * static_cast<double>(i);
      input.mean_grad[i] = slope / static_cast<double>(n);
      input.mean_intercept += input.node_planes[i].intercept /
                              static_cast<double>(n);
    }
    input.goal_rt = 18.0;

    input.lp_backend = la::LpBackend::kDense;
    const VarianceOptimizerOutput dense = SolveVariancePartitioning(input);
    input.lp_backend = la::LpBackend::kRevised;
    const VarianceOptimizerOutput revised = SolveVariancePartitioning(input);

    // This instance's goal is unreachable outright but reachable on the
    // relaxation ladder — at a deeper rung as n (and the zero-allocation
    // mean) grows — so it exercises the full retry chain on both backends.
    EXPECT_EQ(dense.mode, OptimizerMode::kGoalRelaxed) << "n=" << n;
    EXPECT_EQ(dense.mode, revised.mode) << "n=" << n;
    EXPECT_EQ(dense.relaxed_goal_rt, revised.relaxed_goal_rt) << "n=" << n;
    const double mad_tol =
        1e-9 * std::max(1.0, std::fabs(dense.predicted_mad_rt));
    EXPECT_NEAR(dense.predicted_mad_rt, revised.predicted_mad_rt, mad_tol)
        << "n=" << n;
    // The relaxed rung solves an *inequality* LP, so the mean is only
    // bounded, not pinned: both points must respect the relaxed goal.
    for (const VarianceOptimizerOutput* out : {&dense, &revised}) {
      EXPECT_LE(out->predicted_mean_rt, dense.relaxed_goal_rt + 1e-6)
          << "n=" << n;
    }
    ASSERT_EQ(dense.allocation.size(), revised.allocation.size());
    for (size_t i = 0; i < n; ++i) {
      for (const VarianceOptimizerOutput* out : {&dense, &revised}) {
        EXPECT_GE(out->allocation[i], 0.0) << "n=" << n << " node " << i;
        EXPECT_LE(out->allocation[i], input.upper_bounds[i])
            << "n=" << n << " node " << i;
      }
    }
  }
}

}  // namespace
}  // namespace memgoal::core
