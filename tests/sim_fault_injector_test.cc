#include "sim/fault_injector.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <tuple>
#include <utility>
#include <vector>

#include "sim/simulator.h"

namespace memgoal::sim {
namespace {

TEST(FaultInjectorTest, ScriptedCrashAndRecovery) {
  Simulator simulator;
  FaultInjector::Params params;
  params.script = {{100.0, 1, /*crash=*/true}, {250.0, 1, /*crash=*/false}};
  FaultInjector injector(&simulator, 3, params);

  std::vector<std::pair<double, bool>> events;  // (time, is_crash)
  injector.SetCallbacks(
      [&](uint32_t node) {
        EXPECT_EQ(node, 1u);
        // The crash state is already committed when the callback runs.
        EXPECT_FALSE(injector.IsUp(1));
        events.emplace_back(simulator.Now(), true);
      },
      [&](uint32_t node) {
        EXPECT_EQ(node, 1u);
        EXPECT_TRUE(injector.IsUp(1));
        events.emplace_back(simulator.Now(), false);
      });
  injector.Start();

  EXPECT_TRUE(injector.IsUp(1));
  EXPECT_EQ(injector.nodes_up(), 3u);
  EXPECT_EQ(injector.epoch(1), 0u);

  simulator.RunUntil(150.0);
  EXPECT_FALSE(injector.IsUp(1));
  EXPECT_TRUE(injector.IsUp(0));
  EXPECT_EQ(injector.nodes_up(), 2u);
  EXPECT_EQ(injector.epoch(1), 1u);

  simulator.RunUntil(300.0);
  EXPECT_TRUE(injector.IsUp(1));
  EXPECT_EQ(injector.nodes_up(), 3u);
  // Recovery does not bump the epoch; only crashes do.
  EXPECT_EQ(injector.epoch(1), 1u);

  ASSERT_EQ(events.size(), 2u);
  EXPECT_DOUBLE_EQ(events[0].first, 100.0);
  EXPECT_TRUE(events[0].second);
  EXPECT_DOUBLE_EQ(events[1].first, 250.0);
  EXPECT_FALSE(events[1].second);
  EXPECT_EQ(injector.stats().crashes, 1u);
  EXPECT_EQ(injector.stats().recoveries, 1u);
  EXPECT_EQ(injector.stats().suppressed, 0u);
}

TEST(FaultInjectorTest, MinLiveNodesFloorSuppressesCrashes) {
  Simulator simulator;
  FaultInjector::Params params;
  params.min_live_nodes = 2;
  FaultInjector injector(&simulator, 3, params);

  EXPECT_TRUE(injector.Crash(0));
  EXPECT_EQ(injector.nodes_up(), 2u);
  // A second crash would leave only one node up — below the floor.
  EXPECT_FALSE(injector.Crash(1));
  EXPECT_TRUE(injector.IsUp(1));
  EXPECT_EQ(injector.stats().suppressed, 1u);
  EXPECT_EQ(injector.stats().crashes, 1u);

  EXPECT_TRUE(injector.Recover(0));
  EXPECT_TRUE(injector.Crash(1));
  EXPECT_EQ(injector.nodes_up(), 2u);
}

TEST(FaultInjectorTest, DoubleCrashAndDoubleRecoverAreRejected) {
  Simulator simulator;
  FaultInjector::Params params;
  params.min_live_nodes = 0;
  FaultInjector injector(&simulator, 2, params);

  EXPECT_FALSE(injector.Recover(0));  // already up
  EXPECT_TRUE(injector.Crash(0));
  EXPECT_FALSE(injector.Crash(0));  // already down
  EXPECT_EQ(injector.epoch(0), 1u);
  EXPECT_TRUE(injector.Recover(0));
  EXPECT_FALSE(injector.Recover(0));
  EXPECT_EQ(injector.stats().crashes, 1u);
  EXPECT_EQ(injector.stats().recoveries, 1u);
}

TEST(FaultInjectorTest, StochasticProcessIsDeterministicUnderSeed) {
  auto run = [](uint64_t seed) {
    Simulator simulator;
    FaultInjector::Params params;
    params.mttf_ms = 5000.0;
    params.mttr_ms = 1000.0;
    params.seed = seed;
    params.min_live_nodes = 1;
    FaultInjector injector(&simulator, 3, params);
    std::vector<std::pair<double, uint32_t>> crashes;
    injector.SetCallbacks(
        [&](uint32_t node) { crashes.emplace_back(simulator.Now(), node); },
        nullptr);
    injector.Start();
    simulator.RunUntil(100000.0);
    EXPECT_GE(injector.nodes_up(), 1u);
    return crashes;
  };

  const auto a = run(7);
  const auto b = run(7);
  const auto c = run(8);
  EXPECT_FALSE(a.empty());
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
}

TEST(FaultInjectorTest, StochasticProcessDisabledByZeroMttf) {
  Simulator simulator;
  FaultInjector::Params params;
  params.mttf_ms = 0.0;
  FaultInjector injector(&simulator, 3, params);
  injector.Start();
  simulator.RunUntil(1e6);
  EXPECT_EQ(injector.nodes_up(), 3u);
  EXPECT_EQ(injector.stats().crashes, 0u);
}

TEST(FaultInjectorTest, ScriptedDegradationBeginsAndLifts) {
  Simulator simulator;
  FaultInjector::Params params;
  params.degradation_script = {{100.0, 1, /*begin=*/true, 50.0},
                               {250.0, 1, /*begin=*/false}};
  FaultInjector injector(&simulator, 3, params);

  std::vector<std::pair<double, bool>> events;  // (time, is_begin)
  injector.SetDegradationCallbacks(
      [&](uint32_t node) {
        EXPECT_EQ(node, 1u);
        // The slowdown is already committed when the callback runs.
        EXPECT_DOUBLE_EQ(injector.SlowdownOf(1), 50.0);
        events.emplace_back(simulator.Now(), true);
      },
      [&](uint32_t node) {
        EXPECT_EQ(node, 1u);
        EXPECT_DOUBLE_EQ(injector.SlowdownOf(1), 1.0);
        events.emplace_back(simulator.Now(), false);
      });
  injector.Start();

  EXPECT_FALSE(injector.IsDegraded(1));
  simulator.RunUntil(150.0);
  EXPECT_TRUE(injector.IsDegraded(1));
  EXPECT_DOUBLE_EQ(injector.SlowdownOf(1), 50.0);
  EXPECT_FALSE(injector.IsDegraded(0));
  // A degraded node is still up: gray, not fail-stop.
  EXPECT_TRUE(injector.IsUp(1));
  EXPECT_EQ(injector.nodes_up(), 3u);

  simulator.RunUntil(300.0);
  EXPECT_FALSE(injector.IsDegraded(1));
  ASSERT_EQ(events.size(), 2u);
  EXPECT_DOUBLE_EQ(events[0].first, 100.0);
  EXPECT_TRUE(events[0].second);
  EXPECT_DOUBLE_EQ(events[1].first, 250.0);
  EXPECT_FALSE(events[1].second);
  EXPECT_EQ(injector.stats().degradations, 1u);
  EXPECT_EQ(injector.stats().degradation_recoveries, 1u);
  EXPECT_EQ(injector.stats().crashes, 0u);
}

TEST(FaultInjectorTest, DegradationComposesWithCrashes) {
  Simulator simulator;
  FaultInjector injector(&simulator, 2, FaultInjector::Params{});

  ASSERT_TRUE(injector.Degrade(0, 10.0));
  EXPECT_FALSE(injector.Degrade(0, 5.0));  // already degraded
  EXPECT_TRUE(injector.Crash(0));
  // The crash does not clear the episode: the hardware is still bad.
  EXPECT_TRUE(injector.IsDegraded(0));
  EXPECT_DOUBLE_EQ(injector.SlowdownOf(0), 10.0);
  EXPECT_TRUE(injector.Recover(0));
  // A rebooted node is still degraded until the episode lifts.
  EXPECT_TRUE(injector.IsDegraded(0));
  EXPECT_TRUE(injector.Restore(0));
  EXPECT_FALSE(injector.Restore(0));  // already healthy
  EXPECT_DOUBLE_EQ(injector.SlowdownOf(0), 1.0);
  EXPECT_EQ(injector.stats().degradations, 1u);
  EXPECT_EQ(injector.stats().degradation_recoveries, 1u);
}

TEST(FaultInjectorTest, StochasticDegradationIsDeterministicUnderSeed) {
  auto run = [](uint64_t seed) {
    Simulator simulator;
    FaultInjector::Params params;
    params.mttd_ms = 5000.0;
    params.degradation_repair_ms = 1000.0;
    params.degradation_factor = 8.0;
    params.seed = seed;
    FaultInjector injector(&simulator, 3, params);
    std::vector<std::pair<double, uint32_t>> episodes;
    injector.SetDegradationCallbacks(
        [&](uint32_t node) { episodes.emplace_back(simulator.Now(), node); },
        nullptr);
    injector.Start();
    simulator.RunUntil(100000.0);
    return episodes;
  };

  const auto a = run(7);
  const auto b = run(7);
  const auto c = run(8);
  EXPECT_FALSE(a.empty());
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
}

TEST(FaultInjectorTest, EnablingDegradationKeepsCrashScheduleIdentical) {
  // The crash streams fork from the master seed before the degradation
  // streams: turning gray failures on must not perturb an existing crash
  // schedule (old seeds stay reproducible).
  auto crashes = [](double mttd_ms) {
    Simulator simulator;
    FaultInjector::Params params;
    params.mttf_ms = 5000.0;
    params.mttr_ms = 1000.0;
    params.seed = 7;
    params.min_live_nodes = 1;
    params.mttd_ms = mttd_ms;
    FaultInjector injector(&simulator, 3, params);
    std::vector<std::pair<double, uint32_t>> log;
    injector.SetCallbacks(
        [&](uint32_t node) { log.emplace_back(simulator.Now(), node); },
        nullptr);
    injector.Start();
    simulator.RunUntil(100000.0);
    return log;
  };

  const auto without = crashes(0.0);
  const auto with = crashes(4000.0);
  EXPECT_FALSE(without.empty());
  EXPECT_EQ(without, with);
}

TEST(FaultInjectorTest, ScriptedPartitionCutsAndHeals) {
  Simulator simulator;
  FaultInjector::Params params;
  params.partition_script = {{100.0, {0, 0, 1}}, {250.0, {}}};
  FaultInjector injector(&simulator, 3, params);

  int topology_changes = 0;
  injector.SetPartitionCallback([&] { ++topology_changes; });
  injector.Start();

  EXPECT_FALSE(injector.Partitioned());
  EXPECT_TRUE(injector.Reachable(0, 2));
  EXPECT_EQ(injector.partition_epoch(), 0u);

  simulator.RunUntil(150.0);
  EXPECT_TRUE(injector.Partitioned());
  EXPECT_FALSE(injector.Reachable(0, 2));
  EXPECT_FALSE(injector.Reachable(2, 0));
  EXPECT_TRUE(injector.Reachable(0, 1));
  // Same-node traffic never crosses the cut; liveness is orthogonal.
  EXPECT_TRUE(injector.Reachable(2, 2));
  EXPECT_TRUE(injector.IsUp(2));
  EXPECT_EQ(injector.partition_epoch(), 1u);
  EXPECT_EQ(topology_changes, 1);

  simulator.RunUntil(300.0);
  EXPECT_FALSE(injector.Partitioned());
  EXPECT_TRUE(injector.Reachable(0, 2));
  EXPECT_EQ(injector.partition_epoch(), 2u);
  EXPECT_EQ(topology_changes, 2);
  EXPECT_EQ(injector.stats().partitions, 1u);
  EXPECT_EQ(injector.stats().partition_heals, 1u);
  EXPECT_EQ(injector.stats().crashes, 0u);
}

TEST(FaultInjectorTest, ManualPartitionRejectsNoOps) {
  Simulator simulator;
  FaultInjector injector(&simulator, 3, FaultInjector::Params{});

  EXPECT_FALSE(injector.HealPartition());  // nothing to heal
  EXPECT_TRUE(injector.SetPartition({0, 0, 1}));
  EXPECT_FALSE(injector.SetPartition({0, 0, 1}));  // unchanged topology
  // A reshape changes the topology but extends the same episode.
  EXPECT_TRUE(injector.SetPartition({0, 1, 1}));
  // An all-same-group vector is a heal.
  EXPECT_TRUE(injector.SetPartition({2, 2, 2}));
  EXPECT_FALSE(injector.Partitioned());
  EXPECT_EQ(injector.stats().partitions, 1u);
  EXPECT_EQ(injector.stats().partition_heals, 1u);
}

TEST(FaultInjectorTest, AsymmetricLinkCutIsOneWay) {
  Simulator simulator;
  FaultInjector injector(&simulator, 3, FaultInjector::Params{});

  ASSERT_TRUE(injector.CutLink(0, 1, /*symmetric=*/false));
  EXPECT_TRUE(injector.Partitioned());
  // Gray interconnect: 0 cannot deliver to 1, the reverse path is intact.
  EXPECT_FALSE(injector.Reachable(0, 1));
  EXPECT_TRUE(injector.Reachable(1, 0));
  EXPECT_TRUE(injector.Reachable(0, 2));

  EXPECT_FALSE(injector.CutLink(0, 1, /*symmetric=*/false));  // already cut
  ASSERT_TRUE(injector.RestoreLink(0, 1, /*symmetric=*/false));
  EXPECT_FALSE(injector.Partitioned());
  EXPECT_TRUE(injector.Reachable(0, 1));
  EXPECT_EQ(injector.stats().link_cuts, 1u);
  EXPECT_EQ(injector.stats().link_restores, 1u);
}

TEST(FaultInjectorTest, LinkCutsComposeWithGroupPartition) {
  Simulator simulator;
  FaultInjector injector(&simulator, 4, FaultInjector::Params{});

  ASSERT_TRUE(injector.SetPartition({0, 0, 1, 1}));
  ASSERT_TRUE(injector.CutLink(0, 1));  // symmetric, within the group
  EXPECT_FALSE(injector.Reachable(0, 1));
  EXPECT_FALSE(injector.Reachable(1, 0));
  EXPECT_FALSE(injector.Reachable(0, 2));  // across the group cut

  // Healing the group partition leaves the severed link severed.
  ASSERT_TRUE(injector.HealPartition());
  EXPECT_TRUE(injector.Partitioned());
  EXPECT_FALSE(injector.Reachable(0, 1));
  EXPECT_TRUE(injector.Reachable(0, 2));
  ASSERT_TRUE(injector.RestoreLink(0, 1));
  EXPECT_FALSE(injector.Partitioned());
}

TEST(FaultInjectorTest, StochasticPartitionsIsolateMinoritiesDeterministically) {
  auto run = [](uint64_t seed) {
    Simulator simulator;
    FaultInjector::Params params;
    params.mttp_ms = 20000.0;
    params.partition_heal_ms = 5000.0;
    params.seed = seed;
    FaultInjector injector(&simulator, 5, params);
    std::vector<std::pair<double, uint64_t>> changes;
    injector.SetPartitionCallback([&] {
      changes.emplace_back(simulator.Now(), injector.partition_epoch());
      if (injector.Partitioned()) {
        // A stochastic episode always leaves a strict majority connected:
        // the group containing node counts must bound the minority side.
        uint32_t cut_off_from_0 = 0;
        for (uint32_t i = 0; i < 5; ++i) {
          if (!injector.Reachable(0, i)) ++cut_off_from_0;
        }
        const uint32_t minority = std::min(cut_off_from_0, 5 - cut_off_from_0);
        EXPECT_GE(minority, 1u);
        EXPECT_LE(minority, 2u);
      }
    });
    injector.Start();
    simulator.RunUntil(200000.0);
    return changes;
  };

  const auto a = run(7);
  const auto b = run(7);
  const auto c = run(8);
  EXPECT_FALSE(a.empty());
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
}

TEST(FaultInjectorTest, EnablingPartitionsKeepsCrashScheduleIdentical) {
  // The partition stream forks from the master seed after the crash and
  // degradation streams: turning partitions on must not perturb existing
  // crash schedules (old seeds stay reproducible).
  auto crashes = [](double mttp_ms) {
    Simulator simulator;
    FaultInjector::Params params;
    params.mttf_ms = 5000.0;
    params.mttr_ms = 1000.0;
    params.seed = 7;
    params.min_live_nodes = 1;
    params.mttp_ms = mttp_ms;
    FaultInjector injector(&simulator, 3, params);
    std::vector<std::pair<double, uint32_t>> log;
    injector.SetCallbacks(
        [&](uint32_t node) { log.emplace_back(simulator.Now(), node); },
        nullptr);
    injector.Start();
    simulator.RunUntil(100000.0);
    return log;
  };

  const auto without = crashes(0.0);
  const auto with = crashes(15000.0);
  EXPECT_FALSE(without.empty());
  EXPECT_EQ(without, with);
}

TEST(FaultInjectorTest, ScriptedCorruptionFiresCountStrikes) {
  Simulator simulator;
  FaultInjector::Params params;
  params.corruption_script = {{100.0, 1, /*count=*/3, /*salt=*/42},
                              {250.0, 2, /*count=*/1, /*salt=*/7}};
  FaultInjector injector(&simulator, 3, params);

  std::vector<std::tuple<double, uint32_t, uint64_t>> strikes;
  injector.SetCorruptionCallback([&](uint32_t node, uint64_t draw) {
    strikes.emplace_back(simulator.Now(), node, draw);
  });
  injector.Start();
  simulator.RunUntil(300.0);

  // Each scripted event fires `count` independent strikes with distinct,
  // salt-derived draws, so a replayed script corrupts the same targets.
  ASSERT_EQ(strikes.size(), 4u);
  for (int i = 0; i < 3; ++i) {
    EXPECT_DOUBLE_EQ(std::get<0>(strikes[i]), 100.0);
    EXPECT_EQ(std::get<1>(strikes[i]), 1u);
  }
  EXPECT_NE(std::get<2>(strikes[0]), std::get<2>(strikes[1]));
  EXPECT_NE(std::get<2>(strikes[1]), std::get<2>(strikes[2]));
  EXPECT_DOUBLE_EQ(std::get<0>(strikes[3]), 250.0);
  EXPECT_EQ(std::get<1>(strikes[3]), 2u);
  EXPECT_EQ(injector.stats().corruptions, 4u);
}

TEST(FaultInjectorTest, CorruptionFiresWhileNodeIsDown) {
  // Bit rot does not need a CPU: a corruption scheduled while the node is
  // crashed still lands (the bad pattern greets the node when it reboots).
  Simulator simulator;
  FaultInjector::Params params;
  params.script = {{50.0, 1, /*crash=*/true}};
  params.corruption_script = {{100.0, 1, /*count=*/1, /*salt=*/9}};
  FaultInjector injector(&simulator, 3, params);

  int fired = 0;
  injector.SetCorruptionCallback([&](uint32_t node, uint64_t) {
    EXPECT_EQ(node, 1u);
    EXPECT_FALSE(injector.IsUp(1));
    ++fired;
  });
  injector.Start();
  simulator.RunUntil(200.0);
  EXPECT_EQ(fired, 1);
}

TEST(FaultInjectorTest, StochasticCorruptionIsDeterministicUnderSeed) {
  auto run = [](uint64_t seed) {
    Simulator simulator;
    FaultInjector::Params params;
    params.mttc_ms = 8000.0;
    params.seed = seed;
    FaultInjector injector(&simulator, 3, params);
    std::vector<std::tuple<double, uint32_t, uint64_t>> strikes;
    injector.SetCorruptionCallback([&](uint32_t node, uint64_t draw) {
      strikes.emplace_back(simulator.Now(), node, draw);
    });
    injector.Start();
    simulator.RunUntil(100000.0);
    return strikes;
  };

  const auto a = run(7);
  const auto b = run(7);
  const auto c = run(8);
  EXPECT_FALSE(a.empty());
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
}

TEST(FaultInjectorTest, EnablingCorruptionKeepsOtherSchedulesIdentical) {
  // The corruption streams fork from the master seed after the crash,
  // degradation and partition streams: turning corruption on must not
  // perturb any pre-existing fault schedule (old seeds stay reproducible).
  auto faults = [](double mttc_ms) {
    Simulator simulator;
    FaultInjector::Params params;
    params.mttf_ms = 5000.0;
    params.mttr_ms = 1000.0;
    params.mttd_ms = 9000.0;
    params.degradation_repair_ms = 2000.0;
    params.mttp_ms = 20000.0;
    params.partition_heal_ms = 5000.0;
    params.seed = 7;
    params.min_live_nodes = 1;
    params.mttc_ms = mttc_ms;
    FaultInjector injector(&simulator, 3, params);
    // One interleaved log across all three pre-existing fault kinds: any
    // perturbation of any stream shows up as a diff.
    std::vector<std::tuple<double, char, uint64_t>> log;
    injector.SetCallbacks(
        [&](uint32_t node) { log.emplace_back(simulator.Now(), 'c', node); },
        [&](uint32_t node) { log.emplace_back(simulator.Now(), 'r', node); });
    injector.SetDegradationCallbacks(
        [&](uint32_t node) { log.emplace_back(simulator.Now(), 'd', node); },
        [&](uint32_t node) { log.emplace_back(simulator.Now(), 'u', node); });
    injector.SetPartitionCallback([&] {
      log.emplace_back(simulator.Now(), 'p', injector.partition_epoch());
    });
    injector.Start();
    simulator.RunUntil(100000.0);
    return log;
  };

  const auto without = faults(0.0);
  const auto with = faults(12000.0);
  EXPECT_FALSE(without.empty());
  EXPECT_EQ(without, with);
}

}  // namespace
}  // namespace memgoal::sim
