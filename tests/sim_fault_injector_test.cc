#include "sim/fault_injector.h"

#include <gtest/gtest.h>

#include <vector>

#include "sim/simulator.h"

namespace memgoal::sim {
namespace {

TEST(FaultInjectorTest, ScriptedCrashAndRecovery) {
  Simulator simulator;
  FaultInjector::Params params;
  params.script = {{100.0, 1, /*crash=*/true}, {250.0, 1, /*crash=*/false}};
  FaultInjector injector(&simulator, 3, params);

  std::vector<std::pair<double, bool>> events;  // (time, is_crash)
  injector.SetCallbacks(
      [&](uint32_t node) {
        EXPECT_EQ(node, 1u);
        // The crash state is already committed when the callback runs.
        EXPECT_FALSE(injector.IsUp(1));
        events.emplace_back(simulator.Now(), true);
      },
      [&](uint32_t node) {
        EXPECT_EQ(node, 1u);
        EXPECT_TRUE(injector.IsUp(1));
        events.emplace_back(simulator.Now(), false);
      });
  injector.Start();

  EXPECT_TRUE(injector.IsUp(1));
  EXPECT_EQ(injector.nodes_up(), 3u);
  EXPECT_EQ(injector.epoch(1), 0u);

  simulator.RunUntil(150.0);
  EXPECT_FALSE(injector.IsUp(1));
  EXPECT_TRUE(injector.IsUp(0));
  EXPECT_EQ(injector.nodes_up(), 2u);
  EXPECT_EQ(injector.epoch(1), 1u);

  simulator.RunUntil(300.0);
  EXPECT_TRUE(injector.IsUp(1));
  EXPECT_EQ(injector.nodes_up(), 3u);
  // Recovery does not bump the epoch; only crashes do.
  EXPECT_EQ(injector.epoch(1), 1u);

  ASSERT_EQ(events.size(), 2u);
  EXPECT_DOUBLE_EQ(events[0].first, 100.0);
  EXPECT_TRUE(events[0].second);
  EXPECT_DOUBLE_EQ(events[1].first, 250.0);
  EXPECT_FALSE(events[1].second);
  EXPECT_EQ(injector.stats().crashes, 1u);
  EXPECT_EQ(injector.stats().recoveries, 1u);
  EXPECT_EQ(injector.stats().suppressed, 0u);
}

TEST(FaultInjectorTest, MinLiveNodesFloorSuppressesCrashes) {
  Simulator simulator;
  FaultInjector::Params params;
  params.min_live_nodes = 2;
  FaultInjector injector(&simulator, 3, params);

  EXPECT_TRUE(injector.Crash(0));
  EXPECT_EQ(injector.nodes_up(), 2u);
  // A second crash would leave only one node up — below the floor.
  EXPECT_FALSE(injector.Crash(1));
  EXPECT_TRUE(injector.IsUp(1));
  EXPECT_EQ(injector.stats().suppressed, 1u);
  EXPECT_EQ(injector.stats().crashes, 1u);

  EXPECT_TRUE(injector.Recover(0));
  EXPECT_TRUE(injector.Crash(1));
  EXPECT_EQ(injector.nodes_up(), 2u);
}

TEST(FaultInjectorTest, DoubleCrashAndDoubleRecoverAreRejected) {
  Simulator simulator;
  FaultInjector::Params params;
  params.min_live_nodes = 0;
  FaultInjector injector(&simulator, 2, params);

  EXPECT_FALSE(injector.Recover(0));  // already up
  EXPECT_TRUE(injector.Crash(0));
  EXPECT_FALSE(injector.Crash(0));  // already down
  EXPECT_EQ(injector.epoch(0), 1u);
  EXPECT_TRUE(injector.Recover(0));
  EXPECT_FALSE(injector.Recover(0));
  EXPECT_EQ(injector.stats().crashes, 1u);
  EXPECT_EQ(injector.stats().recoveries, 1u);
}

TEST(FaultInjectorTest, StochasticProcessIsDeterministicUnderSeed) {
  auto run = [](uint64_t seed) {
    Simulator simulator;
    FaultInjector::Params params;
    params.mttf_ms = 5000.0;
    params.mttr_ms = 1000.0;
    params.seed = seed;
    params.min_live_nodes = 1;
    FaultInjector injector(&simulator, 3, params);
    std::vector<std::pair<double, uint32_t>> crashes;
    injector.SetCallbacks(
        [&](uint32_t node) { crashes.emplace_back(simulator.Now(), node); },
        nullptr);
    injector.Start();
    simulator.RunUntil(100000.0);
    EXPECT_GE(injector.nodes_up(), 1u);
    return crashes;
  };

  const auto a = run(7);
  const auto b = run(7);
  const auto c = run(8);
  EXPECT_FALSE(a.empty());
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
}

TEST(FaultInjectorTest, StochasticProcessDisabledByZeroMttf) {
  Simulator simulator;
  FaultInjector::Params params;
  params.mttf_ms = 0.0;
  FaultInjector injector(&simulator, 3, params);
  injector.Start();
  simulator.RunUntil(1e6);
  EXPECT_EQ(injector.nodes_up(), 3u);
  EXPECT_EQ(injector.stats().crashes, 0u);
}

TEST(FaultInjectorTest, ScriptedDegradationBeginsAndLifts) {
  Simulator simulator;
  FaultInjector::Params params;
  params.degradation_script = {{100.0, 1, /*begin=*/true, 50.0},
                               {250.0, 1, /*begin=*/false}};
  FaultInjector injector(&simulator, 3, params);

  std::vector<std::pair<double, bool>> events;  // (time, is_begin)
  injector.SetDegradationCallbacks(
      [&](uint32_t node) {
        EXPECT_EQ(node, 1u);
        // The slowdown is already committed when the callback runs.
        EXPECT_DOUBLE_EQ(injector.SlowdownOf(1), 50.0);
        events.emplace_back(simulator.Now(), true);
      },
      [&](uint32_t node) {
        EXPECT_EQ(node, 1u);
        EXPECT_DOUBLE_EQ(injector.SlowdownOf(1), 1.0);
        events.emplace_back(simulator.Now(), false);
      });
  injector.Start();

  EXPECT_FALSE(injector.IsDegraded(1));
  simulator.RunUntil(150.0);
  EXPECT_TRUE(injector.IsDegraded(1));
  EXPECT_DOUBLE_EQ(injector.SlowdownOf(1), 50.0);
  EXPECT_FALSE(injector.IsDegraded(0));
  // A degraded node is still up: gray, not fail-stop.
  EXPECT_TRUE(injector.IsUp(1));
  EXPECT_EQ(injector.nodes_up(), 3u);

  simulator.RunUntil(300.0);
  EXPECT_FALSE(injector.IsDegraded(1));
  ASSERT_EQ(events.size(), 2u);
  EXPECT_DOUBLE_EQ(events[0].first, 100.0);
  EXPECT_TRUE(events[0].second);
  EXPECT_DOUBLE_EQ(events[1].first, 250.0);
  EXPECT_FALSE(events[1].second);
  EXPECT_EQ(injector.stats().degradations, 1u);
  EXPECT_EQ(injector.stats().degradation_recoveries, 1u);
  EXPECT_EQ(injector.stats().crashes, 0u);
}

TEST(FaultInjectorTest, DegradationComposesWithCrashes) {
  Simulator simulator;
  FaultInjector injector(&simulator, 2, FaultInjector::Params{});

  ASSERT_TRUE(injector.Degrade(0, 10.0));
  EXPECT_FALSE(injector.Degrade(0, 5.0));  // already degraded
  EXPECT_TRUE(injector.Crash(0));
  // The crash does not clear the episode: the hardware is still bad.
  EXPECT_TRUE(injector.IsDegraded(0));
  EXPECT_DOUBLE_EQ(injector.SlowdownOf(0), 10.0);
  EXPECT_TRUE(injector.Recover(0));
  // A rebooted node is still degraded until the episode lifts.
  EXPECT_TRUE(injector.IsDegraded(0));
  EXPECT_TRUE(injector.Restore(0));
  EXPECT_FALSE(injector.Restore(0));  // already healthy
  EXPECT_DOUBLE_EQ(injector.SlowdownOf(0), 1.0);
  EXPECT_EQ(injector.stats().degradations, 1u);
  EXPECT_EQ(injector.stats().degradation_recoveries, 1u);
}

TEST(FaultInjectorTest, StochasticDegradationIsDeterministicUnderSeed) {
  auto run = [](uint64_t seed) {
    Simulator simulator;
    FaultInjector::Params params;
    params.mttd_ms = 5000.0;
    params.degradation_repair_ms = 1000.0;
    params.degradation_factor = 8.0;
    params.seed = seed;
    FaultInjector injector(&simulator, 3, params);
    std::vector<std::pair<double, uint32_t>> episodes;
    injector.SetDegradationCallbacks(
        [&](uint32_t node) { episodes.emplace_back(simulator.Now(), node); },
        nullptr);
    injector.Start();
    simulator.RunUntil(100000.0);
    return episodes;
  };

  const auto a = run(7);
  const auto b = run(7);
  const auto c = run(8);
  EXPECT_FALSE(a.empty());
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
}

TEST(FaultInjectorTest, EnablingDegradationKeepsCrashScheduleIdentical) {
  // The crash streams fork from the master seed before the degradation
  // streams: turning gray failures on must not perturb an existing crash
  // schedule (old seeds stay reproducible).
  auto crashes = [](double mttd_ms) {
    Simulator simulator;
    FaultInjector::Params params;
    params.mttf_ms = 5000.0;
    params.mttr_ms = 1000.0;
    params.seed = 7;
    params.min_live_nodes = 1;
    params.mttd_ms = mttd_ms;
    FaultInjector injector(&simulator, 3, params);
    std::vector<std::pair<double, uint32_t>> log;
    injector.SetCallbacks(
        [&](uint32_t node) { log.emplace_back(simulator.Now(), node); },
        nullptr);
    injector.Start();
    simulator.RunUntil(100000.0);
    return log;
  };

  const auto without = crashes(0.0);
  const auto with = crashes(4000.0);
  EXPECT_FALSE(without.empty());
  EXPECT_EQ(without, with);
}

}  // namespace
}  // namespace memgoal::sim
