#include "la/simplex.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace memgoal::la {
namespace {

TEST(SimplexTest, TextbookMaximization) {
  // max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18  ->  (2, 6), z = 36.
  SimplexSolver solver(2);
  solver.SetObjective(Vector{3.0, 5.0}, /*minimize=*/false);
  solver.AddLe(Vector{1.0, 0.0}, 4.0);
  solver.AddLe(Vector{0.0, 2.0}, 12.0);
  solver.AddLe(Vector{3.0, 2.0}, 18.0);
  const SimplexResult result = solver.Solve();
  ASSERT_EQ(result.status, SimplexStatus::kOptimal);
  EXPECT_NEAR(result.x[0], 2.0, 1e-9);
  EXPECT_NEAR(result.x[1], 6.0, 1e-9);
  EXPECT_NEAR(result.objective, 36.0, 1e-9);
}

TEST(SimplexTest, MinimizationWithGeRows) {
  // min 2x + 3y s.t. x + y >= 4, x >= 1  ->  (4, 0), z = 8.
  SimplexSolver solver(2);
  solver.SetObjective(Vector{2.0, 3.0});
  solver.AddGe(Vector{1.0, 1.0}, 4.0);
  solver.AddGe(Vector{1.0, 0.0}, 1.0);
  const SimplexResult result = solver.Solve();
  ASSERT_EQ(result.status, SimplexStatus::kOptimal);
  EXPECT_NEAR(result.x[0], 4.0, 1e-9);
  EXPECT_NEAR(result.x[1], 0.0, 1e-9);
  EXPECT_NEAR(result.objective, 8.0, 1e-9);
}

TEST(SimplexTest, EqualityConstraint) {
  // min x + 2y s.t. x + y = 10, x <= 6  ->  (6, 4), z = 14.
  SimplexSolver solver(2);
  solver.SetObjective(Vector{1.0, 2.0});
  solver.AddEq(Vector{1.0, 1.0}, 10.0);
  solver.SetUpperBound(0, 6.0);
  const SimplexResult result = solver.Solve();
  ASSERT_EQ(result.status, SimplexStatus::kOptimal);
  EXPECT_NEAR(result.x[0], 6.0, 1e-9);
  EXPECT_NEAR(result.x[1], 4.0, 1e-9);
  EXPECT_NEAR(result.objective, 14.0, 1e-9);
}

TEST(SimplexTest, InfeasibleDetected) {
  // x <= 1 and x >= 2 cannot both hold.
  SimplexSolver solver(1);
  solver.SetObjective(Vector{1.0});
  solver.AddLe(Vector{1.0}, 1.0);
  solver.AddGe(Vector{1.0}, 2.0);
  EXPECT_EQ(solver.Solve().status, SimplexStatus::kInfeasible);
}

TEST(SimplexTest, UnboundedDetected) {
  // max x with only x >= 0 (plus a vacuous row to satisfy m > 0).
  SimplexSolver solver(1);
  solver.SetObjective(Vector{1.0}, /*minimize=*/false);
  solver.AddGe(Vector{1.0}, 0.0);
  EXPECT_EQ(solver.Solve().status, SimplexStatus::kUnbounded);
}

TEST(SimplexTest, NegativeRhsNormalized) {
  // min x + y s.t. -x - y <= -4  (i.e. x + y >= 4)  ->  z = 4.
  SimplexSolver solver(2);
  solver.SetObjective(Vector{1.0, 1.0});
  solver.AddLe(Vector{-1.0, -1.0}, -4.0);
  const SimplexResult result = solver.Solve();
  ASSERT_EQ(result.status, SimplexStatus::kOptimal);
  EXPECT_NEAR(result.objective, 4.0, 1e-9);
}

TEST(SimplexTest, NegativeObjectiveCoefficients) {
  // min -x - 2y s.t. x + y <= 3, y <= 2 -> (1,2), z=-5.
  SimplexSolver solver(2);
  solver.SetObjective(Vector{-1.0, -2.0});
  solver.AddLe(Vector{1.0, 1.0}, 3.0);
  solver.SetUpperBound(1, 2.0);
  const SimplexResult result = solver.Solve();
  ASSERT_EQ(result.status, SimplexStatus::kOptimal);
  EXPECT_NEAR(result.objective, -5.0, 1e-9);
  EXPECT_NEAR(result.x[0], 1.0, 1e-9);
  EXPECT_NEAR(result.x[1], 2.0, 1e-9);
}

TEST(SimplexTest, DegenerateVertexTerminates) {
  // Classic degeneracy: multiple constraints meet at the optimum.
  SimplexSolver solver(2);
  solver.SetObjective(Vector{-1.0, -1.0});
  solver.AddLe(Vector{1.0, 0.0}, 1.0);
  solver.AddLe(Vector{0.0, 1.0}, 1.0);
  solver.AddLe(Vector{1.0, 1.0}, 2.0);  // redundant at the optimum
  const SimplexResult result = solver.Solve();
  ASSERT_EQ(result.status, SimplexStatus::kOptimal);
  EXPECT_NEAR(result.objective, -2.0, 1e-9);
}

TEST(SimplexTest, RedundantEqualityRows) {
  // Duplicate equality rows leave an artificial basic at zero; the solver
  // must still find the optimum.
  SimplexSolver solver(2);
  solver.SetObjective(Vector{1.0, 1.0});
  solver.AddEq(Vector{1.0, 1.0}, 5.0);
  solver.AddEq(Vector{2.0, 2.0}, 10.0);
  const SimplexResult result = solver.Solve();
  ASSERT_EQ(result.status, SimplexStatus::kOptimal);
  EXPECT_NEAR(result.objective, 5.0, 1e-9);
}

TEST(SimplexTest, PartitioningShapedProblem) {
  // The shape produced by core::Optimizer: minimize sum g0_i * x_i subject
  // to a goal hyperplane equality and per-node capacity bounds.
  // min 0.5 x1 + 1.0 x2 + 0.8 x3
  // s.t. -2 x1 - 1 x2 - 3 x3 = -12   (goal plane)
  //      x_i <= 4.
  SimplexSolver solver(3);
  solver.SetObjective(Vector{0.5, 1.0, 0.8});
  solver.AddEq(Vector{-2.0, -1.0, -3.0}, -12.0);
  for (size_t i = 0; i < 3; ++i) solver.SetUpperBound(i, 4.0);
  const SimplexResult result = solver.Solve();
  ASSERT_EQ(result.status, SimplexStatus::kOptimal);
  // Constraint must hold exactly.
  EXPECT_NEAR(-2.0 * result.x[0] - result.x[1] - 3.0 * result.x[2], -12.0,
              1e-9);
  // Cheapest contribution per constraint unit is x1 (0.5/2 = 0.25), then x3
  // (0.8/3 ~= 0.267): x1 saturates at 4 (covers 8), x3 covers the rest.
  EXPECT_NEAR(result.x[0], 4.0, 1e-9);
  EXPECT_NEAR(result.x[2], 4.0 / 3.0, 1e-9);
  EXPECT_NEAR(result.x[1], 0.0, 1e-9);
  EXPECT_NEAR(result.objective, 0.5 * 4.0 + 0.8 * 4.0 / 3.0, 1e-9);
}

TEST(SimplexTest, ZeroVariablesNoConstraints) {
  // Empty live-node set: the LP degenerates to nothing at all. The unique
  // point of R^0 is trivially optimal.
  SimplexSolver solver(0);
  const SimplexResult result = solver.Solve();
  ASSERT_EQ(result.status, SimplexStatus::kOptimal);
  EXPECT_TRUE(result.x.empty());
  EXPECT_DOUBLE_EQ(result.objective, 0.0);
}

TEST(SimplexTest, ZeroVariablesConstantConstraints) {
  // Constant rows classify as satisfied or infeasible with no variables to
  // adjust. 0 <= 3 holds...
  {
    SimplexSolver solver(0);
    solver.AddLe(Vector{}, 3.0);
    EXPECT_EQ(solver.Solve().status, SimplexStatus::kOptimal);
  }
  // ...but 0 >= 2 cannot.
  {
    SimplexSolver solver(0);
    solver.AddGe(Vector{}, 2.0);
    EXPECT_EQ(solver.Solve().status, SimplexStatus::kInfeasible);
  }
}

TEST(SimplexTest, NoConstraintsOptimalAtOriginOrUnbounded) {
  // m == 0 with variables: optimum sits at the lower bounds unless some
  // objective direction improves without limit.
  {
    SimplexSolver solver(2);
    solver.SetObjective(Vector{1.0, 2.0});  // minimize: origin is optimal
    const SimplexResult result = solver.Solve();
    ASSERT_EQ(result.status, SimplexStatus::kOptimal);
    EXPECT_NEAR(result.x[0], 0.0, 1e-12);
    EXPECT_NEAR(result.x[1], 0.0, 1e-12);
  }
  {
    SimplexSolver solver(2);
    solver.SetObjective(Vector{1.0, 2.0}, /*minimize=*/false);
    EXPECT_EQ(solver.Solve().status, SimplexStatus::kUnbounded);
  }
}

TEST(SimplexTest, AllZeroConstraintRows) {
  // Rows the degraded controller can emit for dead nodes: a zero gradient
  // over the live subspace. 0 <= b holds for b >= 0 and fails for b < 0;
  // 0 >= b holds only for b <= 0.
  {
    SimplexSolver solver(2);
    solver.SetObjective(Vector{1.0, 1.0});
    solver.AddLe(Vector{0.0, 0.0}, 0.0);
    solver.AddLe(Vector{0.0, 0.0}, 5.0);
    solver.AddGe(Vector{0.0, 0.0}, -1.0);
    const SimplexResult result = solver.Solve();
    ASSERT_EQ(result.status, SimplexStatus::kOptimal);
    EXPECT_NEAR(result.objective, 0.0, 1e-9);
  }
  {
    SimplexSolver solver(2);
    solver.SetObjective(Vector{1.0, 1.0});
    solver.AddLe(Vector{0.0, 0.0}, -2.0);  // 0 <= -2: impossible
    EXPECT_EQ(solver.Solve().status, SimplexStatus::kInfeasible);
  }
  {
    SimplexSolver solver(2);
    solver.SetObjective(Vector{1.0, 1.0});
    solver.AddGe(Vector{0.0, 0.0}, 2.0);  // 0 >= 2: impossible
    EXPECT_EQ(solver.Solve().status, SimplexStatus::kInfeasible);
  }
}

TEST(SimplexTest, DegenerateBoundsLoEqualsHi) {
  // A variable pinned to a single value: x0 >= 3 and x0 <= 3 force x0 = 3,
  // and the rest of the problem optimizes around the fixed coordinate.
  SimplexSolver solver(2);
  solver.SetObjective(Vector{1.0, 1.0});
  solver.AddGe(Vector{1.0, 0.0}, 3.0);
  solver.SetUpperBound(0, 3.0);
  solver.AddGe(Vector{0.0, 1.0}, 1.0);
  const SimplexResult result = solver.Solve();
  ASSERT_EQ(result.status, SimplexStatus::kOptimal);
  EXPECT_NEAR(result.x[0], 3.0, 1e-9);
  EXPECT_NEAR(result.x[1], 1.0, 1e-9);
  EXPECT_NEAR(result.objective, 4.0, 1e-9);
}

// Property test: on random feasible LPs, the returned point must satisfy
// every constraint and weakly dominate a cloud of random feasible points.
class SimplexPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(SimplexPropertyTest, OptimumDominatesRandomFeasiblePoints) {
  const int seed = GetParam();
  common::Rng rng(static_cast<uint64_t>(seed));
  const size_t n = static_cast<size_t>(rng.UniformInt(2, 6));
  const size_t m = static_cast<size_t>(rng.UniformInt(1, 5));

  // Random box bounds and random <= rows with nonnegative coefficients:
  // x = 0 is always feasible, so status must be optimal.
  SimplexSolver solver(n);
  Vector c(n);
  for (auto& v : c) v = rng.Uniform(-2.0, 2.0);
  solver.SetObjective(c);
  std::vector<Vector> rows;
  Vector rhs;
  for (size_t i = 0; i < m; ++i) {
    Vector a(n);
    for (auto& v : a) v = rng.Uniform(0.0, 3.0);
    const double b = rng.Uniform(1.0, 10.0);
    solver.AddLe(a, b);
    rows.push_back(a);
    rhs.push_back(b);
  }
  Vector ub(n);
  for (size_t j = 0; j < n; ++j) {
    ub[j] = rng.Uniform(0.5, 5.0);
    solver.SetUpperBound(j, ub[j]);
  }

  const SimplexResult result = solver.Solve();
  ASSERT_EQ(result.status, SimplexStatus::kOptimal);

  // Feasibility of the reported optimum.
  for (size_t j = 0; j < n; ++j) {
    EXPECT_GE(result.x[j], -1e-9);
    EXPECT_LE(result.x[j], ub[j] + 1e-9);
  }
  for (size_t i = 0; i < m; ++i) {
    EXPECT_LE(Dot(rows[i], result.x), rhs[i] + 1e-7);
  }

  // Optimality against random feasible points: draw a point in the box,
  // then shrink it towards the (always feasible) origin until every row
  // holds, so each trial yields a feasible comparison point.
  for (int trial = 0; trial < 100; ++trial) {
    Vector p(n);
    for (size_t j = 0; j < n; ++j) p[j] = rng.Uniform(0.0, ub[j]);
    double shrink = 1.0;
    for (size_t i = 0; i < m; ++i) {
      const double lhs = Dot(rows[i], p);
      if (lhs > rhs[i]) shrink = std::min(shrink, rhs[i] / lhs);
    }
    for (double& v : p) v *= shrink;
    EXPECT_LE(result.objective, Dot(c, p) + 1e-7);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimplexPropertyTest, ::testing::Range(1, 26));

}  // namespace
}  // namespace memgoal::la
