#include "cache/indexed_heap.h"

#include <algorithm>
#include <map>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace memgoal::cache {
namespace {

TEST(IndexedMinHeapTest, BasicInsertPeekPop) {
  IndexedMinHeap<int> heap;
  EXPECT_TRUE(heap.empty());
  heap.Insert(10, 3.0);
  heap.Insert(20, 1.0);
  heap.Insert(30, 2.0);
  EXPECT_EQ(heap.size(), 3u);
  EXPECT_EQ(heap.Peek().first, 20);
  heap.Pop();
  EXPECT_EQ(heap.Peek().first, 30);
  heap.Pop();
  EXPECT_EQ(heap.Peek().first, 10);
  heap.Pop();
  EXPECT_TRUE(heap.empty());
}

TEST(IndexedMinHeapTest, UpdateMovesBothDirections) {
  IndexedMinHeap<int> heap;
  heap.Insert(1, 1.0);
  heap.Insert(2, 2.0);
  heap.Insert(3, 3.0);
  heap.Update(3, 0.5);  // decrease
  EXPECT_EQ(heap.Peek().first, 3);
  heap.Update(3, 10.0);  // increase
  EXPECT_EQ(heap.Peek().first, 1);
  heap.Update(4, 0.1);  // insert-via-update
  EXPECT_EQ(heap.Peek().first, 4);
}

TEST(IndexedMinHeapTest, EraseMiddle) {
  IndexedMinHeap<int> heap;
  for (int i = 0; i < 10; ++i) heap.Insert(i, static_cast<double>(i));
  heap.Erase(0);
  heap.Erase(5);
  EXPECT_EQ(heap.size(), 8u);
  EXPECT_FALSE(heap.Contains(5));
  EXPECT_EQ(heap.Peek().first, 1);
}

TEST(IndexedMinHeapTest, TieBrokenById) {
  IndexedMinHeap<int> heap;
  heap.Insert(7, 1.0);
  heap.Insert(3, 1.0);
  heap.Insert(5, 1.0);
  EXPECT_EQ(heap.Peek().first, 3);
}

TEST(IndexedMinHeapTest, KeyOf) {
  IndexedMinHeap<int> heap;
  heap.Insert(1, 4.5);
  EXPECT_DOUBLE_EQ(heap.KeyOf(1), 4.5);
  heap.Update(1, 2.5);
  EXPECT_DOUBLE_EQ(heap.KeyOf(1), 2.5);
}

// Property: under a random op sequence the heap always pops the exact
// minimum of a reference map.
class IndexedHeapPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(IndexedHeapPropertyTest, MatchesReferenceModel) {
  common::Rng rng(static_cast<uint64_t>(GetParam()));
  IndexedMinHeap<int> heap;
  std::map<int, double> reference;

  for (int step = 0; step < 3000; ++step) {
    const int op = static_cast<int>(rng.UniformInt(0, 3));
    const int id = static_cast<int>(rng.UniformInt(0, 100));
    if (op == 0) {  // insert or update
      const double key = rng.Uniform(0.0, 10.0);
      heap.Update(id, key);
      reference[id] = key;
    } else if (op == 1 && reference.count(id)) {
      heap.Erase(id);
      reference.erase(id);
    } else if (op == 2 && !reference.empty()) {
      // Verify the heap min matches the reference min (key, id) order.
      auto best = reference.begin();
      for (auto it = reference.begin(); it != reference.end(); ++it) {
        if (it->second < best->second ||
            (it->second == best->second && it->first < best->first)) {
          best = it;
        }
      }
      ASSERT_EQ(heap.Peek().first, best->first);
      ASSERT_DOUBLE_EQ(heap.Peek().second, best->second);
    } else if (op == 3 && !reference.empty()) {
      const int top = heap.Peek().first;
      heap.Pop();
      ASSERT_EQ(reference.count(top), 1u);
      reference.erase(top);
    }
    ASSERT_EQ(heap.size(), reference.size());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IndexedHeapPropertyTest,
                         ::testing::Range(1, 9));

// Property: lazy maintenance (MarkDirty on every key drift, FlushDirty
// before each read) selects the exact same victims as eager maintenance
// (Update on every drift). This is the contract the cost-based policy's
// cache.heap_maintain path relies on: deferring the sift must never change
// which page gets evicted.
class LazyVsEagerTest : public ::testing::TestWithParam<int> {};

TEST_P(LazyVsEagerTest, VictimSequencesIdentical) {
  common::Rng rng(0xD1337u + static_cast<uint64_t>(GetParam()));
  IndexedMinHeap<int> eager;
  IndexedMinHeap<int> lazy;
  std::map<int, double> true_key;
  const auto key_fn = [&true_key](int id) { return true_key.at(id); };

  for (int step = 0; step < 4000; ++step) {
    const int op = static_cast<int>(rng.UniformInt(0, 4));
    const int id = static_cast<int>(rng.UniformInt(0, 80));
    if (op == 0) {  // admit or re-key (an insert is eager in both modes)
      const double key = rng.Uniform(0.0, 100.0);
      true_key[id] = key;
      eager.Update(id, key);
      if (lazy.Contains(id)) {
        lazy.MarkDirty(id);
      } else {
        lazy.Insert(id, key);
      }
    } else if (op == 1 && true_key.count(id)) {  // access: key drifts
      true_key[id] += rng.Uniform(-5.0, 5.0);
      eager.Update(id, true_key[id]);
      lazy.MarkDirty(id);
    } else if (op == 2 && true_key.count(id)) {  // drop
      true_key.erase(id);
      eager.Erase(id);
      lazy.Erase(id);
    } else if (op == 3 && !true_key.empty()) {  // victim selection
      lazy.FlushDirty(key_fn);
      ASSERT_EQ(lazy.Peek().first, eager.Peek().first) << "step " << step;
      ASSERT_DOUBLE_EQ(lazy.Peek().second, eager.Peek().second);
      const int victim = eager.Peek().first;
      eager.Pop();
      lazy.Pop();
      true_key.erase(victim);
    } else if (op == 4 && true_key.count(id)) {
      // Redundant marks between flushes must coalesce, not double-apply.
      lazy.MarkDirty(id);
      lazy.MarkDirty(id);
      eager.Update(id, true_key[id]);
    }
    ASSERT_EQ(lazy.size(), eager.size());
  }
  // Drain: the full remaining eviction order must agree.
  lazy.FlushDirty(key_fn);
  while (!eager.empty()) {
    ASSERT_EQ(lazy.Peek().first, eager.Peek().first);
    eager.Pop();
    lazy.Pop();
  }
  EXPECT_TRUE(lazy.empty());
}

INSTANTIATE_TEST_SUITE_P(Seeds, LazyVsEagerTest, ::testing::Range(1, 7));

}  // namespace
}  // namespace memgoal::cache
