// Property tests for the stable stream derivation used by the parallel
// trial harness: distinct (master_seed, stream_index) pairs must yield
// non-colliding streams, and a stream must depend only on its pair — never
// on how many other streams were derived first (the property `Rng::Fork()`
// does NOT have, and the reason TrialRunner forbids it across trials).

#include "common/rng.h"

#include <cstdint>
#include <set>
#include <vector>

#include <gtest/gtest.h>

namespace memgoal::common {
namespace {

std::vector<uint64_t> FirstDraws(Rng rng, int n) {
  std::vector<uint64_t> draws;
  draws.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) draws.push_back(rng.NextUint64());
  return draws;
}

TEST(RngStreamTest, DistinctPairsYieldDistinctSeeds) {
  // A 64x64 grid of small sequential seeds and stream indices — exactly the
  // values experiments use — produces 4096 distinct derived seeds.
  std::set<uint64_t> seen;
  for (uint64_t seed = 0; seed < 64; ++seed) {
    for (uint64_t stream = 0; stream < 64; ++stream) {
      seen.insert(DeriveStreamSeed(seed, stream));
    }
  }
  EXPECT_EQ(seen.size(), 64u * 64u);
}

TEST(RngStreamTest, AuxiliaryStreamBandsDoNotCollide) {
  // The bench harness keys trials at [0, 2^32) and auxiliary streams at
  // k * 2^32 + i; a grid spanning several bands stays collision-free.
  std::set<uint64_t> seen;
  size_t inserted = 0;
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    for (uint64_t band = 0; band < 4; ++band) {
      for (uint64_t i = 0; i < 64; ++i) {
        seen.insert(DeriveStreamSeed(seed, (band << 32) + i));
        ++inserted;
      }
    }
  }
  EXPECT_EQ(seen.size(), inserted);
}

TEST(RngStreamTest, StreamsAreDecorrelated) {
  // Neighbouring pairs must not share a draw prefix.
  const auto base = FirstDraws(Rng::ForStream(1, 0), 16);
  EXPECT_NE(base, FirstDraws(Rng::ForStream(1, 1), 16));
  EXPECT_NE(base, FirstDraws(Rng::ForStream(2, 0), 16));
  EXPECT_NE(base, FirstDraws(Rng(1), 16));  // and not the master itself
}

TEST(RngStreamTest, DerivationIsOrderIndependent) {
  // Stream 5 of seed 9 is the same generator whether it is derived cold or
  // after many other streams — DeriveStreamSeed is a pure function, with no
  // hidden parent state advancing between calls.
  const auto cold = FirstDraws(Rng::ForStream(9, 5), 16);
  for (uint64_t stream = 0; stream < 5; ++stream) {
    (void)Rng::ForStream(9, stream).NextUint64();
  }
  EXPECT_EQ(cold, FirstDraws(Rng::ForStream(9, 5), 16));

  // Fork(), by contrast, is order-dependent: the second fork of the same
  // parent differs from the first. This is the trap the trial harness's
  // derivation exists to avoid.
  Rng parent(9);
  const auto first_fork = FirstDraws(parent.Fork(), 16);
  const auto second_fork = FirstDraws(parent.Fork(), 16);
  EXPECT_NE(first_fork, second_fork);
}

TEST(RngStreamTest, Mix64IsBijectiveOnSamples) {
  // Mix64 is algebraically bijective; spot-check injectivity over a dense
  // low range plus scattered large values.
  std::set<uint64_t> seen;
  size_t inserted = 0;
  for (uint64_t x = 0; x < 4096; ++x) {
    seen.insert(Mix64(x));
    ++inserted;
  }
  for (uint64_t x = 1; x != 0; x <<= 1) {
    seen.insert(Mix64(x ^ 0x5a5a5a5a5a5a5a5aull));
    ++inserted;
  }
  EXPECT_EQ(seen.size(), inserted);
}

}  // namespace
}  // namespace memgoal::common
