#include "obs/attainment.h"

#include <cmath>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/system.h"
#include "obs/decision_log.h"
#include "obs/latency_budget.h"
#include "workload/spec.h"

namespace memgoal::obs {
namespace {

TEST(RequestBudgetTest, ResidualClosesTheBudgetExactly) {
  RequestBudget budget;
  budget.Add(BudgetPhase::kCpuWait, 0.125);
  budget.Add(BudgetPhase::kCpuService, 0.25);
  budget.Add(BudgetPhase::kDiskService, 3.0 / 7.0);
  budget.SetResidual(1.0);
  EXPECT_EQ(budget.Sum(), 1.0);
  EXPECT_DOUBLE_EQ(budget.AttributedSum(), 0.125 + 0.25 + 3.0 / 7.0);
}

TEST(AttainmentTrackerTest, RecordRequestTracksWorstSumError) {
  AttainmentTracker tracker;
  tracker.Enable(true);
  RequestBudget closed;
  closed.Add(BudgetPhase::kDiskService, 1.5);
  closed.SetResidual(2.0);
  tracker.RecordRequest(1, 0, 2.0, closed);
  EXPECT_EQ(tracker.max_sum_error(), 0.0);

  RequestBudget open;
  open.Add(BudgetPhase::kDiskService, 1.5);  // no residual: sums to 1.5
  tracker.RecordRequest(1, 0, 2.0, open);
  EXPECT_NEAR(tracker.max_sum_error(), 0.5, 1e-15);
  EXPECT_EQ(tracker.requests_recorded(), 2u);
}

TEST(AttainmentTrackerTest, BurnRateScalesMissFractionByErrorBudget) {
  AttainmentTracker::SloState state;
  EXPECT_EQ(AttainmentTracker::BurnRate(state, 6), 0.0);  // no data yet

  // Oldest -> newest: 4 hits then 2 misses.
  for (int i = 0; i < 4; ++i) state.window.push_back(true);
  for (int i = 0; i < 2; ++i) state.window.push_back(false);
  // Fast window (6): 2/6 missed, over a 10% budget -> burn rate 10/3.
  EXPECT_NEAR(AttainmentTracker::BurnRate(state, 6), (2.0 / 6.0) / 0.1,
              1e-12);
  // A 2-interval window sees only the trailing misses: burn rate 10.
  EXPECT_NEAR(AttainmentTracker::BurnRate(state, 2), 10.0, 1e-12);
  // A window longer than the history clamps to the history.
  EXPECT_NEAR(AttainmentTracker::BurnRate(state, 36), (2.0 / 6.0) / 0.1,
              1e-12);
}

AttainmentTracker::ClassSample GoalSample(bool satisfied, uint64_t ops,
                                          uint64_t bytes) {
  AttainmentTracker::ClassSample sample;
  sample.klass = 1;
  sample.has_goal = true;
  sample.goal_rt_ms = 10.0;
  sample.tolerance_ms = 1.0;
  sample.observed_rt_ms = satisfied ? 9.0 : 14.0;
  sample.has_observed_rt = ops > 0;
  sample.satisfied = satisfied;
  sample.ops_completed = ops;
  sample.dedicated_bytes = bytes;
  return sample;
}

TEST(AttainmentTrackerTest, SloWindowsAdvancePerInterval) {
  AttainmentTracker tracker;
  tracker.Enable(true);
  int interval = 0;
  auto feed = [&](bool satisfied, uint64_t ops, uint64_t bytes) {
    tracker.OnIntervalEnd(interval, interval * 5000.0,
                          {GoalSample(satisfied, ops, bytes)});
    ++interval;
  };

  feed(true, 10, 100);
  const AttainmentTracker::SloState& state = tracker.slo().at(1);
  EXPECT_EQ(state.intervals_counted, 1u);
  EXPECT_EQ(state.intervals_since_miss, -1);  // never missed

  feed(false, 10, 200);
  EXPECT_EQ(state.misses, 1u);
  EXPECT_EQ(state.intervals_since_miss, 0);

  // An idle interval neither meets nor misses the goal (and freezes the
  // since-miss clock), but still feeds the oscillation detector.
  feed(true, 0, 150);
  EXPECT_EQ(state.intervals_counted, 2u);
  EXPECT_EQ(state.intervals_since_miss, 0);

  feed(true, 10, 180);
  EXPECT_EQ(state.intervals_counted, 3u);
  EXPECT_EQ(state.intervals_satisfied, 2u);
  EXPECT_EQ(state.intervals_since_miss, 1);

  // Allocation deltas so far: +100, -50, +30 — two direction reversals.
  EXPECT_EQ(state.oscillations, 2u);
  EXPECT_EQ(state.window.size(), 3u);
}

TEST(AttainmentTrackerTest, CheckOutcomesFeedRungResidencyAndBaseline) {
  AttainmentTracker tracker;
  tracker.Enable(true);

  AttainmentTracker::CheckOutcome ok;
  ok.klass = 1;
  ok.observed_rt_ms = 9.5;
  ok.has_observed_rt = true;
  tracker.RecordCheckOutcome(ok);

  AttainmentTracker::CheckOutcome slow;
  slow.klass = 1;
  slow.too_slow = true;
  slow.lp_run = true;
  slow.relaxed_rung = 1;
  slow.observed_rt_ms = 15.0;
  slow.has_observed_rt = true;
  tracker.RecordCheckOutcome(slow);

  const AttainmentTracker::SloState& state = tracker.slo().at(1);
  EXPECT_EQ(state.checks, 2u);
  ASSERT_GE(state.rung_checks.size(), 3u);
  EXPECT_EQ(state.rung_checks[0], 1u);  // unrelaxed check
  EXPECT_EQ(state.rung_checks[2], 1u);  // rung-1 check
  // Only the in-band check refreshed the converged baseline.
  ASSERT_EQ(state.baseline_rts.size(), 1u);
  EXPECT_EQ(state.baseline_rts.front(), 9.5);
}

TEST(AttainmentTrackerTest, MissCardJoinsBudgetBaselineAndFaults) {
  AttainmentTracker tracker;
  tracker.Enable(true);

  RequestBudget budget;
  budget.Add(BudgetPhase::kDiskWait, 6.0);
  budget.Add(BudgetPhase::kCpuService, 1.0);
  budget.SetResidual(8.0);
  tracker.RecordRequest(1, 2, 8.0, budget);
  tracker.OnIntervalEnd(0, 5000.0, {GoalSample(true, 1, 100)});

  AttainmentTracker::CheckOutcome ok;
  ok.klass = 1;
  ok.observed_rt_ms = 8.0;
  ok.has_observed_rt = true;
  tracker.RecordCheckOutcome(ok);

  AttainmentTracker::FaultState faults;
  faults.nodes_down = 1;
  faults.partitioned = true;
  faults.partition_epoch = 3;
  faults.corruptions_since_last_check = 2;
  const AttainmentTracker::MissCard& card =
      tracker.RecordMiss(1, 0, 5001.0, 14.0, 10.0, 1.0, faults);
  EXPECT_EQ(card.dominant_phase, BudgetPhase::kDiskWait);
  EXPECT_DOUBLE_EQ(card.dominant_ms, 6.0);
  EXPECT_DOUBLE_EQ(card.baseline_rt_ms, 8.0);
  EXPECT_DOUBLE_EQ(card.deviation_ms, 6.0);
  EXPECT_EQ(card.nodes_down, 1u);
  EXPECT_TRUE(card.partitioned);
  EXPECT_EQ(card.partition_epoch, 3u);
  EXPECT_EQ(card.corruptions, 2u);
  EXPECT_FALSE(card.lp_run);

  tracker.AnnotateLastMiss(1, /*lp_run=*/true, "goal_relaxed", 1);
  ASSERT_EQ(tracker.cards().size(), 1u);
  EXPECT_TRUE(tracker.cards()[0].lp_run);
  EXPECT_EQ(tracker.cards()[0].lp_mode, "goal_relaxed");
  EXPECT_EQ(tracker.cards()[0].relaxed_rung, 1);
}

TEST(AttainmentTrackerTest, NoteCorruptionsReturnsDeltaSinceLastCheck) {
  AttainmentTracker tracker;
  tracker.Enable(true);
  EXPECT_EQ(tracker.NoteCorruptions(1, 5), 5u);
  EXPECT_EQ(tracker.NoteCorruptions(1, 7), 2u);
  EXPECT_EQ(tracker.NoteCorruptions(1, 7), 0u);
  // A non-monotonic mirror clamps instead of underflowing.
  EXPECT_EQ(tracker.NoteCorruptions(1, 3), 0u);
}

TEST(AttainmentTrackerTest, DisabledTrackerIsInert) {
  AttainmentTracker tracker;  // never enabled
  RequestBudget budget;
  budget.SetResidual(1.0);
  tracker.RecordRequest(1, 0, 1.0, budget);
  tracker.OnIntervalEnd(0, 5000.0, {GoalSample(true, 1, 100)});
  AttainmentTracker::CheckOutcome outcome;
  outcome.klass = 1;
  tracker.RecordCheckOutcome(outcome);
  EXPECT_EQ(tracker.requests_recorded(), 0u);
  EXPECT_TRUE(tracker.rows().empty());
  EXPECT_TRUE(tracker.slo().empty());
}

// -- The closed-budget property over a real cluster run ----------------------

std::unique_ptr<core::ClusterSystem> BuildFaultySystem() {
  core::SystemConfig config;
  config.num_nodes = 3;
  config.cache_bytes_per_node = 2ull << 20;
  config.db_pages = 2000;
  config.seed = 17;
  // Compose every fault family so all attribution paths run: a crash with
  // recovery, a gray episode on another node, and continuous bit-rot.
  const uint32_t victim = config.num_nodes - 1;
  config.faults.script = {{30000.0, victim, /*crash=*/true},
                          {50000.0, victim, /*crash=*/false}};
  config.faults.degradation_script = {
      {60000.0, 0, /*begin=*/true, 20.0},
      {80000.0, 0, /*begin=*/false}};
  config.faults.mttc_ms = 20000.0;
  config.corrupt_latent_fraction = 0.1;
  config.scrub_interval_ms = 500.0;
  auto system = std::make_unique<core::ClusterSystem>(config);
  workload::ClassSpec goal;
  goal.id = 1;
  goal.goal_rt_ms = 8.0;
  goal.pages = {0, 1000};
  goal.mean_interarrival_ms = 40.0;
  workload::ClassSpec nogoal;
  nogoal.id = 0;
  nogoal.pages = {1000, 2000};
  nogoal.mean_interarrival_ms = 40.0;
  system->AddClass(goal);
  system->AddClass(nogoal);
  return system;
}

TEST(AttainmentIntegrationTest, BudgetDecompositionClosesUnderFaults) {
  auto system = BuildFaultySystem();
  AttainmentTracker tracker;
  tracker.Enable(true);
  system->SetAttainment(&tracker);
  system->Start();
  system->RunIntervals(24);

  EXPECT_GT(tracker.requests_recorded(), 0u);
  // The acceptance bound: every completed request's decomposition summed
  // back to its measured response time within 1e-9 sim-ms.
  EXPECT_LE(tracker.max_sum_error(), 1e-9);

  ASSERT_FALSE(tracker.rows().empty());
  uint64_t row_requests = 0;
  for (const AttainmentTracker::BudgetRow& row : tracker.rows()) {
    row_requests += row.requests;
    double phase_sum = 0.0;
    for (double ms : row.phase_ms) phase_sum += ms;
    // Aggregated rows stay closed too (folded per-request error only).
    EXPECT_NEAR(phase_sum, row.rt_sum_ms, 1e-6);
  }
  EXPECT_EQ(row_requests, tracker.requests_recorded());

  // Under a crash, a gray episode and bit-rot the goal class cannot have
  // spent its whole life in pure CPU: some wait/fetch attribution exists.
  double goal_cpu_service = 0.0, goal_non_cpu = 0.0;
  for (const AttainmentTracker::BudgetRow& row : tracker.rows()) {
    if (row.klass != 1) continue;
    goal_cpu_service +=
        row.phase_ms[static_cast<int>(BudgetPhase::kCpuService)];
    for (int i = 0; i < kNumBudgetPhases; ++i) {
      if (i != static_cast<int>(BudgetPhase::kCpuService)) {
        goal_non_cpu += row.phase_ms[i];
      }
    }
  }
  EXPECT_GT(goal_cpu_service, 0.0);
  EXPECT_GT(goal_non_cpu, 0.0);

  // The SLO monitor saw the goal class.
  ASSERT_TRUE(tracker.slo().count(1));
  EXPECT_GT(tracker.slo().at(1).intervals_counted, 0u);
}

TEST(AttainmentIntegrationTest, AttachedDisabledTrackerRecordsNothing) {
  auto system = BuildFaultySystem();
  AttainmentTracker tracker;  // attached but never enabled
  system->SetAttainment(&tracker);
  system->Start();
  system->RunIntervals(8);
  EXPECT_EQ(tracker.requests_recorded(), 0u);
  EXPECT_TRUE(tracker.rows().empty());
  EXPECT_TRUE(tracker.cards().empty());
}

// -- Miss-card decision records ----------------------------------------------

TEST(AttainmentMissCardTest, DecisionRecordRoundTripsBitForBit) {
  DecisionRecord record;
  record.interval = 7;
  record.sim_time_ms = 35001.0;
  record.klass = 1;
  record.observed_rt_k = 14.5;
  record.goal_rt = 10.0;
  record.tolerance_delta = 0.5;
  record.miss_card = true;
  record.miss_dominant_phase = "disk_wait";
  record.miss_dominant_ms = 6.25;
  record.miss_phase_ms = {0.1, 0.2, 6.25, 0.5, 0.0, 0.0,
                          3.0 / 7.0, 0.0, 0.0, 0.0, 0.125};
  record.miss_baseline_rt = 8.5;
  record.miss_deviation_ms = 6.0;
  record.miss_nodes_down = 1;
  record.miss_nodes_degraded = 2;
  record.miss_partitioned = true;
  record.miss_corruptions = 3;

  const std::string json = record.ToJson();
  DecisionRecord parsed;
  ASSERT_TRUE(DecisionRecord::FromJson(json, &parsed));
  EXPECT_TRUE(parsed.miss_card);
  EXPECT_EQ(parsed.miss_dominant_phase, record.miss_dominant_phase);
  EXPECT_EQ(parsed.miss_dominant_ms, record.miss_dominant_ms);
  EXPECT_EQ(parsed.miss_phase_ms, record.miss_phase_ms);
  EXPECT_EQ(parsed.miss_baseline_rt, record.miss_baseline_rt);
  EXPECT_EQ(parsed.miss_deviation_ms, record.miss_deviation_ms);
  EXPECT_EQ(parsed.miss_nodes_down, record.miss_nodes_down);
  EXPECT_EQ(parsed.miss_nodes_degraded, record.miss_nodes_degraded);
  EXPECT_EQ(parsed.miss_partitioned, record.miss_partitioned);
  EXPECT_EQ(parsed.miss_corruptions, record.miss_corruptions);
  // Replay fidelity, PR-4 style: re-serializing the parse reproduces the
  // original line byte for byte.
  EXPECT_EQ(parsed.ToJson(), json);
}

TEST(AttainmentMissCardTest, RecordWithoutMissCardOmitsTheBlock) {
  DecisionRecord record;
  record.interval = 3;
  record.klass = 1;
  const std::string json = record.ToJson();
  EXPECT_EQ(json.find("miss_"), std::string::npos);
  DecisionRecord parsed;
  ASSERT_TRUE(DecisionRecord::FromJson(json, &parsed));
  EXPECT_FALSE(parsed.miss_card);
}

}  // namespace
}  // namespace memgoal::obs
