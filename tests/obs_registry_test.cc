#include "obs/registry.h"

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/stats.h"

namespace memgoal::obs {
namespace {

// Reads a whole FILE* produced by the Write* helpers via tmpfile().
std::string Slurp(void (*write)(Registry*, std::FILE*), Registry* registry) {
  std::FILE* file = std::tmpfile();
  EXPECT_NE(file, nullptr);
  write(registry, file);
  std::fseek(file, 0, SEEK_END);
  const long size = std::ftell(file);
  std::fseek(file, 0, SEEK_SET);
  std::string text(static_cast<size_t>(size), '\0');
  EXPECT_EQ(std::fread(text.data(), 1, text.size(), file), text.size());
  std::fclose(file);
  return text;
}

TEST(RegistryTest, CounterAccumulatesAndReportsDeltas) {
  Registry registry;
  Registry::Counter* counter = registry.GetCounter("ctrl.checks");
  counter->Add();
  counter->Add(4);
  EXPECT_EQ(counter->value(), 5u);

  const Registry::Snapshot& first = registry.TakeSnapshot(0, 5000.0);
  ASSERT_EQ(first.entries.size(), 1u);
  EXPECT_EQ(first.entries[0].name, "ctrl.checks");
  EXPECT_EQ(first.entries[0].kind, Registry::Kind::kCounter);
  EXPECT_DOUBLE_EQ(first.entries[0].value, 5.0);
  EXPECT_EQ(first.entries[0].delta, 5u);

  counter->Add(2);
  const Registry::Snapshot& second = registry.TakeSnapshot(1, 10000.0);
  EXPECT_DOUBLE_EQ(second.entries[0].value, 7.0);
  EXPECT_EQ(second.entries[0].delta, 2u);  // per-interval rate, not total
}

TEST(RegistryTest, CounterSetMirrorsExternalCumulativeValue) {
  Registry registry;
  Registry::Counter* counter = registry.GetCounter("net.bytes");
  counter->Set(100);
  registry.TakeSnapshot(0, 1.0);
  counter->Set(250);
  const Registry::Snapshot& snap = registry.TakeSnapshot(1, 2.0);
  EXPECT_DOUBLE_EQ(snap.entries[0].value, 250.0);
  EXPECT_EQ(snap.entries[0].delta, 150u);
}

TEST(RegistryTest, CounterSetClampsNonMonotonicMirror) {
  Registry registry;
  Registry::Counter* counter = registry.GetCounter("net.bytes");
  counter->Set(100);
  registry.TakeSnapshot(0, 1.0);

  // The external source reset (e.g. a restarted component re-counts from
  // zero). The counter must hold rather than go backwards, the interval
  // delta must clamp to zero, and the clamp must be counted.
  counter->Set(10);
  EXPECT_EQ(counter->value(), 100u);
  EXPECT_EQ(counter->regressions(), 1u);
  const Registry::Snapshot& clamped = registry.TakeSnapshot(1, 2.0);
  ASSERT_EQ(clamped.entries.size(), 2u);
  EXPECT_EQ(clamped.entries[0].name, "net.bytes");
  EXPECT_DOUBLE_EQ(clamped.entries[0].value, 100.0);
  EXPECT_EQ(clamped.entries[0].delta, 0u);
  // The registry surfaces the clamp as a synthetic counter.
  EXPECT_EQ(clamped.entries[1].name, "obs.counter_regressions");
  EXPECT_DOUBLE_EQ(clamped.entries[1].value, 1.0);
  EXPECT_EQ(clamped.entries[1].delta, 1u);

  // The re-anchored mirror keeps producing correct deltas: the source
  // advancing 10 -> 60 is +50 on top of the held value.
  counter->Set(60);
  EXPECT_EQ(counter->value(), 150u);
  const Registry::Snapshot& resumed = registry.TakeSnapshot(2, 3.0);
  EXPECT_DOUBLE_EQ(resumed.entries[0].value, 150.0);
  EXPECT_EQ(resumed.entries[0].delta, 50u);
  // No new clamp: the synthetic counter's delta falls back to zero.
  EXPECT_EQ(resumed.entries[1].delta, 0u);
}

TEST(RegistryTest, HealthyCountersEmitNoRegressionEntry) {
  Registry registry;
  registry.GetCounter("ok")->Set(5);
  const Registry::Snapshot& snap = registry.TakeSnapshot(0, 1.0);
  ASSERT_EQ(snap.entries.size(), 1u);
  EXPECT_EQ(snap.entries[0].name, "ok");
}

TEST(RegistryTest, InstrumentPointersAreStableAndShared) {
  Registry registry;
  Registry::Counter* a = registry.GetCounter("x");
  // Interleave enough creations to force rehash in a hash-map world; the
  // std::map backing must keep `a` valid and identical on re-lookup.
  for (int i = 0; i < 100; ++i) {
    registry.GetCounter("fill." + std::to_string(i));
  }
  EXPECT_EQ(registry.GetCounter("x"), a);
  Registry::Gauge* g = registry.GetGauge("g");
  g->Set(3.5);
  EXPECT_DOUBLE_EQ(registry.GetGauge("g")->value(), 3.5);
}

TEST(RegistryTest, HistogramViewExportsQuantilesWithSaturation) {
  common::Histogram histogram(1.0, 100.0, 20);
  for (int i = 0; i < 90; ++i) histogram.Add(10.0);
  Registry registry;
  registry.RegisterHistogram("disk.wait", &histogram, {0.5, 0.99});

  const Registry::Snapshot& ok = registry.TakeSnapshot(0, 1.0);
  ASSERT_EQ(ok.entries.size(), 2u);
  EXPECT_EQ(ok.entries[0].name, "disk.wait.p50");
  EXPECT_EQ(ok.entries[0].kind, Registry::Kind::kQuantile);
  EXPECT_FALSE(ok.entries[0].saturated);
  EXPECT_EQ(ok.entries[0].overflow, 0u);

  // Push 5% of samples past the bound: p50 still interpolates, p99 lands in
  // the overflow mass and must carry the saturation flag + overflow count.
  for (int i = 0; i < 5; ++i) histogram.Add(1000.0);
  const Registry::Snapshot& sat = registry.TakeSnapshot(1, 2.0);
  EXPECT_FALSE(sat.entries[0].saturated);
  EXPECT_TRUE(sat.entries[1].saturated);
  EXPECT_EQ(sat.entries[1].overflow, 5u);
  EXPECT_DOUBLE_EQ(sat.entries[1].value, 100.0);  // clipped at hi
}

TEST(RegistryTest, CsvAndJsonlCarryEveryInstrument) {
  Registry registry;
  registry.GetCounter("c")->Add(3);
  registry.GetGauge("g")->Set(1.25);
  registry.TakeSnapshot(0, 5000.0);

  const std::string csv = Slurp(
      [](Registry* r, std::FILE* f) { r->WriteCsv(f); }, &registry);
  EXPECT_NE(csv.find("interval,sim_time_ms,name,kind,value,delta"),
            std::string::npos);
  EXPECT_NE(csv.find("0,5000.000,c,counter,3,3,0,0"), std::string::npos);
  EXPECT_NE(csv.find(",g,gauge,1.25,"), std::string::npos);

  const std::string jsonl = Slurp(
      [](Registry* r, std::FILE* f) { r->WriteJsonl(f); }, &registry);
  EXPECT_NE(jsonl.find("\"interval\":0"), std::string::npos);
  EXPECT_NE(jsonl.find("\"c\":3"), std::string::npos);
  EXPECT_NE(jsonl.find("\"g\":1.25"), std::string::npos);
  // One line per snapshot.
  EXPECT_EQ(std::count(jsonl.begin(), jsonl.end(), '\n'), 1);
}

TEST(RegistryTest, SnapshotsOrderClassColumnsNaturally) {
  // Per-class instrument names must come out in numeric class order —
  // class2 before class10 — not in lexicographic or hash-map order, so CSV
  // snapshots diff cleanly across runs regardless of registration order.
  Registry registry;
  registry.GetCounter("class10.ops")->Add(1);
  registry.GetCounter("class2.ops")->Add(2);
  registry.GetCounter("class1.ops")->Add(3);
  registry.GetGauge("class10.budget.disk_wait_ms")->Set(4.0);
  registry.GetGauge("class2.budget.disk_wait_ms")->Set(5.0);
  const Registry::Snapshot& snap = registry.TakeSnapshot(0, 1000.0);

  std::vector<std::string> names;
  for (const Registry::SnapshotEntry& entry : snap.entries) {
    names.push_back(entry.name);
  }
  const std::vector<std::string> expected = {
      "class1.ops", "class2.ops", "class10.ops",
      "class2.budget.disk_wait_ms", "class10.budget.disk_wait_ms"};
  EXPECT_EQ(names, expected);

  // The CSV serialization preserves that order.
  const std::string csv = Slurp(
      [](Registry* r, std::FILE* f) { r->WriteCsv(f); }, &registry);
  EXPECT_LT(csv.find("class2.ops"), csv.find("class10.ops"));
  EXPECT_LT(csv.find("class2.budget"), csv.find("class10.budget"));
}

}  // namespace
}  // namespace memgoal::obs
