#include <gtest/gtest.h>

#include "net/directory.h"
#include "net/network.h"
#include "sim/simulator.h"
#include "storage/database.h"

namespace memgoal::net {
namespace {

TEST(NetworkTest, TransmissionTime) {
  sim::Simulator simulator;
  Network::Params params;
  params.bandwidth_mbit_per_s = 100.0;
  params.latency_ms = 0.05;
  Network network(&simulator, params);
  // 4096 bytes = 32768 bits at 100 Mbit/s = 0.32768 ms.
  EXPECT_NEAR(network.TransmissionTime(4096), 0.32768, 1e-9);
}

TEST(NetworkTest, TransferTakesTransmissionPlusLatency) {
  sim::Simulator simulator;
  Network network(&simulator, Network::Params{100.0, 0.05});
  simulator.Spawn(network.Transfer(0, 1, 4096, TrafficClass::kPage));
  simulator.Run();
  EXPECT_NEAR(simulator.Now(), 0.32768 + 0.05, 1e-9);
}

TEST(NetworkTest, SharedMediumSerializes) {
  sim::Simulator simulator;
  Network network(&simulator, Network::Params{100.0, 0.0});
  for (int i = 0; i < 3; ++i) {
    simulator.Spawn(network.Transfer(0, 1, 4096, TrafficClass::kPage));
  }
  simulator.Run();
  EXPECT_NEAR(simulator.Now(), 3 * 0.32768, 1e-9);
}

TEST(NetworkTest, SameNodeTransferIsFree) {
  sim::Simulator simulator;
  Network network(&simulator, Network::Params{});
  simulator.Spawn(network.Transfer(2, 2, 4096, TrafficClass::kPage));
  simulator.Run();
  EXPECT_DOUBLE_EQ(simulator.Now(), 0.0);
  EXPECT_EQ(network.total_bytes_sent(), 0u);
}

TEST(NetworkTest, PerCategoryAccounting) {
  sim::Simulator simulator;
  Network network(&simulator, Network::Params{});
  simulator.Spawn(network.Transfer(0, 1, 100, TrafficClass::kControl));
  simulator.Spawn(network.Transfer(0, 1, 4096, TrafficClass::kPage));
  simulator.Spawn(
      network.Transfer(1, 0, 48, TrafficClass::kPartitionProtocol));
  simulator.Run();
  EXPECT_EQ(network.bytes_sent(TrafficClass::kControl), 100u);
  EXPECT_EQ(network.bytes_sent(TrafficClass::kPage), 4096u);
  EXPECT_EQ(network.bytes_sent(TrafficClass::kPartitionProtocol), 48u);
  EXPECT_EQ(network.bytes_sent(TrafficClass::kHeatHint), 0u);
  EXPECT_EQ(network.total_bytes_sent(), 100u + 4096u + 48u);
  EXPECT_EQ(network.total_messages_sent(), 3u);
  EXPECT_EQ(network.messages_sent(TrafficClass::kPage), 1u);
}

TEST(NetworkTest, BurstLossDropsPerClassCounters) {
  // Force the Gilbert–Elliott chain into the bad state on the first
  // best-effort message and keep it there: every protocol/hint message
  // drops, while the reliable classes sail through untouched.
  sim::Simulator simulator;
  Network::Params params;
  params.loss_model = LossModel::kBurst;
  params.burst_good_to_bad = 1.0;
  params.burst_bad_to_good = 0.0;
  params.burst_loss_good = 0.0;
  params.burst_loss_bad = 1.0;
  Network network(&simulator, params);
  for (int i = 0; i < 5; ++i) {
    simulator.Spawn(
        network.Transfer(0, 1, 48, TrafficClass::kPartitionProtocol));
    simulator.Spawn(network.Transfer(0, 1, 32, TrafficClass::kHeatHint));
    simulator.Spawn(network.Transfer(0, 1, 64, TrafficClass::kControl));
    simulator.Spawn(network.Transfer(0, 1, 4096, TrafficClass::kPage));
  }
  simulator.Run();
  EXPECT_TRUE(network.in_burst());
  EXPECT_EQ(network.messages_dropped(TrafficClass::kPartitionProtocol), 5u);
  EXPECT_EQ(network.messages_dropped(TrafficClass::kHeatHint), 5u);
  EXPECT_EQ(network.messages_dropped(TrafficClass::kControl), 0u);
  EXPECT_EQ(network.messages_dropped(TrafficClass::kPage), 0u);
}

TEST(NetworkTest, BurstLossIsBursty) {
  // With rare good->bad transitions, a lossless good state and a lossy bad
  // state, drops must cluster: the overall drop rate tracks the stationary
  // bad-state probability, and consecutive drops (runs) must occur far more
  // often than an i.i.d. process at the same rate would produce.
  sim::Simulator simulator;
  Network::Params params;
  params.loss_model = LossModel::kBurst;
  params.burst_good_to_bad = 0.02;
  params.burst_bad_to_good = 0.2;
  params.burst_loss_good = 0.0;
  params.burst_loss_bad = 1.0;
  Network network(&simulator, params);

  const int kMessages = 4000;
  int dropped = 0, paired_drops = 0;
  bool last_dropped = false;
  for (int i = 0; i < kMessages; ++i) {
    bool delivered = true;
    simulator.Spawn([](Network* net, bool* out) -> sim::Task<void> {
      *out = co_await net->Transfer(0, 1, 32, TrafficClass::kHeatHint);
    }(&network, &delivered));
    simulator.Run();
    if (!delivered) {
      ++dropped;
      if (last_dropped) ++paired_drops;
    }
    last_dropped = !delivered;
  }
  // Stationary bad probability = g2b / (g2b + b2g) = 0.02/0.22 ~ 9%.
  const double rate = static_cast<double>(dropped) / kMessages;
  EXPECT_NEAR(rate, 0.09, 0.04);
  // P(drop | previous dropped) ~ P(stay bad) = 0.8 >> rate: strong
  // clustering. An i.i.d. process would give paired_drops/dropped ~ rate.
  const double conditional =
      static_cast<double>(paired_drops) / static_cast<double>(dropped);
  EXPECT_GT(conditional, 0.5);
}

TEST(NetworkTest, IidLossUnaffectedByBurstKnobs) {
  // Default model stays i.i.d.: burst knobs are inert and zero probability
  // means zero drops (and no RNG draws, preserving old seeds' streams).
  sim::Simulator simulator;
  Network::Params params;
  params.loss_probability = 0.0;
  params.burst_good_to_bad = 1.0;  // would drop everything in burst mode
  Network network(&simulator, params);
  for (int i = 0; i < 10; ++i) {
    simulator.Spawn(network.Transfer(0, 1, 32, TrafficClass::kHeatHint));
  }
  simulator.Run();
  EXPECT_EQ(network.messages_dropped(TrafficClass::kHeatHint), 0u);
  EXPECT_FALSE(network.in_burst());
}

TEST(NetworkTest, NodeSlowdownStretchesLatencyOnly) {
  sim::Simulator simulator;
  Network network(&simulator, Network::Params{100.0, 0.05});
  network.SetNodeSlowdown(1, 10.0);
  EXPECT_DOUBLE_EQ(network.NodeSlowdown(1), 10.0);
  EXPECT_DOUBLE_EQ(network.NodeSlowdown(0), 1.0);
  // Latency is paced by the degraded endpoint's NIC/stack; the shared
  // medium's transmission time is unaffected.
  simulator.Spawn(network.Transfer(0, 1, 4096, TrafficClass::kPage));
  simulator.Run();
  EXPECT_NEAR(simulator.Now(), 0.32768 + 0.5, 1e-9);
}

TEST(NetworkTest, NodeSlowdownUsesWorseEndpoint) {
  sim::Simulator simulator;
  Network network(&simulator, Network::Params{100.0, 0.05});
  network.SetNodeSlowdown(0, 20.0);
  network.SetNodeSlowdown(1, 10.0);
  simulator.Spawn(network.Transfer(1, 0, 4096, TrafficClass::kPage));
  simulator.Run();
  EXPECT_NEAR(simulator.Now(), 0.32768 + 1.0, 1e-9);
  // Restoring both endpoints restores the nominal latency.
  network.SetNodeSlowdown(0, 1.0);
  network.SetNodeSlowdown(1, 1.0);
  simulator.Spawn(network.Transfer(0, 1, 4096, TrafficClass::kPage));
  simulator.Run();
  EXPECT_NEAR(simulator.Now(), 2 * 0.32768 + 1.0 + 0.05, 1e-9);
}

TEST(NetworkTest, PartitionDropsEveryClassAcrossTheCut) {
  // Unlike best-effort loss, a partition swallows even the reliable
  // categories: there is no wire to the other side.
  sim::Simulator simulator;
  Network network(&simulator, Network::Params{});
  network.SetReachability([](NodeId from, NodeId to) {
    return (from == 2) == (to == 2);  // node 2 is cut off
  });
  network.SetPartitionActive(true);

  const auto transfer = [&](NodeId from, NodeId to, bool* out) {
    simulator.Spawn([](Network* net, NodeId f, NodeId t,
                       bool* delivered) -> sim::Task<void> {
      *delivered = co_await net->Transfer(f, t, 4096, TrafficClass::kPage);
    }(&network, from, to, out));
    simulator.Run();
  };

  bool delivered = true;
  transfer(0, 2, &delivered);
  EXPECT_FALSE(delivered);
  transfer(2, 0, &delivered);
  EXPECT_FALSE(delivered);
  transfer(0, 1, &delivered);  // same side: unaffected
  EXPECT_TRUE(delivered);
  EXPECT_EQ(network.messages_partition_dropped(TrafficClass::kPage), 2u);
  EXPECT_EQ(network.messages_dropped(TrafficClass::kPage), 2u);
  EXPECT_EQ(network.total_messages_partition_dropped(), 2u);

  // Healing stops the drops without touching the oracle.
  network.SetPartitionActive(false);
  transfer(0, 2, &delivered);
  EXPECT_TRUE(delivered);
  EXPECT_EQ(network.messages_partition_dropped(TrafficClass::kPage), 2u);
}

TEST(NetworkTest, PartitionedTransferStillOccupiesTheMedium) {
  // The sender cannot know the cut exists: its NIC transmits and the bytes
  // die at the boundary, so the medium is held for the transmission time.
  sim::Simulator simulator;
  Network network(&simulator, Network::Params{100.0, 0.05});
  network.SetReachability([](NodeId, NodeId) { return false; });
  network.SetPartitionActive(true);
  simulator.Spawn(network.Transfer(0, 1, 4096, TrafficClass::kPage));
  simulator.Run();
  EXPECT_NEAR(simulator.Now(), 0.32768 + 0.05, 1e-9);
  EXPECT_EQ(network.bytes_sent(TrafficClass::kPage), 4096u);
}

TEST(NetworkTest, StorageBusBypassesPartition) {
  // The dual-ported SCSI path is not the interconnect: disk traffic flows
  // regardless of the partition.
  sim::Simulator simulator;
  Network network(&simulator, Network::Params{});
  network.SetReachability([](NodeId, NodeId) { return false; });
  network.SetPartitionActive(true);

  bool delivered = false;
  simulator.Spawn([](Network* net, bool* out) -> sim::Task<void> {
    *out = co_await net->Transfer(0, 1, 4096, TrafficClass::kPage,
                                  /*via_storage_bus=*/true);
  }(&network, &delivered));
  simulator.Run();
  EXPECT_TRUE(delivered);
  EXPECT_EQ(network.total_messages_partition_dropped(), 0u);
}

class DirectoryTest : public ::testing::Test {
 protected:
  DirectoryTest() : db_(30, 4096, 3), directory_(&db_) {}
  storage::Database db_;
  PageDirectory directory_;
};

TEST_F(DirectoryTest, CopyTrackingIdempotent) {
  EXPECT_EQ(directory_.CopyCount(5), 0);
  directory_.OnPageCached(1, 5);
  directory_.OnPageCached(1, 5);  // idempotent
  EXPECT_EQ(directory_.CopyCount(5), 1);
  EXPECT_TRUE(directory_.IsCachedAt(1, 5));
  EXPECT_TRUE(directory_.IsLastCopy(1, 5));
  directory_.OnPageCached(2, 5);
  EXPECT_EQ(directory_.CopyCount(5), 2);
  EXPECT_FALSE(directory_.IsLastCopy(1, 5));
  directory_.OnPageDropped(1, 5);
  directory_.OnPageDropped(1, 5);  // idempotent
  EXPECT_EQ(directory_.CopyCount(5), 1);
  EXPECT_TRUE(directory_.IsLastCopy(2, 5));
}

TEST_F(DirectoryTest, FindCopyPrefersHome) {
  // Page 7's home is node 1 (7 % 3).
  directory_.OnPageCached(0, 7);
  directory_.OnPageCached(1, 7);
  auto copy = directory_.FindCopy(7, /*except=*/2);
  ASSERT_TRUE(copy.has_value());
  EXPECT_EQ(*copy, 1u);
}

TEST_F(DirectoryTest, FindCopyExcludesRequester) {
  directory_.OnPageCached(2, 7);
  auto copy = directory_.FindCopy(7, /*except=*/2);
  EXPECT_FALSE(copy.has_value());
  directory_.OnPageCached(0, 7);
  copy = directory_.FindCopy(7, /*except=*/2);
  ASSERT_TRUE(copy.has_value());
  EXPECT_EQ(*copy, 0u);
}

TEST_F(DirectoryTest, FindCopyNoneWhenUncached) {
  EXPECT_FALSE(directory_.FindCopy(3, 0).has_value());
}

TEST_F(DirectoryTest, GlobalHeatAggregatesReports) {
  directory_.ReportLocalHeat(0, 4, 0.5);
  directory_.ReportLocalHeat(1, 4, 0.25);
  EXPECT_DOUBLE_EQ(directory_.GlobalHeat(4), 0.75);
  // Re-report replaces, not adds.
  directory_.ReportLocalHeat(0, 4, 0.1);
  EXPECT_DOUBLE_EQ(directory_.GlobalHeat(4), 0.35);
}

TEST_F(DirectoryTest, RankedCopiesPreservesScanOrderWhenCostsEqual) {
  // Page 7's home is node 1 (7 % 3); with equal costs the ranking must be
  // exactly the historic home-first scan order.
  directory_.OnPageCached(0, 7);
  directory_.OnPageCached(1, 7);
  directory_.OnPageCached(2, 7);
  EXPECT_EQ(directory_.RankedCopies(7, /*except=*/2),
            (std::vector<NodeId>{1, 0}));
  EXPECT_EQ(directory_.RankedCopies(7, /*except=*/0),
            (std::vector<NodeId>{1, 2}));
}

TEST_F(DirectoryTest, RankedCopiesOrdersByNodeCost) {
  directory_.OnPageCached(0, 7);
  directory_.OnPageCached(1, 7);
  // The home node turns expensive (e.g. its fetch-latency EWMA spiked): a
  // cheaper replica outranks it, and FindCopy follows the ranking.
  directory_.SetNodeCost(1, 5.0);
  directory_.SetNodeCost(0, 1.0);
  EXPECT_DOUBLE_EQ(directory_.NodeCost(1), 5.0);
  EXPECT_EQ(directory_.RankedCopies(7, /*except=*/2),
            (std::vector<NodeId>{0, 1}));
  auto copy = directory_.FindCopy(7, /*except=*/2);
  ASSERT_TRUE(copy.has_value());
  EXPECT_EQ(*copy, 0u);
  // Costs converging back restores the home-first preference.
  directory_.SetNodeCost(1, 1.0);
  EXPECT_EQ(directory_.RankedCopies(7, /*except=*/2),
            (std::vector<NodeId>{1, 0}));
}

TEST_F(DirectoryTest, RankedCopiesFiltersUnreachableHoldersDuringPartition) {
  // Page 7's home is node 1 (7 % 3); all three nodes hold copies.
  directory_.OnPageCached(0, 7);
  directory_.OnPageCached(1, 7);
  directory_.OnPageCached(2, 7);
  directory_.SetReachability([](NodeId from, NodeId to) {
    return (from == 2) == (to == 2);  // node 2 is cut off
  });

  // Oracle installed but no partition active: full ranking.
  EXPECT_EQ(directory_.RankedCopies(7, /*except=*/2),
            (std::vector<NodeId>{1, 0}));

  // Partition active: the cut-off requester sees no copies across the
  // boundary, and requesters on the majority side do not see node 2.
  directory_.SetPartitionActive(true);
  EXPECT_TRUE(directory_.RankedCopies(7, /*except=*/2).empty());
  EXPECT_FALSE(directory_.FindCopy(7, /*except=*/2).has_value());
  EXPECT_EQ(directory_.RankedCopies(7, /*except=*/0),
            (std::vector<NodeId>{1}));

  directory_.SetPartitionActive(false);
  EXPECT_EQ(directory_.RankedCopies(7, /*except=*/2),
            (std::vector<NodeId>{1, 0}));
}

TEST_F(DirectoryTest, AuditInternalConsistencyDetectsTampering) {
  directory_.OnPageCached(0, 5);
  directory_.OnPageCached(1, 5);
  directory_.ReportLocalHeat(0, 5, 0.5);
  EXPECT_FALSE(directory_.AuditInternalConsistency().has_value());
}

TEST_F(DirectoryTest, TotalCachedPages) {
  directory_.OnPageCached(0, 1);
  directory_.OnPageCached(1, 1);
  directory_.OnPageCached(2, 2);
  EXPECT_EQ(directory_.total_cached_pages(), 3u);
  directory_.OnPageDropped(1, 1);
  EXPECT_EQ(directory_.total_cached_pages(), 2u);
}

}  // namespace
}  // namespace memgoal::net
