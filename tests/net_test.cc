#include <gtest/gtest.h>

#include "net/directory.h"
#include "net/network.h"
#include "sim/simulator.h"
#include "storage/database.h"

namespace memgoal::net {
namespace {

TEST(NetworkTest, TransmissionTime) {
  sim::Simulator simulator;
  Network::Params params;
  params.bandwidth_mbit_per_s = 100.0;
  params.latency_ms = 0.05;
  Network network(&simulator, params);
  // 4096 bytes = 32768 bits at 100 Mbit/s = 0.32768 ms.
  EXPECT_NEAR(network.TransmissionTime(4096), 0.32768, 1e-9);
}

TEST(NetworkTest, TransferTakesTransmissionPlusLatency) {
  sim::Simulator simulator;
  Network network(&simulator, Network::Params{100.0, 0.05});
  simulator.Spawn(network.Transfer(0, 1, 4096, TrafficClass::kPage));
  simulator.Run();
  EXPECT_NEAR(simulator.Now(), 0.32768 + 0.05, 1e-9);
}

TEST(NetworkTest, SharedMediumSerializes) {
  sim::Simulator simulator;
  Network network(&simulator, Network::Params{100.0, 0.0});
  for (int i = 0; i < 3; ++i) {
    simulator.Spawn(network.Transfer(0, 1, 4096, TrafficClass::kPage));
  }
  simulator.Run();
  EXPECT_NEAR(simulator.Now(), 3 * 0.32768, 1e-9);
}

TEST(NetworkTest, SameNodeTransferIsFree) {
  sim::Simulator simulator;
  Network network(&simulator, Network::Params{});
  simulator.Spawn(network.Transfer(2, 2, 4096, TrafficClass::kPage));
  simulator.Run();
  EXPECT_DOUBLE_EQ(simulator.Now(), 0.0);
  EXPECT_EQ(network.total_bytes_sent(), 0u);
}

TEST(NetworkTest, PerCategoryAccounting) {
  sim::Simulator simulator;
  Network network(&simulator, Network::Params{});
  simulator.Spawn(network.Transfer(0, 1, 100, TrafficClass::kControl));
  simulator.Spawn(network.Transfer(0, 1, 4096, TrafficClass::kPage));
  simulator.Spawn(
      network.Transfer(1, 0, 48, TrafficClass::kPartitionProtocol));
  simulator.Run();
  EXPECT_EQ(network.bytes_sent(TrafficClass::kControl), 100u);
  EXPECT_EQ(network.bytes_sent(TrafficClass::kPage), 4096u);
  EXPECT_EQ(network.bytes_sent(TrafficClass::kPartitionProtocol), 48u);
  EXPECT_EQ(network.bytes_sent(TrafficClass::kHeatHint), 0u);
  EXPECT_EQ(network.total_bytes_sent(), 100u + 4096u + 48u);
  EXPECT_EQ(network.total_messages_sent(), 3u);
  EXPECT_EQ(network.messages_sent(TrafficClass::kPage), 1u);
}

class DirectoryTest : public ::testing::Test {
 protected:
  DirectoryTest() : db_(30, 4096, 3), directory_(&db_) {}
  storage::Database db_;
  PageDirectory directory_;
};

TEST_F(DirectoryTest, CopyTrackingIdempotent) {
  EXPECT_EQ(directory_.CopyCount(5), 0);
  directory_.OnPageCached(1, 5);
  directory_.OnPageCached(1, 5);  // idempotent
  EXPECT_EQ(directory_.CopyCount(5), 1);
  EXPECT_TRUE(directory_.IsCachedAt(1, 5));
  EXPECT_TRUE(directory_.IsLastCopy(1, 5));
  directory_.OnPageCached(2, 5);
  EXPECT_EQ(directory_.CopyCount(5), 2);
  EXPECT_FALSE(directory_.IsLastCopy(1, 5));
  directory_.OnPageDropped(1, 5);
  directory_.OnPageDropped(1, 5);  // idempotent
  EXPECT_EQ(directory_.CopyCount(5), 1);
  EXPECT_TRUE(directory_.IsLastCopy(2, 5));
}

TEST_F(DirectoryTest, FindCopyPrefersHome) {
  // Page 7's home is node 1 (7 % 3).
  directory_.OnPageCached(0, 7);
  directory_.OnPageCached(1, 7);
  auto copy = directory_.FindCopy(7, /*except=*/2);
  ASSERT_TRUE(copy.has_value());
  EXPECT_EQ(*copy, 1u);
}

TEST_F(DirectoryTest, FindCopyExcludesRequester) {
  directory_.OnPageCached(2, 7);
  auto copy = directory_.FindCopy(7, /*except=*/2);
  EXPECT_FALSE(copy.has_value());
  directory_.OnPageCached(0, 7);
  copy = directory_.FindCopy(7, /*except=*/2);
  ASSERT_TRUE(copy.has_value());
  EXPECT_EQ(*copy, 0u);
}

TEST_F(DirectoryTest, FindCopyNoneWhenUncached) {
  EXPECT_FALSE(directory_.FindCopy(3, 0).has_value());
}

TEST_F(DirectoryTest, GlobalHeatAggregatesReports) {
  directory_.ReportLocalHeat(0, 4, 0.5);
  directory_.ReportLocalHeat(1, 4, 0.25);
  EXPECT_DOUBLE_EQ(directory_.GlobalHeat(4), 0.75);
  // Re-report replaces, not adds.
  directory_.ReportLocalHeat(0, 4, 0.1);
  EXPECT_DOUBLE_EQ(directory_.GlobalHeat(4), 0.35);
}

TEST_F(DirectoryTest, TotalCachedPages) {
  directory_.OnPageCached(0, 1);
  directory_.OnPageCached(1, 1);
  directory_.OnPageCached(2, 2);
  EXPECT_EQ(directory_.total_cached_pages(), 3u);
  directory_.OnPageDropped(1, 1);
  EXPECT_EQ(directory_.total_cached_pages(), 2u);
}

}  // namespace
}  // namespace memgoal::net
