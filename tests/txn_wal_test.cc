#include "txn/wal.h"

#include <gtest/gtest.h>

#include "sim/simulator.h"
#include "storage/disk.h"

namespace memgoal::txn {
namespace {

class WalTest : public ::testing::Test {
 protected:
  WalTest() : disk_(&simulator_, storage::Disk::Params{}, 4096, "log"),
              wal_(&disk_, 0) {}

  sim::Simulator simulator_;
  storage::Disk disk_;
  Wal wal_;
};

sim::Task<void> ForceTo(Wal* wal, uint64_t lsn, int* done) {
  co_await wal->Force(lsn);
  *done = 1;
}

TEST_F(WalTest, AppendAssignsMonotonicLsns) {
  EXPECT_EQ(wal_.Append(1, 128), 1u);
  EXPECT_EQ(wal_.Append(1, 128), 2u);
  EXPECT_EQ(wal_.Append(2, 64), 3u);
  EXPECT_EQ(wal_.appended_bytes(), 320u);
  EXPECT_EQ(wal_.durable_lsn(), 0u);
}

TEST_F(WalTest, ForceWritesAndTakesDiskTime) {
  const uint64_t lsn = wal_.Append(1, 128);
  int done = 0;
  simulator_.Spawn(ForceTo(&wal_, lsn, &done));
  simulator_.Run();
  EXPECT_EQ(done, 1);
  EXPECT_EQ(wal_.durable_lsn(), lsn);
  EXPECT_EQ(disk_.writes_completed(), 1u);
  EXPECT_NEAR(simulator_.Now(), disk_.PageServiceTime(), 1e-9);
}

TEST_F(WalTest, ForceOfDurableLsnIsFree) {
  const uint64_t lsn = wal_.Append(1, 128);
  int done = 0;
  simulator_.Spawn(ForceTo(&wal_, lsn, &done));
  simulator_.Run();
  const double after_first = simulator_.Now();
  int done2 = 0;
  simulator_.Spawn(ForceTo(&wal_, lsn, &done2));
  simulator_.Run();
  EXPECT_EQ(done2, 1);
  EXPECT_DOUBLE_EQ(simulator_.Now(), after_first);  // no extra disk write
  EXPECT_EQ(disk_.writes_completed(), 1u);
}

TEST_F(WalTest, GroupCommitCoversEarlierAppends) {
  // Three records appended, one force to the last covers all of them.
  wal_.Append(1, 128);
  wal_.Append(2, 128);
  const uint64_t last = wal_.Append(3, 128);
  int done = 0;
  simulator_.Spawn(ForceTo(&wal_, last, &done));
  simulator_.Run();
  EXPECT_EQ(wal_.durable_lsn(), last);
  EXPECT_EQ(disk_.writes_completed(), 1u);
  EXPECT_EQ(wal_.forces(), 1u);
}

TEST_F(WalTest, RecordAppendedDuringWriteNeedsAnotherForce) {
  const uint64_t first = wal_.Append(1, 128);
  int done1 = 0;
  simulator_.Spawn(ForceTo(&wal_, first, &done1));
  // While the first force's write is in flight, append and force another.
  simulator_.RunUntil(disk_.PageServiceTime() / 2.0);
  const uint64_t second = wal_.Append(2, 128);
  int done2 = 0;
  simulator_.Spawn(ForceTo(&wal_, second, &done2));
  simulator_.Run();
  EXPECT_EQ(done1, 1);
  EXPECT_EQ(done2, 1);
  EXPECT_EQ(wal_.durable_lsn(), second);
  EXPECT_EQ(disk_.writes_completed(), 2u);
}

}  // namespace
}  // namespace memgoal::txn
