#include "txn/wal.h"

#include <gtest/gtest.h>

#include "sim/simulator.h"
#include "storage/disk.h"

namespace memgoal::txn {
namespace {

class WalTest : public ::testing::Test {
 protected:
  WalTest() : disk_(&simulator_, storage::Disk::Params{}, 4096, "log"),
              wal_(&disk_, 0) {}

  sim::Simulator simulator_;
  storage::Disk disk_;
  Wal wal_;
};

sim::Task<void> ForceTo(Wal* wal, uint64_t lsn, int* done) {
  co_await wal->Force(lsn);
  *done = 1;
}

TEST_F(WalTest, AppendAssignsMonotonicLsns) {
  EXPECT_EQ(wal_.Append(1, 128), 1u);
  EXPECT_EQ(wal_.Append(1, 128), 2u);
  EXPECT_EQ(wal_.Append(2, 64), 3u);
  // Payload plus one modeled CRC trailer per record.
  EXPECT_EQ(wal_.appended_bytes(), 320u + 3 * Wal::kRecordCrcBytes);
  EXPECT_EQ(wal_.durable_lsn(), 0u);
}

TEST_F(WalTest, ForceWritesAndTakesDiskTime) {
  const uint64_t lsn = wal_.Append(1, 128);
  int done = 0;
  simulator_.Spawn(ForceTo(&wal_, lsn, &done));
  simulator_.Run();
  EXPECT_EQ(done, 1);
  EXPECT_EQ(wal_.durable_lsn(), lsn);
  EXPECT_EQ(disk_.writes_completed(), 1u);
  EXPECT_NEAR(simulator_.Now(), disk_.PageServiceTime(), 1e-9);
}

TEST_F(WalTest, ForceOfDurableLsnIsFree) {
  const uint64_t lsn = wal_.Append(1, 128);
  int done = 0;
  simulator_.Spawn(ForceTo(&wal_, lsn, &done));
  simulator_.Run();
  const double after_first = simulator_.Now();
  int done2 = 0;
  simulator_.Spawn(ForceTo(&wal_, lsn, &done2));
  simulator_.Run();
  EXPECT_EQ(done2, 1);
  EXPECT_DOUBLE_EQ(simulator_.Now(), after_first);  // no extra disk write
  EXPECT_EQ(disk_.writes_completed(), 1u);
}

TEST_F(WalTest, GroupCommitCoversEarlierAppends) {
  // Three records appended, one force to the last covers all of them.
  wal_.Append(1, 128);
  wal_.Append(2, 128);
  const uint64_t last = wal_.Append(3, 128);
  int done = 0;
  simulator_.Spawn(ForceTo(&wal_, last, &done));
  simulator_.Run();
  EXPECT_EQ(wal_.durable_lsn(), last);
  EXPECT_EQ(disk_.writes_completed(), 1u);
  EXPECT_EQ(wal_.forces(), 1u);
}

TEST_F(WalTest, RecordAppendedDuringWriteNeedsAnotherForce) {
  const uint64_t first = wal_.Append(1, 128);
  int done1 = 0;
  simulator_.Spawn(ForceTo(&wal_, first, &done1));
  // While the first force's write is in flight, append and force another.
  simulator_.RunUntil(disk_.PageServiceTime() / 2.0);
  const uint64_t second = wal_.Append(2, 128);
  int done2 = 0;
  simulator_.Spawn(ForceTo(&wal_, second, &done2));
  simulator_.Run();
  EXPECT_EQ(done1, 1);
  EXPECT_EQ(done2, 1);
  EXPECT_EQ(wal_.durable_lsn(), second);
  EXPECT_EQ(disk_.writes_completed(), 2u);
}

TEST_F(WalTest, CrashBetweenAppendAndForceTruncatesTail) {
  const uint64_t durable = wal_.Append(1, 128);
  int done = 0;
  simulator_.Spawn(ForceTo(&wal_, durable, &done));
  simulator_.Run();
  ASSERT_EQ(wal_.durable_lsn(), durable);
  // Two records appended but never forced: gone with the crash.
  wal_.Append(2, 128);
  wal_.Append(2, 128);
  wal_.Crash();
  EXPECT_EQ(wal_.Recover(), durable);
  EXPECT_EQ(wal_.truncated_records(), 2u);
  EXPECT_EQ(wal_.torn_writes(), 0u);
  EXPECT_EQ(wal_.next_lsn(), durable + 1);
}

TEST_F(WalTest, CrashMidWriteTearsTheForce) {
  const uint64_t lsn = wal_.Append(1, 128);
  int done = 0;
  simulator_.Spawn(ForceTo(&wal_, lsn, &done));
  // Crash while the covering log write is still in flight: the write is
  // torn, so its record must not come back as durable.
  simulator_.RunUntil(disk_.PageServiceTime() / 2.0);
  wal_.Crash();
  simulator_.Run();
  EXPECT_EQ(wal_.durable_lsn(), 0u);
  EXPECT_EQ(wal_.torn_writes(), 1u);
  EXPECT_EQ(wal_.Recover(), 0u);
  EXPECT_EQ(wal_.truncated_records(), 1u);
}

TEST_F(WalTest, RecoveryTruncatesAtFirstCorruptRecord) {
  wal_.Append(1, 128);
  const uint64_t bad = wal_.Append(1, 128);
  const uint64_t last = wal_.Append(1, 128);
  int done = 0;
  simulator_.Spawn(ForceTo(&wal_, last, &done));
  simulator_.Run();
  ASSERT_EQ(wal_.durable_lsn(), last);
  // Bit rot on record 2: replay stops just before it, discarding 2 and 3
  // even though 3's CRC is fine (nothing after the first bad record is
  // trustworthy).
  wal_.CorruptFrom(bad);
  wal_.Crash();
  EXPECT_EQ(wal_.Recover(), bad - 1);
  EXPECT_EQ(wal_.truncated_records(), 2u);
  EXPECT_EQ(wal_.durable_lsn(), bad - 1);
}

TEST_F(WalTest, ForceOfTruncatedLsnClampsToTail) {
  wal_.Append(1, 128);
  const uint64_t old_tail = wal_.Append(1, 128);
  wal_.Crash();  // nothing was ever forced
  ASSERT_EQ(wal_.Recover(), 0u);
  // A caller still holding the pre-crash LSN forces it: the target is
  // clamped to the (empty) tail, so the force returns without writing
  // instead of spinning on an LSN that no longer exists.
  int done = 0;
  simulator_.Spawn(ForceTo(&wal_, old_tail, &done));
  simulator_.Run();
  EXPECT_EQ(done, 1);
  EXPECT_EQ(disk_.writes_completed(), 0u);
  // New appends restart at the truncation point and force normally.
  const uint64_t fresh = wal_.Append(2, 64);
  EXPECT_EQ(fresh, 1u);
  int done2 = 0;
  simulator_.Spawn(ForceTo(&wal_, fresh, &done2));
  simulator_.Run();
  EXPECT_EQ(done2, 1);
  EXPECT_EQ(wal_.durable_lsn(), fresh);
}

}  // namespace
}  // namespace memgoal::txn
