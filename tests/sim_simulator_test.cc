#include "sim/simulator.h"

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "sim/task.h"

namespace memgoal::sim {
namespace {

TEST(SimulatorTest, EventsFireInTimeOrder) {
  Simulator simulator;
  std::vector<int> order;
  simulator.Schedule(30.0, [&] { order.push_back(3); });
  simulator.Schedule(10.0, [&] { order.push_back(1); });
  simulator.Schedule(20.0, [&] { order.push_back(2); });
  simulator.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(simulator.Now(), 30.0);
}

TEST(SimulatorTest, SameTimeIsFifo) {
  Simulator simulator;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    simulator.Schedule(5.0, [&order, i] { order.push_back(i); });
  }
  simulator.Run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(SimulatorTest, NestedScheduling) {
  Simulator simulator;
  std::vector<double> times;
  simulator.Schedule(1.0, [&] {
    times.push_back(simulator.Now());
    simulator.Schedule(2.0, [&] { times.push_back(simulator.Now()); });
  });
  simulator.Run();
  ASSERT_EQ(times.size(), 2u);
  EXPECT_DOUBLE_EQ(times[0], 1.0);
  EXPECT_DOUBLE_EQ(times[1], 3.0);
}

TEST(SimulatorTest, RunUntilStopsAndAdvancesClock) {
  Simulator simulator;
  int fired = 0;
  simulator.Schedule(10.0, [&] { ++fired; });
  simulator.Schedule(50.0, [&] { ++fired; });
  simulator.RunUntil(20.0);
  EXPECT_EQ(fired, 1);
  EXPECT_DOUBLE_EQ(simulator.Now(), 20.0);
  simulator.RunUntil(100.0);
  EXPECT_EQ(fired, 2);
  EXPECT_DOUBLE_EQ(simulator.Now(), 100.0);
}

TEST(SimulatorTest, RunUntilInclusiveAtBoundary) {
  Simulator simulator;
  int fired = 0;
  simulator.Schedule(10.0, [&] { ++fired; });
  simulator.RunUntil(10.0);
  EXPECT_EQ(fired, 1);
}

TEST(SimulatorTest, AtSchedulesAbsolute) {
  Simulator simulator;
  simulator.Schedule(5.0, [] {});
  simulator.Run();
  double fired_at = -1.0;
  simulator.At(12.0, [&] { fired_at = simulator.Now(); });
  simulator.Run();
  EXPECT_DOUBLE_EQ(fired_at, 12.0);
}

Task<void> SleepTwice(Simulator* simulator, std::vector<double>* trace) {
  co_await simulator->Delay(10.0);
  trace->push_back(simulator->Now());
  co_await simulator->Delay(5.0);
  trace->push_back(simulator->Now());
}

TEST(TaskTest, DelaysAdvanceClock) {
  Simulator simulator;
  std::vector<double> trace;
  simulator.Spawn(SleepTwice(&simulator, &trace));
  simulator.Run();
  ASSERT_EQ(trace.size(), 2u);
  EXPECT_DOUBLE_EQ(trace[0], 10.0);
  EXPECT_DOUBLE_EQ(trace[1], 15.0);
}

Task<int> Compute(Simulator* simulator) {
  co_await simulator->Delay(3.0);
  co_return 7;
}

Task<void> AwaitChild(Simulator* simulator, int* out) {
  const int v = co_await Compute(simulator);
  *out = v + static_cast<int>(simulator->Now());
}

TEST(TaskTest, NestedTaskReturnsValue) {
  Simulator simulator;
  int out = 0;
  simulator.Spawn(AwaitChild(&simulator, &out));
  simulator.Run();
  EXPECT_EQ(out, 10);  // 7 + now(3)
}

Task<int> DeepChain(Simulator* simulator, int depth) {
  if (depth == 0) {
    co_await simulator->Delay(1.0);
    co_return 1;
  }
  const int below = co_await DeepChain(simulator, depth - 1);
  co_return below + 1;
}

Task<void> RunChain(Simulator* simulator, int* out) {
  *out = co_await DeepChain(simulator, 50);
}

TEST(TaskTest, DeepAwaitChain) {
  Simulator simulator;
  int out = 0;
  simulator.Spawn(RunChain(&simulator, &out));
  simulator.Run();
  EXPECT_EQ(out, 51);
  EXPECT_DOUBLE_EQ(simulator.Now(), 1.0);
}

Task<void> Immediate(int* counter) {
  ++*counter;
  co_return;
}

TEST(TaskTest, SpawnRunsSynchronouslyToFirstSuspension) {
  Simulator simulator;
  int counter = 0;
  simulator.Spawn(Immediate(&counter));
  // Completed without any events: Spawn runs the body immediately.
  EXPECT_EQ(counter, 1);
  EXPECT_EQ(simulator.pending_events(), 0u);
}

TEST(TaskTest, UnawaitedTaskDoesNotRun) {
  int counter = 0;
  {
    Simulator simulator;
    Task<void> task = Immediate(&counter);
    // Dropped without spawn/await: body never runs, no leak (ASAN-checked
    // in sanitizer builds).
  }
  EXPECT_EQ(counter, 0);
}

Task<void> Spawner(Simulator* simulator, std::vector<int>* order, int id) {
  co_await simulator->Delay(static_cast<SimTime>(id));
  order->push_back(id);
}

TEST(TaskTest, ManyProcessesInterleaveDeterministically) {
  std::vector<int> order_a, order_b;
  for (std::vector<int>* order : {&order_a, &order_b}) {
    Simulator simulator;
    for (int id = 9; id >= 0; --id) {
      simulator.Spawn(Spawner(&simulator, order, id));
    }
    simulator.Run();
  }
  EXPECT_EQ(order_a, order_b);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order_a[i], i);
}

Task<void> ZeroDelayYields(Simulator* simulator, std::vector<int>* order) {
  order->push_back(1);
  co_await simulator->Delay(0.0);
  order->push_back(3);
}

TEST(TaskTest, ZeroDelayGoesThroughQueue) {
  Simulator simulator;
  std::vector<int> order;
  simulator.Spawn(ZeroDelayYields(&simulator, &order));
  order.push_back(2);  // runs after spawn's synchronous prefix
  simulator.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(SimulatorTest, EventCountTracked) {
  Simulator simulator;
  for (int i = 0; i < 5; ++i) simulator.Schedule(1.0, [] {});
  simulator.Run();
  EXPECT_EQ(simulator.events_processed(), 5u);
}

}  // namespace
}  // namespace memgoal::sim
