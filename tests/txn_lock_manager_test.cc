#include "txn/lock_manager.h"

#include <vector>

#include <gtest/gtest.h>

#include "sim/simulator.h"

namespace memgoal::txn {
namespace {

// Helper: runs an Acquire to completion inside the simulator, writing the
// outcome into `out` (0 = pending, 1 = granted, -1 = died).
sim::Task<void> TryAcquire(LockManager* manager, TxnId txn, PageId page,
                           LockMode mode, int* out) {
  const bool granted = co_await manager->Acquire(txn, page, mode);
  *out = granted ? 1 : -1;
}

class LockManagerTest : public ::testing::Test {
 protected:
  sim::Simulator simulator_;
  LockManager manager_{&simulator_};
};

TEST_F(LockManagerTest, SharedLocksCoexist) {
  int a = 0, b = 0;
  simulator_.Spawn(TryAcquire(&manager_, 1, 7, LockMode::kShared, &a));
  simulator_.Spawn(TryAcquire(&manager_, 2, 7, LockMode::kShared, &b));
  simulator_.Run();
  EXPECT_EQ(a, 1);
  EXPECT_EQ(b, 1);
  EXPECT_TRUE(manager_.Holds(1, 7, LockMode::kShared));
  EXPECT_TRUE(manager_.Holds(2, 7, LockMode::kShared));
}

TEST_F(LockManagerTest, ExclusiveConflictsOlderWaits) {
  int young = 0, old_result = 0;
  // Txn 5 (younger id=5? larger id = younger) takes X first.
  simulator_.Spawn(TryAcquire(&manager_, 5, 7, LockMode::kExclusive, &young));
  simulator_.Run();
  ASSERT_EQ(young, 1);
  // Older txn 2 requests X: allowed to wait.
  simulator_.Spawn(TryAcquire(&manager_, 2, 7, LockMode::kExclusive,
                              &old_result));
  simulator_.Run();
  EXPECT_EQ(old_result, 0);  // still waiting
  manager_.ReleaseAll(5);
  simulator_.Run();
  EXPECT_EQ(old_result, 1);
  EXPECT_TRUE(manager_.Holds(2, 7, LockMode::kExclusive));
}

TEST_F(LockManagerTest, YoungerRequesterDies) {
  int old_result = 0, young = 0;
  simulator_.Spawn(TryAcquire(&manager_, 2, 7, LockMode::kExclusive,
                              &old_result));
  simulator_.Run();
  ASSERT_EQ(old_result, 1);
  simulator_.Spawn(TryAcquire(&manager_, 9, 7, LockMode::kShared, &young));
  simulator_.Run();
  EXPECT_EQ(young, -1);
  EXPECT_EQ(manager_.stats().deaths, 1u);
}

TEST_F(LockManagerTest, ReentrantAndUpgrade) {
  int r = 0;
  simulator_.Spawn(TryAcquire(&manager_, 3, 1, LockMode::kShared, &r));
  simulator_.Run();
  ASSERT_EQ(r, 1);
  // Re-request S: instant. X while holding X later: instant.
  int r2 = 0;
  simulator_.Spawn(TryAcquire(&manager_, 3, 1, LockMode::kShared, &r2));
  simulator_.Run();
  EXPECT_EQ(r2, 1);
  // Sole-holder upgrade S -> X.
  int r3 = 0;
  simulator_.Spawn(TryAcquire(&manager_, 3, 1, LockMode::kExclusive, &r3));
  simulator_.Run();
  EXPECT_EQ(r3, 1);
  EXPECT_TRUE(manager_.Holds(3, 1, LockMode::kExclusive));
  EXPECT_EQ(manager_.stats().upgrades, 1u);
  // X is strong enough for a subsequent S request.
  int r4 = 0;
  simulator_.Spawn(TryAcquire(&manager_, 3, 1, LockMode::kShared, &r4));
  simulator_.Run();
  EXPECT_EQ(r4, 1);
}

TEST_F(LockManagerTest, UpgradeWithOtherHoldersDies) {
  int a = 0, b = 0, up = 0;
  simulator_.Spawn(TryAcquire(&manager_, 1, 1, LockMode::kShared, &a));
  simulator_.Spawn(TryAcquire(&manager_, 2, 1, LockMode::kShared, &b));
  simulator_.Run();
  simulator_.Spawn(TryAcquire(&manager_, 1, 1, LockMode::kExclusive, &up));
  simulator_.Run();
  EXPECT_EQ(up, -1);
}

TEST_F(LockManagerTest, FifoNoOvertaking) {
  // Holder: young txn 9 with S. Txn 2 queues X. Then txn 1 (older than
  // everyone) asks S: compatible with the holder, but must not overtake
  // the queued X.
  int holder = 0, x_wait = 0, s_wait = 0;
  simulator_.Spawn(TryAcquire(&manager_, 9, 4, LockMode::kShared, &holder));
  simulator_.Run();
  simulator_.Spawn(TryAcquire(&manager_, 2, 4, LockMode::kExclusive,
                              &x_wait));
  simulator_.Run();
  EXPECT_EQ(x_wait, 0);
  simulator_.Spawn(TryAcquire(&manager_, 1, 4, LockMode::kShared, &s_wait));
  simulator_.Run();
  EXPECT_EQ(s_wait, 0);  // waits behind the X even though S-compatible
  manager_.ReleaseAll(9);
  simulator_.Run();
  EXPECT_EQ(x_wait, 1);
  EXPECT_EQ(s_wait, 0);  // X granted first, S still queued
  manager_.ReleaseAll(2);
  simulator_.Run();
  EXPECT_EQ(s_wait, 1);
}

TEST_F(LockManagerTest, YoungerThanQueuedWaiterDies) {
  // The conservative wait-die also tests against queued waiters: txn 3 is
  // younger than queued txn 1, so it dies rather than wait behind it.
  int holder = 0, w1 = 0, w3 = 0;
  simulator_.Spawn(TryAcquire(&manager_, 9, 4, LockMode::kExclusive,
                              &holder));
  simulator_.Run();
  simulator_.Spawn(TryAcquire(&manager_, 1, 4, LockMode::kShared, &w1));
  simulator_.Run();
  EXPECT_EQ(w1, 0);
  simulator_.Spawn(TryAcquire(&manager_, 3, 4, LockMode::kShared, &w3));
  simulator_.Run();
  EXPECT_EQ(w3, -1);
}

TEST_F(LockManagerTest, ReleasePromotesMultipleSharedWaiters) {
  int x_holder = 0, s1 = 0, s2 = 0;
  simulator_.Spawn(TryAcquire(&manager_, 9, 4, LockMode::kExclusive,
                              &x_holder));
  simulator_.Run();
  simulator_.Spawn(TryAcquire(&manager_, 2, 4, LockMode::kShared, &s1));
  simulator_.Run();
  simulator_.Spawn(TryAcquire(&manager_, 2, 5, LockMode::kShared, &s2));
  simulator_.Run();  // unrelated page: granted straight away
  EXPECT_EQ(s2, 1);
  // A second shared waiter, older than everything queued.
  int s3 = 0;
  simulator_.Spawn(TryAcquire(&manager_, 1, 4, LockMode::kShared, &s3));
  simulator_.Run();
  EXPECT_EQ(s1, 0);
  EXPECT_EQ(s3, 0);
  manager_.ReleaseAll(9);
  simulator_.Run();
  // Both shared waiters granted together.
  EXPECT_EQ(s1, 1);
  EXPECT_EQ(s3, 1);
}

TEST_F(LockManagerTest, TableCleansUpWhenIdle) {
  int r = 0;
  simulator_.Spawn(TryAcquire(&manager_, 1, 11, LockMode::kExclusive, &r));
  simulator_.Run();
  EXPECT_EQ(manager_.locked_pages(), 1u);
  manager_.ReleaseAll(1);
  simulator_.Run();
  EXPECT_EQ(manager_.locked_pages(), 0u);
  EXPECT_FALSE(manager_.Holds(1, 11, LockMode::kShared));
}

TEST_F(LockManagerTest, WaitDieIsDeadlockFreeUnderContention) {
  // Many transactions locking overlapping page pairs in opposite orders:
  // with wait-die nothing can hang; every Acquire either grants or dies,
  // and the simulation must drain.
  struct Outcome {
    int first = 0;
    int second = 0;
  };
  std::vector<Outcome> outcomes(40);
  auto txn_process = [this](TxnId txn, PageId a, PageId b,
                            Outcome* outcome) -> sim::Task<void> {
    const bool got_a = co_await manager_.Acquire(txn, a, LockMode::kExclusive);
    outcome->first = got_a ? 1 : -1;
    if (!got_a) {
      manager_.ReleaseAll(txn);
      co_return;
    }
    co_await simulator_.Delay(1.0);
    const bool got_b = co_await manager_.Acquire(txn, b, LockMode::kExclusive);
    outcome->second = got_b ? 1 : -1;
    manager_.ReleaseAll(txn);
  };
  for (TxnId t = 0; t < 40; ++t) {
    const PageId first = t % 2 == 0 ? 100 : 101;
    const PageId second = t % 2 == 0 ? 101 : 100;
    simulator_.Spawn(txn_process(t + 1, first, second, &outcomes[t]));
  }
  simulator_.Run();  // must terminate (no deadlock)
  for (const Outcome& outcome : outcomes) {
    EXPECT_NE(outcome.first, 0);  // every first acquire resolved
  }
  EXPECT_EQ(manager_.locked_pages(), 0u);
}

}  // namespace
}  // namespace memgoal::txn
