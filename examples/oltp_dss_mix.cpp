// The motivating scenario from the paper's introduction: short OLTP
// transactions sharing a network of workstations with complex
// decision-support (DSS) queries. Without load control the resource-hungry
// DSS queries crowd the OLTP working set out of the buffers; with the
// goal-oriented partitioning the OLTP class gets exactly the dedicated
// buffer it needs to hold its response-time SLA, while the DSS class keeps
// the rest.
//
// The example runs the same workload twice — unmanaged, then managed — and
// compares the OLTP response times.
//
// Usage: oltp_dss_mix [key=value ...]   (intervals=40 goal_ms=... seed=1)

#include <cstdio>
#include <memory>

#include "baseline/static_controllers.h"
#include "common/config.h"
#include "common/stats.h"
#include "core/goal_controller.h"
#include "core/system.h"

namespace {

using memgoal::ClassId;
using memgoal::kNoGoalClass;

constexpr ClassId kOltp = 1;

memgoal::core::SystemConfig MakeConfig(uint64_t seed) {
  memgoal::core::SystemConfig config;
  config.num_nodes = 3;
  config.cache_bytes_per_node = 2ull << 20;
  config.db_pages = 2400;
  config.disk.avg_seek_ms = 4.0;
  config.disk.rotation_ms = 6.0;
  config.disk.transfer_mb_per_s = 20.0;
  config.seed = seed;
  return config;
}

void AddWorkload(memgoal::core::ClusterSystem& system, double goal_ms) {
  // OLTP: short transactions (2 page accesses), brisk arrival rate, a
  // 1000-page working set with a hot head (Zipf 0.6).
  memgoal::workload::ClassSpec oltp;
  oltp.id = kOltp;
  oltp.goal_rt_ms = goal_ms;
  oltp.accesses_per_op = 2;
  oltp.mean_interarrival_ms = 30.0;
  oltp.pages = {0, 1000};
  oltp.zipf_skew = 0.6;
  system.AddClass(oltp);

  // DSS: long queries (24 page accesses each) sweeping a 1400-page range
  // almost uniformly, arriving in the background without a goal.
  memgoal::workload::ClassSpec dss;
  dss.id = kNoGoalClass;
  dss.accesses_per_op = 24;
  dss.mean_interarrival_ms = 400.0;
  dss.pages = {1000, 2400};
  dss.zipf_skew = 0.1;
  system.AddClass(dss);
}

struct RunResult {
  double oltp_rt_ms = 0.0;
  double dss_rt_ms = 0.0;
  double satisfied_frac = 0.0;
  uint64_t dedicated_bytes = 0;
};

RunResult Run(bool managed, int intervals, double goal_ms, uint64_t seed) {
  memgoal::core::ClusterSystem system(MakeConfig(seed));
  AddWorkload(system, goal_ms);
  if (!managed) {
    system.SetController(
        std::make_unique<memgoal::baseline::NoPartitioningController>());
  }
  system.Start();
  system.RunIntervals(intervals);

  RunResult result;
  memgoal::common::RunningStats oltp_rt, dss_rt;
  int satisfied = 0, counted = 0;
  const auto& records = system.metrics().records();
  for (size_t i = records.size() / 2; i < records.size(); ++i) {
    const auto& oltp_row = records[i].ForClass(kOltp);
    oltp_rt.Add(oltp_row.observed_rt_ms);
    dss_rt.Add(records[i].ForClass(kNoGoalClass).observed_rt_ms);
    // Judge both runs against the *real* goal (the unmanaged run carries an
    // inert goal internally), with a flat 10% band.
    satisfied += oltp_row.observed_rt_ms <= goal_ms * 1.10 ? 1 : 0;
    ++counted;
  }
  result.oltp_rt_ms = oltp_rt.mean();
  result.dss_rt_ms = dss_rt.mean();
  result.satisfied_frac =
      counted > 0 ? static_cast<double>(satisfied) / counted : 0.0;
  result.dedicated_bytes = system.TotalDedicatedBytes(kOltp);
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  memgoal::common::Config args;
  if (!args.ParseArgs(argc, argv)) {
    std::fprintf(stderr, "%s\n", args.error().c_str());
    return 1;
  }
  const int intervals = static_cast<int>(args.GetInt("intervals", 40));
  const auto seed = static_cast<uint64_t>(args.GetInt("seed", 1));

  // First measure the unmanaged OLTP response time, then demand a goal 40%
  // below it — the managed run has to carve out a dedicated buffer to hold
  // it. The unmanaged run is repeated with the derived goal only so its
  // satisfaction column is judged against the same bar (the inert
  // controller ignores goals, so the dynamics are identical).
  const RunResult baseline = Run(false, intervals, /*goal_ms=*/1e9, seed);
  const double goal_ms = args.GetDouble("goal_ms", 0.6 * baseline.oltp_rt_ms);
  const RunResult unmanaged = Run(false, intervals, goal_ms, seed);
  const RunResult managed = Run(true, intervals, goal_ms, seed);

  std::printf("OLTP goal: %.3f ms\n\n", goal_ms);
  std::printf("%-22s %12s %12s\n", "", "unmanaged", "goal-managed");
  std::printf("%-22s %12.3f %12.3f\n", "OLTP response (ms)",
              unmanaged.oltp_rt_ms, managed.oltp_rt_ms);
  std::printf("%-22s %12.3f %12.3f\n", "DSS response (ms)",
              unmanaged.dss_rt_ms, managed.dss_rt_ms);
  std::printf("%-22s %12.2f %12.2f\n", "OLTP goal satisfied",
              unmanaged.satisfied_frac, managed.satisfied_frac);
  std::printf("%-22s %12llu %12llu\n", "OLTP dedicated (KB)",
              static_cast<unsigned long long>(unmanaged.dedicated_bytes / 1024),
              static_cast<unsigned long long>(managed.dedicated_bytes / 1024));

  if (managed.oltp_rt_ms <= goal_ms * 1.15) {
    std::printf("\nOLTP goal held; DSS absorbed the buffer loss.\n");
  } else {
    std::printf("\nOLTP goal missed; inspect parameters.\n");
  }
  return 0;
}
