// Read-write workload on the goal-managed NOW: the §3 update story in
// action. A stream of update transactions (strict 2PL with wait-die, WAL
// group commit, 2PC for remotely-homed pages, commit-time invalidation)
// runs against the goal class's pages while the goal-oriented partitioning
// defends the read workload's response-time goal.
//
// Usage: update_workload [key=value ...]
//   (intervals=30 goal_ms=6 txn_interarrival_ms=150 writes=1 reads=3)

#include <cstdio>

#include "common/config.h"
#include "core/goal_controller.h"
#include "core/system.h"
#include "net/network.h"
#include "txn/transaction.h"
#include "txn/update_source.h"

namespace {

using memgoal::ClassId;
using memgoal::kNoGoalClass;

}  // namespace

int main(int argc, char** argv) {
  memgoal::common::Config args;
  if (!args.ParseArgs(argc, argv)) {
    std::fprintf(stderr, "%s\n", args.error().c_str());
    return 1;
  }

  memgoal::core::SystemConfig config;
  config.num_nodes = 3;
  config.cache_bytes_per_node = 2ull << 20;
  config.db_pages = 2000;
  config.disk.avg_seek_ms = 4.0;
  config.disk.rotation_ms = 6.0;
  config.disk.transfer_mb_per_s = 20.0;
  config.seed = static_cast<uint64_t>(args.GetInt("seed", 1));

  memgoal::core::ClusterSystem system(config);

  memgoal::workload::ClassSpec goal_class;
  goal_class.id = 1;
  goal_class.goal_rt_ms = args.GetDouble("goal_ms", 6.0);
  goal_class.accesses_per_op = 4;
  goal_class.mean_interarrival_ms = 40.0;
  goal_class.pages = {0, 1000};
  system.AddClass(goal_class);

  memgoal::workload::ClassSpec background;
  background.id = kNoGoalClass;
  background.accesses_per_op = 4;
  background.mean_interarrival_ms = 40.0;
  background.pages = {1000, 2000};
  system.AddClass(background);

  memgoal::txn::TransactionManager manager(&system);
  memgoal::txn::UpdateSource::Params params;
  params.klass = 1;
  params.mean_interarrival_ms = args.GetDouble("txn_interarrival_ms", 150.0);
  params.reads_per_txn = static_cast<int>(args.GetInt("reads", 3));
  params.writes_per_txn = static_cast<int>(args.GetInt("writes", 1));
  memgoal::txn::UpdateSource updates(&system, &manager, params);

  system.Start();
  updates.Start();
  system.RunIntervals(static_cast<int>(args.GetInt("intervals", 30)));

  const auto& records = system.metrics().records();
  double rt_sum = 0.0;
  int satisfied = 0, counted = 0;
  for (size_t i = records.size() / 2; i < records.size(); ++i) {
    const auto& m = records[i].ForClass(1);
    rt_sum += m.observed_rt_ms;
    satisfied += m.satisfied ? 1 : 0;
    ++counted;
  }

  const auto& txn_stats = manager.stats();
  std::printf("read workload:  goal=%.2f ms, observed=%.3f ms, satisfied "
              "%.0f%% of intervals, dedicated=%llu KB\n",
              goal_class.goal_rt_ms.value(), rt_sum / counted,
              100.0 * satisfied / counted,
              static_cast<unsigned long long>(
                  system.TotalDedicatedBytes(1) / 1024));
  std::printf("update stream:  committed=%llu (latency %.3f ms mean), "
              "failed=%llu\n",
              static_cast<unsigned long long>(updates.committed()),
              updates.commit_latency_ms().mean(),
              static_cast<unsigned long long>(updates.failed()));
  std::printf("  wait-die deaths=%llu, 2PC commits=%llu, invalidated "
              "copies=%llu\n",
              static_cast<unsigned long long>(txn_stats.deaths),
              static_cast<unsigned long long>(txn_stats.two_phase_commits),
              static_cast<unsigned long long>(txn_stats.pages_invalidated));
  std::printf("  lock grants=%llu waits=%llu, WAL forces (node0)=%llu\n",
              static_cast<unsigned long long>(
                  manager.lock_manager().stats().grants),
              static_cast<unsigned long long>(
                  manager.lock_manager().stats().waits),
              static_cast<unsigned long long>(manager.wal(0).forces()));
  return 0;
}
