// A larger network of workstations: 6 nodes, two goal classes with
// different SLAs plus the no-goal background class. Demonstrates that the
// distributed implementation (one coordinator per class, spread over the
// nodes; agents everywhere) handles N > 3 and several concurrent
// feedback loops, and reports the protocol overhead at this scale.
//
// Usage: now_scaling [key=value ...]   (nodes=6 intervals=40 seed=1)

#include <cstdio>

#include "common/config.h"
#include "common/stats.h"
#include "core/goal_controller.h"
#include "core/system.h"
#include "net/network.h"

namespace {

using memgoal::ClassId;
using memgoal::kNoGoalClass;
using memgoal::NodeId;

}  // namespace

int main(int argc, char** argv) {
  memgoal::common::Config args;
  if (!args.ParseArgs(argc, argv)) {
    std::fprintf(stderr, "%s\n", args.error().c_str());
    return 1;
  }
  const auto nodes = static_cast<uint32_t>(args.GetInt("nodes", 6));
  const int intervals = static_cast<int>(args.GetInt("intervals", 40));

  memgoal::core::SystemConfig config;
  config.num_nodes = nodes;
  config.cache_bytes_per_node = 2ull << 20;
  config.db_pages = 3000;
  config.disk.avg_seek_ms = 4.0;
  config.disk.rotation_ms = 6.0;
  config.disk.transfer_mb_per_s = 20.0;
  config.seed = static_cast<uint64_t>(args.GetInt("seed", 1));

  memgoal::core::ClusterSystem system(config);

  memgoal::workload::ClassSpec k1;  // interactive: tight goal
  k1.id = 1;
  k1.goal_rt_ms = args.GetDouble("goal1_ms", 3.0);
  k1.accesses_per_op = 4;
  k1.mean_interarrival_ms = 40.0;
  k1.pages = {0, 1000};
  k1.zipf_skew = 0.3;
  system.AddClass(k1);

  memgoal::workload::ClassSpec k2;  // reporting: looser goal
  k2.id = 2;
  k2.goal_rt_ms = args.GetDouble("goal2_ms", 10.0);
  k2.accesses_per_op = 8;
  k2.mean_interarrival_ms = 80.0;
  k2.pages = {1000, 2000};
  system.AddClass(k2);

  memgoal::workload::ClassSpec background;
  background.id = kNoGoalClass;
  background.accesses_per_op = 4;
  background.mean_interarrival_ms = 40.0;
  background.pages = {2000, 3000};
  system.AddClass(background);

  system.Start();
  system.RunIntervals(intervals);

  const auto& controller =
      dynamic_cast<memgoal::core::GoalOrientedController&>(
          system.controller());
  std::printf("nodes=%u, coordinators: class1@node%u class2@node%u\n\n",
              nodes, controller.coordinator_node(1),
              controller.coordinator_node(2));

  std::printf("%-8s %10s %8s %12s %10s\n", "class", "rt_ms", "goal",
              "dedicated_KB", "satisfied");
  const auto& records = system.metrics().records();
  for (ClassId klass : {ClassId{1}, ClassId{2}, kNoGoalClass}) {
    memgoal::common::RunningStats rt;
    int satisfied = 0, counted = 0;
    for (size_t i = records.size() / 2; i < records.size(); ++i) {
      const auto& m = records[i].ForClass(klass);
      rt.Add(m.observed_rt_ms);
      satisfied += m.satisfied ? 1 : 0;
      ++counted;
    }
    std::printf("%-8u %10.3f %8.2f %12llu %9.2f\n", klass, rt.mean(),
                klass == kNoGoalClass
                    ? 0.0
                    : system.spec(klass).goal_rt_ms.value_or(0.0),
                static_cast<unsigned long long>(
                    system.TotalDedicatedBytes(klass) / 1024),
                counted > 0 ? static_cast<double>(satisfied) / counted : 0.0);
  }

  // Per-node dedicated layout: the LP places memory where it pays off.
  std::printf("\nper-node dedicated KB (class1/class2):\n");
  for (NodeId i = 0; i < nodes; ++i) {
    std::printf("  node%u: %llu / %llu\n", i,
                static_cast<unsigned long long>(
                    system.DedicatedBytes(1, i) / 1024),
                static_cast<unsigned long long>(
                    system.DedicatedBytes(2, i) / 1024));
  }

  const auto& network = system.network();
  std::printf("\npartitioning-protocol traffic: %.4f%% of %.1f MB total\n",
              100.0 *
                  static_cast<double>(network.bytes_sent(
                      memgoal::net::TrafficClass::kPartitionProtocol)) /
                  static_cast<double>(network.total_bytes_sent()),
              static_cast<double>(network.total_bytes_sent()) / 1e6);
  return 0;
}
