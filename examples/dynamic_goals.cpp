// Demonstrates the *dynamic* half of the paper's claims (§1: "copes with
// evolving workload characteristics and also allows dynamic adjustments of
// the class-specific response time goals"). One run, three regime changes:
//
//   phase 1 (intervals  0-19): moderate goal;
//   phase 2 (intervals 20-39): the goal tightens sharply (SLA upgrade);
//   phase 3 (intervals 40-59): the background class doubles its arrival
//                              rate (workload surge) — the partitioning
//                              must re-defend the unchanged goal;
//   phase 4 (intervals 60-79): the goal relaxes; memory flows back to the
//                              no-goal class.
//
// Usage: dynamic_goals [key=value ...]   (seed=1)

#include <cstdio>

#include "common/config.h"
#include "core/system.h"

namespace {

using memgoal::ClassId;
using memgoal::kNoGoalClass;

}  // namespace

int main(int argc, char** argv) {
  memgoal::common::Config args;
  if (!args.ParseArgs(argc, argv)) {
    std::fprintf(stderr, "%s\n", args.error().c_str());
    return 1;
  }

  memgoal::core::SystemConfig config;
  config.num_nodes = 3;
  config.cache_bytes_per_node = 2ull << 20;
  config.db_pages = 2000;
  config.disk.avg_seek_ms = 4.0;
  config.disk.rotation_ms = 6.0;
  config.disk.transfer_mb_per_s = 20.0;
  config.seed = static_cast<uint64_t>(args.GetInt("seed", 1));

  memgoal::core::ClusterSystem system(config);

  memgoal::workload::ClassSpec goal_class;
  goal_class.id = 1;
  goal_class.goal_rt_ms = 7.0;  // phase-1 goal
  goal_class.accesses_per_op = 4;
  goal_class.mean_interarrival_ms = 40.0;
  goal_class.pages = {0, 1000};
  system.AddClass(goal_class);

  memgoal::workload::ClassSpec background;
  background.id = kNoGoalClass;
  background.accesses_per_op = 4;
  background.mean_interarrival_ms = 40.0;
  background.pages = {1000, 2000};
  system.AddClass(background);

  std::printf(
      "interval  phase                     rt_goal   goal  dedicated_KB  "
      "satisfied  rt_background\n");
  const char* phase = "1: moderate goal";
  system.SetIntervalCallback(
      [&](const memgoal::core::IntervalRecord& record) {
        const auto& m = record.ForClass(1);
        const auto& bg = record.ForClass(kNoGoalClass);
        std::printf("%8d  %-24s %8.3f  %5.2f  %12llu  %9s  %13.3f\n",
                    record.index, phase, m.observed_rt_ms, m.goal_rt_ms,
                    static_cast<unsigned long long>(m.dedicated_bytes / 1024),
                    m.satisfied ? "yes" : "no", bg.observed_rt_ms);
        switch (record.index) {
          case 19:
            phase = "2: goal tightened";
            system.SetGoal(1, 3.0);
            break;
          case 39:
            phase = "3: background surge";
            system.SetInterarrival(kNoGoalClass, 28.0);
            break;
          case 59:
            phase = "4: goal relaxed";
            system.SetGoal(1, 12.0);
            system.SetInterarrival(kNoGoalClass, 40.0);
            break;
          default:
            break;
        }
      });
  system.Start();
  system.RunIntervals(80);

  // Summarize how each phase ended (mean of its last 5 intervals).
  const auto& records = system.metrics().records();
  auto tail_mean = [&](int from, int to) {
    double rt = 0.0, dedicated = 0.0;
    int n = 0;
    for (int i = to - 5; i < to; ++i) {
      rt += records[static_cast<size_t>(i)].ForClass(1).observed_rt_ms;
      dedicated += static_cast<double>(
          records[static_cast<size_t>(i)].ForClass(1).dedicated_bytes);
      ++n;
    }
    std::printf("  intervals %2d-%2d: rt=%7.3f ms, dedicated=%6.0f KB\n",
                from, to - 1, rt / n, dedicated / n / 1024.0);
  };
  std::printf("\nPhase endings:\n");
  tail_mean(0, 20);
  tail_mean(20, 40);
  tail_mean(40, 60);
  tail_mean(60, 80);
  return 0;
}
