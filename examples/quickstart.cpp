// Quickstart: a 3-node network of workstations, one goal class and the
// no-goal background class, managed by the paper's goal-oriented buffer
// partitioning. Prints one line per observation interval showing how the
// feedback loop moves the dedicated buffer until the response-time goal is
// met.
//
// Usage: quickstart [key=value ...]
//   e.g. quickstart goal_ms=2.0 intervals=40 skew=0.5 seed=7 log=debug

#include <cstdio>

#include "baseline/static_controllers.h"
#include "common/config.h"
#include "common/logging.h"
#include "core/goal_controller.h"
#include "core/system.h"

using memgoal::ClassId;
using memgoal::kNoGoalClass;

int main(int argc, char** argv) {
  memgoal::common::Config args;
  if (!args.ParseArgs(argc, argv)) {
    std::fprintf(stderr, "%s\n", args.error().c_str());
    return 1;
  }
  memgoal::common::Logger::SetLevel(memgoal::common::Logger::ParseLevel(
      args.GetString("log", "warn")));

  memgoal::core::SystemConfig config;
  config.num_nodes = static_cast<uint32_t>(args.GetInt("nodes", 3));
  config.cache_bytes_per_node =
      static_cast<uint64_t>(args.GetInt("cache_bytes", 64 * 4096));
  config.db_pages = static_cast<uint32_t>(args.GetInt("db_pages", 240));
  config.observation_interval_ms = args.GetDouble("interval_ms", 1000.0);
  config.seed = static_cast<uint64_t>(args.GetInt("seed", 1));
  config.disk.avg_seek_ms = args.GetDouble("disk_seek_ms", 8.0);
  config.disk.rotation_ms = args.GetDouble("disk_rotation_ms", 8.33);
  config.disk.transfer_mb_per_s = args.GetDouble("disk_transfer", 10.0);

  memgoal::core::ClusterSystem system(config);

  memgoal::workload::ClassSpec goal_class;
  goal_class.id = 1;
  goal_class.goal_rt_ms = args.GetDouble("goal_ms", 2.0);
  goal_class.accesses_per_op = static_cast<int>(args.GetInt("accesses", 4));
  goal_class.mean_interarrival_ms = args.GetDouble("interarrival_ms", 25.0);
  goal_class.pages = {0, static_cast<memgoal::PageId>(args.GetInt(
                             "goal_pages", config.db_pages / 2))};
  goal_class.zipf_skew = args.GetDouble("skew", 0.0);
  system.AddClass(goal_class);

  memgoal::workload::ClassSpec nogoal_class;
  nogoal_class.id = kNoGoalClass;
  nogoal_class.accesses_per_op =
      static_cast<int>(args.GetInt("ng_accesses", goal_class.accesses_per_op));
  nogoal_class.mean_interarrival_ms =
      args.GetDouble("ng_interarrival_ms", goal_class.mean_interarrival_ms);
  const auto ng_pages = static_cast<memgoal::PageId>(args.GetInt(
      "ng_pages", config.db_pages - goal_class.pages.end));
  nogoal_class.pages = {goal_class.pages.end,
                        goal_class.pages.end + ng_pages};
  nogoal_class.zipf_skew = args.GetDouble("ng_skew", goal_class.zipf_skew);
  system.AddClass(nogoal_class);

  // controller=goal (default) runs the paper's algorithm; controller=static
  // freezes a fixed share (static_fraction) of every node's cache for the
  // goal class, which is handy for calibration sweeps.
  const std::string controller = args.GetString("controller", "goal");
  if (controller == "static") {
    system.SetController(
        std::make_unique<memgoal::baseline::StaticPartitioningController>(
            std::map<ClassId, double>{
                {1, args.GetDouble("static_fraction", 0.5)}}));
  } else if (controller == "none") {
    system.SetController(
        std::make_unique<memgoal::baseline::NoPartitioningController>());
  }

  std::printf(
      "interval  rt_goal_class  goal  tolerance  dedicated_KB  satisfied  "
      "rt_nogoal\n");
  system.SetIntervalCallback([](const memgoal::core::IntervalRecord& record) {
    const auto& goal_row = record.ForClass(1);
    const auto& nogoal_row = record.ForClass(kNoGoalClass);
    std::printf("%8d  %13.3f  %4.2f  %9.3f  %12llu  %9s  %9.3f\n",
                record.index, goal_row.observed_rt_ms, goal_row.goal_rt_ms,
                goal_row.tolerance_ms,
                static_cast<unsigned long long>(goal_row.dedicated_bytes /
                                                1024),
                goal_row.satisfied ? "yes" : "no",
                nogoal_row.observed_rt_ms);
  });

  system.Start();
  system.RunIntervals(static_cast<int>(args.GetInt("intervals", 30)));

  if (auto* goal_controller =
          dynamic_cast<memgoal::core::GoalOrientedController*>(
              &system.controller())) {
    const auto& stats = goal_controller->stats();
    std::printf(
        "\nchecks=%llu violations=%llu warmups=%llu lp=%llu best_effort=%llu "
        "reports=%llu alloc_cmds=%llu\n",
        static_cast<unsigned long long>(stats.checks),
        static_cast<unsigned long long>(stats.violations),
        static_cast<unsigned long long>(stats.warmup_steps),
        static_cast<unsigned long long>(stats.lp_optimizations),
        static_cast<unsigned long long>(stats.best_effort_allocations),
        static_cast<unsigned long long>(stats.reports_sent),
        static_cast<unsigned long long>(stats.allocation_commands));
  }
  for (ClassId klass : {ClassId{1}, kNoGoalClass}) {
    const auto& counters = system.counters(klass);
    std::printf(
        "class %u levels: local=%.3f remote=%.3f ldisk=%.3f rdisk=%.3f\n",
        klass,
        counters.HitFraction(memgoal::StorageLevel::kLocalBuffer),
        counters.HitFraction(memgoal::StorageLevel::kRemoteBuffer),
        counters.HitFraction(memgoal::StorageLevel::kLocalDisk),
        counters.HitFraction(memgoal::StorageLevel::kRemoteDisk));
  }

  for (const std::string& key : args.UnusedKeys()) {
    std::fprintf(stderr, "warning: unused argument %s\n", key.c_str());
  }
  return 0;
}
