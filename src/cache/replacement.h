#ifndef MEMGOAL_CACHE_REPLACEMENT_H_
#define MEMGOAL_CACHE_REPLACEMENT_H_

#include <functional>
#include <memory>
#include <optional>

#include "storage/types.h"

namespace memgoal::cache {

/// Victim-selection strategy of a single buffer pool.
///
/// The pool tells the policy about structural events (insert/access/erase);
/// the policy answers ChooseVictim() without removing the page — the pool
/// erases it explicitly, keeping the two bookkeeping layers in lock-step.
class ReplacementPolicy {
 public:
  virtual ~ReplacementPolicy() = default;

  /// `page` became resident. Called at most once until the matching
  /// OnErase.
  virtual void OnInsert(PageId page) = 0;

  /// A hit on the resident `page`.
  virtual void OnAccess(PageId page) = 0;

  /// `page` left the pool (eviction or external resize/drop).
  virtual void OnErase(PageId page) = 0;

  /// The page the policy would evict next; nullopt if the pool is empty.
  virtual std::optional<PageId> ChooseVictim() = 0;

  virtual const char* name() const = 0;
};

/// Replacement policy families available in the simulator.
enum class PolicyKind {
  kFifo,
  kLru,
  kLruK,
  kCostBased,
};

const char* PolicyKindName(PolicyKind kind);

/// FIFO: evicts in insertion order, ignoring hits. Included mainly because
/// the paper cites Belady's FIFO anomaly as the caveat to its monotonicity
/// assumption (§3).
std::unique_ptr<ReplacementPolicy> MakeFifoPolicy();

/// Classic LRU.
std::unique_ptr<ReplacementPolicy> MakeLruPolicy();

}  // namespace memgoal::cache

#endif  // MEMGOAL_CACHE_REPLACEMENT_H_
