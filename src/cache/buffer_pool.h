#ifndef MEMGOAL_CACHE_BUFFER_POOL_H_
#define MEMGOAL_CACHE_BUFFER_POOL_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "cache/replacement.h"
#include "common/flat_hash_map.h"
#include "common/inline_vector.h"
#include "storage/types.h"

namespace memgoal::cache {

/// Pages displaced by a single access/insert. Nearly always 0 or 1 entries
/// (one frame freed per insert), so they live inline; bulk operations
/// (resize, crash clear) use plain vectors instead.
using EvictedList = common::InlineVector<PageId, 2>;

/// One buffer pool: a byte budget, a set of resident pages, and a
/// replacement policy. Pools are resizable at run time — the allocation
/// phase of the feedback loop (§5e) shrinks and grows the per-class
/// dedicated pools — and shrinking evicts immediately.
///
/// All pages have the same size, so the budget divides into frames; a
/// capacity below one page size means the pool cannot hold anything.
class BufferPool {
 public:
  BufferPool(std::string name, uint32_t page_bytes, uint64_t capacity_bytes,
             std::unique_ptr<ReplacementPolicy> policy);

  bool Contains(PageId page) const { return resident_.Contains(page); }

  /// Records a hit on a resident page.
  void Touch(PageId page);

  /// Inserts `page`, evicting victims as needed. Returns the evicted pages.
  /// The insert uses admission control: the replacement policy may decide
  /// the new page itself is the least valuable entry, in which case
  /// `inserted` is false, the page "bounces" (used once, not cached), and
  /// it does not appear in `evicted`. A zero-frame pool also reports
  /// `inserted == false`. `page` must not be resident.
  struct InsertResult {
    bool inserted = false;
    EvictedList evicted;
  };
  InsertResult Insert(PageId page);

  /// Removes a resident page (promotion to another pool, external drop).
  void Erase(PageId page);

  /// Changes the byte budget; evicts down to the new frame count when
  /// shrinking. Returns the evicted pages.
  std::vector<PageId> Resize(uint64_t new_capacity_bytes);

  uint64_t capacity_bytes() const { return capacity_bytes_; }
  size_t capacity_frames() const {
    return static_cast<size_t>(capacity_bytes_ / page_bytes_);
  }
  size_t resident_pages() const { return resident_.size(); }
  const std::string& name() const { return name_; }
  ReplacementPolicy* policy() { return policy_.get(); }

 private:
  // Evicts victims until `resident_.size() <= limit`; appends to `out`.
  // Templated so the hot insert path appends to the inline EvictedList
  // while bulk resizes append to a plain vector.
  template <typename Out>
  void EvictDownTo(size_t limit, Out* out);

  std::string name_;
  uint32_t page_bytes_;
  uint64_t capacity_bytes_;
  std::unique_ptr<ReplacementPolicy> policy_;
  common::FlatHashSet<PageId> resident_;
};

}  // namespace memgoal::cache

#endif  // MEMGOAL_CACHE_BUFFER_POOL_H_
