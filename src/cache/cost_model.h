#ifndef MEMGOAL_CACHE_COST_MODEL_H_
#define MEMGOAL_CACHE_COST_MODEL_H_

namespace memgoal::cache {

/// Estimated access costs (ms) for the storage-hierarchy levels of the NOW,
/// as consumed by the cost-based replacement policy. In the real system
/// these are learned online by tagging each request with the level it was
/// served from and observing response times (§6); the simulator computes
/// them once from the disk/network parameters, which is what that learning
/// process converges to under stable load.
struct CostModel {
  /// Hit in a local buffer pool.
  double local_buffer_ms = 0.05;
  /// Fetch from a remote node's buffer (control hop + page transfer).
  double remote_buffer_ms = 0.8;
  /// Read from the local disk.
  double local_disk_ms = 12.5;
  /// Read from a remote node's disk (control hop + disk + page transfer).
  double remote_disk_ms = 13.3;
};

/// Benefit of keeping one cached copy of a page (our reconstruction of the
/// Sinnwell–Weikum cost model; see DESIGN.md):
///
///   benefit = pool_heat * (C_drop - C_keep)                  [egoistic]
///           + last_copy ? foreign_heat *
///                         (C_remote_disk - C_remote_buffer)  [altruistic]
///
/// where C_keep is a local buffer access and C_drop is a remote-buffer
/// access if another cached copy exists, otherwise a disk access (local or
/// remote depending on whether this node is the page's home). `foreign_heat`
/// is the aggregate heat other nodes put on the page (global minus this
/// node's contribution): the altruistic term prices what *they* lose when
/// the last cached copy disappears — their remote-buffer accesses become
/// remote-disk accesses.
double KeepBenefit(const CostModel& costs, double pool_heat,
                   double foreign_heat, bool other_copy_exists,
                   bool home_is_local);

}  // namespace memgoal::cache

#endif  // MEMGOAL_CACHE_COST_MODEL_H_
