#include "cache/node_cache.h"

#include <algorithm>
#include <string>
#include <utility>

#include "common/check.h"

namespace memgoal::cache {

NodeCache::NodeCache(NodeId node, uint64_t total_bytes, uint32_t page_bytes,
                     const PolicyFactory& factory)
    : node_(node), total_bytes_(total_bytes), page_bytes_(page_bytes),
      nogoal_pool_("node" + std::to_string(node) + "/nogoal", page_bytes,
                   total_bytes, factory(kNoGoalClass)),
      factory_(factory) {
  MEMGOAL_CHECK(factory_ != nullptr);
}

void NodeCache::EnsureDedicatedPool(ClassId klass) {
  MEMGOAL_CHECK(klass != kNoGoalClass);
  if (dedicated_.count(klass) > 0) return;
  dedicated_.emplace(
      klass,
      BufferPool("node" + std::to_string(node_) + "/class" +
                     std::to_string(klass),
                 page_bytes_, /*capacity_bytes=*/0, factory_(klass)));
}

BufferPool& NodeCache::PoolFor(ClassId location) {
  if (location == kNoGoalClass) return nogoal_pool_;
  auto it = dedicated_.find(location);
  MEMGOAL_CHECK(it != dedicated_.end());
  return it->second;
}

ClassId NodeCache::LocationOf(PageId page) const {
  const ClassId* location = page_location_.Find(page);
  MEMGOAL_CHECK(location != nullptr);
  return *location;
}

void NodeCache::ApplyInsert(ClassId location, PageId page,
                            BufferPool::InsertResult insert_result,
                            AccessResult* result) {
  for (PageId victim : insert_result.evicted) {
    MEMGOAL_CHECK(page_location_.Erase(victim) == 1);
    result->dropped.push_back(victim);
  }
  if (insert_result.inserted) {
    page_location_[page] = location;
    result->inserted = true;
  }
}

NodeCache::AccessResult NodeCache::OnAccess(ClassId klass, PageId page) {
  AccessResult result;
  const ClassId* location_ptr = page_location_.Find(page);

  auto dedicated_it =
      klass == kNoGoalClass ? dedicated_.end() : dedicated_.find(klass);
  const bool has_dedicated = dedicated_it != dedicated_.end();

  if (location_ptr == nullptr) {
    return result;  // miss: caller fetches, then InsertFetched
  }
  result.hit = true;

  const ClassId location = *location_ptr;
  if (!has_dedicated || location != kNoGoalClass) {
    // No movement: either the accessing class has no dedicated pool, or the
    // page already sits in a dedicated pool (k's own or another class's).
    PoolFor(location).Touch(page);
    return result;
  }

  // Page is in the no-goal pool and class k has a dedicated pool: promote
  // (§6, "acquired from the local no-goal buffer, from which it is
  // removed"). A zero-frame dedicated pool cannot take it; leave in place.
  BufferPool& target = dedicated_it->second;
  if (target.capacity_frames() == 0) {
    nogoal_pool_.Touch(page);
    return result;
  }
  nogoal_pool_.Erase(page);
  page_location_.Erase(page);
  ApplyInsert(klass, page, target.Insert(page), &result);
  // A promotion can bounce under cost-based admission control (the page had
  // the lowest benefit in the dedicated pool); it is then gone from the
  // node entirely, matching §6's drop-completely rule for dedicated-pool
  // victims.
  if (!result.inserted) result.dropped.push_back(page);
  return result;
}

NodeCache::AccessResult NodeCache::InsertFetched(ClassId klass, PageId page) {
  MEMGOAL_CHECK(!page_location_.Contains(page));
  AccessResult result;

  auto dedicated_it =
      klass == kNoGoalClass ? dedicated_.end() : dedicated_.find(klass);
  if (dedicated_it != dedicated_.end() &&
      dedicated_it->second.capacity_frames() > 0) {
    ApplyInsert(klass, page, dedicated_it->second.Insert(page), &result);
  } else {
    ApplyInsert(kNoGoalClass, page, nogoal_pool_.Insert(page), &result);
  }
  return result;
}

bool NodeCache::Drop(PageId page) {
  const ClassId* location = page_location_.Find(page);
  if (location == nullptr) return false;
  PoolFor(*location).Erase(page);
  page_location_.Erase(page);
  return true;
}

bool NodeCache::Quarantine(PageId page) {
  if (!Drop(page)) return false;
  ++quarantined_;
  return true;
}

std::vector<PageId> NodeCache::Clear() {
  std::vector<PageId> dropped;
  dropped.reserve(page_location_.size());
  for (auto it = page_location_.begin(); it != page_location_.end(); ++it) {
    PoolFor(it.value()).Erase(it.key());
    dropped.push_back(it.key());
  }
  page_location_.clear();
  std::sort(dropped.begin(), dropped.end());  // hash-map order is not stable
  for (auto& [klass, pool] : dedicated_) {
    const std::vector<PageId> evicted = pool.Resize(0);
    MEMGOAL_CHECK(evicted.empty());  // pools were emptied above
  }
  total_dedicated_bytes_ = 0;
  nogoal_pool_.Resize(total_bytes_);
  return dropped;
}

uint64_t NodeCache::SetDedicatedBytes(ClassId klass, uint64_t bytes,
                                      std::vector<PageId>* dropped) {
  EnsureDedicatedPool(klass);
  const uint64_t granted = std::min(bytes, AvailableForClass(klass));

  auto collect = [&](std::vector<PageId> evicted) {
    for (PageId victim : evicted) {
      MEMGOAL_CHECK(page_location_.Erase(victim) == 1);
      dropped->push_back(victim);
    }
  };
  BufferPool& pool = dedicated_.at(klass);
  total_dedicated_bytes_ -= pool.capacity_bytes();
  collect(pool.Resize(granted));
  total_dedicated_bytes_ += pool.capacity_bytes();
  // The no-goal pool absorbs whatever is left of the node budget.
  collect(nogoal_pool_.Resize(nogoal_bytes()));
  return granted;
}

uint64_t NodeCache::dedicated_bytes(ClassId klass) const {
  auto it = dedicated_.find(klass);
  return it == dedicated_.end() ? 0 : it->second.capacity_bytes();
}

uint64_t NodeCache::total_dedicated_bytes() const {
  MEMGOAL_DCHECK([&] {
    uint64_t total = 0;
    for (const auto& [klass, pool] : dedicated_) {
      total += pool.capacity_bytes();
    }
    return total == total_dedicated_bytes_;
  }());
  return total_dedicated_bytes_;
}

uint64_t NodeCache::AvailableForClass(ClassId klass) const {
  return total_bytes_ - (total_dedicated_bytes() - dedicated_bytes(klass));
}

}  // namespace memgoal::cache
