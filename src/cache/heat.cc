#include "cache/heat.h"

#include <algorithm>

#include "common/check.h"
#include "obs/profiler.h"

namespace memgoal::cache {

HeatTracker::HeatTracker(int k, double epsilon_ms)
    : k_(k), epsilon_ms_(epsilon_ms) {
  MEMGOAL_CHECK(k >= 1);
  MEMGOAL_CHECK(epsilon_ms > 0.0);
}

void HeatTracker::RecordAccess(PageId page, sim::SimTime now) {
  obs::ProfileScope profile(obs::Phase::kHeatUpdate);
  History& h = history_[page];
  if (h.times.empty()) h.times.assign(static_cast<size_t>(k_), 0.0);
  h.times[static_cast<size_t>(h.next)] = now;
  h.next = (h.next + 1) % k_;
  if (h.count < INT32_MAX) ++h.count;
}

double HeatTracker::HeatOf(PageId page, sim::SimTime now) const {
  auto it = history_.find(page);
  if (it == history_.end()) return 0.0;
  const History& h = it->second;
  const int m = std::min(h.count, k_);
  // With m recorded accesses the oldest retained timestamp sits m slots
  // behind the write cursor.
  const int oldest = ((h.next - m) % k_ + k_) % k_;
  const sim::SimTime t_m = h.times[static_cast<size_t>(oldest)];
  MEMGOAL_DCHECK(now >= t_m);
  return static_cast<double>(m) / (now - t_m + epsilon_ms_);
}

sim::SimTime HeatTracker::BackwardKTime(PageId page) const {
  auto it = history_.find(page);
  if (it == history_.end()) return 0.0;
  const History& h = it->second;
  const int m = std::min(h.count, k_);
  const int oldest = ((h.next - m) % k_ + k_) % k_;
  return h.times[static_cast<size_t>(oldest)];
}

int HeatTracker::AccessCount(PageId page) const {
  auto it = history_.find(page);
  return it == history_.end() ? 0 : it->second.count;
}

size_t HeatTracker::EvictColderThan(
    sim::SimTime horizon, const std::function<bool(PageId)>& retain) {
  obs::ProfileScope profile(obs::Phase::kHeatUpdate);
  size_t evicted = 0;
  for (auto it = history_.begin(); it != history_.end();) {
    const History& h = it->second;
    const int m = std::min(h.count, k_);
    const int oldest = ((h.next - m) % k_ + k_) % k_;
    const sim::SimTime backward_k = h.times[static_cast<size_t>(oldest)];
    if (backward_k < horizon && (!retain || !retain(it->first))) {
      it = history_.erase(it);
      ++evicted;
    } else {
      ++it;
    }
  }
  return evicted;
}

}  // namespace memgoal::cache
