#include "cache/heat.h"

#include <algorithm>
#include <cstdint>

#include "common/check.h"
#include "obs/profiler.h"

namespace memgoal::cache {

HeatTracker::HeatTracker(int k, double epsilon_ms)
    : k_(k), epsilon_ms_(epsilon_ms) {
  MEMGOAL_CHECK(k >= 1);
  MEMGOAL_CHECK(epsilon_ms > 0.0);
}

uint32_t HeatTracker::AllocateSlots() const {
  uint32_t offset;
  if (!free_offsets_.empty()) {
    offset = free_offsets_.back();
    free_offsets_.pop_back();
    std::fill_n(slab_.begin() + offset, k_, 0.0);
  } else {
    offset = static_cast<uint32_t>(slab_.size());
    slab_.resize(slab_.size() + static_cast<size_t>(k_), 0.0);
  }
  return offset;
}

void HeatTracker::FlushPending() const {
  obs::ProfileScope profile(obs::Phase::kHeatUpdate);
  for (const PendingAccess& access : pending_) {
    History* h = history_.Find(access.page);
    if (h == nullptr) {
      h = &history_[access.page];
      h->offset = AllocateSlots();
    }
    slab_[h->offset + static_cast<uint32_t>(h->next)] = access.time;
    h->next = (h->next + 1) % k_;
    if (h->count < INT32_MAX) ++h->count;
  }
  pending_.clear();
}

double HeatTracker::HeatOf(PageId page, sim::SimTime now) const {
  Flush();
  const History* h = history_.Find(page);
  if (h == nullptr) return 0.0;
  const int m = std::min(h->count, static_cast<int32_t>(k_));
  // With m recorded accesses the oldest retained timestamp sits m slots
  // behind the write cursor.
  const int oldest = ((h->next - m) % k_ + k_) % k_;
  const sim::SimTime t_m = slab_[h->offset + static_cast<uint32_t>(oldest)];
  MEMGOAL_DCHECK(now >= t_m);
  return static_cast<double>(m) / (now - t_m + epsilon_ms_);
}

double HeatTracker::RecordAndHeat(PageId page, sim::SimTime now) {
  Flush();
  History* h = history_.Find(page);
  if (h == nullptr) {
    h = &history_[page];
    h->offset = AllocateSlots();
  }
  slab_[h->offset + static_cast<uint32_t>(h->next)] = now;
  h->next = (h->next + 1) % k_;
  if (h->count < INT32_MAX) ++h->count;
  const int m = std::min(h->count, static_cast<int32_t>(k_));
  const int oldest = ((h->next - m) % k_ + k_) % k_;
  const sim::SimTime t_m = slab_[h->offset + static_cast<uint32_t>(oldest)];
  MEMGOAL_DCHECK(now >= t_m);
  return static_cast<double>(m) / (now - t_m + epsilon_ms_);
}

sim::SimTime HeatTracker::BackwardKTime(PageId page) const {
  Flush();
  const History* h = history_.Find(page);
  if (h == nullptr) return 0.0;
  const int m = std::min(h->count, static_cast<int32_t>(k_));
  const int oldest = ((h->next - m) % k_ + k_) % k_;
  return slab_[h->offset + static_cast<uint32_t>(oldest)];
}

int HeatTracker::AccessCount(PageId page) const {
  Flush();
  const History* h = history_.Find(page);
  return h == nullptr ? 0 : h->count;
}

size_t HeatTracker::EvictColderThan(
    sim::SimTime horizon, const std::function<bool(PageId)>& retain) {
  Flush();
  obs::ProfileScope profile(obs::Phase::kHeatUpdate);
  size_t evicted = 0;
  for (auto it = history_.begin(); it != history_.end();) {
    const History& h = it.value();
    const int m = std::min(h.count, static_cast<int32_t>(k_));
    const int oldest = ((h.next - m) % k_ + k_) % k_;
    const sim::SimTime backward_k =
        slab_[h.offset + static_cast<uint32_t>(oldest)];
    if (backward_k < horizon && (!retain || !retain(it.key()))) {
      free_offsets_.push_back(h.offset);
      it = history_.Erase(it);
      ++evicted;
    } else {
      ++it;
    }
  }
  return evicted;
}

}  // namespace memgoal::cache
