#include "cache/cost_model.h"

#include <algorithm>

namespace memgoal::cache {

double KeepBenefit(const CostModel& costs, double pool_heat,
                   double foreign_heat, bool other_copy_exists,
                   bool home_is_local) {
  double drop_cost;
  if (other_copy_exists) {
    drop_cost = costs.remote_buffer_ms;
  } else {
    drop_cost = home_is_local ? costs.local_disk_ms : costs.remote_disk_ms;
  }
  double benefit = pool_heat * (drop_cost - costs.local_buffer_ms);
  if (!other_copy_exists) {
    // This is the last cached copy: dropping it also demotes every other
    // node's access from remote buffer to remote disk.
    benefit += std::max(0.0, foreign_heat) *
               (costs.remote_disk_ms - costs.remote_buffer_ms);
  }
  return benefit;
}

}  // namespace memgoal::cache
