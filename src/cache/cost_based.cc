#include "cache/cost_based.h"

#include <cmath>
#include <utility>

#include "common/check.h"
#include "obs/profiler.h"

namespace memgoal::cache {

CostBasedPolicy::CostBasedPolicy(BenefitFn benefit_fn, int revalidation_limit)
    : benefit_fn_(std::move(benefit_fn)),
      revalidation_limit_(revalidation_limit) {
  MEMGOAL_CHECK(benefit_fn_ != nullptr);
  MEMGOAL_CHECK(revalidation_limit_ >= 0);
}

void CostBasedPolicy::OnInsert(PageId page) {
  obs::ProfileScope profile(obs::Phase::kHeapMaintain);
  residents_.Insert(page, benefit_fn_(page));
}

void CostBasedPolicy::OnAccess(PageId page) {
  obs::ProfileScope profile(obs::Phase::kHeapMaintain);
  residents_.Update(page, benefit_fn_(page));
}

void CostBasedPolicy::OnErase(PageId page) {
  obs::ProfileScope profile(obs::Phase::kHeapMaintain);
  residents_.Erase(page);
}

void CostBasedPolicy::Refresh(PageId page) {
  obs::ProfileScope profile(obs::Phase::kHeapMaintain);
  if (residents_.Contains(page)) residents_.Update(page, benefit_fn_(page));
}

std::optional<PageId> CostBasedPolicy::ChooseVictim() {
  obs::ProfileScope profile(obs::Phase::kVictimSelect);
  if (residents_.empty()) return std::nullopt;
  // Lazy revalidation: keys may be stale; recompute the apparent minimum
  // and re-heapify until the minimum is confirmed (or we hit the bound, in
  // which case the current top is an acceptable approximation).
  for (int i = 0; i < revalidation_limit_; ++i) {
    const auto [page, key] = residents_.Peek();
    const double fresh = benefit_fn_(page);
    residents_.Update(page, fresh);
    if (residents_.Peek().first == page) return page;
  }
  return residents_.Peek().first;
}

std::unique_ptr<ReplacementPolicy> MakeCostBasedPolicy(BenefitFn benefit_fn) {
  return std::make_unique<CostBasedPolicy>(std::move(benefit_fn));
}

}  // namespace memgoal::cache
