#include "cache/cost_based.h"

#include <cmath>
#include <utility>

#include "common/check.h"
#include "obs/profiler.h"

namespace memgoal::cache {

CostBasedPolicy::CostBasedPolicy(BenefitFn benefit_fn, int revalidation_limit)
    : benefit_fn_(std::move(benefit_fn)),
      revalidation_limit_(revalidation_limit) {
  MEMGOAL_CHECK(benefit_fn_ != nullptr);
  MEMGOAL_CHECK(revalidation_limit_ >= 0);
}

void CostBasedPolicy::OnInsert(PageId page) {
  obs::ProfileScope profile(obs::Phase::kHeapMaintain);
  residents_.Insert(page, benefit_fn_(page));
}

void CostBasedPolicy::OnAccess(PageId page) {
  // O(1), no benefit evaluation, no profile scope: the mark is cheaper
  // than the instrumentation would be. The stale key is repaired in
  // ChooseVictim's flush, where heap_maintain time is accounted.
  residents_.MarkDirty(page);
}

void CostBasedPolicy::OnErase(PageId page) {
  obs::ProfileScope profile(obs::Phase::kHeapMaintain);
  residents_.Erase(page);
}

void CostBasedPolicy::Refresh(PageId page) {
  if (residents_.Contains(page)) residents_.MarkDirty(page);
}

std::optional<PageId> CostBasedPolicy::ChooseVictim() {
  obs::ProfileScope profile(obs::Phase::kVictimSelect);
  if (residents_.empty()) return std::nullopt;
  {
    // Repair-on-pop: every page touched since the last selection gets one
    // fresh benefit evaluation, in mark order, before the minimum is read.
    obs::ProfileScope repair(obs::Phase::kHeapMaintain);
    residents_.FlushDirty([this](PageId page) { return benefit_fn_(page); });
  }
  // Post-flush revalidation: keys are exact as of the flush, but the flush
  // itself moves entries (a re-keyed page can surface a top whose benefit
  // the directory changed without a Refresh); confirm the minimum to a
  // fixed point or the bound, as before.
  for (int i = 0; i < revalidation_limit_; ++i) {
    const auto [page, key] = residents_.Peek();
    const double fresh = benefit_fn_(page);
    residents_.Update(page, fresh);
    if (residents_.Peek().first == page) return page;
  }
  return residents_.Peek().first;
}

std::unique_ptr<ReplacementPolicy> MakeCostBasedPolicy(BenefitFn benefit_fn) {
  return std::make_unique<CostBasedPolicy>(std::move(benefit_fn));
}

}  // namespace memgoal::cache
