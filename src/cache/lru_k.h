#ifndef MEMGOAL_CACHE_LRU_K_H_
#define MEMGOAL_CACHE_LRU_K_H_

#include <memory>

#include "cache/heat.h"
#include "cache/indexed_heap.h"
#include "cache/replacement.h"
#include "sim/simulator.h"

namespace memgoal::cache {

/// LRU-K replacement (O'Neil et al., SIGMOD'93): the victim is the resident
/// page with the maximum backward K-distance, i.e. the oldest K-th most
/// recent access. Pages with fewer than K recorded accesses have infinite
/// backward distance and are evicted first, ordered by least recent access
/// among themselves.
///
/// The policy reads access history from a HeatTracker shared with the owner
/// (so history survives eviction, as LRU-K requires), and keeps residents in
/// an indexed min-heap keyed by
///     key = t_K                         (count >= K)
///     key = t_last - kInfinitePenalty   (count <  K)
/// so the minimum key is always the correct victim.
class LruKPolicy final : public ReplacementPolicy {
 public:
  /// `tracker` must outlive the policy and must be fed every access (the
  /// BufferPool calls OnAccess/OnInsert after the owner recorded the access
  /// in the tracker).
  LruKPolicy(const HeatTracker* tracker, const sim::Simulator* simulator);

  void OnInsert(PageId page) override;
  void OnAccess(PageId page) override;
  void OnErase(PageId page) override;
  std::optional<PageId> ChooseVictim() override;
  const char* name() const override { return "lru-k"; }

 private:
  static constexpr double kInfinitePenalty = 1e15;

  double KeyOf(PageId page) const;

  const HeatTracker* tracker_;
  const sim::Simulator* simulator_;
  IndexedMinHeap<PageId> residents_;
};

std::unique_ptr<ReplacementPolicy> MakeLruKPolicy(
    const HeatTracker* tracker, const sim::Simulator* simulator);

}  // namespace memgoal::cache

#endif  // MEMGOAL_CACHE_LRU_K_H_
