#ifndef MEMGOAL_CACHE_COST_BASED_H_
#define MEMGOAL_CACHE_COST_BASED_H_

#include <functional>
#include <memory>

#include "cache/indexed_heap.h"
#include "cache/replacement.h"

namespace memgoal::cache {

/// Computes the current benefit of keeping `page` in this pool (see
/// CostModel and NodeCache for the concrete formula).
using BenefitFn = std::function<double(PageId)>;

/// Cost-based replacement of Sinnwell & Weikum (ICDE'97), as integrated in
/// §6 of the paper: pages are ranked by the *benefit* of keeping them
/// cached — heat times the access-cost difference between dropping and
/// keeping — and the victim is the page with the lowest benefit.
///
/// Benefits drift over time (heat decays, copy status changes elsewhere),
/// so maintenance is lazy end to end: an access just marks the page's heap
/// entry dirty in O(1), and victim selection repairs the heap — every
/// dirty entry is re-keyed with a fresh benefit before the pop, then the
/// top is re-evaluated until a fixed point or a bounded number of
/// refreshes. Benefit evaluations thus scale with evictions (touched pages
/// per selection), not with accesses, exactly like the threshold-based
/// bookkeeping of the original system trades message traffic for accuracy.
class CostBasedPolicy final : public ReplacementPolicy {
 public:
  explicit CostBasedPolicy(BenefitFn benefit_fn, int revalidation_limit = 8);

  void OnInsert(PageId page) override;
  void OnAccess(PageId page) override;
  void OnErase(PageId page) override;
  std::optional<PageId> ChooseVictim() override;
  const char* name() const override { return "cost-based"; }

  /// Re-computes the key of a resident page after an external event changed
  /// its benefit (e.g. its last-copy status flipped). No-op if not
  /// resident.
  void Refresh(PageId page);

 private:
  BenefitFn benefit_fn_;
  int revalidation_limit_;
  IndexedMinHeap<PageId> residents_;
};

std::unique_ptr<ReplacementPolicy> MakeCostBasedPolicy(BenefitFn benefit_fn);

}  // namespace memgoal::cache

#endif  // MEMGOAL_CACHE_COST_BASED_H_
