#include "cache/lru_k.h"

namespace memgoal::cache {

LruKPolicy::LruKPolicy(const HeatTracker* tracker,
                       const sim::Simulator* simulator)
    : tracker_(tracker), simulator_(simulator) {}

double LruKPolicy::KeyOf(PageId page) const {
  const int count = tracker_->AccessCount(page);
  const sim::SimTime t = tracker_->BackwardKTime(page);
  if (count >= tracker_->k()) return t;
  // Fewer than K accesses: infinite backward distance. BackwardKTime then
  // degenerates to the least recent retained access, giving LRU order among
  // these pages.
  return t - kInfinitePenalty;
}

void LruKPolicy::OnInsert(PageId page) { residents_.Insert(page, KeyOf(page)); }

void LruKPolicy::OnAccess(PageId page) { residents_.Update(page, KeyOf(page)); }

void LruKPolicy::OnErase(PageId page) { residents_.Erase(page); }

std::optional<PageId> LruKPolicy::ChooseVictim() {
  if (residents_.empty()) return std::nullopt;
  return residents_.Peek().first;
}

std::unique_ptr<ReplacementPolicy> MakeLruKPolicy(
    const HeatTracker* tracker, const sim::Simulator* simulator) {
  return std::make_unique<LruKPolicy>(tracker, simulator);
}

}  // namespace memgoal::cache
