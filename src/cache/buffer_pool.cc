#include "cache/buffer_pool.h"

#include <utility>

#include "common/check.h"

namespace memgoal::cache {

BufferPool::BufferPool(std::string name, uint32_t page_bytes,
                       uint64_t capacity_bytes,
                       std::unique_ptr<ReplacementPolicy> policy)
    : name_(std::move(name)), page_bytes_(page_bytes),
      capacity_bytes_(capacity_bytes), policy_(std::move(policy)) {
  MEMGOAL_CHECK(page_bytes_ > 0);
  MEMGOAL_CHECK(policy_ != nullptr);
}

void BufferPool::Touch(PageId page) {
  MEMGOAL_DCHECK(Contains(page));
  policy_->OnAccess(page);
}

template <typename Out>
void BufferPool::EvictDownTo(size_t limit, Out* out) {
  while (resident_.size() > limit) {
    std::optional<PageId> victim = policy_->ChooseVictim();
    MEMGOAL_CHECK(victim.has_value());
    policy_->OnErase(*victim);
    MEMGOAL_CHECK(resident_.Erase(*victim) == 1);
    out->push_back(*victim);
  }
}

template void BufferPool::EvictDownTo(size_t, EvictedList*);
template void BufferPool::EvictDownTo(size_t, std::vector<PageId>*);

BufferPool::InsertResult BufferPool::Insert(PageId page) {
  MEMGOAL_CHECK(!Contains(page));
  InsertResult result;
  const size_t frames = capacity_frames();
  if (frames == 0) return result;
  // Admission control: the page joins first, then the pool evicts down to
  // capacity. If the new page itself is the weakest entry it bounces right
  // back out — essential for the cost-based policy, where a freshly fetched
  // *duplicate* must not displace a resident last-copy page (it is used
  // once and discarded instead). Recency policies are unaffected: a new
  // page is never their immediate victim.
  resident_.Insert(page);
  policy_->OnInsert(page);
  result.inserted = true;
  EvictDownTo(frames, &result.evicted);
  for (auto it = result.evicted.begin(); it != result.evicted.end(); ++it) {
    if (*it == page) {
      result.inserted = false;
      result.evicted.erase(it);
      break;
    }
  }
  return result;
}

void BufferPool::Erase(PageId page) {
  MEMGOAL_CHECK(resident_.Erase(page) == 1);
  policy_->OnErase(page);
}

std::vector<PageId> BufferPool::Resize(uint64_t new_capacity_bytes) {
  capacity_bytes_ = new_capacity_bytes;
  std::vector<PageId> evicted;
  EvictDownTo(capacity_frames(), &evicted);
  return evicted;
}

}  // namespace memgoal::cache
