#ifndef MEMGOAL_CACHE_NODE_CACHE_H_
#define MEMGOAL_CACHE_NODE_CACHE_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "cache/buffer_pool.h"
#include "cache/replacement.h"
#include "storage/types.h"

namespace memgoal::cache {

/// The buffer memory of one node, split into a no-goal pool plus one
/// dedicated pool per goal class, implementing the multi-buffer access
/// algorithm of §6:
///
///  - a page is resident in at most one pool of the node;
///  - an access by class k with a dedicated pool promotes the page from the
///    no-goal pool into k's dedicated pool (no I/O), leaves it in place if
///    it already sits in *any* dedicated pool, and inserts fetched pages
///    into k's dedicated pool;
///  - pages evicted from a dedicated pool are dropped from the node
///    completely (not demoted to the no-goal pool);
///  - accesses by classes without a dedicated pool hit wherever the page
///    is, and fetched pages go to the no-goal pool.
///
/// The no-goal pool's capacity is always the node total minus the dedicated
/// budgets (equation 6's upper bound), so growing a dedicated pool evicts
/// from the no-goal pool and vice versa.
class NodeCache {
 public:
  /// Creates the replacement policy for a pool. `pool_class` is
  /// kNoGoalClass for the no-goal pool and the class id for dedicated
  /// pools, letting cost-based policies rank by the matching heat scope
  /// (§6: class heats for dedicated buffers, accumulated heat otherwise).
  using PolicyFactory =
      std::function<std::unique_ptr<ReplacementPolicy>(ClassId pool_class)>;

  NodeCache(NodeId node, uint64_t total_bytes, uint32_t page_bytes,
            const PolicyFactory& factory);

  /// Result of an access or insert: which pages left the node entirely
  /// (their directory entries must be dropped) and whether the accessed
  /// page became resident.
  struct AccessResult {
    bool hit = false;
    bool inserted = false;
    EvictedList dropped;
  };

  /// Creates class k's dedicated pool (initially 0 bytes) if absent.
  void EnsureDedicatedPool(ClassId klass);
  bool HasDedicatedPool(ClassId klass) const {
    return dedicated_.count(klass) > 0;
  }

  bool IsCached(PageId page) const { return page_location_.Contains(page); }

  /// Handles the buffer-resident part of an access by class `klass`;
  /// `result.hit` tells the caller whether a fetch is needed.
  AccessResult OnAccess(ClassId klass, PageId page);

  /// Inserts a freshly fetched page according to §6 placement rules.
  AccessResult InsertFetched(ClassId klass, PageId page);

  /// Removes `page` from whichever pool holds it (cache invalidation, e.g.
  /// after a committed update elsewhere). Returns false if not resident.
  bool Drop(PageId page);

  /// Drops a frame that failed verify-on-read so it can never be served
  /// again, counting the eviction separately from ordinary drops. Returns
  /// false if the page is not resident.
  bool Quarantine(PageId page);

  /// Frames evicted through Quarantine() so far. The invariant auditor
  /// balances this against the system's quarantine *decisions* to catch a
  /// buffer pool that keeps serving a frame it was told to quarantine.
  uint64_t quarantined() const { return quarantined_; }

  /// Empties every pool and resets all dedicated budgets to zero — the
  /// node's volatile buffer state after a crash (a recovered node restarts
  /// with a cold cache and no dedications). Returns the pages that were
  /// resident so the caller can clean up directory state.
  std::vector<PageId> Clear();

  /// Sets class k's dedicated budget, clamped to AvailableForClass(k)
  /// (§5e: "the local agent allocates as much memory as possible").
  /// Returns the granted byte budget; pages dropped in the process (from
  /// the shrunk dedicated pool or the squeezed no-goal pool) are appended
  /// to `dropped`.
  uint64_t SetDedicatedBytes(ClassId klass, uint64_t bytes,
                             std::vector<PageId>* dropped);

  uint64_t dedicated_bytes(ClassId klass) const;
  uint64_t total_dedicated_bytes() const;
  uint64_t nogoal_bytes() const { return total_bytes_ - total_dedicated_bytes(); }
  uint64_t total_bytes() const { return total_bytes_; }

  /// Upper bound of equation 6: SIZE_i minus the other classes' dedicated
  /// budgets.
  uint64_t AvailableForClass(ClassId klass) const;

  NodeId node() const { return node_; }
  size_t resident_pages() const { return page_location_.size(); }

  /// Pool currently holding `page`, as a class id (kNoGoalClass for the
  /// no-goal pool); only valid if IsCached(page).
  ClassId LocationOf(PageId page) const;

 private:
  BufferPool& PoolFor(ClassId location);

  // Applies an InsertResult: updates the location map and collects drops.
  void ApplyInsert(ClassId location, PageId page,
                   BufferPool::InsertResult insert_result,
                   AccessResult* result);

  NodeId node_;
  uint64_t total_bytes_;
  uint32_t page_bytes_;
  BufferPool nogoal_pool_;
  std::map<ClassId, BufferPool> dedicated_;  // ordered for determinism
  /// Sum of dedicated_ pool capacities, maintained at every capacity
  /// change: AvailableForClass sits on the controller's per-class-per-node
  /// rollup (O(K * N) calls per interval), where recomputing the sum made
  /// the rollup O(K^2 * N).
  uint64_t total_dedicated_bytes_ = 0;
  common::FlatHashMap<PageId, ClassId> page_location_;
  PolicyFactory factory_;
  uint64_t quarantined_ = 0;
};

}  // namespace memgoal::cache

#endif  // MEMGOAL_CACHE_NODE_CACHE_H_
