#include "cache/replacement.h"

#include <list>
#include <unordered_map>

#include "common/check.h"

namespace memgoal::cache {

const char* PolicyKindName(PolicyKind kind) {
  switch (kind) {
    case PolicyKind::kFifo:
      return "fifo";
    case PolicyKind::kLru:
      return "lru";
    case PolicyKind::kLruK:
      return "lru-k";
    case PolicyKind::kCostBased:
      return "cost-based";
  }
  return "?";
}

namespace {

// Shared list+index machinery: eviction order is front-to-back.
class ListPolicyBase : public ReplacementPolicy {
 public:
  void OnInsert(PageId page) override {
    MEMGOAL_CHECK(index_.count(page) == 0);
    order_.push_back(page);
    index_[page] = std::prev(order_.end());
  }

  void OnErase(PageId page) override {
    auto it = index_.find(page);
    MEMGOAL_CHECK(it != index_.end());
    order_.erase(it->second);
    index_.erase(it);
  }

  std::optional<PageId> ChooseVictim() override {
    if (order_.empty()) return std::nullopt;
    return order_.front();
  }

 protected:
  std::list<PageId> order_;
  std::unordered_map<PageId, std::list<PageId>::iterator> index_;
};

class FifoPolicy final : public ListPolicyBase {
 public:
  void OnAccess(PageId) override {}  // insertion order only
  const char* name() const override { return "fifo"; }
};

class LruPolicy final : public ListPolicyBase {
 public:
  void OnAccess(PageId page) override {
    auto it = index_.find(page);
    MEMGOAL_CHECK(it != index_.end());
    order_.splice(order_.end(), order_, it->second);
  }
  const char* name() const override { return "lru"; }
};

}  // namespace

std::unique_ptr<ReplacementPolicy> MakeFifoPolicy() {
  return std::make_unique<FifoPolicy>();
}

std::unique_ptr<ReplacementPolicy> MakeLruPolicy() {
  return std::make_unique<LruPolicy>();
}

}  // namespace memgoal::cache
