#ifndef MEMGOAL_CACHE_INDEXED_HEAP_H_
#define MEMGOAL_CACHE_INDEXED_HEAP_H_

#include <cstddef>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/check.h"

namespace memgoal::cache {

/// Binary min-heap with a position index, supporting O(log n) insert,
/// erase, and key update for arbitrary ids. Ties are broken by id so that
/// victim selection (and hence the whole simulation) is deterministic.
///
/// This is the priority queue backing the cost-based replacement policy of
/// §6: pages are keyed by benefit and the victim is the minimum.
template <typename Id>
class IndexedMinHeap {
 public:
  bool Contains(Id id) const { return position_.count(id) > 0; }
  size_t size() const { return heap_.size(); }
  bool empty() const { return heap_.empty(); }

  void Insert(Id id, double key) {
    MEMGOAL_CHECK(!Contains(id));
    heap_.push_back(Entry{id, key});
    position_[id] = heap_.size() - 1;
    SiftUp(heap_.size() - 1);
  }

  /// Inserts `id` or changes its key if present.
  void Update(Id id, double key) {
    auto it = position_.find(id);
    if (it == position_.end()) {
      Insert(id, key);
      return;
    }
    const size_t pos = it->second;
    const double old_key = heap_[pos].key;
    heap_[pos].key = key;
    if (key < old_key) {
      SiftUp(pos);
    } else {
      SiftDown(pos);
    }
  }

  void Erase(Id id) {
    auto it = position_.find(id);
    MEMGOAL_CHECK(it != position_.end());
    const size_t pos = it->second;
    SwapEntries(pos, heap_.size() - 1);
    position_.erase(heap_.back().id);
    heap_.pop_back();
    if (pos < heap_.size()) {
      SiftUp(pos);
      SiftDown(pos);
    }
  }

  /// Minimum entry (id, key). Heap must be non-empty.
  std::pair<Id, double> Peek() const {
    MEMGOAL_CHECK(!heap_.empty());
    return {heap_[0].id, heap_[0].key};
  }

  void Pop() {
    MEMGOAL_CHECK(!heap_.empty());
    Erase(heap_[0].id);
  }

  double KeyOf(Id id) const {
    auto it = position_.find(id);
    MEMGOAL_CHECK(it != position_.end());
    return heap_[it->second].key;
  }

 private:
  struct Entry {
    Id id;
    double key;
  };

  static bool Less(const Entry& a, const Entry& b) {
    if (a.key != b.key) return a.key < b.key;
    return a.id < b.id;
  }

  void SwapEntries(size_t a, size_t b) {
    if (a == b) return;
    std::swap(heap_[a], heap_[b]);
    position_[heap_[a].id] = a;
    position_[heap_[b].id] = b;
  }

  void SiftUp(size_t pos) {
    while (pos > 0) {
      const size_t parent = (pos - 1) / 2;
      if (!Less(heap_[pos], heap_[parent])) break;
      SwapEntries(pos, parent);
      pos = parent;
    }
  }

  void SiftDown(size_t pos) {
    while (true) {
      const size_t left = 2 * pos + 1;
      const size_t right = 2 * pos + 2;
      size_t smallest = pos;
      if (left < heap_.size() && Less(heap_[left], heap_[smallest])) {
        smallest = left;
      }
      if (right < heap_.size() && Less(heap_[right], heap_[smallest])) {
        smallest = right;
      }
      if (smallest == pos) break;
      SwapEntries(pos, smallest);
      pos = smallest;
    }
  }

  std::vector<Entry> heap_;
  std::unordered_map<Id, size_t> position_;
};

}  // namespace memgoal::cache

#endif  // MEMGOAL_CACHE_INDEXED_HEAP_H_
