#ifndef MEMGOAL_CACHE_INDEXED_HEAP_H_
#define MEMGOAL_CACHE_INDEXED_HEAP_H_

#include <cstddef>
#include <utility>
#include <vector>

#include "common/check.h"
#include "common/flat_hash_map.h"

namespace memgoal::cache {

/// Binary min-heap with a position index, supporting O(log n) insert,
/// erase, and key update for arbitrary ids. Ties are broken by id so that
/// victim selection (and hence the whole simulation) is deterministic.
///
/// This is the priority queue backing the cost-based replacement policy of
/// §6: pages are keyed by benefit and the victim is the minimum.
///
/// Lazy maintenance: when keys drift cheaply and often (every cache access
/// changes a page's benefit) but the minimum is consulted rarely (only at
/// eviction), callers can MarkDirty(id) in O(1) instead of re-computing and
/// re-sifting per access, then FlushDirty(key_fn) once before the next
/// Peek/Pop. Dirty entries keep their stale keys and participate in sifts
/// normally — the heap invariant always holds for the *stored* keys — so
/// correctness only requires a flush before reading the minimum.
template <typename Id>
class IndexedMinHeap {
 public:
  bool Contains(Id id) const { return position_.Contains(id); }
  size_t size() const { return heap_.size(); }
  bool empty() const { return heap_.empty(); }

  void Insert(Id id, double key) {
    MEMGOAL_CHECK(!Contains(id));
    heap_.push_back(Entry{id, key});
    position_[id] = heap_.size() - 1;
    SiftUp(heap_.size() - 1);
  }

  /// Inserts `id` or changes its key if present.
  void Update(Id id, double key) {
    const size_t* found = position_.Find(id);
    if (found == nullptr) {
      Insert(id, key);
      return;
    }
    const size_t pos = *found;
    const double old_key = heap_[pos].key;
    heap_[pos].key = key;
    if (key < old_key) {
      SiftUp(pos);
    } else {
      SiftDown(pos);
    }
  }

  void Erase(Id id) {
    const size_t* found = position_.Find(id);
    MEMGOAL_CHECK(found != nullptr);
    const size_t pos = *found;
    SwapEntries(pos, heap_.size() - 1);
    position_.Erase(heap_.back().id);
    heap_.pop_back();
    if (pos < heap_.size()) {
      SiftUp(pos);
      SiftDown(pos);
    }
  }

  /// Minimum entry (id, key). Heap must be non-empty.
  std::pair<Id, double> Peek() const {
    MEMGOAL_CHECK(!heap_.empty());
    return {heap_[0].id, heap_[0].key};
  }

  void Pop() {
    MEMGOAL_CHECK(!heap_.empty());
    Erase(heap_[0].id);
  }

  double KeyOf(Id id) const {
    const size_t* found = position_.Find(id);
    MEMGOAL_CHECK(found != nullptr);
    return heap_[*found].key;
  }

  /// O(1): flags `id`'s stored key as stale. Idempotent until the next
  /// flush. `id` must be present.
  void MarkDirty(Id id) {
    const size_t* found = position_.Find(id);
    MEMGOAL_CHECK(found != nullptr);
    Entry& entry = heap_[*found];
    if (entry.dirty) return;
    entry.dirty = true;
    dirty_.push_back(id);
  }

  bool has_dirty() const { return !dirty_.empty(); }
  size_t dirty_count() const { return dirty_.size(); }

  /// Repairs every dirty entry to key_fn(id), in mark order (deterministic
  /// given a deterministic caller). Ids erased — or erased and re-inserted
  /// fresh — since marking are skipped; the per-entry flag arbitrates.
  /// Returns the number of entries re-keyed. After this call the heap's
  /// minimum is exact for key_fn's current values.
  template <typename KeyFn>
  size_t FlushDirty(KeyFn&& key_fn) {
    size_t repaired = 0;
    for (size_t i = 0; i < dirty_.size(); ++i) {
      const Id id = dirty_[i];
      const size_t* found = position_.Find(id);
      if (found == nullptr) continue;
      Entry& entry = heap_[*found];
      if (!entry.dirty) continue;
      entry.dirty = false;
      Update(id, key_fn(id));
      ++repaired;
    }
    dirty_.clear();
    return repaired;
  }

 private:
  struct Entry {
    Id id;
    double key;
    /// Stored key may lag the true key; see MarkDirty/FlushDirty. The flag
    /// travels with the entry through sift swaps.
    bool dirty = false;
  };

  static bool Less(const Entry& a, const Entry& b) {
    if (a.key != b.key) return a.key < b.key;
    return a.id < b.id;
  }

  void SwapEntries(size_t a, size_t b) {
    if (a == b) return;
    std::swap(heap_[a], heap_[b]);
    *position_.Find(heap_[a].id) = a;
    *position_.Find(heap_[b].id) = b;
  }

  void SiftUp(size_t pos) {
    while (pos > 0) {
      const size_t parent = (pos - 1) / 2;
      if (!Less(heap_[pos], heap_[parent])) break;
      SwapEntries(pos, parent);
      pos = parent;
    }
  }

  void SiftDown(size_t pos) {
    while (true) {
      const size_t left = 2 * pos + 1;
      const size_t right = 2 * pos + 2;
      size_t smallest = pos;
      if (left < heap_.size() && Less(heap_[left], heap_[smallest])) {
        smallest = left;
      }
      if (right < heap_.size() && Less(heap_[right], heap_[smallest])) {
        smallest = right;
      }
      if (smallest == pos) break;
      SwapEntries(pos, smallest);
      pos = smallest;
    }
  }

  std::vector<Entry> heap_;
  common::FlatHashMap<Id, size_t> position_;
  /// Ids in first-mark order; may hold ids erased after marking.
  std::vector<Id> dirty_;
};

}  // namespace memgoal::cache

#endif  // MEMGOAL_CACHE_INDEXED_HEAP_H_
