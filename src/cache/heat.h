#ifndef MEMGOAL_CACHE_HEAT_H_
#define MEMGOAL_CACHE_HEAT_H_

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "sim/simulator.h"
#include "storage/types.h"

namespace memgoal::cache {

/// LRU-K heat estimator (O'Neil et al., SIGMOD'93), as used by the paper's
/// cost-based buffer manager to approximate page heat (§6: "In the
/// implementation the LRU-k algorithm is used to approximate the heat").
///
/// The heat of a page is its access frequency per millisecond, estimated
/// from the backward K-distance: with m = min(count, K) recorded accesses
/// and t_m the m-th most recent access time,
///     heat(p, now) = m / (now - t_m + epsilon).
/// Pages never accessed have heat 0. History survives cache eviction (the
/// defining property of LRU-K) so a re-fetched page keeps its frequency
/// estimate, but it must not survive forever: without pruning, every page
/// ever touched holds a K-slot record until process exit, so a scan-heavy
/// workload grows the map without bound. EvictColderThan prunes records
/// whose backward-K time has fallen behind a caller-chosen horizon — such a
/// page's heat is indistinguishable from a cold restart anyway — while a
/// retain predicate protects pages the caller still holds resident.
class HeatTracker {
 public:
  explicit HeatTracker(int k, double epsilon_ms = 1.0);

  void RecordAccess(PageId page, sim::SimTime now);

  double HeatOf(PageId page, sim::SimTime now) const;

  /// The m-th most recent access time (m = min(count, K)), i.e. the LRU-K
  /// reference timestamp; 0 if never accessed. Exposed for the LRU-K
  /// replacement policy's victim ordering.
  sim::SimTime BackwardKTime(PageId page) const;

  /// Number of recorded accesses to `page` (saturates at 2^31).
  int AccessCount(PageId page) const;

  void Forget(PageId page) { history_.erase(page); }

  /// Drops the history of every page whose backward-K time is older than
  /// `horizon` and for which `retain` (if given) returns false. Returns the
  /// number of records evicted. Typical use: horizon = now - a few
  /// observation intervals, retain = "page is cache-resident".
  size_t EvictColderThan(sim::SimTime horizon,
                         const std::function<bool(PageId)>& retain = nullptr);

  int k() const { return k_; }
  size_t tracked_pages() const { return history_.size(); }

 private:
  struct History {
    // Circular buffer of the last up-to-K access times.
    // times[next] is the slot the next access will overwrite.
    std::vector<sim::SimTime> times;
    int next = 0;
    int count = 0;
  };

  int k_;
  double epsilon_ms_;
  std::unordered_map<PageId, History> history_;
};

}  // namespace memgoal::cache

#endif  // MEMGOAL_CACHE_HEAT_H_
