#ifndef MEMGOAL_CACHE_HEAT_H_
#define MEMGOAL_CACHE_HEAT_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "common/flat_hash_map.h"
#include "sim/simulator.h"
#include "storage/types.h"

namespace memgoal::cache {

/// LRU-K heat estimator (O'Neil et al., SIGMOD'93), as used by the paper's
/// cost-based buffer manager to approximate page heat (§6: "In the
/// implementation the LRU-k algorithm is used to approximate the heat").
///
/// The heat of a page is its access frequency per millisecond, estimated
/// from the backward K-distance: with m = min(count, K) recorded accesses
/// and t_m the m-th most recent access time,
///     heat(p, now) = m / (now - t_m + epsilon).
/// Pages never accessed have heat 0. History survives cache eviction (the
/// defining property of LRU-K) so a re-fetched page keeps its frequency
/// estimate, but it must not survive forever: without pruning, every page
/// ever touched holds a K-slot record until process exit, so a scan-heavy
/// workload grows the map without bound. EvictColderThan prunes records
/// whose backward-K time has fallen behind a caller-chosen horizon — such a
/// page's heat is indistinguishable from a cold restart anyway — while a
/// retain predicate protects pages the caller still holds resident.
/// Updates are batched: RecordAccess is an O(1) append to a pending log,
/// and the log is applied — in record order, so the end state is identical
/// to eager application — the moment any reader needs the histories. The
/// cost-based policy reads heat only at victim selection, so steady-state
/// accesses pay one vector push instead of a hash probe each, and the
/// per-interval cache.heat_update profile scope covers batches rather than
/// single records.
class HeatTracker {
 public:
  explicit HeatTracker(int k, double epsilon_ms = 1.0);

  void RecordAccess(PageId page, sim::SimTime now) {
    pending_.push_back(PendingAccess{page, now});
  }

  double HeatOf(PageId page, sim::SimTime now) const;

  /// RecordAccess(page, now) immediately followed by HeatOf(page, now),
  /// fused into one history lookup. The per-access dissemination check
  /// (Node::MaybePropagateHeat) reads the heat of exactly the page just
  /// recorded, which through the separate calls costs a pending-log round
  /// trip plus two hash probes per access.
  double RecordAndHeat(PageId page, sim::SimTime now);

  /// The m-th most recent access time (m = min(count, K)), i.e. the LRU-K
  /// reference timestamp; 0 if never accessed. Exposed for the LRU-K
  /// replacement policy's victim ordering.
  sim::SimTime BackwardKTime(PageId page) const;

  /// Number of recorded accesses to `page` (saturates at 2^31).
  int AccessCount(PageId page) const;

  void Forget(PageId page) {
    // Apply pending records first: accesses logged before the Forget must
    // land (and then be erased), not resurrect the page at the next flush.
    Flush();
    if (const History* h = history_.Find(page)) {
      free_offsets_.push_back(h->offset);
      history_.Erase(page);
    }
  }

  /// Drops the history of every page whose backward-K time is older than
  /// `horizon` and for which `retain` (if given) returns false. Returns the
  /// number of records evicted. Typical use: horizon = now - a few
  /// observation intervals, retain = "page is cache-resident".
  size_t EvictColderThan(sim::SimTime horizon,
                         const std::function<bool(PageId)>& retain = nullptr);

  int k() const { return k_; }
  size_t tracked_pages() const {
    Flush();
    return history_.size();
  }

 private:
  struct History {
    // Circular buffer of the last up-to-K access times, stored as k_
    // consecutive slots at slab_[offset]: one shared arena instead of a
    // heap vector per tracked page. times[next] is the slot the next
    // access will overwrite.
    uint32_t offset = 0;
    int32_t next = 0;
    int32_t count = 0;
  };
  struct PendingAccess {
    PageId page;
    sim::SimTime time;
  };

  /// Applies the pending log in record order. Readers call it first, so
  /// the stores are mutable and every const accessor sees eager-equivalent
  /// state. The empty check is inline: most reads in a steady-state run
  /// find the log already applied.
  void Flush() const {
    if (!pending_.empty()) FlushPending();
  }
  void FlushPending() const;

  /// Claims a zero-filled k_-slot run in slab_ (reusing a freed run when
  /// one exists) and returns its offset.
  uint32_t AllocateSlots() const;

  int k_;
  double epsilon_ms_;
  mutable std::vector<PendingAccess> pending_;
  mutable common::FlatHashMap<PageId, History> history_;
  // Timestamp arena: every History owns k_ contiguous slots. Freed runs
  // (Forget / EvictColderThan) are recycled through free_offsets_.
  mutable std::vector<sim::SimTime> slab_;
  mutable std::vector<uint32_t> free_offsets_;
};

}  // namespace memgoal::cache

#endif  // MEMGOAL_CACHE_HEAT_H_
