#include "net/directory.h"

#include "common/check.h"

namespace memgoal::net {

PageDirectory::PageDirectory(const storage::Database* database)
    : database_(database), num_nodes_(database->num_nodes()),
      cached_(static_cast<size_t>(database->num_pages()) * num_nodes_, false),
      copy_count_(database->num_pages(), 0),
      heat_(static_cast<size_t>(database->num_pages()) * num_nodes_, 0.0),
      global_heat_(database->num_pages(), 0.0) {}

void PageDirectory::OnPageCached(NodeId node, PageId page) {
  MEMGOAL_DCHECK(node < num_nodes_ && page < database_->num_pages());
  const size_t idx = Index(node, page);
  if (cached_[idx]) return;
  cached_[idx] = true;
  ++copy_count_[page];
  ++total_cached_;
}

void PageDirectory::OnPageDropped(NodeId node, PageId page) {
  MEMGOAL_DCHECK(node < num_nodes_ && page < database_->num_pages());
  const size_t idx = Index(node, page);
  if (!cached_[idx]) return;
  cached_[idx] = false;
  MEMGOAL_CHECK(copy_count_[page] > 0);
  --copy_count_[page];
  --total_cached_;
}

int PageDirectory::DropNode(NodeId node) {
  MEMGOAL_DCHECK(node < num_nodes_);
  int dropped = 0;
  for (PageId page = 0; page < database_->num_pages(); ++page) {
    const size_t idx = Index(node, page);
    if (cached_[idx]) {
      cached_[idx] = false;
      MEMGOAL_CHECK(copy_count_[page] > 0);
      --copy_count_[page];
      --total_cached_;
      ++dropped;
    }
    if (heat_[idx] != 0.0) {
      global_heat_[page] -= heat_[idx];
      heat_[idx] = 0.0;
    }
  }
  return dropped;
}

bool PageDirectory::IsCachedAt(NodeId node, PageId page) const {
  MEMGOAL_DCHECK(node < num_nodes_ && page < database_->num_pages());
  return cached_[Index(node, page)];
}

int PageDirectory::CopyCount(PageId page) const {
  MEMGOAL_DCHECK(page < database_->num_pages());
  return copy_count_[page];
}

bool PageDirectory::IsLastCopy(NodeId node, PageId page) const {
  return copy_count_[page] == 1 && IsCachedAt(node, page);
}

std::optional<NodeId> PageDirectory::FindCopy(PageId page,
                                              NodeId except) const {
  if (copy_count_[page] == 0) return std::nullopt;
  const NodeId home = database_->HomeOf(page);
  if (home != except && IsCachedAt(home, page)) return home;
  for (uint32_t offset = 0; offset < num_nodes_; ++offset) {
    const NodeId node = (home + offset) % num_nodes_;
    if (node == except) continue;
    if (IsCachedAt(node, page)) return node;
  }
  return std::nullopt;
}

void PageDirectory::ReportLocalHeat(NodeId node, PageId page, double heat) {
  MEMGOAL_DCHECK(node < num_nodes_ && page < database_->num_pages());
  const size_t idx = Index(node, page);
  global_heat_[page] += heat - heat_[idx];
  heat_[idx] = heat;
}

double PageDirectory::GlobalHeat(PageId page) const {
  MEMGOAL_DCHECK(page < database_->num_pages());
  return global_heat_[page];
}

}  // namespace memgoal::net
