#include "net/directory.h"

#include <algorithm>
#include <cmath>
#include <string>

#include "common/check.h"

namespace memgoal::net {

PageDirectory::PageDirectory(const storage::Database* database)
    : database_(database), num_nodes_(database->num_nodes()),
      cached_(static_cast<size_t>(database->num_pages()) * num_nodes_, false),
      copy_count_(database->num_pages(), 0),
      heat_(static_cast<size_t>(database->num_pages()) * num_nodes_, 0.0),
      global_heat_(database->num_pages(), 0.0),
      node_cost_(num_nodes_, 0.0) {}

void PageDirectory::OnPageCached(NodeId node, PageId page) {
  MEMGOAL_DCHECK(node < num_nodes_ && page < database_->num_pages());
  const size_t idx = Index(node, page);
  if (cached_[idx]) return;
  cached_[idx] = true;
  ++copy_count_[page];
  ++total_cached_;
}

void PageDirectory::OnPageDropped(NodeId node, PageId page) {
  MEMGOAL_DCHECK(node < num_nodes_ && page < database_->num_pages());
  const size_t idx = Index(node, page);
  if (!cached_[idx]) return;
  cached_[idx] = false;
  MEMGOAL_CHECK(copy_count_[page] > 0);
  --copy_count_[page];
  --total_cached_;
}

int PageDirectory::DropNode(NodeId node) {
  MEMGOAL_DCHECK(node < num_nodes_);
  int dropped = 0;
  for (PageId page = 0; page < database_->num_pages(); ++page) {
    const size_t idx = Index(node, page);
    if (cached_[idx]) {
      cached_[idx] = false;
      MEMGOAL_CHECK(copy_count_[page] > 0);
      --copy_count_[page];
      --total_cached_;
      ++dropped;
    }
    if (heat_[idx] != 0.0) {
      global_heat_[page] -= heat_[idx];
      heat_[idx] = 0.0;
    }
  }
  return dropped;
}

bool PageDirectory::IsCachedAt(NodeId node, PageId page) const {
  MEMGOAL_DCHECK(node < num_nodes_ && page < database_->num_pages());
  return cached_[Index(node, page)];
}

int PageDirectory::CopyCount(PageId page) const {
  MEMGOAL_DCHECK(page < database_->num_pages());
  return copy_count_[page];
}

bool PageDirectory::IsLastCopy(NodeId node, PageId page) const {
  return copy_count_[page] == 1 && IsCachedAt(node, page);
}

std::optional<NodeId> PageDirectory::FindCopy(PageId page,
                                              NodeId except) const {
  CopyList ranked;
  RankedCopies(page, except, &ranked);
  if (ranked.empty()) return std::nullopt;
  return ranked.front();
}

std::vector<NodeId> PageDirectory::RankedCopies(PageId page,
                                                NodeId except) const {
  CopyList ranked;
  RankedCopies(page, except, &ranked);
  return std::vector<NodeId>(ranked.begin(), ranked.end());
}

void PageDirectory::RankedCopies(PageId page, NodeId except,
                                 CopyList* out) const {
  out->clear();
  if (copy_count_[page] == 0) return;
  // Classic scan order first: home, then deterministically from the home.
  const NodeId home = database_->HomeOf(page);
  for (uint32_t offset = 0; offset < num_nodes_; ++offset) {
    const NodeId node = (home + offset) % num_nodes_;
    if (node == except) continue;
    if (!IsCachedAt(node, page)) continue;
    if (partition_active_ && reachable_ && !reachable_(except, node)) {
      continue;
    }
    out->push_back(node);
  }
  // Stable sort by health cost: equal costs (the healthy steady state)
  // preserve the scan order exactly, so ranking only reorders when the
  // fetch layer has actually observed asymmetric latencies. Insertion sort
  // keeps stability without std::stable_sort's temporary buffer; the list
  // is at most the replication degree long.
  for (NodeId* it = out->begin() + (out->empty() ? 0 : 1); it < out->end();
       ++it) {
    const NodeId node = *it;
    const double cost = node_cost_[node];
    NodeId* hole = it;
    while (hole != out->begin() && cost < node_cost_[*(hole - 1)]) {
      *hole = *(hole - 1);
      --hole;
    }
    *hole = node;
  }
}

void PageDirectory::RankedIntactCopies(PageId page, NodeId except,
                                       CopyList* out) const {
  CopyList ranked;
  RankedCopies(page, except, &ranked);
  out->clear();
  for (const NodeId node : ranked) {
    if (!verifiable_ || verifiable_(node, page)) out->push_back(node);
  }
}

void PageDirectory::SetNodeCost(NodeId node, double cost) {
  MEMGOAL_DCHECK(node < num_nodes_);
  node_cost_[node] = cost;
}

double PageDirectory::NodeCost(NodeId node) const {
  MEMGOAL_DCHECK(node < num_nodes_);
  return node_cost_[node];
}

void PageDirectory::ReportLocalHeat(NodeId node, PageId page, double heat) {
  MEMGOAL_DCHECK(node < num_nodes_ && page < database_->num_pages());
  const size_t idx = Index(node, page);
  global_heat_[page] += heat - heat_[idx];
  heat_[idx] = heat;
}

double PageDirectory::GlobalHeat(PageId page) const {
  MEMGOAL_DCHECK(page < database_->num_pages());
  return global_heat_[page];
}

std::optional<std::string> PageDirectory::AuditInternalConsistency() const {
  uint64_t recomputed_total = 0;
  for (PageId page = 0; page < database_->num_pages(); ++page) {
    int copies = 0;
    double heat_sum = 0.0;
    for (NodeId node = 0; node < num_nodes_; ++node) {
      const size_t idx = Index(node, page);
      if (cached_[idx]) ++copies;
      heat_sum += heat_[idx];
    }
    if (copies != copy_count_[page]) {
      return "page " + std::to_string(page) + ": copy_count " +
             std::to_string(copy_count_[page]) + " != recomputed " +
             std::to_string(copies);
    }
    const double drift = std::abs(heat_sum - global_heat_[page]);
    if (drift > 1e-6 * (1.0 + std::abs(heat_sum))) {
      return "page " + std::to_string(page) + ": global_heat " +
             std::to_string(global_heat_[page]) + " != recomputed " +
             std::to_string(heat_sum);
    }
    recomputed_total += static_cast<uint64_t>(copies);
  }
  if (recomputed_total != total_cached_) {
    return "total_cached " + std::to_string(total_cached_) +
           " != recomputed " + std::to_string(recomputed_total);
  }
  return std::nullopt;
}

}  // namespace memgoal::net
