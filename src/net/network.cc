#include "net/network.h"

#include <algorithm>
#include <cstdio>

#include "common/check.h"
#include "obs/profiler.h"

namespace memgoal::net {

const char* TrafficClassName(TrafficClass traffic_class) {
  switch (traffic_class) {
    case TrafficClass::kControl:
      return "control";
    case TrafficClass::kPage:
      return "page";
    case TrafficClass::kPartitionProtocol:
      return "partition-protocol";
    case TrafficClass::kHeatHint:
      return "heat-hint";
  }
  return "?";
}

namespace {

bool IsBestEffort(TrafficClass traffic_class) {
  return traffic_class == TrafficClass::kPartitionProtocol ||
         traffic_class == TrafficClass::kHeatHint;
}

}  // namespace

Network::Network(sim::Simulator* simulator, const Params& params)
    : simulator_(simulator), params_(params),
      medium_(simulator, /*capacity=*/1, "network"),
      loss_rng_(params.loss_seed) {
  MEMGOAL_CHECK(params.bandwidth_mbit_per_s > 0.0);
  MEMGOAL_CHECK(params.latency_ms >= 0.0);
  MEMGOAL_CHECK(params.loss_probability >= 0.0 &&
                params.loss_probability < 1.0);
  MEMGOAL_CHECK(params.burst_good_to_bad >= 0.0 &&
                params.burst_good_to_bad <= 1.0);
  MEMGOAL_CHECK(params.burst_bad_to_good >= 0.0 &&
                params.burst_bad_to_good <= 1.0);
  MEMGOAL_CHECK(params.burst_loss_good >= 0.0 &&
                params.burst_loss_good <= 1.0);
  MEMGOAL_CHECK(params.burst_loss_bad >= 0.0 &&
                params.burst_loss_bad <= 1.0);
}

bool Network::DrawLoss() {
  if (params_.loss_model == LossModel::kBurst) {
    // State transition first, then the per-state drop draw, so a freshly
    // entered bad state already afflicts the triggering message.
    if (burst_bad_) {
      if (loss_rng_.NextDouble() < params_.burst_bad_to_good) {
        burst_bad_ = false;
      }
    } else if (loss_rng_.NextDouble() < params_.burst_good_to_bad) {
      burst_bad_ = true;
    }
    const double p =
        burst_bad_ ? params_.burst_loss_bad : params_.burst_loss_good;
    return p > 0.0 && loss_rng_.NextDouble() < p;
  }
  return params_.loss_probability > 0.0 &&
         loss_rng_.NextDouble() < params_.loss_probability;
}

void Network::SetNodeSlowdown(NodeId node, double factor) {
  MEMGOAL_CHECK(factor > 0.0);
  if (node >= node_slowdown_.size()) {
    node_slowdown_.resize(node + 1, 1.0);
  }
  node_slowdown_[node] = factor;
}

double Network::NodeSlowdown(NodeId node) const {
  return node < node_slowdown_.size() ? node_slowdown_[node] : 1.0;
}

sim::SimTime Network::TransmissionTime(uint32_t bytes) const {
  const double bits = static_cast<double>(bytes) * 8.0;
  return bits / (params_.bandwidth_mbit_per_s * 1e6) * 1e3;
}

sim::Task<bool> Network::Transfer(NodeId from, NodeId to, uint32_t bytes,
                                  TrafficClass traffic_class,
                                  bool via_storage_bus,
                                  TransferTiming* timing) {
  if (from == to) co_return true;
  sim::SimTime start;
  {
    // Scoped so the profile frame closes before the first co_await below:
    // a ProfileScope must never span a suspension point, or the suspended
    // wall time would be billed to this phase.
    obs::ProfileScope profile(obs::Phase::kNetSend);
    bytes_sent_[static_cast<int>(traffic_class)] += bytes;
    ++messages_sent_[static_cast<int>(traffic_class)];
    start = simulator_->Now();
  }
  co_await medium_.Acquire();
  const sim::SimTime on_wire = simulator_->Now();
  co_await simulator_->Delay(TransmissionTime(bytes));
  medium_.Release();
  co_await simulator_->Delay(params_.latency_ms *
                             std::max(NodeSlowdown(from), NodeSlowdown(to)));
  if (timing != nullptr) {
    timing->wait_ms += on_wire - start;
    timing->transfer_ms += simulator_->Now() - on_wire;
  }
  bool delivered = true;
  {
    // No co_await between here and co_return, so the scope is safe; it
    // covers the delivery-side bookkeeping (loss draw + trace emission).
    obs::ProfileScope profile(obs::Phase::kNetReceive);
    // A cross-partition message is lost regardless of category; the loss
    // process is not advanced for it, so the draw sequence of surviving
    // best-effort traffic is unperturbed by partitions.
    if (partition_active_ && !via_storage_bus && reachable_ &&
        !reachable_(from, to)) {
      ++messages_dropped_[static_cast<int>(traffic_class)];
      ++messages_partition_dropped_[static_cast<int>(traffic_class)];
      delivered = false;
    } else if (IsBestEffort(traffic_class) && DrawLoss()) {
      ++messages_dropped_[static_cast<int>(traffic_class)];
      delivered = false;
    }
    if (tracer_ && tracer_->enabled()) {
      char args[128];
      std::snprintf(args, sizeof(args),
                    "{\"to\":%u,\"bytes\":%u,\"class\":\"%s\",\"delivered\":%s}",
                    static_cast<unsigned>(to), bytes,
                    TrafficClassName(traffic_class),
                    delivered ? "true" : "false");
      tracer_->Complete("net_transfer", "net", static_cast<uint32_t>(from),
                        tracer_->NextTrack(), start, simulator_->Now(), args);
    }
  }
  co_return delivered;
}

uint64_t Network::total_bytes_sent() const {
  uint64_t total = 0;
  for (uint64_t b : bytes_sent_) total += b;
  return total;
}

uint64_t Network::total_messages_sent() const {
  uint64_t total = 0;
  for (uint64_t m : messages_sent_) total += m;
  return total;
}

uint64_t Network::total_messages_partition_dropped() const {
  uint64_t total = 0;
  for (uint64_t m : messages_partition_dropped_) total += m;
  return total;
}

}  // namespace memgoal::net
