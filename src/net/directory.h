#ifndef MEMGOAL_NET_DIRECTORY_H_
#define MEMGOAL_NET_DIRECTORY_H_

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "common/inline_vector.h"
#include "storage/database.h"
#include "storage/types.h"

namespace memgoal::net {

/// Home-based page directory: tracks which nodes currently cache each page
/// and aggregates per-node heat reports into a global heat per page.
///
/// In the modelled system this state lives at each page's home node and is
/// maintained by control/hint messages; the simulation keeps it in one exact
/// structure while the message *traffic* for maintaining it is generated and
/// accounted by the cache layer (see DESIGN.md substitution table). The
/// paper's cost-based replacement consumes three queries from here: is a
/// local copy the last cached copy in the system (§6), where can a remote
/// copy be fetched from, and what is the global heat of a page.
class PageDirectory {
 public:
  explicit PageDirectory(const storage::Database* database);

  // -- Copy tracking -------------------------------------------------------

  /// Registers that `node` now caches `page`. Idempotent.
  void OnPageCached(NodeId node, PageId page);

  /// Registers that `node` dropped `page`. Idempotent.
  void OnPageDropped(NodeId node, PageId page);

  /// Bulk-drops every registration of `node`: cached-copy entries and heat
  /// contributions. One code path serves both a node crash (the node's
  /// volatile state is gone) and an administrative shrink-to-zero of a
  /// node's buffer pool. Idempotent; returns the number of copy entries
  /// removed.
  int DropNode(NodeId node);

  bool IsCachedAt(NodeId node, PageId page) const;
  int CopyCount(PageId page) const;

  /// True if `node` holds the only cached copy of `page` in the system.
  bool IsLastCopy(NodeId node, PageId page) const;

  /// A node other than `except` that caches `page`, if any. The best-ranked
  /// copy holder: lowest health cost first, ties broken by the classic scan
  /// order (the page's home node — no forward hop needed — then
  /// deterministically from the home). With all costs equal this is exactly
  /// the historic home-first scan.
  std::optional<NodeId> FindCopy(PageId page, NodeId except) const;

  /// Copy-holder list sized for the common replication degree; spills to
  /// the heap only on unusually wide replication.
  using CopyList = common::InlineVector<NodeId, 8>;

  /// All nodes other than `except` that cache `page`, best first, same
  /// ranking as FindCopy. The fetch path hedges down this list. While a
  /// partition is active (see SetReachability), holders unreachable *from*
  /// `except` — the requester in every call site — are excluded: the
  /// requester could not complete a fetch protocol with them anyway.
  std::vector<NodeId> RankedCopies(PageId page, NodeId except) const;

  /// Allocation-free variant for the per-access fetch path: appends the
  /// ranked holders to `out` (cleared first).
  void RankedCopies(PageId page, NodeId except, CopyList* out) const;

  /// RankedCopies minus holders whose cached frame would fail a checksum
  /// verify (per SetIntegrityCheck). The repair and scrub paths source
  /// intact replicas through this so they never waste a transfer on a copy
  /// the verify step would reject. Latent (undetectable) flaws pass the
  /// predicate by construction — a repair sourced from one silently
  /// propagates it, which is the point of modeling them.
  void RankedIntactCopies(PageId page, NodeId except, CopyList* out) const;

  /// Installs the integrity predicate consulted by RankedIntactCopies
  /// (owned by the integrity layer): returns false when `node`'s cached
  /// frame of the page would fail verify-on-read. May be left unset, in
  /// which case every copy ranks as intact.
  void SetIntegrityCheck(std::function<bool(NodeId, PageId)> verifiable) {
    verifiable_ = std::move(verifiable);
  }

  // -- Partition awareness -------------------------------------------------

  /// Installs the reachability oracle (owned by the fault-injection layer,
  /// same relation the network enforces). Consulted by RankedCopies only
  /// while partition_active is set.
  void SetReachability(std::function<bool(NodeId, NodeId)> reachable) {
    reachable_ = std::move(reachable);
  }
  void SetPartitionActive(bool active) { partition_active_ = active; }
  bool partition_active() const { return partition_active_; }

  // -- Node health ranking -------------------------------------------------

  /// Sets the replica-ranking cost of `node` (lower = preferred; the fetch
  /// layer feeds its per-node health score, an EWMA of observed fetch
  /// latency, through here). Nodes default to cost 0.
  void SetNodeCost(NodeId node, double cost);
  double NodeCost(NodeId node) const;

  // -- Global heat ---------------------------------------------------------

  /// Updates the heat contribution reported by `node` for `page`.
  void ReportLocalHeat(NodeId node, PageId page, double heat);

  /// Sum of the most recent per-node heat reports for `page`.
  double GlobalHeat(PageId page) const;

  /// Total pages currently cached somewhere (for tests/metrics).
  uint64_t total_cached_pages() const { return total_cached_; }

  /// Recomputes the maintained aggregates (per-page copy counts, the total
  /// cached counter, per-page global heat sums) from the base tables and
  /// compares. Returns a description of the first mismatch, or nullopt when
  /// internally consistent. Used by the invariant auditor.
  std::optional<std::string> AuditInternalConsistency() const;

 private:
  size_t Index(NodeId node, PageId page) const {
    return static_cast<size_t>(page) * num_nodes_ + node;
  }

  const storage::Database* database_;
  uint32_t num_nodes_;
  std::vector<bool> cached_;        // [page * num_nodes + node]
  std::vector<uint16_t> copy_count_;  // [page]
  std::vector<double> heat_;        // [page * num_nodes + node]
  std::vector<double> global_heat_;  // [page], maintained sum
  std::vector<double> node_cost_;    // [node], replica-ranking cost
  uint64_t total_cached_ = 0;
  std::function<bool(NodeId, NodeId)> reachable_;
  std::function<bool(NodeId, PageId)> verifiable_;
  bool partition_active_ = false;
};

}  // namespace memgoal::net

#endif  // MEMGOAL_NET_DIRECTORY_H_
