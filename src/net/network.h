#ifndef MEMGOAL_NET_NETWORK_H_
#define MEMGOAL_NET_NETWORK_H_

#include <array>
#include <cstdint>

#include "common/rng.h"
#include "sim/resource.h"
#include "sim/simulator.h"
#include "sim/task.h"
#include "storage/types.h"

namespace memgoal::net {

/// Categories of network traffic, accounted separately so the overhead
/// experiment (§7.5) can report the partitioning-protocol share of total
/// traffic.
enum class TrafficClass {
  /// Page-fetch requests, directory queries, forwards.
  kControl = 0,
  /// Page payload transfers (remote cache or remote disk reads).
  kPage = 1,
  /// Goal-partitioning protocol: agent measurement reports, coordinator
  /// allocation commands, clamp feedback.
  kPartitionProtocol = 2,
  /// Threshold-triggered heat/copy hints of the cost-based replacement
  /// policy.
  kHeatHint = 3,
};

inline constexpr int kNumTrafficClasses = 4;

const char* TrafficClassName(TrafficClass traffic_class);

/// Shared-medium local network (the paper's 100 Mbit/s interconnect, §7.1).
///
/// Messages hold the single shared medium for their transmission time
/// (bytes / bandwidth) FCFS, then incur a fixed propagation/processing
/// latency off the medium. Per-category byte and message counters feed the
/// overhead experiment.
class Network {
 public:
  struct Params {
    double bandwidth_mbit_per_s = 100.0;
    /// Fixed per-message latency (propagation + protocol stack), in ms.
    double latency_ms = 0.05;
    /// Probability that a *best-effort* message (partition-protocol report
    /// or heat hint) is lost after transmission. Page fetches and their
    /// control messages are modeled reliable (the data path retransmits
    /// below our level of abstraction); the partitioning feedback loop and
    /// the hint dissemination are explicitly designed to tolerate loss, and
    /// this knob is the failure-injection switch that proves it.
    double loss_probability = 0.0;
    /// Seed of the loss process.
    uint64_t loss_seed = 0x1055;
  };

  Network(sim::Simulator* simulator, const Params& params);

  /// Transmits `bytes` from `from` to `to`. Same-node transfers are free
  /// and always delivered. Returns false if the message was lost (only
  /// possible for best-effort categories under a nonzero loss_probability);
  /// a lost message still occupied the medium for its transmission time.
  sim::Task<bool> Transfer(NodeId from, NodeId to, uint32_t bytes,
                           TrafficClass traffic_class);

  /// Transmission time the medium is held for a message of `bytes`.
  sim::SimTime TransmissionTime(uint32_t bytes) const;

  double latency_ms() const { return params_.latency_ms; }

  uint64_t bytes_sent(TrafficClass traffic_class) const {
    return bytes_sent_[static_cast<int>(traffic_class)];
  }
  uint64_t messages_sent(TrafficClass traffic_class) const {
    return messages_sent_[static_cast<int>(traffic_class)];
  }
  uint64_t total_bytes_sent() const;
  uint64_t total_messages_sent() const;
  uint64_t messages_dropped(TrafficClass traffic_class) const {
    return messages_dropped_[static_cast<int>(traffic_class)];
  }

  const sim::Resource& medium() const { return medium_; }

 private:
  sim::Simulator* simulator_;
  Params params_;
  sim::Resource medium_;
  common::Rng loss_rng_;
  std::array<uint64_t, kNumTrafficClasses> bytes_sent_{};
  std::array<uint64_t, kNumTrafficClasses> messages_sent_{};
  std::array<uint64_t, kNumTrafficClasses> messages_dropped_{};
};

}  // namespace memgoal::net

#endif  // MEMGOAL_NET_NETWORK_H_
