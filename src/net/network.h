#ifndef MEMGOAL_NET_NETWORK_H_
#define MEMGOAL_NET_NETWORK_H_

#include <array>
#include <cstdint>
#include <functional>
#include <vector>

#include "common/rng.h"
#include "obs/trace.h"
#include "sim/resource.h"
#include "sim/simulator.h"
#include "sim/task.h"
#include "storage/types.h"

namespace memgoal::net {

/// Categories of network traffic, accounted separately so the overhead
/// experiment (§7.5) can report the partitioning-protocol share of total
/// traffic.
enum class TrafficClass {
  /// Page-fetch requests, directory queries, forwards.
  kControl = 0,
  /// Page payload transfers (remote cache or remote disk reads).
  kPage = 1,
  /// Goal-partitioning protocol: agent measurement reports, coordinator
  /// allocation commands, clamp feedback.
  kPartitionProtocol = 2,
  /// Threshold-triggered heat/copy hints of the cost-based replacement
  /// policy.
  kHeatHint = 3,
};

inline constexpr int kNumTrafficClasses = 4;

const char* TrafficClassName(TrafficClass traffic_class);

/// How best-effort message loss is generated.
enum class LossModel {
  /// Each best-effort message is dropped independently with
  /// Params::loss_probability.
  kIid,
  /// Two-state Gilbert–Elliott chain: the channel alternates between a
  /// good and a bad state (transitioning per best-effort message), with a
  /// per-state drop probability. Losses then arrive in bursts, which is
  /// what congested or fading links actually produce.
  kBurst,
};

/// Shared-medium local network (the paper's 100 Mbit/s interconnect, §7.1).
///
/// Messages hold the single shared medium for their transmission time
/// (bytes / bandwidth) FCFS, then incur a fixed propagation/processing
/// latency off the medium. Per-category byte and message counters feed the
/// overhead experiment.
class Network {
 public:
  struct Params {
    double bandwidth_mbit_per_s = 100.0;
    /// Fixed per-message latency (propagation + protocol stack), in ms.
    double latency_ms = 0.05;
    /// Probability that a *best-effort* message (partition-protocol report
    /// or heat hint) is lost after transmission. Page fetches and their
    /// control messages are modeled reliable (the data path retransmits
    /// below our level of abstraction); the partitioning feedback loop and
    /// the hint dissemination are explicitly designed to tolerate loss, and
    /// this knob is the failure-injection switch that proves it.
    double loss_probability = 0.0;
    /// Seed of the loss process.
    uint64_t loss_seed = 0x1055;
    /// Loss process shape. kIid uses loss_probability; kBurst uses the
    /// Gilbert–Elliott parameters below (loss_probability is then ignored).
    LossModel loss_model = LossModel::kIid;
    /// P(good -> bad) per best-effort message.
    double burst_good_to_bad = 0.0;
    /// P(bad -> good) per best-effort message.
    double burst_bad_to_good = 0.5;
    /// Drop probability while the channel is in the good / bad state.
    double burst_loss_good = 0.0;
    double burst_loss_bad = 1.0;
  };

  Network(sim::Simulator* simulator, const Params& params);

  /// Transmits `bytes` from `from` to `to`. Same-node transfers are free
  /// and always delivered. Returns false if the message was lost — for
  /// best-effort categories under a nonzero loss_probability, or for *any*
  /// category when the endpoints are in different sides of an active
  /// network partition. Reachability is evaluated at delivery time (after
  /// transmission + latency), so a message in flight when the cut lands is
  /// lost: that is exactly the in-flight-stale-grant case the epoch fence
  /// exists for. A lost message still occupied the medium for its
  /// transmission time. `via_storage_bus` models the dual-ported SCSI path
  /// of §2 — disk reads bypass the interconnect and are immune to
  /// partitions (but not to loss of their best-effort category, of which
  /// there are none today).
  /// Optional out-param of Transfer(): medium queueing vs. on-the-wire
  /// time (transmission + endpoint latency). Same-node transfers leave it
  /// untouched. Filled from pure Now() reads only.
  struct TransferTiming {
    double wait_ms = 0.0;
    double transfer_ms = 0.0;
  };

  sim::Task<bool> Transfer(NodeId from, NodeId to, uint32_t bytes,
                           TrafficClass traffic_class,
                           bool via_storage_bus = false,
                           TransferTiming* timing = nullptr);

  /// Transmission time the medium is held for a message of `bytes`.
  sim::SimTime TransmissionTime(uint32_t bytes) const;

  double latency_ms() const { return params_.latency_ms; }

  /// Per-node latency multiplier modeling a degraded (slow-but-alive) NIC
  /// or stack: a transfer's fixed latency is stretched by the worse of its
  /// endpoints' factors. The shared-medium transmission time is *not*
  /// scaled — a slow endpoint delays its own messages, it does not shrink
  /// the wire. Owned by the fault injection layer; 1.0 = healthy.
  void SetNodeSlowdown(NodeId node, double factor);
  double NodeSlowdown(NodeId node) const;

  uint64_t bytes_sent(TrafficClass traffic_class) const {
    return bytes_sent_[static_cast<int>(traffic_class)];
  }
  uint64_t messages_sent(TrafficClass traffic_class) const {
    return messages_sent_[static_cast<int>(traffic_class)];
  }
  uint64_t total_bytes_sent() const;
  uint64_t total_messages_sent() const;
  uint64_t messages_dropped(TrafficClass traffic_class) const {
    return messages_dropped_[static_cast<int>(traffic_class)];
  }
  /// Subset of messages_dropped lost to an active partition (as opposed to
  /// the best-effort loss process).
  uint64_t messages_partition_dropped(TrafficClass traffic_class) const {
    return messages_partition_dropped_[static_cast<int>(traffic_class)];
  }
  uint64_t total_messages_partition_dropped() const;

  /// Installs the reachability oracle (owned by the fault-injection layer).
  /// Consulted only while partition_active is set, so the healthy fast path
  /// costs a single flag test.
  void SetReachability(std::function<bool(NodeId, NodeId)> reachable) {
    reachable_ = std::move(reachable);
  }
  void SetPartitionActive(bool active) { partition_active_ = active; }
  bool partition_active() const { return partition_active_; }

  const sim::Resource& medium() const { return medium_; }

  /// Attaches a tracer; each cross-node transfer then emits a "net_transfer"
  /// complete span (cat "net") covering queueing + transmission + latency.
  /// Null (the default) disables emission entirely.
  void SetTracer(obs::Tracer* tracer) { tracer_ = tracer; }

  /// Current Gilbert–Elliott channel state (burst mode; tests).
  bool in_burst() const { return burst_bad_; }

 private:
  /// Advances the loss process for one best-effort message and reports
  /// whether it is dropped.
  bool DrawLoss();

  sim::Simulator* simulator_;
  Params params_;
  obs::Tracer* tracer_ = nullptr;
  sim::Resource medium_;
  common::Rng loss_rng_;
  bool burst_bad_ = false;
  std::function<bool(NodeId, NodeId)> reachable_;
  bool partition_active_ = false;
  std::vector<double> node_slowdown_;  // lazily sized; 1.0 = healthy
  std::array<uint64_t, kNumTrafficClasses> bytes_sent_{};
  std::array<uint64_t, kNumTrafficClasses> messages_sent_{};
  std::array<uint64_t, kNumTrafficClasses> messages_dropped_{};
  std::array<uint64_t, kNumTrafficClasses> messages_partition_dropped_{};
};

}  // namespace memgoal::net

#endif  // MEMGOAL_NET_NETWORK_H_
