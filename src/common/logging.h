#ifndef MEMGOAL_COMMON_LOGGING_H_
#define MEMGOAL_COMMON_LOGGING_H_

#include <atomic>
#include <cstdarg>
#include <string>

namespace memgoal::common {

/// Severity levels, in increasing order of importance.
enum class LogLevel {
  kTrace = 0,
  kDebug = 1,
  kInfo = 2,
  kWarn = 3,
  kError = 4,
  kOff = 5,
};

/// Minimal printf-style leveled logger writing to stderr.
///
/// Each simulation is single-threaded, but the bench TrialRunner runs many
/// simulations on concurrent threads, so the global sink must be
/// thread-safe: the level filter is a relaxed atomic load (still a single
/// integer compare on the fast path) and each message is formatted into a
/// private buffer and emitted with one stdio call, so concurrent trials
/// never interleave within a line.
class Logger {
 public:
  /// Sets the global minimum level. Messages below it are dropped.
  static void SetLevel(LogLevel level) {
    level_.store(level, std::memory_order_relaxed);
  }
  static LogLevel level() { return level_.load(std::memory_order_relaxed); }

  /// Returns true if a message at `level` would be emitted.
  static bool Enabled(LogLevel level) {
    return level >= level_.load(std::memory_order_relaxed);
  }

  /// Emits one formatted line, prefixed with the level tag.
  static void Logf(LogLevel level, const char* format, ...)
      __attribute__((format(printf, 2, 3)));

  /// Parses a level name ("trace", "debug", "info", "warn", "error", "off").
  /// Unknown names map to kInfo.
  static LogLevel ParseLevel(const std::string& name);

 private:
  static std::atomic<LogLevel> level_;
};

}  // namespace memgoal::common

#define MEMGOAL_LOG(level, ...)                                             \
  do {                                                                      \
    if (::memgoal::common::Logger::Enabled(level)) {                        \
      ::memgoal::common::Logger::Logf(level, __VA_ARGS__);                  \
    }                                                                       \
  } while (0)

#define MEMGOAL_LOG_TRACE(...) \
  MEMGOAL_LOG(::memgoal::common::LogLevel::kTrace, __VA_ARGS__)
#define MEMGOAL_LOG_DEBUG(...) \
  MEMGOAL_LOG(::memgoal::common::LogLevel::kDebug, __VA_ARGS__)
#define MEMGOAL_LOG_INFO(...) \
  MEMGOAL_LOG(::memgoal::common::LogLevel::kInfo, __VA_ARGS__)
#define MEMGOAL_LOG_WARN(...) \
  MEMGOAL_LOG(::memgoal::common::LogLevel::kWarn, __VA_ARGS__)
#define MEMGOAL_LOG_ERROR(...) \
  MEMGOAL_LOG(::memgoal::common::LogLevel::kError, __VA_ARGS__)

#endif  // MEMGOAL_COMMON_LOGGING_H_
