#ifndef MEMGOAL_COMMON_LOGGING_H_
#define MEMGOAL_COMMON_LOGGING_H_

#include <cstdarg>
#include <string>

namespace memgoal::common {

/// Severity levels, in increasing order of importance.
enum class LogLevel {
  kTrace = 0,
  kDebug = 1,
  kInfo = 2,
  kWarn = 3,
  kError = 4,
  kOff = 5,
};

/// Minimal printf-style leveled logger writing to stderr.
///
/// The logger is intentionally global and unsynchronized: the simulator is
/// single-threaded by design, and benchmarks want zero logging overhead when
/// the level filter rejects a message (a single integer compare).
class Logger {
 public:
  /// Sets the global minimum level. Messages below it are dropped.
  static void SetLevel(LogLevel level) { level_ = level; }
  static LogLevel level() { return level_; }

  /// Returns true if a message at `level` would be emitted.
  static bool Enabled(LogLevel level) { return level >= level_; }

  /// Emits one formatted line, prefixed with the level tag.
  static void Logf(LogLevel level, const char* format, ...)
      __attribute__((format(printf, 2, 3)));

  /// Parses a level name ("trace", "debug", "info", "warn", "error", "off").
  /// Unknown names map to kInfo.
  static LogLevel ParseLevel(const std::string& name);

 private:
  static LogLevel level_;
};

}  // namespace memgoal::common

#define MEMGOAL_LOG(level, ...)                                             \
  do {                                                                      \
    if (::memgoal::common::Logger::Enabled(level)) {                        \
      ::memgoal::common::Logger::Logf(level, __VA_ARGS__);                  \
    }                                                                       \
  } while (0)

#define MEMGOAL_LOG_TRACE(...) \
  MEMGOAL_LOG(::memgoal::common::LogLevel::kTrace, __VA_ARGS__)
#define MEMGOAL_LOG_DEBUG(...) \
  MEMGOAL_LOG(::memgoal::common::LogLevel::kDebug, __VA_ARGS__)
#define MEMGOAL_LOG_INFO(...) \
  MEMGOAL_LOG(::memgoal::common::LogLevel::kInfo, __VA_ARGS__)
#define MEMGOAL_LOG_WARN(...) \
  MEMGOAL_LOG(::memgoal::common::LogLevel::kWarn, __VA_ARGS__)
#define MEMGOAL_LOG_ERROR(...) \
  MEMGOAL_LOG(::memgoal::common::LogLevel::kError, __VA_ARGS__)

#endif  // MEMGOAL_COMMON_LOGGING_H_
