#include "common/stats.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.h"

namespace memgoal::common {

void RunningStats::Add(double x) {
  if (count_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

void RunningStats::Reset() { *this = RunningStats(); }

void RunningStats::Merge(const RunningStats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(count_);
  const double nb = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double n = na + nb;
  mean_ += delta * nb / n;
  m2_ += other.m2_ + delta * delta * na * nb / n;
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double RunningStats::std_error() const {
  if (count_ < 2) return 0.0;
  return stddev() / std::sqrt(static_cast<double>(count_));
}

namespace {

// Two-sided Student's t critical values, rows are degrees of freedom
// 1..30, columns are levels {0.90, 0.95, 0.99}.
constexpr double kTTable[30][3] = {
    {6.314, 12.706, 63.657}, {2.920, 4.303, 9.925},  {2.353, 3.182, 5.841},
    {2.132, 2.776, 4.604},   {2.015, 2.571, 4.032},  {1.943, 2.447, 3.707},
    {1.895, 2.365, 3.499},   {1.860, 2.306, 3.355},  {1.833, 2.262, 3.250},
    {1.812, 2.228, 3.169},   {1.796, 2.201, 3.106},  {1.782, 2.179, 3.055},
    {1.771, 2.160, 3.012},   {1.761, 2.145, 2.977},  {1.753, 2.131, 2.947},
    {1.746, 2.120, 2.921},   {1.740, 2.110, 2.898},  {1.734, 2.101, 2.878},
    {1.729, 2.093, 2.861},   {1.725, 2.086, 2.845},  {1.721, 2.080, 2.831},
    {1.717, 2.074, 2.819},   {1.714, 2.069, 2.807},  {1.711, 2.064, 2.797},
    {1.708, 2.060, 2.787},   {1.706, 2.056, 2.779},  {1.703, 2.052, 2.771},
    {1.701, 2.048, 2.763},   {1.699, 2.045, 2.756},  {1.697, 2.042, 2.750}};

constexpr double kZValues[3] = {1.645, 1.960, 2.576};

// Confidence levels may arrive via config parsing or arithmetic, so 0.90
// can show up as 0.8999999...; match with a tolerance instead of ==.
constexpr double kLevelTolerance = 1e-6;

int LevelIndex(double level) {
  if (std::abs(level - 0.90) <= kLevelTolerance) return 0;
  if (std::abs(level - 0.95) <= kLevelTolerance) return 1;
  if (std::abs(level - 0.99) <= kLevelTolerance) return 2;
  MEMGOAL_CHECK_MSG(false, "unsupported confidence level");
  return 2;
}

}  // namespace

double ConfidenceHalfWidth(const RunningStats& stats, double level) {
  const int idx = LevelIndex(level);
  if (stats.count() < 2) return std::numeric_limits<double>::infinity();
  const int64_t df = stats.count() - 1;
  const double crit =
      df <= 30 ? kTTable[df - 1][idx] : kZValues[idx];
  return crit * stats.std_error();
}

void TimeWeightedMean::Start(double t, double v) {
  started_ = true;
  start_time_ = t;
  last_time_ = t;
  value_ = v;
  integral_ = 0.0;
}

void TimeWeightedMean::Update(double t, double v) {
  MEMGOAL_CHECK(started_);
  MEMGOAL_CHECK(t >= last_time_);
  integral_ += value_ * (t - last_time_);
  last_time_ = t;
  value_ = v;
}

double TimeWeightedMean::MeanAt(double t) const {
  MEMGOAL_CHECK(started_);
  MEMGOAL_CHECK(t >= last_time_);
  const double span = t - start_time_;
  if (span <= 0.0) return value_;
  const double total = integral_ + value_ * (t - last_time_);
  return total / span;
}

Histogram::Histogram(double lo, double hi, int num_buckets)
    : lo_(lo), hi_(hi), width_((hi - lo) / num_buckets),
      buckets_(static_cast<size_t>(num_buckets), 0) {
  MEMGOAL_CHECK(hi > lo);
  MEMGOAL_CHECK(num_buckets > 0);
}

void Histogram::Add(double x) {
  ++count_;
  if (x < lo_) {
    ++underflow_;
    return;
  }
  if (x >= hi_) {
    ++overflow_;
    return;
  }
  const auto idx = static_cast<size_t>((x - lo_) / width_);
  ++buckets_[std::min(idx, buckets_.size() - 1)];
}

void Histogram::Reset() {
  std::fill(buckets_.begin(), buckets_.end(), 0);
  underflow_ = 0;
  overflow_ = 0;
  count_ = 0;
}

Histogram::QuantileValue Histogram::QuantileWithSaturation(double q) const {
  if (count_ == 0) return {0.0, false};
  MEMGOAL_CHECK(q >= 0.0 && q <= 1.0);
  const double target = q * static_cast<double>(count_);
  double cum = static_cast<double>(underflow_);
  if (target <= cum) return {lo_, underflow_ > 0};
  for (size_t i = 0; i < buckets_.size(); ++i) {
    const double next = cum + static_cast<double>(buckets_[i]);
    if (target <= next && buckets_[i] > 0) {
      const double frac = (target - cum) / static_cast<double>(buckets_[i]);
      return {lo_ + (static_cast<double>(i) + frac) * width_, false};
    }
    cum = next;
  }
  // The quantile lands in the overflow bucket: hi_ is a lower bound on the
  // true value, not an estimate of it.
  return {hi_, true};
}

}  // namespace memgoal::common
