#ifndef MEMGOAL_COMMON_STATS_H_
#define MEMGOAL_COMMON_STATS_H_

#include <cstdint>
#include <vector>

namespace memgoal::common {

/// Numerically stable running mean/variance (Welford's algorithm), plus
/// min/max. Used for per-interval response-time aggregation and for the
/// repeated-experiment confidence intervals of the evaluation (§7.1 of the
/// paper demands 99% confidence on convergence speed).
class RunningStats {
 public:
  void Add(double x);
  void Reset();

  /// Merges another accumulator into this one (parallel Welford merge).
  void Merge(const RunningStats& other);

  int64_t count() const { return count_; }
  double mean() const { return count_ > 0 ? mean_ : 0.0; }
  /// Unbiased sample variance; 0 for fewer than two samples.
  double variance() const;
  double stddev() const;
  /// Standard error of the mean; 0 for fewer than two samples.
  double std_error() const;
  double min() const { return min_; }
  double max() const { return max_; }
  double sum() const { return mean_ * static_cast<double>(count_); }

 private:
  int64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Half-width of a two-sided confidence interval for the mean of the given
/// accumulator. `level` must be one of 0.90, 0.95, 0.99. Uses Student's t
/// critical values for small sample counts and the normal approximation for
/// n > 30. Returns +infinity for fewer than two samples.
double ConfidenceHalfWidth(const RunningStats& stats, double level);

/// Integrates a piecewise-constant signal over (simulated) time, yielding a
/// time-weighted mean. Used for "mean dedicated buffer size" style metrics.
class TimeWeightedMean {
 public:
  /// Starts (or restarts) integration at time `t` with value `v`.
  void Start(double t, double v);

  /// Records that the signal changed to `v` at time `t` (t must not
  /// decrease).
  void Update(double t, double v);

  /// Time-weighted mean over [start, t]. Requires t >= start time.
  double MeanAt(double t) const;

  double current_value() const { return value_; }

 private:
  bool started_ = false;
  double start_time_ = 0.0;
  double last_time_ = 0.0;
  double value_ = 0.0;
  double integral_ = 0.0;
};

/// Fixed-width bucket histogram over [lo, hi) with overflow/underflow
/// buckets. Supports approximate quantiles by linear interpolation within a
/// bucket.
class Histogram {
 public:
  Histogram(double lo, double hi, int num_buckets);

  void Add(double x);
  void Reset();

  int64_t count() const { return count_; }

  /// Quantile result plus whether the value was clipped at a histogram
  /// bound (the requested quantile fell in the under/overflow bucket, so
  /// `value` is a bound, not an estimate of the true quantile).
  struct QuantileValue {
    double value = 0.0;
    bool saturated = false;
  };

  /// Approximate q-quantile (q in [0,1]). Returns lo/hi bounds with
  /// `saturated` set for samples in the under/overflow buckets. Returns
  /// {0, false} when empty.
  QuantileValue QuantileWithSaturation(double q) const;

  /// Value-only convenience wrapper around QuantileWithSaturation.
  double Quantile(double q) const { return QuantileWithSaturation(q).value; }

  const std::vector<int64_t>& buckets() const { return buckets_; }
  int64_t underflow() const { return underflow_; }
  int64_t overflow() const { return overflow_; }

 private:
  double lo_;
  double hi_;
  double width_;
  std::vector<int64_t> buckets_;
  int64_t underflow_ = 0;
  int64_t overflow_ = 0;
  int64_t count_ = 0;
};

}  // namespace memgoal::common

#endif  // MEMGOAL_COMMON_STATS_H_
