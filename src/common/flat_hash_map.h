#ifndef MEMGOAL_COMMON_FLAT_HASH_MAP_H_
#define MEMGOAL_COMMON_FLAT_HASH_MAP_H_

#include <cstdint>
#include <cstddef>
#include <memory>
#include <utility>
#include <vector>

#include "common/check.h"

namespace memgoal::common {

/// Mixing hash for integral keys. Page and node ids are dense small
/// integers; an identity hash (std::hash on libstdc++) combined with a
/// power-of-two table would make every erase/re-insert pattern probe the
/// same run of slots, so the id is scrambled through a 64-bit
/// multiply-xorshift first.
struct IntegralHash {
  size_t operator()(uint64_t key) const {
    uint64_t h = key * 0x9E3779B97F4A7C15ull;
    h ^= h >> 32;
    return static_cast<size_t>(h);
  }
};

/// Open-addressing hash map with linear probing, used on the simulation's
/// hottest id-keyed paths (heap position index, heat histories, reported
/// heat) in place of std::unordered_map, which allocates one node per
/// element and chases a pointer per probe.
///
///  - power-of-two capacity, control byte per slot (empty / full /
///    tombstone), values stored inline;
///  - erase writes a tombstone (no backward shift), so iterators stay
///    valid across erase-during-iteration; tombstones are reclaimed at the
///    next rehash;
///  - grows at ~7/8 occupancy (full + tombstones) to twice the live size.
///
/// V must be movable; K must be equality-comparable and hashable by Hash.
/// Iteration order is an implementation detail (as with unordered_map) —
/// callers that need determinism must sort or otherwise order themselves.
template <typename K, typename V, typename Hash = IntegralHash>
class FlatHashMap {
  enum : uint8_t { kEmpty = 0, kFull = 1, kTombstone = 2 };

  struct Slot {
    K key;
    V value;
  };

 public:
  FlatHashMap() = default;
  ~FlatHashMap() { DestroyAll(); }

  FlatHashMap(FlatHashMap&& other) noexcept { MoveFrom(std::move(other)); }
  FlatHashMap& operator=(FlatHashMap&& other) noexcept {
    if (this != &other) {
      DestroyAll();
      MoveFrom(std::move(other));
    }
    return *this;
  }
  FlatHashMap(const FlatHashMap&) = delete;
  FlatHashMap& operator=(const FlatHashMap&) = delete;

  class iterator {
   public:
    iterator(FlatHashMap* map, size_t index) : map_(map), index_(index) {
      SkipToFull();
    }
    std::pair<const K&, V&> operator*() const {
      Slot& slot = map_->SlotAt(index_);
      return {slot.key, slot.value};
    }
    const K& key() const { return map_->SlotAt(index_).key; }
    V& value() const { return map_->SlotAt(index_).value; }
    iterator& operator++() {
      ++index_;
      SkipToFull();
      return *this;
    }
    bool operator==(const iterator& other) const {
      return index_ == other.index_;
    }
    bool operator!=(const iterator& other) const { return !(*this == other); }

   private:
    friend class FlatHashMap;
    void SkipToFull() {
      while (index_ < map_->capacity_ && map_->ctrl_[index_] != kFull) {
        ++index_;
      }
    }
    FlatHashMap* map_;
    size_t index_;
  };

  iterator begin() { return iterator(this, 0); }
  iterator end() { return iterator(this, capacity_); }

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  void clear() {
    DestroyAll();
    slots_ = nullptr;
    ctrl_.clear();
    capacity_ = 0;
    size_ = 0;
    tombstones_ = 0;
  }

  void reserve(size_t n) {
    size_t cap = 16;
    while (cap * 7 < n * 8) cap *= 2;
    if (cap > capacity_) Rehash(cap);
  }

  /// Pointer to the value for `key`, or nullptr if absent.
  V* Find(const K& key) {
    if (capacity_ == 0) return nullptr;
    const size_t index = FindIndex(key);
    return index == kNotFound ? nullptr : &SlotAt(index).value;
  }
  const V* Find(const K& key) const {
    return const_cast<FlatHashMap*>(this)->Find(key);
  }

  bool Contains(const K& key) const { return Find(key) != nullptr; }

  V& operator[](const K& key) {
    ReserveForInsert();
    size_t index = FindIndex(key);
    if (index != kNotFound) return SlotAt(index).value;
    index = InsertSlot(key);
    ::new (&SlotAt(index).value) V();
    return SlotAt(index).value;
  }

  /// Inserts key -> value, or overwrites the existing mapping.
  void InsertOrAssign(const K& key, V value) {
    ReserveForInsert();
    size_t index = FindIndex(key);
    if (index != kNotFound) {
      SlotAt(index).value = std::move(value);
      return;
    }
    index = InsertSlot(key);
    ::new (&SlotAt(index).value) V(std::move(value));
  }

  /// Removes `key` if present; returns the number of elements removed.
  size_t Erase(const K& key) {
    if (capacity_ == 0) return 0;
    const size_t index = FindIndex(key);
    if (index == kNotFound) return 0;
    EraseAt(index);
    return 1;
  }

  /// Erases the element at `it` and returns an iterator to the next
  /// element. `it` must dereference to a live element.
  iterator Erase(iterator it) {
    MEMGOAL_DCHECK(it.map_ == this && ctrl_[it.index_] == kFull);
    EraseAt(it.index_);
    it.SkipToFull();
    return it;
  }

 private:
  static constexpr size_t kNotFound = static_cast<size_t>(-1);

  Slot& SlotAt(size_t index) {
    return reinterpret_cast<Slot*>(slots_.get())[index];
  }

  size_t FindIndex(const K& key) const {
    if (capacity_ == 0) return kNotFound;
    const size_t mask = capacity_ - 1;
    size_t index = Hash{}(key)&mask;
    while (true) {
      const uint8_t ctrl = ctrl_[index];
      if (ctrl == kEmpty) return kNotFound;
      if (ctrl == kFull) {
        const Slot& slot =
            reinterpret_cast<const Slot*>(slots_.get())[index];
        if (slot.key == key) return index;
      }
      index = (index + 1) & mask;
    }
  }

  /// Claims a slot for `key` (which must be absent) and returns its index.
  /// The value is left unconstructed — the caller placement-news it.
  size_t InsertSlot(const K& key) {
    const size_t mask = capacity_ - 1;
    size_t index = Hash{}(key)&mask;
    while (ctrl_[index] == kFull) index = (index + 1) & mask;
    if (ctrl_[index] == kTombstone) --tombstones_;
    ctrl_[index] = kFull;
    Slot& slot = SlotAt(index);
    ::new (&slot.key) K(key);
    ++size_;
    return index;
  }

  void EraseAt(size_t index) {
    Slot& slot = SlotAt(index);
    slot.key.~K();
    slot.value.~V();
    ctrl_[index] = kTombstone;
    ++tombstones_;
    --size_;
  }

  void ReserveForInsert() {
    if (capacity_ == 0) {
      Rehash(16);
    } else if ((size_ + tombstones_ + 1) * 8 > capacity_ * 7) {
      // Double relative to the live size; a tombstone-heavy table of
      // stable size rehashes in place.
      size_t cap = 16;
      while (cap * 7 < (size_ + 1) * 8 * 2) cap *= 2;
      Rehash(cap);
    }
  }

  void Rehash(size_t new_capacity) {
    std::unique_ptr<unsigned char[]> old_slots = std::move(slots_);
    std::vector<uint8_t> old_ctrl = std::move(ctrl_);
    const size_t old_capacity = capacity_;

    static_assert(alignof(Slot) <= alignof(std::max_align_t));
    slots_.reset(new unsigned char[new_capacity * sizeof(Slot)]);
    ctrl_.assign(new_capacity, kEmpty);
    capacity_ = new_capacity;
    size_ = 0;
    tombstones_ = 0;

    Slot* old = reinterpret_cast<Slot*>(old_slots.get());
    for (size_t i = 0; i < old_capacity; ++i) {
      if (old_ctrl[i] != kFull) continue;
      const size_t index = InsertSlot(old[i].key);
      ::new (&SlotAt(index).value) V(std::move(old[i].value));
      old[i].key.~K();
      old[i].value.~V();
    }
  }

  void DestroyAll() {
    for (size_t i = 0; i < capacity_; ++i) {
      if (ctrl_[i] != kFull) continue;
      Slot& slot = SlotAt(i);
      slot.key.~K();
      slot.value.~V();
    }
  }

  void MoveFrom(FlatHashMap&& other) {
    slots_ = std::move(other.slots_);
    ctrl_ = std::move(other.ctrl_);
    capacity_ = other.capacity_;
    size_ = other.size_;
    tombstones_ = other.tombstones_;
    other.capacity_ = 0;
    other.size_ = 0;
    other.tombstones_ = 0;
    other.ctrl_.clear();
  }

  // Raw storage: slots are constructed/destroyed individually as ctrl_
  // flips between full and not-full.
  std::unique_ptr<unsigned char[]> slots_;
  std::vector<uint8_t> ctrl_;
  size_t capacity_ = 0;
  size_t size_ = 0;
  size_t tombstones_ = 0;
};

/// Set adapter over FlatHashMap: same probing and tombstone behavior, keys
/// only (the mapped byte is dead weight the padding already paid for).
template <typename K, typename Hash = IntegralHash>
class FlatHashSet {
 public:
  size_t size() const { return map_.size(); }
  bool empty() const { return map_.empty(); }
  void clear() { map_.clear(); }
  void reserve(size_t n) { map_.reserve(n); }

  bool Contains(const K& key) const { return map_.Contains(key); }

  /// Inserts `key`; returns true if it was newly added.
  bool Insert(const K& key) {
    const size_t before = map_.size();
    map_[key] = 0;
    return map_.size() != before;
  }

  /// Removes `key` if present; returns the number of elements removed.
  size_t Erase(const K& key) { return map_.Erase(key); }

  class iterator {
   public:
    explicit iterator(typename FlatHashMap<K, char, Hash>::iterator it)
        : it_(it) {}
    const K& operator*() const { return it_.key(); }
    iterator& operator++() {
      ++it_;
      return *this;
    }
    bool operator==(const iterator& other) const { return it_ == other.it_; }
    bool operator!=(const iterator& other) const { return it_ != other.it_; }

   private:
    typename FlatHashMap<K, char, Hash>::iterator it_;
  };

  iterator begin() const { return iterator(map_.begin()); }
  iterator end() const { return iterator(map_.end()); }

 private:
  // Iteration is non-mutating but the underlying iterator is not const;
  // the set exposes keys by const reference only.
  mutable FlatHashMap<K, char, Hash> map_;
};

}  // namespace memgoal::common

#endif  // MEMGOAL_COMMON_FLAT_HASH_MAP_H_
