#ifndef MEMGOAL_COMMON_RING_BUFFER_H_
#define MEMGOAL_COMMON_RING_BUFFER_H_

#include <cstddef>
#include <memory>
#include <utility>

#include "common/check.h"

namespace memgoal::common {

/// Growable FIFO ring buffer (power-of-two capacity).
///
/// Replaces std::deque on the simulator's queueing paths: a deque whose
/// head and tail march forward (push_back/pop_front, the only pattern a
/// FIFO produces) allocates and frees a chunk every few dozen elements
/// forever, while a ring reuses one block and only reallocates on actual
/// growth of the high-water mark.
template <typename T>
class RingBuffer {
 public:
  RingBuffer() = default;
  RingBuffer(RingBuffer&&) noexcept = default;
  RingBuffer& operator=(RingBuffer&&) noexcept = default;
  RingBuffer(const RingBuffer&) = delete;
  RingBuffer& operator=(const RingBuffer&) = delete;

  size_t size() const { return tail_ - head_; }
  bool empty() const { return head_ == tail_; }

  void push_back(T value) {
    if (size() == capacity_) Grow();
    slots_[tail_ & (capacity_ - 1)] = std::move(value);
    ++tail_;
  }

  T& front() {
    MEMGOAL_DCHECK(!empty());
    return slots_[head_ & (capacity_ - 1)];
  }
  const T& front() const {
    return const_cast<RingBuffer*>(this)->front();
  }

  void pop_front() {
    MEMGOAL_DCHECK(!empty());
    ++head_;
  }

 private:
  void Grow() {
    const size_t new_capacity = capacity_ == 0 ? 8 : capacity_ * 2;
    std::unique_ptr<T[]> fresh(new T[new_capacity]);
    const size_t count = size();
    for (size_t i = 0; i < count; ++i) {
      fresh[i] = std::move(slots_[(head_ + i) & (capacity_ - 1)]);
    }
    slots_ = std::move(fresh);
    capacity_ = new_capacity;
    head_ = 0;
    tail_ = count;
  }

  std::unique_ptr<T[]> slots_;
  size_t capacity_ = 0;
  size_t head_ = 0;  // monotonically increasing; masked on access
  size_t tail_ = 0;
};

}  // namespace memgoal::common

#endif  // MEMGOAL_COMMON_RING_BUFFER_H_
