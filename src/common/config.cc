#include "common/config.h"

#include <algorithm>
#include <cstdlib>
#include <sstream>

#include "common/check.h"

namespace memgoal::common {

namespace {

std::string Trim(const std::string& s) {
  size_t begin = s.find_first_not_of(" \t\r");
  if (begin == std::string::npos) return "";
  size_t end = s.find_last_not_of(" \t\r");
  return s.substr(begin, end - begin + 1);
}

}  // namespace

bool Config::ParseArgs(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string token = argv[i];
    // GNU-style spellings map onto the key=value store: `--threads=8` is
    // `threads=8` and a bare switch like `--quick` is `quick=1` (which the
    // boolean getter accepts as true).
    const bool dashed = token.rfind("--", 0) == 0;
    if (dashed) {
      token.erase(0, 2);
      // Dashed keys use the GNU spelling of the underscored scenario key:
      // `--trace-out=x` is `trace_out=x`. Only the key part is rewritten.
      const size_t key_end = std::min(token.find('='), token.size());
      for (size_t j = 0; j < key_end; ++j) {
        if (token[j] == '-') token[j] = '_';
      }
    }
    const size_t eq = token.find('=');
    if (eq == std::string::npos) {
      if (dashed && !token.empty()) {
        Set(token, "1");
        dashed_.insert(token);
        continue;
      }
      error_ = std::string("malformed argument (expected key=value or "
                           "--flag): ") +
               argv[i];
      return false;
    }
    if (eq == 0) {
      error_ = std::string("malformed argument (expected key=value or "
                           "--flag): ") +
               argv[i];
      return false;
    }
    Set(token.substr(0, eq), token.substr(eq + 1));
    if (dashed) dashed_.insert(token.substr(0, eq));
  }
  return true;
}

bool Config::ParseText(const std::string& text) {
  std::istringstream in(text);
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    line = Trim(line);
    if (line.empty()) continue;
    const size_t eq = line.find('=');
    if (eq == std::string::npos || eq == 0) {
      error_ = "malformed line " + std::to_string(lineno) + ": " + line;
      return false;
    }
    Set(Trim(line.substr(0, eq)), Trim(line.substr(eq + 1)));
  }
  return true;
}

void Config::Set(const std::string& key, const std::string& value) {
  values_[key] = value;
  used_[key] = false;
}

bool Config::Has(const std::string& key) const {
  return values_.count(key) > 0;
}

std::optional<std::string> Config::Lookup(const std::string& key) {
  known_.insert(key);
  auto it = values_.find(key);
  if (it == values_.end()) return std::nullopt;
  used_[key] = true;
  return it->second;
}

std::string Config::GetString(const std::string& key,
                              const std::string& fallback) {
  return Lookup(key).value_or(fallback);
}

int64_t Config::GetInt(const std::string& key, int64_t fallback) {
  auto v = Lookup(key);
  if (!v) return fallback;
  char* end = nullptr;
  const int64_t result = std::strtoll(v->c_str(), &end, 10);
  MEMGOAL_CHECK_MSG(end != v->c_str() && *end == '\0',
                    ("bad integer for key " + key + ": " + *v).c_str());
  return result;
}

double Config::GetDouble(const std::string& key, double fallback) {
  auto v = Lookup(key);
  if (!v) return fallback;
  char* end = nullptr;
  const double result = std::strtod(v->c_str(), &end);
  MEMGOAL_CHECK_MSG(end != v->c_str() && *end == '\0',
                    ("bad double for key " + key + ": " + *v).c_str());
  return result;
}

bool Config::GetBool(const std::string& key, bool fallback) {
  auto v = Lookup(key);
  if (!v) return fallback;
  if (*v == "true" || *v == "1" || *v == "yes" || *v == "on") return true;
  if (*v == "false" || *v == "0" || *v == "no" || *v == "off") return false;
  MEMGOAL_CHECK_MSG(false, ("bad boolean for key " + key + ": " + *v).c_str());
  return fallback;
}

std::vector<std::string> Config::UnusedKeys() const {
  std::vector<std::string> keys;
  for (const auto& [key, was_used] : used_) {
    if (!was_used) keys.push_back(key);
  }
  return keys;
}

namespace {

size_t EditDistance(const std::string& a, const std::string& b) {
  std::vector<size_t> row(b.size() + 1);
  for (size_t j = 0; j <= b.size(); ++j) row[j] = j;
  for (size_t i = 1; i <= a.size(); ++i) {
    size_t diagonal = row[0];
    row[0] = i;
    for (size_t j = 1; j <= b.size(); ++j) {
      const size_t substitution =
          diagonal + (a[i - 1] == b[j - 1] ? 0 : 1);
      diagonal = row[j];
      row[j] = std::min({row[j] + 1, row[j - 1] + 1, substitution});
    }
  }
  return row[b.size()];
}

std::string GnuSpelling(const std::string& key) {
  std::string flag = "--" + key;
  std::replace(flag.begin(), flag.end(), '_', '-');
  return flag;
}

}  // namespace

std::string NearestSuggestion(const std::string& value,
                              const std::vector<std::string>& candidates) {
  size_t best = 3;
  std::string suggestion;
  for (const std::string& candidate : candidates) {
    const size_t distance = EditDistance(value, candidate);
    if (distance < best) {
      best = distance;
      suggestion = candidate;
    }
  }
  return suggestion;
}

bool Config::RejectUnknownFlags() {
  for (const std::string& key : dashed_) {
    if (used_.at(key)) continue;
    error_ = "unknown flag " + GnuSpelling(key);
    // Nearest key any getter queried: far enough for a dropped letter or
    // transposed pair, near enough not to suggest unrelated knobs.
    const std::string suggestion = NearestSuggestion(
        key, std::vector<std::string>(known_.begin(), known_.end()));
    if (!suggestion.empty()) {
      error_ += " (did you mean " + GnuSpelling(suggestion) + "?)";
    }
    return false;
  }
  return true;
}

}  // namespace memgoal::common
