#include "common/logging.h"

#include <cstdio>

namespace memgoal::common {

LogLevel Logger::level_ = LogLevel::kWarn;

namespace {

const char* LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace:
      return "TRACE";
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}

}  // namespace

void Logger::Logf(LogLevel level, const char* format, ...) {
  if (!Enabled(level)) return;
  std::fprintf(stderr, "[%s] ", LevelTag(level));
  va_list args;
  va_start(args, format);
  std::vfprintf(stderr, format, args);
  va_end(args);
  std::fputc('\n', stderr);
}

LogLevel Logger::ParseLevel(const std::string& name) {
  if (name == "trace") return LogLevel::kTrace;
  if (name == "debug") return LogLevel::kDebug;
  if (name == "info") return LogLevel::kInfo;
  if (name == "warn") return LogLevel::kWarn;
  if (name == "error") return LogLevel::kError;
  if (name == "off") return LogLevel::kOff;
  return LogLevel::kInfo;
}

}  // namespace memgoal::common
