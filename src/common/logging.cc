#include "common/logging.h"

#include <cstdio>
#include <vector>

namespace memgoal::common {

std::atomic<LogLevel> Logger::level_{LogLevel::kWarn};

namespace {

const char* LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace:
      return "TRACE";
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}

}  // namespace

void Logger::Logf(LogLevel level, const char* format, ...) {
  if (!Enabled(level)) return;
  // Format into a private buffer and emit with a single stdio call so that
  // messages from concurrent bench trials never interleave within a line
  // (each stdio call locks the stream; separate calls do not compose).
  char stack_buf[512];
  va_list args;
  va_start(args, format);
  int needed = std::vsnprintf(stack_buf, sizeof stack_buf, format, args);
  va_end(args);
  if (needed < 0) return;
  if (static_cast<size_t>(needed) < sizeof stack_buf) {
    std::fprintf(stderr, "[%s] %s\n", LevelTag(level), stack_buf);
    return;
  }
  std::vector<char> heap_buf(static_cast<size_t>(needed) + 1);
  va_start(args, format);
  std::vsnprintf(heap_buf.data(), heap_buf.size(), format, args);
  va_end(args);
  std::fprintf(stderr, "[%s] %s\n", LevelTag(level), heap_buf.data());
}

LogLevel Logger::ParseLevel(const std::string& name) {
  if (name == "trace") return LogLevel::kTrace;
  if (name == "debug") return LogLevel::kDebug;
  if (name == "info") return LogLevel::kInfo;
  if (name == "warn") return LogLevel::kWarn;
  if (name == "error") return LogLevel::kError;
  if (name == "off") return LogLevel::kOff;
  return LogLevel::kInfo;
}

}  // namespace memgoal::common
