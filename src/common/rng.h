#ifndef MEMGOAL_COMMON_RNG_H_
#define MEMGOAL_COMMON_RNG_H_

#include <cstdint>
#include <random>

namespace memgoal::common {

/// Seeded pseudo-random number generator used throughout the simulator.
///
/// All stochastic behaviour in a simulation run flows through explicitly
/// seeded `Rng` instances so that runs are bit-for-bit reproducible. Each
/// independent stochastic stream (one per node/class operation source, one
/// for goal selection, ...) should own a dedicated `Rng`, typically derived
/// from a master seed via `Fork()`, so adding a stream never perturbs the
/// draws of existing streams.
class Rng {
 public:
  explicit Rng(uint64_t seed) : engine_(seed) {}

  /// Derives an independent child generator. Deterministic: forking the same
  /// parent state twice yields two different children, but re-running the
  /// program yields the same children again.
  Rng Fork() { return Rng(engine_()); }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return std::uniform_real_distribution<double>(0.0, 1.0)(engine_);
  }

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi) {
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  /// Uniform integer in [lo, hi] (inclusive).
  int64_t UniformInt(int64_t lo, int64_t hi) {
    return std::uniform_int_distribution<int64_t>(lo, hi)(engine_);
  }

  /// Exponentially distributed value with the given mean (> 0).
  double Exponential(double mean) {
    return std::exponential_distribution<double>(1.0 / mean)(engine_);
  }

  /// Raw 64-bit draw.
  uint64_t NextUint64() { return engine_(); }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace memgoal::common

#endif  // MEMGOAL_COMMON_RNG_H_
