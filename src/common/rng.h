#ifndef MEMGOAL_COMMON_RNG_H_
#define MEMGOAL_COMMON_RNG_H_

#include <cstdint>
#include <random>

namespace memgoal::common {

/// SplitMix64 output mix (Steele, Lea & Flood; also xorshift-family seeding).
/// Bijective on uint64_t, so distinct inputs never collide.
inline constexpr uint64_t Mix64(uint64_t x) {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ull;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebull;
  x ^= x >> 31;
  return x;
}

/// Stable seed for stream `stream_index` of the experiment keyed by
/// `master_seed`. Unlike `Rng::Fork()`, which advances the parent engine and
/// therefore depends on how many forks happened before, this is a pure
/// function of the pair: stream k of seed s is the same value no matter
/// which streams were derived earlier, from which thread, or in what order.
/// Parallel trial harnesses use it so that trial k's randomness is
/// identical for any thread count and any scheduling.
inline constexpr uint64_t DeriveStreamSeed(uint64_t master_seed,
                                           uint64_t stream_index) {
  // Two chained splitmix rounds keyed by the golden-ratio increment: the
  // first decorrelates the (typically small, sequential) master seeds, the
  // second folds in the (equally small) stream index.
  constexpr uint64_t kGolden = 0x9e3779b97f4a7c15ull;
  return Mix64(Mix64(master_seed + kGolden) + kGolden * (stream_index + 1));
}

/// Seeded pseudo-random number generator used throughout the simulator.
///
/// All stochastic behaviour in a simulation run flows through explicitly
/// seeded `Rng` instances so that runs are bit-for-bit reproducible. Each
/// independent stochastic stream (one per node/class operation source, one
/// for goal selection, ...) should own a dedicated `Rng`, typically derived
/// from a master seed via `Fork()`, so adding a stream never perturbs the
/// draws of existing streams.
class Rng {
 public:
  explicit Rng(uint64_t seed) : engine_(seed) {}

  /// Derives an independent child generator. Deterministic: forking the same
  /// parent state twice yields two different children, but re-running the
  /// program yields the same children again.
  Rng Fork() { return Rng(engine_()); }

  /// Stateless alternative to `Fork()` for parallel trials: the generator
  /// for stream `stream_index` of `master_seed`, independent of any other
  /// stream ever derived (see DeriveStreamSeed).
  static Rng ForStream(uint64_t master_seed, uint64_t stream_index) {
    return Rng(DeriveStreamSeed(master_seed, stream_index));
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return std::uniform_real_distribution<double>(0.0, 1.0)(engine_);
  }

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi) {
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  /// Uniform integer in [lo, hi] (inclusive).
  int64_t UniformInt(int64_t lo, int64_t hi) {
    return std::uniform_int_distribution<int64_t>(lo, hi)(engine_);
  }

  /// Exponentially distributed value with the given mean (> 0).
  double Exponential(double mean) {
    return std::exponential_distribution<double>(1.0 / mean)(engine_);
  }

  /// Raw 64-bit draw.
  uint64_t NextUint64() { return engine_(); }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace memgoal::common

#endif  // MEMGOAL_COMMON_RNG_H_
