#ifndef MEMGOAL_COMMON_INLINE_VECTOR_H_
#define MEMGOAL_COMMON_INLINE_VECTOR_H_

#include <cstddef>
#include <memory>
#include <new>
#include <utility>

#include "common/check.h"

namespace memgoal::common {

/// Contiguous dynamic array with N elements of inline storage.
///
/// The simulation's hot paths pass around tiny short-lived collections — an
/// operation's page list, a fetch's candidate replicas, an event's waiting
/// coroutines — whose sizes are almost always a handful. std::vector pays a
/// heap round trip for each; InlineVector keeps up to N elements in the
/// object itself and only spills to the heap (growing geometrically) past
/// that. Move semantics: heap storage is stolen, inline elements are moved
/// one by one. Iterators/pointers invalidate on growth, as with vector.
template <typename T, size_t N>
class InlineVector {
 public:
  InlineVector() = default;

  InlineVector(size_t count) {  // NOLINT: match vector(size_t)
    for (size_t i = 0; i < count; ++i) emplace_back();
  }

  InlineVector(InlineVector&& other) noexcept { MoveFrom(std::move(other)); }
  InlineVector& operator=(InlineVector&& other) noexcept {
    if (this != &other) {
      Destroy();
      MoveFrom(std::move(other));
    }
    return *this;
  }

  InlineVector(const InlineVector& other) {
    for (const T& value : other) push_back(value);
  }
  InlineVector& operator=(const InlineVector& other) {
    if (this != &other) {
      clear();
      for (const T& value : other) push_back(value);
    }
    return *this;
  }

  ~InlineVector() { Destroy(); }

  T* data() { return data_; }
  const T* data() const { return data_; }
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  T* begin() { return data_; }
  T* end() { return data_ + size_; }
  const T* begin() const { return data_; }
  const T* end() const { return data_ + size_; }

  T& operator[](size_t i) { return data_[i]; }
  const T& operator[](size_t i) const { return data_[i]; }
  T& front() { return data_[0]; }
  T& back() { return data_[size_ - 1]; }
  const T& front() const { return data_[0]; }
  const T& back() const { return data_[size_ - 1]; }

  void push_back(const T& value) { emplace_back(value); }
  void push_back(T&& value) { emplace_back(std::move(value)); }

  template <typename... Args>
  T& emplace_back(Args&&... args) {
    if (size_ == capacity_) Grow();
    T* slot = ::new (static_cast<void*>(data_ + size_))
        T(std::forward<Args>(args)...);
    ++size_;
    return *slot;
  }

  void pop_back() {
    MEMGOAL_DCHECK(size_ > 0);
    data_[--size_].~T();
  }

  /// Removes the element at `pos`, shifting later elements down. Returns
  /// the iterator to the element after the removed one (vector semantics).
  T* erase(T* pos) {
    MEMGOAL_DCHECK(pos >= begin() && pos < end());
    for (T* it = pos; it + 1 != end(); ++it) *it = std::move(*(it + 1));
    pop_back();
    return pos;
  }

  void clear() {
    for (size_t i = 0; i < size_; ++i) data_[i].~T();
    size_ = 0;
  }

 private:
  T* InlineData() { return reinterpret_cast<T*>(inline_storage_); }

  void Grow() {
    const size_t new_capacity = capacity_ * 2;
    T* fresh = static_cast<T*>(
        ::operator new(new_capacity * sizeof(T), std::align_val_t(alignof(T))));
    for (size_t i = 0; i < size_; ++i) {
      ::new (static_cast<void*>(fresh + i)) T(std::move(data_[i]));
      data_[i].~T();
    }
    if (data_ != InlineData()) {
      ::operator delete(data_, std::align_val_t(alignof(T)));
    }
    data_ = fresh;
    capacity_ = new_capacity;
  }

  void Destroy() {
    clear();
    if (data_ != InlineData()) {
      ::operator delete(data_, std::align_val_t(alignof(T)));
    }
  }

  void MoveFrom(InlineVector&& other) {
    if (other.data_ != other.InlineData()) {
      // Steal the heap buffer outright.
      data_ = other.data_;
      capacity_ = other.capacity_;
      size_ = other.size_;
      other.data_ = other.InlineData();
      other.capacity_ = N;
      other.size_ = 0;
      return;
    }
    data_ = InlineData();
    capacity_ = N;
    size_ = other.size_;
    for (size_t i = 0; i < size_; ++i) {
      ::new (static_cast<void*>(data_ + i)) T(std::move(other.data_[i]));
      other.data_[i].~T();
    }
    other.size_ = 0;
  }

  alignas(T) unsigned char inline_storage_[N * sizeof(T)];
  T* data_ = InlineData();
  size_t size_ = 0;
  size_t capacity_ = N;
};

}  // namespace memgoal::common

#endif  // MEMGOAL_COMMON_INLINE_VECTOR_H_
