#ifndef MEMGOAL_COMMON_CONFIG_H_
#define MEMGOAL_COMMON_CONFIG_H_

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

namespace memgoal::common {

/// Flat key=value configuration store with typed accessors.
///
/// Examples and benchmarks accept overrides on the command line as
/// `key=value` tokens (e.g. `nodes=5 skew=0.75 seed=42`); this class parses
/// them and reports which keys were never read so typos do not silently
/// leave the default in place.
class Config {
 public:
  Config() = default;

  /// Parses `key=value` tokens from an argv-style array (skipping argv[0]).
  /// GNU-style spellings are accepted too: `--key=value` is equivalent to
  /// `key=value`, and a bare `--flag` stores `flag=1` (true for GetBool).
  /// Returns false (and records an error message) on malformed tokens.
  bool ParseArgs(int argc, const char* const* argv);

  /// Parses newline-separated `key=value` text; '#' starts a comment and
  /// blank lines are ignored.
  bool ParseText(const std::string& text);

  void Set(const std::string& key, const std::string& value);

  bool Has(const std::string& key) const;

  /// Typed getters: return the stored value converted to the requested type,
  /// or `fallback` when the key is absent. A present key that fails to
  /// convert is a configuration error and aborts.
  std::string GetString(const std::string& key, const std::string& fallback);
  int64_t GetInt(const std::string& key, int64_t fallback);
  double GetDouble(const std::string& key, double fallback);
  bool GetBool(const std::string& key, bool fallback);

  /// Keys that were set but never read through a getter. Useful to warn
  /// about misspelled overrides.
  std::vector<std::string> UnusedKeys() const;

  /// Strict check for command-line `--flag` spellings: call after every
  /// getter has run. Any dashed argument whose key no getter ever asked
  /// about is a typo, not a tunable — returns false and records an error
  /// naming the flag, with a "did you mean --x" suggestion when a key some
  /// getter *did* query is within edit distance 2. Scenario-file and bare
  /// `key=value` tokens keep the soft UnusedKeys() warning instead.
  bool RejectUnknownFlags();

  const std::string& error() const { return error_; }

 private:
  std::optional<std::string> Lookup(const std::string& key);

  std::map<std::string, std::string> values_;
  std::map<std::string, bool> used_;
  /// Keys some getter queried (present or not): the vocabulary the binary
  /// actually understands, used for near-miss suggestions.
  std::set<std::string> known_;
  /// Keys that arrived as `--flag[=value]` on the command line.
  std::set<std::string> dashed_;
  std::string error_;
};

/// Nearest of `candidates` to `value` within edit distance 2 — far enough
/// for a dropped letter or a transposed pair, near enough not to suggest
/// unrelated words. Empty when nothing is close. Shared by
/// Config::RejectUnknownFlags and enum-valued scenario keys.
std::string NearestSuggestion(const std::string& value,
                              const std::vector<std::string>& candidates);

}  // namespace memgoal::common

#endif  // MEMGOAL_COMMON_CONFIG_H_
