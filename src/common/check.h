#ifndef MEMGOAL_COMMON_CHECK_H_
#define MEMGOAL_COMMON_CHECK_H_

#include <cstdio>
#include <cstdlib>

// Invariant checking macros.
//
// MEMGOAL_CHECK(cond) aborts with a diagnostic if `cond` is false. It is
// always enabled (including release builds): the simulator is a research
// instrument and silent invariant corruption would invalidate every
// downstream measurement. MEMGOAL_DCHECK additionally compiles away in
// NDEBUG builds and may be used on per-page-access hot paths.

#define MEMGOAL_CHECK(cond)                                                  \
  do {                                                                       \
    if (!(cond)) {                                                           \
      std::fprintf(stderr, "CHECK failed at %s:%d: %s\n", __FILE__,          \
                   __LINE__, #cond);                                         \
      std::abort();                                                          \
    }                                                                        \
  } while (0)

#define MEMGOAL_CHECK_MSG(cond, msg)                                         \
  do {                                                                       \
    if (!(cond)) {                                                           \
      std::fprintf(stderr, "CHECK failed at %s:%d: %s (%s)\n", __FILE__,     \
                   __LINE__, #cond, msg);                                    \
      std::abort();                                                          \
    }                                                                        \
  } while (0)

#ifdef NDEBUG
#define MEMGOAL_DCHECK(cond) \
  do {                       \
  } while (0)
#else
#define MEMGOAL_DCHECK(cond) MEMGOAL_CHECK(cond)
#endif

#endif  // MEMGOAL_COMMON_CHECK_H_
