#ifndef MEMGOAL_STORAGE_DISK_H_
#define MEMGOAL_STORAGE_DISK_H_

#include <cstdint>
#include <string>

#include "sim/resource.h"
#include "sim/simulator.h"
#include "sim/task.h"

namespace memgoal::storage {

/// Service-time model of a mid-1990s SCSI disk (the paper's per-node disk,
/// §7.1): average seek + half-rotation latency + transfer time for one
/// page. The disk serves requests FCFS with a single arm.
class Disk {
 public:
  struct Params {
    /// Average seek time in ms.
    double avg_seek_ms = 8.0;
    /// Full rotation time in ms (7200 rpm ~ 8.33 ms); average rotational
    /// latency is half of this.
    double rotation_ms = 8.33;
    /// Sustained media transfer rate in MB/s.
    double transfer_mb_per_s = 10.0;
  };

  Disk(sim::Simulator* simulator, const Params& params, uint32_t page_bytes,
       std::string name);

  /// Deterministic per-page service time implied by the parameters.
  sim::SimTime PageServiceTime() const { return page_service_ms_; }

  /// Reads one page: queues FCFS at the arm and holds it for the service
  /// time. A non-null `timing` receives the queue-wait/service split.
  sim::Task<void> ReadPage(sim::Resource::UseTiming* timing = nullptr);

  /// Writes one page (same service-time model; used by the WAL force and
  /// the FORCE-at-commit policy of the transactional layer).
  sim::Task<void> WritePage(sim::Resource::UseTiming* timing = nullptr);

  /// Service-time multiplier while the owning node is degraded (gray
  /// failure); 1.0 = healthy. Affects requests that start after the call.
  void SetSlowdown(double factor) { arm_.SetSlowdown(factor); }
  double slowdown() const { return arm_.slowdown(); }

  uint64_t reads_completed() const { return reads_completed_; }
  uint64_t writes_completed() const { return writes_completed_; }
  const sim::Resource& resource() const { return arm_; }

 private:
  sim::Simulator* simulator_;
  sim::SimTime page_service_ms_;
  sim::Resource arm_;
  uint64_t reads_completed_ = 0;
  uint64_t writes_completed_ = 0;
};

}  // namespace memgoal::storage

#endif  // MEMGOAL_STORAGE_DISK_H_
