#include "storage/disk.h"

#include <utility>

#include "common/check.h"

namespace memgoal::storage {

namespace {

double ComputeServiceTime(const Disk::Params& params, uint32_t page_bytes) {
  MEMGOAL_CHECK(params.avg_seek_ms >= 0.0);
  MEMGOAL_CHECK(params.rotation_ms >= 0.0);
  MEMGOAL_CHECK(params.transfer_mb_per_s > 0.0);
  const double transfer_ms = static_cast<double>(page_bytes) /
                             (params.transfer_mb_per_s * 1e6) * 1e3;
  return params.avg_seek_ms + params.rotation_ms / 2.0 + transfer_ms;
}

}  // namespace

Disk::Disk(sim::Simulator* simulator, const Params& params,
           uint32_t page_bytes, std::string name)
    : simulator_(simulator),
      page_service_ms_(ComputeServiceTime(params, page_bytes)),
      arm_(simulator, /*capacity=*/1, std::move(name)) {}

sim::Task<void> Disk::ReadPage(sim::Resource::UseTiming* timing) {
  co_await arm_.Use(page_service_ms_, timing);
  ++reads_completed_;
}

sim::Task<void> Disk::WritePage(sim::Resource::UseTiming* timing) {
  co_await arm_.Use(page_service_ms_, timing);
  ++writes_completed_;
}

}  // namespace memgoal::storage
