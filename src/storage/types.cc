#include "storage/types.h"

namespace memgoal {

const char* StorageLevelName(StorageLevel level) {
  switch (level) {
    case StorageLevel::kLocalBuffer:
      return "local-buffer";
    case StorageLevel::kRemoteBuffer:
      return "remote-buffer";
    case StorageLevel::kLocalDisk:
      return "local-disk";
    case StorageLevel::kRemoteDisk:
      return "remote-disk";
  }
  return "?";
}

}  // namespace memgoal
