#ifndef MEMGOAL_STORAGE_DATABASE_H_
#define MEMGOAL_STORAGE_DATABASE_H_

#include <cstdint>

#include "common/check.h"
#include "storage/types.h"

namespace memgoal::storage {

/// Static description of the simulated database: M fixed-size pages, each
/// with a permanent disk-resident copy at its *home* node. Homes are
/// assigned round-robin across nodes (the paper's declustering scheme,
/// §7.1: "distributed in a round-robin fashion over all nodes' disks").
class Database {
 public:
  Database(uint32_t num_pages, uint32_t page_bytes, uint32_t num_nodes)
      : num_pages_(num_pages), page_bytes_(page_bytes),
        num_nodes_(num_nodes) {
    MEMGOAL_CHECK(num_pages > 0);
    MEMGOAL_CHECK(page_bytes > 0);
    MEMGOAL_CHECK(num_nodes > 0);
  }

  uint32_t num_pages() const { return num_pages_; }
  uint32_t page_bytes() const { return page_bytes_; }
  uint32_t num_nodes() const { return num_nodes_; }
  uint64_t total_bytes() const {
    return static_cast<uint64_t>(num_pages_) * page_bytes_;
  }

  /// Home node of a page (owner of its permanent disk copy).
  NodeId HomeOf(PageId page) const {
    MEMGOAL_DCHECK(page < num_pages_);
    return page % num_nodes_;
  }

  /// Number of pages homed at `node`.
  uint32_t PagesHomedAt(NodeId node) const {
    MEMGOAL_CHECK(node < num_nodes_);
    return num_pages_ / num_nodes_ + (node < num_pages_ % num_nodes_ ? 1 : 0);
  }

 private:
  uint32_t num_pages_;
  uint32_t page_bytes_;
  uint32_t num_nodes_;
};

}  // namespace memgoal::storage

#endif  // MEMGOAL_STORAGE_DATABASE_H_
