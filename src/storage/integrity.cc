#include "storage/integrity.h"

#include "common/check.h"

namespace memgoal::storage {

const char* FlawName(Flaw flaw) {
  switch (flaw) {
    case Flaw::kNone: return "none";
    case Flaw::kDetectable: return "detectable";
    case Flaw::kLatent: return "latent";
  }
  return "unknown";
}

IntegrityMap::IntegrityMap(uint32_t num_pages, uint32_t num_nodes)
    : num_pages_(num_pages), num_nodes_(num_nodes),
      disk_(num_pages, 0),
      frames_(static_cast<size_t>(num_pages) * num_nodes, 0) {
  MEMGOAL_CHECK(num_pages > 0);
  MEMGOAL_CHECK(num_nodes > 0);
}

bool IntegrityMap::MarkDisk(PageId page, Flaw flaw) {
  MEMGOAL_CHECK(page < num_pages_);
  MEMGOAL_CHECK(flaw != Flaw::kNone);
  if (disk_[page] != 0) return false;
  disk_[page] = static_cast<uint8_t>(flaw);
  ++marked_;
  return true;
}

bool IntegrityMap::MarkFrame(NodeId node, PageId page, Flaw flaw) {
  MEMGOAL_CHECK(node < num_nodes_);
  MEMGOAL_CHECK(page < num_pages_);
  MEMGOAL_CHECK(flaw != Flaw::kNone);
  const size_t index = Index(node, page);
  if (frames_[index] != 0) return false;
  frames_[index] = static_cast<uint8_t>(flaw);
  ++marked_;
  return true;
}

bool IntegrityMap::ClearDisk(PageId page) {
  MEMGOAL_CHECK(page < num_pages_);
  if (disk_[page] == 0) return false;
  disk_[page] = 0;
  MEMGOAL_CHECK(marked_ > 0);
  --marked_;
  return true;
}

bool IntegrityMap::ClearFrame(NodeId node, PageId page) {
  MEMGOAL_CHECK(node < num_nodes_);
  MEMGOAL_CHECK(page < num_pages_);
  const size_t index = Index(node, page);
  if (frames_[index] == 0) return false;
  frames_[index] = 0;
  MEMGOAL_CHECK(marked_ > 0);
  --marked_;
  return true;
}

uint32_t IntegrityMap::ClearNodeFrames(NodeId node) {
  MEMGOAL_CHECK(node < num_nodes_);
  uint32_t wiped = 0;
  for (PageId page = 0; page < num_pages_; ++page) {
    const size_t index = Index(node, page);
    if (frames_[index] != 0) {
      frames_[index] = 0;
      ++wiped;
    }
  }
  MEMGOAL_CHECK(marked_ >= wiped);
  marked_ -= wiped;
  return wiped;
}

}  // namespace memgoal::storage
