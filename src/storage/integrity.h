#ifndef MEMGOAL_STORAGE_INTEGRITY_H_
#define MEMGOAL_STORAGE_INTEGRITY_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "storage/types.h"

namespace memgoal::storage {

/// Modeled integrity state of one stored copy of a page. The simulation
/// never materializes page contents, so corruption is a per-copy flag: the
/// injector marks a copy flawed, verify-on-read observes the flag.
enum class Flaw : uint8_t {
  kNone = 0,
  /// A checksum verify on read catches this flaw.
  kDetectable = 1,
  /// Past the checksum (multi-bit pattern the CRC misses, or corruption of
  /// checksummed-then-cached data). Verify-on-read serves it unknowingly.
  kLatent = 2,
};

const char* FlawName(Flaw flaw);

/// Tracks which stored copies of each page are corrupt: one slot per
/// permanent disk copy and one per (node, page) cached frame. Pure
/// bookkeeping — no RNG, no simulated time — so the access-path cost of
/// integrity checking in an uncorrupted run is a single `any_marked()`
/// branch, which keeps zero-rate runs bit-identical to builds that never
/// heard of corruption.
///
/// Marks are set by the fault-injection callback (detectability decided at
/// injection time from the injected draw) and cleared by whoever destroys
/// or rewrites the copy: quarantine/eviction clears a frame, repair
/// rewrites a disk copy, a crash wipes all of a node's frames.
class IntegrityMap {
 public:
  IntegrityMap(uint32_t num_pages, uint32_t num_nodes);

  /// Marks the permanent disk copy of `page` flawed. Returns false (and
  /// leaves the existing mark) if the copy is already flawed.
  bool MarkDisk(PageId page, Flaw flaw);

  /// Marks the frame caching `page` at `node` flawed. Returns false if the
  /// frame is already flawed.
  bool MarkFrame(NodeId node, PageId page, Flaw flaw);

  Flaw DiskFlaw(PageId page) const {
    return static_cast<Flaw>(disk_[page]);
  }
  Flaw FrameFlaw(NodeId node, PageId page) const {
    return static_cast<Flaw>(frames_[Index(node, page)]);
  }

  /// Clears the disk-copy mark (the copy was rewritten from an intact
  /// source, or re-initialized after being declared lost). Returns true if
  /// a mark was removed.
  bool ClearDisk(PageId page);

  /// Clears the frame mark (the frame was evicted, quarantined, or
  /// overwritten by a fresh fetch). Returns true if a mark was removed.
  bool ClearFrame(NodeId node, PageId page);

  /// Wipes every frame mark on `node` (its RAM is gone after a crash).
  /// Returns the number of marks removed.
  uint32_t ClearNodeFrames(NodeId node);

  /// Fast path: false means no copy anywhere is flawed and every verify
  /// trivially passes.
  bool any_marked() const { return marked_ != 0; }

  /// Currently outstanding marks (disk + frames).
  uint64_t marked() const { return marked_; }

  uint32_t num_pages() const { return num_pages_; }
  uint32_t num_nodes() const { return num_nodes_; }

 private:
  size_t Index(NodeId node, PageId page) const {
    return static_cast<size_t>(page) * num_nodes_ + node;
  }

  uint32_t num_pages_;
  uint32_t num_nodes_;
  std::vector<uint8_t> disk_;
  std::vector<uint8_t> frames_;
  uint64_t marked_ = 0;
};

}  // namespace memgoal::storage

#endif  // MEMGOAL_STORAGE_INTEGRITY_H_
