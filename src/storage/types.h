#ifndef MEMGOAL_STORAGE_TYPES_H_
#define MEMGOAL_STORAGE_TYPES_H_

#include <cstdint>

namespace memgoal {

/// Identifies a database page, 0-based.
using PageId = uint32_t;

/// Identifies a node in the network of workstations, 0-based.
using NodeId = uint32_t;

/// Identifies a workload class. Class 0 is always the no-goal class; goal
/// classes are numbered 1..K (matching the paper's §3 convention).
using ClassId = uint32_t;

inline constexpr ClassId kNoGoalClass = 0;

inline constexpr NodeId kInvalidNode = UINT32_MAX;

/// Storage level a page access was ultimately served from. Tagging requests
/// with this level is how the cost-based replacement policy learns access
/// costs (§6).
enum class StorageLevel {
  kLocalBuffer = 0,
  kRemoteBuffer = 1,
  kLocalDisk = 2,
  kRemoteDisk = 3,
};

/// Human-readable label for a storage level.
const char* StorageLevelName(StorageLevel level);

}  // namespace memgoal

#endif  // MEMGOAL_STORAGE_TYPES_H_
