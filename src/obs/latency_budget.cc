#include "obs/latency_budget.h"

namespace memgoal::obs {

const char* BudgetPhaseName(BudgetPhase phase) {
  switch (phase) {
    case BudgetPhase::kCpuWait:
      return "cpu_wait";
    case BudgetPhase::kCpuService:
      return "cpu_service";
    case BudgetPhase::kDiskWait:
      return "disk_wait";
    case BudgetPhase::kDiskService:
      return "disk_service";
    case BudgetPhase::kNetWait:
      return "net_wait";
    case BudgetPhase::kNetTransfer:
      return "net_transfer";
    case BudgetPhase::kFetchWait:
      return "fetch_wait";
    case BudgetPhase::kBackoff:
      return "backoff";
    case BudgetPhase::kLockWait:
      return "lock_wait";
    case BudgetPhase::kWalForce:
      return "wal_force";
    case BudgetPhase::kResidual:
      return "residual";
  }
  return "?";
}

}  // namespace memgoal::obs
