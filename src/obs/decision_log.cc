#include "obs/decision_log.h"

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace memgoal::obs {

namespace {

void AppendDouble(std::string* out, double v) {
  char buffer[40];
  std::snprintf(buffer, sizeof(buffer), "%.17g", v);
  *out += buffer;
}

void AppendField(std::string* out, const char* key, double v) {
  *out += ",\"";
  *out += key;
  *out += "\":";
  AppendDouble(out, v);
}

void AppendField(std::string* out, const char* key, int v) {
  char buffer[48];
  std::snprintf(buffer, sizeof(buffer), ",\"%s\":%d", key, v);
  *out += buffer;
}

void AppendField(std::string* out, const char* key, uint64_t v) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), ",\"%s\":%" PRIu64, key, v);
  *out += buffer;
}

void AppendField(std::string* out, const char* key, bool v) {
  *out += ",\"";
  *out += key;
  *out += v ? "\":true" : "\":false";
}

/// Values are controlled enum-ish strings ("accepted", "goal_relaxed", ...),
/// never free text, so no escaping is needed.
void AppendField(std::string* out, const char* key, const std::string& v) {
  *out += ",\"";
  *out += key;
  *out += "\":\"";
  *out += v;
  *out += '"';
}

void AppendField(std::string* out, const char* key,
                 const std::vector<double>& v) {
  *out += ",\"";
  *out += key;
  *out += "\":[";
  for (size_t i = 0; i < v.size(); ++i) {
    if (i > 0) *out += ',';
    AppendDouble(out, v[i]);
  }
  *out += ']';
}

/// Returns the position just past `"key":`, or npos.
size_t FindValue(const std::string& json, const char* key) {
  std::string needle = "\"";
  needle += key;
  needle += "\":";
  const size_t pos = json.find(needle);
  if (pos == std::string::npos) return std::string::npos;
  return pos + needle.size();
}

bool ParseDouble(const std::string& json, const char* key, double* out) {
  const size_t pos = FindValue(json, key);
  if (pos == std::string::npos) return false;
  char* end = nullptr;
  *out = std::strtod(json.c_str() + pos, &end);
  return end != json.c_str() + pos;
}

bool ParseInt(const std::string& json, const char* key, int* out) {
  double v = 0.0;
  if (!ParseDouble(json, key, &v)) return false;
  *out = static_cast<int>(v);
  return true;
}

bool ParseU64(const std::string& json, const char* key, uint64_t* out) {
  const size_t pos = FindValue(json, key);
  if (pos == std::string::npos) return false;
  char* end = nullptr;
  *out = std::strtoull(json.c_str() + pos, &end, 10);
  return end != json.c_str() + pos;
}

bool ParseBool(const std::string& json, const char* key, bool* out) {
  const size_t pos = FindValue(json, key);
  if (pos == std::string::npos) return false;
  if (json.compare(pos, 4, "true") == 0) {
    *out = true;
    return true;
  }
  if (json.compare(pos, 5, "false") == 0) {
    *out = false;
    return true;
  }
  return false;
}

bool ParseString(const std::string& json, const char* key, std::string* out) {
  size_t pos = FindValue(json, key);
  if (pos == std::string::npos || pos >= json.size() || json[pos] != '"') {
    return false;
  }
  ++pos;
  const size_t close = json.find('"', pos);
  if (close == std::string::npos) return false;
  *out = json.substr(pos, close - pos);
  return true;
}

bool ParseArray(const std::string& json, const char* key,
                std::vector<double>* out) {
  size_t pos = FindValue(json, key);
  if (pos == std::string::npos || pos >= json.size() || json[pos] != '[') {
    return false;
  }
  out->clear();
  ++pos;
  while (pos < json.size() && json[pos] != ']') {
    char* end = nullptr;
    const double v = std::strtod(json.c_str() + pos, &end);
    if (end == json.c_str() + pos) return false;
    out->push_back(v);
    pos = static_cast<size_t>(end - json.c_str());
    if (pos < json.size() && json[pos] == ',') ++pos;
  }
  return pos < json.size();
}

}  // namespace

std::string DecisionRecord::ToJson() const {
  std::string out;
  out.reserve(1024);
  out += "{\"interval\":";
  {
    char buffer[16];
    std::snprintf(buffer, sizeof(buffer), "%d", interval);
    out += buffer;
  }
  AppendField(&out, "sim_time_ms", sim_time_ms);
  AppendField(&out, "class", klass);
  AppendField(&out, "home", home);
  AppendField(&out, "epoch", epoch);
  AppendField(&out, "lease_held", lease_held);
  AppendField(&out, "observed_rt_k", observed_rt_k);
  AppendField(&out, "has_observed_rt_0", has_observed_rt_0);
  AppendField(&out, "observed_rt_0", observed_rt_0);
  AppendField(&out, "goal_rt", goal_rt);
  AppendField(&out, "tolerance_delta", tolerance_delta);
  AppendField(&out, "measure_outcome", measure_outcome);
  AppendField(&out, "measured_allocation", measured_allocation);
  AppendField(&out, "condition_estimate", condition_estimate);
  AppendField(&out, "store_ready", store_ready);
  AppendField(&out, "store_size", store_size);
  AppendField(&out, "has_planes", has_planes);
  AppendField(&out, "grad_k", grad_k);
  AppendField(&out, "intercept_k", intercept_k);
  AppendField(&out, "grad_0", grad_0);
  AppendField(&out, "intercept_0", intercept_0);
  AppendField(&out, "upper_bounds", upper_bounds);
  AppendField(&out, "lp_run", lp_run);
  AppendField(&out, "lp_mode", lp_mode);
  AppendField(&out, "relaxed_rung", relaxed_rung);
  AppendField(&out, "relaxed_goal_rt", relaxed_goal_rt);
  AppendField(&out, "lp_optimal", lp_optimal);
  AppendField(&out, "lp_infeasible", lp_infeasible);
  AppendField(&out, "lp_unbounded", lp_unbounded);
  AppendField(&out, "lp_iteration_limit", lp_iteration_limit);
  AppendField(&out, "lp_relaxed_retries", lp_relaxed_retries);
  AppendField(&out, "lp_warm", lp_warm);
  AppendField(&out, "lp_warm_basis", lp_warm_basis);
  AppendField(&out, "lp_allocation", lp_allocation);
  AppendField(&out, "shipped_allocation", shipped_allocation);
  AppendField(&out, "granted_allocation", granted_allocation);
  if (miss_card) {
    AppendField(&out, "miss_card", miss_card);
    AppendField(&out, "miss_dominant_phase", miss_dominant_phase);
    AppendField(&out, "miss_dominant_ms", miss_dominant_ms);
    AppendField(&out, "miss_phase_ms", miss_phase_ms);
    AppendField(&out, "miss_baseline_rt", miss_baseline_rt);
    AppendField(&out, "miss_deviation_ms", miss_deviation_ms);
    AppendField(&out, "miss_nodes_down", miss_nodes_down);
    AppendField(&out, "miss_nodes_degraded", miss_nodes_degraded);
    AppendField(&out, "miss_partitioned", miss_partitioned);
    AppendField(&out, "miss_corruptions", miss_corruptions);
  }
  out += '}';
  return out;
}

bool DecisionRecord::FromJson(const std::string& json, DecisionRecord* out) {
  DecisionRecord rec;
  if (!ParseInt(json, "interval", &rec.interval)) return false;
  if (!ParseDouble(json, "sim_time_ms", &rec.sim_time_ms)) return false;
  if (!ParseInt(json, "class", &rec.klass)) return false;
  if (!ParseInt(json, "home", &rec.home)) return false;
  if (!ParseU64(json, "epoch", &rec.epoch)) return false;
  if (!ParseBool(json, "lease_held", &rec.lease_held)) return false;
  if (!ParseDouble(json, "observed_rt_k", &rec.observed_rt_k)) return false;
  if (!ParseBool(json, "has_observed_rt_0", &rec.has_observed_rt_0)) {
    return false;
  }
  if (!ParseDouble(json, "observed_rt_0", &rec.observed_rt_0)) return false;
  if (!ParseDouble(json, "goal_rt", &rec.goal_rt)) return false;
  if (!ParseDouble(json, "tolerance_delta", &rec.tolerance_delta)) {
    return false;
  }
  if (!ParseString(json, "measure_outcome", &rec.measure_outcome)) {
    return false;
  }
  if (!ParseArray(json, "measured_allocation", &rec.measured_allocation)) {
    return false;
  }
  if (!ParseDouble(json, "condition_estimate", &rec.condition_estimate)) {
    return false;
  }
  if (!ParseBool(json, "store_ready", &rec.store_ready)) return false;
  if (!ParseInt(json, "store_size", &rec.store_size)) return false;
  if (!ParseBool(json, "has_planes", &rec.has_planes)) return false;
  if (!ParseArray(json, "grad_k", &rec.grad_k)) return false;
  if (!ParseDouble(json, "intercept_k", &rec.intercept_k)) return false;
  if (!ParseArray(json, "grad_0", &rec.grad_0)) return false;
  if (!ParseDouble(json, "intercept_0", &rec.intercept_0)) return false;
  if (!ParseArray(json, "upper_bounds", &rec.upper_bounds)) return false;
  if (!ParseBool(json, "lp_run", &rec.lp_run)) return false;
  if (!ParseString(json, "lp_mode", &rec.lp_mode)) return false;
  if (!ParseInt(json, "relaxed_rung", &rec.relaxed_rung)) return false;
  if (!ParseDouble(json, "relaxed_goal_rt", &rec.relaxed_goal_rt)) {
    return false;
  }
  if (!ParseU64(json, "lp_optimal", &rec.lp_optimal)) return false;
  if (!ParseU64(json, "lp_infeasible", &rec.lp_infeasible)) return false;
  if (!ParseU64(json, "lp_unbounded", &rec.lp_unbounded)) return false;
  // Optional (absent from records written before the revised-simplex PR):
  // defaults stand in when the keys are missing.
  ParseU64(json, "lp_iteration_limit", &rec.lp_iteration_limit);
  if (!ParseU64(json, "lp_relaxed_retries", &rec.lp_relaxed_retries)) {
    return false;
  }
  ParseBool(json, "lp_warm", &rec.lp_warm);
  ParseString(json, "lp_warm_basis", &rec.lp_warm_basis);
  if (!ParseArray(json, "lp_allocation", &rec.lp_allocation)) return false;
  if (!ParseArray(json, "shipped_allocation", &rec.shipped_allocation)) {
    return false;
  }
  if (!ParseArray(json, "granted_allocation", &rec.granted_allocation)) {
    return false;
  }
  // Optional miss card (absent from pre-attainment records and from every
  // check that met its goal): the ignore-return idiom leaves defaults.
  ParseBool(json, "miss_card", &rec.miss_card);
  if (rec.miss_card) {
    ParseString(json, "miss_dominant_phase", &rec.miss_dominant_phase);
    ParseDouble(json, "miss_dominant_ms", &rec.miss_dominant_ms);
    ParseArray(json, "miss_phase_ms", &rec.miss_phase_ms);
    ParseDouble(json, "miss_baseline_rt", &rec.miss_baseline_rt);
    ParseDouble(json, "miss_deviation_ms", &rec.miss_deviation_ms);
    ParseU64(json, "miss_nodes_down", &rec.miss_nodes_down);
    ParseU64(json, "miss_nodes_degraded", &rec.miss_nodes_degraded);
    ParseBool(json, "miss_partitioned", &rec.miss_partitioned);
    ParseU64(json, "miss_corruptions", &rec.miss_corruptions);
  }
  *out = std::move(rec);
  return true;
}

void DecisionLog::WriteJsonl(std::FILE* out) const {
  for (const DecisionRecord& record : records_) {
    const std::string line = record.ToJson();
    std::fwrite(line.data(), 1, line.size(), out);
    std::fputc('\n', out);
  }
}

}  // namespace memgoal::obs
