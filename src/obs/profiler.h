#ifndef MEMGOAL_OBS_PROFILER_H_
#define MEMGOAL_OBS_PROFILER_H_

#include <array>
#include <cstdint>
#include <cstdio>
#include <string>
#include <unordered_map>
#include <vector>

namespace memgoal::obs {

/// Static registry of the profiled wall-clock phases. These are the
/// repository's measured hot paths (the paper's Table 1 cost centers plus
/// the simulation engine itself); adding a phase means adding an enumerator
/// here and a name in PhaseName() — call sites then open a ProfileScope.
enum class Phase : uint8_t {
  kSimStep = 0,      // simulator event dispatch (Run/RunUntil/Step)
  kVictimSelect,     // cache::CostBasedPolicy::ChooseVictim revalidation
  kHeapMaintain,     // cost-based policy indexed-heap insert/update/erase
  kHeatUpdate,       // LRU-K heat record updates and horizon sweeps
  kSimplexSolve,     // la::SimplexSolver::Solve (the partitioning LP)
  kRowReplace,       // la::RowReplaceInverse resets and row replacements
  kNetSend,          // network transfer send-side bookkeeping
  kNetReceive,       // network transfer delivery-side bookkeeping
  kControllerCheck,  // controller interval rollup + report fan-out
};

inline constexpr int kNumPhases = 9;

const char* PhaseName(Phase phase);

/// Scoped-phase wall-clock profiler.
///
/// Mirrors the `obs::Trace` contract: instrumented call sites cost one
/// thread-local load and one branch when no profiler is installed (or the
/// installed one is disabled) — the bench_table1_overhead --quick gate
/// enforces that envelope — and the profiler only ever *reads* the wall
/// clock, so an enabled profiler cannot perturb the simulation (same gate,
/// fingerprint arm).
///
/// A profiler is installed per thread (Profiler::ScopedInstall); nested
/// ProfileScopes form a stack, so the profiler accumulates both a flat
/// per-phase view (count, total, max — inclusive of children) and
/// self-time per distinct stack path for folded-stack flamegraph output.
/// `bench::TrialRunner` gives every trial its own profiler on the worker
/// thread and folds them into the caller's via Merge() in trial-index
/// order, which keeps every merged aggregate a pure function of the
/// per-trial profiles, independent of the thread count.
class Profiler {
 public:
  struct PhaseStats {
    uint64_t count = 0;
    uint64_t total_ns = 0;  // inclusive of nested phases
    uint64_t max_ns = 0;
  };

  Profiler() = default;
  Profiler(Profiler&&) = default;
  Profiler& operator=(Profiler&&) = default;
  Profiler(const Profiler&) = delete;
  Profiler& operator=(const Profiler&) = delete;

  void Enable(bool on) { enabled_ = on; }
  bool enabled() const { return enabled_; }

  /// The profiler installed on the current thread (null when none).
  static Profiler* Current();

  /// Installs `profiler` (may be null) on the current thread for the
  /// lifetime of this object; restores the previous installation on
  /// destruction.
  class ScopedInstall {
   public:
    explicit ScopedInstall(Profiler* profiler);
    ~ScopedInstall();
    ScopedInstall(const ScopedInstall&) = delete;
    ScopedInstall& operator=(const ScopedInstall&) = delete;

   private:
    Profiler* previous_;
  };

  /// Records one externally timed sample of `phase` (depth-1 stack path).
  /// Also the deterministic injection point for tests: samples are exact
  /// integers, so merged output is bit-identical regardless of timing.
  void AddSample(Phase phase, uint64_t ns);

  /// Folds `other`'s accumulators into this profiler. Callers merge worker
  /// profiles in trial-index order so sums are order-deterministic.
  /// `other` must not have open scopes.
  void Merge(const Profiler& other);

  const PhaseStats& stats(Phase phase) const {
    return phases_[static_cast<size_t>(phase)];
  }
  /// Total samples across all phases (cheap emptiness probe).
  uint64_t total_count() const;
  /// Sum of depth-1 self times: wall time spent under any profiled scope.
  uint64_t profiled_ns() const;

  /// Per-phase breakdown table: count, total/mean/max wall, and — when
  /// `run_wall_seconds` > 0 — the share of that run the phase's inclusive
  /// time represents.
  void WriteTable(std::FILE* out, double run_wall_seconds) const;

  /// Folded-stack text ("memgoal;sim.step;la.simplex_solve <self_ns>"),
  /// one line per distinct stack path — feed to flamegraph.pl or speedscope.
  void WriteFolded(std::FILE* out) const;

  /// JSON object {"phases":[{...}],"profiled_ms":...} embedded into
  /// BENCH_*.json by the bench reporter. Phases with zero samples are
  /// omitted.
  void AppendJson(std::string* out) const;

 private:
  friend class ProfileScope;

  struct PathStats {
    uint64_t count = 0;
    uint64_t self_ns = 0;  // exclusive of nested phases
  };
  struct Frame {
    Phase phase;
    uint64_t start_ns = 0;
    uint64_t child_ns = 0;
    uint64_t parent_path = 0;
  };

  /// Stack paths are encoded 5 bits per level (phase index + 1), root at
  /// the most significant end; depth beyond kMaxEncodedDepth folds into
  /// its ancestor's path so the encoding never overflows.
  static constexpr int kMaxEncodedDepth = 12;

  /// Wall clock in nanoseconds. On x86 this reads the TSC and scales by a
  /// once-per-process calibration against steady_clock — a fraction of a
  /// clock_gettime call, which matters at two reads per scope.
  static uint64_t NowNs();

  void Push(Phase phase);
  void Pop();

  bool enabled_ = false;
  std::array<PhaseStats, kNumPhases> phases_{};
  // Hash map on the hot Pop path; exports sort by encoded path so output
  // stays deterministic, and merged sums are exact-integer commutative.
  std::unordered_map<uint64_t, PathStats> paths_;
  // One-entry memo: event loops pop the same stack path back to back, so
  // most Pops skip the hash lookup. unordered_map nodes are
  // pointer-stable, so the cached pointer survives rehash and move.
  uint64_t memo_key_ = 0;
  PathStats* memo_ = nullptr;
  std::vector<Frame> stack_;
  uint64_t current_path_ = 0;
};

/// RAII scope attributing its lifetime's wall time to `phase` on the
/// thread's installed profiler. When none is installed (the default) the
/// constructor is a thread-local load and a branch. Must not live across a
/// coroutine suspension point: suspended wall time is not this phase's.
class ProfileScope {
 public:
  explicit ProfileScope(Phase phase) : profiler_(Profiler::Current()) {
    if (profiler_ == nullptr) return;
    if (!profiler_->enabled()) {
      profiler_ = nullptr;
      return;
    }
    profiler_->Push(phase);
  }
  ~ProfileScope() {
    if (profiler_ != nullptr) profiler_->Pop();
  }
  ProfileScope(const ProfileScope&) = delete;
  ProfileScope& operator=(const ProfileScope&) = delete;

 private:
  Profiler* profiler_;
};

}  // namespace memgoal::obs

#endif  // MEMGOAL_OBS_PROFILER_H_
