#ifndef MEMGOAL_OBS_ATTAINMENT_H_
#define MEMGOAL_OBS_ATTAINMENT_H_

#include <cstdint>
#include <cstdio>
#include <deque>
#include <map>
#include <string>
#include <vector>

#include "obs/latency_budget.h"

namespace memgoal::obs {

class Registry;

/// Goal-attainment observability: per-class response-time budget
/// attribution, SLO burn-rate monitoring, and goal-miss root-cause cards.
///
/// Like the tracer and the profiler, the tracker is branch-on-bool
/// disabled: instrumented sites test `enabled()` (or hold a null pointer)
/// and the bench_table1_overhead gate enforces that the disabled layer
/// costs neither wall clock nor one bit of simulation output. The tracker
/// itself is a pure observer — it only reads the simulated clock through
/// the values handed to it, never draws randomness and never schedules an
/// event, so an *enabled* tracker cannot perturb the simulation either.
///
/// Three coupled views:
///  1. Budget attribution: every completed request's RequestBudget is
///     folded into a per-(class, node) accumulator; OnIntervalEnd
///     finalizes one row per (class, node, interval), exported as
///     JSONL/CSV and mirrored into the metrics registry.
///  2. SLO monitor: per goal class, the cumulative attainment ratio,
///     error-budget consumption against an allowed miss fraction, and
///     fast/slow-window burn rates over observation intervals, plus
///     convergence diagnostics (allocation oscillation count,
///     intervals-since-last-miss, LP relaxation-rung residency).
///  3. Miss cards: on each missed coordinator check the caller joins the
///     latest budget row with the decision record and the active fault
///     state into a structured root-cause card.
class AttainmentTracker {
 public:
  /// Allowed goal-miss fraction the error budget is charged against.
  static constexpr double kErrorBudgetFraction = 0.1;
  /// Burn-rate window lengths, in observation intervals.
  static constexpr int kFastWindow = 6;
  static constexpr int kSlowWindow = 36;
  /// Satisfied-check observations kept per class as the converged-baseline
  /// estimate a miss is compared against.
  static constexpr int kBaselineWindow = 8;

  AttainmentTracker() = default;
  AttainmentTracker(const AttainmentTracker&) = delete;
  AttainmentTracker& operator=(const AttainmentTracker&) = delete;

  void Enable(bool on) { enabled_ = on; }
  bool enabled() const { return enabled_; }

  // -- Budget attribution ---------------------------------------------------

  /// Hot path: folds one completed request's decomposed latency into the
  /// current interval's (class, node) accumulator. `response_ms` is the
  /// measured response time the budget was closed against.
  void RecordRequest(uint32_t klass, uint32_t node, double response_ms,
                     const RequestBudget& budget);

  /// One finalized (class, node, interval) budget row.
  struct BudgetRow {
    int interval = 0;
    double sim_time_ms = 0.0;
    uint32_t klass = 0;
    uint32_t node = 0;
    uint64_t requests = 0;
    double rt_sum_ms = 0.0;
    double phase_ms[kNumBudgetPhases] = {};
  };

  // -- Interval feed --------------------------------------------------------

  /// Per-class outcome of one observation interval, as the metrics log saw
  /// it (fed by ClusterSystem's interval loop).
  struct ClassSample {
    uint32_t klass = 0;
    bool has_goal = false;
    double goal_rt_ms = 0.0;
    double tolerance_ms = 0.0;
    double observed_rt_ms = 0.0;
    bool has_observed_rt = false;
    bool satisfied = false;
    uint64_t ops_completed = 0;
    uint64_t dedicated_bytes = 0;
  };

  /// Finalizes the interval: flushes budget accumulators into rows and
  /// advances every per-class SLO window.
  void OnIntervalEnd(int interval, double sim_time_ms,
                     const std::vector<ClassSample>& samples);

  // -- Controller feed ------------------------------------------------------

  /// Outcome of one coordinator check (fed from the goal controller on
  /// every check exit path, independent of whether a decision log is
  /// attached).
  struct CheckOutcome {
    uint32_t klass = 0;
    bool lease_held = true;
    bool too_slow = false;
    bool too_fast = false;
    bool lp_run = false;
    int relaxed_rung = -1;  // -1 = no relaxation
    double observed_rt_ms = 0.0;
    bool has_observed_rt = false;
  };
  void RecordCheckOutcome(const CheckOutcome& outcome);

  // -- Miss cards -----------------------------------------------------------

  /// Cluster fault state at miss time, read from the fault injector.
  struct FaultState {
    uint64_t nodes_down = 0;
    uint64_t nodes_degraded = 0;
    bool partitioned = false;
    uint64_t partition_epoch = 0;
    /// Corruption strikes injected since the previous check of this class.
    uint64_t corruptions_since_last_check = 0;
  };

  /// Structured root cause of one missed goal check.
  struct MissCard {
    int interval = 0;
    double sim_time_ms = 0.0;
    uint32_t klass = 0;
    double observed_rt_ms = 0.0;
    double goal_rt_ms = 0.0;
    double tolerance_ms = 0.0;
    /// Mean over the last kBaselineWindow satisfied checks (0 when the
    /// class never satisfied a check yet).
    double baseline_rt_ms = 0.0;
    double deviation_ms = 0.0;
    /// Per-request mean budget of the last finalized interval, and the
    /// phase that dominated it.
    double phase_mean_ms[kNumBudgetPhases] = {};
    BudgetPhase dominant_phase = BudgetPhase::kResidual;
    double dominant_ms = 0.0;
    // Coincident faults.
    uint64_t nodes_down = 0;
    uint64_t nodes_degraded = 0;
    bool partitioned = false;
    uint64_t partition_epoch = 0;
    uint64_t corruptions = 0;
    // Controller state.
    bool lp_run = false;
    std::string lp_mode;
    int relaxed_rung = -1;
  };

  /// Builds, stores and returns the miss card for one missed check. The
  /// caller (the goal controller) copies the card into its decision
  /// record; `lp_mode`/`lp_run`/`relaxed_rung` arrive separately because
  /// they are only known at the end of the check.
  const MissCard& RecordMiss(uint32_t klass, int interval, double sim_time_ms,
                             double observed_rt_ms, double goal_rt_ms,
                             double tolerance_ms, const FaultState& faults);

  /// Fills in the controller-state fields of the most recent miss card of
  /// `klass` (the LP outcome is decided after the miss is detected).
  void AnnotateLastMiss(uint32_t klass, bool lp_run,
                        const std::string& lp_mode, int relaxed_rung);

  /// Cumulative corruption-strike total at the last check of `klass`
  /// (helper for computing corruptions_since_last_check deterministically).
  uint64_t NoteCorruptions(uint32_t klass, uint64_t cumulative_corruptions);

  // -- Export ---------------------------------------------------------------

  /// Mirrors per-class budget and SLO instruments into the registry
  /// ("class<k>.budget.<phase>_ms", "class<k>.slo.*"). Called once per
  /// interval before the registry snapshot.
  void PublishTo(Registry* registry) const;

  /// One JSON object per budget row, then one per miss card
  /// (`"type":"miss_card"`). Doubles use %.17g so rows round-trip exactly.
  void WriteJsonl(std::FILE* out) const;
  /// Budget rows only, long-format CSV.
  void WriteCsv(std::FILE* out) const;
  /// Human-readable per-class attainment + miss summary (end of run).
  void WriteSummary(std::FILE* out) const;

  const std::vector<BudgetRow>& rows() const { return rows_; }
  const std::vector<MissCard>& cards() const { return cards_; }
  uint64_t requests_recorded() const { return requests_recorded_; }
  /// Largest |response_ms - budget.Sum()| seen by RecordRequest: the
  /// closed-budget property the tests gate at 1e-9.
  double max_sum_error() const { return max_sum_error_; }

  struct SloState {
    uint64_t intervals_counted = 0;
    uint64_t intervals_satisfied = 0;
    uint64_t misses = 0;
    int64_t intervals_since_miss = -1;  // -1 = never missed
    /// Sliding satisfaction window (front = oldest), capped at kSlowWindow.
    std::deque<bool> window;
    /// Allocation oscillation: direction reversals of the per-interval
    /// dedicated-bytes delta.
    uint64_t oscillations = 0;
    uint64_t last_dedicated_bytes = 0;
    int last_delta_sign = 0;
    bool has_last_bytes = false;
    /// Converged baseline: last kBaselineWindow satisfied-check RTs.
    std::deque<double> baseline_rts;
    /// LP relaxation-rung residency over checks (rung+1 indexed; [0] = no
    /// relaxation).
    std::vector<uint64_t> rung_checks;
    uint64_t checks = 0;
    uint64_t last_corruptions = 0;
  };
  /// Per-class SLO state (tests); classes appear once observed.
  const std::map<uint32_t, SloState>& slo() const { return slo_; }

  /// Fraction of the last `window` intervals missed, scaled by the error
  /// budget: burn rate 1.0 = missing exactly at the allowed rate.
  static double BurnRate(const SloState& state, int window);

 private:
  struct Accum {
    uint64_t requests = 0;
    double rt_sum_ms = 0.0;
    double phase_ms[kNumBudgetPhases] = {};
  };

  bool enabled_ = false;
  // (klass << 32 | node) -> current-interval accumulator. std::map for
  // deterministic flush order.
  std::map<uint64_t, Accum> current_;
  std::vector<BudgetRow> rows_;
  std::vector<MissCard> cards_;
  std::map<uint32_t, SloState> slo_;
  // Last finalized interval's per-class budget (summed over nodes), the
  // miss card's attribution source.
  std::map<uint32_t, Accum> last_interval_;
  uint64_t requests_recorded_ = 0;
  double max_sum_error_ = 0.0;
};

}  // namespace memgoal::obs

#endif  // MEMGOAL_OBS_ATTAINMENT_H_
