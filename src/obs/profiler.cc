#include "obs/profiler.h"

#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <utility>

#include "common/check.h"

#if defined(__x86_64__) || defined(__i386__)
#define MEMGOAL_PROFILER_TSC 1
#endif

namespace memgoal::obs {

namespace {

thread_local Profiler* t_current_profiler = nullptr;

uint64_t SteadyNowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

#if defined(MEMGOAL_PROFILER_TSC)
// Nanoseconds per TSC tick, measured once at process start against
// steady_clock over a ~200 µs window (<1% error; the bench wall gate's
// threshold is 15%). Modern x86 TSCs are constant-rate and synchronized
// across cores, so one scale serves every thread.
double CalibrateNsPerTick() {
  const uint64_t t0 = SteadyNowNs();
  const uint64_t c0 = __builtin_ia32_rdtsc();
  for (;;) {
    const uint64_t t1 = SteadyNowNs();
    const uint64_t c1 = __builtin_ia32_rdtsc();
    if (t1 - t0 >= 200000 && c1 > c0) {
      return static_cast<double>(t1 - t0) / static_cast<double>(c1 - c0);
    }
  }
}

const double g_ns_per_tick = CalibrateNsPerTick();
#endif  // MEMGOAL_PROFILER_TSC

}  // namespace

uint64_t Profiler::NowNs() {
#if defined(MEMGOAL_PROFILER_TSC)
  return static_cast<uint64_t>(
      static_cast<double>(__builtin_ia32_rdtsc()) * g_ns_per_tick);
#else
  return SteadyNowNs();
#endif
}

const char* PhaseName(Phase phase) {
  switch (phase) {
    case Phase::kSimStep:
      return "sim.step";
    case Phase::kVictimSelect:
      return "cache.victim_select";
    case Phase::kHeapMaintain:
      return "cache.heap_maintain";
    case Phase::kHeatUpdate:
      return "cache.heat_update";
    case Phase::kSimplexSolve:
      return "la.simplex_solve";
    case Phase::kRowReplace:
      return "la.row_replace";
    case Phase::kNetSend:
      return "net.send";
    case Phase::kNetReceive:
      return "net.receive";
    case Phase::kControllerCheck:
      return "ctrl.check";
  }
  return "?";
}

Profiler* Profiler::Current() { return t_current_profiler; }

Profiler::ScopedInstall::ScopedInstall(Profiler* profiler)
    : previous_(t_current_profiler) {
  t_current_profiler = profiler;
}

Profiler::ScopedInstall::~ScopedInstall() {
  t_current_profiler = previous_;
}

void Profiler::Push(Phase phase) {
  Frame frame;
  frame.phase = phase;
  frame.child_ns = 0;
  frame.parent_path = current_path_;
  if (stack_.size() < static_cast<size_t>(kMaxEncodedDepth)) {
    current_path_ =
        (current_path_ << 5) | (static_cast<uint64_t>(phase) + 1);
  }
  frame.start_ns = NowNs();  // last: exclude the push bookkeeping itself
  stack_.push_back(frame);
}

void Profiler::Pop() {
  const uint64_t now = NowNs();
  MEMGOAL_DCHECK(!stack_.empty());
  const Frame frame = stack_.back();
  stack_.pop_back();
  // TSC reads can jitter a hair across a thread migration; clamp instead
  // of wrapping to a ~2^64 ns sample.
  const uint64_t elapsed =
      now >= frame.start_ns ? now - frame.start_ns : 0;

  PhaseStats& flat = phases_[static_cast<size_t>(frame.phase)];
  ++flat.count;
  flat.total_ns += elapsed;
  flat.max_ns = std::max(flat.max_ns, elapsed);

  if (current_path_ != memo_key_ || memo_ == nullptr) {
    memo_ = &paths_[current_path_];
    memo_key_ = current_path_;
  }
  ++memo_->count;
  memo_->self_ns += elapsed - std::min(elapsed, frame.child_ns);

  if (!stack_.empty()) stack_.back().child_ns += elapsed;
  current_path_ = frame.parent_path;
}

void Profiler::AddSample(Phase phase, uint64_t ns) {
  PhaseStats& flat = phases_[static_cast<size_t>(phase)];
  ++flat.count;
  flat.total_ns += ns;
  flat.max_ns = std::max(flat.max_ns, ns);
  PathStats& path = paths_[static_cast<uint64_t>(phase) + 1];
  ++path.count;
  path.self_ns += ns;
}

void Profiler::Merge(const Profiler& other) {
  MEMGOAL_DCHECK(other.stack_.empty());
  for (int i = 0; i < kNumPhases; ++i) {
    const PhaseStats& theirs = other.phases_[static_cast<size_t>(i)];
    PhaseStats& ours = phases_[static_cast<size_t>(i)];
    ours.count += theirs.count;
    ours.total_ns += theirs.total_ns;
    ours.max_ns = std::max(ours.max_ns, theirs.max_ns);
  }
  for (const auto& [encoded, theirs] : other.paths_) {
    PathStats& ours = paths_[encoded];
    ours.count += theirs.count;
    ours.self_ns += theirs.self_ns;
  }
}

uint64_t Profiler::total_count() const {
  uint64_t total = 0;
  for (const PhaseStats& stats : phases_) total += stats.count;
  return total;
}

uint64_t Profiler::profiled_ns() const {
  // Self times partition the profiled wall clock — every nanosecond under a
  // scope is attributed to exactly one stack path — so summing all paths
  // yields the inclusive total of the root-level scopes.
  uint64_t total = 0;
  for (const auto& [encoded, stats] : paths_) {
    total += stats.self_ns;
  }
  return total;
}

namespace {

/// Decodes a 5-bits-per-level path into "memgoal;phase;phase...".
std::string DecodePath(uint64_t encoded) {
  std::vector<Phase> levels;
  while (encoded != 0) {
    levels.push_back(static_cast<Phase>((encoded & 31) - 1));
    encoded >>= 5;
  }
  std::string out = "memgoal";
  for (auto it = levels.rbegin(); it != levels.rend(); ++it) {
    out += ';';
    out += PhaseName(*it);
  }
  return out;
}

}  // namespace

void Profiler::WriteTable(std::FILE* out, double run_wall_seconds) const {
  // Sorted by inclusive total, descending; ties break on phase index so the
  // table is deterministic.
  std::vector<int> order;
  for (int i = 0; i < kNumPhases; ++i) {
    if (phases_[static_cast<size_t>(i)].count > 0) order.push_back(i);
  }
  std::sort(order.begin(), order.end(), [this](int a, int b) {
    const uint64_t ta = phases_[static_cast<size_t>(a)].total_ns;
    const uint64_t tb = phases_[static_cast<size_t>(b)].total_ns;
    if (ta != tb) return ta > tb;
    return a < b;
  });

  std::fprintf(out,
               "%-22s %12s %12s %10s %10s %7s\n", "phase", "count",
               "total_ms", "mean_us", "max_us", "pct");
  for (int i : order) {
    const PhaseStats& stats = phases_[static_cast<size_t>(i)];
    const double total_ms = static_cast<double>(stats.total_ns) / 1e6;
    const double mean_us = static_cast<double>(stats.total_ns) / 1e3 /
                           static_cast<double>(stats.count);
    const double max_us = static_cast<double>(stats.max_ns) / 1e3;
    if (run_wall_seconds > 0.0) {
      std::fprintf(out, "%-22s %12" PRIu64 " %12.3f %10.2f %10.2f %6.2f%%\n",
                   PhaseName(static_cast<Phase>(i)), stats.count, total_ms,
                   mean_us, max_us, 100.0 * total_ms / 1e3 / run_wall_seconds);
    } else {
      std::fprintf(out, "%-22s %12" PRIu64 " %12.3f %10.2f %10.2f %7s\n",
                   PhaseName(static_cast<Phase>(i)), stats.count, total_ms,
                   mean_us, max_us, "-");
    }
  }
}

void Profiler::WriteFolded(std::FILE* out) const {
  // Sort by encoded path: the hash map has no stable order, the output
  // must (same profile -> same bytes).
  std::vector<std::pair<uint64_t, const PathStats*>> sorted;
  sorted.reserve(paths_.size());
  for (const auto& [encoded, stats] : paths_) {
    sorted.emplace_back(encoded, &stats);
  }
  std::sort(sorted.begin(), sorted.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  for (const auto& [encoded, stats] : sorted) {
    if (stats->self_ns == 0 && stats->count == 0) continue;
    std::fprintf(out, "%s %" PRIu64 "\n", DecodePath(encoded).c_str(),
                 stats->self_ns);
  }
}

void Profiler::AppendJson(std::string* out) const {
  char buffer[256];
  out->append("{\"phases\":[");
  bool first = true;
  for (int i = 0; i < kNumPhases; ++i) {
    const PhaseStats& stats = phases_[static_cast<size_t>(i)];
    if (stats.count == 0) continue;
    std::snprintf(buffer, sizeof(buffer),
                  "%s{\"name\":\"%s\",\"count\":%" PRIu64
                  ",\"total_ms\":%.6f,\"mean_us\":%.3f,\"max_us\":%.3f}",
                  first ? "" : ",", PhaseName(static_cast<Phase>(i)),
                  stats.count, static_cast<double>(stats.total_ns) / 1e6,
                  static_cast<double>(stats.total_ns) / 1e3 /
                      static_cast<double>(stats.count),
                  static_cast<double>(stats.max_ns) / 1e3);
    out->append(buffer);
    first = false;
  }
  std::snprintf(buffer, sizeof(buffer), "],\"profiled_ms\":%.6f}",
                static_cast<double>(profiled_ns()) / 1e6);
  out->append(buffer);
}

}  // namespace memgoal::obs
