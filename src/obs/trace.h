#ifndef MEMGOAL_OBS_TRACE_H_
#define MEMGOAL_OBS_TRACE_H_

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

namespace memgoal::obs {

/// Sim-time request tracer producing Chrome trace-event JSON, so a
/// simulation run opens directly in Perfetto (ui.perfetto.dev) or
/// chrome://tracing.
///
/// Instrumented call sites hold a `Tracer*` that is null by default; when a
/// tracer is attached but disabled, every emit reduces to one branch on a
/// bool, so tracing stays compiled in at negligible cost (the overhead gate
/// in bench_table1_overhead enforces this). Timestamps are *simulated* time:
/// callers pass sim-time milliseconds, which are exported as the trace
/// format's microseconds, so one trace tick equals one simulated nanosecond
/// of the modeled NOW and the viewer's zoom levels stay meaningful.
///
/// Span taxonomy (see DESIGN.md):
///   cat "access": access, cache_probe, fetch_wait, backoff, disk_read
///                 (complete events) and dir_lookup, hedge, fetch_timeout
///                 (instants), all on one track per page access;
///   cat "net":    net_transfer complete events, one track per transfer.
class Tracer {
 public:
  Tracer() = default;
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  void Enable(bool on) { enabled_ = on; }
  bool enabled() const { return enabled_; }

  /// Allocates a fresh logical track (trace "tid"). Each page access / each
  /// network transfer gets its own track so its phase spans nest cleanly.
  uint64_t NextTrack() { return next_track_++; }

  /// Complete event ("ph":"X") covering [start_ms, end_ms] of simulated
  /// time. `args_json` is either empty or a JSON object literal ("{...}")
  /// rendered verbatim into the event's "args".
  void Complete(const char* name, const char* category, uint32_t pid,
                uint64_t tid, double start_ms, double end_ms,
                std::string args_json = std::string());

  /// Thread-scoped instant event ("ph":"i").
  void Instant(const char* name, const char* category, uint32_t pid,
               uint64_t tid, double ts_ms,
               std::string args_json = std::string());

  /// Process-name metadata record ("ph":"M"), e.g. naming pid 2 "node2".
  void SetProcessName(uint32_t pid, const std::string& name);

  size_t size() const { return events_.size(); }

  /// Serializes as {"traceEvents":[...]}, one event per line (the
  /// line-per-event layout is what the schema-validation test scans).
  void AppendJson(std::string* out) const;
  void WriteJson(std::FILE* out) const;

 private:
  struct TraceEvent {
    std::string name;
    std::string category;
    char ph = 'X';
    uint32_t pid = 0;
    uint64_t tid = 0;
    double ts_us = 0.0;
    double dur_us = 0.0;  // complete events only
    std::string args_json;
  };

  bool enabled_ = false;
  uint64_t next_track_ = 1;
  std::vector<TraceEvent> events_;
};

}  // namespace memgoal::obs

#endif  // MEMGOAL_OBS_TRACE_H_
