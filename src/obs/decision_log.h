#ifndef MEMGOAL_OBS_DECISION_LOG_H_
#define MEMGOAL_OBS_DECISION_LOG_H_

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

namespace memgoal::obs {

/// One structured record per controller observation interval, tracing the
/// full feedback chain of the paper's method: the measure point (accepted
/// or rejected, and why), the basis condition estimate, the fitted plane
/// coefficients, the LP status including which relaxation rung fired, and
/// the shipped vs. clamped vs. granted per-node allocation.
///
/// Doubles serialize with %.17g, so a record round-trips bit-exactly: the
/// replay test parses one record and re-runs SolvePartitioning on the
/// logged {planes, goal, bounds} to reproduce the logged allocation
/// bit-for-bit. Stage fields are optional (has_* / *_run flags) because a
/// check can exit early — e.g. no finished requests, within tolerance, or
/// a warm-up resize that never reaches the LP.
struct DecisionRecord {
  int interval = 0;
  double sim_time_ms = 0.0;
  int klass = 0;
  int home = 0;
  /// Fencing epoch of the coordinator's lease at check time.
  uint64_t epoch = 1;
  /// False when the check was skipped in the leaseless static fallback
  /// (minority side of a partition); the stage fields below then stay at
  /// their defaults.
  bool lease_held = true;

  // Measurement stage.
  double observed_rt_k = 0.0;
  bool has_observed_rt_0 = false;
  double observed_rt_0 = 0.0;
  double goal_rt = 0.0;
  double tolerance_delta = 0.0;
  /// "accepted", "refreshed", "outlier", "rejected_dependent",
  /// "condition_reset", or "" when no measurement was recorded.
  std::string measure_outcome;
  std::vector<double> measured_allocation;
  double condition_estimate = 0.0;
  bool store_ready = false;
  int store_size = 0;

  // Approximation stage.
  bool has_planes = false;
  std::vector<double> grad_k;
  double intercept_k = 0.0;
  std::vector<double> grad_0;
  double intercept_0 = 0.0;

  // Optimization stage.
  std::vector<double> upper_bounds;
  bool lp_run = false;
  /// "goal_equality", "goal_inequality", "goal_relaxed", "best_effort".
  std::string lp_mode;
  /// Index into kGoalRelaxationLadder that produced a feasible LP, or -1.
  int relaxed_rung = -1;
  double relaxed_goal_rt = 0.0;
  uint64_t lp_optimal = 0;
  uint64_t lp_infeasible = 0;
  uint64_t lp_unbounded = 0;
  uint64_t lp_iteration_limit = 0;
  uint64_t lp_relaxed_retries = 0;
  /// True when the previous interval's simplex basis was offered as a warm
  /// start; lp_warm_basis is its 'L'/'U'/'B' text form (empty when cold),
  /// so a replay can reproduce the warm-started solve exactly.
  bool lp_warm = false;
  std::string lp_warm_basis;
  /// Raw LP solution before damping/clamping/rounding.
  std::vector<double> lp_allocation;

  // Actuation stage.
  /// What SendAllocations asked each node for after damping and frame
  /// rounding ("" / empty when the check exited before resizing).
  std::vector<double> shipped_allocation;
  /// What the nodes actually granted (ack'd views).
  std::vector<double> granted_allocation;

  // Goal-miss root-cause card (attainment layer). Optional: serialized
  // only when miss_card is true, and parsed leniently so records written
  // before the attainment PR — or by runs without the tracker — still
  // round-trip.
  bool miss_card = false;
  /// Dominant budget phase of the last finalized interval ("disk_wait",
  /// "fetch_wait", ...; see obs/latency_budget.h).
  std::string miss_dominant_phase;
  double miss_dominant_ms = 0.0;
  /// Per-request mean sim-ms per budget phase, in BudgetPhase order.
  std::vector<double> miss_phase_ms;
  /// Mean observed RT over the recent satisfied checks, and how far this
  /// miss deviates from it.
  double miss_baseline_rt = 0.0;
  double miss_deviation_ms = 0.0;
  // Coincident fault state at the missed check.
  uint64_t miss_nodes_down = 0;
  uint64_t miss_nodes_degraded = 0;
  bool miss_partitioned = false;
  uint64_t miss_corruptions = 0;

  /// Single-line JSON object (no trailing newline).
  std::string ToJson() const;

  /// Parses a record serialized by ToJson. Returns false on malformed
  /// input. Only scans for ToJson's own key layout — this is a test/replay
  /// helper, not a general JSON parser.
  static bool FromJson(const std::string& json, DecisionRecord* out);
};

/// Append-only JSONL sink for decision records.
class DecisionLog {
 public:
  void Append(DecisionRecord record) { records_.push_back(std::move(record)); }

  const std::vector<DecisionRecord>& records() const { return records_; }
  size_t size() const { return records_.size(); }

  /// One ToJson line per record.
  void WriteJsonl(std::FILE* out) const;

 private:
  std::vector<DecisionRecord> records_;
};

}  // namespace memgoal::obs

#endif  // MEMGOAL_OBS_DECISION_LOG_H_
