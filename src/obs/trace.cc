#include "obs/trace.h"

#include <cinttypes>
#include <utility>

#include "common/check.h"

namespace memgoal::obs {

namespace {

/// Trace names/categories are compile-time literals and process names are
/// "nodeN"; escaping covers the characters that could still break the JSON
/// if a caller passes something unusual.
void AppendEscaped(std::string* out, const std::string& s) {
  for (char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      default:
        if (static_cast<unsigned char>(c) >= 0x20) out->push_back(c);
    }
  }
}

}  // namespace

void Tracer::Complete(const char* name, const char* category, uint32_t pid,
                      uint64_t tid, double start_ms, double end_ms,
                      std::string args_json) {
  if (!enabled_) return;
  MEMGOAL_DCHECK(end_ms >= start_ms);
  TraceEvent event;
  event.name = name;
  event.category = category;
  event.ph = 'X';
  event.pid = pid;
  event.tid = tid;
  event.ts_us = start_ms * 1000.0;
  event.dur_us = (end_ms - start_ms) * 1000.0;
  event.args_json = std::move(args_json);
  events_.push_back(std::move(event));
}

void Tracer::Instant(const char* name, const char* category, uint32_t pid,
                     uint64_t tid, double ts_ms, std::string args_json) {
  if (!enabled_) return;
  TraceEvent event;
  event.name = name;
  event.category = category;
  event.ph = 'i';
  event.pid = pid;
  event.tid = tid;
  event.ts_us = ts_ms * 1000.0;
  event.args_json = std::move(args_json);
  events_.push_back(std::move(event));
}

void Tracer::SetProcessName(uint32_t pid, const std::string& name) {
  if (!enabled_) return;
  TraceEvent event;
  event.name = "process_name";
  event.category = "__metadata";
  event.ph = 'M';
  event.pid = pid;
  event.args_json = "{\"name\":\"" + name + "\"}";
  events_.push_back(std::move(event));
}

void Tracer::AppendJson(std::string* out) const {
  *out += "{\"traceEvents\":[\n";
  char buffer[128];
  for (size_t i = 0; i < events_.size(); ++i) {
    const TraceEvent& e = events_[i];
    *out += "{\"name\":\"";
    AppendEscaped(out, e.name);
    *out += "\",\"cat\":\"";
    AppendEscaped(out, e.category);
    *out += "\",\"ph\":\"";
    out->push_back(e.ph);
    std::snprintf(buffer, sizeof(buffer),
                  "\",\"pid\":%" PRIu32 ",\"tid\":%" PRIu64 ",\"ts\":%.3f",
                  e.pid, e.tid, e.ts_us);
    *out += buffer;
    if (e.ph == 'X') {
      std::snprintf(buffer, sizeof(buffer), ",\"dur\":%.3f", e.dur_us);
      *out += buffer;
    } else if (e.ph == 'i') {
      *out += ",\"s\":\"t\"";  // thread-scoped instant
    }
    if (!e.args_json.empty()) {
      *out += ",\"args\":";
      *out += e.args_json;
    }
    *out += '}';
    if (i + 1 < events_.size()) *out += ',';
    *out += '\n';
  }
  *out += "]}\n";
}

void Tracer::WriteJson(std::FILE* out) const {
  std::string text;
  AppendJson(&text);
  std::fwrite(text.data(), 1, text.size(), out);
}

}  // namespace memgoal::obs
