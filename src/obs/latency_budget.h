#ifndef MEMGOAL_OBS_LATENCY_BUDGET_H_
#define MEMGOAL_OBS_LATENCY_BUDGET_H_

namespace memgoal::obs {

/// Phases a completed request's simulated response time is attributed to.
/// The decomposition follows the resources a request can block on in the
/// modeled NOW: CPU and disk split into queue wait vs. service, the shared
/// network medium into queue wait vs. transmission+latency, plus the
/// request-level phases the access path introduces on top — the hedged
/// remote-fetch window, the post-fetch backoff, and (for transactions) lock
/// waits and WAL forces. kResidual absorbs whatever the instrumented spans
/// did not cover (e.g. inline repair work), so a budget always sums to the
/// measured response time exactly by construction.
enum class BudgetPhase : int {
  kCpuWait = 0,
  kCpuService,
  kDiskWait,
  kDiskService,
  kNetWait,
  kNetTransfer,
  kFetchWait,
  kBackoff,
  kLockWait,
  kWalForce,
  kResidual,
};

inline constexpr int kNumBudgetPhases = 11;

/// Stable export name of a phase ("cpu_wait", "fetch_wait", ...).
const char* BudgetPhaseName(BudgetPhase phase);

/// One request's latency budget: sim-milliseconds per phase. Plain
/// accumulator struct — the access path fills it through an optional
/// pointer, so a null budget keeps the hot path at one branch per site.
struct RequestBudget {
  double phase_ms[kNumBudgetPhases] = {};

  void Add(BudgetPhase phase, double ms) {
    phase_ms[static_cast<int>(phase)] += ms;
  }

  /// Sum over every phase including the residual, in fixed phase order
  /// (deterministic float summation).
  double Sum() const {
    double total = 0.0;
    for (double v : phase_ms) total += v;
    return total;
  }

  /// Sum of the attributed phases (everything but kResidual).
  double AttributedSum() const {
    double total = 0.0;
    for (int i = 0; i < kNumBudgetPhases - 1; ++i) total += phase_ms[i];
    return total;
  }

  /// Closes the budget against the measured response time: the residual
  /// becomes total_rt_ms minus the attributed sum. A (tiny) negative
  /// residual means over-attribution and is kept as-is so the property
  /// test can see it.
  void SetResidual(double total_rt_ms) {
    phase_ms[static_cast<int>(BudgetPhase::kResidual)] =
        total_rt_ms - AttributedSum();
  }
};

}  // namespace memgoal::obs

#endif  // MEMGOAL_OBS_LATENCY_BUDGET_H_
