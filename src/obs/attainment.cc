#include "obs/attainment.h"

#include <algorithm>
#include <cinttypes>
#include <cmath>
#include <cstdio>

#include "obs/registry.h"

namespace memgoal::obs {

void AttainmentTracker::RecordRequest(uint32_t klass, uint32_t node,
                                      double response_ms,
                                      const RequestBudget& budget) {
  if (!enabled_) return;
  Accum& accum = current_[(static_cast<uint64_t>(klass) << 32) | node];
  ++accum.requests;
  accum.rt_sum_ms += response_ms;
  for (int i = 0; i < kNumBudgetPhases; ++i) {
    accum.phase_ms[i] += budget.phase_ms[i];
  }
  ++requests_recorded_;
  const double err = std::fabs(response_ms - budget.Sum());
  if (err > max_sum_error_) max_sum_error_ = err;
}

void AttainmentTracker::OnIntervalEnd(int interval, double sim_time_ms,
                                      const std::vector<ClassSample>& samples) {
  if (!enabled_) return;

  // Finalize budget rows (sorted by (class, node) via the map order) and
  // roll the per-class totals into the miss-card attribution source.
  last_interval_.clear();
  for (const auto& [key, accum] : current_) {
    BudgetRow row;
    row.interval = interval;
    row.sim_time_ms = sim_time_ms;
    row.klass = static_cast<uint32_t>(key >> 32);
    row.node = static_cast<uint32_t>(key & 0xffffffffu);
    row.requests = accum.requests;
    row.rt_sum_ms = accum.rt_sum_ms;
    for (int i = 0; i < kNumBudgetPhases; ++i) {
      row.phase_ms[i] = accum.phase_ms[i];
    }
    rows_.push_back(row);
    Accum& klass_total = last_interval_[row.klass];
    klass_total.requests += accum.requests;
    klass_total.rt_sum_ms += accum.rt_sum_ms;
    for (int i = 0; i < kNumBudgetPhases; ++i) {
      klass_total.phase_ms[i] += accum.phase_ms[i];
    }
  }
  current_.clear();

  // Advance the SLO windows. Only intervals with a goal and at least one
  // completed operation count against the budget — an idle interval can
  // neither meet nor miss a goal.
  for (const ClassSample& sample : samples) {
    SloState& state = slo_[sample.klass];
    // Oscillation detector runs for every class (allocation churn of the
    // no-goal class is a convergence signal too).
    if (state.has_last_bytes) {
      const int sign =
          sample.dedicated_bytes > state.last_dedicated_bytes
              ? 1
              : (sample.dedicated_bytes < state.last_dedicated_bytes ? -1 : 0);
      if (sign != 0 && state.last_delta_sign != 0 &&
          sign != state.last_delta_sign) {
        ++state.oscillations;
      }
      if (sign != 0) state.last_delta_sign = sign;
    }
    state.last_dedicated_bytes = sample.dedicated_bytes;
    state.has_last_bytes = true;

    if (!sample.has_goal || sample.ops_completed == 0) continue;
    ++state.intervals_counted;
    if (sample.satisfied) {
      ++state.intervals_satisfied;
      if (state.intervals_since_miss >= 0) ++state.intervals_since_miss;
    } else {
      ++state.misses;
      state.intervals_since_miss = 0;
    }
    state.window.push_back(sample.satisfied);
    if (state.window.size() > static_cast<size_t>(kSlowWindow)) {
      state.window.pop_front();
    }
  }
}

void AttainmentTracker::RecordCheckOutcome(const CheckOutcome& outcome) {
  if (!enabled_) return;
  SloState& state = slo_[outcome.klass];
  ++state.checks;
  const size_t rung_slot = static_cast<size_t>(outcome.relaxed_rung + 1);
  if (state.rung_checks.size() <= rung_slot) {
    state.rung_checks.resize(rung_slot + 1, 0);
  }
  ++state.rung_checks[rung_slot];
  // A check that found the class inside its band refreshes the converged
  // baseline the next miss is compared against.
  if (outcome.has_observed_rt && !outcome.too_slow) {
    state.baseline_rts.push_back(outcome.observed_rt_ms);
    if (state.baseline_rts.size() > static_cast<size_t>(kBaselineWindow)) {
      state.baseline_rts.pop_front();
    }
  }
}

const AttainmentTracker::MissCard& AttainmentTracker::RecordMiss(
    uint32_t klass, int interval, double sim_time_ms, double observed_rt_ms,
    double goal_rt_ms, double tolerance_ms, const FaultState& faults) {
  MissCard card;
  card.interval = interval;
  card.sim_time_ms = sim_time_ms;
  card.klass = klass;
  card.observed_rt_ms = observed_rt_ms;
  card.goal_rt_ms = goal_rt_ms;
  card.tolerance_ms = tolerance_ms;

  const SloState& state = slo_[klass];
  if (!state.baseline_rts.empty()) {
    double sum = 0.0;
    for (double rt : state.baseline_rts) sum += rt;
    card.baseline_rt_ms = sum / static_cast<double>(state.baseline_rts.size());
  }
  card.deviation_ms = observed_rt_ms - card.baseline_rt_ms;

  const auto it = last_interval_.find(klass);
  if (it != last_interval_.end() && it->second.requests > 0) {
    const double n = static_cast<double>(it->second.requests);
    for (int i = 0; i < kNumBudgetPhases; ++i) {
      card.phase_mean_ms[i] = it->second.phase_ms[i] / n;
    }
    // Dominant phase: largest mean share; first in enum order wins ties so
    // the card is deterministic.
    int best = 0;
    for (int i = 1; i < kNumBudgetPhases; ++i) {
      if (card.phase_mean_ms[i] > card.phase_mean_ms[best]) best = i;
    }
    card.dominant_phase = static_cast<BudgetPhase>(best);
    card.dominant_ms = card.phase_mean_ms[best];
  }

  card.nodes_down = faults.nodes_down;
  card.nodes_degraded = faults.nodes_degraded;
  card.partitioned = faults.partitioned;
  card.partition_epoch = faults.partition_epoch;
  card.corruptions = faults.corruptions_since_last_check;

  cards_.push_back(std::move(card));
  return cards_.back();
}

void AttainmentTracker::AnnotateLastMiss(uint32_t klass, bool lp_run,
                                         const std::string& lp_mode,
                                         int relaxed_rung) {
  for (auto it = cards_.rbegin(); it != cards_.rend(); ++it) {
    if (it->klass != klass) continue;
    it->lp_run = lp_run;
    it->lp_mode = lp_mode;
    it->relaxed_rung = relaxed_rung;
    return;
  }
}

uint64_t AttainmentTracker::NoteCorruptions(uint32_t klass,
                                            uint64_t cumulative_corruptions) {
  SloState& state = slo_[klass];
  const uint64_t since =
      cumulative_corruptions >= state.last_corruptions
          ? cumulative_corruptions - state.last_corruptions
          : 0;
  state.last_corruptions = cumulative_corruptions;
  return since;
}

double AttainmentTracker::BurnRate(const SloState& state, int window) {
  const size_t n = std::min(state.window.size(), static_cast<size_t>(window));
  if (n == 0) return 0.0;
  size_t missed = 0;
  for (size_t i = state.window.size() - n; i < state.window.size(); ++i) {
    if (!state.window[i]) ++missed;
  }
  const double miss_fraction = static_cast<double>(missed) / static_cast<double>(n);
  return miss_fraction / kErrorBudgetFraction;
}

void AttainmentTracker::PublishTo(Registry* registry) const {
  if (!enabled_ || registry == nullptr) return;
  char name[96];
  for (const auto& [klass, accum] : last_interval_) {
    for (int i = 0; i < kNumBudgetPhases; ++i) {
      std::snprintf(name, sizeof(name), "class%u.budget.%s_ms", klass,
                    BudgetPhaseName(static_cast<BudgetPhase>(i)));
      registry->GetGauge(name)->Set(accum.phase_ms[i]);
    }
    std::snprintf(name, sizeof(name), "class%u.budget.requests", klass);
    registry->GetGauge(name)->Set(static_cast<double>(accum.requests));
  }
  for (const auto& [klass, state] : slo_) {
    if (state.intervals_counted > 0) {
      std::snprintf(name, sizeof(name), "class%u.slo.attainment", klass);
      registry->GetGauge(name)->Set(
          static_cast<double>(state.intervals_satisfied) /
          static_cast<double>(state.intervals_counted));
      std::snprintf(name, sizeof(name), "class%u.slo.error_budget_used",
                    klass);
      registry->GetGauge(name)->Set(
          static_cast<double>(state.misses) /
          (kErrorBudgetFraction *
           static_cast<double>(state.intervals_counted)));
      std::snprintf(name, sizeof(name), "class%u.slo.burn_fast", klass);
      registry->GetGauge(name)->Set(BurnRate(state, kFastWindow));
      std::snprintf(name, sizeof(name), "class%u.slo.burn_slow", klass);
      registry->GetGauge(name)->Set(BurnRate(state, kSlowWindow));
      std::snprintf(name, sizeof(name), "class%u.slo.misses", klass);
      registry->GetCounter(name)->Set(state.misses);
      std::snprintf(name, sizeof(name), "class%u.slo.intervals_since_miss",
                    klass);
      registry->GetGauge(name)->Set(
          static_cast<double>(state.intervals_since_miss));
    }
    std::snprintf(name, sizeof(name), "class%u.slo.oscillations", klass);
    registry->GetCounter(name)->Set(state.oscillations);
  }
  registry->GetCounter("attainment.miss_cards")->Set(cards_.size());
  registry->GetCounter("attainment.requests")->Set(requests_recorded_);
}

namespace {

void AppendDouble(std::string* out, double v) {
  char buffer[40];
  std::snprintf(buffer, sizeof(buffer), "%.17g", v);
  *out += buffer;
}

void AppendKey(std::string* out, const char* key) {
  *out += ",\"";
  *out += key;
  *out += "\":";
}

}  // namespace

void AttainmentTracker::WriteJsonl(std::FILE* out) const {
  std::string line;
  for (const BudgetRow& row : rows_) {
    line.clear();
    char head[128];
    std::snprintf(head, sizeof(head),
                  "{\"type\":\"budget\",\"interval\":%d,\"class\":%u,"
                  "\"node\":%u,\"requests\":%" PRIu64,
                  row.interval, row.klass, row.node, row.requests);
    line += head;
    AppendKey(&line, "sim_time_ms");
    AppendDouble(&line, row.sim_time_ms);
    AppendKey(&line, "rt_sum_ms");
    AppendDouble(&line, row.rt_sum_ms);
    for (int i = 0; i < kNumBudgetPhases; ++i) {
      char key[48];
      std::snprintf(key, sizeof(key), "%s_ms",
                    BudgetPhaseName(static_cast<BudgetPhase>(i)));
      AppendKey(&line, key);
      AppendDouble(&line, row.phase_ms[i]);
    }
    line += "}\n";
    std::fwrite(line.data(), 1, line.size(), out);
  }
  for (const MissCard& card : cards_) {
    line.clear();
    char head[320];
    std::snprintf(head, sizeof(head),
                  "{\"type\":\"miss_card\",\"interval\":%d,\"class\":%u,"
                  "\"dominant_phase\":\"%s\",\"nodes_down\":%" PRIu64
                  ",\"nodes_degraded\":%" PRIu64 ",\"partitioned\":%s"
                  ",\"partition_epoch\":%" PRIu64 ",\"corruptions\":%" PRIu64
                  ",\"lp_run\":%s,\"lp_mode\":\"%s\",\"relaxed_rung\":%d",
                  card.interval, card.klass,
                  BudgetPhaseName(card.dominant_phase), card.nodes_down,
                  card.nodes_degraded, card.partitioned ? "true" : "false",
                  card.partition_epoch, card.corruptions,
                  card.lp_run ? "true" : "false", card.lp_mode.c_str(),
                  card.relaxed_rung);
    line += head;
    AppendKey(&line, "sim_time_ms");
    AppendDouble(&line, card.sim_time_ms);
    AppendKey(&line, "observed_rt_ms");
    AppendDouble(&line, card.observed_rt_ms);
    AppendKey(&line, "goal_rt_ms");
    AppendDouble(&line, card.goal_rt_ms);
    AppendKey(&line, "tolerance_ms");
    AppendDouble(&line, card.tolerance_ms);
    AppendKey(&line, "baseline_rt_ms");
    AppendDouble(&line, card.baseline_rt_ms);
    AppendKey(&line, "deviation_ms");
    AppendDouble(&line, card.deviation_ms);
    AppendKey(&line, "dominant_ms");
    AppendDouble(&line, card.dominant_ms);
    for (int i = 0; i < kNumBudgetPhases; ++i) {
      char key[48];
      std::snprintf(key, sizeof(key), "mean_%s_ms",
                    BudgetPhaseName(static_cast<BudgetPhase>(i)));
      AppendKey(&line, key);
      AppendDouble(&line, card.phase_mean_ms[i]);
    }
    line += "}\n";
    std::fwrite(line.data(), 1, line.size(), out);
  }
}

void AttainmentTracker::WriteCsv(std::FILE* out) const {
  std::fprintf(out, "interval,sim_time_ms,class,node,requests,rt_sum_ms");
  for (int i = 0; i < kNumBudgetPhases; ++i) {
    std::fprintf(out, ",%s_ms", BudgetPhaseName(static_cast<BudgetPhase>(i)));
  }
  std::fputc('\n', out);
  for (const BudgetRow& row : rows_) {
    std::fprintf(out, "%d,%.3f,%u,%u,%" PRIu64 ",%.17g", row.interval,
                 row.sim_time_ms, row.klass, row.node, row.requests,
                 row.rt_sum_ms);
    for (int i = 0; i < kNumBudgetPhases; ++i) {
      std::fprintf(out, ",%.17g", row.phase_ms[i]);
    }
    std::fputc('\n', out);
  }
}

void AttainmentTracker::WriteSummary(std::FILE* out) const {
  for (const auto& [klass, state] : slo_) {
    if (state.intervals_counted == 0) continue;
    std::fprintf(out,
                 "# attainment class %u: %" PRIu64 "/%" PRIu64
                 " intervals satisfied (%.1f%%), misses=%" PRIu64
                 ", budget_used=%.2f, burn_fast=%.2f, burn_slow=%.2f, "
                 "oscillations=%" PRIu64 "\n",
                 klass, state.intervals_satisfied, state.intervals_counted,
                 100.0 * static_cast<double>(state.intervals_satisfied) /
                     static_cast<double>(state.intervals_counted),
                 state.misses,
                 static_cast<double>(state.misses) /
                     (kErrorBudgetFraction *
                      static_cast<double>(state.intervals_counted)),
                 BurnRate(state, kFastWindow), BurnRate(state, kSlowWindow),
                 state.oscillations);
  }
  // Miss-card digest: dominant phase histogram per class.
  std::map<uint32_t, std::map<int, uint64_t>> by_phase;
  for (const MissCard& card : cards_) {
    ++by_phase[card.klass][static_cast<int>(card.dominant_phase)];
  }
  for (const auto& [klass, phases] : by_phase) {
    std::fprintf(out, "# miss cards class %u:", klass);
    for (const auto& [phase, count] : phases) {
      std::fprintf(out, " %s=%" PRIu64,
                   BudgetPhaseName(static_cast<BudgetPhase>(phase)), count);
    }
    std::fputc('\n', out);
  }
}

}  // namespace memgoal::obs
