#include "obs/registry.h"

#include <cinttypes>
#include <cstdio>

#include "common/check.h"

namespace memgoal::obs {

bool NaturalLess::operator()(const std::string& a,
                             const std::string& b) const {
  size_t i = 0, j = 0;
  const auto digit = [](char c) { return c >= '0' && c <= '9'; };
  while (i < a.size() && j < b.size()) {
    if (digit(a[i]) && digit(b[j])) {
      // Compare the maximal digit runs numerically: skip leading zeros,
      // then a longer run is larger, then byte order decides. Equal-valued
      // runs with different zero-padding fall through to the tie-break
      // below so distinct names never compare equal.
      size_t ai = i, bj = j;
      while (ai < a.size() && a[ai] == '0') ++ai;
      while (bj < b.size() && b[bj] == '0') ++bj;
      size_t ae = ai, be = bj;
      while (ae < a.size() && digit(a[ae])) ++ae;
      while (be < b.size() && digit(b[be])) ++be;
      const size_t alen = ae - ai, blen = be - bj;
      if (alen != blen) return alen < blen;
      for (size_t k = 0; k < alen; ++k) {
        if (a[ai + k] != b[bj + k]) return a[ai + k] < b[bj + k];
      }
      if (ae - i != be - j) return ae - i < be - j;  // zero-padding length
      i = ae;
      j = be;
      continue;
    }
    if (a[i] != b[j]) return a[i] < b[j];
    ++i;
    ++j;
  }
  return a.size() - i < b.size() - j;
}

void Registry::Counter::Set(uint64_t cumulative) {
  const uint64_t mirrored = external_offset_ + cumulative;
  if (mirrored < value_) {
    // The source went backwards (reset/restart/rollover). Re-anchor the
    // offset so this call holds the counter steady (delta clamps to zero)
    // and the source's subsequent increments advance it again.
    external_offset_ = value_ - cumulative;
    ++regressions_;
    return;
  }
  value_ = mirrored;
}

Registry::Counter* Registry::GetCounter(const std::string& name) {
  MEMGOAL_DCHECK(gauges_.find(name) == gauges_.end());
  MEMGOAL_DCHECK(histograms_.find(name) == histograms_.end());
  return &counters_[name];
}

Registry::Gauge* Registry::GetGauge(const std::string& name) {
  MEMGOAL_DCHECK(counters_.find(name) == counters_.end());
  MEMGOAL_DCHECK(histograms_.find(name) == histograms_.end());
  return &gauges_[name];
}

void Registry::RegisterHistogram(const std::string& name,
                                 const common::Histogram* histogram,
                                 std::vector<double> quantiles) {
  MEMGOAL_CHECK(histogram != nullptr);
  MEMGOAL_DCHECK(counters_.find(name) == counters_.end());
  MEMGOAL_DCHECK(gauges_.find(name) == gauges_.end());
  histograms_[name] = HistogramView{histogram, std::move(quantiles)};
}

const Registry::Snapshot& Registry::TakeSnapshot(int interval,
                                                 double sim_time_ms) {
  Snapshot snap;
  snap.interval = interval;
  snap.sim_time_ms = sim_time_ms;
  uint64_t total_regressions = 0;
  for (auto& [name, counter] : counters_) {
    SnapshotEntry entry;
    entry.name = name;
    entry.kind = Kind::kCounter;
    entry.value = static_cast<double>(counter.value_);
    entry.delta = counter.value_ - counter.snapshot_base_;
    counter.snapshot_base_ = counter.value_;
    total_regressions += counter.regressions_;
    snap.entries.push_back(std::move(entry));
  }
  // Mirror-health telemetry: only materialized once a clamp has happened,
  // so healthy runs don't grow a permanently-zero instrument.
  if (total_regressions > 0) {
    SnapshotEntry entry;
    entry.name = "obs.counter_regressions";
    entry.kind = Kind::kCounter;
    entry.value = static_cast<double>(total_regressions);
    entry.delta = total_regressions - regressions_snapshot_base_;
    regressions_snapshot_base_ = total_regressions;
    snap.entries.push_back(std::move(entry));
  }
  for (const auto& [name, gauge] : gauges_) {
    SnapshotEntry entry;
    entry.name = name;
    entry.kind = Kind::kGauge;
    entry.value = gauge.value();
    snap.entries.push_back(std::move(entry));
  }
  char suffix[32];
  for (const auto& [name, view] : histograms_) {
    for (double q : view.quantiles) {
      const common::Histogram::QuantileValue qv =
          view.histogram->QuantileWithSaturation(q);
      SnapshotEntry entry;
      std::snprintf(suffix, sizeof(suffix), ".p%g", q * 100.0);
      entry.name = name + suffix;
      entry.kind = Kind::kQuantile;
      entry.value = qv.value;
      entry.saturated = qv.saturated;
      entry.overflow = static_cast<uint64_t>(view.histogram->overflow());
      snap.entries.push_back(std::move(entry));
    }
  }
  history_.push_back(std::move(snap));
  return history_.back();
}

namespace {

const char* KindName(Registry::Kind kind) {
  switch (kind) {
    case Registry::Kind::kCounter:
      return "counter";
    case Registry::Kind::kGauge:
      return "gauge";
    case Registry::Kind::kQuantile:
      return "quantile";
  }
  return "unknown";
}

}  // namespace

void Registry::WriteCsv(std::FILE* out) const {
  std::fprintf(out,
               "interval,sim_time_ms,name,kind,value,delta,saturated,"
               "overflow\n");
  for (const Snapshot& snap : history_) {
    for (const SnapshotEntry& e : snap.entries) {
      std::fprintf(out,
                   "%d,%.3f,%s,%s,%.17g,%" PRIu64 ",%d,%" PRIu64 "\n",
                   snap.interval, snap.sim_time_ms, e.name.c_str(),
                   KindName(e.kind), e.value, e.delta,
                   e.saturated ? 1 : 0, e.overflow);
    }
  }
}

void Registry::WriteJsonl(std::FILE* out) const {
  for (const Snapshot& snap : history_) {
    std::fprintf(out, "{\"interval\":%d,\"sim_time_ms\":%.3f,\"metrics\":{",
                 snap.interval, snap.sim_time_ms);
    bool first = true;
    for (const SnapshotEntry& e : snap.entries) {
      std::fprintf(out, "%s\"%s\":%.17g", first ? "" : ",", e.name.c_str(),
                   e.value);
      first = false;
    }
    std::fprintf(out, "},\"saturated\":[");
    first = true;
    for (const SnapshotEntry& e : snap.entries) {
      if (!e.saturated) continue;
      std::fprintf(out, "%s\"%s\"", first ? "" : ",", e.name.c_str());
      first = false;
    }
    std::fprintf(out, "]}\n");
  }
}

}  // namespace memgoal::obs
