#ifndef MEMGOAL_OBS_REGISTRY_H_
#define MEMGOAL_OBS_REGISTRY_H_

#include <cstdint>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "common/stats.h"

namespace memgoal::obs {

/// Unified metrics registry: named counters, gauges and histogram views
/// behind one interface, snapshotted once per observation interval and
/// exportable as CSV (long format) and JSONL (one object per interval).
///
/// It replaces three previously disjoint telemetry paths — the controller's
/// `ProtocolStats` struct, the per-interval `MetricsLog`, and ad-hoc
/// per-node counters — with one namespace. Producers either own a
/// registry-allocated instrument (Counter/Gauge pointers are stable for the
/// registry's lifetime) or mirror an externally accumulated value into one
/// at snapshot time via Counter::Set / Gauge::Set.
///
/// Naming convention: dot-separated paths, lowest-cardinality prefix first,
/// e.g. "class1.access.local_buffer", "node0.cpu.wait", "ctrl.goal.checks".
/// Orders instrument names "naturally": maximal digit runs compare as
/// numbers, everything else byte-wise. This puts "class2.rt" before
/// "class10.rt" (lexicographic order would not), so per-class columns in
/// CSV/JSONL snapshots appear in class-id order and diffs across
/// backends/threads stay byte-stable as class counts grow past 9.
struct NaturalLess {
  bool operator()(const std::string& a, const std::string& b) const;
};

class Registry {
 public:
  /// Monotonic counter. Snapshots report the cumulative value and the delta
  /// against the previous snapshot (the per-interval rate).
  class Counter {
   public:
    void Add(uint64_t n = 1) { value_ += n; }
    /// Mirrors an externally accumulated cumulative count. A mirror that
    /// goes backwards (the source was reset or restarted) is clamped: the
    /// counter holds its current value for that call — a monotonic counter
    /// never decreases, so the per-interval delta reads zero instead of
    /// wrapping — and later increments from the source advance it again.
    /// Each clamp is counted; snapshots surface the registry-wide total as
    /// a synthetic "obs.counter_regressions" counter.
    void Set(uint64_t cumulative);
    uint64_t value() const { return value_; }
    /// Number of times Set() observed the mirror going backwards.
    uint64_t regressions() const { return regressions_; }

   private:
    friend class Registry;
    uint64_t value_ = 0;
    uint64_t snapshot_base_ = 0;
    // value_ = external_offset_ + the source's last mirrored reading, so a
    // re-anchored (post-reset) source keeps producing correct deltas.
    uint64_t external_offset_ = 0;
    uint64_t regressions_ = 0;
  };

  /// Last-value gauge.
  class Gauge {
   public:
    void Set(double v) { value_ = v; }
    double value() const { return value_; }

   private:
    double value_ = 0.0;
  };

  /// Returns the instrument registered under `name`, creating it on first
  /// use. Pointers stay valid for the registry's lifetime. A name may hold
  /// only one instrument kind.
  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);

  /// Registers a *view* onto a histogram owned elsewhere (e.g. a
  /// sim::Resource's wait/busy histogram). Each snapshot evaluates the
  /// given quantiles and carries the saturation flag and overflow count, so
  /// exports can mark quantiles clipped at the histogram's upper bound
  /// instead of silently under-reporting saturated tails.
  void RegisterHistogram(const std::string& name,
                         const common::Histogram* histogram,
                         std::vector<double> quantiles);

  enum class Kind { kCounter, kGauge, kQuantile };

  struct SnapshotEntry {
    std::string name;  // quantiles export as "<name>.p<q*100>"
    Kind kind = Kind::kCounter;
    double value = 0.0;
    uint64_t delta = 0;        // counters: increase since last snapshot
    bool saturated = false;    // quantiles: clipped at the histogram bound
    uint64_t overflow = 0;     // quantiles: samples beyond the bound
  };

  struct Snapshot {
    int interval = 0;
    double sim_time_ms = 0.0;
    std::vector<SnapshotEntry> entries;
  };

  /// Captures every instrument, rolls counter deltas forward, and appends
  /// the snapshot to the retained history.
  const Snapshot& TakeSnapshot(int interval, double sim_time_ms);

  const std::vector<Snapshot>& history() const { return history_; }

  /// Long-format CSV: interval,sim_time_ms,name,kind,value,delta,saturated,
  /// overflow — one row per instrument per interval.
  void WriteCsv(std::FILE* out) const;

  /// One JSON object per interval:
  /// {"interval":..,"sim_time_ms":..,"metrics":{name:value,...},
  ///  "saturated":[names...]}.
  void WriteJsonl(std::FILE* out) const;

 private:
  struct HistogramView {
    const common::Histogram* histogram = nullptr;
    std::vector<double> quantiles;
  };

  // std::map: stable node addresses for handed-out pointers and
  // deterministic (naturally sorted: class2 before class10) export order.
  std::map<std::string, Counter, NaturalLess> counters_;
  std::map<std::string, Gauge, NaturalLess> gauges_;
  std::map<std::string, HistogramView, NaturalLess> histograms_;
  std::vector<Snapshot> history_;
  // Delta base for the synthetic "obs.counter_regressions" entry.
  uint64_t regressions_snapshot_base_ = 0;
};

}  // namespace memgoal::obs

#endif  // MEMGOAL_OBS_REGISTRY_H_
