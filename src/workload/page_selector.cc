#include "workload/page_selector.h"

#include "common/check.h"

namespace memgoal::workload {

PageSelector::PageSelector(const ClassSpec& spec)
    : primary_range_(spec.pages),
      primary_(spec.pages.size(), spec.zipf_skew),
      share_prob_(spec.share_prob) {
  MEMGOAL_CHECK(spec.pages.size() > 0);
  MEMGOAL_CHECK(share_prob_ >= 0.0 && share_prob_ <= 1.0);
  if (spec.shared_pages.has_value()) {
    MEMGOAL_CHECK(spec.shared_pages->size() > 0);
    shared_range_ = spec.shared_pages;
    shared_.emplace(spec.shared_pages->size(), spec.shared_skew);
  } else {
    MEMGOAL_CHECK(share_prob_ == 0.0);
  }
}

PageId PageSelector::Sample(common::Rng* rng) const {
  if (shared_.has_value() && rng->NextDouble() < share_prob_) {
    return shared_range_->begin + shared_->Sample(rng);
  }
  return primary_range_.begin + primary_.Sample(rng);
}

double PageSelector::ProbabilityOf(PageId page) const {
  double probability = 0.0;
  if (page >= primary_range_.begin && page < primary_range_.end) {
    probability +=
        (1.0 - share_prob_) * primary_.ProbabilityOfRank(page - primary_range_.begin);
  }
  if (shared_range_.has_value() && page >= shared_range_->begin &&
      page < shared_range_->end) {
    probability +=
        share_prob_ * shared_->ProbabilityOfRank(page - shared_range_->begin);
  }
  return probability;
}

}  // namespace memgoal::workload
