#ifndef MEMGOAL_WORKLOAD_ZIPF_H_
#define MEMGOAL_WORKLOAD_ZIPF_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"

namespace memgoal::workload {

/// Zipfian rank distribution over {0, ..., n-1} with skew parameter theta,
/// matching the paper's access model (§7.1): the access frequency of the
/// item with rank r (1-based) is proportional to 1 / r^theta. theta = 0 is
/// the uniform distribution; theta = 1 is "very highly skewed" (§7.3).
///
/// Sampling is O(log n) via binary search over the precomputed CDF.
class ZipfianGenerator {
 public:
  ZipfianGenerator(uint32_t n, double theta);

  /// Draws a rank in [0, n); rank 0 is the hottest item.
  uint32_t Sample(common::Rng* rng) const;

  /// Probability of the item with (0-based) rank `rank`.
  double ProbabilityOfRank(uint32_t rank) const;

  uint32_t n() const { return static_cast<uint32_t>(cdf_.size()); }
  double theta() const { return theta_; }

 private:
  double theta_;
  std::vector<double> cdf_;  // cdf_[r] = P(rank <= r)
  // Guide table (Chen & Asau): guide_[i] is the first rank whose cdf
  // reaches i / guide_.size(), so a sample starts its scan there instead
  // of binary-searching the whole cdf. Results are bit-identical to
  // lower_bound — the guide only skips prefixes the search would reject.
  std::vector<uint32_t> guide_;
};

}  // namespace memgoal::workload

#endif  // MEMGOAL_WORKLOAD_ZIPF_H_
