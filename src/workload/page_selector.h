#ifndef MEMGOAL_WORKLOAD_PAGE_SELECTOR_H_
#define MEMGOAL_WORKLOAD_PAGE_SELECTOR_H_

#include <optional>

#include "common/rng.h"
#include "storage/types.h"
#include "workload/spec.h"
#include "workload/zipf.h"

namespace memgoal::workload {

/// Draws page identities for one class according to its ClassSpec: Zipfian
/// over the class's own range, mixed with an optional shared range. Rank 0
/// maps to the first page of a range, so two classes configured with the
/// same shared range also agree on which pages are hot — the property the
/// data-sharing experiment (§7.4) relies on.
class PageSelector {
 public:
  explicit PageSelector(const ClassSpec& spec);

  PageId Sample(common::Rng* rng) const;

  /// Stationary access probability of `page` under this selector (0 if the
  /// page is outside all ranges). Used by tests and analytic baselines.
  double ProbabilityOf(PageId page) const;

 private:
  PageRange primary_range_;
  ZipfianGenerator primary_;
  double share_prob_;
  std::optional<PageRange> shared_range_;
  std::optional<ZipfianGenerator> shared_;
};

}  // namespace memgoal::workload

#endif  // MEMGOAL_WORKLOAD_PAGE_SELECTOR_H_
