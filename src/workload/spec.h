#ifndef MEMGOAL_WORKLOAD_SPEC_H_
#define MEMGOAL_WORKLOAD_SPEC_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "storage/types.h"

namespace memgoal::workload {

/// Half-open page range [begin, end).
struct PageRange {
  PageId begin = 0;
  PageId end = 0;

  uint32_t size() const { return end - begin; }
};

/// Static description of one workload class (§3): a response-time goal (or
/// none, for the no-goal class), the shape of its operations, and its page
/// access distribution.
///
/// Data sharing across classes (§7.4) is expressed as a mixture: with
/// probability `share_prob` an access is drawn Zipf(`shared_skew`) from
/// `shared_pages` (typically another class's range) instead of the class's
/// own range. share_prob = 0 gives fully disjoint page sets.
struct ClassSpec {
  ClassId id = kNoGoalClass;

  /// Mean response-time goal in ms; nullopt marks the no-goal class. The
  /// live goal can be changed at run time through the system.
  std::optional<double> goal_rt_ms;

  /// Page accesses per operation ("complexity", §7.2 uses 4).
  int accesses_per_op = 4;

  /// Mean exponential inter-arrival time of operations per node, ms.
  double mean_interarrival_ms = 100.0;

  /// Optional per-node override of the inter-arrival time (size must equal
  /// the node count when non-empty). Skewed arrival distributions across
  /// nodes are what make the §8 variance objective interesting: the busy
  /// nodes' response times diverge from the idle ones'.
  std::vector<double> per_node_interarrival_ms;

  /// The class's own page set and access skew.
  PageRange pages;
  double zipf_skew = 0.0;

  /// Optional shared component (see class comment).
  std::optional<PageRange> shared_pages;
  double share_prob = 0.0;
  double shared_skew = 0.0;
};

}  // namespace memgoal::workload

#endif  // MEMGOAL_WORKLOAD_SPEC_H_
