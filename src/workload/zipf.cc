#include "workload/zipf.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace memgoal::workload {

ZipfianGenerator::ZipfianGenerator(uint32_t n, double theta) : theta_(theta) {
  MEMGOAL_CHECK(n > 0);
  MEMGOAL_CHECK(theta >= 0.0);
  cdf_.resize(n);
  double cumulative = 0.0;
  for (uint32_t r = 0; r < n; ++r) {
    cumulative += 1.0 / std::pow(static_cast<double>(r + 1), theta);
    cdf_[r] = cumulative;
  }
  const double total = cumulative;
  for (double& v : cdf_) v /= total;
  cdf_.back() = 1.0;  // guard against rounding
}

uint32_t ZipfianGenerator::Sample(common::Rng* rng) const {
  const double u = rng->NextDouble();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<uint32_t>(it - cdf_.begin());
}

double ZipfianGenerator::ProbabilityOfRank(uint32_t rank) const {
  MEMGOAL_CHECK(rank < cdf_.size());
  if (rank == 0) return cdf_[0];
  return cdf_[rank] - cdf_[rank - 1];
}

}  // namespace memgoal::workload
