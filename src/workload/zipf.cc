#include "workload/zipf.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace memgoal::workload {

ZipfianGenerator::ZipfianGenerator(uint32_t n, double theta) : theta_(theta) {
  MEMGOAL_CHECK(n > 0);
  MEMGOAL_CHECK(theta >= 0.0);
  cdf_.resize(n);
  double cumulative = 0.0;
  for (uint32_t r = 0; r < n; ++r) {
    cumulative += 1.0 / std::pow(static_cast<double>(r + 1), theta);
    cdf_[r] = cumulative;
  }
  const double total = cumulative;
  for (double& v : cdf_) v /= total;
  cdf_.back() = 1.0;  // guard against rounding

  // Two guide slots per rank keeps the expected scan below one step even
  // for the flat (theta = 0) distribution.
  guide_.resize(std::max<size_t>(2 * static_cast<size_t>(n), 2));
  uint32_t rank = 0;
  for (size_t i = 0; i < guide_.size(); ++i) {
    const double u = static_cast<double>(i) / static_cast<double>(guide_.size());
    while (cdf_[rank] < u) ++rank;
    guide_[i] = rank;
  }
}

uint32_t ZipfianGenerator::Sample(common::Rng* rng) const {
  const double u = rng->NextDouble();
  size_t slice = static_cast<size_t>(u * static_cast<double>(guide_.size()));
  if (slice >= guide_.size()) slice = guide_.size() - 1;
  // First rank with cdf_[rank] >= u, exactly what lower_bound returns:
  // the guide start satisfies cdf_[r] < slice/G <= u for all r before it,
  // and cdf_.back() == 1.0 bounds the scan.
  uint32_t rank = guide_[slice];
  while (cdf_[rank] < u) ++rank;
  return rank;
}

double ZipfianGenerator::ProbabilityOfRank(uint32_t rank) const {
  MEMGOAL_CHECK(rank < cdf_.size());
  if (rank == 0) return cdf_[0];
  return cdf_[rank] - cdf_[rank - 1];
}

}  // namespace memgoal::workload
