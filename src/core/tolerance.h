#ifndef MEMGOAL_CORE_TOLERANCE_H_
#define MEMGOAL_CORE_TOLERANCE_H_

#include <algorithm>
#include <cstddef>
#include <vector>

#include "common/stats.h"

namespace memgoal::core {

/// Workload-dependent tolerance band around a response-time goal (§5c).
///
/// Following the approach of fragment fencing (Brown et al., VLDB'93,
/// reference [5]), the tolerance is derived from the observed statistical
/// variance of the per-interval response times while the goal is constant:
///     delta = max(rel_floor * goal, z * stderr(recent observed RTs)).
/// The variance is computed over a sliding window of the most recent
/// same-goal intervals so that start-up transients age out, and the band is
/// capped at `rel_cap * goal` so a noisy phase can never declare every
/// response time "close enough".
///
/// With fewer than two same-goal intervals only the relative floor applies;
/// this is exactly the regime the paper points to when explaining the
/// oscillation in its Figure 2 (goals changing too quickly for the
/// tolerance to be "effectively calculated").
class ToleranceEstimator {
 public:
  static constexpr size_t kWindow = 8;
  static constexpr double kRelCap = 0.10;

  ToleranceEstimator(double rel_floor, double z)
      : rel_floor_(rel_floor), z_(z) {}

  /// Resets the variance history (call when the goal changes).
  void OnGoalChanged() { window_.clear(); }

  /// Records one interval's observed mean response time.
  void Observe(double rt) {
    window_.push_back(rt);
    if (window_.size() > kWindow) window_.erase(window_.begin());
  }

  /// Current tolerance for the given goal.
  double Tolerance(double goal) const {
    const double floor = rel_floor_ * goal;
    if (window_.size() < 2) return floor;
    common::RunningStats stats;
    for (double rt : window_) stats.Add(rt);
    const double band = z_ * stats.std_error();
    return std::clamp(band, floor, std::max(floor, kRelCap * goal));
  }

  int64_t observations() const {
    return static_cast<int64_t>(window_.size());
  }

 private:
  double rel_floor_;
  double z_;
  std::vector<double> window_;
};

}  // namespace memgoal::core

#endif  // MEMGOAL_CORE_TOLERANCE_H_
