#ifndef MEMGOAL_CORE_SCENARIO_H_
#define MEMGOAL_CORE_SCENARIO_H_

#include <optional>
#include <string>
#include <vector>

#include "common/config.h"
#include "core/system.h"
#include "workload/spec.h"

namespace memgoal::core {

/// A fully resolved scenario: everything needed to construct and run a
/// ClusterSystem, decoupled from where the key=value text came from (a
/// .conf file, argv overrides, or a test-supplied string). The CLI runner
/// and the differential test harness both build runs through this struct,
/// so a scenario file exercises the exact model configuration in both.
struct Scenario {
  SystemConfig system;
  std::vector<workload::ClassSpec> classes;
  int intervals = 40;
  bool audit = false;
  /// Nonzero when a generated chaos schedule was overlaid on the scripted
  /// faults; chaos_events is its event count (for the runner's summary).
  uint64_t chaos_seed = 0;
  size_t chaos_events = 0;
};

/// Builds a Scenario from parsed key=value config. Reads every model key
/// (listed in tools/memgoal_sim.cc's header comment) including the
/// `queue` key (calendar | heap) selecting the event-queue backend, so a
/// caller may follow up with Config::RejectUnknownFlags. Observability
/// output paths (trace_out, decision_log, ...) are CLI concerns and are
/// not read here. Returns std::nullopt and sets *error on invalid input.
std::optional<Scenario> LoadScenario(common::Config& config,
                                     std::string* error);

/// Parses a "begin:end" page range; returns false unless begin < end.
bool ParsePageRange(const std::string& text, workload::PageRange* out);

}  // namespace memgoal::core

#endif  // MEMGOAL_CORE_SCENARIO_H_
