#include "core/measure.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.h"
#include "la/gauss.h"

namespace memgoal::core {

namespace {
constexpr size_t kNpos = std::numeric_limits<size_t>::max();
}  // namespace

MeasureStore::MeasureStore(size_t num_nodes) : num_nodes_(num_nodes) {
  MEMGOAL_CHECK(num_nodes > 0);
}

la::Vector MeasureStore::RowOf(const la::Vector& allocation) {
  la::Vector row = allocation;
  row.push_back(1.0);
  return row;
}

size_t MeasureStore::FindMatching(const la::Vector& allocation) const {
  for (size_t i = 0; i < entries_.size(); ++i) {
    double diff = 0.0;
    for (size_t j = 0; j < num_nodes_; ++j) {
      diff = std::max(diff, std::fabs(entries_[i].allocation[j] - allocation[j]));
    }
    if (diff <= kSameAllocationTolerance) return i;
  }
  return kNpos;
}

void MeasureStore::TryInitialize() {
  if (entries_.size() < num_nodes_ + 1) return;
  la::Matrix b(num_nodes_ + 1, num_nodes_ + 1);
  for (size_t i = 0; i <= num_nodes_; ++i) {
    b.SetRow(i, RowOf(entries_[i].allocation));
  }
  if (!inverse_.Reset(b)) {
    // Affinely dependent set: drop the oldest entry and wait for a fresh
    // point. (The warm-up heuristic perturbs allocations so this resolves
    // quickly.)
    size_t oldest = 0;
    for (size_t i = 1; i < entries_.size(); ++i) {
      if (entries_[i].seq < entries_[oldest].seq) oldest = i;
    }
    entries_.erase(entries_.begin() + static_cast<ptrdiff_t>(oldest));
  }
}

void MeasureStore::Observe(const la::Vector& allocation, double rt_k,
                           double rt_0) {
  ObserveDetailed(allocation, rt_k, rt_0, la::Vector());
}

void MeasureStore::ObserveDetailed(const la::Vector& allocation, double rt_k,
                                   double rt_0,
                                   const la::Vector& rt_per_node) {
  MEMGOAL_CHECK(allocation.size() == num_nodes_);
  MEMGOAL_CHECK(rt_per_node.empty() || rt_per_node.size() == num_nodes_);

  const size_t match = FindMatching(allocation);
  if (match != kNpos) {
    // Same partitioning as a stored point: refresh its response times
    // (phase (b): "update of the last measure point").
    entries_[match].rt_k = rt_k;
    entries_[match].rt_0 = rt_0;
    entries_[match].rt_per_node = rt_per_node;
    entries_[match].seq = next_seq_++;
    return;
  }

  Entry entry{allocation, rt_k, rt_0, rt_per_node, next_seq_++};

  if (!ready()) {
    entries_.push_back(std::move(entry));
    TryInitialize();
    return;
  }

  // Full store: replace the oldest point whose replacement keeps the set
  // affinely independent. The O(N) probe mirrors the paper's incremental
  // linear-independence test.
  std::vector<size_t> order(entries_.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return entries_[a].seq < entries_[b].seq;
  });
  const la::Vector row = RowOf(allocation);
  for (size_t slot : order) {
    if (inverse_.ReplaceRow(slot, row)) {
      entries_[slot] = std::move(entry);
      return;
    }
  }
  // New point lies in the affine hull of every retained subset; keep the
  // old basis (it still spans the measurement space).
  ++rejected_points_;
}

std::optional<MeasureStore::Planes> MeasureStore::FitPlanes() const {
  if (!ready()) return std::nullopt;
  la::Vector y_k(num_nodes_ + 1), y_0(num_nodes_ + 1);
  for (size_t i = 0; i <= num_nodes_; ++i) {
    y_k[i] = entries_[i].rt_k;
    y_0[i] = entries_[i].rt_0;
  }
  const la::Vector beta_k = inverse_.Solve(y_k);
  const la::Vector beta_0 = inverse_.Solve(y_0);

  Planes planes;
  planes.grad_k.assign(beta_k.begin(), beta_k.end() - 1);
  planes.intercept_k = beta_k.back();
  planes.grad_0.assign(beta_0.begin(), beta_0.end() - 1);
  planes.intercept_0 = beta_0.back();
  return planes;
}

std::optional<std::vector<MeasureStore::NodePlane>>
MeasureStore::FitNodePlanes() const {
  if (!ready()) return std::nullopt;
  for (const Entry& entry : entries_) {
    if (entry.rt_per_node.size() != num_nodes_) return std::nullopt;
  }
  std::vector<NodePlane> planes(num_nodes_);
  la::Vector y(num_nodes_ + 1);
  for (size_t node = 0; node < num_nodes_; ++node) {
    for (size_t i = 0; i <= num_nodes_; ++i) {
      y[i] = entries_[i].rt_per_node[node];
    }
    const la::Vector beta = inverse_.Solve(y);
    planes[node].grad.assign(beta.begin(), beta.end() - 1);
    planes[node].intercept = beta.back();
  }
  return planes;
}

}  // namespace memgoal::core
