#include "core/measure.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.h"
#include "la/gauss.h"

namespace memgoal::core {

namespace {
constexpr size_t kNpos = std::numeric_limits<size_t>::max();
}  // namespace

MeasureStore::MeasureStore(size_t num_nodes) : num_nodes_(num_nodes) {
  MEMGOAL_CHECK(num_nodes > 0);
  active_.resize(num_nodes);
  for (size_t i = 0; i < num_nodes; ++i) active_[i] = i;
}

la::Vector MeasureStore::RowOf(const la::Vector& allocation) const {
  la::Vector row;
  row.reserve(active_.size() + 1);
  for (size_t i : active_) row.push_back(allocation[i]);
  row.push_back(1.0);
  return row;
}

size_t MeasureStore::FindMatching(const la::Vector& allocation) const {
  for (size_t i = 0; i < entries_.size(); ++i) {
    double diff = 0.0;
    for (size_t j = 0; j < num_nodes_; ++j) {
      diff = std::max(diff, std::fabs(entries_[i].allocation[j] - allocation[j]));
    }
    if (diff <= kSameAllocationTolerance) return i;
  }
  return kNpos;
}

void MeasureStore::TryInitialize() {
  if (active_.empty()) return;
  const size_t dim = active_.size() + 1;
  if (entries_.size() < dim) return;
  la::Matrix b(dim, dim);
  for (size_t i = 0; i < dim; ++i) {
    b.SetRow(i, RowOf(entries_[i].allocation));
  }
  if (!inverse_.Reset(b)) {
    // Affinely dependent set: drop the oldest entry and wait for a fresh
    // point. (The warm-up heuristic perturbs allocations so this resolves
    // quickly.)
    size_t oldest = 0;
    for (size_t i = 1; i < entries_.size(); ++i) {
      if (entries_[i].seq < entries_[oldest].seq) oldest = i;
    }
    entries_.erase(entries_.begin() + static_cast<ptrdiff_t>(oldest));
  }
}

void MeasureStore::Observe(const la::Vector& allocation, double rt_k,
                           double rt_0) {
  ObserveDetailed(allocation, rt_k, rt_0, la::Vector());
}

void MeasureStore::ObserveDetailed(const la::Vector& allocation, double rt_k,
                                   double rt_0,
                                   const la::Vector& rt_per_node) {
  MEMGOAL_CHECK(allocation.size() == num_nodes_);
  MEMGOAL_CHECK(rt_per_node.empty() || rt_per_node.size() == num_nodes_);

  const size_t match = FindMatching(allocation);
  if (match != kNpos) {
    // Same partitioning as a stored point: refresh its response times
    // (phase (b): "update of the last measure point").
    entries_[match].rt_k = rt_k;
    entries_[match].rt_0 = rt_0;
    entries_[match].rt_per_node = rt_per_node;
    entries_[match].seq = next_seq_++;
    return;
  }

  Entry entry{allocation, rt_k, rt_0, rt_per_node, next_seq_++};

  if (!ready()) {
    entries_.push_back(std::move(entry));
    TryInitialize();
    return;
  }

  // Full store: replace the oldest point whose replacement keeps the set
  // affinely independent. The O(N) probe mirrors the paper's incremental
  // linear-independence test.
  std::vector<size_t> order(entries_.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return entries_[a].seq < entries_[b].seq;
  });
  const la::Vector row = RowOf(allocation);
  for (size_t slot : order) {
    if (inverse_.ReplaceRow(slot, row)) {
      entries_[slot] = std::move(entry);
      return;
    }
  }
  // New point lies in the affine hull of every retained subset; keep the
  // old basis (it still spans the measurement space).
  ++rejected_points_;
}

void MeasureStore::Reset() {
  entries_.clear();
  inverse_ = la::RowReplaceInverse();
}

void MeasureStore::SetActiveNodes(std::vector<size_t> active) {
  for (size_t i : active) MEMGOAL_CHECK(i < num_nodes_);
  for (size_t i = 1; i < active.size(); ++i) {
    MEMGOAL_CHECK(active[i - 1] < active[i]);  // sorted, unique
  }
  active_ = std::move(active);
  Reset();
}

std::optional<MeasureStore::Planes> MeasureStore::FitPlanes() const {
  if (!ready()) return std::nullopt;
  const size_t dim = active_.size() + 1;
  la::Vector y_k(dim), y_0(dim);
  for (size_t i = 0; i < dim; ++i) {
    y_k[i] = entries_[i].rt_k;
    y_0[i] = entries_[i].rt_0;
  }
  const la::Vector beta_k = inverse_.Solve(y_k);
  const la::Vector beta_0 = inverse_.Solve(y_0);

  // Gradients expand back to full dimension with 0 for inactive nodes: no
  // allocation there can move the response time.
  Planes planes;
  planes.grad_k.assign(num_nodes_, 0.0);
  planes.grad_0.assign(num_nodes_, 0.0);
  for (size_t j = 0; j < active_.size(); ++j) {
    planes.grad_k[active_[j]] = beta_k[j];
    planes.grad_0[active_[j]] = beta_0[j];
  }
  planes.intercept_k = beta_k.back();
  planes.intercept_0 = beta_0.back();
  return planes;
}

std::optional<std::vector<MeasureStore::NodePlane>>
MeasureStore::FitNodePlanes() const {
  if (!ready()) return std::nullopt;
  // Per-node plane fits (the §8 variance objective) are only meaningful
  // with every node alive; callers fall back to the mean-plane LP during an
  // outage.
  if (active_.size() != num_nodes_) return std::nullopt;
  for (const Entry& entry : entries_) {
    if (entry.rt_per_node.size() != num_nodes_) return std::nullopt;
  }
  std::vector<NodePlane> planes(num_nodes_);
  la::Vector y(num_nodes_ + 1);
  for (size_t node = 0; node < num_nodes_; ++node) {
    for (size_t i = 0; i <= num_nodes_; ++i) {
      y[i] = entries_[i].rt_per_node[node];
    }
    const la::Vector beta = inverse_.Solve(y);
    planes[node].grad.assign(beta.begin(), beta.end() - 1);
    planes[node].intercept = beta.back();
  }
  return planes;
}

}  // namespace memgoal::core
