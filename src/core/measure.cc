#include "core/measure.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.h"
#include "la/gauss.h"

namespace memgoal::core {

namespace {

constexpr size_t kNpos = std::numeric_limits<size_t>::max();

double MedianOf(std::vector<double> values) {
  MEMGOAL_CHECK(!values.empty());
  const size_t mid = values.size() / 2;
  std::nth_element(values.begin(), values.begin() + mid, values.end());
  double median = values[mid];
  if (values.size() % 2 == 0) {
    // Lower middle is the max of the left half after nth_element.
    median = (median + *std::max_element(values.begin(),
                                         values.begin() + mid)) /
             2.0;
  }
  return median;
}

/// |x - median| in units of the normal-consistent MAD scale over `window`.
double RobustZ(const std::deque<double>& window, double x) {
  std::vector<double> values(window.begin(), window.end());
  const double median = MedianOf(values);
  for (double& v : values) v = std::fabs(v - median);
  // 1.4826 makes the MAD estimate σ for normal data.
  double scale = 1.4826 * MedianOf(std::move(values));
  if (scale <= 0.0) {
    // Degenerate window (more than half the samples identical): fall back
    // to a small relative scale so a genuinely different value still
    // registers but floating-point jitter does not.
    scale = 0.05 * std::max(std::fabs(median), 1e-9);
  }
  return std::fabs(x - median) / scale;
}

}  // namespace

MeasureStore::MeasureStore(size_t num_nodes) : num_nodes_(num_nodes) {
  MEMGOAL_CHECK(num_nodes > 0);
  active_.resize(num_nodes);
  for (size_t i = 0; i < num_nodes; ++i) active_[i] = i;
}

la::Vector MeasureStore::RowOf(const la::Vector& allocation) const {
  la::Vector row;
  row.reserve(active_.size() + 1);
  for (size_t i : active_) row.push_back(allocation[i]);
  row.push_back(1.0);
  return row;
}

size_t MeasureStore::FindMatching(const la::Vector& allocation) const {
  for (size_t i = 0; i < entries_.size(); ++i) {
    bool match = true;
    for (size_t j = 0; j < num_nodes_; ++j) {
      // Early exit on the first differing coordinate: at 256 nodes almost
      // every stored entry differs in the first few nodes, so the common
      // case is O(1) per entry instead of O(N).
      if (std::fabs(entries_[i].allocation[j] - allocation[j]) >
          kSameAllocationTolerance) {
        match = false;
        break;
      }
    }
    if (match) return i;
  }
  return kNpos;
}

bool MeasureStore::IsOutlier(double rt_k, double rt_0) {
  bool outlier = false;
  if (rt_k_window_.size() >= kOutlierMinSamples) {
    outlier = RobustZ(rt_k_window_, rt_k) > kOutlierZ ||
              RobustZ(rt_0_window_, rt_0) > kOutlierZ;
  }
  // Rejected samples still enter the window: a sustained level shift
  // re-centers the median within half a window and is accepted thereafter.
  rt_k_window_.push_back(rt_k);
  rt_0_window_.push_back(rt_0);
  while (rt_k_window_.size() > kOutlierWindow) rt_k_window_.pop_front();
  while (rt_0_window_.size() > kOutlierWindow) rt_0_window_.pop_front();
  return outlier;
}

const char* MeasureStore::OutcomeName(ObserveOutcome outcome) {
  switch (outcome) {
    case ObserveOutcome::kAccepted:
      return "accepted";
    case ObserveOutcome::kRefreshed:
      return "refreshed";
    case ObserveOutcome::kOutlier:
      return "outlier";
    case ObserveOutcome::kRejectedDependent:
      return "rejected_dependent";
    case ObserveOutcome::kConditionReset:
      return "condition_reset";
  }
  return "?";
}

double MeasureStore::ConditionEstimate() const {
  return inverse_.initialized() ? inverse_.ConditionEstimate() : 0.0;
}

void MeasureStore::MaybeConditionReset() {
  if (!inverse_.initialized()) return;
  if (inverse_.ConditionEstimate() <= kConditionResetLimit) return;
  ++condition_resets_;
  entries_.clear();
  inverse_ = la::RowReplaceInverse();
}

bool MeasureStore::RestoreInverse(size_t slot) {
  // Prefer the exact rank-one undo: putting the stored row back reverses
  // the failed replacement up to rounding. A full re-inversion would reject
  // any basis past Gauss's ~1/kSingularTolerance pivot ceiling — far
  // stricter than kConditionResetLimit — and needlessly reset a
  // marginal-but-legal store.
  if (inverse_.ReplaceRow(slot, RowOf(entries_[slot].allocation))) {
    return true;
  }
  const size_t dim = active_.size() + 1;
  MEMGOAL_DCHECK(entries_.size() == dim);
  la::Matrix b(dim, dim);
  for (size_t i = 0; i < dim; ++i) {
    b.SetRow(i, RowOf(entries_[i].allocation));
  }
  return inverse_.Reset(b);
}

void MeasureStore::TryInitialize() {
  if (active_.empty()) return;
  const size_t dim = active_.size() + 1;
  if (entries_.size() < dim) return;
  la::Matrix b(dim, dim);
  for (size_t i = 0; i < dim; ++i) {
    b.SetRow(i, RowOf(entries_[i].allocation));
  }
  if (!inverse_.Reset(b)) {
    // Affinely dependent set: drop the oldest entry and wait for a fresh
    // point. (The warm-up heuristic perturbs allocations so this resolves
    // quickly.)
    size_t oldest = 0;
    for (size_t i = 1; i < entries_.size(); ++i) {
      if (entries_[i].seq < entries_[oldest].seq) oldest = i;
    }
    entries_.erase(entries_.begin() + static_cast<ptrdiff_t>(oldest));
    return;
  }
  MaybeConditionReset();
}

MeasureStore::ObserveOutcome MeasureStore::Observe(
    const la::Vector& allocation, double rt_k, double rt_0) {
  return ObserveDetailed(allocation, rt_k, rt_0, la::Vector());
}

MeasureStore::ObserveOutcome MeasureStore::ObserveDetailed(
    const la::Vector& allocation, double rt_k, double rt_0,
    const la::Vector& rt_per_node) {
  MEMGOAL_CHECK(allocation.size() == num_nodes_);
  MEMGOAL_CHECK(rt_per_node.empty() || rt_per_node.size() == num_nodes_);

  if (IsOutlier(rt_k, rt_0)) {
    ++outlier_rejections_;
    return ObserveOutcome::kOutlier;
  }

  const size_t match = FindMatching(allocation);
  if (match != kNpos) {
    // Same partitioning as a stored point: refresh its response times
    // (phase (b): "update of the last measure point").
    entries_[match].rt_k = rt_k;
    entries_[match].rt_0 = rt_0;
    entries_[match].rt_per_node = rt_per_node;
    entries_[match].seq = next_seq_++;
    return ObserveOutcome::kRefreshed;
  }

  Entry entry{allocation, rt_k, rt_0, rt_per_node, next_seq_++};

  if (!ready()) {
    entries_.push_back(std::move(entry));
    TryInitialize();
    return ObserveOutcome::kAccepted;
  }

  // Full store: replace the oldest point whose replacement keeps the set
  // affinely independent *and* well-conditioned. The O(N) probe mirrors the
  // paper's incremental linear-independence test; the condition check runs
  // before the entry is committed, so a replacement that would degrade the
  // basis is rolled back and the next-oldest slot is tried instead of
  // poisoning the store and forcing a reset after the fact.
  std::vector<size_t> order(entries_.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return entries_[a].seq < entries_[b].seq;
  });
  // Each failed probe costs an O(N^2) rank-one update plus its undo; at 256
  // nodes probing all N+1 slots makes one observation cubic. A dependent
  // replacement nearly always stays dependent across neighboring-age slots,
  // so capping the probe changes nothing on small stores (the committed
  // scenarios have <= 13 slots) and bounds the tail at scale.
  if (order.size() > kMaxReplaceProbes) order.resize(kMaxReplaceProbes);
  const la::Vector row = RowOf(allocation);
  for (size_t slot : order) {
    if (!inverse_.ReplaceRow(slot, row)) continue;
    if (inverse_.ConditionEstimate() <= kConditionResetLimit) {
      entries_[slot] = std::move(entry);
      return ObserveOutcome::kAccepted;
    }
    if (!RestoreInverse(slot)) {
      // Both the rank-one undo and the exact re-inversion failed: the
      // incrementally maintained basis has drifted past usability. Reset
      // and re-accumulate; the measurement is dropped with the store.
      ++condition_resets_;
      entries_.clear();
      inverse_ = la::RowReplaceInverse();
      return ObserveOutcome::kConditionReset;
    }
  }
  // Every replacement was affinely dependent or ill-conditioned; keep the
  // old basis (it still spans the measurement space).
  ++rejected_points_;
  return ObserveOutcome::kRejectedDependent;
}

void MeasureStore::Reset() {
  entries_.clear();
  inverse_ = la::RowReplaceInverse();
  // The old response-time regime is gone with the points; a fresh window
  // avoids rejecting the first post-reset samples against stale levels.
  rt_k_window_.clear();
  rt_0_window_.clear();
}

void MeasureStore::SetActiveNodes(std::vector<size_t> active) {
  for (size_t i : active) MEMGOAL_CHECK(i < num_nodes_);
  for (size_t i = 1; i < active.size(); ++i) {
    MEMGOAL_CHECK(active[i - 1] < active[i]);  // sorted, unique
  }
  active_ = std::move(active);
  Reset();
}

std::optional<MeasureStore::Planes> MeasureStore::FitPlanes() const {
  if (!ready()) return std::nullopt;
  const size_t dim = active_.size() + 1;
  la::Vector y_k(dim), y_0(dim);
  for (size_t i = 0; i < dim; ++i) {
    y_k[i] = entries_[i].rt_k;
    y_0[i] = entries_[i].rt_0;
  }
  const la::Vector beta_k = inverse_.Solve(y_k);
  const la::Vector beta_0 = inverse_.Solve(y_0);

  // Gradients expand back to full dimension with 0 for inactive nodes: no
  // allocation there can move the response time.
  Planes planes;
  planes.grad_k.assign(num_nodes_, 0.0);
  planes.grad_0.assign(num_nodes_, 0.0);
  for (size_t j = 0; j < active_.size(); ++j) {
    planes.grad_k[active_[j]] = beta_k[j];
    planes.grad_0[active_[j]] = beta_0[j];
  }
  planes.intercept_k = beta_k.back();
  planes.intercept_0 = beta_0.back();
  return planes;
}

std::optional<std::vector<MeasureStore::NodePlane>>
MeasureStore::FitNodePlanes() const {
  if (!ready()) return std::nullopt;
  // Per-node plane fits (the §8 variance objective) are only meaningful
  // with every node alive; callers fall back to the mean-plane LP during an
  // outage.
  if (active_.size() != num_nodes_) return std::nullopt;
  for (const Entry& entry : entries_) {
    if (entry.rt_per_node.size() != num_nodes_) return std::nullopt;
  }
  std::vector<NodePlane> planes(num_nodes_);
  la::Vector y(num_nodes_ + 1);
  for (size_t node = 0; node < num_nodes_; ++node) {
    for (size_t i = 0; i <= num_nodes_; ++i) {
      y[i] = entries_[i].rt_per_node[node];
    }
    const la::Vector beta = inverse_.Solve(y);
    planes[node].grad.assign(beta.begin(), beta.end() - 1);
    planes[node].intercept = beta.back();
  }
  return planes;
}

}  // namespace memgoal::core
