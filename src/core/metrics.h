#ifndef MEMGOAL_CORE_METRICS_H_
#define MEMGOAL_CORE_METRICS_H_

#include <array>
#include <cstdint>
#include <cstdio>
#include <vector>

#include "sim/simulator.h"
#include "storage/types.h"

namespace memgoal::core {

/// Per-class measurements of one observation interval.
struct ClassIntervalMetrics {
  ClassId klass = kNoGoalClass;
  /// Arrival-rate-weighted mean response time across nodes (equation 4);
  /// 0 if no operation completed this interval.
  double observed_rt_ms = 0.0;
  /// Goal at interval end; 0 for the no-goal class.
  double goal_rt_ms = 0.0;
  /// Coordinator tolerance at interval end (0 when not applicable).
  double tolerance_ms = 0.0;
  /// observed <= goal + tolerance (always false for the no-goal class).
  bool satisfied = false;
  /// System-wide dedicated buffer for this class (bytes).
  uint64_t dedicated_bytes = 0;
  uint64_t ops_completed = 0;
  uint64_t ops_arrived = 0;
  /// Operations aborted this interval because their node crashed while they
  /// were in flight (failed, not completed).
  uint64_t ops_failed = 0;
};

/// Cumulative per-SimplexStatus outcome counters of the partitioning LPs
/// (mirrors core::LpOutcomeStats without pulling the optimizer headers into
/// every metrics consumer).
struct LpOutcomeCounters {
  uint64_t optimal = 0;
  uint64_t infeasible = 0;
  uint64_t unbounded = 0;
  /// Solves cut off by the simplex iteration safety bound.
  uint64_t iteration_limit = 0;
  uint64_t relaxed_retries = 0;
};

/// One observation interval across all classes.
struct IntervalRecord {
  int index = 0;
  sim::SimTime end_time_ms = 0.0;
  /// Nodes alive at the interval boundary (availability column).
  uint32_t nodes_up = 0;
  /// LP outcome counters, cumulative up to this interval boundary.
  LpOutcomeCounters lp;
  std::vector<ClassIntervalMetrics> classes;

  /// Metrics row for `klass`; aborts if absent.
  const ClassIntervalMetrics& ForClass(ClassId klass) const;
};

/// Cumulative access counters, per storage level.
struct AccessCounters {
  std::array<uint64_t, 4> by_level{};  // indexed by StorageLevel
  /// Remote fetches that found their target node dead (or freshly
  /// re-crashed) and fell back to the disk path after a detection timeout.
  uint64_t fetch_fallbacks = 0;

  uint64_t total() const {
    return by_level[0] + by_level[1] + by_level[2] + by_level[3];
  }
  double HitFraction(StorageLevel level) const {
    const uint64_t t = total();
    return t == 0 ? 0.0
                  : static_cast<double>(by_level[static_cast<int>(level)]) /
                        static_cast<double>(t);
  }
};

/// Append-only log of interval records produced by a simulation run.
class MetricsLog {
 public:
  void Append(IntervalRecord record) { records_.push_back(std::move(record)); }

  const std::vector<IntervalRecord>& records() const { return records_; }
  bool empty() const { return records_.empty(); }
  const IntervalRecord& back() const { return records_.back(); }

  /// Writes the log as CSV (one row per class per interval) to `out`.
  void WriteCsv(std::FILE* out) const;

 private:
  std::vector<IntervalRecord> records_;
};

}  // namespace memgoal::core

#endif  // MEMGOAL_CORE_METRICS_H_
