#include "core/scenario.h"

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "common/config.h"
#include "sim/chaos_schedule.h"
#include "sim/event_queue.h"

namespace memgoal::core {
namespace {

cache::PolicyKind ParsePolicy(const std::string& name) {
  if (name == "lru") return cache::PolicyKind::kLru;
  if (name == "lru-k") return cache::PolicyKind::kLruK;
  if (name == "fifo") return cache::PolicyKind::kFifo;
  return cache::PolicyKind::kCostBased;
}

// Enum-valued scenario keys fail the way Config::RejectUnknownFlags fails
// for unknown flags: name the accepted values and, on a near-miss, suggest
// the nearest one.
std::string BadEnumValue(const std::string& key, const std::string& value,
                         const std::vector<std::string>& accepted) {
  std::string message = key + " must be ";
  for (size_t i = 0; i < accepted.size(); ++i) {
    if (i > 0) message += i + 1 == accepted.size() ? " or " : ", ";
    message += accepted[i];
  }
  message += ", got " + value;
  const std::string suggestion = common::NearestSuggestion(value, accepted);
  if (!suggestion.empty()) {
    message += " (did you mean " + suggestion + "?)";
  }
  return message;
}

}  // namespace

bool ParsePageRange(const std::string& text, workload::PageRange* out) {
  const size_t colon = text.find(':');
  if (colon == std::string::npos || colon == 0) return false;
  out->begin = static_cast<PageId>(std::stoul(text.substr(0, colon)));
  out->end = static_cast<PageId>(std::stoul(text.substr(colon + 1)));
  return out->begin < out->end;
}

std::optional<Scenario> LoadScenario(common::Config& config,
                                     std::string* error) {
  Scenario scenario;
  SystemConfig& system_config = scenario.system;
  system_config.num_nodes = static_cast<uint32_t>(config.GetInt("nodes", 3));
  system_config.cache_bytes_per_node =
      static_cast<uint64_t>(config.GetInt("cache_bytes", 2 << 20));
  system_config.page_bytes =
      static_cast<uint32_t>(config.GetInt("page_bytes", 4096));
  system_config.db_pages =
      static_cast<uint32_t>(config.GetInt("db_pages", 2000));
  system_config.observation_interval_ms =
      config.GetDouble("interval_ms", 5000.0);
  system_config.seed = static_cast<uint64_t>(config.GetInt("seed", 1));
  system_config.policy = ParsePolicy(config.GetString("policy", "cost-based"));
  system_config.objective =
      config.GetString("objective", "nogoal") == "variance"
          ? PartitioningObjective::kMinimizeNodeVariance
          : PartitioningObjective::kMinimizeNoGoalRt;
  const std::string queue = config.GetString("queue", "calendar");
  if (queue == "heap") {
    system_config.queue_backend = sim::QueueBackend::kLegacyHeap;
  } else if (queue == "calendar") {
    system_config.queue_backend = sim::QueueBackend::kCalendar;
  } else {
    if (error) *error = BadEnumValue("queue", queue, {"calendar", "heap"});
    return std::nullopt;
  }
  const std::string lp = config.GetString("lp", "revised");
  if (lp == "revised") {
    system_config.lp_backend = la::LpBackend::kRevised;
  } else if (lp == "dense") {
    system_config.lp_backend = la::LpBackend::kDense;
  } else {
    if (error) *error = BadEnumValue("lp", lp, {"revised", "dense"});
    return std::nullopt;
  }
  system_config.hint_fanout_budget =
      static_cast<uint32_t>(config.GetInt("hint_budget", 0));
  system_config.disk.avg_seek_ms = config.GetDouble("disk_seek_ms", 8.0);
  system_config.disk.rotation_ms = config.GetDouble("disk_rotation_ms", 8.33);
  system_config.disk.transfer_mb_per_s =
      config.GetDouble("disk_transfer", 10.0);
  system_config.network.bandwidth_mbit_per_s =
      config.GetDouble("net_mbit", 100.0);
  system_config.network.latency_ms = config.GetDouble("net_latency_ms", 0.05);
  system_config.network.loss_probability = config.GetDouble("net_loss", 0.0);
  // Conditional keys are still read unconditionally so RejectUnknownFlags
  // in the caller never mistakes a dormant knob for a typo.
  const double burst_g2b = config.GetDouble("net_burst_g2b", 0.0);
  const double burst_b2g = config.GetDouble("net_burst_b2g", 0.5);
  const double burst_loss_good = config.GetDouble("net_burst_loss_good", 0.0);
  const double burst_loss_bad = config.GetDouble("net_burst_loss_bad", 1.0);
  if (config.GetString("net_loss_model", "iid") == "burst") {
    system_config.network.loss_model = net::LossModel::kBurst;
    system_config.network.burst_good_to_bad = burst_g2b;
    system_config.network.burst_bad_to_good = burst_b2g;
    system_config.network.burst_loss_good = burst_loss_good;
    system_config.network.burst_loss_bad = burst_loss_bad;
  }

  const int crash_node = static_cast<int>(config.GetInt("crash_node", -1));
  const double crash_at = config.GetDouble("crash_at_ms", 0.0);
  const double recover_at = config.GetDouble("recover_at_ms", 0.0);
  if (crash_node >= 0) {
    system_config.faults.script.push_back(
        {crash_at, static_cast<uint32_t>(crash_node), /*crash=*/true});
    if (recover_at > crash_at) {
      system_config.faults.script.push_back(
          {recover_at, static_cast<uint32_t>(crash_node), /*crash=*/false});
    }
  }
  system_config.faults.mttf_ms = config.GetDouble("fault_mttf_ms", 0.0);
  system_config.faults.mttr_ms = config.GetDouble("fault_mttr_ms", 10000.0);
  system_config.faults.seed =
      static_cast<uint64_t>(config.GetInt("fault_seed", 0xFA171));
  system_config.faults.min_live_nodes =
      static_cast<uint32_t>(config.GetInt("fault_min_live", 1));
  const int degrade_node = static_cast<int>(config.GetInt("degrade_node", -1));
  const double degrade_at = config.GetDouble("degrade_at_ms", 0.0);
  const double restore_at = config.GetDouble("restore_at_ms", 0.0);
  const double degrade_factor = config.GetDouble("degrade_factor", 10.0);
  if (degrade_node >= 0) {
    system_config.faults.degradation_script.push_back(
        {degrade_at, static_cast<uint32_t>(degrade_node), /*begin=*/true,
         degrade_factor});
    if (restore_at > degrade_at) {
      system_config.faults.degradation_script.push_back(
          {restore_at, static_cast<uint32_t>(degrade_node), /*begin=*/false});
    }
  }
  system_config.faults.mttd_ms = config.GetDouble("fault_mttd_ms", 0.0);
  system_config.faults.degradation_repair_ms =
      config.GetDouble("fault_degrade_repair_ms", 10000.0);
  system_config.faults.degradation_factor =
      config.GetDouble("fault_degrade_factor", 10.0);

  const std::string partition_nodes = config.GetString("partition_nodes", "");
  const double partition_at = config.GetDouble("partition_at_ms", 0.0);
  const double heal_at = config.GetDouble("heal_at_ms", 0.0);
  if (!partition_nodes.empty()) {
    std::vector<uint32_t> groups(system_config.num_nodes, 0);
    std::stringstream nodes(partition_nodes);
    std::string item;
    while (std::getline(nodes, item, ',')) {
      const unsigned long node = std::stoul(item);
      if (node >= system_config.num_nodes) {
        if (error) *error = "partition_nodes entry " + item + " out of range";
        return std::nullopt;
      }
      groups[node] = 1;
    }
    system_config.faults.partition_script.push_back({partition_at, groups});
    if (heal_at > partition_at) {
      system_config.faults.partition_script.push_back({heal_at, {}});
    }
  }
  system_config.faults.mttp_ms = config.GetDouble("fault_mttp_ms", 0.0);
  system_config.faults.partition_heal_ms =
      config.GetDouble("fault_partition_heal_ms", 10000.0);
  system_config.crash_detect_timeout_ms =
      config.GetDouble("crash_detect_timeout_ms", 2.0);

  // Corruption (the fourth fault class) and the background scrubber. All
  // keys are read unconditionally (same idiom as the burst-loss knobs).
  const std::string corrupt = config.GetString("corrupt", "all");
  const int corrupt_node = static_cast<int>(config.GetInt("corrupt_node", -1));
  const double corrupt_at = config.GetDouble("corrupt_at_ms", 0.0);
  const int corrupt_count =
      static_cast<int>(config.GetInt("corrupt_count", 1));
  const uint64_t corrupt_salt =
      static_cast<uint64_t>(config.GetInt("corrupt_salt", 1));
  system_config.faults.mttc_ms = config.GetDouble("fault_mttc_ms", 0.0);
  system_config.corrupt_latent_fraction =
      config.GetDouble("corrupt_latent", 0.0);
  const std::string scrub = config.GetString("scrub", "off");
  const double scrub_interval = config.GetDouble("scrub_interval_ms", 1000.0);
  if (corrupt == "off") {
    // Kill switch: no stochastic stream, no scripted strikes.
    system_config.faults.mttc_ms = 0.0;
  } else if (corrupt == "disk") {
    system_config.corrupt_surface = CorruptionSurface::kDisk;
  } else if (corrupt == "frames") {
    system_config.corrupt_surface = CorruptionSurface::kFrames;
  } else if (corrupt == "all") {
    system_config.corrupt_surface = CorruptionSurface::kAll;
  } else {
    if (error) {
      *error = BadEnumValue("corrupt", corrupt,
                            {"off", "disk", "frames", "all"});
    }
    return std::nullopt;
  }
  if (corrupt_node >= 0 && corrupt != "off") {
    system_config.faults.corruption_script.push_back(
        {corrupt_at, static_cast<uint32_t>(corrupt_node),
         static_cast<uint32_t>(corrupt_count), corrupt_salt});
  }
  if (scrub == "off") {
    system_config.scrub_interval_ms = 0.0;
  } else if (scrub == "idle") {
    system_config.scrub_interval_ms = scrub_interval;
  } else {
    if (error) *error = BadEnumValue("scrub", scrub, {"off", "idle"});
    return std::nullopt;
  }

  scenario.intervals = static_cast<int>(config.GetInt("intervals", 40));
  scenario.audit = config.GetBool("audit", false);
  scenario.chaos_seed = static_cast<uint64_t>(config.GetInt("chaos_seed", 0));
  if (scenario.chaos_seed != 0) {
    // Overlay a generated chaos schedule on the scripted faults. The
    // schedule's own goal-churn events are disabled — scenario files define
    // the classes, so there is no fixed class list to churn.
    if (system_config.num_nodes < 3 || system_config.num_nodes > 32) {
      if (error) *error = "chaos_seed needs 3..32 nodes";
      return std::nullopt;
    }
    sim::chaos::GenerateLimits limits;
    limits.num_nodes = system_config.num_nodes;
    limits.horizon_ms =
        scenario.intervals * system_config.observation_interval_ms;
    const sim::chaos::Schedule schedule =
        sim::chaos::Generate(scenario.chaos_seed, limits);
    sim::chaos::ApplyToFaultParams(schedule, &system_config.faults);
    scenario.chaos_events = schedule.events.size();
  }

  const int num_classes = static_cast<int>(config.GetInt("classes", 2));
  for (int c = 0; c < num_classes; ++c) {
    const std::string prefix = "class" + std::to_string(c) + "_";
    workload::ClassSpec spec;
    spec.id = static_cast<ClassId>(c);
    const double goal = config.GetDouble(prefix + "goal_ms", 0.0);
    if (c != 0 && goal > 0.0) spec.goal_rt_ms = goal;
    if (c != 0 && goal <= 0.0) {
      if (error) *error = prefix + "goal_ms required for goal class";
      return std::nullopt;
    }
    const PageId slice =
        system_config.db_pages / static_cast<PageId>(num_classes);
    const std::string default_range =
        std::to_string(c * slice) + ":" + std::to_string((c + 1) * slice);
    workload::PageRange range;
    if (!ParsePageRange(config.GetString(prefix + "pages", default_range),
                        &range)) {
      if (error) *error = "bad " + prefix + "pages";
      return std::nullopt;
    }
    spec.pages = range;
    spec.mean_interarrival_ms =
        config.GetDouble(prefix + "interarrival_ms", 100.0);
    spec.accesses_per_op =
        static_cast<int>(config.GetInt(prefix + "accesses", 4));
    spec.zipf_skew = config.GetDouble(prefix + "skew", 0.0);
    spec.share_prob = config.GetDouble(prefix + "share_prob", 0.0);
    const std::string shared_text =
        config.GetString(prefix + "shared_pages", "");
    const double shared_skew =
        config.GetDouble(prefix + "shared_skew", spec.zipf_skew);
    if (spec.share_prob > 0.0) {
      workload::PageRange shared;
      if (!ParsePageRange(shared_text, &shared)) {
        if (error) *error = prefix + "shared_pages required";
        return std::nullopt;
      }
      spec.shared_pages = shared;
      spec.shared_skew = shared_skew;
    }
    scenario.classes.push_back(spec);
  }
  return scenario;
}

}  // namespace memgoal::core
