#ifndef MEMGOAL_CORE_GOAL_CONTROLLER_H_
#define MEMGOAL_CORE_GOAL_CONTROLLER_H_

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "core/measure.h"
#include "core/optimizer.h"
#include "core/system.h"
#include "core/tolerance.h"
#include "la/matrix.h"

namespace memgoal::core {

/// The paper's distributed goal-oriented buffer partitioning (§5): one
/// agent per class per node, one coordinator per goal class, wired through
/// the simulated network with all protocol traffic accounted.
///
/// Each observation interval runs the five-phase feedback loop:
///  (a) local agents roll up inter-arrival rate and mean response time and
///      report to their coordinator on significant change; no-goal agents
///      report to every goal coordinator;
///  (b) coordinators fold reports into their measure-point store (N+1 most
///      recent affinely independent points, incremental Gauss);
///  (c) the coordinator checks the weighted mean response time against the
///      goal with a variance-derived tolerance;
///  (d) on violation it fits the two approximation hyperplanes and solves
///      the partitioning LP (or runs the warm-up heuristic while fewer than
///      N+1 points exist);
///  (e) allocation commands go to the agents, which apply them clamped to
///      local availability and acknowledge the granted sizes.
///
/// Partition tolerance is epoch-fenced (CP): a coordinator may check and
/// re-partition only while it holds a quorum lease — its home reaches a
/// strict majority of the currently-live nodes. Losing quorum (a cut, or
/// the home's death) drops the lease; a node on the majority side takes
/// over under an incremented epoch and announces it to every reachable
/// agent. Agents fence allocation grants by epoch
/// (ClusterSystem::ApplyAllocationFenced), so a deposed coordinator's
/// in-flight commands bounce instead of overwriting the new lease's
/// decisions. A minority-side coordinator degrades to the static local
/// fallback: grants stay frozen at their last applied values and checks
/// are skipped until the topology lets it reacquire a lease.
class GoalOrientedController final : public Controller {
 public:
  GoalOrientedController() = default;

  void Attach(ClusterSystem* system) override;
  void OnIntervalEnd(int interval_index) override;
  void OnGoalChanged(ClassId klass) override;
  void OnNodeCrash(NodeId node) override;
  void OnNodeRecover(NodeId node) override;
  void OnPartitionChange() override;
  std::optional<std::string> AuditInvariants() const override;
  double ToleranceFor(ClassId klass) const override;
  LpOutcomeCounters LpOutcomes() const override;
  void PublishMetrics(obs::Registry* registry) override;
  const char* name() const override { return "goal-oriented"; }

  /// Protocol/algorithm activity counters for the overhead experiment and
  /// tests.
  struct ProtocolStats {
    uint64_t reports_sent = 0;
    uint64_t checks = 0;
    uint64_t violations = 0;
    uint64_t lp_optimizations = 0;
    uint64_t warmup_steps = 0;
    uint64_t allocation_commands = 0;
    uint64_t best_effort_allocations = 0;
    uint64_t saturations = 0;
    // Degradation counters (fault tolerance).
    uint64_t crashes_observed = 0;
    uint64_t recoveries_observed = 0;
    /// Coordinators re-homed because their node died.
    uint64_t coordinator_failovers = 0;
    /// Measure-store resets forced by crash/recovery (re-warm-ups).
    uint64_t store_resets = 0;
    /// Reports/observations rejected for non-finite rt or rate.
    uint64_t nonfinite_observations_rejected = 0;
    /// LP runs skipped because the fitted hyperplane was degenerate or had
    /// non-finite coefficients (previous allocation kept).
    uint64_t degenerate_fit_skips = 0;
    /// Per-SimplexStatus outcomes across every simplex solve of the
    /// fallback chain (one optimization may count several solves), plus
    /// relaxed-goal retries taken after an infeasible inequality LP.
    uint64_t lp_status_optimal = 0;
    uint64_t lp_status_infeasible = 0;
    uint64_t lp_status_unbounded = 0;
    /// Solves cut off by the simplex iteration safety bound (distinct from
    /// infeasible — the LP was never classified).
    uint64_t lp_status_iteration_limit = 0;
    uint64_t lp_relaxed_retries = 0;
    /// LP runs that offered the previous interval's basis as a warm start
    /// vs. runs posed cold (no basis retained, or it was invalidated by a
    /// topology/epoch change). The solver itself may still silently reject
    /// an offered basis that no longer fits the program.
    uint64_t lp_warm_starts = 0;
    uint64_t lp_cold_starts = 0;
    // Partition-tolerance counters (epoch-fenced leases).
    uint64_t partition_changes_observed = 0;
    /// Quorum leases dropped (cut or home death deposed the coordinator).
    uint64_t leases_lost = 0;
    /// Leases (re)acquired under a fresh epoch, failovers included.
    uint64_t lease_acquisitions = 0;
    /// Coordinator checks skipped in the leaseless static-fallback mode.
    uint64_t checks_skipped_no_lease = 0;
  };
  const ProtocolStats& stats() const { return stats_; }

  /// Coordinator-side measure store of a goal class (for tests).
  const MeasureStore& measure_store(ClassId klass) const;

  /// Node hosting the coordinator of `klass`.
  NodeId coordinator_node(ClassId klass) const;

  /// Migrates the coordinator of `klass` to another node (§5: coordinators
  /// may be placed separately per class "and even a migration of a
  /// coordinator from one node to another node is possible, as long as all
  /// corresponding agents are informed"). Models the notification messages
  /// to every agent; the coordinator's state (measure points, tolerance
  /// history) moves with it. Takes effect for all subsequent reports and
  /// checks.
  void MigrateCoordinator(ClassId klass, NodeId new_home);

  /// After this many consecutive too-slow checks the coordinator abandons
  /// the fitted planes and saturates the class's allocation (see
  /// CoordinatorCheck).
  static constexpr int kSaturateAfterSlowChecks = 3;

 private:
  /// Coordinator-side view of one node's class-k agent.
  struct NodeView {
    std::optional<double> rt_ms;
    double arrival_rate = 0.0;
    uint64_t granted_bytes = 0;
    uint64_t bound_bytes = 0;
  };

  struct Coordinator {
    Coordinator(ClassId klass, NodeId home, size_t num_nodes,
                double tolerance_floor, double tolerance_z)
        : klass(klass), home(home), views(num_nodes), nogoal_rt(num_nodes),
          nogoal_rate(num_nodes, 0.0), store(num_nodes),
          tolerance(tolerance_floor, tolerance_z) {}

    ClassId klass;
    NodeId home;
    std::vector<NodeView> views;
    std::vector<std::optional<double>> nogoal_rt;
    std::vector<double> nogoal_rate;
    MeasureStore store;
    ToleranceEstimator tolerance;
    int warmup_step = 0;
    int consecutive_slow = 0;
    /// Fencing epoch of the current lease; incremented at every
    /// (re)acquisition so agents can reject a deposed holder's grants.
    uint64_t epoch = 1;
    /// True while `home` holds the quorum lease; without it the
    /// coordinator neither checks nor re-partitions (static fallback).
    bool has_lease = true;
    /// Final simplex basis of the last successful LP solve, offered as a
    /// warm start to the next one. Cleared whenever measurement restarts
    /// (crash/recovery/partition/epoch change): the LP shape or operating
    /// point moved, so the old basis is stale.
    la::SimplexBasis lp_warm_basis;
  };

  /// Last values each agent sent, for the significant-change filter.
  struct LastSent {
    bool valid = false;
    double rt_ms = 0.0;
    double arrival_rate = 0.0;
    uint64_t granted_bytes = 0;
    uint64_t bound_bytes = 0;
  };

  bool SignificantChange(const LastSent& last, double rt, double rate,
                         uint64_t granted, uint64_t bound) const;

  /// Folds one optimization's simplex outcomes into the protocol stats.
  void AccumulateLpStats(const LpOutcomeStats& lp);

  // Message-modelled deliveries (spawned).
  sim::Task<void> DeliverGoalReport(Coordinator* coordinator, NodeId from,
                                    std::optional<double> rt, double rate,
                                    uint64_t granted, uint64_t bound);
  sim::Task<void> DeliverNoGoalReport(Coordinator* coordinator, NodeId from,
                                      std::optional<double> rt, double rate);
  sim::Task<void> CoordinatorCheck(Coordinator* coordinator);
  /// Ships `target` to the live agents. When `record` is non-null the
  /// shipped (post-rounding) and granted (post-clamp, acked) per-node
  /// allocations are captured into it for the decision log.
  sim::Task<void> SendAllocations(Coordinator* coordinator, la::Vector target,
                                  obs::DecisionRecord* record = nullptr);

  std::optional<double> WeightedGoalRt(const Coordinator& coordinator) const;
  std::optional<double> WeightedNoGoalRt(const Coordinator& coordinator) const;

  la::Vector WarmupAllocation(Coordinator* coordinator) const;

  /// Drops `node`'s stale state from `coordinator` and restarts measurement
  /// accumulation over the current live-node set (shared crash/recovery
  /// path; both invalidate every retained measure point).
  void RestartMeasurement(Coordinator* coordinator, NodeId node);

  /// Restarts measurement over the nodes currently live *and reachable*
  /// from the coordinator's home, wiping views of everything outside that
  /// set; every retained measure point described a topology that no longer
  /// exists.
  void RestartMeasurementOver(Coordinator* coordinator);

  /// Whether a coordinator homed at `home` can assemble a quorum right now:
  /// `home` is up and reaches a strict majority of the currently-live
  /// nodes. In an unpartitioned cluster this holds for every live node, so
  /// crash-only scenarios never lose the lease.
  bool QuorumFrom(NodeId home) const;
  bool HasQuorum(const Coordinator& coordinator) const {
    return QuorumFrom(coordinator.home);
  }

  /// Re-evaluates `coordinator`'s lease against the current topology:
  /// reacquires in place when its home regained quorum, deposes it and
  /// fails over to the lowest-numbered node that can assemble one, or
  /// leaves the class leaseless (even split / mass outage). Acquisition
  /// bumps the epoch and announces it; measurement restarts are the
  /// caller's job.
  void ReevaluateLease(Coordinator* coordinator);

  /// Synchronously raises the fence of every reachable live agent to the
  /// coordinator's epoch and accounts the announcement traffic.
  void AnnounceLease(Coordinator* coordinator);

  ClusterSystem* system_ = nullptr;
  std::map<ClassId, Coordinator> coordinators_;
  std::map<std::pair<ClassId, NodeId>, LastSent> last_sent_;
  ProtocolStats stats_;
};

}  // namespace memgoal::core

#endif  // MEMGOAL_CORE_GOAL_CONTROLLER_H_
