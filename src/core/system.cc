#include "core/system.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <string>
#include <utility>

#include "cache/cost_based.h"
#include "cache/lru_k.h"
#include "common/check.h"
#include "common/logging.h"
#include "core/goal_controller.h"
#include "core/system_audits.h"

namespace memgoal::core {

namespace {

cache::CostModel DeriveCostModel(const SystemConfig& config) {
  // What the on-line cost learning of §6 converges to under stable load:
  // the service-time components of each storage level, excluding queueing.
  cache::CostModel costs;
  storage::Disk::Params d = config.disk;
  const double disk_ms = d.avg_seek_ms + d.rotation_ms / 2.0 +
                         static_cast<double>(config.page_bytes) /
                             (d.transfer_mb_per_s * 1e6) * 1e3;
  const double control_ms =
      static_cast<double>(config.control_msg_bytes) * 8.0 /
          (config.network.bandwidth_mbit_per_s * 1e6) * 1e3 +
      config.network.latency_ms;
  const double page_ms =
      static_cast<double>(config.page_bytes + config.page_header_bytes) * 8.0 /
          (config.network.bandwidth_mbit_per_s * 1e6) * 1e3 +
      config.network.latency_ms;

  costs.local_buffer_ms = config.CpuMs(config.instr_buffer_access);
  costs.remote_buffer_ms =
      config.CpuMs(config.instr_io_setup) + control_ms + page_ms;
  costs.local_disk_ms = config.CpuMs(config.instr_io_setup) + disk_ms;
  costs.remote_disk_ms =
      config.CpuMs(config.instr_io_setup) + control_ms + disk_ms + page_ms;
  return costs;
}

}  // namespace

// --------------------------------------------------------------------------
// Node
// --------------------------------------------------------------------------

Node::Node(ClusterSystem* system, NodeId id)
    : system_(system), id_(id),
      cpu_(&system->simulator(), /*capacity=*/1,
           "node" + std::to_string(id) + "/cpu"),
      disk_(&system->simulator(), system->config().disk,
            system->config().page_bytes,
            "node" + std::to_string(id) + "/disk"),
      accumulated_heat_(system->config().lru_k) {
  cache_ = std::make_unique<cache::NodeCache>(
      id, system->config().cache_bytes_per_node, system->config().page_bytes,
      [this](ClassId pool_class) { return MakePolicy(pool_class); });
}

std::unique_ptr<cache::ReplacementPolicy> Node::MakePolicy(
    ClassId pool_class) {
  const SystemConfig& config = system_->config();
  switch (config.policy) {
    case cache::PolicyKind::kFifo:
      return cache::MakeFifoPolicy();
    case cache::PolicyKind::kLru:
      return cache::MakeLruPolicy();
    case cache::PolicyKind::kLruK: {
      const cache::HeatTracker* tracker = &accumulated_heat_;
      if (pool_class != kNoGoalClass) {
        tracker = &class_heat_.try_emplace(pool_class, config.lru_k)
                       .first->second;
      }
      return cache::MakeLruKPolicy(tracker, &system_->simulator());
    }
    case cache::PolicyKind::kCostBased:
      if (pool_class != kNoGoalClass) {
        class_heat_.try_emplace(pool_class, config.lru_k);
      }
      return cache::MakeCostBasedPolicy([this, pool_class](PageId page) {
        return BenefitOf(pool_class, page);
      });
  }
  MEMGOAL_CHECK_MSG(false, "unknown policy kind");
  return nullptr;
}

double Node::AccumulatedHeat(PageId page) const {
  return accumulated_heat_.HeatOf(page, system_->simulator().Now());
}

double Node::PoolHeat(ClassId pool_class, PageId page) const {
  if (pool_class == kNoGoalClass) return AccumulatedHeat(page);
  auto it = class_heat_.find(pool_class);
  if (it == class_heat_.end()) return 0.0;
  return it->second.HeatOf(page, system_->simulator().Now());
}

double Node::BenefitOf(ClassId pool_class, PageId page) const {
  const net::PageDirectory& directory = system_->directory();
  const double pool_heat = PoolHeat(pool_class, page);
  const bool cached_here = directory.IsCachedAt(id_, page);
  const bool other_copy =
      directory.CopyCount(page) - (cached_here ? 1 : 0) >= 1;
  const double* reported = reported_heat_.Find(page);
  const double own_reported = reported == nullptr ? 0.0 : *reported;
  const double foreign = directory.GlobalHeat(page) - own_reported;
  const bool home_local = system_->database().HomeOf(page) == id_;
  return cache::KeepBenefit(system_->cost_model(), pool_heat, foreign,
                            other_copy, home_local);
}

void Node::RecordAccessHeat(ClassId klass, PageId page) {
  const sim::SimTime now = system_->simulator().Now();
  // Propagation must be checked per access (see the declaration comment)
  // and needs the heat of exactly this page, so record and read are fused
  // into one history operation instead of a pending append plus a
  // flush-of-one on the read.
  const double heat = accumulated_heat_.RecordAndHeat(page, now);
  if (klass != kNoGoalClass) {
    if (klass != class_heat_memo_class_) {
      class_heat_memo_ =
          &class_heat_.try_emplace(klass, system_->config().lru_k)
               .first->second;
      class_heat_memo_class_ = klass;
    }
    class_heat_memo_->RecordAccess(page, now);
  }
  MaybePropagateHeat(page, heat);
}

sim::Task<void> Node::DeliverHeatReport(NodeId home, PageId page,
                                        double heat) {
  const bool delivered = co_await system_->network().Transfer(
      id_, home, system_->config().hint_msg_bytes,
      net::TrafficClass::kHeatHint);
  // The home's directory entry only changes when the (best-effort) hint
  // actually arrives.
  if (delivered) {
    system_->directory().ReportLocalHeat(id_, page, heat);
    unsynced_hints_.erase(page);
  } else if (!system_->Reachable(id_, home)) {
    // Lost to a partition cut (not the ambient loss process, whose drops
    // threshold dissemination repairs by itself): owed to the home at heal
    // time. Reachability is checked at the delivery instant, the same
    // instant the drop decision was made, so this classification is exact.
    unsynced_hints_.insert(page);
  }
}

void Node::MaybePropagateHeat(PageId page, double heat) {
  const SystemConfig& config = system_->config();
  const double* reported = reported_heat_.Find(page);
  const double last = reported == nullptr ? 0.0 : *reported;
  const bool significant =
      last == 0.0 ? heat > 0.0
                  : std::fabs(heat - last) > config.hint_heat_threshold * last;
  if (!significant) return;
  const NodeId home = system_->database().HomeOf(page);
  if (home == id_) {
    reported_heat_[page] = heat;
    system_->directory().ReportLocalHeat(id_, page, heat);
    return;
  }
  if (config.hint_fanout_budget > 0 &&
      hint_sends_this_interval_ >= config.hint_fanout_budget) {
    // Over the per-interval fan-out budget. Skip the send *without*
    // updating the last-reported heat: the change stays significant, so
    // the threshold filter re-offers the hint next interval on its own —
    // no owed-hints bookkeeping needed.
    ++hint_budget_skips_;
    return;
  }
  ++hint_sends_this_interval_;
  reported_heat_[page] = heat;
  system_->simulator().Spawn(DeliverHeatReport(home, page, heat));
}

void Node::ResetVolatileState() {
  const int k = system_->config().lru_k;
  accumulated_heat_ = cache::HeatTracker(k);
  for (auto& [klass, tracker] : class_heat_) {
    tracker = cache::HeatTracker(k);
  }
  reported_heat_.clear();
  // A crashed node owes nothing: its heat contributions were wiped from the
  // directory by DropNode, which is exactly a sync.
  unsynced_hints_.clear();
}

size_t Node::FlushUnsyncedHints() {
  size_t flushed = 0;
  for (const PageId page : unsynced_hints_) {
    const double heat = AccumulatedHeat(page);
    reported_heat_[page] = heat;
    system_->directory().ReportLocalHeat(id_, page, heat);
    const NodeId home = system_->database().HomeOf(page);
    if (home != id_) {
      system_->simulator().Spawn(system_->network().Transfer(
          id_, home, system_->config().hint_msg_bytes,
          net::TrafficClass::kHeatHint));
    }
    ++flushed;
  }
  unsynced_hints_.clear();
  return flushed;
}

size_t Node::HeatHistorySize() const {
  size_t total = accumulated_heat_.tracked_pages();
  for (const auto& [klass, tracker] : class_heat_) {
    total += tracker.tracked_pages();
  }
  return total;
}

void Node::SweepHeatHistory(sim::SimTime horizon) {
  const auto resident = [this](PageId page) { return cache_->IsCached(page); };
  accumulated_heat_.EvictColderThan(horizon, resident);
  for (auto& [klass, tracker] : class_heat_) {
    tracker.EvictColderThan(horizon, resident);
  }
  // Hint bookkeeping for pages whose history just aged out would otherwise
  // grow the same way; a page without history and without residency will be
  // re-reported from scratch if it ever comes back.
  for (auto it = reported_heat_.begin(); it != reported_heat_.end();) {
    if (accumulated_heat_.AccessCount(it.key()) == 0 &&
        !cache_->IsCached(it.key())) {
      it = reported_heat_.Erase(it);
    } else {
      ++it;
    }
  }
}

void Node::HandleDrops(std::span<const PageId> dropped) {
  system_->ClearEvictedFrameMarks(id_, dropped);
  for (PageId page : dropped) {
    if (system_->config().injected_bug != InjectedBug::kLeakDirectoryEntry) {
      system_->directory().OnPageDropped(id_, page);
    }
    const NodeId home = system_->database().HomeOf(page);
    if (home != id_) {
      system_->simulator().Spawn(system_->network().Transfer(
          id_, home, system_->config().hint_msg_bytes,
          net::TrafficClass::kHeatHint));
    }
  }
}

void Node::AfterInsert(PageId page) {
  system_->directory().OnPageCached(id_, page);
  const NodeId home = system_->database().HomeOf(page);
  if (home != id_) {
    system_->simulator().Spawn(system_->network().Transfer(
        id_, home, system_->config().hint_msg_bytes,
        net::TrafficClass::kHeatHint));
  }
}

sim::Task<void> Node::UseCpu(double instructions,
                             sim::Resource::UseTiming* timing) {
  // Use() applies the node's current slowdown factor, so a degraded node's
  // CPU work stretches along with its disk and network latency.
  co_await cpu_.Use(system_->config().CpuMs(instructions), timing);
}

bool Node::CrashedSince(uint64_t epoch) const {
  return system_->NodeEpoch(id_) != epoch || !system_->NodeUp(id_);
}

sim::Task<void> Node::FetchAttempt(std::shared_ptr<FetchState> state,
                                   NodeId target, PageId page,
                                   bool via_home) {
  const SystemConfig& config = system_->config();
  net::Network& network = system_->network();
  const uint64_t target_epoch = system_->NodeEpoch(target);
  // Every Transfer result below is honored: a control or page message lost
  // to a partition cut means silence, and the requester's phase timer turns
  // silence into a timeout — exactly how it detects a dead peer.
  if (via_home) {
    // The directory lives at the page's home: request there, home forwards
    // to the copy holder.
    const NodeId home = system_->database().HomeOf(page);
    const bool home_alive = system_->NodeUp(home);
    const bool asked = co_await network.Transfer(
        id_, home, config.control_msg_bytes, net::TrafficClass::kControl);
    if (!asked || !home_alive || !system_->NodeUp(home)) {
      co_return;  // request died with (or never reached) the home
    }
    const bool forwarded = co_await network.Transfer(
        home, target, config.control_msg_bytes, net::TrafficClass::kControl);
    if (!forwarded) co_return;
  } else {
    const bool asked = co_await network.Transfer(
        id_, target, config.control_msg_bytes, net::TrafficClass::kControl);
    if (!asked) co_return;
  }
  if (!system_->NodeUp(target) ||
      system_->NodeEpoch(target) != target_epoch ||
      !system_->directory().IsCachedAt(target, page)) {
    // Dead, rebooted, or meanwhile evicted: silence; the timer fires.
    co_return;
  }
  // The server verifies the frame before shipping it. A detected flaw is
  // quarantined and answered with silence, so the requester's phase timer
  // hedges to the next-ranked replica — RankedCopies *is* the repair
  // steering for cached corruption.
  storage::Flaw flaw = storage::Flaw::kNone;
  if (system_->integrity_.any_marked()) {
    flaw = system_->integrity_.FrameFlaw(target, page);
    if (flaw == storage::Flaw::kDetectable) {
      if (config.injected_bug != InjectedBug::kSkipVerify) {
        ++system_->corrupt_detected_;
        system_->QuarantineFrame(target, page);
        co_return;
      }
      // kSkipVerify: the corrupt page ships anyway.
    }
  }
  const bool page_arrived = co_await network.Transfer(
      target, id_, config.page_bytes + config.page_header_bytes,
      net::TrafficClass::kPage);
  if (!page_arrived) co_return;  // cut mid-flight: no page, no observation
  // Every completed attempt — even one that lost the hedge race or arrived
  // after the requester gave up — is a latency observation of the target.
  system_->RecordFetchLatency(
      target, system_->simulator().Now() - state->started_ms);
  if (!state->delivered) {
    state->delivered = true;
    state->server = target;
    state->flaw = flaw;
    if (state->wake != nullptr) state->wake->Set();
  }
}

sim::Task<void> Node::FetchPhaseTimer(std::shared_ptr<FetchState> state,
                                      sim::Event* phase, sim::SimTime delay) {
  co_await system_->simulator().Delay(delay);
  phase->Set();  // idempotent: a no-op if a delivery already fired it
  (void)state;   // held so the event outlives the requester
}

sim::Task<StorageLevel> Node::AccessPage(ClassId klass, PageId page,
                                         obs::RequestBudget* budget) {
  const SystemConfig& config = system_->config();
  net::Network& network = system_->network();
  net::PageDirectory& directory = system_->directory();
  const uint64_t start_epoch = system_->NodeEpoch(id_);

  // Per-phase latency attribution. Only waits on the requester's own stack
  // are attributed here; spawned fetch attempts fall under kFetchWait (the
  // wall-clock window the requester spent waiting on deliveries). Timing
  // out-params are pure Now() reads — no events, no RNG — so a budgeted run
  // stays bit-identical to an unbudgeted one.
  sim::Resource::UseTiming cpu_timing;
  sim::Resource::UseTiming* const cpu_out =
      budget != nullptr ? &cpu_timing : nullptr;
  const auto fold_cpu = [&] {
    if (budget != nullptr) {
      budget->Add(obs::BudgetPhase::kCpuWait, cpu_timing.wait_ms);
      budget->Add(obs::BudgetPhase::kCpuService, cpu_timing.service_ms);
    }
  };

  // Request spans: one trace track per page access, phases as sub-spans.
  // When no tracer is attached or it is disabled, every emission below
  // reduces to this one bool test.
  obs::Tracer* tracer = system_->tracer();
  const bool tracing = tracer != nullptr && tracer->enabled();
  const uint64_t track = tracing ? tracer->NextTrack() : 0;
  const sim::SimTime access_start = system_->simulator().Now();
  const auto emit_access_span = [&](StorageLevel level) {
    char args[96];
    std::snprintf(args, sizeof(args),
                  "{\"class\":%u,\"page\":%u,\"level\":\"%s\"}",
                  static_cast<unsigned>(klass), static_cast<unsigned>(page),
                  StorageLevelName(level));
    tracer->Complete("access", "access", id_, track, access_start,
                     system_->simulator().Now(), args);
  };

  RecordAccessHeat(klass, page);
  co_await UseCpu(config.instr_buffer_access, cpu_out);
  if (CrashedSince(start_epoch)) co_return StorageLevel::kLocalBuffer;

  cache::NodeCache::AccessResult access = cache_->OnAccess(klass, page);
  HandleDrops(access.dropped);
  if (tracing) {
    tracer->Complete("cache_probe", "access", id_, track, access_start,
                     system_->simulator().Now(),
                     access.hit ? "{\"hit\":true}" : "{\"hit\":false}");
  }
  if (access.hit) {
    // Verify-on-read: a detectably corrupt frame is quarantined and the
    // access falls through to the fetch path below — the repair ladder for
    // cached corruption is simply a re-fetch from a replica or the disk.
    storage::Flaw hit_flaw = storage::Flaw::kNone;
    if (system_->integrity_.any_marked()) {
      hit_flaw = system_->integrity_.FrameFlaw(id_, page);
    }
    bool serve_local = true;
    if (hit_flaw == storage::Flaw::kDetectable) {
      if (config.injected_bug == InjectedBug::kSkipVerify) {
        ++system_->corrupt_served_;  // bug: the bad frame is consumed as-is
      } else {
        ++system_->corrupt_detected_;
        system_->QuarantineFrame(id_, page);
        serve_local = false;
      }
    } else if (hit_flaw == storage::Flaw::kLatent) {
      ++system_->latent_served_;  // sailed past the checksum; modeled only
    }
    if (serve_local) {
      system_->CountAccess(klass, StorageLevel::kLocalBuffer);
      if (tracing) emit_access_span(StorageLevel::kLocalBuffer);
      fold_cpu();
      co_return StorageLevel::kLocalBuffer;
    }
  }

  co_await UseCpu(config.instr_io_setup, cpu_out);
  const NodeId home = system_->database().HomeOf(page);
  const uint32_t page_msg = config.page_bytes + config.page_header_bytes;
  StorageLevel level;
  // Integrity of the content this fetch ends up consuming: set from the
  // serving frame's flaw on a remote-buffer delivery, or from the disk
  // verify on the fallback paths.
  storage::Flaw fetched_flaw = storage::Flaw::kNone;

  // Remote-buffer fetch with per-request deadlines and one hedged retry:
  // the requester tries the best-ranked copy holder, and if the page has
  // not arrived within `crash_detect_timeout_ms` it hedges to the
  // next-best replica. Silence *is* the failure detector — a dead or
  // rebooted peer never answers, a merely degraded one answers late (the
  // late page still completes and feeds the health score, it just loses
  // the race). After the hedge budget an exponential backoff precedes the
  // disk fallback. Disks survive crashes (the NOW's disks are dual-ported),
  // so a dead home's pages stay readable from its disk at remote-disk cost.
  net::PageDirectory::CopyList candidates;
  directory.RankedCopies(page, id_, &candidates);
  if (tracing) {
    char args[48];
    std::snprintf(args, sizeof(args), "{\"copies\":%zu}", candidates.size());
    tracer->Instant("dir_lookup", "access", id_, track,
                    system_->simulator().Now(), args);
  }
  auto state = std::allocate_shared<FetchState>(
      sim::FramePoolAllocator<FetchState>());
  state->started_ms = system_->simulator().Now();
  int failed_attempts = 0;
  const size_t max_attempts = std::min<size_t>(candidates.size(), 2);
  for (size_t phase = 0; phase < max_attempts && !state->delivered;
       ++phase) {
    const NodeId target = candidates[phase];
    if (tracing && phase > 0) {
      char args[48];
      std::snprintf(args, sizeof(args), "{\"target\":%u}",
                    static_cast<unsigned>(target));
      tracer->Instant("hedge", "access", id_, track,
                      system_->simulator().Now(), args);
    }
    state->phase_events.push_back(
        std::make_unique<sim::Event>(&system_->simulator()));
    sim::Event* event = state->phase_events.back().get();
    state->wake = event;
    const bool via_home = home != id_ && target != home;
    system_->simulator().Spawn(FetchAttempt(state, target, page, via_home));
    system_->simulator().Spawn(
        FetchPhaseTimer(state, event, config.crash_detect_timeout_ms));
    co_await event->Wait();
    if (!state->delivered) {
      ++failed_attempts;
      system_->RecordFetchTimeout(target, config.crash_detect_timeout_ms);
      if (tracing) {
        char args[48];
        std::snprintf(args, sizeof(args), "{\"target\":%u}",
                      static_cast<unsigned>(target));
        tracer->Instant("fetch_timeout", "access", id_, track,
                        system_->simulator().Now(), args);
      }
    }
  }
  state->wake = nullptr;
  state->abandoned = !state->delivered;
  if (tracing && max_attempts > 0) {
    tracer->Complete("fetch_wait", "access", id_, track, state->started_ms,
                     system_->simulator().Now(),
                     state->delivered ? "{\"delivered\":true}"
                                      : "{\"delivered\":false}");
  }
  if (budget != nullptr) {
    budget->Add(obs::BudgetPhase::kFetchWait,
                system_->simulator().Now() - state->started_ms);
  }

  if (state->delivered) {
    level = StorageLevel::kRemoteBuffer;
    fetched_flaw = state->flaw;
  } else {
    if (failed_attempts > 0) {
      // Deadline(s) expired: brief exponential backoff, then the disk.
      const double backoff =
          std::min(config.fetch_backoff_base_ms *
                       std::pow(2.0, failed_attempts - 1),
                   config.fetch_backoff_max_ms);
      const sim::SimTime backoff_start = system_->simulator().Now();
      co_await system_->simulator().Delay(backoff);
      if (tracing) {
        tracer->Complete("backoff", "access", id_, track, backoff_start,
                         system_->simulator().Now());
      }
      if (budget != nullptr) {
        budget->Add(obs::BudgetPhase::kBackoff,
                    system_->simulator().Now() - backoff_start);
      }
      system_->CountFetchFallback(klass);
    }
    sim::Resource::UseTiming disk_timing;
    sim::Resource::UseTiming* const disk_out =
        budget != nullptr ? &disk_timing : nullptr;
    net::Network::TransferTiming net_timing;
    net::Network::TransferTiming* const net_out =
        budget != nullptr ? &net_timing : nullptr;
    const sim::SimTime disk_start = system_->simulator().Now();
    if (home == id_) {
      co_await disk_.ReadPage(disk_out);
      fetched_flaw = co_await system_->VerifyDiskRead(page);
      level = StorageLevel::kLocalDisk;
    } else {
      if (candidates.empty()) {
        // No cached copy anywhere: the classic ask-the-home disk read. A
        // dead home — or one unreachable across a partition cut — is
        // detected by one deadline wait (shared by the whole request; it is
        // the only wait this path pays).
        const bool home_alive = system_->NodeUp(home);
        const bool asked = co_await network.Transfer(
            id_, home, config.control_msg_bytes, net::TrafficClass::kControl,
            /*via_storage_bus=*/false, net_out);
        if (!asked || !home_alive || !system_->NodeUp(home)) {
          co_await system_->simulator().Delay(config.crash_detect_timeout_ms);
          if (budget != nullptr) {
            budget->Add(obs::BudgetPhase::kFetchWait,
                        config.crash_detect_timeout_ms);
          }
          system_->CountFetchFallback(klass);
        }
      }
      co_await system_->node(home).disk().ReadPage(disk_out);
      fetched_flaw = co_await system_->VerifyDiskRead(page);
      // The NOW's disks are dual-ported: the page travels over the storage
      // bus, which a LAN partition does not sever. Bandwidth/queueing of the
      // shared medium still applies.
      co_await network.Transfer(home, id_, page_msg,
                                net::TrafficClass::kPage,
                                /*via_storage_bus=*/true, net_out);
      level = StorageLevel::kRemoteDisk;
    }
    if (budget != nullptr) {
      budget->Add(obs::BudgetPhase::kDiskWait, disk_timing.wait_ms);
      budget->Add(obs::BudgetPhase::kDiskService, disk_timing.service_ms);
      budget->Add(obs::BudgetPhase::kNetWait, net_timing.wait_ms);
      budget->Add(obs::BudgetPhase::kNetTransfer, net_timing.transfer_ms);
    }
    if (tracing) {
      char args[48];
      std::snprintf(args, sizeof(args), "{\"home\":%u}",
                    static_cast<unsigned>(home));
      tracer->Complete("disk_read", "access", id_, track, disk_start,
                       system_->simulator().Now(), args);
    }
  }

  // Our own node may have crashed while we fetched: the wiped (or freshly
  // recovered) cache must not receive the stale page, and the access is not
  // counted (the operation fails).
  if (CrashedSince(start_epoch)) co_return level;

  // A concurrent operation may have cached the page while we fetched.
  if (!cache_->IsCached(page)) {
    cache::NodeCache::AccessResult insert = cache_->InsertFetched(klass, page);
    HandleDrops(insert.dropped);
    if (insert.inserted) {
      AfterInsert(page);
      // The fetched bits are now this frame's bits: a flawed source
      // silently propagates its flaw into our copy.
      if (fetched_flaw != storage::Flaw::kNone &&
          system_->integrity_.MarkFrame(id_, page, fetched_flaw) &&
          fetched_flaw == storage::Flaw::kLatent) {
        ++system_->latent_propagated_;
      }
    }
  } else {
    cache::NodeCache::AccessResult touch = cache_->OnAccess(klass, page);
    HandleDrops(touch.dropped);
  }
  // What the client actually consumed: kDetectable here means a verify was
  // skipped somewhere (the no-corrupt-page-served audit's ground truth).
  if (fetched_flaw == storage::Flaw::kDetectable) {
    ++system_->corrupt_served_;
  } else if (fetched_flaw == storage::Flaw::kLatent) {
    ++system_->latent_served_;
  }
  system_->CountAccess(klass, level);
  if (tracing) emit_access_span(level);
  fold_cpu();
  co_return level;
}

// --------------------------------------------------------------------------
// ClusterSystem
// --------------------------------------------------------------------------

ClusterSystem::ClusterSystem(const SystemConfig& config)
    : config_(config),
      simulator_(config.queue_backend),
      database_(config.db_pages, config.page_bytes, config.num_nodes),
      network_(&simulator_, config.network),
      directory_(&database_),
      cost_model_(DeriveCostModel(config)),
      master_rng_(config.seed),
      fault_injector_(&simulator_, config.num_nodes, config.faults),
      integrity_(config.db_pages, config.num_nodes) {
  MEMGOAL_CHECK(config.num_nodes > 0);
  MEMGOAL_CHECK(config.crash_detect_timeout_ms >= 0.0);
  MEMGOAL_CHECK(config.corrupt_latent_fraction >= 0.0 &&
                config.corrupt_latent_fraction <= 1.0);
  MEMGOAL_CHECK(config.scrub_interval_ms >= 0.0);
  MEMGOAL_CHECK(config.fetch_backoff_base_ms >= 0.0);
  MEMGOAL_CHECK(config.fetch_backoff_max_ms >= config.fetch_backoff_base_ms);
  MEMGOAL_CHECK(config.health_ewma_alpha > 0.0 &&
                config.health_ewma_alpha <= 1.0);
  MEMGOAL_CHECK(config.health_recovery_decay >= 0.0 &&
                config.health_recovery_decay <= 1.0);
  nodes_.reserve(config.num_nodes);
  for (NodeId i = 0; i < config.num_nodes; ++i) {
    nodes_.push_back(std::make_unique<Node>(this, i));
  }
  // Health scores start at the cost model's healthy remote-buffer fetch
  // time and are mirrored into the directory's replica ranking, so the
  // all-healthy ranking is exactly the historic home-first scan order.
  health_ewma_.assign(config.num_nodes, cost_model_.remote_buffer_ms);
  for (NodeId i = 0; i < config.num_nodes; ++i) {
    directory_.SetNodeCost(i, health_ewma_[i]);
  }
  fault_injector_.SetCallbacks(
      [this](uint32_t node) { HandleNodeCrash(node); },
      [this](uint32_t node) { HandleNodeRecover(node); });
  fault_injector_.SetDegradationCallbacks(
      [this](uint32_t node) { HandleNodeDegrade(node); },
      [this](uint32_t node) { HandleNodeRestore(node); });
  fault_injector_.SetPartitionCallback([this] { HandlePartitionChange(); });
  fault_injector_.SetCorruptionCallback(
      [this](uint32_t node, uint64_t draw) { HandleCorruption(node, draw); });
  // Replica ranking for repair steers around detectably corrupt frames; a
  // latent flaw passes the predicate by construction (nothing can see it).
  directory_.SetIntegrityCheck([this](NodeId node, PageId page) {
    return integrity_.FrameFlaw(node, page) != storage::Flaw::kDetectable;
  });
  // The injector's reachability relation is the single source of truth; the
  // network enforces it on delivery and the directory's replica ranking
  // excludes unreachable holders. Both consult it only while partitioned.
  const auto reachable = [this](NodeId from, NodeId to) {
    return fault_injector_.Reachable(from, to);
  };
  network_.SetReachability(reachable);
  directory_.SetReachability(reachable);
  controller_ = std::make_unique<GoalOrientedController>();
}

ClusterSystem::~ClusterSystem() = default;

void ClusterSystem::AddClass(const workload::ClassSpec& spec) {
  MEMGOAL_CHECK(!started_);
  for (const workload::ClassSpec& existing : classes_) {
    MEMGOAL_CHECK_MSG(existing.id != spec.id, "duplicate class id");
  }
  if (spec.id == kNoGoalClass) {
    MEMGOAL_CHECK_MSG(!spec.goal_rt_ms.has_value(),
                      "class 0 is the no-goal class");
  } else {
    MEMGOAL_CHECK_MSG(spec.goal_rt_ms.has_value(),
                      "goal classes need a goal");
    MEMGOAL_CHECK(*spec.goal_rt_ms > 0.0);
    for (auto& node : nodes_) {
      node->node_cache().EnsureDedicatedPool(spec.id);
    }
  }
  MEMGOAL_CHECK(spec.pages.end <= database_.num_pages());
  MEMGOAL_CHECK(spec.mean_interarrival_ms > 0.0);
  MEMGOAL_CHECK(spec.per_node_interarrival_ms.empty() ||
                spec.per_node_interarrival_ms.size() == config_.num_nodes);
  for (double t : spec.per_node_interarrival_ms) MEMGOAL_CHECK(t > 0.0);
  MEMGOAL_CHECK(spec.accesses_per_op > 0);
  classes_.push_back(spec);
  counters_[spec.id];  // create the counter row
}

void ClusterSystem::SetController(std::unique_ptr<Controller> controller) {
  MEMGOAL_CHECK(!started_);
  MEMGOAL_CHECK(controller != nullptr);
  controller_ = std::move(controller);
}

void ClusterSystem::SetTracer(obs::Tracer* tracer) {
  tracer_ = tracer;
  network_.SetTracer(tracer);
  if (tracer != nullptr && tracer->enabled()) {
    for (NodeId i = 0; i < config_.num_nodes; ++i) {
      tracer->SetProcessName(i, "node" + std::to_string(i));
    }
  }
}

void ClusterSystem::SetIntervalCallback(IntervalCallback callback) {
  interval_callback_ = std::move(callback);
}

void ClusterSystem::Start() {
  MEMGOAL_CHECK(!started_);
  MEMGOAL_CHECK_MSG(!classes_.empty(), "no workload classes configured");
  started_ = true;
  // Resource histograms live as long as the system; register the views once
  // so every interval snapshot carries their quantiles with saturation
  // state.
  char name[64];
  for (NodeId i = 0; i < config_.num_nodes; ++i) {
    std::snprintf(name, sizeof(name), "node%u.cpu.wait_ms", i);
    registry_.RegisterHistogram(name, &nodes_[i]->cpu().wait_histogram(),
                                {0.5, 0.99});
    std::snprintf(name, sizeof(name), "node%u.disk.wait_ms", i);
    registry_.RegisterHistogram(name, &nodes_[i]->disk().resource().wait_histogram(),
                                {0.5, 0.99});
  }
  registry_.RegisterHistogram("net.medium.wait_ms",
                              &network_.medium().wait_histogram(),
                              {0.5, 0.99});
  controller_->Attach(this);
  for (const workload::ClassSpec& spec : classes_) {
    for (NodeId i = 0; i < config_.num_nodes; ++i) {
      simulator_.Spawn(WorkloadSource(i, spec.id));
    }
  }
  simulator_.Spawn(IntervalLoop());
  // Background scrubbers only exist when enabled, so a scrub-off run's
  // event sequence is untouched by this feature.
  if (config_.scrub_interval_ms > 0.0) {
    for (NodeId i = 0; i < config_.num_nodes; ++i) {
      simulator_.Spawn(ScrubLoop(i));
    }
  }
  fault_injector_.Start();
}

void ClusterSystem::HandleNodeCrash(NodeId node) {
  // Everything volatile on the node disappears at one instant in simulated
  // time: buffer contents, dedicated budgets, directory registrations and
  // heat bookkeeping. In-flight operations notice via the epoch counter and
  // fail; no hint traffic is emitted (a dead node cannot send).
  Node& n = *nodes_[node];
  // Corrupt frames die with the volatile buffer — their marks must go too,
  // or a future re-fetch of the same page would be falsely flagged.
  corrupt_wiped_by_crash_ += integrity_.ClearNodeFrames(node);
  n.node_cache().Clear();
  directory_.DropNode(node);
  n.ResetVolatileState();
  controller_->OnNodeCrash(node);
}

void ClusterSystem::HandleNodeRecover(NodeId node) {
  // The node rejoins with a cold cache and zero dedications (enforced at
  // crash time). Its health score re-anchors at the healthy baseline: every
  // penalty in the EWMA was a timeout against the *dead* machine, which says
  // nothing about the rebooted one — decaying gradually (the pre-fix
  // behavior) left the fresh node shunned by replica ranking for several
  // intervals after every reboot.
  ResetHealth(node);
  controller_->OnNodeRecover(node);
}

void ClusterSystem::HandlePartitionChange() {
  const bool partitioned = fault_injector_.Partitioned();
  network_.SetPartitionActive(partitioned);
  directory_.SetPartitionActive(partitioned);
  if (partitioned && !partitioned_now_) {
    ++partition_begins_;
  } else if (!partitioned && partitioned_now_) {
    ++partition_heals_;
    if (config_.injected_bug != InjectedBug::kSkipHealReconcile) {
      ReconcileAfterHeal();
    }
  }
  partitioned_now_ = partitioned;
  controller_->OnPartitionChange();
}

void ClusterSystem::ReconcileAfterHeal() {
  // Anti-entropy: every heat report that was lost across the cut is
  // re-delivered (state applied directly, traffic accounted — the
  // substitution-table idiom), so the directory's global heat converges to
  // what threshold dissemination would have maintained without the cut.
  for (auto& node : nodes_) {
    reconcile_hints_sent_ += node->FlushUnsyncedHints();
  }
  // Health penalties accumulated during the cut measured the partition, not
  // the peers: a healed replica must be re-rankable immediately.
  for (NodeId i = 0; i < config_.num_nodes; ++i) ResetHealth(i);
}

void ClusterSystem::HandleNodeDegrade(NodeId node) {
  const double factor = fault_injector_.SlowdownOf(node);
  nodes_[node]->cpu().SetSlowdown(factor);
  nodes_[node]->disk().SetSlowdown(factor);
  network_.SetNodeSlowdown(node, factor);
}

void ClusterSystem::HandleNodeRestore(NodeId node) {
  nodes_[node]->cpu().SetSlowdown(1.0);
  nodes_[node]->disk().SetSlowdown(1.0);
  network_.SetNodeSlowdown(node, 1.0);
  DecayHealth(node);
}

void ClusterSystem::RecordFetchLatency(NodeId node, double latency_ms) {
  const double a = config_.health_ewma_alpha;
  health_ewma_[node] = (1.0 - a) * health_ewma_[node] + a * latency_ms;
  directory_.SetNodeCost(node, health_ewma_[node]);
}

void ClusterSystem::RecordFetchTimeout(NodeId node, double waited_ms) {
  // The observation is censored — the fetch would have taken *at least*
  // `waited_ms` — so feed a pessimistic multiple of the larger of the wait
  // and the current score. Repeated timeouts therefore escalate the score
  // geometrically instead of plateauing at the deadline.
  RecordFetchLatency(node, 2.0 * std::max(waited_ms, health_ewma_[node]));
}

void ClusterSystem::DecayHealth(NodeId node) {
  const double baseline = cost_model_.remote_buffer_ms;
  health_ewma_[node] +=
      config_.health_recovery_decay * (baseline - health_ewma_[node]);
  directory_.SetNodeCost(node, health_ewma_[node]);
}

void ClusterSystem::ResetHealth(NodeId node) {
  health_ewma_[node] = cost_model_.remote_buffer_ms;
  directory_.SetNodeCost(node, health_ewma_[node]);
}

const workload::ClassSpec& ClusterSystem::spec(ClassId klass) const {
  for (const workload::ClassSpec& s : classes_) {
    if (s.id == klass) return s;
  }
  MEMGOAL_CHECK_MSG(false, "unknown class id");
  return classes_.front();
}

std::vector<ClassId> ClusterSystem::goal_class_ids() const {
  std::vector<ClassId> ids;
  for (const workload::ClassSpec& s : classes_) {
    if (s.goal_rt_ms.has_value()) ids.push_back(s.id);
  }
  return ids;
}

void ClusterSystem::SetGoal(ClassId klass, double goal_rt_ms) {
  MEMGOAL_CHECK(goal_rt_ms > 0.0);
  for (workload::ClassSpec& s : classes_) {
    if (s.id == klass) {
      MEMGOAL_CHECK_MSG(s.goal_rt_ms.has_value(),
                        "cannot set a goal on the no-goal class");
      s.goal_rt_ms = goal_rt_ms;
      controller_->OnGoalChanged(klass);
      return;
    }
  }
  MEMGOAL_CHECK_MSG(false, "unknown class id");
}

void ClusterSystem::SetInterarrival(ClassId klass,
                                    double mean_interarrival_ms) {
  MEMGOAL_CHECK(mean_interarrival_ms > 0.0);
  for (workload::ClassSpec& s : classes_) {
    if (s.id == klass) {
      // Workload sources re-read the spec before every arrival, so the new
      // rate takes effect immediately.
      s.mean_interarrival_ms = mean_interarrival_ms;
      return;
    }
  }
  MEMGOAL_CHECK_MSG(false, "unknown class id");
}

void ClusterSystem::SetAccessesPerOp(ClassId klass, int accesses_per_op) {
  MEMGOAL_CHECK(accesses_per_op > 0);
  for (workload::ClassSpec& s : classes_) {
    if (s.id == klass) {
      s.accesses_per_op = accesses_per_op;
      return;
    }
  }
  MEMGOAL_CHECK_MSG(false, "unknown class id");
}

const AccessCounters& ClusterSystem::counters(ClassId klass) const {
  auto it = counters_.find(klass);
  MEMGOAL_CHECK(it != counters_.end());
  return it->second;
}

void ClusterSystem::CountAccess(ClassId klass, StorageLevel level) {
  counters_[klass].by_level[static_cast<int>(level)]++;
}

void ClusterSystem::CountFetchFallback(ClassId klass) {
  counters_[klass].fetch_fallbacks++;
}

ClusterSystem::IntervalAccumulator& ClusterSystem::Accumulator(ClassId klass,
                                                               NodeId node) {
  return accumulators_[ClassNodeKey(klass, node)];
}

const ClusterSystem::Observation& ClusterSystem::observation(
    ClassId klass, NodeId node) const {
  static const Observation kEmpty;
  const Observation* obs = observations_.Find(ClassNodeKey(klass, node));
  return obs == nullptr ? kEmpty : *obs;
}

uint64_t ClusterSystem::ApplyAllocation(ClassId klass, NodeId node,
                                        uint64_t bytes) {
  // A dead node grants nothing; its budgets are re-established after
  // recovery by the controller's re-warm-up.
  if (!fault_injector_.IsUp(node)) return 0;
  std::vector<PageId> dropped;
  const uint64_t granted =
      nodes_[node]->node_cache().SetDedicatedBytes(klass, bytes, &dropped);
  nodes_[node]->HandleDrops(dropped);
  return granted;
}

ClusterSystem::GrantOutcome ClusterSystem::ApplyAllocationFenced(
    ClassId klass, NodeId node, uint64_t bytes, uint64_t epoch) {
  // The fence persists across crashes: the agent's highest-seen epoch is
  // modeled as stable storage, so a rebooted node cannot be tricked into
  // accepting a deposed coordinator's grant it had already fenced out.
  uint64_t& fence = grant_epochs_[{klass, node}];
  if (epoch < fence) {
    if (config_.injected_bug == InjectedBug::kNoEpochFence) {
      ++stale_grants_applied_;
      return {ApplyAllocation(klass, node, bytes), false};
    }
    ++grants_rejected_stale_epoch_;
    return {DedicatedBytes(klass, node), true};
  }
  fence = epoch;
  return {ApplyAllocation(klass, node, bytes), false};
}

void ClusterSystem::AnnounceEpoch(ClassId klass, NodeId node, uint64_t epoch) {
  uint64_t& fence = grant_epochs_[{klass, node}];
  fence = std::max(fence, epoch);
}

uint64_t ClusterSystem::DedicatedBytes(ClassId klass, NodeId node) const {
  return nodes_[node]->node_cache().dedicated_bytes(klass);
}

uint64_t ClusterSystem::TotalDedicatedBytes(ClassId klass) const {
  uint64_t total = 0;
  for (const auto& node : nodes_) {
    total += node->node_cache().dedicated_bytes(klass);
  }
  return total;
}

uint64_t ClusterSystem::AvailableFor(ClassId klass, NodeId node) const {
  return nodes_[node]->node_cache().AvailableForClass(klass);
}

int ClusterSystem::InvalidateCopies(PageId page, NodeId except_node) {
  int dropped = 0;
  for (NodeId i = 0; i < config_.num_nodes; ++i) {
    if (i == except_node) continue;
    if (!directory_.IsCachedAt(i, page)) continue;
    nodes_[i]->node_cache().Drop(page);
    if (integrity_.ClearFrame(i, page)) ++corrupt_evicted_;
    directory_.OnPageDropped(i, page);
    simulator_.Spawn(network_.Transfer(database_.HomeOf(page), i,
                                       config_.control_msg_bytes,
                                       net::TrafficClass::kControl));
    ++dropped;
  }
  return dropped;
}

void ClusterSystem::HandleCorruption(NodeId node, uint64_t draw) {
  // Everything about the strike is decided here, from the injected draw:
  // which surface it hits, which page, and whether the flaw is latent. The
  // access paths make no RNG draws of their own, so enabling corruption at
  // rate zero leaves every other schedule bit-identical.
  const double latent_roll =
      static_cast<double>(common::Mix64(draw ^ 0x1a7e57ull) >> 11) * 0x1.0p-53;
  const storage::Flaw flaw = latent_roll < config_.corrupt_latent_fraction
                                 ? storage::Flaw::kLatent
                                 : storage::Flaw::kDetectable;
  // Bit rot prefers what exists: if the drawn page is resident in the
  // struck node's buffer, the frame takes the hit; otherwise the strike
  // falls on the node's disk (a page it homes).
  const PageId frame_page = static_cast<PageId>(
      common::Mix64(draw ^ 0x9a6eull) % database_.num_pages());
  if (config_.corrupt_surface != CorruptionSurface::kDisk &&
      nodes_[node]->node_cache().IsCached(frame_page)) {
    if (integrity_.MarkFrame(node, frame_page, flaw)) {
      ++corrupt_injected_frames_;
    } else {
      ++corrupt_fizzled_;  // struck an already-flawed frame
    }
    return;
  }
  if (config_.corrupt_surface == CorruptionSurface::kFrames) {
    ++corrupt_fizzled_;  // frames-only surface and the page is not resident
    return;
  }
  const uint32_t homed = database_.PagesHomedAt(node);
  if (homed == 0) {
    ++corrupt_fizzled_;
    return;
  }
  const PageId disk_page = static_cast<PageId>(
      node + (common::Mix64(draw ^ 0xd15cull) % homed) * config_.num_nodes);
  if (integrity_.MarkDisk(disk_page, flaw)) {
    ++corrupt_injected_disk_;
  } else {
    ++corrupt_fizzled_;
  }
}

void ClusterSystem::QuarantineFrame(NodeId node, PageId page) {
  ++quarantine_decisions_;
  if (config_.injected_bug == InjectedBug::kServeQuarantined) {
    // Bug: the pool ignores the quarantine order — the frame (and its
    // mark) stay, so the decision/executed ledger stops balancing.
    return;
  }
  if (!nodes_[node]->node_cache().Quarantine(page)) return;
  integrity_.ClearFrame(node, page);
  directory_.OnPageDropped(node, page);
  // The home learns of the drop the same way eviction hints travel.
  const NodeId home = database_.HomeOf(page);
  if (home != node) {
    simulator_.Spawn(network_.Transfer(node, home, config_.hint_msg_bytes,
                                       net::TrafficClass::kHeatHint));
  }
}

void ClusterSystem::ClearEvictedFrameMarks(NodeId node,
                                           std::span<const PageId> dropped) {
  if (!integrity_.any_marked()) return;
  for (const PageId page : dropped) {
    if (integrity_.ClearFrame(node, page)) ++corrupt_evicted_;
  }
}

sim::Task<storage::Flaw> ClusterSystem::VerifyDiskRead(PageId page) {
  if (!integrity_.any_marked()) co_return storage::Flaw::kNone;
  const storage::Flaw flaw = integrity_.DiskFlaw(page);
  if (flaw != storage::Flaw::kDetectable) {
    co_return flaw;  // clean, or latent (sails past the checksum)
  }
  if (config_.injected_bug == InjectedBug::kSkipVerify) {
    co_return flaw;  // bug: the corrupt copy is consumed as-is
  }
  ++corrupt_detected_;
  ++disk_detections_;
  ++repair_ladders_open_;
  // Repair ladder: the cheapest intact cached replica rewrites the disk
  // copy (accounted page transfer to the home over the storage bus, then a
  // disk write). Latent replicas pass the intact predicate by construction:
  // a repair sourced from one faithfully writes latently bad bits back.
  const NodeId home = database_.HomeOf(page);
  net::PageDirectory::CopyList sources;
  directory_.RankedIntactCopies(page, home, &sources);
  for (const NodeId source : sources) {
    if (!NodeUp(source)) continue;
    const storage::Flaw source_flaw = integrity_.FrameFlaw(source, page);
    const bool arrived = co_await network_.Transfer(
        source, home, config_.page_bytes + config_.page_header_bytes,
        net::TrafficClass::kPage, /*via_storage_bus=*/true);
    if (!arrived) continue;  // lost mid-repair: try the next source
    co_await nodes_[home]->disk().WritePage();
    integrity_.ClearDisk(page);
    if (source_flaw == storage::Flaw::kLatent) {
      integrity_.MarkDisk(page, storage::Flaw::kLatent);
      ++latent_propagated_;
    }
    ++repairs_replica_;
    --repair_ladders_open_;
    co_return source_flaw;  // the reader gets the repaired content
  }
  // Ladder exhausted: no intact cached copy survives and the disk copy is
  // bad — the page is lost. Count it and re-initialize the copy so the
  // database stays navigable.
  --repair_ladders_open_;
  if (config_.injected_bug == InjectedBug::kLostPageLeak) {
    // Bug: neither counted nor re-initialized; the detection ledger leaks.
    co_return storage::Flaw::kNone;
  }
  integrity_.ClearDisk(page);
  ++pages_lost_;
  co_return storage::Flaw::kNone;
}

sim::Task<void> ClusterSystem::ScrubLoop(NodeId node) {
  // Background scrubber: strictly lower priority than workload I/O — it
  // reads one homed page per tick and only when the node's disk is idle at
  // the tick instant, so it consumes idle disk bandwidth only.
  const uint32_t homed = database_.PagesHomedAt(node);
  if (homed == 0) co_return;
  uint32_t cursor = 0;
  while (true) {
    co_await simulator_.Delay(config_.scrub_interval_ms);
    ++scrub_ticks_;  // unconditional: the audit's liveness signal
    if (!NodeUp(node)) continue;  // a dead node scrubs nothing
    storage::Disk& disk = nodes_[node]->disk();
    if (disk.resource().in_use() > 0 || disk.resource().queue_length() > 0) {
      ++scrub_skipped_busy_;
      continue;
    }
    const PageId page =
        static_cast<PageId>(node + cursor * config_.num_nodes);
    cursor = (cursor + 1) % homed;
    co_await disk.ReadPage();
    ++pages_scrubbed_;
    co_await VerifyDiskRead(page);
  }
}

uint64_t ClusterSystem::frames_quarantined() const {
  uint64_t total = 0;
  for (const auto& node : nodes_) total += node->node_cache().quarantined();
  return total;
}

std::optional<double> ClusterSystem::WeightedRt(ClassId klass) const {
  double weight_sum = 0.0;
  double weighted = 0.0;
  for (NodeId i = 0; i < config_.num_nodes; ++i) {
    const Observation& obs = observation(klass, i);
    if (!obs.has_rt || obs.arrival_rate_per_ms <= 0.0) continue;
    weighted += obs.arrival_rate_per_ms * obs.mean_rt_ms;
    weight_sum += obs.arrival_rate_per_ms;
  }
  if (weight_sum <= 0.0) return std::nullopt;
  return weighted / weight_sum;
}

sim::Task<void> ClusterSystem::WorkloadSource(NodeId node, ClassId klass) {
  common::Rng rng = ForkRng();
  const workload::ClassSpec& class_spec = spec(klass);
  const workload::PageSelector& selector =
      class_selectors_.try_emplace(klass, class_spec).first->second;
  while (true) {
    // The spec is re-read every iteration so run-time changes
    // (SetInterarrival, SetAccessesPerOp) take effect immediately.
    const double interarrival =
        class_spec.per_node_interarrival_ms.empty()
            ? class_spec.mean_interarrival_ms
            : class_spec.per_node_interarrival_ms[node];
    co_await simulator_.Delay(rng.Exponential(interarrival));
    // A dead node issues no work: the source keeps drawing interarrival
    // times (so the stream stays deterministic) but stays silent until the
    // node recovers.
    if (!fault_injector_.IsUp(node)) continue;
    Accumulator(klass, node).arrived++;
    common::InlineVector<PageId, 8> pages(
        static_cast<size_t>(class_spec.accesses_per_op));
    for (PageId& page : pages) page = selector.Sample(&rng);
    simulator_.Spawn(RunOperation(node, klass, std::move(pages)));
  }
}

sim::Task<void> ClusterSystem::RunOperation(
    NodeId node, ClassId klass, common::InlineVector<PageId, 8> pages) {
  const sim::SimTime start = simulator_.Now();
  const uint64_t epoch = fault_injector_.epoch(node);
  obs::AttainmentTracker* const attainment = attainment_;
  const bool budgeting = attainment != nullptr && attainment->enabled();
  obs::RequestBudget budget;
  for (PageId page : pages) {
    co_await nodes_[node]->AccessPage(klass, page,
                                      budgeting ? &budget : nullptr);
    if (fault_injector_.epoch(node) != epoch ||
        !fault_injector_.IsUp(node)) {
      // The node crashed under this operation: it fails (neither retried
      // nor counted completed).
      Accumulator(klass, node).failed++;
      co_return;
    }
  }
  IntervalAccumulator& acc = Accumulator(klass, node);
  acc.completed++;
  const double rt = simulator_.Now() - start;
  acc.rt_sum += rt;
  if (budgeting) {
    // Whatever no phase claimed (event-wait scheduling slack, repair-ladder
    // work under a verify) lands in the residual, so the decomposition sums
    // to the measured response time exactly.
    budget.SetResidual(rt);
    attainment->RecordRequest(klass, node, rt, budget);
  }
}

sim::Task<void> ClusterSystem::IntervalLoop() {
  while (true) {
    co_await simulator_.Delay(config_.observation_interval_ms);
    const int index = intervals_completed_++;

    // Roll the accumulators into per-(class, node) observations.
    for (const workload::ClassSpec& class_spec : classes_) {
      for (NodeId i = 0; i < config_.num_nodes; ++i) {
        IntervalAccumulator& acc = Accumulator(class_spec.id, i);
        Observation& obs = observations_[ClassNodeKey(class_spec.id, i)];
        obs.arrived = acc.arrived;
        obs.completed = acc.completed;
        obs.failed = acc.failed;
        obs.arrival_rate_per_ms =
            static_cast<double>(acc.arrived) / config_.observation_interval_ms;
        obs.has_rt = acc.completed > 0;
        obs.mean_rt_ms =
            acc.completed > 0 ? acc.rt_sum / static_cast<double>(acc.completed)
                              : 0.0;
        acc = IntervalAccumulator{};
      }
    }

    IntervalRecord record;
    record.index = index;
    record.end_time_ms = simulator_.Now();
    record.nodes_up = fault_injector_.nodes_up();
    record.lp = controller_->LpOutcomes();
    for (const workload::ClassSpec& class_spec : classes_) {
      ClassIntervalMetrics m;
      m.klass = class_spec.id;
      m.observed_rt_ms = WeightedRt(class_spec.id).value_or(0.0);
      m.goal_rt_ms = class_spec.goal_rt_ms.value_or(0.0);
      m.tolerance_ms = controller_->ToleranceFor(class_spec.id);
      m.dedicated_bytes = TotalDedicatedBytes(class_spec.id);
      for (NodeId i = 0; i < config_.num_nodes; ++i) {
        const Observation& obs = observation(class_spec.id, i);
        m.ops_completed += obs.completed;
        m.ops_arrived += obs.arrived;
        m.ops_failed += obs.failed;
      }
      m.satisfied = class_spec.goal_rt_ms.has_value() &&
                    m.ops_completed > 0 &&
                    m.observed_rt_ms <= m.goal_rt_ms + m.tolerance_ms;
      record.classes.push_back(m);
    }
    metrics_.Append(record);

    // Roll the attainment tracker's interval before the controller's
    // coordinator check fires (it runs coordinator_check_delay_ms later and
    // joins miss cards against this interval's finalized budget rows).
    if (attainment_ != nullptr && attainment_->enabled()) {
      std::vector<obs::AttainmentTracker::ClassSample> samples;
      samples.reserve(record.classes.size());
      for (const ClassIntervalMetrics& m : record.classes) {
        obs::AttainmentTracker::ClassSample sample;
        sample.klass = m.klass;
        sample.has_goal = spec(m.klass).goal_rt_ms.has_value();
        sample.goal_rt_ms = m.goal_rt_ms;
        sample.tolerance_ms = m.tolerance_ms;
        sample.observed_rt_ms = m.observed_rt_ms;
        sample.has_observed_rt = WeightedRt(m.klass).has_value();
        sample.satisfied = m.satisfied;
        sample.ops_completed = m.ops_completed;
        sample.dedicated_bytes = m.dedicated_bytes;
        samples.push_back(sample);
      }
      attainment_->OnIntervalEnd(index, simulator_.Now(), samples);
    }

    // New interval, fresh hint fan-out budget.
    for (auto& node : nodes_) node->hint_sends_this_interval_ = 0;

    // Bounded-memory sweep of the LRU-K heat histories: records of
    // non-resident pages whose backward-K time fell behind the horizon are
    // dropped (their heat is indistinguishable from never-seen by now).
    if (config_.heat_horizon_intervals > 0.0) {
      const sim::SimTime horizon =
          simulator_.Now() -
          config_.heat_horizon_intervals * config_.observation_interval_ms;
      if (horizon > 0.0) {
        for (auto& node : nodes_) node->SweepHeatHistory(horizon);
      }
    }

    // The user callback runs before the controller so that goal changes
    // made in reaction to this interval (e.g. the experiment protocol of
    // §7.1) are visible to the controller's check of the same interval.
    if (interval_callback_) interval_callback_(metrics_.back());
    controller_->OnIntervalEnd(index);
    // Audit after the controller acted, before the snapshot, so the
    // snapshot carries this interval's audit counters.
    if (auditor_ != nullptr) auditor_->RunChecks(simulator_.Now());
    PublishRegistrySnapshot(index);
  }
}

void ClusterSystem::PublishRegistrySnapshot(int interval_index) {
  char name[64];
  for (const auto& [klass, counters] : counters_) {
    for (int level = 0; level < 4; ++level) {
      std::snprintf(name, sizeof(name), "class%u.access.%s",
                    static_cast<unsigned>(klass),
                    StorageLevelName(static_cast<StorageLevel>(level)));
      registry_.GetCounter(name)->Set(counters.by_level[level]);
    }
    std::snprintf(name, sizeof(name), "class%u.fetch_fallbacks",
                  static_cast<unsigned>(klass));
    registry_.GetCounter(name)->Set(counters.fetch_fallbacks);
  }
  for (const workload::ClassSpec& class_spec : classes_) {
    std::snprintf(name, sizeof(name), "class%u.rt.observed_ms",
                  static_cast<unsigned>(class_spec.id));
    registry_.GetGauge(name)->Set(WeightedRt(class_spec.id).value_or(0.0));
    if (class_spec.goal_rt_ms.has_value()) {
      std::snprintf(name, sizeof(name), "class%u.rt.goal_ms",
                    static_cast<unsigned>(class_spec.id));
      registry_.GetGauge(name)->Set(*class_spec.goal_rt_ms);
      std::snprintf(name, sizeof(name), "class%u.dedicated_bytes",
                    static_cast<unsigned>(class_spec.id));
      registry_.GetGauge(name)->Set(
          static_cast<double>(TotalDedicatedBytes(class_spec.id)));
    }
  }
  for (int tc = 0; tc < net::kNumTrafficClasses; ++tc) {
    const auto traffic_class = static_cast<net::TrafficClass>(tc);
    const char* tc_name = net::TrafficClassName(traffic_class);
    std::snprintf(name, sizeof(name), "net.bytes.%s", tc_name);
    registry_.GetCounter(name)->Set(network_.bytes_sent(traffic_class));
    std::snprintf(name, sizeof(name), "net.msgs.%s", tc_name);
    registry_.GetCounter(name)->Set(network_.messages_sent(traffic_class));
    std::snprintf(name, sizeof(name), "net.dropped.%s", tc_name);
    registry_.GetCounter(name)->Set(network_.messages_dropped(traffic_class));
    std::snprintf(name, sizeof(name), "net.partition_dropped.%s", tc_name);
    registry_.GetCounter(name)->Set(
        network_.messages_partition_dropped(traffic_class));
  }
  registry_.GetGauge("cluster.nodes_up")
      ->Set(static_cast<double>(fault_injector_.nodes_up()));
  registry_.GetGauge("cluster.partitioned")
      ->Set(fault_injector_.Partitioned() ? 1.0 : 0.0);
  registry_.GetCounter("cluster.partition_begins")->Set(partition_begins_);
  registry_.GetCounter("cluster.partition_heals")->Set(partition_heals_);
  registry_.GetCounter("cluster.stale_grants_rejected")
      ->Set(grants_rejected_stale_epoch_);
  registry_.GetCounter("cluster.reconcile_hints_sent")
      ->Set(reconcile_hints_sent_);
  registry_.GetCounter("cluster.crashes_suppressed")
      ->Set(fault_injector_.stats().suppressed);
  registry_.GetCounter("cluster.corrupt_injected")
      ->Set(fault_injector_.stats().corruptions);
  registry_.GetCounter("cluster.corrupt_detected")->Set(corrupt_detected_);
  registry_.GetCounter("cluster.corrupt_served")->Set(corrupt_served_);
  registry_.GetCounter("cluster.latent_served")->Set(latent_served_);
  registry_.GetCounter("cluster.quarantine_decisions")
      ->Set(quarantine_decisions_);
  registry_.GetCounter("cluster.frames_quarantined")
      ->Set(frames_quarantined());
  registry_.GetCounter("cluster.repairs_replica")->Set(repairs_replica_);
  registry_.GetCounter("cluster.pages_lost")->Set(pages_lost_);
  registry_.GetCounter("cluster.pages_scrubbed")->Set(pages_scrubbed_);
  uint64_t hint_budget_skips = 0;
  for (const auto& node : nodes_) {
    hint_budget_skips += node->hint_budget_skips_;
  }
  registry_.GetCounter("cluster.hint_budget_skips")->Set(hint_budget_skips);
  registry_.GetCounter("cluster.scrub_skipped_busy")
      ->Set(scrub_skipped_busy_);
  if (auditor_ != nullptr) {
    registry_.GetCounter("audit.checks_run")->Set(auditor_->checks_run());
    registry_.GetCounter("audit.violations")
        ->Set(auditor_->violations_found());
  }
  for (NodeId i = 0; i < config_.num_nodes; ++i) {
    std::snprintf(name, sizeof(name), "node%u.heat.tracked_pages", i);
    registry_.GetGauge(name)->Set(
        static_cast<double>(nodes_[i]->HeatHistorySize()));
  }
  if (attainment_ != nullptr) attainment_->PublishTo(&registry_);
  controller_->PublishMetrics(&registry_);
  registry_.TakeSnapshot(interval_index, simulator_.Now());
}

void ClusterSystem::EnableAuditor(sim::InvariantAuditor* auditor) {
  auditor_ = auditor;
  if (auditor_ != nullptr) RegisterSystemAudits(auditor_, this);
}

void ClusterSystem::RunIntervals(int count) {
  MEMGOAL_CHECK(started_);
  MEMGOAL_CHECK(count >= 0);
  const int target = intervals_completed_ + count;
  const sim::SimTime target_time =
      static_cast<double>(target) * config_.observation_interval_ms;
  simulator_.RunUntil(target_time);
  MEMGOAL_CHECK(intervals_completed_ == target);
}

}  // namespace memgoal::core
