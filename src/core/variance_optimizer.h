#ifndef MEMGOAL_CORE_VARIANCE_OPTIMIZER_H_
#define MEMGOAL_CORE_VARIANCE_OPTIMIZER_H_

#include <vector>

#include "core/measure.h"
#include "core/optimizer.h"
#include "la/matrix.h"

namespace memgoal::core {

/// Inputs of the variance-aware partitioning problem — the paper's §8
/// future-work objective: "a given mean response time goal together with a
/// maximal coefficient of variation among the different nodes ...
/// minimizing the variation".
struct VarianceOptimizerInput {
  /// Per-node response-time planes of the goal class (equation 3 fits).
  std::vector<MeasureStore::NodePlane> node_planes;
  /// Aggregate goal-class plane (equation 4 fit) for the goal constraint.
  la::Vector mean_grad;
  double mean_intercept = 0.0;
  /// Response-time goal (ms).
  double goal_rt = 0.0;
  /// Per-node capacity bounds (bytes), equation 6.
  la::Vector upper_bounds;
  /// Which simplex backend solves the LPs.
  la::LpBackend lp_backend = la::LpBackend::kRevised;
};

struct VarianceOptimizerOutput {
  OptimizerMode mode = OptimizerMode::kBestEffort;
  la::Vector allocation;
  /// Plane-predicted per-node response times at `allocation`.
  la::Vector predicted_rt_per_node;
  /// Predicted mean and mean absolute deviation across nodes.
  double predicted_mean_rt = 0.0;
  double predicted_mad_rt = 0.0;
  /// The relaxed goal actually used (mode == kGoalRelaxed only).
  double relaxed_goal_rt = 0.0;
  /// Simplex outcome counts of this solve's fallback chain.
  LpOutcomeStats lp_stats;
};

/// Solves
///     min  sum_i t_i                              (L1 dispersion)
///     s.t. t_i >= +(RT_i(x) - mu(x))              for every node i
///          t_i >= -(RT_i(x) - mu(x))
///          mean-plane RT(x) = goal                (inequality fallback)
///          0 <= x_i <= U_i,  t_i >= 0
/// where RT_i(x) are the per-node planes and mu(x) their unweighted mean —
/// all linear in x, so the whole problem stays a linear program (mean
/// absolute deviation replaces the coefficient of variation; for a fixed
/// mean the two rank allocations identically to first order).
///
/// Falls back exactly like SolvePartitioning: equality, then inequality,
/// then the relaxed-goal ladder, then the §3 monotonicity saturation.
VarianceOptimizerOutput SolveVariancePartitioning(
    const VarianceOptimizerInput& input);

}  // namespace memgoal::core

#endif  // MEMGOAL_CORE_VARIANCE_OPTIMIZER_H_
