#ifndef MEMGOAL_CORE_SYSTEM_H_
#define MEMGOAL_CORE_SYSTEM_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "cache/cost_model.h"
#include "common/flat_hash_map.h"
#include "common/inline_vector.h"
#include "cache/heat.h"
#include "cache/node_cache.h"
#include "cache/replacement.h"
#include "common/rng.h"
#include "core/metrics.h"
#include "la/simplex.h"
#include "net/directory.h"
#include "net/network.h"
#include "obs/attainment.h"
#include "obs/decision_log.h"
#include "obs/latency_budget.h"
#include "obs/registry.h"
#include "obs/trace.h"
#include "sim/fault_injector.h"
#include "sim/invariant_auditor.h"
#include "sim/resource.h"
#include "sim/simulator.h"
#include "sim/sync.h"
#include "sim/task.h"
#include "storage/database.h"
#include "storage/disk.h"
#include "storage/integrity.h"
#include "storage/types.h"
#include "workload/page_selector.h"
#include "workload/page_selector.h"
#include "workload/spec.h"

namespace memgoal::core {

class ClusterSystem;

/// Objective of the partitioning optimization (phase d).
enum class PartitioningObjective {
  /// The paper's §4 formulation: minimize the predicted no-goal response
  /// time subject to the goal constraint.
  kMinimizeNoGoalRt,
  /// The paper's §8 future-work objective: minimize the dispersion of the
  /// goal class's per-node response times subject to the goal constraint.
  kMinimizeNodeVariance,
};

/// Deliberately planted correctness bugs, used to validate that the
/// invariant auditor and the chaos fuzzer actually catch regressions (a
/// detector nobody has ever seen fire is not evidence of anything). Only
/// tests and tools/chaos_fuzz set anything but kNone.
enum class InjectedBug {
  kNone,
  /// Skip heal-time hint reconciliation: heat reports lost across a
  /// partition are never re-sent, leaving the directory's global heat stale
  /// after the cluster is whole again.
  kSkipHealReconcile,
  /// Apply allocation grants carrying a stale epoch instead of rejecting
  /// them: a deposed coordinator's in-flight grants overwrite the new
  /// lease's decisions.
  kNoEpochFence,
  /// Leak directory entries on pool shrink: dropped pages stay registered
  /// as cached copies, so remote fetches chase ghosts.
  kLeakDirectoryEntry,
  /// Skip verify-on-read everywhere: detectably corrupt frames and disk
  /// copies are served as if intact. The no-corrupt-page-served audit
  /// counts every such serve.
  kSkipVerify,
  /// Count the quarantine decision but leave the condemned frame resident:
  /// the buffer pool keeps offering (and re-detecting) a frame it was told
  /// to evict, so quarantine accounting stops balancing.
  kServeQuarantined,
  /// Drop the terminal rung of the repair ladder: a page with no intact
  /// source is neither counted lost nor re-initialized, so detections
  /// never reconcile against repairs + losses.
  kLostPageLeak,
};

/// Stored copies that injected corruption events may hit.
enum class CorruptionSurface {
  /// Permanent disk-resident copies only.
  kDisk,
  /// Cached buffer frames only (a draw landing on a page the node does not
  /// cache fizzles).
  kFrames,
  /// Frames when the drawn page is resident at the struck node, disk
  /// copies homed there otherwise.
  kAll,
};

/// All tunables of the simulated NOW and of the partitioning algorithm.
/// Defaults reproduce the paper's base environment (§7.1): 3 nodes at
/// 100 MIPS, 100 Mbit/s network, 2 MB cache and one SCSI disk per node,
/// 2000 pages of 4 KB, 5000 ms observation intervals.
struct SystemConfig {
  // -- Topology and hardware ----------------------------------------------
  uint32_t num_nodes = 3;
  uint64_t cache_bytes_per_node = 2ull << 20;  // 2 MB
  uint32_t page_bytes = 4096;
  uint32_t db_pages = 2000;
  storage::Disk::Params disk;
  net::Network::Params network;

  // -- Fault model ----------------------------------------------------------
  /// Node crash/recovery schedule, stochastic fault process and gray
  /// degradation episodes. The default (empty scripts, mttf/mttd 0) injects
  /// no faults.
  sim::FaultInjector::Params faults;
  /// Per-request deadline (ms) of a remote page fetch: if the page has not
  /// arrived within this budget, the requester hedges to the next-best
  /// replica, and after the hedge's deadline falls back to the disk path.
  /// Doubles as the failure-detection delay — a dead peer simply never
  /// answers, so the deadline expiring *is* the detection.
  double crash_detect_timeout_ms = 2.0;
  /// Exponential backoff inserted before the disk fallback after failed
  /// fetch attempts: min(base · 2^(attempts-1), max) ms. Gives a slow peer
  /// that answered just after the deadline a moment to stop thrashing the
  /// requester, without stalling the crash case.
  double fetch_backoff_base_ms = 0.5;
  double fetch_backoff_max_ms = 8.0;
  /// EWMA smoothing of the per-node fetch-latency health score used for
  /// replica ranking and hedging (higher alpha = faster reaction).
  double health_ewma_alpha = 0.2;
  /// Fraction of the gap back to the cost-model baseline the health score
  /// recovers per restore/recover event (forgiveness after an episode).
  double health_recovery_decay = 0.25;

  // -- Integrity model ------------------------------------------------------
  /// Fraction of injected corruptions that are *latent* — past the
  /// checksum, so verify-on-read serves them unknowingly. The outcome is
  /// decided per corruption at injection time from the injected draw,
  /// which keeps the access path free of RNG draws (a zero-rate run is
  /// bit-identical to one with the integrity machinery absent).
  double corrupt_latent_fraction = 0.0;
  /// Which stored copies injected corruption may hit.
  CorruptionSurface corrupt_surface = CorruptionSurface::kAll;
  /// Per-node background scrubber period (ms); 0 disables scrubbing. Each
  /// tick verifies one disk-resident page — but only when the node's disk
  /// is idle, making the scrubber a strictly lower-priority consumer of
  /// disk bandwidth than the workload's own I/O.
  double scrub_interval_ms = 0.0;

  // -- CPU model (100 MIPS nodes; costs in instructions) -------------------
  double cpu_mips = 100.0;
  double instr_buffer_access = 3000.0;
  double instr_io_setup = 5000.0;

  // -- Feedback loop (§5) ---------------------------------------------------
  double observation_interval_ms = 5000.0;
  /// Agents report only when a value moved by more than this relative
  /// change ("significant change", §5a).
  double report_change_threshold = 0.05;
  /// Tolerance delta = max(rel_floor * goal, z * stderr) (§5c, method of
  /// [5]); z = 2.576 is the 99% normal critical value.
  double tolerance_rel_floor = 0.05;
  double tolerance_z = 2.576;
  /// Warm-up heuristic (§5b): first allocation takes this fraction of the
  /// per-node free memory; subsequent warm-up steps add a perturbation of
  /// `warmup_perturbation` * SIZE_i on one rotating node to force affine
  /// independence of the measure points.
  double warmup_fraction = 0.25;
  double warmup_perturbation = 0.125;
  /// Delay between the agents' interval rollup and the coordinator check,
  /// covering report message flight time (ms).
  double coordinator_check_delay_ms = 1.0;
  /// Damping of the feedback loop: one optimization step grows a node's
  /// dedicated budget by at most `max_step_fraction` of the node's cache
  /// and releases at most `release_step_fraction`. Without damping, a fit
  /// polluted by post-reallocation cache-refill transients can swing the
  /// partitioning wall to wall and never settle. The asymmetry is
  /// deliberate: growing protects an endangered service-level goal, while
  /// releasing merely helps the no-goal class, and the true response curve
  /// is convex so linear-fit release steps systematically overshoot.
  double max_step_fraction = 0.35;
  double release_step_fraction = 0.10;
  /// Optimization objective used by the goal-oriented controller.
  PartitioningObjective objective = PartitioningObjective::kMinimizeNoGoalRt;
  /// Simplex backend for the partitioning LPs. kDense reproduces the
  /// original full-tableau solver for differential testing; the revised
  /// backend scales to hundreds of nodes and warm-starts between intervals.
  la::LpBackend lp_backend = la::LpBackend::kRevised;

  // -- Replacement (§6) -----------------------------------------------------
  cache::PolicyKind policy = cache::PolicyKind::kCostBased;
  int lru_k = 2;
  /// A node re-reports a page's heat to its home when the accumulated local
  /// heat changed by more than this relative factor (threshold-based
  /// dissemination).
  double hint_heat_threshold = 0.2;
  /// Maximum *remote* heat-hint sends per node per observation interval;
  /// 0 means unlimited. Over-budget hints are skipped without updating the
  /// node's last-reported heat, so the threshold filter naturally re-offers
  /// them next interval — at 256 nodes this bounds directory fan-out
  /// instead of letting hint traffic grow with the page population.
  uint32_t hint_fanout_budget = 0;
  /// Heat-history retention horizon in observation intervals: once per
  /// interval each node drops LRU-K records of non-resident pages whose
  /// backward-K time is older than `heat_horizon_intervals` intervals, so
  /// the trackers stay bounded under scan workloads instead of keeping a
  /// K-slot record for every page ever touched. 0 disables the sweep. The
  /// default is deliberately long: pages that old carry near-zero heat, so
  /// pruning them bounds memory without perturbing victim selection (short
  /// horizons measurably flatten the memory/response-time curve at low
  /// access skew).
  double heat_horizon_intervals = 64.0;

  // -- Message sizes (bytes) ------------------------------------------------
  uint32_t control_msg_bytes = 64;
  uint32_t page_header_bytes = 64;
  uint32_t report_msg_bytes = 48;
  uint32_t alloc_msg_bytes = 32;
  uint32_t ack_msg_bytes = 32;
  uint32_t hint_msg_bytes = 32;

  uint64_t seed = 1;

  /// Event-queue implementation for the simulator. kLegacyHeap reproduces
  /// the pre-calendar-queue binary heap for differential testing; both
  /// backends pop in identical (time, seq) order, so runs are bit-equal
  /// either way.
  sim::QueueBackend queue_backend = sim::QueueBackend::kCalendar;

  /// See InjectedBug; kNone outside auditor/fuzzer validation.
  InjectedBug injected_bug = InjectedBug::kNone;

  /// CPU time (ms) for the given instruction count at `cpu_mips`.
  double CpuMs(double instructions) const {
    return instructions / (cpu_mips * 1e3);
  }
};

/// Partitioning policy plugged into the system. The default is the paper's
/// distributed goal-oriented controller (GoalOrientedController); the
/// baselines in src/baseline implement the same interface.
class Controller {
 public:
  virtual ~Controller() = default;

  /// Called once before the simulation starts.
  virtual void Attach(ClusterSystem* system) = 0;

  /// Called at each observation-interval boundary, after the system rolled
  /// up per-(class, node) statistics (accessible via
  /// ClusterSystem::observation).
  virtual void OnIntervalEnd(int interval_index) = 0;

  /// Called when a class's response-time goal changes.
  virtual void OnGoalChanged(ClassId /*klass*/) {}

  /// Called synchronously at the instant `node` crashes (after the system
  /// wiped the node's cache and directory state). Controllers drop the dead
  /// node's measurements and shrink their optimization to the live nodes;
  /// the default ignores faults.
  virtual void OnNodeCrash(NodeId /*node*/) {}

  /// Called synchronously at the instant `node` recovers (cold cache, zero
  /// dedications). Controllers re-enter warm-up for the rejoined node.
  virtual void OnNodeRecover(NodeId /*node*/) {}

  /// Called synchronously after every reachability change of the
  /// interconnect (partition begins, reshapes or heals; a link is cut or
  /// restored). Partition-tolerant controllers re-evaluate quorum leases
  /// here; the default ignores partitions entirely — which is safe only
  /// because the network already drops its cross-partition messages.
  virtual void OnPartitionChange() {}

  /// Controller self-audit for the invariant auditor: returns a description
  /// of the first violated internal invariant (measure-store condition
  /// sanity, lease-implies-quorum, ...), or nullopt when all hold.
  virtual std::optional<std::string> AuditInvariants() const {
    return std::nullopt;
  }

  /// Tolerance band currently applied to `klass` (used for the `satisfied`
  /// flag in metrics). Default: no band.
  virtual double ToleranceFor(ClassId /*klass*/) const { return 0.0; }

  /// Cumulative per-SimplexStatus outcome counters of the controller's
  /// partitioning LPs (interval CSV columns). Default: all zero for
  /// controllers that never solve an LP.
  virtual LpOutcomeCounters LpOutcomes() const { return {}; }

  /// Mirrors the controller's internal counters into the unified metrics
  /// registry; called once per observation interval just before the
  /// registry snapshot. Default: publishes nothing.
  virtual void PublishMetrics(obs::Registry* /*registry*/) {}

  virtual const char* name() const = 0;
};

/// One workstation: CPU, disk, buffer memory (multi-pool cache) and the
/// heat bookkeeping of the cost-based replacement policy.
class Node {
 public:
  Node(ClusterSystem* system, NodeId id);
  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  /// Executes one page access by class `klass` end to end: local lookup,
  /// remote-cache / disk fetch via the home-based protocol, and §6
  /// placement. Returns the storage level that served the access. A
  /// non-null `budget` receives the per-phase latency attribution of the
  /// access (CPU/disk queue-wait and service, fetch wait, backoff, network
  /// queueing/transfer on the requester's own stack).
  sim::Task<StorageLevel> AccessPage(ClassId klass, PageId page,
                                     obs::RequestBudget* budget = nullptr);

  cache::NodeCache& node_cache() { return *cache_; }
  const cache::NodeCache& node_cache() const { return *cache_; }
  storage::Disk& disk() { return disk_; }
  sim::Resource& cpu() { return cpu_; }
  NodeId id() const { return id_; }

  /// Heat of `page` in the scope of the given pool (class heat for
  /// dedicated pools, accumulated heat for the no-goal pool).
  double PoolHeat(ClassId pool_class, PageId page) const;
  double AccumulatedHeat(PageId page) const;

  /// Drops pages from the directory and emits hint traffic; used by the
  /// system when allocations shrink pools.
  void HandleDrops(std::span<const PageId> dropped);

  /// Total LRU-K history records held across the accumulated and per-class
  /// heat trackers (bounded-memory regression tests).
  size_t HeatHistorySize() const;

  /// Pages whose heat report was lost across a partition cut and not yet
  /// re-delivered. Nonzero only while partitioned (or under the
  /// kSkipHealReconcile injected bug — which is what the auditor's
  /// stale-hints check detects).
  size_t unsynced_hint_count() const { return unsynced_hints_.size(); }

  /// Re-reports every unsynced page's heat to its home (state applied
  /// directly, message traffic accounted): the anti-entropy half of the
  /// partition-heal reconciliation. Returns the number of hints flushed.
  size_t FlushUnsyncedHints();

 private:
  friend class ClusterSystem;

  /// Shared state of one hedged remote fetch. The requester and its
  /// spawned attempt/timer coroutines all hold the shared_ptr, so a late
  /// timer or straggling attempt can never dangle; each hedging phase gets
  /// its own one-shot event (stored here so it outlives the requester).
  struct FetchState {
    sim::SimTime started_ms = 0.0;
    /// Some attempt delivered the page.
    bool delivered = false;
    /// The requester gave up and went to disk; late deliveries only feed
    /// the health score.
    bool abandoned = false;
    /// Node whose copy was delivered first (valid when delivered).
    NodeId server = 0;
    /// Integrity of the delivered copy (valid when delivered): kLatent
    /// when the serving frame carried a flaw past the checksum (it
    /// propagates into the requester's frame), kDetectable only under the
    /// kSkipVerify injected bug.
    storage::Flaw flaw = storage::Flaw::kNone;
    /// Event the requester currently waits on; attempts fire it on
    /// delivery. Null once the requester stopped waiting.
    sim::Event* wake = nullptr;
    /// At most one event per hedging phase (max_attempts <= 2), inline.
    common::InlineVector<std::unique_ptr<sim::Event>, 2> phase_events;
  };

  /// One fetch attempt against `target`'s cached copy: control message(s),
  /// liveness/epoch/eviction checks, page transfer, health-score report.
  /// Returns silently when the target (or the forwarding home) is dead —
  /// the requester's phase timer turns that silence into a timeout.
  sim::Task<void> FetchAttempt(std::shared_ptr<FetchState> state,
                               NodeId target, PageId page, bool via_home);

  /// Fires `phase` after `delay`; holds `state` so the event stays alive.
  sim::Task<void> FetchPhaseTimer(std::shared_ptr<FetchState> state,
                                  sim::Event* phase, sim::SimTime delay);

  /// Resets the node's volatile heat bookkeeping after a crash (the cache
  /// itself is wiped via NodeCache::Clear). Tracker objects are reassigned
  /// in place so pointers held by replacement policies stay valid.
  void ResetVolatileState();

  /// True if this node crashed (epoch moved) or is down since `epoch` was
  /// captured; in-flight accesses abort instead of touching the wiped cache.
  bool CrashedSince(uint64_t epoch) const;

  /// Drops heat history older than `horizon` for pages no longer resident
  /// in this node's cache, and the matching stale hint bookkeeping.
  void SweepHeatHistory(sim::SimTime horizon);

  sim::Task<void> UseCpu(double instructions,
                         sim::Resource::UseTiming* timing = nullptr);
  sim::Task<void> DeliverHeatReport(NodeId home, PageId page, double heat);
  void RecordAccessHeat(ClassId klass, PageId page);
  /// Threshold-based heat dissemination to the page's home (§6). Runs on
  /// every access: deferring the check to interval boundaries measurably
  /// changes replacement dynamics (the home's global heat lags a full
  /// interval), so only the heat *arithmetic* is batched (see HeatTracker),
  /// never the propagation decision.
  void MaybePropagateHeat(PageId page, double heat);
  void AfterInsert(PageId page);
  double BenefitOf(ClassId pool_class, PageId page) const;
  std::unique_ptr<cache::ReplacementPolicy> MakePolicy(ClassId pool_class);

  ClusterSystem* system_;
  NodeId id_;
  sim::Resource cpu_;
  storage::Disk disk_;
  cache::HeatTracker accumulated_heat_;
  std::map<ClassId, cache::HeatTracker> class_heat_;
  /// One-entry memo over class_heat_ for the per-access RecordAccessHeat
  /// lookup (consecutive page accesses come from the same op, hence the
  /// same class). std::map node addresses are stable under insertion and
  /// nothing erases class_heat_ entries (ResetVolatileState reassigns
  /// trackers in place — the same stability the LRU-K policy's captured
  /// tracker pointer depends on), so the memo can never dangle.
  ClassId class_heat_memo_class_ = kNoGoalClass;
  cache::HeatTracker* class_heat_memo_ = nullptr;
  common::FlatHashMap<PageId, double> reported_heat_;
  // Heat reports lost to a partition cut, owed to their homes at heal time.
  std::set<PageId> unsynced_hints_;
  /// Remote heat hints sent since the last interval boundary, counted
  /// against SystemConfig::hint_fanout_budget (reset each interval).
  uint32_t hint_sends_this_interval_ = 0;
  /// Lifetime count of hints deferred by the fan-out budget.
  uint64_t hint_budget_skips_ = 0;
  std::unique_ptr<cache::NodeCache> cache_;
};

/// The simulated network of workstations: nodes, database, network,
/// directory, workload sources, the observation-interval loop, and the
/// pluggable partitioning controller.
///
/// Typical use:
///
///   core::SystemConfig config;
///   core::ClusterSystem system(config);
///   system.AddClass({.id = 1, .goal_rt_ms = 3.0, ...});
///   system.AddClass({.id = core::kNoGoalClass, ...});
///   system.Start();
///   system.RunIntervals(80);
///   system.metrics().WriteCsv(stdout);
class ClusterSystem {
 public:
  explicit ClusterSystem(const SystemConfig& config);
  ~ClusterSystem();
  ClusterSystem(const ClusterSystem&) = delete;
  ClusterSystem& operator=(const ClusterSystem&) = delete;

  // -- Setup (before Start) -------------------------------------------------

  /// Registers a workload class. Exactly one class may be the no-goal class
  /// (id 0 / no goal); goal classes get a dedicated pool on every node.
  void AddClass(const workload::ClassSpec& spec);

  /// Replaces the default GoalOrientedController.
  void SetController(std::unique_ptr<Controller> controller);

  /// Spawns workload sources and the interval loop. Call exactly once.
  void Start();

  // -- Running --------------------------------------------------------------

  using IntervalCallback = std::function<void(const IntervalRecord&)>;
  /// Invoked after every observation interval (after the controller ran).
  void SetIntervalCallback(IntervalCallback callback);

  /// Runs `count` observation intervals of simulated time.
  void RunIntervals(int count);

  /// Changes a goal class's response-time goal at the current simulated
  /// time.
  void SetGoal(ClassId klass, double goal_rt_ms);

  /// Changes a class's mean operation inter-arrival time at run time (the
  /// "evolving workload" scenario of §1/§7.2); takes effect from each
  /// node's next operation onwards.
  void SetInterarrival(ClassId klass, double mean_interarrival_ms);

  /// Changes a class's operation complexity (page accesses per operation)
  /// at run time; takes effect from the next operation onwards.
  void SetAccessesPerOp(ClassId klass, int accesses_per_op);

  // -- Introspection ---------------------------------------------------------

  const SystemConfig& config() const { return config_; }
  sim::Simulator& simulator() { return simulator_; }
  net::Network& network() { return network_; }
  net::PageDirectory& directory() { return directory_; }
  const storage::Database& database() const { return database_; }
  const cache::CostModel& cost_model() const { return cost_model_; }
  uint32_t num_nodes() const { return config_.num_nodes; }
  Node& node(NodeId id) { return *nodes_[id]; }
  Controller& controller() { return *controller_; }
  sim::FaultInjector& fault_injector() { return fault_injector_; }

  /// Availability of `node` right now (delegates to the fault injector).
  bool NodeUp(NodeId node) const { return fault_injector_.IsUp(node); }
  /// Crash count of `node`; in-flight work captures it before suspending to
  /// detect that its node died in between.
  uint64_t NodeEpoch(NodeId node) const { return fault_injector_.epoch(node); }
  /// Reachability of `to` from `from` under the current partition topology
  /// (delegates to the fault injector; true in the whole-cluster state).
  bool Reachable(NodeId from, NodeId to) const {
    return fault_injector_.Reachable(from, to);
  }
  /// True while any interconnect cut is in effect.
  bool Partitioned() const { return fault_injector_.Partitioned(); }

  const std::vector<workload::ClassSpec>& classes() const { return classes_; }
  const workload::ClassSpec& spec(ClassId klass) const;
  std::vector<ClassId> goal_class_ids() const;

  const MetricsLog& metrics() const { return metrics_; }
  const AccessCounters& counters(ClassId klass) const;
  int intervals_completed() const { return intervals_completed_; }

  // -- Observability ---------------------------------------------------------

  /// Attaches a request tracer (spans on the page-access and network paths).
  /// Null detaches. Must outlive the system's runs; the caller owns it and
  /// controls Enable().
  void SetTracer(obs::Tracer* tracer);
  obs::Tracer* tracer() { return tracer_; }

  /// Attaches a controller decision-log sink (one record per goal-class
  /// check). Null detaches; the caller owns the log.
  void SetDecisionLog(obs::DecisionLog* log) { decision_log_ = log; }
  obs::DecisionLog* decision_log() { return decision_log_; }

  /// Attaches the goal-attainment tracker (per-request budget attribution,
  /// SLO burn rates, miss cards). Null detaches; the caller owns the
  /// tracker and controls Enable(). When attached but disabled the request
  /// path pays one pointer+bool test.
  void SetAttainment(obs::AttainmentTracker* attainment) {
    attainment_ = attainment;
  }
  obs::AttainmentTracker* attainment() { return attainment_; }

  /// Unified metrics registry, snapshotted once per observation interval.
  obs::Registry& registry() { return registry_; }
  const obs::Registry& registry() const { return registry_; }

  /// Last completed interval's raw observation for (klass, node).
  struct Observation {
    double mean_rt_ms = 0.0;           // 0 when nothing completed
    double arrival_rate_per_ms = 0.0;  // arrivals / interval length
    uint64_t completed = 0;
    uint64_t arrived = 0;
    uint64_t failed = 0;  // aborted by a crash of the node
    bool has_rt = false;
  };
  const Observation& observation(ClassId klass, NodeId node) const;

  // -- Allocation plumbing (used by controllers) -----------------------------

  /// Applies a dedicated-buffer budget for (klass, node); returns granted
  /// bytes (clamped per §5e) and handles directory drops.
  uint64_t ApplyAllocation(ClassId klass, NodeId node, uint64_t bytes);

  struct GrantOutcome {
    /// Granted bytes; the unchanged previous grant when rejected.
    uint64_t granted = 0;
    bool rejected_stale_epoch = false;
  };
  /// Epoch-fenced ApplyAllocation, used by lease-holding controllers: the
  /// (klass, node) agent tracks the highest epoch it has seen, applies
  /// grants at or above it (raising the fence), and rejects grants below it
  /// — those are in-flight commands of a deposed coordinator. Under the
  /// kNoEpochFence injected bug stale grants are applied anyway (and
  /// counted), which is exactly what the auditor's epoch-fence check flags.
  GrantOutcome ApplyAllocationFenced(ClassId klass, NodeId node,
                                     uint64_t bytes, uint64_t epoch);
  /// Raises the (klass, node) agent's fence floor to `epoch` without
  /// changing its grant: a new lease holder announces its epoch to every
  /// reachable agent at acquisition, so slower stale grants already in
  /// flight get rejected on arrival.
  void AnnounceEpoch(ClassId klass, NodeId node, uint64_t epoch);
  uint64_t grants_rejected_stale_epoch() const {
    return grants_rejected_stale_epoch_;
  }
  /// Stale grants applied despite the fence; nonzero only under the
  /// kNoEpochFence injected bug.
  uint64_t stale_grants_applied() const { return stale_grants_applied_; }

  uint64_t DedicatedBytes(ClassId klass, NodeId node) const;
  uint64_t TotalDedicatedBytes(ClassId klass) const;
  /// Equation 6 upper bound for (klass, node).
  uint64_t AvailableFor(ClassId klass, NodeId node) const;

  /// Weighted mean response time over nodes (equation 4) from the last
  /// interval's observations; nullopt if no node completed an operation.
  std::optional<double> WeightedRt(ClassId klass) const;

  /// Drops every cached copy of `page` except at `except_node` (cache
  /// invalidation after a committed update; the transactional overlay calls
  /// this). Invalidation messages to the affected nodes are accounted as
  /// control traffic. Returns the number of copies dropped.
  int InvalidateCopies(PageId page, NodeId except_node);

  // -- Hooks used by Node / workload internals -------------------------------

  common::Rng ForkRng() { return master_rng_.Fork(); }
  void CountAccess(ClassId klass, StorageLevel level);
  /// Counts a remote fetch that exhausted its deadline/hedge budget and
  /// fell back to the disk path.
  void CountFetchFallback(ClassId klass);

  // -- Node health (gray-failure awareness) ---------------------------------

  /// EWMA of observed fetch latency against `node` (ms). Seeded at the
  /// cost model's healthy remote-buffer time; also mirrored into the
  /// directory's replica ranking as the node's cost.
  double HealthScore(NodeId node) const { return health_ewma_[node]; }
  /// Feeds a completed fetch's observed latency into the score.
  void RecordFetchLatency(NodeId node, double latency_ms);
  /// Feeds a timed-out fetch: the true latency is censored at `waited_ms`,
  /// so the sample is pessimistically inflated instead of discarded.
  void RecordFetchTimeout(NodeId node, double waited_ms);
  /// Moves the score a step back toward the healthy baseline (forgiveness
  /// after a recovery or a lifted degradation episode).
  void DecayHealth(NodeId node);
  /// Re-anchors the score at the healthy baseline outright. Used when the
  /// past samples describe a machine that no longer exists: a rebooted node
  /// (its timeouts measured a corpse) or a healed partition (they measured
  /// the cut, not the peer).
  void ResetHealth(NodeId node);

  // -- Invariant auditing ----------------------------------------------------

  /// Registers the standard system-wide audits (see core/system_audits.h)
  /// on `auditor` and runs them at every observation-interval boundary.
  /// The auditor must outlive the system's runs; null detaches. When
  /// detached (the default) the interval loop pays one pointer test.
  void EnableAuditor(sim::InvariantAuditor* auditor);
  sim::InvariantAuditor* auditor() { return auditor_; }

  /// Partition lifecycle counters (whole -> cut transitions and back) and
  /// heal-time reconciliation volume, for the registry and tests.
  uint64_t partition_begins() const { return partition_begins_; }
  uint64_t partition_heals() const { return partition_heals_; }
  uint64_t reconcile_hints_sent() const { return reconcile_hints_sent_; }

  // -- Integrity (silent-data-corruption tolerance) --------------------------

  /// Per-copy integrity state (disk copies and cached frames). Marks are
  /// set by the injector's corruption callback; the access, repair and
  /// scrub paths consult and clear them.
  const storage::IntegrityMap& integrity() const { return integrity_; }

  /// Condemns `node`'s cached frame of `page` after a failed verify:
  /// counts the decision, evicts the frame (with directory cleanup) and
  /// clears its integrity mark. Under kServeQuarantined the decision is
  /// counted but the frame stays resident — which is exactly what the
  /// quarantine-accounting audit flags.
  void QuarantineFrame(NodeId node, PageId page);

  /// Corruption events that landed on a frame / a disk copy; draws that
  /// fizzled (non-resident frame, already-marked copy).
  uint64_t corrupt_injected_frames() const { return corrupt_injected_frames_; }
  uint64_t corrupt_injected_disk() const { return corrupt_injected_disk_; }
  uint64_t corrupt_fizzled() const { return corrupt_fizzled_; }
  /// Verify-on-read detections (frames + disk copies); disk-copy-only
  /// detections feed the repair ladder.
  uint64_t corrupt_detected() const { return corrupt_detected_; }
  uint64_t disk_detections() const { return disk_detections_; }
  /// Detectably corrupt data consumed by a client access — must stay zero
  /// (auditor-enforced) except under the kSkipVerify injected bug.
  uint64_t corrupt_served() const { return corrupt_served_; }
  /// Latently corrupt data consumed by a client access; undetectable by
  /// construction, so reported but never audited against.
  uint64_t latent_served() const { return latent_served_; }
  /// Quarantine decisions taken; executions are the per-cache
  /// NodeCache::quarantined() counters the audit balances them against.
  uint64_t quarantine_decisions() const { return quarantine_decisions_; }
  uint64_t frames_quarantined() const;
  /// Repair-ladder outcomes for detectably corrupt disk copies.
  uint64_t repairs_replica() const { return repairs_replica_; }
  uint64_t pages_lost() const { return pages_lost_; }
  /// Repair ladders currently between detection and outcome (a replica
  /// transfer or disk rewrite is in flight); lets the accounting audit run
  /// at interval boundaries without flagging in-progress repairs.
  uint64_t repair_ladders_open() const { return repair_ladders_open_; }
  /// Latent flaws propagated into a fresh copy (fetch insert or replica
  /// repair sourced from a latently corrupt frame).
  uint64_t latent_propagated() const { return latent_propagated_; }
  /// Frame marks resolved by ordinary eviction / by a crash wiping RAM.
  uint64_t corrupt_evicted() const { return corrupt_evicted_; }
  uint64_t corrupt_wiped_by_crash() const { return corrupt_wiped_by_crash_; }
  /// Scrubber progress: completed verify reads, wakeups, busy skips.
  uint64_t pages_scrubbed() const { return pages_scrubbed_; }
  uint64_t scrub_ticks() const { return scrub_ticks_; }
  uint64_t scrub_skipped_busy() const { return scrub_skipped_busy_; }

 private:
  // Nodes update the integrity ledger counters directly on their access
  // paths (mirroring Node's own friend declaration for the system).
  friend class Node;

  sim::Task<void> WorkloadSource(NodeId node, ClassId klass);
  sim::Task<void> RunOperation(NodeId node, ClassId klass,
                               common::InlineVector<PageId, 8> pages);
  sim::Task<void> IntervalLoop();

  /// Mirrors system-level counters/gauges into the registry and takes the
  /// per-interval snapshot (after the controller published its own).
  void PublishRegistrySnapshot(int interval_index);

  /// Crash instant: atomically wipe the node's cache, directory
  /// registrations and heat bookkeeping, then notify the controller.
  void HandleNodeCrash(NodeId node);
  /// Recovery instant: the node rejoins cold; notify the controller.
  void HandleNodeRecover(NodeId node);
  /// Degradation instant: stretch the node's CPU, disk and network-latency
  /// service times by the injector's slowdown factor.
  void HandleNodeDegrade(NodeId node);
  /// Episode lifted: service times back to nominal; health starts healing.
  void HandleNodeRestore(NodeId node);
  /// Reachability-change instant: flip the network/directory partition
  /// flags, run heal-time reconciliation when the cluster became whole,
  /// then notify the controller (lease re-evaluation).
  void HandlePartitionChange();
  /// Anti-entropy after a heal: flush every node's unsynced hints and
  /// re-anchor all health EWMAs (pre-partition timeout penalties measured
  /// the cut, not the peers). Skipped under kSkipHealReconcile.
  void ReconcileAfterHeal();

  /// Corruption instant: maps the injector's opaque draw onto a concrete
  /// target (cached frame or disk copy at `node`) and a detectability
  /// outcome — every decision is made here, from the draw, so the access
  /// path never consumes RNG.
  void HandleCorruption(NodeId node, uint64_t draw);
  /// Clears integrity marks of frames leaving `node`'s cache by ordinary
  /// eviction (a stale mark would otherwise mis-flag a future re-fetch).
  void ClearEvictedFrameMarks(NodeId node, std::span<const PageId> dropped);
  /// Verify-on-read of `page`'s just-read disk copy. A detectable flaw
  /// runs the repair ladder: rewrite from the cheapest intact cached
  /// replica (accounted transfer + disk write at the home), else declare
  /// the page lost and re-initialize it. Returns the integrity of the
  /// content the reader ends up with — kNone after a clean read, a
  /// replica repair or a loss; kLatent when the copy (or the repair
  /// source) carries a flaw past the checksum; kDetectable only under
  /// the kSkipVerify injected bug.
  sim::Task<storage::Flaw> VerifyDiskRead(PageId page);
  /// Per-node background scrubber: verifies one disk-resident page per
  /// tick, but only when the disk is idle (strictly lower priority than
  /// workload I/O), feeding detections into the repair ladder.
  sim::Task<void> ScrubLoop(NodeId node);

  struct IntervalAccumulator {
    uint64_t arrived = 0;
    uint64_t completed = 0;
    uint64_t failed = 0;
    double rt_sum = 0.0;
  };
  IntervalAccumulator& Accumulator(ClassId klass, NodeId node);

  SystemConfig config_;
  sim::Simulator simulator_;
  storage::Database database_;
  net::Network network_;
  net::PageDirectory directory_;
  cache::CostModel cost_model_;
  common::Rng master_rng_;
  sim::FaultInjector fault_injector_;
  std::vector<std::unique_ptr<Node>> nodes_;
  std::vector<workload::ClassSpec> classes_;
  /// One PageSelector per class, shared by every node's WorkloadSource.
  /// Sampling is stateless (the RNG is passed in), so sharing draws the
  /// same pages as per-source copies did — but a selector carries O(pages)
  /// cdf/guide tables, and one copy per (node, class) source put hundreds
  /// of megabytes of identical tables between the workload and the cache
  /// at 256 nodes x 256 classes. Built lazily at first source start so the
  /// spec is frozen at the same instant it was with per-source copies.
  std::map<ClassId, workload::PageSelector> class_selectors_;
  std::unique_ptr<Controller> controller_;
  IntervalCallback interval_callback_;
  bool started_ = false;

  // (klass << 32 | node) -> accumulator / last observation. Flat tables,
  // not std::map: Accumulator() sits on the per-access path and the
  // controller rollup touches every (class, node) pair each interval, so
  // tree lookups over K * N entries dominated large-grid profiles.
  static uint64_t ClassNodeKey(ClassId klass, NodeId node) {
    return (static_cast<uint64_t>(klass) << 32) | node;
  }
  common::FlatHashMap<uint64_t, IntervalAccumulator> accumulators_;
  common::FlatHashMap<uint64_t, Observation> observations_;
  std::map<ClassId, AccessCounters> counters_;
  MetricsLog metrics_;
  int intervals_completed_ = 0;
  std::vector<double> health_ewma_;  // [node] fetch-latency EWMA, ms

  // (klass, node) -> highest grant epoch the agent has seen (fence floor).
  std::map<std::pair<ClassId, NodeId>, uint64_t> grant_epochs_;
  uint64_t grants_rejected_stale_epoch_ = 0;
  uint64_t stale_grants_applied_ = 0;
  bool partitioned_now_ = false;
  uint64_t partition_begins_ = 0;
  uint64_t partition_heals_ = 0;
  uint64_t reconcile_hints_sent_ = 0;
  sim::InvariantAuditor* auditor_ = nullptr;

  // Integrity state and the corruption/quarantine/repair/scrub ledger (see
  // the public accessors for semantics).
  storage::IntegrityMap integrity_;
  uint64_t corrupt_injected_frames_ = 0;
  uint64_t corrupt_injected_disk_ = 0;
  uint64_t corrupt_fizzled_ = 0;
  uint64_t corrupt_detected_ = 0;
  uint64_t disk_detections_ = 0;
  uint64_t corrupt_served_ = 0;
  uint64_t latent_served_ = 0;
  uint64_t quarantine_decisions_ = 0;
  uint64_t repairs_replica_ = 0;
  uint64_t pages_lost_ = 0;
  uint64_t repair_ladders_open_ = 0;
  uint64_t latent_propagated_ = 0;
  uint64_t corrupt_evicted_ = 0;
  uint64_t corrupt_wiped_by_crash_ = 0;
  uint64_t pages_scrubbed_ = 0;
  uint64_t scrub_ticks_ = 0;
  uint64_t scrub_skipped_busy_ = 0;

  obs::Tracer* tracer_ = nullptr;
  obs::DecisionLog* decision_log_ = nullptr;
  obs::AttainmentTracker* attainment_ = nullptr;
  obs::Registry registry_;
};

}  // namespace memgoal::core

#endif  // MEMGOAL_CORE_SYSTEM_H_
