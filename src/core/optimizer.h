#ifndef MEMGOAL_CORE_OPTIMIZER_H_
#define MEMGOAL_CORE_OPTIMIZER_H_

#include "core/measure.h"
#include "la/matrix.h"

namespace memgoal::core {

/// Inputs of the buffer-partitioning linear program (§4).
struct OptimizerInput {
  /// Fitted response-time hyperplanes of the goal class and no-goal class.
  MeasureStore::Planes planes;
  /// Response-time goal of the class being re-partitioned (ms).
  double goal_rt = 0.0;
  /// Per-node upper bounds U_i = SIZE_i - sum_{l != k} LM_l,i (equation 6),
  /// in bytes.
  la::Vector upper_bounds;
};

/// How the returned allocation was obtained.
enum class OptimizerMode {
  /// LP solved with the goal constraint as an equality (the paper's
  /// formulation).
  kGoalEquality,
  /// Equality was infeasible within bounds but satisfying the goal with
  /// slack was possible (predicted RT_k <= goal).
  kGoalInequality,
  /// The goal is unreachable even with all available memory: the allocation
  /// minimizes the predicted RT_k instead, and the feedback loop retries
  /// next interval.
  kBestEffort,
};

struct OptimizerOutput {
  OptimizerMode mode = OptimizerMode::kBestEffort;
  /// New per-node dedicated buffer sizes (bytes).
  la::Vector allocation;
  /// Plane-predicted response times at `allocation`.
  double predicted_rt_k = 0.0;
  double predicted_rt_0 = 0.0;
};

/// Solves for the new partitioning of one goal class: minimize the
/// predicted no-goal response time subject to the goal class's hyperplane
/// meeting its goal and the per-node capacity bounds (§4's LP), with the
/// documented fallbacks when that LP is infeasible.
OptimizerOutput SolvePartitioning(const OptimizerInput& input);

}  // namespace memgoal::core

#endif  // MEMGOAL_CORE_OPTIMIZER_H_
