#ifndef MEMGOAL_CORE_OPTIMIZER_H_
#define MEMGOAL_CORE_OPTIMIZER_H_

#include <cstdint>

#include "core/measure.h"
#include "la/matrix.h"
#include "la/simplex.h"

namespace memgoal::core {

/// Inputs of the buffer-partitioning linear program (§4).
struct OptimizerInput {
  /// Fitted response-time hyperplanes of the goal class and no-goal class.
  MeasureStore::Planes planes;
  /// Response-time goal of the class being re-partitioned (ms).
  double goal_rt = 0.0;
  /// Per-node upper bounds U_i = SIZE_i - sum_{l != k} LM_l,i (equation 6),
  /// in bytes.
  la::Vector upper_bounds;
  /// Which simplex backend solves the LPs.
  la::LpBackend lp_backend = la::LpBackend::kRevised;
  /// Optional warm-start basis from the previous control interval's solve
  /// (revised backend only). Applied to the first (equality) solve; the
  /// fallback chain re-poses the LP, so later rungs start cold. The solver
  /// validates the basis and silently cold-starts when it no longer fits.
  const la::SimplexBasis* warm = nullptr;
};

/// How the returned allocation was obtained.
enum class OptimizerMode {
  /// LP solved with the goal constraint as an equality (the paper's
  /// formulation).
  kGoalEquality,
  /// Equality was infeasible within bounds but satisfying the goal with
  /// slack was possible (predicted RT_k <= goal).
  kGoalInequality,
  /// Even the inequality LP was infeasible, but a retry with a
  /// proportionally relaxed goal succeeded: the allocation aims at the
  /// loosest of goal·(1+ρ) that was feasible per the fitted planes,
  /// instead of silently keeping a stale partitioning.
  kGoalRelaxed,
  /// The goal is unreachable even with all available memory: the allocation
  /// minimizes the predicted RT_k instead, and the feedback loop retries
  /// next interval.
  kBestEffort,
};

/// Per-SimplexStatus outcome counts accumulated across the fallback chain
/// of one solve (an equality miss plus an inequality hit counts both).
struct LpOutcomeStats {
  uint64_t optimal = 0;
  uint64_t infeasible = 0;
  uint64_t unbounded = 0;
  /// Solves cut off by the simplex iteration safety bound. Distinct from
  /// infeasible: the LP was never classified, and the retry ladder re-poses
  /// it rather than trusting a half-finished basis.
  uint64_t iteration_limit = 0;
  /// Relaxed-goal retries attempted after the inequality LP was infeasible.
  uint64_t relaxed_retries = 0;

  LpOutcomeStats& operator+=(const LpOutcomeStats& other) {
    optimal += other.optimal;
    infeasible += other.infeasible;
    unbounded += other.unbounded;
    iteration_limit += other.iteration_limit;
    relaxed_retries += other.relaxed_retries;
    return *this;
  }
};

/// Stable label for logs and the decision records.
inline const char* OptimizerModeName(OptimizerMode mode) {
  switch (mode) {
    case OptimizerMode::kGoalEquality:
      return "goal_equality";
    case OptimizerMode::kGoalInequality:
      return "goal_inequality";
    case OptimizerMode::kGoalRelaxed:
      return "goal_relaxed";
    case OptimizerMode::kBestEffort:
      return "best_effort";
  }
  return "?";
}

/// Relaxation ladder tried when the inequality LP is infeasible: the goal
/// constraint is re-posed at goal·(1+ρ) for each ρ in order, first feasible
/// wins. Beyond +50% the best-effort saturation is more honest.
inline constexpr double kGoalRelaxationLadder[] = {0.10, 0.25, 0.50};

/// Adds one simplex solve's terminal status to the counters.
inline void CountLpOutcome(la::SimplexStatus status, LpOutcomeStats* stats) {
  switch (status) {
    case la::SimplexStatus::kOptimal:
      ++stats->optimal;
      break;
    case la::SimplexStatus::kInfeasible:
      ++stats->infeasible;
      break;
    case la::SimplexStatus::kUnbounded:
      ++stats->unbounded;
      break;
    case la::SimplexStatus::kIterationLimit:
      ++stats->iteration_limit;
      break;
  }
}

struct OptimizerOutput {
  OptimizerMode mode = OptimizerMode::kBestEffort;
  /// New per-node dedicated buffer sizes (bytes).
  la::Vector allocation;
  /// Plane-predicted response times at `allocation`.
  double predicted_rt_k = 0.0;
  double predicted_rt_0 = 0.0;
  /// The relaxed goal actually used (mode == kGoalRelaxed only).
  double relaxed_goal_rt = 0.0;
  /// Index into kGoalRelaxationLadder of the rung that produced a feasible
  /// LP (mode == kGoalRelaxed only); -1 otherwise.
  int relaxed_rung = -1;
  /// Simplex outcome counts of this solve's fallback chain.
  LpOutcomeStats lp_stats;
  /// Final basis of the solve that produced `allocation` (revised backend
  /// only; empty otherwise). Feed back as `OptimizerInput::warm` next
  /// interval.
  la::SimplexBasis basis;
};

/// Solves for the new partitioning of one goal class: minimize the
/// predicted no-goal response time subject to the goal class's hyperplane
/// meeting its goal and the per-node capacity bounds (§4's LP), with the
/// documented fallbacks when that LP is infeasible.
OptimizerOutput SolvePartitioning(const OptimizerInput& input);

}  // namespace memgoal::core

#endif  // MEMGOAL_CORE_OPTIMIZER_H_
