#include "core/system_audits.h"

#include <cstdarg>
#include <cstdio>
#include <optional>
#include <string>

#include "core/system.h"

namespace memgoal::core {

namespace {

std::string Describe(const char* format, ...) {
  char buffer[192];
  va_list args;
  va_start(args, format);
  std::vsnprintf(buffer, sizeof(buffer), format, args);
  va_end(args);
  return buffer;
}

std::optional<std::string> CheckResource(const sim::Resource& resource) {
  if (resource.in_use() < 0 || resource.in_use() > resource.capacity()) {
    return Describe("%s: in_use=%d outside [0, %d]", resource.name().c_str(),
                    resource.in_use(), resource.capacity());
  }
  // Release() hands units directly to the oldest waiter, so at every event
  // boundary a non-empty queue implies a fully busy resource: a waiter in
  // front of an idle unit means a lost wakeup.
  if (resource.queue_length() > 0 &&
      resource.in_use() != resource.capacity()) {
    return Describe("%s: %zu waiting while %d/%d units busy",
                    resource.name().c_str(), resource.queue_length(),
                    resource.in_use(), resource.capacity());
  }
  return std::nullopt;
}

}  // namespace

void RegisterSystemAudits(sim::InvariantAuditor* auditor,
                          ClusterSystem* system) {
  auditor->AddCheck("directory_copy_accounting",
                    [system]() -> std::optional<std::string> {
    const uint32_t pages = system->database().num_pages();
    for (NodeId node = 0; node < system->num_nodes(); ++node) {
      const cache::NodeCache& cache = system->node(node).node_cache();
      for (PageId page = 0; page < pages; ++page) {
        const bool resident = cache.IsCached(page);
        const bool registered = system->directory().IsCachedAt(node, page);
        if (resident != registered) {
          return Describe("node %u page %u: cache=%d directory=%d", node,
                          page, resident ? 1 : 0, registered ? 1 : 0);
        }
      }
    }
    return std::nullopt;
  });

  auditor->AddCheck("allocation_capacity",
                    [system]() -> std::optional<std::string> {
    for (NodeId node = 0; node < system->num_nodes(); ++node) {
      const cache::NodeCache& cache = system->node(node).node_cache();
      if (cache.total_dedicated_bytes() > cache.total_bytes()) {
        return Describe("node %u: dedicated %llu > cache %llu bytes", node,
                        static_cast<unsigned long long>(
                            cache.total_dedicated_bytes()),
                        static_cast<unsigned long long>(cache.total_bytes()));
      }
    }
    return std::nullopt;
  });

  auditor->AddCheck("epoch_fence", [system]() -> std::optional<std::string> {
    if (system->stale_grants_applied() > 0) {
      return Describe("%llu grant(s) with a stale epoch were applied",
                      static_cast<unsigned long long>(
                          system->stale_grants_applied()));
    }
    return std::nullopt;
  });

  auditor->AddCheck("resource_conservation",
                    [system]() -> std::optional<std::string> {
    for (NodeId node = 0; node < system->num_nodes(); ++node) {
      if (auto v = CheckResource(system->node(node).cpu())) return v;
      if (auto v = CheckResource(system->node(node).disk().resource())) {
        return v;
      }
    }
    return CheckResource(system->network().medium());
  });

  auditor->AddCheck("controller_invariants",
                    [system]() -> std::optional<std::string> {
    return system->controller().AuditInvariants();
  });

  auditor->AddCheck("stale_hints_after_heal",
                    [system]() -> std::optional<std::string> {
    if (system->Partitioned()) return std::nullopt;  // debts legal mid-cut
    for (NodeId node = 0; node < system->num_nodes(); ++node) {
      const size_t owed = system->node(node).unsynced_hint_count();
      if (owed > 0) {
        return Describe("node %u still owes %zu hint(s) while whole", node,
                        owed);
      }
    }
    return std::nullopt;
  });

  auditor->AddCheck("directory_heat_accounting",
                    [system]() -> std::optional<std::string> {
    return system->directory().AuditInternalConsistency();
  });
}

}  // namespace memgoal::core
