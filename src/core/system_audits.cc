#include "core/system_audits.h"

#include <cstdarg>
#include <cstdio>
#include <optional>
#include <string>

#include "core/system.h"

namespace memgoal::core {

namespace {

std::string Describe(const char* format, ...) {
  char buffer[192];
  va_list args;
  va_start(args, format);
  std::vsnprintf(buffer, sizeof(buffer), format, args);
  va_end(args);
  return buffer;
}

std::optional<std::string> CheckResource(const sim::Resource& resource) {
  if (resource.in_use() < 0 || resource.in_use() > resource.capacity()) {
    return Describe("%s: in_use=%d outside [0, %d]", resource.name().c_str(),
                    resource.in_use(), resource.capacity());
  }
  // Release() hands units directly to the oldest waiter, so at every event
  // boundary a non-empty queue implies a fully busy resource: a waiter in
  // front of an idle unit means a lost wakeup.
  if (resource.queue_length() > 0 &&
      resource.in_use() != resource.capacity()) {
    return Describe("%s: %zu waiting while %d/%d units busy",
                    resource.name().c_str(), resource.queue_length(),
                    resource.in_use(), resource.capacity());
  }
  return std::nullopt;
}

}  // namespace

void RegisterSystemAudits(sim::InvariantAuditor* auditor,
                          ClusterSystem* system) {
  auditor->AddCheck("directory_copy_accounting",
                    [system]() -> std::optional<std::string> {
    const uint32_t pages = system->database().num_pages();
    for (NodeId node = 0; node < system->num_nodes(); ++node) {
      const cache::NodeCache& cache = system->node(node).node_cache();
      for (PageId page = 0; page < pages; ++page) {
        const bool resident = cache.IsCached(page);
        const bool registered = system->directory().IsCachedAt(node, page);
        if (resident != registered) {
          return Describe("node %u page %u: cache=%d directory=%d", node,
                          page, resident ? 1 : 0, registered ? 1 : 0);
        }
      }
    }
    return std::nullopt;
  });

  auditor->AddCheck("allocation_capacity",
                    [system]() -> std::optional<std::string> {
    for (NodeId node = 0; node < system->num_nodes(); ++node) {
      const cache::NodeCache& cache = system->node(node).node_cache();
      if (cache.total_dedicated_bytes() > cache.total_bytes()) {
        return Describe("node %u: dedicated %llu > cache %llu bytes", node,
                        static_cast<unsigned long long>(
                            cache.total_dedicated_bytes()),
                        static_cast<unsigned long long>(cache.total_bytes()));
      }
    }
    return std::nullopt;
  });

  auditor->AddCheck("epoch_fence", [system]() -> std::optional<std::string> {
    if (system->stale_grants_applied() > 0) {
      return Describe("%llu grant(s) with a stale epoch were applied",
                      static_cast<unsigned long long>(
                          system->stale_grants_applied()));
    }
    return std::nullopt;
  });

  auditor->AddCheck("resource_conservation",
                    [system]() -> std::optional<std::string> {
    for (NodeId node = 0; node < system->num_nodes(); ++node) {
      if (auto v = CheckResource(system->node(node).cpu())) return v;
      if (auto v = CheckResource(system->node(node).disk().resource())) {
        return v;
      }
    }
    return CheckResource(system->network().medium());
  });

  auditor->AddCheck("controller_invariants",
                    [system]() -> std::optional<std::string> {
    return system->controller().AuditInvariants();
  });

  auditor->AddCheck("stale_hints_after_heal",
                    [system]() -> std::optional<std::string> {
    if (system->Partitioned()) return std::nullopt;  // debts legal mid-cut
    for (NodeId node = 0; node < system->num_nodes(); ++node) {
      const size_t owed = system->node(node).unsynced_hint_count();
      if (owed > 0) {
        return Describe("node %u still owes %zu hint(s) while whole", node,
                        owed);
      }
    }
    return std::nullopt;
  });

  auditor->AddCheck("directory_heat_accounting",
                    [system]() -> std::optional<std::string> {
    return system->directory().AuditInternalConsistency();
  });

  auditor->AddCheck("no_corrupt_page_served",
                    [system]() -> std::optional<std::string> {
    if (system->corrupt_served() > 0) {
      return Describe("%llu detectably corrupt page(s) were served",
                      static_cast<unsigned long long>(
                          system->corrupt_served()));
    }
    return std::nullopt;
  });

  auditor->AddCheck("quarantine_accounting",
                    [system]() -> std::optional<std::string> {
    // Pure counter equalities — no scans. Every quarantine decision must
    // have been executed by a buffer pool (QuarantineFrame has no await
    // between the two, so at event boundaries they agree exactly), and
    // every detected-corrupt disk read must have ended its repair ladder
    // as a replica repair or a counted lost page (ladders still running a
    // transfer are carried in repair_ladders_open()).
    if (system->quarantine_decisions() != system->frames_quarantined()) {
      return Describe("%llu quarantine decision(s) vs %llu executed",
                      static_cast<unsigned long long>(
                          system->quarantine_decisions()),
                      static_cast<unsigned long long>(
                          system->frames_quarantined()));
    }
    const uint64_t closed =
        system->repairs_replica() + system->pages_lost() +
        system->repair_ladders_open();
    if (system->disk_detections() != closed) {
      return Describe(
          "%llu disk detection(s) vs %llu repaired+lost+open",
          static_cast<unsigned long long>(system->disk_detections()),
          static_cast<unsigned long long>(closed));
    }
    return std::nullopt;
  });

  auditor->AddCheck(
      "scrub_progress",
      [system, last_ticks = uint64_t{0}, last_scrubbed = uint64_t{0},
       last_time = -1.0]() mutable -> std::optional<std::string> {
    const uint64_t ticks = system->scrub_ticks();
    const uint64_t scrubbed = system->pages_scrubbed();
    if (ticks < last_ticks || scrubbed < last_scrubbed) {
      return Describe("scrub counters moved backwards (%llu/%llu -> "
                      "%llu/%llu)",
                      static_cast<unsigned long long>(last_ticks),
                      static_cast<unsigned long long>(last_scrubbed),
                      static_cast<unsigned long long>(ticks),
                      static_cast<unsigned long long>(scrubbed));
    }
    // Each tick ends as a completed scrub read, a busy/down skip, or an
    // in-flight read — never more scrubs than wakeups.
    if (scrubbed + system->scrub_skipped_busy() > ticks) {
      return Describe("%llu scrub(s) + %llu skip(s) exceed %llu tick(s)",
                      static_cast<unsigned long long>(scrubbed),
                      static_cast<unsigned long long>(
                          system->scrub_skipped_busy()),
                      static_cast<unsigned long long>(ticks));
    }
    // Liveness: an enabled scrubber ticks unconditionally (even with the
    // node down). Tick spacing is one interval plus the service time of
    // whatever the tick did (read, repair transfers), so only flag a
    // window generously longer than the interval.
    const double now = system->simulator().Now();
    const double interval = system->config().scrub_interval_ms;
    if (interval > 0.0 && last_time >= 0.0 &&
        now - last_time >= 8.0 * interval + 10000.0 && ticks == last_ticks) {
      return Describe("scrubber stalled: no tick in %.1f ms",
                      now - last_time);
    }
    last_ticks = ticks;
    last_scrubbed = scrubbed;
    last_time = now;
    return std::nullopt;
  });
}

}  // namespace memgoal::core
