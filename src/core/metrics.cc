#include "core/metrics.h"

#include "common/check.h"

namespace memgoal::core {

const ClassIntervalMetrics& IntervalRecord::ForClass(ClassId klass) const {
  for (const ClassIntervalMetrics& m : classes) {
    if (m.klass == klass) return m;
  }
  MEMGOAL_CHECK_MSG(false, "class not present in interval record");
  return classes.front();
}

void MetricsLog::WriteCsv(std::FILE* out) const {
  std::fprintf(out,
               "interval,end_time_ms,class,observed_rt_ms,goal_rt_ms,"
               "tolerance_ms,satisfied,dedicated_bytes,ops_completed,"
               "ops_arrived,ops_failed,nodes_up,lp_optimal,lp_infeasible,"
               "lp_unbounded,lp_iteration_limit,lp_relaxed_retries\n");
  for (const IntervalRecord& record : records_) {
    for (const ClassIntervalMetrics& m : record.classes) {
      std::fprintf(out,
                   "%d,%.3f,%u,%.6f,%.6f,%.6f,%d,%llu,%llu,%llu,%llu,%u,"
                   "%llu,%llu,%llu,%llu,%llu\n",
                   record.index, record.end_time_ms, m.klass, m.observed_rt_ms,
                   m.goal_rt_ms, m.tolerance_ms, m.satisfied ? 1 : 0,
                   static_cast<unsigned long long>(m.dedicated_bytes),
                   static_cast<unsigned long long>(m.ops_completed),
                   static_cast<unsigned long long>(m.ops_arrived),
                   static_cast<unsigned long long>(m.ops_failed),
                   record.nodes_up,
                   static_cast<unsigned long long>(record.lp.optimal),
                   static_cast<unsigned long long>(record.lp.infeasible),
                   static_cast<unsigned long long>(record.lp.unbounded),
                   static_cast<unsigned long long>(record.lp.iteration_limit),
                   static_cast<unsigned long long>(record.lp.relaxed_retries));
    }
  }
}

}  // namespace memgoal::core
