#include "core/goal_controller.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "common/check.h"
#include "common/logging.h"
#include "core/variance_optimizer.h"
#include "net/network.h"
#include "obs/profiler.h"

namespace memgoal::core {

namespace {

bool AllFinite(const la::Vector& v) {
  for (double x : v) {
    if (!std::isfinite(x)) return false;
  }
  return true;
}

}  // namespace

void GoalOrientedController::Attach(ClusterSystem* system) {
  system_ = system;
  const SystemConfig& config = system->config();
  for (ClassId klass : system->goal_class_ids()) {
    // Coordinators are spread over the nodes for load balancing (§5).
    const NodeId home = (klass - 1) % config.num_nodes;
    coordinators_.try_emplace(
        klass, Coordinator(klass, home, config.num_nodes,
                           config.tolerance_rel_floor, config.tolerance_z));
  }
}

const MeasureStore& GoalOrientedController::measure_store(
    ClassId klass) const {
  return coordinators_.at(klass).store;
}

NodeId GoalOrientedController::coordinator_node(ClassId klass) const {
  return coordinators_.at(klass).home;
}

void GoalOrientedController::MigrateCoordinator(ClassId klass,
                                                NodeId new_home) {
  MEMGOAL_CHECK(system_ != nullptr);
  const SystemConfig& config = system_->config();
  MEMGOAL_CHECK(new_home < config.num_nodes);
  Coordinator& coordinator = coordinators_.at(klass);
  if (coordinator.home == new_home) return;
  // State transfer to the new node plus one notification per agent (class-k
  // agents and no-goal agents on every node learn the new address).
  system_->simulator().Spawn(system_->network().Transfer(
      coordinator.home, new_home, config.report_msg_bytes,
      net::TrafficClass::kPartitionProtocol));
  for (NodeId i = 0; i < config.num_nodes; ++i) {
    system_->simulator().Spawn(system_->network().Transfer(
        new_home, i, config.control_msg_bytes,
        net::TrafficClass::kPartitionProtocol));
  }
  coordinator.home = new_home;
}

void GoalOrientedController::RestartMeasurement(Coordinator* coordinator,
                                                NodeId node) {
  // The node's last-reported view is stale (its agent state is gone on
  // crash, cold on recovery); every retained measure point described a
  // cluster that no longer exists.
  coordinator->views[node] = NodeView{};
  coordinator->nogoal_rt[node].reset();
  coordinator->nogoal_rate[node] = 0.0;
  RestartMeasurementOver(coordinator);
}

void GoalOrientedController::RestartMeasurementOver(Coordinator* coordinator) {
  std::vector<size_t> live;
  for (NodeId i = 0; i < system_->num_nodes(); ++i) {
    if (system_->NodeUp(i) &&
        system_->Reachable(coordinator->home, i)) {
      live.push_back(i);
    } else {
      // Dead or across the cut: the view cannot be refreshed, and a grant
      // recorded there would anchor the fit to unobservable memory.
      coordinator->views[i] = NodeView{};
      coordinator->nogoal_rt[i].reset();
      coordinator->nogoal_rate[i] = 0.0;
    }
  }
  coordinator->store.SetActiveNodes(std::move(live));
  coordinator->warmup_step = 0;
  coordinator->consecutive_slow = 0;
  // Topology changed: the LP's variable set (and its optimum) moved, so
  // the retained simplex basis is stale — next solve starts cold.
  coordinator->lp_warm_basis.status.clear();
  ++stats_.store_resets;
}

bool GoalOrientedController::QuorumFrom(NodeId home) const {
  if (!system_->NodeUp(home)) return false;
  uint32_t nodes_up = 0;
  uint32_t reachable_up = 0;
  for (NodeId i = 0; i < system_->num_nodes(); ++i) {
    if (!system_->NodeUp(i)) continue;
    ++nodes_up;
    if (system_->Reachable(home, i)) ++reachable_up;
  }
  // Strict majority of the *live* nodes: two disjoint sides of a cut can
  // never both satisfy this, so at most one lease per class is live. An
  // even split leaves both sides leaseless (frozen grants beat split
  // brain).
  return 2 * reachable_up > nodes_up;
}

void GoalOrientedController::AnnounceLease(Coordinator* coordinator) {
  const SystemConfig& config = system_->config();
  for (NodeId i = 0; i < config.num_nodes; ++i) {
    if (!system_->NodeUp(i) ||
        !system_->Reachable(coordinator->home, i)) {
      // Unreachable agents miss the announcement; their fence rises when
      // the first grant of the new epoch reaches them after the heal.
      continue;
    }
    // Fence raised synchronously, traffic accounted alongside (the
    // substitution-table idiom used throughout the protocol layer).
    system_->AnnounceEpoch(coordinator->klass, i, coordinator->epoch);
    if (i != coordinator->home) {
      system_->simulator().Spawn(system_->network().Transfer(
          coordinator->home, i, config.control_msg_bytes,
          net::TrafficClass::kPartitionProtocol));
    }
  }
}

void GoalOrientedController::ReevaluateLease(Coordinator* coordinator) {
  if (HasQuorum(*coordinator)) {
    if (!coordinator->has_lease) {
      // Reacquire in place: the heal (or a crash on the other side)
      // restored this home's majority.
      ++coordinator->epoch;
      coordinator->lp_warm_basis.status.clear();
      coordinator->has_lease = true;
      ++stats_.lease_acquisitions;
      AnnounceLease(coordinator);
    }
    return;
  }
  if (coordinator->has_lease) {
    coordinator->has_lease = false;
    ++stats_.leases_lost;
  }
  // Depose-and-fail-over: the lowest-numbered node that can assemble a
  // quorum (the majority side) takes the class over under a fresh epoch.
  // The old home cannot be told — it is dead or across the cut — which is
  // exactly why the grants are fenced.
  for (NodeId i = 0; i < system_->num_nodes(); ++i) {
    if (!QuorumFrom(i)) continue;
    coordinator->home = i;
    ++stats_.coordinator_failovers;
    ++coordinator->epoch;
    coordinator->lp_warm_basis.status.clear();
    coordinator->has_lease = true;
    ++stats_.lease_acquisitions;
    // Every view lived in the deposed coordinator's memory.
    for (NodeView& view : coordinator->views) view = NodeView{};
    for (auto& rt : coordinator->nogoal_rt) rt.reset();
    for (double& rate : coordinator->nogoal_rate) rate = 0.0;
    AnnounceLease(coordinator);
    return;
  }
  // No node reaches a majority (even split or mass outage): the class's
  // control plane freezes until the topology changes again.
}

void GoalOrientedController::OnNodeCrash(NodeId node) {
  ++stats_.crashes_observed;
  for (auto& [klass, coordinator] : coordinators_) {
    if (coordinator.home == node && coordinator.has_lease) {
      // The coordinator's memory — and its lease — died with its node.
      coordinator.has_lease = false;
      ++stats_.leases_lost;
    }
    // A crash shrinks the live set, which can also flip quorum for
    // coordinators elsewhere while partitioned.
    ReevaluateLease(&coordinator);
    RestartMeasurement(&coordinator, node);
  }
  // The dead node's agents forget what they last reported; on recovery
  // they report immediately instead of sitting out the change filter.
  for (auto& [key, last] : last_sent_) {
    if (key.second == node) last = LastSent{};
  }
}

void GoalOrientedController::OnNodeRecover(NodeId node) {
  ++stats_.recoveries_observed;
  for (auto& [klass, coordinator] : coordinators_) {
    // A recovery grows the live set; while partitioned, a node rejoining
    // the *other* side can cost this coordinator its majority.
    ReevaluateLease(&coordinator);
    RestartMeasurement(&coordinator, node);
  }
  for (auto& [key, last] : last_sent_) {
    if (key.second == node) last = LastSent{};
  }
}

void GoalOrientedController::OnPartitionChange() {
  ++stats_.partition_changes_observed;
  for (auto& [klass, coordinator] : coordinators_) {
    ReevaluateLease(&coordinator);
    // Whether the reachable set shrank (cut) or widened (heal), the views
    // across the old boundary are stale and every retained measure point
    // described the previous topology.
    RestartMeasurementOver(&coordinator);
  }
  // Agents cannot know which of their reports crossed the boundary before
  // it moved: drop the change filter so everything is re-reported at the
  // next interval.
  for (auto& [key, last] : last_sent_) last = LastSent{};
}

std::optional<std::string> GoalOrientedController::AuditInvariants() const {
  char detail[128];
  for (const auto& [klass, coordinator] : coordinators_) {
    const size_t max_points = system_->num_nodes() + 1;
    if (coordinator.store.size() > max_points) {
      std::snprintf(detail, sizeof(detail),
                    "class %u: measure store holds %zu > N+1 = %zu points",
                    klass, coordinator.store.size(), max_points);
      return std::string(detail);
    }
    const double condition = coordinator.store.ConditionEstimate();
    if (!std::isfinite(condition) || condition < 0.0) {
      std::snprintf(detail, sizeof(detail),
                    "class %u: store condition estimate %g", klass,
                    condition);
      return std::string(detail);
    }
    if (coordinator.has_lease && !HasQuorum(coordinator)) {
      std::snprintf(detail, sizeof(detail),
                    "class %u: lease held at node %u without quorum", klass,
                    coordinator.home);
      return std::string(detail);
    }
  }
  return std::nullopt;
}

double GoalOrientedController::ToleranceFor(ClassId klass) const {
  auto it = coordinators_.find(klass);
  if (it == coordinators_.end()) return 0.0;
  const double goal = system_->spec(klass).goal_rt_ms.value_or(0.0);
  return it->second.tolerance.Tolerance(goal);
}

LpOutcomeCounters GoalOrientedController::LpOutcomes() const {
  LpOutcomeCounters counters;
  counters.optimal = stats_.lp_status_optimal;
  counters.infeasible = stats_.lp_status_infeasible;
  counters.unbounded = stats_.lp_status_unbounded;
  counters.iteration_limit = stats_.lp_status_iteration_limit;
  counters.relaxed_retries = stats_.lp_relaxed_retries;
  return counters;
}

void GoalOrientedController::AccumulateLpStats(const LpOutcomeStats& lp) {
  stats_.lp_status_optimal += lp.optimal;
  stats_.lp_status_infeasible += lp.infeasible;
  stats_.lp_status_unbounded += lp.unbounded;
  stats_.lp_status_iteration_limit += lp.iteration_limit;
  stats_.lp_relaxed_retries += lp.relaxed_retries;
}

void GoalOrientedController::PublishMetrics(obs::Registry* registry) {
  registry->GetCounter("ctrl.reports_sent")->Set(stats_.reports_sent);
  registry->GetCounter("ctrl.checks")->Set(stats_.checks);
  registry->GetCounter("ctrl.violations")->Set(stats_.violations);
  registry->GetCounter("ctrl.lp_optimizations")->Set(stats_.lp_optimizations);
  registry->GetCounter("ctrl.warmup_steps")->Set(stats_.warmup_steps);
  registry->GetCounter("ctrl.allocation_commands")
      ->Set(stats_.allocation_commands);
  registry->GetCounter("ctrl.best_effort_allocations")
      ->Set(stats_.best_effort_allocations);
  registry->GetCounter("ctrl.saturations")->Set(stats_.saturations);
  registry->GetCounter("ctrl.crashes_observed")->Set(stats_.crashes_observed);
  registry->GetCounter("ctrl.recoveries_observed")
      ->Set(stats_.recoveries_observed);
  registry->GetCounter("ctrl.coordinator_failovers")
      ->Set(stats_.coordinator_failovers);
  registry->GetCounter("ctrl.store_resets")->Set(stats_.store_resets);
  registry->GetCounter("ctrl.nonfinite_observations_rejected")
      ->Set(stats_.nonfinite_observations_rejected);
  registry->GetCounter("ctrl.degenerate_fit_skips")
      ->Set(stats_.degenerate_fit_skips);
  registry->GetCounter("ctrl.lp_status.optimal")->Set(stats_.lp_status_optimal);
  registry->GetCounter("ctrl.lp_status.infeasible")
      ->Set(stats_.lp_status_infeasible);
  registry->GetCounter("ctrl.lp_status.unbounded")
      ->Set(stats_.lp_status_unbounded);
  registry->GetCounter("ctrl.lp_status.iteration_limit")
      ->Set(stats_.lp_status_iteration_limit);
  registry->GetCounter("ctrl.lp_relaxed_retries")
      ->Set(stats_.lp_relaxed_retries);
  registry->GetCounter("ctrl.lp_warm_starts")->Set(stats_.lp_warm_starts);
  registry->GetCounter("ctrl.lp_cold_starts")->Set(stats_.lp_cold_starts);
  registry->GetCounter("ctrl.partition_changes_observed")
      ->Set(stats_.partition_changes_observed);
  registry->GetCounter("ctrl.leases_lost")->Set(stats_.leases_lost);
  registry->GetCounter("ctrl.lease_acquisitions")
      ->Set(stats_.lease_acquisitions);
  registry->GetCounter("ctrl.checks_skipped_no_lease")
      ->Set(stats_.checks_skipped_no_lease);
  char name[64];
  for (const auto& [klass, coordinator] : coordinators_) {
    std::snprintf(name, sizeof(name), "class%u.lease.epoch", klass);
    registry->GetGauge(name)->Set(static_cast<double>(coordinator.epoch));
    std::snprintf(name, sizeof(name), "class%u.lease.held", klass);
    registry->GetGauge(name)->Set(coordinator.has_lease ? 1.0 : 0.0);
  }
  for (const auto& [klass, coordinator] : coordinators_) {
    const MeasureStore& store = coordinator.store;
    std::snprintf(name, sizeof(name), "class%u.store.rejected_points", klass);
    registry->GetCounter(name)->Set(store.rejected_points());
    std::snprintf(name, sizeof(name), "class%u.store.outlier_rejections",
                  klass);
    registry->GetCounter(name)->Set(store.outlier_rejections());
    std::snprintf(name, sizeof(name), "class%u.store.condition_resets", klass);
    registry->GetCounter(name)->Set(store.condition_resets());
    std::snprintf(name, sizeof(name), "class%u.store.size", klass);
    registry->GetGauge(name)->Set(static_cast<double>(store.size()));
    std::snprintf(name, sizeof(name), "class%u.store.condition_estimate",
                  klass);
    registry->GetGauge(name)->Set(store.ConditionEstimate());
  }
}

void GoalOrientedController::OnGoalChanged(ClassId klass) {
  auto it = coordinators_.find(klass);
  if (it != coordinators_.end()) it->second.tolerance.OnGoalChanged();
}

bool GoalOrientedController::SignificantChange(const LastSent& last,
                                               double rt, double rate,
                                               uint64_t granted,
                                               uint64_t bound) const {
  if (!last.valid) return true;
  const double threshold = system_->config().report_change_threshold;
  auto moved = [threshold](double now, double before) {
    if (before == 0.0) return now != 0.0;
    return std::fabs(now - before) > threshold * std::fabs(before);
  };
  return moved(rt, last.rt_ms) || moved(rate, last.arrival_rate) ||
         granted != last.granted_bytes || bound != last.bound_bytes;
}

sim::Task<void> GoalOrientedController::DeliverGoalReport(
    Coordinator* coordinator, NodeId from, std::optional<double> rt,
    double rate, uint64_t granted, uint64_t bound) {
  const bool delivered = co_await system_->network().Transfer(
      from, coordinator->home, system_->config().report_msg_bytes,
      net::TrafficClass::kPartitionProtocol);
  if (!delivered) co_return;  // the coordinator keeps its stale view
  if ((rt.has_value() && !std::isfinite(*rt)) || !std::isfinite(rate)) {
    // A corrupt report must not reach the measure store.
    ++stats_.nonfinite_observations_rejected;
    co_return;
  }
  NodeView& view = coordinator->views[from];
  if (rt.has_value()) view.rt_ms = rt;
  view.arrival_rate = rate;
  view.granted_bytes = granted;
  view.bound_bytes = bound;
}

sim::Task<void> GoalOrientedController::DeliverNoGoalReport(
    Coordinator* coordinator, NodeId from, std::optional<double> rt,
    double rate) {
  const bool delivered = co_await system_->network().Transfer(
      from, coordinator->home, system_->config().report_msg_bytes,
      net::TrafficClass::kPartitionProtocol);
  if (!delivered) co_return;
  if ((rt.has_value() && !std::isfinite(*rt)) || !std::isfinite(rate)) {
    ++stats_.nonfinite_observations_rejected;
    co_return;
  }
  if (rt.has_value()) coordinator->nogoal_rt[from] = rt;
  coordinator->nogoal_rate[from] = rate;
}

void GoalOrientedController::OnIntervalEnd(int) {
  // Synchronous (no coroutine suspension): the whole interval rollup and
  // report fan-out is one profile frame.
  obs::ProfileScope profile(obs::Phase::kControllerCheck);
  const SystemConfig& config = system_->config();

  // Phase (a): agents roll up and report on significant change. A dead
  // node has no agents: nothing is sent from it.
  for (const workload::ClassSpec& spec : system_->classes()) {
    for (NodeId i = 0; i < config.num_nodes; ++i) {
      if (!system_->NodeUp(i)) continue;
      const ClusterSystem::Observation& obs =
          system_->observation(spec.id, i);
      const std::optional<double> rt =
          obs.has_rt ? std::optional<double>(obs.mean_rt_ms) : std::nullopt;

      if (spec.id == kNoGoalClass) {
        // No-goal agents feed every goal coordinator (§5a).
        LastSent& last = last_sent_[{spec.id, i}];
        if (!SignificantChange(last, obs.mean_rt_ms, obs.arrival_rate_per_ms,
                               0, 0)) {
          continue;
        }
        last = LastSent{true, obs.mean_rt_ms, obs.arrival_rate_per_ms, 0, 0};
        for (auto& [klass, coordinator] : coordinators_) {
          ++stats_.reports_sent;
          system_->simulator().Spawn(DeliverNoGoalReport(
              &coordinator, i, rt, obs.arrival_rate_per_ms));
        }
        continue;
      }

      auto coordinator_it = coordinators_.find(spec.id);
      if (coordinator_it == coordinators_.end()) continue;
      const uint64_t granted = system_->DedicatedBytes(spec.id, i);
      const uint64_t bound = system_->AvailableFor(spec.id, i);
      LastSent& last = last_sent_[{spec.id, i}];
      if (!SignificantChange(last, obs.mean_rt_ms, obs.arrival_rate_per_ms,
                             granted, bound)) {
        continue;
      }
      last = LastSent{true, obs.mean_rt_ms, obs.arrival_rate_per_ms, granted,
                      bound};
      ++stats_.reports_sent;
      system_->simulator().Spawn(
          DeliverGoalReport(&coordinator_it->second, i, rt,
                            obs.arrival_rate_per_ms, granted, bound));
    }
  }

  // Phases (b)-(e) run on the coordinators shortly afterwards, once the
  // reports have arrived. A coordinator whose home is down (possible only
  // when a full outage left no failover target) cannot run.
  for (auto& [klass, coordinator] : coordinators_) {
    if (!system_->NodeUp(coordinator.home)) continue;
    system_->simulator().Spawn(CoordinatorCheck(&coordinator));
  }
}

std::optional<double> GoalOrientedController::WeightedGoalRt(
    const Coordinator& coordinator) const {
  double weights = 0.0, weighted = 0.0;
  for (const NodeView& view : coordinator.views) {
    if (!view.rt_ms.has_value() || view.arrival_rate <= 0.0) continue;
    weighted += view.arrival_rate * *view.rt_ms;
    weights += view.arrival_rate;
  }
  if (weights <= 0.0) return std::nullopt;
  return weighted / weights;
}

std::optional<double> GoalOrientedController::WeightedNoGoalRt(
    const Coordinator& coordinator) const {
  double weights = 0.0, weighted = 0.0;
  for (size_t i = 0; i < coordinator.nogoal_rt.size(); ++i) {
    if (!coordinator.nogoal_rt[i].has_value() ||
        coordinator.nogoal_rate[i] <= 0.0) {
      continue;
    }
    weighted += coordinator.nogoal_rate[i] * *coordinator.nogoal_rt[i];
    weights += coordinator.nogoal_rate[i];
  }
  if (weights <= 0.0) return std::nullopt;
  return weighted / weights;
}

la::Vector GoalOrientedController::WarmupAllocation(
    Coordinator* coordinator) const {
  // Heuristic of §5b: dedicate a fixed fraction of the available memory,
  // then perturb one rotating node per step so each step yields a new
  // affinely independent measure point (base, base + d*e_0, base + d*e_1,
  // ...).
  const SystemConfig& config = system_->config();
  const uint32_t n = config.num_nodes;
  la::Vector target(n, 0.0);
  const int step = coordinator->warmup_step;
  for (uint32_t i = 0; i < n; ++i) {
    const double bound =
        static_cast<double>(coordinator->views[i].bound_bytes);
    double bytes = config.warmup_fraction * bound;
    if (step > 0 && (static_cast<uint32_t>(step - 1) % n) == i) {
      bytes += config.warmup_perturbation *
               static_cast<double>(config.cache_bytes_per_node);
    }
    target[i] = std::min(bytes, bound);
  }
  return target;
}

sim::Task<void> GoalOrientedController::CoordinatorCheck(
    Coordinator* coordinator) {
  const SystemConfig& config = system_->config();
  co_await system_->simulator().Delay(config.coordinator_check_delay_ms);

  // The home may have died between the interval boundary and this check;
  // its successor starts from fresh state at the next interval.
  if (!system_->NodeUp(coordinator->home)) co_return;

  // Decision log: one record per check, lease-skipped ones included. The
  // RAII appender fires on every co_return path (coroutine locals are
  // destroyed at final suspend), so early exits — no lease, no data,
  // within tolerance, degenerate fit — are logged too; a null sink makes
  // the whole capture a no-op.
  obs::DecisionLog* decision_log = system_->decision_log();
  obs::DecisionRecord record;
  struct RecordAppender {
    obs::DecisionLog* log;
    obs::DecisionRecord* record;
    ~RecordAppender() {
      if (log != nullptr) log->Append(std::move(*record));
    }
  } appender{decision_log, &record};
  if (decision_log != nullptr) {
    record.interval = system_->intervals_completed() - 1;
    record.sim_time_ms = system_->simulator().Now();
    record.klass = static_cast<int>(coordinator->klass);
    record.home = static_cast<int>(coordinator->home);
    record.epoch = coordinator->epoch;
    record.lease_held = coordinator->has_lease;
  }

  // Attainment tracker: one CheckOutcome per check, reported on every
  // co_return path by the same RAII pattern as the decision record. A null
  // (or disabled) tracker makes the whole capture a no-op.
  obs::AttainmentTracker* attainment = system_->attainment();
  if (attainment != nullptr && !attainment->enabled()) attainment = nullptr;
  obs::AttainmentTracker::CheckOutcome check;
  check.klass = coordinator->klass;
  check.lease_held = coordinator->has_lease;
  struct CheckReporter {
    obs::AttainmentTracker* tracker;
    obs::AttainmentTracker::CheckOutcome* outcome;
    ~CheckReporter() {
      if (tracker != nullptr) tracker->RecordCheckOutcome(*outcome);
    }
  } check_reporter{attainment, &check};

  if (!coordinator->has_lease) {
    // Minority-side (or leaseless) static fallback: the last applied grants
    // stay frozen; no check, no LP, no commands until a lease returns.
    ++stats_.checks_skipped_no_lease;
    co_return;
  }

  ++stats_.checks;

  const std::optional<double> rt_k = WeightedGoalRt(*coordinator);
  if (!rt_k.has_value()) co_return;  // no data yet
  if (!std::isfinite(*rt_k)) {
    ++stats_.nonfinite_observations_rejected;
    co_return;
  }
  const double goal = system_->spec(coordinator->klass).goal_rt_ms.value();
  check.observed_rt_ms = *rt_k;
  check.has_observed_rt = true;

  // Phase (b): fold the current measurement into the measure-point store.
  coordinator->tolerance.Observe(*rt_k);
  const std::optional<double> rt_0 = WeightedNoGoalRt(*coordinator);
  la::Vector allocation(config.num_nodes);
  for (uint32_t i = 0; i < config.num_nodes; ++i) {
    allocation[i] = static_cast<double>(coordinator->views[i].granted_bytes);
  }
  if (rt_0.has_value()) {
    // Per-node response times ride along (nodes without fresh data carry
    // their last-reported value), enabling the per-node plane fits of the
    // variance objective.
    la::Vector rt_per_node(config.num_nodes);
    for (uint32_t i = 0; i < config.num_nodes; ++i) {
      rt_per_node[i] = coordinator->views[i].rt_ms.value_or(*rt_k);
    }
    if (std::isfinite(*rt_0) && AllFinite(allocation) &&
        AllFinite(rt_per_node)) {
      const MeasureStore::ObserveOutcome outcome =
          coordinator->store.ObserveDetailed(allocation, *rt_k, *rt_0,
                                             rt_per_node);
      if (decision_log != nullptr) {
        record.measure_outcome = MeasureStore::OutcomeName(outcome);
      }
    } else {
      ++stats_.nonfinite_observations_rejected;
    }
  }
  if (decision_log != nullptr) {
    record.observed_rt_k = *rt_k;
    record.has_observed_rt_0 = rt_0.has_value();
    record.observed_rt_0 = rt_0.value_or(0.0);
    record.goal_rt = goal;
    record.measured_allocation = allocation;
    record.condition_estimate = coordinator->store.ConditionEstimate();
    record.store_ready = coordinator->store.ready();
    record.store_size = static_cast<int>(coordinator->store.size());
  }

  // Phase (c): check against the goal with the tolerance band. Being too
  // slow always triggers re-partitioning; being faster than the goal only
  // matters when the class actually holds dedicated buffer that the no-goal
  // class could reclaim.
  const double delta = coordinator->tolerance.Tolerance(goal);
  if (decision_log != nullptr) record.tolerance_delta = delta;
  const bool too_slow = *rt_k > goal + delta;
  const bool too_fast = *rt_k < goal - delta;
  check.too_slow = too_slow;
  check.too_fast = too_fast;
  if (!too_slow && !too_fast) co_return;
  uint64_t current_total = 0;
  for (const NodeView& view : coordinator->views) {
    current_total += view.granted_bytes;
  }
  if (too_fast && current_total == 0) co_return;
  ++stats_.violations;
  if (too_slow && attainment != nullptr) {
    // Goal miss: join the last interval's budget attribution with the
    // cluster's active fault state into a root-cause card, mirrored into
    // the decision record so it replays from the log.
    const sim::FaultInjector& injector = system_->fault_injector();
    obs::AttainmentTracker::FaultState faults;
    faults.nodes_down = config.num_nodes - injector.nodes_up();
    for (uint32_t i = 0; i < config.num_nodes; ++i) {
      if (injector.IsDegraded(i)) ++faults.nodes_degraded;
    }
    faults.partitioned = injector.Partitioned();
    faults.partition_epoch = injector.partition_epoch();
    faults.corruptions_since_last_check = attainment->NoteCorruptions(
        coordinator->klass, injector.stats().corruptions);
    const obs::AttainmentTracker::MissCard& card = attainment->RecordMiss(
        coordinator->klass, system_->intervals_completed() - 1,
        system_->simulator().Now(), *rt_k, goal, delta, faults);
    if (decision_log != nullptr) {
      record.miss_card = true;
      record.miss_dominant_phase = obs::BudgetPhaseName(card.dominant_phase);
      record.miss_dominant_ms = card.dominant_ms;
      record.miss_phase_ms.assign(card.phase_mean_ms,
                                  card.phase_mean_ms + obs::kNumBudgetPhases);
      record.miss_baseline_rt = card.baseline_rt_ms;
      record.miss_deviation_ms = card.deviation_ms;
      record.miss_nodes_down = card.nodes_down;
      record.miss_nodes_degraded = card.nodes_degraded;
      record.miss_partitioned = card.partitioned;
      record.miss_corruptions = card.corruptions;
    }
  }
  coordinator->consecutive_slow = too_slow ? coordinator->consecutive_slow + 1
                                           : 0;

  // Escalation: the fitted hyperplane is a *global* linear model, but the
  // real response curve need not be globally linear (our simulator exposes
  // a non-monotone region at small dedications; see EXPERIMENTS.md). If
  // several LP steps in a row failed to get the class below goal, fall
  // back on the §3 monotonicity assumption and saturate the allocation
  // outright — the subsequent too-fast checks then walk back down the
  // monotone branch under the shrink clamp. The jump skips damping: it can
  // only speed the goal class up.
  if (coordinator->consecutive_slow >= kSaturateAfterSlowChecks) {
    coordinator->consecutive_slow = 0;
    ++stats_.saturations;
    la::Vector full(config.num_nodes);
    for (uint32_t i = 0; i < config.num_nodes; ++i) {
      full[i] = static_cast<double>(coordinator->views[i].bound_bytes);
    }
    co_await SendAllocations(coordinator, std::move(full),
                             decision_log != nullptr ? &record : nullptr);
    co_return;
  }

  // Phase (d): compute a new partitioning.
  la::Vector target;
  bool from_warmup = false;
  if (!coordinator->store.ready()) {
    from_warmup = true;
    if (too_slow) {
      target = WarmupAllocation(coordinator);
    } else {
      // Too fast during warm-up: release half of the dedicated buffer; the
      // halving both frees memory for the no-goal class and yields a fresh
      // measure point.
      target = allocation;
      for (double& bytes : target) bytes *= 0.5;
    }
    ++coordinator->warmup_step;
    ++stats_.warmup_steps;
  } else {
    OptimizerInput input;
    std::optional<MeasureStore::Planes> planes =
        coordinator->store.FitPlanes();
    if (!planes.has_value() || !AllFinite(planes->grad_k) ||
        !std::isfinite(planes->intercept_k) || !AllFinite(planes->grad_0) ||
        !std::isfinite(planes->intercept_0)) {
      // A degenerate or numerically broken fit must not steer the
      // partitioning: keep the previous allocation and let fresh measure
      // points repair the model.
      ++stats_.degenerate_fit_skips;
      co_return;
    }
    input.goal_rt = goal;
    // The optimization runs over the live nodes only: a dead node's upper
    // bound is 0, so the LP cannot place buffer there.
    input.upper_bounds.resize(config.num_nodes);
    for (uint32_t i = 0; i < config.num_nodes; ++i) {
      input.upper_bounds[i] =
          system_->NodeUp(i)
              ? static_cast<double>(coordinator->views[i].bound_bytes)
              : 0.0;
    }
    if (decision_log != nullptr) {
      record.has_planes = true;
      record.grad_k = planes->grad_k;
      record.intercept_k = planes->intercept_k;
      record.grad_0 = planes->grad_0;
      record.intercept_0 = planes->intercept_0;
      record.upper_bounds = input.upper_bounds;
    }

    OptimizerMode mode;
    int lp_relaxed_rung = -1;
    std::optional<std::vector<MeasureStore::NodePlane>> node_planes;
    if (config.objective == PartitioningObjective::kMinimizeNodeVariance) {
      node_planes = coordinator->store.FitNodePlanes();
    }
    if (node_planes.has_value()) {
      // §8 objective: minimize the per-node response-time dispersion.
      VarianceOptimizerInput variance_input;
      variance_input.node_planes = std::move(*node_planes);
      variance_input.mean_grad = planes->grad_k;
      variance_input.mean_intercept = planes->intercept_k;
      variance_input.goal_rt = goal;
      variance_input.upper_bounds = input.upper_bounds;
      variance_input.lp_backend = config.lp_backend;
      VarianceOptimizerOutput output =
          SolveVariancePartitioning(variance_input);
      target = std::move(output.allocation);
      mode = output.mode;
      AccumulateLpStats(output.lp_stats);
      ++stats_.lp_cold_starts;
      if (decision_log != nullptr) {
        record.lp_run = true;
        record.lp_mode = OptimizerModeName(mode);
        record.relaxed_goal_rt = output.relaxed_goal_rt;
        record.lp_optimal = output.lp_stats.optimal;
        record.lp_infeasible = output.lp_stats.infeasible;
        record.lp_unbounded = output.lp_stats.unbounded;
        record.lp_iteration_limit = output.lp_stats.iteration_limit;
        record.lp_relaxed_retries = output.lp_stats.relaxed_retries;
        record.lp_allocation = target;
      }
    } else {
      input.planes = std::move(*planes);
      input.lp_backend = config.lp_backend;
      // Warm-start from the previous interval's basis when one survived
      // (same topology, same epoch). The solver validates it against the
      // re-posed program and silently cold-starts on a mismatch.
      const bool warm = !coordinator->lp_warm_basis.empty();
      if (warm) {
        input.warm = &coordinator->lp_warm_basis;
        ++stats_.lp_warm_starts;
      } else {
        ++stats_.lp_cold_starts;
      }
      OptimizerOutput output = SolvePartitioning(input);
      target = std::move(output.allocation);
      mode = output.mode;
      lp_relaxed_rung = output.relaxed_rung;
      AccumulateLpStats(output.lp_stats);
      if (decision_log != nullptr) {
        record.lp_run = true;
        record.lp_mode = OptimizerModeName(mode);
        record.relaxed_rung = output.relaxed_rung;
        record.relaxed_goal_rt = output.relaxed_goal_rt;
        record.lp_optimal = output.lp_stats.optimal;
        record.lp_infeasible = output.lp_stats.infeasible;
        record.lp_unbounded = output.lp_stats.unbounded;
        record.lp_iteration_limit = output.lp_stats.iteration_limit;
        record.lp_relaxed_retries = output.lp_stats.relaxed_retries;
        record.lp_warm = warm;
        record.lp_warm_basis = coordinator->lp_warm_basis.ToText();
        record.lp_allocation = target;
      }
      coordinator->lp_warm_basis = std::move(output.basis);
    }
    ++stats_.lp_optimizations;
    check.lp_run = true;
    check.relaxed_rung = lp_relaxed_rung;
    if (attainment != nullptr && too_slow) {
      attainment->AnnotateLastMiss(coordinator->klass, /*lp_run=*/true,
                                   OptimizerModeName(mode), lp_relaxed_rung);
    }
    if (mode == OptimizerMode::kBestEffort) {
      ++stats_.best_effort_allocations;
    }
    if (too_fast) {
      // The goal is met with slack: the only admissible move is to release
      // memory to the no-goal class. A noisy fit (near-collinear measure
      // points after convergence) can otherwise point the LP towards
      // *growing* the allocation. Clamp to a shrink, and force progress if
      // the LP proposes none.
      double target_total = 0.0, current_total_d = 0.0;
      for (uint32_t i = 0; i < config.num_nodes; ++i) {
        target[i] = std::min(target[i], allocation[i]);
        target_total += target[i];
        current_total_d += allocation[i];
      }
      if (target_total >= current_total_d - 0.5) {
        for (double& bytes : target) bytes *= 0.5;
      }
    } else {
      // Too slow: by the §3 monotonicity assumption, releasing buffer
      // cannot help, so the LP may rebalance and grow but never shrink a
      // node's budget (a transient-polluted fit would otherwise release
      // memory exactly when the class needs it most).
      for (uint32_t i = 0; i < config.num_nodes; ++i) {
        target[i] = std::max(target[i], allocation[i]);
      }
    }
    MEMGOAL_LOG_DEBUG("class %u: rt=%.3f goal=%.3f delta=%.3f -> LP mode=%d",
                      coordinator->klass, *rt_k, goal, delta,
                      static_cast<int>(mode));
  }

  // Damp the step: an optimization may only move each node's budget by a
  // bounded amount per interval, so one transient-polluted fit cannot swing
  // the partitioning wall to wall.
  // Warm-up steps are exempt: they are deliberate exploration whose
  // perturbation structure guarantees affinely independent measure points —
  // clamping them would collapse every probe onto the same line.
  if (!from_warmup) {
    const double grow_step = config.max_step_fraction *
                             static_cast<double>(config.cache_bytes_per_node);
    const double release_step =
        config.release_step_fraction *
        static_cast<double>(config.cache_bytes_per_node);
    for (uint32_t i = 0; i < config.num_nodes; ++i) {
      const double granted =
          static_cast<double>(coordinator->views[i].granted_bytes);
      target[i] =
          std::clamp(target[i], granted - release_step, granted + grow_step);
    }
  }

  // Round to whole frames (what the pools can actually hold) and detect
  // stagnation: near-collinear measure points can make the fitted plane so
  // steep that the LP proposes sub-page moves which round back to the
  // current partitioning — while the goal stays violated. Break the
  // deadlock with an exploratory step in the violation's direction, which
  // also contributes a fresh affinely independent measure point (the same
  // requirement §5b imposes on warm-up steps).
  const uint64_t page = config.page_bytes;
  bool stagnant = true;
  for (uint32_t i = 0; i < config.num_nodes; ++i) {
    target[i] = std::floor(std::max(0.0, target[i]) /
                           static_cast<double>(page)) *
                static_cast<double>(page);
    target[i] = std::min(
        target[i], static_cast<double>(coordinator->views[i].bound_bytes));
    if (static_cast<uint64_t>(target[i]) !=
        coordinator->views[i].granted_bytes) {
      stagnant = false;
    }
  }
  if (stagnant) {
    const double step_bytes = config.warmup_perturbation *
                              static_cast<double>(config.cache_bytes_per_node);
    if (too_slow) {
      // Grow on a rotating node with headroom.
      for (uint32_t attempt = 0; attempt < config.num_nodes; ++attempt) {
        const uint32_t i =
            static_cast<uint32_t>(coordinator->warmup_step++) %
            config.num_nodes;
        const double bound =
            static_cast<double>(coordinator->views[i].bound_bytes);
        if (target[i] + static_cast<double>(page) > bound) continue;
        target[i] = std::min(bound, target[i] + step_bytes);
        break;
      }
    } else {
      // Shrink the largest allocation.
      uint32_t largest = 0;
      for (uint32_t i = 1; i < config.num_nodes; ++i) {
        if (target[i] > target[largest]) largest = i;
      }
      target[largest] = std::max(0.0, target[largest] - step_bytes);
    }
  }

  // Phase (e): ship the allocation to the agents.
  co_await SendAllocations(coordinator, std::move(target),
                           decision_log != nullptr ? &record : nullptr);
}

sim::Task<void> GoalOrientedController::SendAllocations(
    Coordinator* coordinator, la::Vector target,
    obs::DecisionRecord* record) {
  const SystemConfig& config = system_->config();
  const uint64_t page = config.page_bytes;
  // Captured at entry: messages already in flight keep coming from the
  // node that sent them even if the coordinator is deposed mid-fan-out,
  // and every grant carries the epoch of the lease that computed it.
  const NodeId origin = coordinator->home;
  const uint64_t epoch = coordinator->epoch;
  if (record != nullptr) {
    record->shipped_allocation.assign(config.num_nodes, 0.0);
    record->granted_allocation.assign(config.num_nodes, 0.0);
  }
  for (uint32_t i = 0; i < config.num_nodes; ++i) {
    // No command is sent to a dead node; its budget restarts from zero
    // after recovery anyway. Unreachable nodes are NOT skipped: the
    // coordinator cannot know about a fresh cut, so the command is sent
    // and the network drops it at the boundary.
    if (!system_->NodeUp(i)) continue;
    // Round down to whole frames so coordinator bookkeeping matches the
    // pool's frame-granular capacity.
    uint64_t bytes = static_cast<uint64_t>(std::max(0.0, target[i]));
    bytes = bytes / page * page;
    if (record != nullptr) {
      record->shipped_allocation[i] = static_cast<double>(bytes);
    }
    if (bytes == coordinator->views[i].granted_bytes) continue;
    ++stats_.allocation_commands;
    const bool command_delivered = co_await system_->network().Transfer(
        origin, i, config.alloc_msg_bytes,
        net::TrafficClass::kPartitionProtocol);
    // A lost command never reaches the agent; a lost ack leaves the
    // coordinator's view stale. Both are repaired by the next agent report
    // (the feedback design of §5e).
    if (!command_delivered) continue;
    const ClusterSystem::GrantOutcome outcome =
        system_->ApplyAllocationFenced(coordinator->klass, i, bytes, epoch);
    if (outcome.rejected_stale_epoch) continue;  // the agent fenced us out
    const uint64_t granted = outcome.granted;
    const bool ack_delivered = co_await system_->network().Transfer(
        i, origin, config.ack_msg_bytes,
        net::TrafficClass::kPartitionProtocol);
    if (!ack_delivered) continue;
    // A deposed coordinator must not touch the views: they now belong to
    // the new lease holder.
    if (coordinator->epoch != epoch) continue;
    coordinator->views[i].granted_bytes = granted;
    coordinator->views[i].bound_bytes =
        system_->AvailableFor(coordinator->klass, i);
    last_sent_[{coordinator->klass, i}].granted_bytes = granted;
  }
  if (record != nullptr) {
    for (uint32_t i = 0; i < config.num_nodes; ++i) {
      record->granted_allocation[i] =
          static_cast<double>(coordinator->views[i].granted_bytes);
    }
  }
}

}  // namespace memgoal::core
