#ifndef MEMGOAL_CORE_MEASURE_H_
#define MEMGOAL_CORE_MEASURE_H_

#include <cstdint>
#include <deque>
#include <optional>
#include <vector>

#include "la/matrix.h"
#include "la/row_replace_inverse.h"

namespace memgoal::core {

/// Per-class store of the N+1 most recent affinely independent measure
/// points (§5b): each point pairs a buffer allocation vector
/// (LM_k,1 ... LM_k,N) with the weighted mean response times it produced
/// for the goal class and the no-goal class.
///
/// Affine independence of the points {p_1..p_{N+1}} is equivalent to
/// nonsingularity of the (N+1)x(N+1) matrix B with rows [p_j^T, 1], which
/// is exactly the system matrix of the hyperplane fit
///     B * [gradient; intercept] = y.
/// The store therefore maintains B's inverse with the incremental Gauss /
/// Sherman–Morrison row-replacement algorithm: the independence test for a
/// new point is an O(N) denominator probe, a committed replacement is
/// O(N^2), and each hyperplane fit is an O(N^2) inverse-vector product —
/// the complexities reported in the paper's Table 1.
///
/// Two robustness guards protect the fit from gray failures. First, an
/// incoming measurement whose response times sit far outside the recent
/// sample window (robust median/MAD z-score) is rejected before it can
/// poison a hyperplane — a node serving pages 50× slower produces exactly
/// such excursions. Rejected samples still enter the window, so a genuine
/// sustained level shift re-centers the median within half a window and is
/// accepted from then on. Second, a candidate row replacement that would
/// push the system matrix's condition estimate past a sanity limit is
/// rolled back before it is committed — past that limit the fit would
/// amplify measurement noise into nonsense gradients — and the next-oldest
/// slot is probed instead; only if the rollback itself fails (the
/// incrementally maintained inverse has drifted until the basis no longer
/// inverts exactly) does the store reset and re-accumulate fresh points.
class MeasureStore {
 public:
  /// Allocations closer than this (bytes, infinity norm) count as the same
  /// partitioning: the newer measurement then refreshes the existing
  /// point's response times instead of adding a point.
  static constexpr double kSameAllocationTolerance = 0.5;

  /// Robust z-score (|x - median| / (1.4826·MAD)) beyond which a
  /// measurement is rejected as an outlier. 3.5 is the customary Hampel
  /// threshold: ~4.7σ under normality, loose enough that ordinary queueing
  /// noise passes.
  static constexpr double kOutlierZ = 3.5;
  /// Size of the sliding sample window the median/MAD run over.
  static constexpr size_t kOutlierWindow = 16;
  /// No rejection until this many samples are in the window (early medians
  /// are too noisy to judge against).
  static constexpr size_t kOutlierMinSamples = 8;
  /// Condition-estimate limit of the measure-point matrix; a committed
  /// update pushing ‖B‖∞·‖B⁻¹‖∞ past this forces a store reset.
  static constexpr double kConditionResetLimit = 1e12;
  /// Oldest-first replacement slots probed per observation on a full store.
  /// Larger than any committed scenario's store (N+1 ≤ 13), so behavior is
  /// unchanged there; at 256 nodes it bounds the per-observation worst case
  /// at kMaxReplaceProbes rank-one updates instead of N+1.
  static constexpr size_t kMaxReplaceProbes = 32;

  explicit MeasureStore(size_t num_nodes);

  /// What happened to one observed measurement (decision-log vocabulary).
  enum class ObserveOutcome {
    /// Entered the store as a new point (warm-up append or committed
    /// replacement of the oldest compatible slot).
    kAccepted,
    /// Matched a stored allocation; refreshed that point's response times.
    kRefreshed,
    /// Rejected by the median/MAD outlier filter.
    kOutlier,
    /// Every candidate replacement was affinely dependent or would have
    /// left the basis ill-conditioned; the store kept its old points.
    kRejectedDependent,
    /// The maintained inverse had drifted unusably; the store reset and the
    /// measurement was dropped with it.
    kConditionReset,
  };

  static const char* OutcomeName(ObserveOutcome outcome);

  /// Records the measurement of one observation interval. `allocation` is
  /// the class's current per-node dedicated buffer vector (bytes); rt_k and
  /// rt_0 are the weighted mean response times of the goal class and of the
  /// no-goal class under that allocation.
  ObserveOutcome Observe(const la::Vector& allocation, double rt_k,
                         double rt_0);

  /// Like Observe, but additionally records the goal class's *per-node*
  /// response times (size N), enabling per-node plane fits for the §8
  /// variance-aware objective. Nodes without fresh data should carry the
  /// coordinator's last-known value.
  ObserveOutcome ObserveDetailed(const la::Vector& allocation, double rt_k,
                                 double rt_0, const la::Vector& rt_per_node);

  /// True once N+1 affinely independent points are held, i.e. hyperplane
  /// fits are possible.
  bool ready() const { return inverse_.initialized(); }

  size_t size() const { return entries_.size(); }
  size_t num_nodes() const { return num_nodes_; }

  /// Fitted approximation hyperplanes (equations 4 and 9):
  ///   RT_k(LM) = grad_k . LM + intercept_k
  ///   RT_0(LM) = grad_0 . LM + intercept_0
  struct Planes {
    la::Vector grad_k;
    double intercept_k = 0.0;
    la::Vector grad_0;
    double intercept_0 = 0.0;
  };

  /// Solves the two fits against the maintained inverse; nullopt until
  /// ready().
  std::optional<Planes> FitPlanes() const;

  /// One per-node approximation hyperplane RT_k,i(LM) = grad . LM + c
  /// (equation 3's local response-time planes).
  struct NodePlane {
    la::Vector grad;
    double intercept = 0.0;
  };

  /// Fits one plane per node from the per-node response times recorded via
  /// ObserveDetailed. nullopt until ready() or if any retained point lacks
  /// per-node data.
  std::optional<std::vector<NodePlane>> FitNodePlanes() const;

  /// Discards every measure point and the maintained inverse; the store
  /// becomes not-ready and must re-accumulate points. Used when a node
  /// crash or recovery invalidates all previous measurements (the system
  /// the points described no longer exists).
  void Reset();

  /// Restricts the fit to the given (sorted) node-index subset and discards
  /// every point. With `a` active nodes the store becomes ready after a+1
  /// affinely independent points *in the active subspace*; fitted gradients
  /// carry 0 for inactive nodes. This is how the controller shrinks its
  /// model to the live nodes during an outage: a dead node's allocation is
  /// pinned at 0, so full-dimension affine independence is unreachable.
  /// An empty subset leaves the store permanently not-ready.
  void SetActiveNodes(std::vector<size_t> active);
  const std::vector<size_t>& active_nodes() const { return active_; }

  /// Number of candidate points rejected because every replacement would
  /// have made the point set affinely dependent (tests/metrics).
  uint64_t rejected_points() const { return rejected_points_; }

  /// Number of measurements rejected by the median/MAD outlier filter.
  uint64_t outlier_rejections() const { return outlier_rejections_; }

  /// Number of forced resets triggered by the condition-estimate guard.
  uint64_t condition_resets() const { return condition_resets_; }

  /// Condition estimate ‖B‖∞·‖B⁻¹‖∞ of the current measure-point matrix;
  /// 0 until ready().
  double ConditionEstimate() const;

 private:
  struct Entry {
    la::Vector allocation;
    double rt_k = 0.0;
    double rt_0 = 0.0;
    la::Vector rt_per_node;  // empty unless recorded via ObserveDetailed
    uint64_t seq = 0;        // recency: larger is newer
  };

  /// Projects an allocation onto the active coordinates and appends the
  /// affine 1, i.e. one row of the fit's system matrix B.
  la::Vector RowOf(const la::Vector& allocation) const;

  // Index of the entry whose allocation matches, or npos.
  size_t FindMatching(const la::Vector& allocation) const;

  // Attempts to (re)initialize the inverse from the current entries.
  void TryInitialize();

  // True if (rt_k, rt_0) is a robust outlier against the sliding windows.
  // Always absorbs the sample into the windows afterwards.
  bool IsOutlier(double rt_k, double rt_0);

  // Resets the store if the maintained inverse drifted ill-conditioned.
  void MaybeConditionReset();

  // Undoes an uncommitted replacement of `slot` — first via the exact
  // rank-one reverse update, then by rebuilding from the retained entries.
  // False if the basis cannot be recovered either way.
  bool RestoreInverse(size_t slot);

  size_t num_nodes_;
  std::vector<size_t> active_;  // sorted node indices the fit runs over
  std::vector<Entry> entries_;  // slot i corresponds to row i of B
  la::RowReplaceInverse inverse_;
  uint64_t next_seq_ = 0;
  uint64_t rejected_points_ = 0;
  uint64_t outlier_rejections_ = 0;
  uint64_t condition_resets_ = 0;
  std::deque<double> rt_k_window_;  // recent goal-class samples
  std::deque<double> rt_0_window_;  // recent no-goal samples
};

}  // namespace memgoal::core

#endif  // MEMGOAL_CORE_MEASURE_H_
