#include "core/variance_optimizer.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "la/simplex.h"

namespace memgoal::core {

namespace {

// Builds and solves the LP over variables [x_0..x_{n-1}, t_0..t_{n-1}].
la::SimplexResult SolveLp(const VarianceOptimizerInput& input, bool equality,
                          double goal_rt, LpOutcomeStats* stats) {
  const size_t n = input.upper_bounds.size();
  la::SimplexSolver solver(2 * n, input.lp_backend);

  la::Vector objective(2 * n, 0.0);
  for (size_t i = 0; i < n; ++i) objective[n + i] = 1.0;
  solver.SetObjective(objective);

  // d_i(x) = RT_i(x) - mu(x) is linear: gradient g_i - (1/n) sum_j g_j,
  // intercept c_i - (1/n) sum_j c_j.
  la::Vector mean_of_grads(n, 0.0);
  double mean_of_intercepts = 0.0;
  for (const MeasureStore::NodePlane& plane : input.node_planes) {
    la::Axpy(1.0 / static_cast<double>(n), plane.grad, &mean_of_grads);
    mean_of_intercepts +=
        plane.intercept / static_cast<double>(n);
  }
  for (size_t i = 0; i < n; ++i) {
    const MeasureStore::NodePlane& plane = input.node_planes[i];
    la::Vector row(2 * n, 0.0);
    double intercept_diff = plane.intercept - mean_of_intercepts;
    for (size_t j = 0; j < n; ++j) {
      row[j] = plane.grad[j] - mean_of_grads[j];
    }
    // t_i >= d_i(x):   d_grad . x - t_i <= -d_intercept
    row[n + i] = -1.0;
    solver.AddLe(row, -intercept_diff);
    // t_i >= -d_i(x): -d_grad . x - t_i <= d_intercept
    for (size_t j = 0; j < n; ++j) row[j] = -row[j];
    solver.AddLe(row, intercept_diff);
  }

  la::Vector goal_row(2 * n, 0.0);
  for (size_t j = 0; j < n; ++j) goal_row[j] = input.mean_grad[j];
  const double rhs = goal_rt - input.mean_intercept;
  if (equality) {
    solver.AddEq(goal_row, rhs);
  } else {
    solver.AddLe(goal_row, rhs);
  }
  for (size_t j = 0; j < n; ++j) {
    solver.SetUpperBound(j, input.upper_bounds[j]);
  }
  la::SimplexResult result = solver.Solve();
  CountLpOutcome(result.status, stats);
  return result;
}

}  // namespace

VarianceOptimizerOutput SolveVariancePartitioning(
    const VarianceOptimizerInput& input) {
  const size_t n = input.upper_bounds.size();
  MEMGOAL_CHECK(n > 0);
  MEMGOAL_CHECK(input.node_planes.size() == n);
  MEMGOAL_CHECK(input.mean_grad.size() == n);
  for (const MeasureStore::NodePlane& plane : input.node_planes) {
    MEMGOAL_CHECK(plane.grad.size() == n);
  }

  VarianceOptimizerOutput output;
  bool solved = false;
  la::SimplexResult lp =
      SolveLp(input, /*equality=*/true, input.goal_rt, &output.lp_stats);
  if (lp.status == la::SimplexStatus::kOptimal) {
    output.mode = OptimizerMode::kGoalEquality;
    solved = true;
  } else {
    lp = SolveLp(input, /*equality=*/false, input.goal_rt, &output.lp_stats);
    if (lp.status == la::SimplexStatus::kOptimal) {
      output.mode = OptimizerMode::kGoalInequality;
      solved = true;
    }
  }
  if (!solved) {
    // Same relaxed-goal ladder as SolvePartitioning before saturating.
    for (double rho : kGoalRelaxationLadder) {
      ++output.lp_stats.relaxed_retries;
      const double relaxed = input.goal_rt * (1.0 + rho);
      lp = SolveLp(input, /*equality=*/false, relaxed, &output.lp_stats);
      if (lp.status == la::SimplexStatus::kOptimal) {
        output.mode = OptimizerMode::kGoalRelaxed;
        output.relaxed_goal_rt = relaxed;
        solved = true;
        break;
      }
    }
  }
  if (solved) {
    output.allocation.assign(lp.x.begin(),
                             lp.x.begin() + static_cast<ptrdiff_t>(n));
  } else {
    // Goal unreachable per the fits: saturate, as in SolvePartitioning.
    output.mode = OptimizerMode::kBestEffort;
    output.allocation = input.upper_bounds;
  }
  // Snap-to-bound within relative LP tolerance, then clamp — same
  // normalization as SolvePartitioning so both backends agree bit-for-bit
  // after the controller's page rounding.
  for (size_t i = 0; i < n; ++i) {
    const double ub = input.upper_bounds[i];
    const double snap = 1e-9 * std::max(1.0, ub);
    double v = output.allocation[i];
    if (std::fabs(v - ub) <= snap) {
      v = ub;
    } else if (std::fabs(v) <= snap) {
      v = 0.0;
    }
    output.allocation[i] = std::clamp(v, 0.0, ub);
  }

  output.predicted_rt_per_node.resize(n);
  double mean = 0.0;
  for (size_t i = 0; i < n; ++i) {
    output.predicted_rt_per_node[i] =
        la::Dot(input.node_planes[i].grad, output.allocation) +
        input.node_planes[i].intercept;
    mean += output.predicted_rt_per_node[i] / static_cast<double>(n);
  }
  output.predicted_mean_rt = mean;
  double mad = 0.0;
  for (size_t i = 0; i < n; ++i) {
    mad += std::fabs(output.predicted_rt_per_node[i] - mean) /
           static_cast<double>(n);
  }
  output.predicted_mad_rt = mad;
  return output;
}

}  // namespace memgoal::core
