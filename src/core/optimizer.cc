#include "core/optimizer.h"

#include <cmath>
#include <iterator>

#include "common/check.h"
#include "la/simplex.h"

namespace memgoal::core {

namespace {

double PredictRt(const la::Vector& grad, double intercept,
                 const la::Vector& x) {
  return la::Dot(grad, x) + intercept;
}

la::SimplexResult SolveLp(const OptimizerInput& input, bool equality,
                          double goal_rt, const la::SimplexBasis* warm,
                          LpOutcomeStats* stats) {
  const size_t n = input.upper_bounds.size();
  la::SimplexSolver solver(n, input.lp_backend);
  solver.SetObjective(input.planes.grad_0);
  const double rhs = goal_rt - input.planes.intercept_k;
  if (equality) {
    solver.AddEq(input.planes.grad_k, rhs);
  } else {
    solver.AddLe(input.planes.grad_k, rhs);
  }
  for (size_t i = 0; i < n; ++i) {
    solver.SetUpperBound(i, input.upper_bounds[i]);
  }
  la::SimplexResult result = solver.Solve(warm);
  CountLpOutcome(result.status, stats);
  return result;
}

}  // namespace

OptimizerOutput SolvePartitioning(const OptimizerInput& input) {
  const size_t n = input.upper_bounds.size();
  MEMGOAL_CHECK(n > 0);
  MEMGOAL_CHECK(input.planes.grad_k.size() == n);
  MEMGOAL_CHECK(input.planes.grad_0.size() == n);

  OptimizerOutput output;

  la::SimplexResult lp = SolveLp(input, /*equality=*/true, input.goal_rt,
                                 input.warm, &output.lp_stats);
  if (lp.status == la::SimplexStatus::kOptimal) {
    output.mode = OptimizerMode::kGoalEquality;
    output.allocation = std::move(lp.x);
    output.basis = std::move(lp.basis);
  } else {
    lp = SolveLp(input, /*equality=*/false, input.goal_rt, /*warm=*/nullptr,
                 &output.lp_stats);
    if (lp.status == la::SimplexStatus::kOptimal) {
      output.mode = OptimizerMode::kGoalInequality;
      output.allocation = std::move(lp.x);
      output.basis = std::move(lp.basis);
    }
  }
  if (output.allocation.empty()) {
    // Inequality infeasible: retry with proportionally relaxed goals
    // before giving up, so a transiently pessimistic fit (e.g. points
    // polluted by a gray-failure episode) still yields a best *aimed*
    // allocation rather than silently keeping the stale one.
    for (size_t rung = 0; rung < std::size(kGoalRelaxationLadder); ++rung) {
      ++output.lp_stats.relaxed_retries;
      const double relaxed =
          input.goal_rt * (1.0 + kGoalRelaxationLadder[rung]);
      lp = SolveLp(input, /*equality=*/false, relaxed, /*warm=*/nullptr,
                   &output.lp_stats);
      if (lp.status == la::SimplexStatus::kOptimal) {
        output.mode = OptimizerMode::kGoalRelaxed;
        output.relaxed_goal_rt = relaxed;
        output.relaxed_rung = static_cast<int>(rung);
        output.allocation = std::move(lp.x);
        output.basis = std::move(lp.basis);
        break;
      }
    }
  }
  if (output.allocation.empty()) {
    // Goal unreachable within bounds according to the fitted plane. The
    // fit may well be stale or noisy here (points collected around a
    // stuck allocation are nearly collinear), so fall back on the paper's
    // §3 monotonicity assumption — more dedicated buffer never hurts the
    // class — and allocate everything available. The feedback loop
    // revisits the decision with fresh measurements next interval.
    output.mode = OptimizerMode::kBestEffort;
    output.allocation = input.upper_bounds;
  }

  // Snap values within relative LP tolerance of a bound exactly onto it,
  // then clamp. Both backends place optima at the same vertices; the snap
  // erases their (sub-tolerance) arithmetic differences so the controller's
  // page rounding downstream sees identical allocations.
  for (size_t i = 0; i < n; ++i) {
    const double ub = input.upper_bounds[i];
    const double snap = 1e-9 * std::max(1.0, ub);
    double v = output.allocation[i];
    if (std::fabs(v - ub) <= snap) {
      v = ub;
    } else if (std::fabs(v) <= snap) {
      v = 0.0;
    }
    output.allocation[i] = std::min(std::max(v, 0.0), ub);
  }
  output.predicted_rt_k =
      PredictRt(input.planes.grad_k, input.planes.intercept_k,
                output.allocation);
  output.predicted_rt_0 =
      PredictRt(input.planes.grad_0, input.planes.intercept_0,
                output.allocation);
  return output;
}

}  // namespace memgoal::core
