#ifndef MEMGOAL_CORE_SYSTEM_AUDITS_H_
#define MEMGOAL_CORE_SYSTEM_AUDITS_H_

#include "sim/invariant_auditor.h"

namespace memgoal::core {

class ClusterSystem;

/// Registers the standard system-wide invariant checks on `auditor`, all
/// reading `system` live through captured pointers:
///
///   - directory_copy_accounting: a page is registered at a node in the
///     directory iff the node's cache actually holds it (both directions —
///     ghosts and unregistered residents are each a distinct bug class).
///   - allocation_capacity: per node, the dedicated budgets granted across
///     goal classes never exceed the node's physical cache.
///   - epoch_fence: no allocation carrying a stale coordinator epoch was
///     ever applied (a deposed coordinator's writes must bounce).
///   - resource_conservation: every CPU, disk and the shared network medium
///     holds 0 <= in_use <= capacity, and nobody queues while units idle.
///   - controller_invariants: the controller's own self-audit
///     (measure-store sanity, lease-implies-quorum, ...).
///   - stale_hints_after_heal: once the cluster is whole, no node still owes
///     heat reports lost across a cut (heal reconciliation ran).
///   - directory_heat_accounting: the directory's internal copy counts and
///     heat sums match a from-scratch recomputation.
///   - no_corrupt_page_served: no client access ever consumed a detectably
///     corrupt page (verify-on-read must catch every one).
///   - quarantine_accounting: every quarantine decision was executed by a
///     buffer pool, and every detected-corrupt disk read ended its repair
///     ladder as a replica repair or a counted lost page.
///   - scrub_progress: scrubber counters are monotone, and an enabled
///     scrubber's tick counter keeps advancing with simulated time.
///
/// Both arguments must outlive the auditor's use. Called by
/// ClusterSystem::EnableAuditor; exposed separately so tests can register
/// the audits against a hand-built system.
void RegisterSystemAudits(sim::InvariantAuditor* auditor,
                          ClusterSystem* system);

}  // namespace memgoal::core

#endif  // MEMGOAL_CORE_SYSTEM_AUDITS_H_
