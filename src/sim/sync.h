#ifndef MEMGOAL_SIM_SYNC_H_
#define MEMGOAL_SIM_SYNC_H_

#include <coroutine>
#include <cstddef>

#include "common/check.h"
#include "common/inline_vector.h"
#include "sim/frame_pool.h"
#include "sim/simulator.h"

namespace memgoal::sim {

/// One-shot broadcast event: processes suspend on Wait() until some other
/// process calls Set(), which wakes all of them (through the event queue,
/// preserving FIFO determinism). Waiting on an already-set event completes
/// immediately. Events are not resettable.
///
/// Waiters live inline (the fetch path's hedged events have at most one)
/// and heap-allocated Events draw from the frame pool, since the fetch path
/// creates one short-lived Event per remote-fetch phase.
class Event {
 public:
  explicit Event(Simulator* simulator) : simulator_(simulator) {}
  Event(const Event&) = delete;
  Event& operator=(const Event&) = delete;

  static void* operator new(std::size_t size) {
    return FramePool::Allocate(size);
  }
  static void operator delete(void* ptr) noexcept { FramePool::Free(ptr); }
  static void operator delete(void* ptr, std::size_t) noexcept {
    FramePool::Free(ptr);
  }

  bool is_set() const { return set_; }

  /// Sets the event and schedules every waiter for resumption. Idempotent.
  void Set() {
    if (set_) return;
    set_ = true;
    for (std::coroutine_handle<> handle : waiters_) {
      simulator_->ScheduleResume(0.0, handle);
    }
    waiters_.clear();
  }

  /// Awaitable: suspends until Set() (no-op if already set).
  auto Wait() {
    struct Awaiter {
      Event* event;
      bool await_ready() const noexcept { return event->set_; }
      void await_suspend(std::coroutine_handle<> handle) {
        event->waiters_.push_back(handle);
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{this};
  }

  size_t waiter_count() const { return waiters_.size(); }

 private:
  Simulator* simulator_;
  bool set_ = false;
  common::InlineVector<std::coroutine_handle<>, 2> waiters_;
};

/// Fork/join counter: Add() before spawning child processes, Done() when
/// each finishes, Wait() suspends until the count returns to zero. The
/// count may rise and fall repeatedly; waiters wake whenever it *reaches*
/// zero.
class WaitGroup {
 public:
  explicit WaitGroup(Simulator* simulator) : simulator_(simulator) {}
  WaitGroup(const WaitGroup&) = delete;
  WaitGroup& operator=(const WaitGroup&) = delete;

  void Add(int n = 1) {
    MEMGOAL_CHECK(n >= 0);
    count_ += n;
  }

  void Done() {
    MEMGOAL_CHECK(count_ > 0);
    if (--count_ == 0) {
      for (std::coroutine_handle<> handle : waiters_) {
        simulator_->ScheduleResume(0.0, handle);
      }
      waiters_.clear();
    }
  }

  /// Awaitable: completes when the count is (or becomes) zero.
  auto Wait() {
    struct Awaiter {
      WaitGroup* group;
      bool await_ready() const noexcept { return group->count_ == 0; }
      void await_suspend(std::coroutine_handle<> handle) {
        group->waiters_.push_back(handle);
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{this};
  }

  int count() const { return count_; }

 private:
  Simulator* simulator_;
  int count_ = 0;
  common::InlineVector<std::coroutine_handle<>, 2> waiters_;
};

}  // namespace memgoal::sim

#endif  // MEMGOAL_SIM_SYNC_H_
