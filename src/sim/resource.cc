#include "sim/resource.h"

#include <utility>

#include "common/check.h"

namespace memgoal::sim {

Resource::Resource(Simulator* simulator, int capacity, std::string name)
    : simulator_(simulator), capacity_(capacity), name_(std::move(name)) {
  MEMGOAL_CHECK(capacity_ > 0);
  busy_units_.Start(simulator_->Now(), 0.0);
}

void Resource::Seize(double waited_ms) {
  ++in_use_;
  MEMGOAL_CHECK(in_use_ <= capacity_);
  ++total_acquisitions_;
  wait_stats_.Add(waited_ms);
  busy_units_.Update(simulator_->Now(), static_cast<double>(in_use_));
}

void Resource::Release() {
  MEMGOAL_CHECK(in_use_ > 0);
  if (!waiters_.empty()) {
    // Hand the unit directly to the oldest waiter: in_use_ is unchanged.
    Waiter waiter = waiters_.front();
    waiters_.pop_front();
    ++total_acquisitions_;
    wait_stats_.Add(simulator_->Now() - waiter.enqueue_time);
    simulator_->ScheduleResume(0.0, waiter.handle);
  } else {
    --in_use_;
    busy_units_.Update(simulator_->Now(), static_cast<double>(in_use_));
  }
}

Task<void> Resource::Use(SimTime service_time) {
  co_await Acquire();
  co_await simulator_->Delay(service_time);
  Release();
}

}  // namespace memgoal::sim
