#include "sim/resource.h"

#include <utility>

#include "common/check.h"

namespace memgoal::sim {

Resource::Resource(Simulator* simulator, int capacity, std::string name)
    : simulator_(simulator), capacity_(capacity), name_(std::move(name)),
      wait_hist_(0.0, kHistogramMaxMs, kHistogramBuckets),
      busy_hist_(0.0, kHistogramMaxMs, kHistogramBuckets) {
  MEMGOAL_CHECK(capacity_ > 0);
  busy_units_.Start(simulator_->Now(), 0.0);
}

void Resource::SetSlowdown(double factor) {
  MEMGOAL_CHECK(factor > 0.0);
  slowdown_ = factor;
}

void Resource::Seize(double waited_ms) {
  ++in_use_;
  MEMGOAL_CHECK(in_use_ <= capacity_);
  ++total_acquisitions_;
  wait_stats_.Add(waited_ms);
  wait_hist_.Add(waited_ms);
  hold_starts_.push_back(simulator_->Now());
  busy_units_.Update(simulator_->Now(), static_cast<double>(in_use_));
}

void Resource::Release() {
  MEMGOAL_CHECK(in_use_ > 0);
  // The oldest in-flight hold ends now (FIFO attribution; exact for
  // capacity 1).
  MEMGOAL_CHECK(!hold_starts_.empty());
  busy_hist_.Add(simulator_->Now() - hold_starts_.front());
  hold_starts_.pop_front();
  if (!waiters_.empty()) {
    // Hand the unit directly to the oldest waiter: in_use_ is unchanged.
    Waiter waiter = waiters_.front();
    waiters_.pop_front();
    ++total_acquisitions_;
    const double waited = simulator_->Now() - waiter.enqueue_time;
    wait_stats_.Add(waited);
    wait_hist_.Add(waited);
    hold_starts_.push_back(simulator_->Now());
    simulator_->ScheduleResume(0.0, waiter.handle);
  } else {
    --in_use_;
    busy_units_.Update(simulator_->Now(), static_cast<double>(in_use_));
  }
}

Task<void> Resource::Use(SimTime service_time, UseTiming* timing) {
  if (timing == nullptr) {
    co_await Acquire();
    co_await simulator_->Delay(service_time * slowdown_);
    Release();
    co_return;
  }
  const SimTime enqueued = simulator_->Now();
  co_await Acquire();
  const SimTime acquired = simulator_->Now();
  co_await simulator_->Delay(service_time * slowdown_);
  timing->wait_ms += acquired - enqueued;
  timing->service_ms += simulator_->Now() - acquired;
  Release();
}

}  // namespace memgoal::sim
