#ifndef MEMGOAL_SIM_CHAOS_SCHEDULE_H_
#define MEMGOAL_SIM_CHAOS_SCHEDULE_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "sim/fault_injector.h"
#include "sim/simulator.h"

namespace memgoal::sim::chaos {

/// One fault or control-plane event of a chaos schedule. The kinds mirror
/// the fault injector's manual operations plus goal churn (the harness
/// applies goal changes itself, via Simulator::At).
enum class EventKind {
  kCrash,
  kRecover,
  kDegrade,
  kRestore,
  kPartition,
  kHeal,
  kGoalChange,
  kCorrupt,
};

const char* EventKindName(EventKind kind);

struct Event {
  SimTime at_ms = 0.0;
  EventKind kind = EventKind::kCrash;
  /// Crash/recover/degrade/restore target.
  uint32_t node = 0;
  /// Degradation slowdown factor, or the goal multiplier of a goal change.
  double factor = 0.0;
  /// Partition: bitmask of the nodes cut off from the rest (<= 32 nodes).
  uint32_t minority_mask = 0;
  /// Goal change target class.
  uint32_t klass = 0;
  /// Corruption: independent strikes fired at the instant, and the draw
  /// salt that (deterministically) decides each strike's page and
  /// detectability.
  uint32_t count = 1;
  uint64_t salt = 0;
};

/// A complete, self-describing schedule: together with the (fixed) system
/// configuration of the harness it determines a run bit-exactly, which is
/// what makes shrunk repro files replayable.
struct Schedule {
  uint64_t seed = 0;
  uint32_t num_nodes = 0;
  double horizon_ms = 0.0;
  std::vector<Event> events;
};

struct GenerateLimits {
  uint32_t num_nodes = 4;
  double horizon_ms = 150000.0;
  /// Upper bound on episodes per fault kind (crash, gray, goal churn per
  /// class); partitions draw 1..max(1, max_episodes/2) episodes.
  int max_episodes = 4;
  /// Classes eligible for goal churn (empty disables it).
  std::vector<uint32_t> goal_classes;
  /// Upper bound on corruption episodes; 0 draws none — and consumes no
  /// RNG, so schedules generated before corruption existed are unchanged.
  int max_corrupt_episodes = 0;
};

/// Deterministically expands (seed, limits) into a random schedule over
/// crash x gray x partition x goal-churn. Always contains at least one
/// partition episode whose heal lands before 70% of the horizon, so
/// heal-time bugs (the injected-bug validation target) are reliably
/// exercised with settling time to spare. Requires num_nodes in [3, 32].
Schedule Generate(uint64_t seed, const GenerateLimits& limits);

/// Moves the schedule's fault events into the injector's script form
/// (crash/recover -> script, degrade/restore -> degradation_script,
/// partition/heal -> partition_script). Goal changes are not faults; fetch
/// them with GoalChanges() and apply via Simulator::At.
void ApplyToFaultParams(const Schedule& schedule,
                        FaultInjector::Params* params);

std::vector<Event> GoalChanges(const Schedule& schedule);

/// Text round-trip for repro files: ToText output parses back to an equal
/// schedule (doubles serialized losslessly).
std::string ToText(const Schedule& schedule);
bool FromText(const std::string& text, Schedule* out);

/// Delta-debugging shrink (ddmin-style, deterministic): returns the
/// smallest event subsequence for which `fails` still returns true. The
/// input schedule must itself fail. Every candidate keeps the original
/// event order; `fails` is invoked O(n log n) times in the typical case.
Schedule Shrink(const Schedule& schedule,
                const std::function<bool(const Schedule&)>& fails);

}  // namespace memgoal::sim::chaos

#endif  // MEMGOAL_SIM_CHAOS_SCHEDULE_H_
