#include "sim/simulator.h"

#include <cstring>

#include "common/check.h"
#include "obs/profiler.h"

namespace memgoal::sim {

Simulator::Simulator(QueueBackend backend)
    : backend_(backend), queue_(MakeEventQueue(backend)) {}

Simulator::~Simulator() {
  // Destroying a root frame transitively destroys the frames of any tasks
  // it is currently awaiting (they live in the root's co_await temporaries).
  // Stale coroutine handles left in queued events or resource wait lists
  // are never resumed after this point.
  while (live_roots_ != nullptr) {
    internal::PromiseBase* promise = live_roots_;
    live_roots_ = promise->root_next;
    std::coroutine_handle<>::from_address(promise->frame_address).destroy();
  }
  // Dispose still-pending events: destroy each stored callable without
  // running it, then recycle the node so the arena's teardown sees every
  // slab fully dead.
  EventNode* node;
  while ((node = queue_->PopMin()) != nullptr) {
    node->invoke(node, /*run=*/false);
    arena_.Free(node);
  }
}

void Simulator::OnRootDone(void* context, internal::PromiseBase* promise) {
  auto* simulator = static_cast<Simulator*>(context);
  if (promise->root_prev != nullptr) {
    promise->root_prev->root_next = promise->root_next;
  } else {
    simulator->live_roots_ = promise->root_next;
  }
  if (promise->root_next != nullptr) {
    promise->root_next->root_prev = promise->root_prev;
  }
}

namespace {

// ScheduleResume events store just the coroutine frame address: no closure
// object, nothing to destroy, one indirect call to resume.
void ResumeThunk(EventNode* node, bool run) {
  if (!run) return;
  void* address;
  std::memcpy(&address, node->storage, sizeof(address));
  std::coroutine_handle<>::from_address(address).resume();
}

}  // namespace

void Simulator::ScheduleResume(SimTime delay,
                               std::coroutine_handle<> handle) {
  MEMGOAL_CHECK(delay >= 0.0);
  EventNode* node = arena_.Allocate();
  node->time = now_ + delay;
  node->seq = next_seq_++;
  void* address = handle.address();
  std::memcpy(node->storage, &address, sizeof(address));
  node->invoke = &ResumeThunk;
  queue_->Insert(node);
}

bool Simulator::StepOne() {
  EventNode* node = queue_->PopMin();
  if (node == nullptr) return false;
  MEMGOAL_DCHECK(node->time >= now_);
  now_ = node->time;
  ++events_processed_;
  node->invoke(node, /*run=*/true);
  arena_.Free(node);
  return true;
}

bool Simulator::Step() {
  // Event dispatch is the simulation's outermost hot path: everything a
  // run does (coroutine resumptions included) happens inside some event,
  // so deeper phases nest under this scope in the folded stacks. The scope
  // wraps whole run loops rather than individual events — sim.step totals
  // still cover all dispatch wall time, at a handful of clock reads per
  // run instead of two per event.
  obs::ProfileScope profile(obs::Phase::kSimStep);
  return StepOne();
}

uint64_t Simulator::Run() {
  obs::ProfileScope profile(obs::Phase::kSimStep);
  uint64_t processed = 0;
  while (StepOne()) ++processed;
  return processed;
}

uint64_t Simulator::RunUntil(SimTime until) {
  MEMGOAL_CHECK(until >= now_);
  obs::ProfileScope profile(obs::Phase::kSimStep);
  uint64_t processed = 0;
  const EventNode* head;
  while ((head = queue_->PeekMin()) != nullptr && head->time <= until) {
    StepOne();
    ++processed;
  }
  now_ = until;
  return processed;
}

}  // namespace memgoal::sim
