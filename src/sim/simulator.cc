#include "sim/simulator.h"

#include <utility>

#include "common/check.h"
#include "obs/profiler.h"

namespace memgoal::sim {

void Simulator::Schedule(SimTime delay, std::function<void()> fn) {
  MEMGOAL_CHECK(delay >= 0.0);
  queue_.push(Event{now_ + delay, next_seq_++, std::move(fn)});
}

void Simulator::At(SimTime when, std::function<void()> fn) {
  MEMGOAL_CHECK(when >= now_);
  queue_.push(Event{when, next_seq_++, std::move(fn)});
}

Simulator::~Simulator() {
  // Destroying a root frame transitively destroys the frames of any tasks
  // it is currently awaiting (they live in the root's co_await temporaries).
  // Stale coroutine handles left in queued events or resource wait lists
  // are never resumed after this point.
  for (void* address : live_roots_) {
    std::coroutine_handle<>::from_address(address).destroy();
  }
}

void Simulator::OnRootDone(void* context, void* frame_address) {
  static_cast<Simulator*>(context)->live_roots_.erase(frame_address);
}

void Simulator::ScheduleResume(SimTime delay,
                               std::coroutine_handle<> handle) {
  Schedule(delay, [handle]() { handle.resume(); });
}

bool Simulator::Step() {
  if (queue_.empty()) return false;
  // priority_queue::top() is const; moving the closure out before pop() is
  // safe because the element is removed immediately afterwards.
  Event event = std::move(const_cast<Event&>(queue_.top()));
  queue_.pop();
  MEMGOAL_CHECK(event.time >= now_);
  now_ = event.time;
  ++events_processed_;
  {
    // Event dispatch is the simulation's outermost hot path: everything a
    // run does (coroutine resumptions included) happens inside some event,
    // so deeper phases nest under this scope in the folded stacks.
    obs::ProfileScope profile(obs::Phase::kSimStep);
    event.fn();
  }
  return true;
}

uint64_t Simulator::Run() {
  uint64_t processed = 0;
  while (Step()) ++processed;
  return processed;
}

uint64_t Simulator::RunUntil(SimTime until) {
  MEMGOAL_CHECK(until >= now_);
  uint64_t processed = 0;
  while (!queue_.empty() && queue_.top().time <= until) {
    Step();
    ++processed;
  }
  now_ = until;
  return processed;
}

}  // namespace memgoal::sim
