#ifndef MEMGOAL_SIM_SIMULATOR_H_
#define MEMGOAL_SIM_SIMULATOR_H_

#include <coroutine>
#include <cstdint>
#include <memory>
#include <utility>

#include "common/check.h"
#include "sim/event_queue.h"
#include "sim/task.h"

namespace memgoal::sim {

/// Single-threaded discrete-event simulator over a calendar-queue event
/// core (see sim/event_queue.h; the pre-refactor binary heap stays
/// available as QueueBackend::kLegacyHeap for differential testing).
///
/// Two styles of client coexist:
///  - callback events via Schedule()/At(), and
///  - coroutine processes (Task<void>) started with Spawn() that co_await
///    Delay(...) and Resource acquisitions.
///
/// Events scheduled for the same timestamp fire in scheduling order (FIFO):
/// every event carries a monotonically assigned sequence number and the
/// queue pops in strict (time, seq) order, which together with
/// single-threaded execution and explicit seeding makes every simulation
/// bit-for-bit reproducible — on either queue backend, in identical order.
///
/// Event records and their callables live in a slab arena (EventArena);
/// scheduling a callable that fits EventNode::kInlineBytes — including
/// every coroutine resume, which stores just the frame address — performs
/// no heap allocation.
class Simulator {
 public:
  explicit Simulator(QueueBackend backend = QueueBackend::kCalendar);
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Destroys any spawned process still suspended (e.g. infinite workload
  /// loops waiting on a Delay); their coroutine frames — and, transitively,
  /// the frames of tasks they are awaiting — are freed without resuming.
  /// Pending events are then disposed without running: their callables are
  /// destroyed and their arena nodes reclaimed.
  ~Simulator();

  /// Current simulated time.
  SimTime Now() const { return now_; }

  QueueBackend queue_backend() const { return backend_; }

  /// Schedules `fn` to run `delay` milliseconds from now (delay >= 0).
  /// Accepts any void() callable; it is moved/copied straight into the
  /// event node, bypassing std::function.
  template <typename Fn>
  void Schedule(SimTime delay, Fn&& fn) {
    MEMGOAL_CHECK(delay >= 0.0);
    ScheduleAt(now_ + delay, std::forward<Fn>(fn));
  }

  /// Schedules `fn` at absolute time `when` (>= Now()).
  template <typename Fn>
  void At(SimTime when, Fn&& fn) {
    MEMGOAL_CHECK(when >= now_);
    ScheduleAt(when, std::forward<Fn>(fn));
  }

  /// Starts a fire-and-forget coroutine process. The process runs
  /// immediately until its first suspension point; its frame frees itself on
  /// completion. A value-returning task may be spawned; its result is
  /// discarded.
  template <typename T>
  void Spawn(Task<T> task) {
    auto handle = task.Release();
    MEMGOAL_CHECK(handle);
    auto& promise = handle.promise();
    promise.detached = true;
    promise.on_detached_done = &Simulator::OnRootDone;
    promise.detached_done_context = this;
    // Link into the intrusive live-root list: O(1), no allocation, and
    // teardown can still find every root that has not completed.
    promise.frame_address = handle.address();
    promise.root_prev = nullptr;
    promise.root_next = live_roots_;
    if (live_roots_ != nullptr) live_roots_->root_prev = &promise;
    live_roots_ = &promise;
    handle.resume();
  }

  /// Awaitable that suspends the current process for `delay` milliseconds.
  /// A zero delay still goes through the event queue, i.e. it yields to
  /// other events already scheduled for the current time.
  auto Delay(SimTime delay) {
    struct Awaiter {
      Simulator* simulator;
      SimTime delay;
      bool await_ready() const noexcept { return false; }
      void await_suspend(std::coroutine_handle<> handle) {
        simulator->ScheduleResume(delay, handle);
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{this, delay};
  }

  /// Schedules `handle` to be resumed after `delay`. Building block for
  /// custom awaitables (resources, signals). Fast path: the event node
  /// stores the raw frame address and a static resume thunk — no closure.
  void ScheduleResume(SimTime delay, std::coroutine_handle<> handle);

  /// Runs until the event queue is empty. Returns the number of events
  /// processed.
  uint64_t Run();

  /// Runs until simulated time reaches `until` (events at exactly `until`
  /// are processed) or the queue drains. Time is advanced to `until` even if
  /// the queue drains earlier. Returns the number of events processed.
  uint64_t RunUntil(SimTime until);

  /// Processes a single event if one exists. Returns false on empty queue.
  bool Step();

  uint64_t events_processed() const { return events_processed_; }
  size_t pending_events() const { return queue_->size(); }

  /// Slab-allocation statistics, exposed for the arena lifetime tests.
  const EventArena& arena() const { return arena_; }

 private:
  template <typename Fn>
  void ScheduleAt(SimTime when, Fn&& fn) {
    EventNode* node = arena_.Allocate();
    node->time = when;
    node->seq = next_seq_++;
    node->Emplace(std::forward<Fn>(fn));
    queue_->Insert(node);
  }

  /// Pops and dispatches the earliest event without opening a profile
  /// scope; Run/RunUntil/Step wrap it (sim.step is accounted per run loop,
  /// not per event, so profiling overhead stays off the dispatch path).
  bool StepOne();

  static void OnRootDone(void* context, internal::PromiseBase* promise);

  QueueBackend backend_;
  SimTime now_ = 0.0;
  uint64_t next_seq_ = 0;
  uint64_t events_processed_ = 0;
  EventArena arena_;
  std::unique_ptr<EventQueue> queue_;
  // Head of the intrusive doubly-linked list of detached root promises
  // still in flight (see Spawn).
  internal::PromiseBase* live_roots_ = nullptr;
};

}  // namespace memgoal::sim

#endif  // MEMGOAL_SIM_SIMULATOR_H_
