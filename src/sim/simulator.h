#ifndef MEMGOAL_SIM_SIMULATOR_H_
#define MEMGOAL_SIM_SIMULATOR_H_

#include <coroutine>
#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "common/check.h"
#include "sim/task.h"

namespace memgoal::sim {

/// Simulated time, in milliseconds. All model constants in the repository
/// (disk service times, network transfer times, observation intervals) are
/// expressed in this unit, matching the paper's reporting unit.
using SimTime = double;

/// Single-threaded discrete-event simulator with a stable event queue.
///
/// Two styles of client coexist:
///  - callback events via Schedule()/At(), and
///  - coroutine processes (Task<void>) started with Spawn() that co_await
///    Delay(...) and Resource acquisitions.
///
/// Events scheduled for the same timestamp fire in scheduling order (FIFO),
/// which together with single-threaded execution and explicit seeding makes
/// every simulation bit-for-bit reproducible.
class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Destroys any spawned process still suspended (e.g. infinite workload
  /// loops waiting on a Delay); their coroutine frames — and, transitively,
  /// the frames of tasks they are awaiting — are freed without resuming.
  ~Simulator();

  /// Current simulated time.
  SimTime Now() const { return now_; }

  /// Schedules `fn` to run `delay` milliseconds from now (delay >= 0).
  void Schedule(SimTime delay, std::function<void()> fn);

  /// Schedules `fn` at absolute time `when` (>= Now()).
  void At(SimTime when, std::function<void()> fn);

  /// Starts a fire-and-forget coroutine process. The process runs
  /// immediately until its first suspension point; its frame frees itself on
  /// completion. A value-returning task may be spawned; its result is
  /// discarded.
  template <typename T>
  void Spawn(Task<T> task) {
    auto handle = task.Release();
    MEMGOAL_CHECK(handle);
    auto& promise = handle.promise();
    promise.detached = true;
    promise.on_detached_done = &Simulator::OnRootDone;
    promise.detached_done_context = this;
    live_roots_.insert(handle.address());
    handle.resume();
  }

  /// Awaitable that suspends the current process for `delay` milliseconds.
  /// A zero delay still goes through the event queue, i.e. it yields to
  /// other events already scheduled for the current time.
  auto Delay(SimTime delay) {
    struct Awaiter {
      Simulator* simulator;
      SimTime delay;
      bool await_ready() const noexcept { return false; }
      void await_suspend(std::coroutine_handle<> handle) {
        simulator->ScheduleResume(delay, handle);
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{this, delay};
  }

  /// Schedules `handle` to be resumed after `delay`. Building block for
  /// custom awaitables (resources, signals).
  void ScheduleResume(SimTime delay, std::coroutine_handle<> handle);

  /// Runs until the event queue is empty. Returns the number of events
  /// processed.
  uint64_t Run();

  /// Runs until simulated time reaches `until` (events at exactly `until`
  /// are processed) or the queue drains. Time is advanced to `until` even if
  /// the queue drains earlier. Returns the number of events processed.
  uint64_t RunUntil(SimTime until);

  /// Processes a single event if one exists. Returns false on empty queue.
  bool Step();

  uint64_t events_processed() const { return events_processed_; }
  size_t pending_events() const { return queue_.size(); }

 private:
  struct Event {
    SimTime time;
    uint64_t seq;
    std::function<void()> fn;
  };
  struct EventLater {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  static void OnRootDone(void* context, void* frame_address);

  SimTime now_ = 0.0;
  uint64_t next_seq_ = 0;
  uint64_t events_processed_ = 0;
  std::priority_queue<Event, std::vector<Event>, EventLater> queue_;
  // Frame addresses of spawned processes that have not completed.
  std::unordered_set<void*> live_roots_;
};

}  // namespace memgoal::sim

#endif  // MEMGOAL_SIM_SIMULATOR_H_
